(* Shape validators for the observability artifacts, used by CI smoke
   jobs: Chrome traces from [volcano-cli optimize --trace-out], metrics
   snapshots from [--metrics-out], and the benchmark JSON reports.
   Exits 1 with a message on the first violation, so a CI step is just
   [validate_obs trace trace.json].

   Usage:
     validate_obs trace FILE       Chrome trace event file
     validate_obs metrics FILE     metrics snapshot (counters/gauges/histograms)
     validate_obs drift FILE       drift report from [volcano-cli run --feedback]
     validate_obs bench FILE...    benchmark reports (non-empty JSON objects) *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("validate_obs: " ^ s);
      exit 1)
    fmt

let load path =
  match Obs.Json.read_file path with
  | Ok j -> j
  | Error e -> fail "%s: %s" path e

let str_field name ev = Option.bind (Obs.Json.member name ev) Obs.Json.to_str

let num_field name ev = Option.bind (Obs.Json.member name ev) Obs.Json.to_float

(* A Chrome trace: {"traceEvents": [...], "displayTimeUnit": "ms"},
   every event a complete span ("X") or track metadata ("M") with
   non-negative microsecond timestamps, and track 0 (the sequential
   engine) present. *)
let validate_trace path =
  let j = load path in
  (match str_field "displayTimeUnit" j with
   | Some "ms" -> ()
   | _ -> fail "%s: displayTimeUnit is not \"ms\"" path);
  let events =
    match Option.bind (Obs.Json.member "traceEvents" j) Obs.Json.to_list with
    | Some [] -> fail "%s: traceEvents is empty" path
    | Some l -> l
    | None -> fail "%s: traceEvents missing or not an array" path
  in
  let tracks = Hashtbl.create 8 in
  List.iteri
    (fun i ev ->
      let ph =
        match str_field "ph" ev with
        | Some ph -> ph
        | None -> fail "%s: event %d has no ph" path i
      in
      if ph <> "X" && ph <> "M" then fail "%s: event %d has ph %S" path i ph;
      if str_field "name" ev = None then fail "%s: event %d has no name" path i;
      let tid =
        match Option.bind (Obs.Json.member "tid" ev) Obs.Json.to_int with
        | Some tid -> tid
        | None -> fail "%s: event %d has no tid" path i
      in
      if ph = "X" then begin
        Hashtbl.replace tracks tid ();
        (match num_field "ts" ev with
         | Some ts when ts >= 0. -> ()
         | _ -> fail "%s: event %d has a bad ts" path i);
        (match num_field "dur" ev with
         | Some dur when dur >= 0. -> ()
         | _ -> fail "%s: event %d has a bad dur" path i);
        match str_field "cat" ev with
        | Some ("task" | "goal" | "phase") -> ()
        | _ -> fail "%s: event %d has an unknown cat" path i
      end)
    events;
  if not (Hashtbl.mem tracks 0) then fail "%s: no spans on track 0" path;
  Printf.printf "OK %s: %d events, %d tracks\n" path (List.length events)
    (Hashtbl.length tracks)

(* A metrics snapshot: counters/gauges/histograms objects, every search
   counter from the glossary present as a gauge, every histogram with
   count/sum/max/p50/p95/p99. *)
let validate_metrics path =
  let j = load path in
  let section name =
    match Obs.Json.member name j with
    | Some (Obs.Json.Obj fields) -> fields
    | _ -> fail "%s: %s missing or not an object" path name
  in
  ignore (section "counters");
  let gauges = section "gauges" in
  List.iter
    (fun name ->
      if not (List.mem_assoc name gauges) then
        fail "%s: search gauge %s missing" path name)
    (Volcano.Search_stats.metric_names "volcano_search_");
  let histograms = section "histograms" in
  List.iter
    (fun (name, h) ->
      List.iter
        (fun field ->
          match num_field field h with
          | Some v when v >= 0. -> ()
          | _ -> fail "%s: histogram %s has a bad %s" path name field)
        [ "count"; "sum"; "max"; "p50"; "p95"; "p99" ])
    histograms;
  Printf.printf "OK %s: %d gauges, %d histograms\n" path (List.length gauges)
    (List.length histograms)

(* A drift report from [volcano-cli run --feedback --drift-out]: a
   threshold >= 1, a non-empty nodes array whose entries each carry
   path/alg/estimated/observed/ratio/complete with ratio >= 1, exactly
   one observation per distinct path with the root ([]) present,
   corrections with table/detail/stats_version, and every feedback_*
   counter from the metric glossary under "stats". *)
let validate_drift path =
  let j = load path in
  (match num_field "drift_threshold" j with
   | Some t when t >= 1. -> ()
   | _ -> fail "%s: drift_threshold missing or < 1" path);
  let nodes =
    match Option.bind (Obs.Json.member "nodes" j) Obs.Json.to_list with
    | Some [] -> fail "%s: nodes is empty" path
    | Some l -> l
    | None -> fail "%s: nodes missing or not an array" path
  in
  let paths = Hashtbl.create 16 in
  List.iteri
    (fun i n ->
      let node_path =
        match Option.bind (Obs.Json.member "path" n) Obs.Json.to_list with
        | Some p -> List.map (fun step ->
            match Obs.Json.to_int step with
            | Some s -> s
            | None -> fail "%s: node %d has a non-integer path step" path i) p
        | None -> fail "%s: node %d has no path" path i
      in
      if Hashtbl.mem paths node_path then
        fail "%s: node %d repeats a plan path" path i;
      Hashtbl.replace paths node_path ();
      if str_field "alg" n = None then fail "%s: node %d has no alg" path i;
      (match num_field "estimated" n with
       | Some e when e >= 0. -> ()
       | _ -> fail "%s: node %d has a bad estimate" path i);
      (match Option.bind (Obs.Json.member "observed" n) Obs.Json.to_int with
       | Some o when o >= 0 -> ()
       | _ -> fail "%s: node %d has a bad observed count" path i);
      (match num_field "ratio" n with
       | Some r when r >= 1. -> ()
       | _ -> fail "%s: node %d has a q-error below 1" path i);
      match Obs.Json.member "complete" n with
      | Some (Obs.Json.Bool _) -> ()
      | _ -> fail "%s: node %d has no completeness flag" path i)
    nodes;
  if not (Hashtbl.mem paths []) then fail "%s: no observation for the plan root" path;
  let corrections =
    match Option.bind (Obs.Json.member "corrections" j) Obs.Json.to_list with
    | Some l -> l
    | None -> fail "%s: corrections missing or not an array" path
  in
  List.iteri
    (fun i c ->
      if str_field "table" c = None then fail "%s: correction %d has no table" path i;
      if str_field "detail" c = None then fail "%s: correction %d has no detail" path i;
      match Option.bind (Obs.Json.member "stats_version" c) Obs.Json.to_int with
      | Some v when v >= 1 -> ()
      | _ -> fail "%s: correction %d has a bad stats_version" path i)
    corrections;
  (match Obs.Json.member "escaped" j with
   | Some (Obs.Json.Bool _) -> ()
   | _ -> fail "%s: escaped missing or not a bool" path);
  let stats =
    match Obs.Json.member "stats" j with
    | Some s -> s
    | None -> fail "%s: stats missing" path
  in
  List.iter
    (fun name ->
      let is_feedback =
        String.length name >= 9 && String.sub name 0 9 = "feedback_"
      in
      if is_feedback then
        match Option.bind (Obs.Json.member name stats) Obs.Json.to_int with
        | Some v when v >= 0 -> ()
        | _ -> fail "%s: stats.%s missing or negative" path name)
    (Volcano.Search_stats.metric_names "");
  Printf.printf "OK %s: %d nodes, %d corrections\n" path (List.length nodes)
    (List.length corrections)

(* A benchmark report: a non-empty JSON object (the arms write their
   own schemas; parseability and shape are what CI guards). *)
let validate_bench path =
  match load path with
  | Obs.Json.Obj (_ :: _ as fields) ->
    Printf.printf "OK %s: %d fields\n" path (List.length fields)
  | _ -> fail "%s: not a non-empty JSON object" path

let () =
  match Array.to_list Sys.argv with
  | _ :: "trace" :: [ path ] -> validate_trace path
  | _ :: "metrics" :: [ path ] -> validate_metrics path
  | _ :: "drift" :: [ path ] -> validate_drift path
  | _ :: "bench" :: (_ :: _ as paths) -> List.iter validate_bench paths
  | _ ->
    prerr_endline
      "usage: validate_obs {trace FILE | metrics FILE | drift FILE | bench FILE...}";
    exit 2
