(* Shape validators for the observability artifacts, used by CI smoke
   jobs: Chrome traces from [volcano-cli optimize --trace-out], metrics
   snapshots from [--metrics-out], and the benchmark JSON reports.
   Exits 1 with a message on the first violation, so a CI step is just
   [validate_obs trace trace.json].

   Usage:
     validate_obs trace FILE       Chrome trace event file
     validate_obs metrics FILE     metrics snapshot (counters/gauges/histograms)
     validate_obs drift FILE       drift report from [volcano-cli run --feedback]
     validate_obs bench FILE...    benchmark reports (non-empty JSON objects)
     validate_obs scaleup FILE     scale-up report from [bench scaleup]
     validate_obs profile FILE     search profile from [optimize --profile-out]
     validate_obs flightrec FILE   flight-recorder dump from [--flightrec-out] *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("validate_obs: " ^ s);
      exit 1)
    fmt

let load path =
  match Obs.Json.read_file path with
  | Ok j -> j
  | Error e -> fail "%s: %s" path e

let str_field name ev = Option.bind (Obs.Json.member name ev) Obs.Json.to_str

let num_field name ev = Option.bind (Obs.Json.member name ev) Obs.Json.to_float

(* A Chrome trace: {"traceEvents": [...], "displayTimeUnit": "ms"},
   every event a complete span ("X") or track metadata ("M") with
   non-negative microsecond timestamps, and track 0 (the sequential
   engine) present. *)
let validate_trace path =
  let j = load path in
  (match str_field "displayTimeUnit" j with
   | Some "ms" -> ()
   | _ -> fail "%s: displayTimeUnit is not \"ms\"" path);
  let events =
    match Option.bind (Obs.Json.member "traceEvents" j) Obs.Json.to_list with
    | Some [] -> fail "%s: traceEvents is empty" path
    | Some l -> l
    | None -> fail "%s: traceEvents missing or not an array" path
  in
  let tracks = Hashtbl.create 8 in
  List.iteri
    (fun i ev ->
      let ph =
        match str_field "ph" ev with
        | Some ph -> ph
        | None -> fail "%s: event %d has no ph" path i
      in
      if ph <> "X" && ph <> "M" then fail "%s: event %d has ph %S" path i ph;
      if str_field "name" ev = None then fail "%s: event %d has no name" path i;
      let tid =
        match Option.bind (Obs.Json.member "tid" ev) Obs.Json.to_int with
        | Some tid -> tid
        | None -> fail "%s: event %d has no tid" path i
      in
      if ph = "X" then begin
        Hashtbl.replace tracks tid ();
        (match num_field "ts" ev with
         | Some ts when ts >= 0. -> ()
         | _ -> fail "%s: event %d has a bad ts" path i);
        (match num_field "dur" ev with
         | Some dur when dur >= 0. -> ()
         | _ -> fail "%s: event %d has a bad dur" path i);
        match str_field "cat" ev with
        | Some ("task" | "goal" | "phase") -> ()
        | _ -> fail "%s: event %d has an unknown cat" path i
      end)
    events;
  if not (Hashtbl.mem tracks 0) then fail "%s: no spans on track 0" path;
  Printf.printf "OK %s: %d events, %d tracks\n" path (List.length events)
    (Hashtbl.length tracks)

(* A metrics snapshot: counters/gauges/histograms objects, every search
   counter from the glossary present as a gauge, every histogram with
   count/sum/max/p50/p95/p99. *)
let validate_metrics path =
  let j = load path in
  let section name =
    match Obs.Json.member name j with
    | Some (Obs.Json.Obj fields) -> fields
    | _ -> fail "%s: %s missing or not an object" path name
  in
  ignore (section "counters");
  let gauges = section "gauges" in
  List.iter
    (fun name ->
      if not (List.mem_assoc name gauges) then
        fail "%s: search gauge %s missing" path name)
    (Volcano.Search_stats.metric_names "volcano_search_");
  let histograms = section "histograms" in
  List.iter
    (fun (name, h) ->
      List.iter
        (fun field ->
          match num_field field h with
          | Some v when v >= 0. -> ()
          | _ -> fail "%s: histogram %s has a bad %s" path name field)
        [ "count"; "sum"; "max"; "p50"; "p95"; "p99" ])
    histograms;
  Printf.printf "OK %s: %d gauges, %d histograms\n" path (List.length gauges)
    (List.length histograms)

(* A drift report from [volcano-cli run --feedback --drift-out]: a
   threshold >= 1, a non-empty nodes array whose entries each carry
   path/alg/estimated/observed/ratio/complete with ratio >= 1, exactly
   one observation per distinct path with the root ([]) present,
   corrections with table/detail/stats_version, and every feedback_*
   counter from the metric glossary under "stats". *)
let validate_drift path =
  let j = load path in
  (match num_field "drift_threshold" j with
   | Some t when t >= 1. -> ()
   | _ -> fail "%s: drift_threshold missing or < 1" path);
  let nodes =
    match Option.bind (Obs.Json.member "nodes" j) Obs.Json.to_list with
    | Some [] -> fail "%s: nodes is empty" path
    | Some l -> l
    | None -> fail "%s: nodes missing or not an array" path
  in
  let paths = Hashtbl.create 16 in
  List.iteri
    (fun i n ->
      let node_path =
        match Option.bind (Obs.Json.member "path" n) Obs.Json.to_list with
        | Some p -> List.map (fun step ->
            match Obs.Json.to_int step with
            | Some s -> s
            | None -> fail "%s: node %d has a non-integer path step" path i) p
        | None -> fail "%s: node %d has no path" path i
      in
      if Hashtbl.mem paths node_path then
        fail "%s: node %d repeats a plan path" path i;
      Hashtbl.replace paths node_path ();
      if str_field "alg" n = None then fail "%s: node %d has no alg" path i;
      (match num_field "estimated" n with
       | Some e when e >= 0. -> ()
       | _ -> fail "%s: node %d has a bad estimate" path i);
      (match Option.bind (Obs.Json.member "observed" n) Obs.Json.to_int with
       | Some o when o >= 0 -> ()
       | _ -> fail "%s: node %d has a bad observed count" path i);
      (match num_field "ratio" n with
       | Some r when r >= 1. -> ()
       | _ -> fail "%s: node %d has a q-error below 1" path i);
      match Obs.Json.member "complete" n with
      | Some (Obs.Json.Bool _) -> ()
      | _ -> fail "%s: node %d has no completeness flag" path i)
    nodes;
  if not (Hashtbl.mem paths []) then fail "%s: no observation for the plan root" path;
  let corrections =
    match Option.bind (Obs.Json.member "corrections" j) Obs.Json.to_list with
    | Some l -> l
    | None -> fail "%s: corrections missing or not an array" path
  in
  List.iteri
    (fun i c ->
      if str_field "table" c = None then fail "%s: correction %d has no table" path i;
      if str_field "detail" c = None then fail "%s: correction %d has no detail" path i;
      match Option.bind (Obs.Json.member "stats_version" c) Obs.Json.to_int with
      | Some v when v >= 1 -> ()
      | _ -> fail "%s: correction %d has a bad stats_version" path i)
    corrections;
  (match Obs.Json.member "escaped" j with
   | Some (Obs.Json.Bool _) -> ()
   | _ -> fail "%s: escaped missing or not a bool" path);
  let stats =
    match Obs.Json.member "stats" j with
    | Some s -> s
    | None -> fail "%s: stats missing" path
  in
  List.iter
    (fun name ->
      let is_feedback =
        String.length name >= 9 && String.sub name 0 9 = "feedback_"
      in
      if is_feedback then
        match Option.bind (Obs.Json.member name stats) Obs.Json.to_int with
        | Some v when v >= 0 -> ()
        | _ -> fail "%s: stats.%s missing or negative" path name)
    (Volcano.Search_stats.metric_names "");
  Printf.printf "OK %s: %d nodes, %d corrections\n" path (List.length nodes)
    (List.length corrections)

(* A benchmark report: a non-empty JSON object (the arms write their
   own schemas; parseability and shape are what CI guards). *)
let validate_bench path =
  match load path with
  | Obs.Json.Obj (_ :: _ as fields) ->
    Printf.printf "OK %s: %d fields\n" path (List.length fields)
  | _ -> fail "%s: not a non-empty JSON object" path

(* The scale-up report from [bench scaleup] (BENCH_scaleup.json): a
   non-empty cells array, each cell carrying workload/relations/
   reference and a non-empty arms array; each arm a budget curve whose
   budgets strictly ascend, whose tasks never run backwards, and whose
   best-so-far cost never appears and then disappears or worsens;
   reference cells must be flagged all-identical and every reference
   arm complete with a final cost. *)
let validate_scaleup path =
  let j = load path in
  (match Obs.Json.member "all_reference_cells_identical" j with
   | Some (Obs.Json.Bool true) -> ()
   | Some (Obs.Json.Bool false) ->
     fail "%s: a reference cell's plan diverged across arms" path
   | _ -> fail "%s: all_reference_cells_identical missing" path);
  let cells =
    match Option.bind (Obs.Json.member "cells" j) Obs.Json.to_list with
    | Some [] -> fail "%s: cells is empty" path
    | Some l -> l
    | None -> fail "%s: cells missing or not an array" path
  in
  let n_arms = ref 0 in
  List.iteri
    (fun i cell ->
      let cname =
        match str_field "workload" cell with
        | Some w -> w
        | None -> fail "%s: cell %d has no workload" path i
      in
      (match Option.bind (Obs.Json.member "relations" cell) Obs.Json.to_int with
       | Some n when n >= 1 -> ()
       | _ -> fail "%s: cell %d has a bad relation count" path i);
      let reference =
        match Obs.Json.member "reference" cell with
        | Some (Obs.Json.Bool b) -> b
        | _ -> fail "%s: cell %d has no reference flag" path i
      in
      let arms =
        match Option.bind (Obs.Json.member "arms" cell) Obs.Json.to_list with
        | Some [] -> fail "%s: cell %s has no arms" path cname
        | Some l -> l
        | None -> fail "%s: cell %s arms missing or not an array" path cname
      in
      List.iter
        (fun arm ->
          incr n_arms;
          let aname =
            match str_field "arm" arm with
            | Some a -> a
            | None -> fail "%s: cell %s has an unnamed arm" path cname
          in
          let where = Printf.sprintf "cell %s arm %s" cname aname in
          (* tasks_to_* are null (never reached) or positive. *)
          List.iter
            (fun f ->
              match Obs.Json.member f arm with
              | Some Obs.Json.Null -> ()
              | Some t -> begin
                match Obs.Json.to_int t with
                | Some v when v >= 1 -> ()
                | _ -> fail "%s: %s has a bad %s" path where f
              end
              | None -> fail "%s: %s has no %s" path where f)
            [ "tasks_to_first_incumbent"; "tasks_to_within_10pct"; "tasks_to_best" ];
          let complete =
            match Obs.Json.member "complete" arm with
            | Some (Obs.Json.Bool b) -> b
            | _ -> fail "%s: %s has no completeness flag" path where
          in
          if reference && not complete then
            fail "%s: %s is a reference arm but did not complete" path where;
          if reference && Obs.Json.member "final_cost" arm = Some Obs.Json.Null
          then fail "%s: %s is a reference arm without a final cost" path where;
          let curve =
            match Option.bind (Obs.Json.member "curve" arm) Obs.Json.to_list with
            | Some [] -> fail "%s: %s has an empty curve" path where
            | Some l -> l
            | None -> fail "%s: %s curve missing or not an array" path where
          in
          let prev_budget = ref min_int and prev_tasks = ref 0 in
          let prev_cost = ref None in
          List.iter
            (fun p ->
              let budget =
                match Option.bind (Obs.Json.member "budget" p) Obs.Json.to_int with
                | Some b -> b
                | None -> fail "%s: %s has a rung without a budget" path where
              in
              if budget <= !prev_budget then
                fail "%s: %s budgets do not ascend" path where;
              prev_budget := budget;
              (match Option.bind (Obs.Json.member "tasks" p) Obs.Json.to_int with
               | Some t when t >= !prev_tasks -> prev_tasks := t
               | Some _ -> fail "%s: %s tasks run backwards" path where
               | None -> fail "%s: %s has a rung without tasks" path where);
              (match Obs.Json.member "complete" p with
               | Some (Obs.Json.Bool _) -> ()
               | _ -> fail "%s: %s has a rung without a complete flag" path where);
              match Obs.Json.member "cost" p with
              | Some Obs.Json.Null ->
                if !prev_cost <> None then
                  fail "%s: %s best-so-far disappeared" path where
              | Some c -> begin
                match Obs.Json.to_float c with
                | Some v -> begin
                  (match !prev_cost with
                   | Some pv when v > pv ->
                     fail "%s: %s best-so-far worsened along the ladder" path where
                   | _ -> ());
                  prev_cost := Some v
                end
                | None -> fail "%s: %s has a non-numeric rung cost" path where
              end
              | None -> fail "%s: %s has a rung without a cost" path where)
            curve)
        arms)
    cells;
  Printf.printf "OK %s: %d cells, %d arms\n" path (List.length cells) !n_arms

(* A search profile from [volcano-cli optimize --profile-out]: a
   positive total task count, track 0 present, a non-empty entries
   array whose rows each carry a known kind, a name, and non-negative
   counters — and the attribution-parity invariant: the per-entry task
   counts sum exactly to total_tasks. *)
let validate_profile path =
  let j = load path in
  let total =
    match Option.bind (Obs.Json.member "total_tasks" j) Obs.Json.to_int with
    | Some t when t >= 1 -> t
    | _ -> fail "%s: total_tasks missing or < 1" path
  in
  let tracks =
    match Option.bind (Obs.Json.member "tracks" j) Obs.Json.to_list with
    | Some [] -> fail "%s: tracks is empty" path
    | Some l -> List.map (fun t ->
        match Obs.Json.to_int t with
        | Some v -> v
        | None -> fail "%s: non-integer track" path) l
    | None -> fail "%s: tracks missing or not an array" path
  in
  if not (List.mem 0 tracks) then fail "%s: track 0 (sequential engine) missing" path;
  let entries =
    match Option.bind (Obs.Json.member "entries" j) Obs.Json.to_list with
    | Some [] -> fail "%s: entries is empty" path
    | Some l -> l
    | None -> fail "%s: entries missing or not an array" path
  in
  let task_sum = ref 0 in
  List.iteri
    (fun i e ->
      (match str_field "kind" e with
       | Some ("rule" | "enforcer" | "operator" | "engine") -> ()
       | _ -> fail "%s: entry %d has an unknown kind" path i);
      (match str_field "name" e with
       | Some n when n <> "" -> ()
       | _ -> fail "%s: entry %d has no name" path i);
      List.iter
        (fun f ->
          match Option.bind (Obs.Json.member f e) Obs.Json.to_int with
          | Some v when v >= 0 ->
            if f = "tasks" then task_sum := !task_sum + v
          | _ -> fail "%s: entry %d has a bad %s" path i f)
        [ "tasks"; "mexprs"; "plans_won"; "pruned"; "wasted" ];
      match num_field "time_ms" e with
      | Some t when t >= 0. -> ()
      | _ -> fail "%s: entry %d has a bad time_ms" path i)
    entries;
  if !task_sum <> total then
    fail "%s: attribution parity broken: entry tasks sum to %d, total_tasks is %d"
      path !task_sum total;
  Printf.printf "OK %s: %d entries, %d tasks attributed, %d tracks\n" path
    (List.length entries) total (List.length tracks)

(* A flight-recorder dump from [--flightrec-out] (or a post-mortem
   trigger): a non-empty reason, a positive capacity, consistent
   recorded/dropped/event counts, and events with known kinds,
   non-negative timestamps, and non-descending time order. *)
let validate_flightrec path =
  let j = load path in
  (match str_field "reason" j with
   | Some r when r <> "" -> ()
   | _ -> fail "%s: reason missing or empty" path);
  let capacity =
    match Option.bind (Obs.Json.member "capacity" j) Obs.Json.to_int with
    | Some c when c >= 1 -> c
    | _ -> fail "%s: capacity missing or < 1" path
  in
  let recorded =
    match Option.bind (Obs.Json.member "recorded" j) Obs.Json.to_int with
    | Some r when r >= 1 -> r
    | _ -> fail "%s: recorded missing or < 1" path
  in
  let dropped =
    match Option.bind (Obs.Json.member "dropped" j) Obs.Json.to_int with
    | Some d when d >= 0 -> d
    | _ -> fail "%s: dropped missing or negative" path
  in
  let tracks =
    match Option.bind (Obs.Json.member "tracks" j) Obs.Json.to_list with
    | Some [] -> fail "%s: tracks is empty" path
    | Some l -> l
    | None -> fail "%s: tracks missing or not an array" path
  in
  let events =
    match Option.bind (Obs.Json.member "events" j) Obs.Json.to_list with
    | Some [] -> fail "%s: events is empty" path
    | Some l -> l
    | None -> fail "%s: events missing or not an array" path
  in
  if List.length events > capacity * List.length tracks then
    fail "%s: %d events exceed capacity %d over %d tracks" path
      (List.length events) capacity (List.length tracks);
  if recorded <> List.length events + dropped then
    fail "%s: recorded (%d) <> surviving events (%d) + dropped (%d)" path recorded
      (List.length events) dropped;
  let prev_ns = ref (-1.) in
  List.iteri
    (fun i ev ->
      (match num_field "ns" ev with
       | Some ns when ns >= 0. ->
         if ns < !prev_ns then fail "%s: event %d out of time order" path i;
         prev_ns := ns
       | _ -> fail "%s: event %d has a bad ns" path i);
      (match Option.bind (Obs.Json.member "track" ev) Obs.Json.to_int with
       | Some t when t >= 0 -> ()
       | _ -> fail "%s: event %d has a bad track" path i);
      (match str_field "kind" ev with
       | Some
           ( "task_begin" | "task_end" | "claim" | "publish" | "prune"
           | "incumbent" ) -> ()
       | _ -> fail "%s: event %d has an unknown kind" path i);
      List.iter
        (fun f ->
          if Option.bind (Obs.Json.member f ev) Obs.Json.to_int = None then
            fail "%s: event %d has no integer %s" path i f)
        [ "group"; "detail" ])
    events;
  Printf.printf "OK %s: %d events (%d recorded, %d dropped), %d tracks, reason %s\n"
    path (List.length events) recorded dropped (List.length tracks)
    (Option.value (str_field "reason" j) ~default:"")

let () =
  match Array.to_list Sys.argv with
  | _ :: "trace" :: [ path ] -> validate_trace path
  | _ :: "metrics" :: [ path ] -> validate_metrics path
  | _ :: "drift" :: [ path ] -> validate_drift path
  | _ :: "bench" :: (_ :: _ as paths) -> List.iter validate_bench paths
  | _ :: "scaleup" :: [ path ] -> validate_scaleup path
  | _ :: "profile" :: [ path ] -> validate_profile path
  | _ :: "flightrec" :: [ path ] -> validate_flightrec path
  | _ ->
    prerr_endline
      "usage: validate_obs {trace FILE | metrics FILE | drift FILE | bench FILE... | \
       scaleup FILE | profile FILE | flightrec FILE}";
    exit 2
