(* Bench regression watchdog: compare two benchmark JSON reports (or
   two directories of them) metric by metric and exit nonzero when a
   watched metric regressed past the threshold.

   Usage:
     bench_diff [--threshold PCT] [--watch SUBSTR]... OLD NEW

   OLD and NEW are either two report files (e.g. a committed
   BENCH_obs.json against a freshly generated one) or two directories,
   in which case every JSON file present in both is compared. Reports
   are walked recursively; every numeric leaf present under the same
   path in both sides becomes one compared metric.

   Deltas are informational for most metrics — a benchmark report mixes
   sizes, counters, and timings, and only for some of them is "bigger"
   bad. A metric counts as *watched* (eligible to fail the run) when
   its flattened path contains one of the --watch substrings; without
   any --watch flag a default list covering timings and effort
   (ms, ns, seconds, slowdown, overhead, tasks) applies. A watched
   metric regresses when it grew by more than --threshold percent
   (default 10). Exit status: 0 clean, 1 regression(s), 2 usage or
   I/O error. *)

let usage () =
  prerr_endline "usage: bench_diff [--threshold PCT] [--watch SUBSTR]... OLD NEW";
  exit 2

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("bench_diff: " ^ s);
      exit 2)
    fmt

let default_watch = [ "ms"; "ns"; "seconds"; "slowdown"; "overhead"; "tasks" ]

(* Flatten a JSON document to (path, number) leaves: "arms[2].trace_x".
   Non-numeric leaves are ignored — strings and booleans don't diff as
   metrics. *)
let flatten json =
  let out = ref [] in
  let rec go path j =
    match (j : Obs.Json.t) with
    | Obs.Json.Num v -> out := (path, v) :: !out
    | Obs.Json.Obj fields ->
      List.iter
        (fun (k, v) -> go (if path = "" then k else path ^ "." ^ k) v)
        fields
    | Obs.Json.Arr items ->
      List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" path i) v) items
    | Obs.Json.Null | Obs.Json.Bool _ | Obs.Json.Str _ -> ()
  in
  go "" json;
  List.rev !out

let load path =
  match Obs.Json.read_file path with
  | Ok j -> j
  | Error e -> fail "%s: %s" path e

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  || begin
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  end

let watched patterns path =
  let lower = String.lowercase_ascii path in
  List.exists (fun p -> contains lower (String.lowercase_ascii p)) patterns

(* Compare one report pair; returns the number of watched regressions. *)
let diff_files ~threshold ~patterns old_path new_path =
  let old_leaves = flatten (load old_path) in
  let new_leaves = flatten (load new_path) in
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace old_tbl k v) old_leaves;
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace new_tbl k v) new_leaves;
  Printf.printf "%s -> %s\n" old_path new_path;
  let regressions = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun (key, old_v) ->
      match Hashtbl.find_opt new_tbl key with
      | None -> Printf.printf "  - %-48s removed (was %g)\n" key old_v
      | Some new_v ->
        incr compared;
        if old_v <> new_v then begin
          let pct =
            if old_v = 0. then Float.infinity
            else 100. *. (new_v -. old_v) /. Float.abs old_v
          in
          let regressed =
            watched patterns key && new_v > old_v
            && (old_v = 0. || pct > threshold)
          in
          if regressed then incr regressions;
          Printf.printf "  %s %-48s %g -> %g (%+.1f%%)%s\n"
            (if regressed then "!" else " ")
            key old_v new_v pct
            (if regressed then "  REGRESSION" else "")
        end)
    old_leaves;
  List.iter
    (fun (key, new_v) ->
      if not (Hashtbl.mem old_tbl key) then
        Printf.printf "  + %-48s added (%g)\n" key new_v)
    new_leaves;
  Printf.printf "  %d metrics compared, %d watched regression(s) above %+.1f%%\n"
    !compared !regressions threshold;
  !regressions

let json_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare

let () =
  let threshold = ref 10. in
  let patterns = ref [] in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest -> begin
      match float_of_string_opt v with
      | Some t when t >= 0. ->
        threshold := t;
        parse rest
      | _ -> fail "bad --threshold %S (expected a percentage >= 0)" v
    end
    | "--watch" :: v :: rest ->
      patterns := !patterns @ [ v ];
      parse rest
    | ("--threshold" | "--watch") :: [] -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      usage ()
    | arg :: rest ->
      positional := !positional @ [ arg ];
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let patterns = if !patterns = [] then default_watch else !patterns in
  match !positional with
  | [ old_path; new_path ] ->
    let pairs =
      match (Sys.is_directory old_path, Sys.is_directory new_path) with
      | exception Sys_error e -> fail "%s" e
      | true, true ->
        let old_files = json_files old_path and new_files = json_files new_path in
        let common = List.filter (fun f -> List.mem f new_files) old_files in
        if common = [] then
          fail "no common *.json files between %s and %s" old_path new_path;
        List.iter
          (fun f ->
            if not (List.mem f new_files) then
              Printf.printf "only in %s: %s\n" old_path f)
          old_files;
        List.iter
          (fun f ->
            if not (List.mem f old_files) then
              Printf.printf "only in %s: %s\n" new_path f)
          new_files;
        List.map
          (fun f -> (Filename.concat old_path f, Filename.concat new_path f))
          common
      | false, false -> [ (old_path, new_path) ]
      | _ -> fail "%s and %s must both be files or both be directories" old_path new_path
    in
    let regressions =
      List.fold_left
        (fun acc (o, n) -> acc + diff_files ~threshold:!threshold ~patterns o n)
        0 pairs
    in
    if regressions > 0 then begin
      Printf.printf "FAIL: %d watched regression(s)\n" regressions;
      exit 1
    end
    else Printf.printf "OK: no watched regressions\n"
  | _ -> usage ()
