(* volcano-cli: optimize and run SQL against a demo catalog.

   Subcommands:
     optimize  parse a SQL statement, print the logical tree, the
               optimized plan, search statistics; optionally execute it,
               compare with the EXODUS-style baseline, trace the search
               (--trace, --trace-out), or export metrics (--metrics-out)
     run       optimize and execute; --feedback instruments the execution
               with per-node cardinality counters, reports drift against
               the optimizer's estimates, and corrects the catalog
               statistics (--skew injects a known estimation error)
     explain   optimize and print winner provenance: per-node costs,
               producing rules, and losing alternatives with reasons
     tables    list the demo catalog
     workload  generate and optimize one paper-style random query
     repl      interactive SQL session with a shared optimizer memo
     serve     line-oriented optimization service over stdin or a batch
               file: fingerprinted plan cache, optional concurrent
               workers, cache observability counters
     batch     multi-query optimization over a SQL file: one shared
               memo, common-subexpression detection, and a
               materialize/reuse report (Volcano-SH / Volcano-RU) *)

open Relalg

let demo_catalog () =
  let catalog = Catalog.create () in
  ignore
    (Catalog.add_synthetic catalog ~name:"emp"
       ~columns:
         [
           ("id", Catalog.Serial);
           ("dept_id", Catalog.Uniform_int (0, 119));
           ("salary", Catalog.Uniform_int (30_000, 150_000));
           ("age", Catalog.Uniform_int (21, 65));
         ]
       ~rows:7_200 ~seed:7 ());
  ignore
    (Catalog.add_synthetic catalog ~name:"dept"
       ~columns:
         [
           ("id", Catalog.Serial);
           ("budget", Catalog.Uniform_int (100_000, 5_000_000));
           ("floor", Catalog.Uniform_int (1, 12));
         ]
       ~rows:1_200 ~seed:8 ());
  ignore
    (Catalog.add_synthetic catalog ~name:"proj"
       ~columns:
         [
           ("id", Catalog.Serial);
           ("dept_id", Catalog.Uniform_int (0, 119));
           ("cost", Catalog.Uniform_int (1_000, 900_000));
         ]
       ~rows:2_400 ~seed:9 ());
  catalog

let print_tables catalog =
  List.iter
    (fun (t : Catalog.table) ->
      Format.printf "%-6s %6d rows  %a@." t.name (Array.length t.tuples) Schema.pp t.schema)
    (Catalog.tables catalog)

(* The per-goal effort distribution: how many task spans each goal span
   directly parents. Long tails here are the goals worth staring at. *)
let goal_task_histogram reg tracer =
  let hist =
    Obs.Metrics.histogram reg ~help:"engine tasks directly under each goal"
      "volcano_goal_tasks"
  in
  let counts = Hashtbl.create 256 in
  let spans = Obs.Trace.spans tracer in
  List.iter
    (fun (sp : Obs.Trace.span) ->
      if sp.sp_cat = "goal" then Hashtbl.replace counts sp.sp_id 0)
    spans;
  List.iter
    (fun (sp : Obs.Trace.span) ->
      if sp.sp_cat = "task" then
        match Hashtbl.find_opt counts sp.sp_parent with
        | Some n -> Hashtbl.replace counts sp.sp_parent (n + 1)
        | None -> ())
    spans;
  Hashtbl.iter (fun _ n -> Obs.Metrics.observe hist (float_of_int n)) counts

(* Post-run stderr summary of a span trace: per-track span counts and
   the goal outcomes — bounded output no matter how large the search. *)
let print_trace_summary tracer =
  let spans = Obs.Trace.spans tracer in
  List.iter
    (fun track ->
      let n =
        List.length
          (List.filter (fun (s : Obs.Trace.span) -> s.sp_track = track) spans)
      in
      Format.eprintf "trace: track %d (%s): %d spans@." track
        (if track = 0 then "sequential" else "worker " ^ string_of_int track)
        n)
    (Obs.Trace.tracks tracer);
  let outcomes = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.Trace.span) ->
      if s.sp_cat = "goal" then
        let k = if s.sp_outcome = "" then "(open)" else s.sp_outcome in
        Hashtbl.replace outcomes k (1 + Option.value (Hashtbl.find_opt outcomes k) ~default:0))
    spans;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) outcomes []
  |> List.sort compare
  |> List.iter (fun (k, n) -> Format.eprintf "trace: goals %s: %d@." k n)

let run_optimize sql execute compare_exodus no_pruning no_guided left_deep max_steps
    timeout_ms trace trace_out metrics_out profile_out flightrec_out show_explain
    domains scheduler promise =
  let catalog = demo_catalog () in
  match Sqlfront.parse catalog sql with
  | exception Sqlfront.Parse_error msg ->
    Format.eprintf "parse error: %s@." msg;
    1
  | { logical; required } ->
    Format.printf "Logical query:@.%a@.@." Logical.pp logical;
    Format.printf "Required properties: %s@.@." (Phys_prop.to_string required);
    (* The goal-task histogram in --metrics-out is computed from spans,
       so a metrics request implies a (silent) tracer; the rule_* gauges
       likewise imply a (silent) profiler. All of it is plan-inert. *)
    let tracer =
      if trace || trace_out <> None || metrics_out <> None then
        Some (Obs.Trace.create ())
      else None
    in
    let profiler =
      if profile_out <> None || metrics_out <> None then Some (Obs.Profile.create ())
      else None
    in
    let recorder =
      Option.map (fun path -> Obs.Flight_recorder.create ~path ()) flightrec_out
    in
    let request =
      {
        (Relmodel.Optimizer.request catalog) with
        pruning = not no_pruning;
        guided_pruning = not no_guided;
        flags = { Relmodel.Rel_model.default_flags with left_deep_only = left_deep };
        max_tasks = max_steps;
        max_millis = timeout_ms;
        domains;
        scheduler;
        promise;
        tracer;
        profiler;
        recorder;
        explain = show_explain;
      }
    in
    let result = Relmodel.Optimizer.optimize request logical ~required in
    Option.iter
      (fun tr ->
        if trace then begin
          print_trace_summary tr;
          Format.eprintf "trace summary: %a@." Volcano.Search_stats.pp_tasks
            result.stats
        end;
        Option.iter
          (fun path ->
            Obs.Chrome_trace.write path tr;
            Format.eprintf "wrote %s (%d spans, %d tracks)@." path
              (Obs.Trace.total tr)
              (List.length (Obs.Trace.tracks tr)))
          trace_out;
        Option.iter
          (fun path ->
            let reg = Obs.Metrics.create () in
            Volcano.Search_stats.register reg result.stats;
            goal_task_histogram reg tr;
            Option.iter (fun pr -> Obs.Profile.register pr reg) profiler;
            Obs.Json.write_file path (Obs.Metrics.to_json reg);
            Format.eprintf "wrote %s@." path)
          metrics_out)
      tracer;
    Option.iter
      (fun path ->
        Option.iter
          (fun pr ->
            Obs.Json.write_file path (Obs.Profile.to_json pr);
            Format.eprintf "%a@." (Obs.Profile.pp_table ~top:20) pr;
            Format.eprintf "wrote %s (%d tasks attributed)@." path
              (Obs.Profile.total_tasks pr))
          profiler)
      profile_out;
    Option.iter
      (fun fr ->
        (* Abnormal ends (budget pause, stall-abandon) already dumped;
           otherwise dump now so the file always exists for tooling. *)
        if Obs.Flight_recorder.dumps fr = 0 then
          Obs.Flight_recorder.trigger fr ~reason:"end-of-run";
        Option.iter
          (fun path ->
            Format.eprintf "wrote %s (%d events recorded, %d dropped, reason %s)@."
              path
              (Obs.Flight_recorder.recorded fr)
              (Obs.Flight_recorder.dropped fr)
              (Obs.Flight_recorder.last_reason fr))
          flightrec_out)
      recorder;
    if not result.complete then
      Format.printf
        "Budget exhausted after %d tasks; showing the best plan found so far.@.@."
        result.tasks_run;
    (match result.plan with
     | None ->
       Format.printf "No plan found within the cost limit.@.";
     | Some plan ->
       Format.printf "Volcano plan (estimated cost %s):@.%s@.@."
         (Cost.to_string plan.cost)
         (Relmodel.Optimizer.explain plan);
       Option.iter
         (fun e -> Format.printf "Provenance (winners and losing alternatives):@.%s@." e)
         result.explain;
       Format.printf "Search: %a@." Volcano.Search_stats.pp result.stats;
       Format.printf "Tasks: %a@." Volcano.Search_stats.pp_tasks result.stats;
       Format.printf "Memo: %d groups, %d multi-expressions@.@." result.memo_groups
         result.memo_mexprs;
       if compare_exodus then begin
         let e = Exodus.optimize ~catalog ~max_nodes:200_000 logical ~required in
         match e.plan with
         | None -> Format.printf "EXODUS baseline: no plan (aborted=%b)@." e.aborted
         | Some eplan ->
           Format.printf "EXODUS baseline plan (estimated cost %s, nodes %d%s):@.%a@.@."
             (Cost.to_string (Relmodel.Plan_cost.estimate catalog eplan))
             e.stats.nodes
             (if e.aborted then ", aborted" else "")
             Physical.pp eplan
       end;
       if execute then begin
         let tuples, schema, io = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
         Format.printf "Result (%d rows; io: %a):@." (Array.length tuples)
           Executor.Io_stats.pp io;
         Format.printf "%s@." (String.concat " | " (Schema.names schema));
         Array.iteri
           (fun i t -> if i < 20 then Format.printf "%a@." Tuple.pp t)
           tuples;
         if Array.length tuples > 20 then
           Format.printf "... (%d more rows)@." (Array.length tuples - 20)
       end);
    0

let print_rows tuples schema io =
  Format.printf "Result (%d rows; io: %a):@." (Array.length tuples)
    Executor.Io_stats.pp io;
  Format.printf "%s@." (String.concat " | " (Schema.names schema));
  Array.iteri (fun i t -> if i < 20 then Format.printf "%a@." Tuple.pp t) tuples;
  if Array.length tuples > 20 then
    Format.printf "... (%d more rows)@." (Array.length tuples - 20)

let path_label = function
  | [] -> "root"
  | p -> String.concat "." (List.map string_of_int p)

let print_feedback_report (r : Feedback.report) =
  Format.printf "Feedback: %d nodes observed, %d drifted (threshold %.1fx)%s@."
    (List.length r.nodes) (List.length r.drifted) r.threshold
    (if r.escaped then Printf.sprintf "; escaped, %d replan(s)" r.replans else "");
  List.iter
    (fun (n : Feedback.node_obs) ->
      Format.printf "  drift [%s] %s: estimated %.0f, observed %d (%.1fx) over %s@."
        (path_label n.path) n.alg n.estimated n.observed n.ratio
        (String.concat ", " n.relations))
    r.drifted;
  List.iter
    (fun (c : Feedback.correction) ->
      Format.printf "  corrected %s (stats v%d): %s@." c.table c.stats_version c.detail)
    r.corrections

(* Doctor a table's claimed row count without touching its data: the
   instrument panel for demonstrating the feedback loop against a known
   estimation error. *)
let apply_skews catalog skews =
  List.iter
    (fun (table, factor) ->
      match Catalog.find_opt catalog table with
      | None -> Format.eprintf "skew: unknown table %s (ignored)@." table
      | Some tbl ->
        let s = tbl.Catalog.stats in
        let rc = Float.max 1. (s.Catalog.Stats.row_count *. factor) in
        let stats =
          {
            Catalog.Stats.row_count = rc;
            columns =
              List.map
                (fun (c, (cs : Catalog.Stats.column_stats)) ->
                  ( c,
                    {
                      cs with
                      Catalog.Stats.n_distinct =
                        Float.max 1. (Float.min cs.Catalog.Stats.n_distinct rc);
                    } ))
                s.Catalog.Stats.columns;
          }
        in
        Catalog.update_stats catalog ~table ~stats ();
        Format.eprintf "skew: %s claimed row count %.0f -> %.0f (data unchanged)@."
          table s.Catalog.Stats.row_count rc)
    skews

(* RUN: optimize and execute. Without --feedback this is the plain
   optimize-then-execute path, bit-identical to `optimize -x`; with it,
   execution is instrumented, drift is reported, and the catalog learns. *)
let run_run sql feedback drift_out escape_k threshold no_correct max_replans skews
    domains scheduler =
  let catalog = demo_catalog () in
  apply_skews catalog skews;
  match Sqlfront.parse catalog sql with
  | exception Sqlfront.Parse_error msg ->
    Format.eprintf "parse error: %s@." msg;
    1
  | { logical; required } ->
    let request =
      { (Relmodel.Optimizer.request catalog) with domains; scheduler }
    in
    if not feedback then begin
      let result = Relmodel.Optimizer.optimize request logical ~required in
      match result.plan with
      | None ->
        Format.printf "No plan found within the cost limit.@.";
        1
      | Some plan ->
        Format.printf "Plan (estimated cost %s):@.%s@.@." (Cost.to_string plan.cost)
          (Relmodel.Optimizer.explain plan);
        let tuples, schema, io =
          Executor.run catalog (Relmodel.Optimizer.to_physical plan)
        in
        print_rows tuples schema io;
        0
    end
    else begin
      let config =
        Feedback.config ~drift_threshold:threshold ?escape_factor:escape_k
          ~correct:(not no_correct) ~max_replans ()
      in
      match Feedback.run ~config request logical ~required with
      | exception Invalid_argument msg ->
        Format.eprintf "%s@." msg;
        1
      | outcome ->
        Format.printf "Plan (estimated cost %s):@.%s@.@."
          (Cost.to_string outcome.plan.cost)
          (Relmodel.Optimizer.explain outcome.plan);
        print_rows outcome.tuples outcome.schema outcome.io;
        Format.printf "@.";
        print_feedback_report outcome.report;
        Format.printf "Measured work: %.0f@."
          (Feedback.measured_work
             (Relmodel.Optimizer.to_physical outcome.plan)
             outcome.report.nodes ~io:outcome.io);
        Option.iter
          (fun path ->
            Obs.Json.write_file path (Feedback.report_to_json outcome.report);
            Format.eprintf "wrote %s@." path)
          drift_out;
        0
    end

(* EXPLAIN: optimize with alternative recording on and print the winner
   provenance tree — per-node costs, producing rules, and the losing
   alternatives of every goal with the reason each lost. *)
let run_explain sql no_pruning no_guided left_deep domains scheduler =
  let catalog = demo_catalog () in
  match Sqlfront.parse catalog sql with
  | exception Sqlfront.Parse_error msg ->
    Format.eprintf "parse error: %s@." msg;
    1
  | { logical; required } ->
    let request =
      {
        (Relmodel.Optimizer.request catalog) with
        pruning = not no_pruning;
        guided_pruning = not no_guided;
        flags = { Relmodel.Rel_model.default_flags with left_deep_only = left_deep };
        domains;
        scheduler;
        explain = true;
      }
    in
    let result = Relmodel.Optimizer.optimize request logical ~required in
    (match result.plan, result.explain with
     | None, _ ->
       Format.printf "No plan found within the cost limit.@.";
     | Some plan, provenance ->
       Format.printf "Winning plan (estimated cost %s):@." (Cost.to_string plan.cost);
       (match provenance with
        | Some e -> Format.printf "%s" e
        | None -> Format.printf "%s@." (Relmodel.Optimizer.explain plan)));
    0

let run_tables () =
  print_tables (demo_catalog ());
  0

let run_repl () =
  let catalog = demo_catalog () in
  let session = Relmodel.Optimizer.session (Relmodel.Optimizer.request catalog) in
  Format.printf
    "volcano-cli repl — demo tables: emp, dept, proj. Empty line or ctrl-d quits.@.";
  print_tables catalog;
  let rec loop () =
    Format.printf "@.sql> %!";
    match In_channel.input_line stdin with
    | None | Some "" -> 0
    | Some line -> begin
      (* Any failure — parse, optimize, or execute — is reported and
         the session (with its shared memo) survives for the next
         statement. *)
      (try
         match Sqlfront.parse catalog line with
         | exception Sqlfront.Parse_error msg -> Format.printf "parse error: %s@." msg
         | { logical; required } -> begin
           match (Relmodel.Optimizer.optimize_in session logical ~required).plan with
           | None -> Format.printf "no plan@."
           | Some plan ->
             Format.printf "%s@." (Relmodel.Optimizer.explain plan);
             let rows, schema, _ = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
             Format.printf "%s@." (String.concat " | " (Schema.names schema));
             Array.iteri (fun i t -> if i < 10 then Format.printf "%a@." Tuple.pp t) rows;
             if Array.length rows > 10 then
               Format.printf "... (%d rows total)@." (Array.length rows)
         end
       with
      | Stack_overflow | Out_of_memory -> Format.printf "error: resource exhausted@."
      | exn -> Format.printf "error: %s@." (Printexc.to_string exn));
      loop ()
    end
  in
  loop ()

(* A deliberately minimal HTTP/1.1 responder for the metrics endpoint:
   one request per connection, no keep-alive. Minimal is not sloppy:
   the request is read to its header terminator (not a single read),
   unknown paths get a real 404, a malformed request line a 400, and a
   handler failure a 500 — never a silently closed connection. *)
let http_header_end s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then false
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then true
    else go (i + 1)
  in
  go 0

let http_read_request fd =
  let chunk = Bytes.create 1024 in
  let buf = Buffer.create 512 in
  let rec go () =
    if Buffer.length buf > 16_384 || http_header_end (Buffer.contents buf) then
      Buffer.contents buf
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 | (exception Unix.Unix_error _) -> Buffer.contents buf
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ()

let http_write fd status ctype body =
  let resp =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n%s"
      status ctype (String.length body) body
  in
  ignore (Unix.write_substring fd resp 0 (String.length resp))

let serve_metrics srv profiler port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 16;
  Format.printf
    "metrics: http://127.0.0.1:%d/metrics (Prometheus text), /metrics.json, \
     /status, /slow, /profile@."
    port;
  Format.print_flush ();
  let reg = Plansrv.registry srv in
  let json j = ("200 OK", "application/json", Obs.Json.to_string j) in
  let rec loop () =
    let fd, _ = Unix.accept sock in
    (try
       let request = http_read_request fd in
       let request_line =
         match String.index_opt request '\r' with
         | Some i -> String.sub request 0 i
         | None -> request
       in
       let status, ctype, body =
         match String.split_on_char ' ' request_line with
         | [ _meth; path; _version ] -> begin
           match path with
           | "/metrics" ->
             ("200 OK", "text/plain; version=0.0.4", Obs.Metrics.to_prometheus reg)
           | "/metrics.json" -> json (Obs.Metrics.to_json reg)
           | "/status" -> json (Plansrv.status_json srv)
           | "/slow" -> json (Plansrv.slow_log_json srv)
           | "/profile" -> json (Obs.Profile.to_json profiler)
           | _ -> ("404 Not Found", "text/plain", "not found\n")
         end
         | _ -> ("400 Bad Request", "text/plain", "malformed request line\n")
       in
       http_write fd status ctype body
     with _ -> (
       try http_write fd "500 Internal Server Error" "text/plain" "internal error\n"
       with _ -> ()));
    (try Unix.close fd with Unix.Unix_error _ -> ());
    loop ()
  in
  loop ()

(* One SQL statement per line; blank lines and # comments are skipped. *)
let statements_of_lines lines =
  List.filter
    (fun line ->
      let line = String.trim line in
      line <> "" && line.[0] <> '#')
    lines

let parse_statements catalog statements =
  List.filter_map
    (fun line ->
      match Sqlfront.parse catalog line with
      | exception Sqlfront.Parse_error msg ->
        Format.eprintf "parse error (skipped): %s  -- %s@." msg line;
        None
      | { Sqlfront.logical; required } -> Some (line, logical, required))
    statements

let print_response line (r : Plansrv.response) =
  let outcome =
    match r.Plansrv.outcome with
    | Plansrv.Hit -> "HIT"
    | Plansrv.Miss -> "MISS"
    | Plansrv.Invalidated -> "STALE"
  in
  let cost =
    match r.Plansrv.plan with
    | Some plan -> Cost.to_string plan.cost
    | None -> "no plan"
  in
  let fp =
    if String.length r.Plansrv.fingerprint <= 32 then r.Plansrv.fingerprint
    else String.sub r.Plansrv.fingerprint 0 32 ^ "..."
  in
  Format.printf "%-5s %8.3f ms  cost %-14s %s%s  [%s]@." outcome r.Plansrv.latency_ms
    cost
    (if r.Plansrv.parameterized then "param " else "")
    line fp

let run_serve file workers capacity shards parameterize feedback skews domains
    scheduler metrics_port slow_ms =
  let catalog = demo_catalog () in
  apply_skews catalog skews;
  (* Every cache-miss optimization feeds the service-wide profiler, so
     /profile attributes the service's cumulative search effort to
     rules and enforcers. Plan-inert by contract. *)
  let profiler = Obs.Profile.create () in
  let srv =
    Plansrv.create
      (Plansrv.config ~capacity ~shards ~parameterize ~slow_ms
         {
           (Relmodel.Optimizer.request catalog) with
           domains;
           scheduler;
           profiler = Some profiler;
         })
  in
  let lines =
    match file with
    | Some path -> In_channel.with_open_text path In_channel.input_lines
    | None -> In_channel.input_lines stdin
  in
  let parsed = parse_statements catalog (statements_of_lines lines) in
  if parsed = [] then begin
    Format.eprintf "no statements to serve@.";
    1
  end
  else begin
    if feedback then begin
      (* Feedback serving is the closed loop, one statement at a time:
         serve a plan, execute it instrumented, install corrections —
         and let the bumped statistics stamps turn the next arrival of
         an affected query into a STALE re-optimization. *)
      if workers > 1 then
        Format.eprintf "feedback serving is sequential; ignoring --workers %d@." workers;
      let w = Plansrv.worker srv in
      let fb_config = Feedback.config () in
      let request = Plansrv.service_request srv in
      List.iter
        (fun (line, logical, required) ->
          let r = Plansrv.serve_one srv w logical ~required in
          print_response line r;
          match r.Plansrv.plan with
          | None -> ()
          | Some plan ->
            let outcome = Feedback.run_plan ~config:fb_config request logical ~required plan in
            Plansrv.note_search srv outcome.Feedback.report.Feedback.stats;
            let rep = outcome.Feedback.report in
            if rep.Feedback.drifted <> [] then
              Format.printf "      FEEDBACK %d/%d nodes drifted (threshold %.1fx)@."
                (List.length rep.Feedback.drifted)
                (List.length rep.Feedback.nodes)
                rep.Feedback.threshold;
            List.iter
              (fun (c : Feedback.correction) ->
                Format.printf "      FEEDBACK corrected %s -> stats v%d (%s)@." c.table
                  c.stats_version c.detail)
              rep.Feedback.corrections)
        parsed
    end
    else begin
      let requests =
        Array.of_list
          (List.map (fun (_, logical, required) -> (logical, required)) parsed)
      in
      let responses = Plansrv.serve ~workers srv requests in
      List.iteri (fun i (line, _, _) -> print_response line responses.(i)) parsed
    end;
    Format.printf "@.%a@." Plansrv.pp_metrics (Plansrv.metrics srv);
    match metrics_port with
    | None -> 0
    | Some port ->
      (* Keep the service alive and export its registry over HTTP until
         the process is killed. *)
      serve_metrics srv profiler port
  end

(* Multi-query optimization over a SQL file: every statement goes into
   one shared memo (through the plan service's sharded cache), common
   subexpressions are detected by per-subtree fingerprints, and the
   selected strategy decides which shared results to materialize once
   and rescan instead of recomputing per consumer. *)
let run_batch file strategy capacity shards domains scheduler metrics_out =
  let catalog = demo_catalog () in
  let lines = In_channel.with_open_text file In_channel.input_lines in
  let parsed = parse_statements catalog (statements_of_lines lines) in
  if parsed = [] then begin
    Format.eprintf "no statements to optimize@.";
    1
  end
  else begin
    let srv =
      Plansrv.create
        (Plansrv.config ~capacity ~shards
           { (Relmodel.Optimizer.request catalog) with domains; scheduler })
    in
    let w = Plansrv.worker srv in
    let queries = List.map (fun (_, logical, required) -> (logical, required)) parsed in
    let report, _responses = Mqo.serve_batch ~strategy srv w queries in
    Format.printf "Batch of %d statements, strategy %s:@.@." (List.length parsed)
      (Mqo.strategy_name report.strategy);
    List.iteri
      (fun i (line, _, _) ->
        let qr = List.nth report.results i in
        let reused =
          match qr.Mqo.reused with
          | [] -> ""
          | names -> "  reuses " ^ String.concat ", " names
        in
        Format.printf "[%d] independent %-14s batch %-14s%s@.    %s@." i
          (Cost.to_string qr.Mqo.independent_cost)
          (Cost.to_string qr.Mqo.final_cost)
          reused line;
        match qr.Mqo.plan with
        | None -> Format.printf "    no plan@."
        | Some plan -> Format.printf "%s@." (Relmodel.Optimizer.explain plan))
      parsed;
    if report.shared = [] then
      Format.printf "@.No shared subexpressions across the batch.@."
    else begin
      Format.printf "@.Shared subexpressions (%d spanning 2+ queries):@."
        report.shared_groups;
      List.iter
        (fun (s : Mqo.shared) ->
          Format.printf "  %s  over %s@."
            (if s.chosen then "MATERIALIZE " ^ s.mat_name else "recompute")
            (String.concat " * " s.relations);
          (match s.producer with
           | Some q -> Format.printf "    producer: query %d@." q
           | None -> ());
          Format.printf "    consumers: %s@."
            (String.concat ", " (List.map string_of_int s.consumers));
          Format.printf "    compute %s  write %s  read %s@."
            (Cost.to_string s.compute) (Cost.to_string s.write) (Cost.to_string s.read))
        report.shared
    end;
    let saved = report.independent_total -. report.batch_total in
    Format.printf "@.Independent total: %.6f s@." report.independent_total;
    Format.printf "Batch total:       %.6f s@." report.batch_total;
    Format.printf "Saved:             %.6f s (%.1f%%)@." saved
      (if report.independent_total > 0. then 100. *. saved /. report.independent_total
       else 0.);
    Format.printf "Sharing: %d shared groups, %d materialized, %d reuse sites@."
      report.shared_groups report.materialize_chosen report.reuse_hits;
    Option.iter
      (fun path ->
        Obs.Json.write_file path (Obs.Metrics.to_json (Plansrv.registry srv));
        Format.eprintf "wrote %s@." path)
      metrics_out;
    0
  end

let run_workload n seed shape skew correlation promise =
  let spec = Workload.spec ~shape ~skew ?correlation ~n_relations:n ~seed () in
  let q = Workload.generate spec in
  Format.printf "Random %d-relation %s query (%d join edges):@.%a@.@." n
    (Workload.shape_name shape) (List.length q.edges) Logical.pp q.logical;
  let result =
    Relmodel.Optimizer.optimize
      { (Relmodel.Optimizer.request q.catalog) with promise }
      q.logical ~required:Phys_prop.any
  in
  (match result.plan with
   | None -> Format.printf "no plan@."
   | Some plan ->
     Format.printf "Best plan (cost %s):@.%s@.@." (Cost.to_string plan.cost)
       (Relmodel.Optimizer.explain plan);
     Format.printf "Search: %a@." Volcano.Search_stats.pp result.stats;
     Format.printf "Tasks: %a@." Volcano.Search_stats.pp_tasks result.stats);
  0

open Cmdliner

(* Domain/worker/capacity counts must be >= 1: a zero or negative count
   is a spelled-out usage error, not a silent clamp. *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "expected a positive count, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "expected a positive count, got %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

(* A query file must exist, be readable, and contain at least one
   statement — checked up front on `batch` and `serve` so a typo'd or
   empty path is a spelled-out usage error, not a late failure. *)
let query_file =
  let parse path =
    match In_channel.with_open_text path In_channel.input_lines with
    | exception Sys_error e -> Error (`Msg (Printf.sprintf "unreadable query file: %s" e))
    | lines ->
      let statements =
        List.filter
          (fun line ->
            let line = String.trim line in
            line <> "" && line.[0] <> '#')
          lines
      in
      if statements = [] then
        Error
          (`Msg
            (Printf.sprintf "query file %s is empty (no statements, only blanks/comments)"
               path))
      else Ok path
  in
  Arg.conv ~docv:"FILE" (parse, Format.pp_print_string)

let scheduler_conv =
  Arg.enum
    [ ("stealing", Volcano.Search.Stealing); ("seeded", Volcano.Search.Seeded) ]

let scheduler_arg =
  Arg.(
    value
    & opt scheduler_conv Volcano.Search.Stealing
    & info [ "scheduler" ] ~docv:"SCHED"
        ~doc:
          "Parallel-phase scheduler: $(b,stealing) (per-domain work-stealing deques \
           with duplicate-killing claim backoff; the default) or $(b,seeded) (the \
           shared-counter ablation arm). The found plan is identical either way; \
           only the scheduling and its effort counters differ.")

let promise_conv =
  Arg.enum
    [ ("dynamic", Volcano.Search.Dynamic); ("static", Volcano.Search.Static) ]

let promise_arg =
  Arg.(
    value
    & opt promise_conv Volcano.Search.Dynamic
    & info [ "promise" ] ~docv:"MODE"
        ~doc:
          "Move-ordering policy at each goal: $(b,dynamic) (score every assembled \
           move from the memo's logical properties and the model's cost estimates, \
           pursue cheap covering moves first; the default) or $(b,static) (the \
           paper's fixed per-rule promise integers). Under an unbounded budget the \
           found plan and cost are bit-identical either way; under a step budget \
           dynamic typically reaches good incumbents in fewer tasks.")

let sql_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SQL" ~doc:"SQL statement to optimize (quote it).")

let optimize_cmd =
  let execute =
    Arg.(value & flag & info [ "execute"; "x" ] ~doc:"Execute the plan and print rows.")
  in
  let exodus =
    Arg.(value & flag & info [ "exodus" ] ~doc:"Also optimize with the EXODUS-style baseline.")
  in
  let no_pruning =
    Arg.(value & flag & info [ "no-pruning" ] ~doc:"Disable branch-and-bound pruning.")
  in
  let no_guided =
    Arg.(
      value & flag
      & info [ "no-guided-pruning" ]
          ~doc:
            "Keep plain Figure-2 branch-and-bound but disable the guided layer: group \
             cost lower bounds, lower-bound goal kills, and sibling-aware input limits.")
  in
  let left_deep =
    Arg.(value & flag & info [ "left-deep" ] ~doc:"Restrict join plans to left-deep shape.")
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Deterministic step budget: stop after N engine tasks and return the best \
             plan found so far (anytime optimization).")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Wall-clock budget in milliseconds; same anytime semantics as max-steps.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Collect hierarchical search spans (goals, tasks, phases — including the \
             parallel phase on per-worker tracks) and print a per-track / per-outcome \
             summary to stderr.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the span trace to $(docv) in the Chrome trace event format \
             (load in chrome://tracing or Perfetto; one track per domain).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSON metrics snapshot to $(docv): every search counter plus the \
             per-goal task-count histogram.")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Profile the search and write per-rule / per-enforcer / per-operator \
             effort attribution to $(docv) as JSON (tasks, mexprs generated, plans \
             won, goals pruned, wasted work, cumulative task time); a top-N table \
             goes to stderr. Profiling is plan-inert: the found plan is \
             bit-identical with or without it.")
  in
  let flightrec_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flightrec-out" ] ~docv:"FILE"
          ~doc:
            "Arm the flight recorder: fixed-size per-worker rings of recent engine \
             events (task begin/end, claim/publish, prune, incumbent), dumped to \
             $(docv) when the search pauses on a budget or abandons a stalled run \
             (and at end-of-run otherwise, so the file always exists).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Record losing alternatives during the search and print the winner \
             provenance tree (see also the $(b,explain) subcommand).")
  in
  let domains =
    Arg.(
      value & opt pos_int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Run the search on N OCaml domains sharing one memo. The plan and cost \
             are bit-identical to the sequential engine at any N.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Optimize (and optionally run) a SQL statement")
    Term.(
      const run_optimize $ sql_arg $ execute $ exodus $ no_pruning $ no_guided
      $ left_deep $ max_steps $ timeout_ms $ trace $ trace_out $ metrics_out
      $ profile_out $ flightrec_out $ explain $ domains $ scheduler_arg
      $ promise_arg)

let skew_conv =
  let parse s =
    match String.index_opt s ':' with
    | Some i -> begin
      let table = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt rest with
      | Some f when f > 0. && table <> "" -> Ok (table, f)
      | _ ->
        Error (`Msg (Printf.sprintf "expected TABLE:FACTOR with FACTOR > 0, got %S" s))
    end
    | None -> Error (`Msg (Printf.sprintf "expected TABLE:FACTOR, got %S" s))
  in
  Arg.conv ~docv:"TABLE:FACTOR" (parse, fun ppf (t, f) -> Format.fprintf ppf "%s:%g" t f)

let skew_arg =
  Arg.(
    value
    & opt_all skew_conv []
    & info [ "skew" ] ~docv:"TABLE:FACTOR"
        ~doc:
          "Multiply $(b,TABLE)'s claimed row count by $(b,FACTOR) before optimizing \
           (the stored data is untouched), injecting a known estimation error for \
           the feedback loop to discover. Repeatable.")

let run_cmd =
  let feedback =
    Arg.(
      value & flag
      & info [ "feedback" ]
          ~doc:
            "Instrument the execution with per-node cardinality counters, report \
             estimate-vs-actual drift, and correct the catalog statistics the drift \
             incriminates (bumping their versions, so cached plans invalidate). \
             Without this flag the command is plain optimize-then-execute with \
             bit-identical results.")
  in
  let drift_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "drift-out" ] ~docv:"FILE"
          ~doc:
            "Write the drift report to $(docv) as JSON: per-node estimated vs \
             observed cardinalities, q-errors, corrections installed, and the \
             $(b,feedback_*) counters (validate with $(b,validate_obs drift)).")
  in
  let escape_k =
    Arg.(
      value
      & opt (some float) None
      & info [ "escape-k" ] ~docv:"K"
          ~doc:
            "Arm the mid-query escape hatch: abort as soon as any node's observed \
             cardinality exceeds K times its estimate, correct the offending \
             statistic, and re-optimize (at most $(b,--max-replans) times). With \
             exact estimates the hatch never fires. K must be >= 1.")
  in
  let threshold =
    Arg.(
      value & opt float 2.
      & info [ "drift-threshold" ] ~docv:"Q"
          ~doc:
            "q-error at or above which a node counts as drifted and feeds a \
             correction; must be >= 1 (1 flags every inexact estimate).")
  in
  let no_correct =
    Arg.(
      value & flag
      & info [ "no-correct" ]
          ~doc:"Observe and report drift only; leave the catalog statistics alone.")
  in
  let max_replans =
    Arg.(
      value & opt int 1
      & info [ "max-replans" ] ~docv:"N"
          ~doc:"Escape-hatch re-optimization budget (the final attempt always runs \
                to completion).")
  in
  let domains =
    Arg.(
      value & opt pos_int 1
      & info [ "domains" ] ~docv:"N" ~doc:"OCaml domains for the search.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Optimize and execute a SQL statement; with $(b,--feedback), observe \
          actual per-node cardinalities, report drift against the optimizer's \
          estimates, and feed corrections back into the catalog")
    Term.(
      const run_run $ sql_arg $ feedback $ drift_out $ escape_k $ threshold
      $ no_correct $ max_replans $ skew_arg $ domains $ scheduler_arg)

let explain_cmd =
  let no_pruning =
    Arg.(value & flag & info [ "no-pruning" ] ~doc:"Disable branch-and-bound pruning.")
  in
  let no_guided =
    Arg.(
      value & flag
      & info [ "no-guided-pruning" ] ~doc:"Disable the guided pruning layer.")
  in
  let left_deep =
    Arg.(value & flag & info [ "left-deep" ] ~doc:"Restrict join plans to left-deep shape.")
  in
  let domains =
    Arg.(
      value & opt pos_int 1
      & info [ "domains" ] ~docv:"N" ~doc:"OCaml domains for the search.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Optimize a SQL statement and print winner provenance: per-node costs, the \
          implementation rule that produced each node, and every goal's losing \
          alternatives with the reason each lost")
    Term.(
      const run_explain $ sql_arg $ no_pruning $ no_guided $ left_deep $ domains
      $ scheduler_arg)

let tables_cmd =
  Cmd.v (Cmd.info "tables" ~doc:"List the demo catalog") Term.(const run_tables $ const ())

let repl_cmd =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive SQL session over the demo catalog")
    Term.(const run_repl $ const ())

let serve_cmd =
  let file =
    Arg.(
      value
      & opt (some query_file) None
      & info [ "file"; "f" ] ~docv:"FILE"
          ~doc:
            "Read SQL statements (one per line, # comments) from $(docv) instead of \
             stdin. The file must be readable and contain at least one statement.")
  in
  let workers =
    Arg.(
      value & opt pos_int 1
      & info [ "workers" ] ~docv:"N" ~doc:"Serving domains pulling from the request queue.")
  in
  let capacity =
    Arg.(
      value & opt pos_int 512
      & info [ "capacity" ] ~docv:"N" ~doc:"Total plan-cache entries across all shards.")
  in
  let shards =
    Arg.(
      value & opt pos_int 8
      & info [ "shards" ] ~docv:"N" ~doc:"Independently locked cache shards.")
  in
  let parameterize =
    Arg.(
      value & flag
      & info [ "parameterize" ]
          ~doc:
            "Erase the single numeric literal from fingerprints so one dynamic-plan \
             entry serves a whole range of constants.")
  in
  let domains =
    Arg.(
      value & opt pos_int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "OCaml domains per cache-miss optimization (intra-query parallel search), \
             on top of the $(b,--workers) across-query parallelism.")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "After serving the batch, keep running and export the service's \
             observability on 127.0.0.1:$(docv): $(b,/metrics) (Prometheus text), \
             $(b,/metrics.json), $(b,/status) (service status JSON), $(b,/slow) \
             (slow-query log with captured EXPLAIN provenance), and $(b,/profile) \
             (per-rule search effort attribution).")
  in
  let slow_ms =
    Arg.(
      value & opt float 50.
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query threshold: responses at or above $(docv) milliseconds land \
             in the slow-query log served on $(b,/slow).")
  in
  let feedback =
    Arg.(
      value & flag
      & info [ "feedback" ]
          ~doc:
            "Close the loop: execute every served plan with cardinality \
             instrumentation, correct drifted catalog statistics, and let the bumped \
             statistics versions invalidate affected cache entries — a repeated \
             query goes MISS, then STALE (re-optimized against corrected stats), \
             then HIT. Forces sequential serving.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Optimization service: fingerprinted plan cache over a batch of statements")
    Term.(
      const run_serve $ file $ workers $ capacity $ shards $ parameterize $ feedback
      $ skew_arg $ domains $ scheduler_arg $ metrics_port $ slow_ms)

let batch_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some query_file) None
      & info [] ~docv:"FILE"
          ~doc:
            "SQL statements to optimize as one batch (one per line, # comments). The \
             file must be readable and contain at least one statement.")
  in
  let strategy =
    let strategy_conv =
      let parse s =
        match Mqo.strategy_of_string s with
        | Some st -> Ok st
        | None ->
          Error
            (`Msg (Printf.sprintf "unknown strategy %S (expected off, sh, or ru)" s))
      in
      Arg.conv ~docv:"STRATEGY"
        (parse, fun ppf s -> Format.pp_print_string ppf (Mqo.strategy_name s))
    in
    Arg.(
      value
      & opt strategy_conv Mqo.Volcano_sh
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Sharing strategy: $(b,sh) (Volcano-SH: cost-based post-pass over the \
             independently-optimal plans; the default), $(b,ru) (Volcano-RU: \
             reuse-aware re-optimization in arrival order), or $(b,off) (independent \
             optimization in the shared memo — bit-identical plans, no sharing).")
  in
  let capacity =
    Arg.(
      value & opt pos_int 512
      & info [ "capacity" ] ~docv:"N" ~doc:"Total plan-cache entries across all shards.")
  in
  let shards =
    Arg.(
      value & opt pos_int 8
      & info [ "shards" ] ~docv:"N" ~doc:"Independently locked cache shards.")
  in
  let domains =
    Arg.(
      value & opt pos_int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"OCaml domains per optimization (intra-query parallel search).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the service's metrics registry (cache counters plus merged search \
             effort, including the $(b,mqo_*) counters) to $(docv) as JSON.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Multi-query optimization: load a SQL file into one shared memo, detect \
          common subexpressions, and materialize/reuse shared results when that \
          lowers the batch cost")
    Term.(
      const run_batch $ file $ strategy $ capacity $ shards $ domains $ scheduler_arg
      $ metrics_out)

let workload_cmd =
  let n =
    Arg.(
      value & opt pos_int 4
      & info [ "n" ] ~docv:"N"
          ~doc:"Number of input relations (a positive count; the paper uses 2-10).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.") in
  let shape_conv =
    Arg.enum (List.map (fun s -> (Workload.shape_name s, s)) Workload.all_shapes)
  in
  let shape =
    Arg.(
      value & opt shape_conv Workload.Chain
      & info [ "shape" ] ~docv:"SHAPE"
          ~doc:
            "Join-graph topology: $(b,chain), $(b,star), $(b,random), $(b,clique), \
             $(b,cycle), $(b,grid), or $(b,snowflake).")
  in
  (* Skew and correlation are probabilities/exponents on [0, 1]: anything
     outside that range is a spelled-out usage error (mirroring pos_int),
     caught at parse time rather than as a late Invalid_argument. *)
  let unit_float what =
    let parse s =
      match float_of_string_opt s with
      | Some f when f >= 0. && f <= 1. -> Ok f
      | Some f ->
        Error (`Msg (Printf.sprintf "expected a %s within [0, 1], got %g" what f))
      | None ->
        Error (`Msg (Printf.sprintf "expected a %s within [0, 1], got %S" what s))
    in
    Arg.conv ~docv:"F" (parse, Format.pp_print_float)
  in
  let skew =
    Arg.(
      value
      & opt (unit_float "skew factor") 0.
      & info [ "skew" ] ~docv:"F"
          ~doc:
            "Per-table statistics skew in [0, 1]: 0 (the default) draws relation \
             sizes uniformly as the paper does; above 0, relation $(i,i) gets \
             max_rows / (i+1)^(2*F) rows — a zipf-like size ladder.")
  in
  let correlation =
    Arg.(
      value
      & opt (some (unit_float "correlation")) None
      & info [ "correlation" ] ~docv:"F"
          ~doc:
            "Probability in [0, 1] that a join edge reuses the shared key column \
             (correlated predicates and shared interesting orders). Without this \
             flag the legacy fixed 3/4 draw is kept.")
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Generate and optimize a paper-style random query over a chosen join-graph \
          topology, with optional statistics skew and predicate correlation")
    Term.(const run_workload $ n $ seed $ shape $ skew $ correlation $ promise_arg)

let () =
  let doc = "The Volcano optimizer generator (Graefe & McKenna, ICDE 1993)" in
  let info = Cmd.info "volcano-cli" ~version:"1.0.0" ~doc in
  (* With no subcommand, render the help page (which lists every
     subcommand with its one-line summary) instead of erroring out. *)
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            optimize_cmd;
            run_cmd;
            explain_cmd;
            tables_cmd;
            workload_cmd;
            repl_cmd;
            serve_cmd;
            batch_cmd;
          ]))
