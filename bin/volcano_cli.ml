(* volcano-cli: optimize and run SQL against a demo catalog.

   Subcommands:
     optimize  parse a SQL statement, print the logical tree, the
               optimized plan, search statistics; optionally execute it
               or compare with the EXODUS-style baseline
     tables    list the demo catalog
     workload  generate and optimize one paper-style random query
     repl      interactive SQL session with a shared optimizer memo
     serve     line-oriented optimization service over stdin or a batch
               file: fingerprinted plan cache, optional concurrent
               workers, cache observability counters *)

open Relalg

let demo_catalog () =
  let catalog = Catalog.create () in
  ignore
    (Catalog.add_synthetic catalog ~name:"emp"
       ~columns:
         [
           ("id", Catalog.Serial);
           ("dept_id", Catalog.Uniform_int (0, 119));
           ("salary", Catalog.Uniform_int (30_000, 150_000));
           ("age", Catalog.Uniform_int (21, 65));
         ]
       ~rows:7_200 ~seed:7 ());
  ignore
    (Catalog.add_synthetic catalog ~name:"dept"
       ~columns:
         [
           ("id", Catalog.Serial);
           ("budget", Catalog.Uniform_int (100_000, 5_000_000));
           ("floor", Catalog.Uniform_int (1, 12));
         ]
       ~rows:1_200 ~seed:8 ());
  ignore
    (Catalog.add_synthetic catalog ~name:"proj"
       ~columns:
         [
           ("id", Catalog.Serial);
           ("dept_id", Catalog.Uniform_int (0, 119));
           ("cost", Catalog.Uniform_int (1_000, 900_000));
         ]
       ~rows:2_400 ~seed:9 ());
  catalog

let print_tables catalog =
  List.iter
    (fun (t : Catalog.table) ->
      Format.printf "%-6s %6d rows  %a@." t.name (Array.length t.tuples) Schema.pp t.schema)
    (Catalog.tables catalog)

let run_optimize sql execute compare_exodus no_pruning no_guided left_deep max_steps
    timeout_ms trace domains =
  let catalog = demo_catalog () in
  match Sqlfront.parse catalog sql with
  | exception Sqlfront.Parse_error msg ->
    Format.eprintf "parse error: %s@." msg;
    1
  | { logical; required } ->
    Format.printf "Logical query:@.%a@.@." Logical.pp logical;
    Format.printf "Required properties: %s@.@." (Phys_prop.to_string required);
    let request =
      {
        (Relmodel.Optimizer.request catalog) with
        pruning = not no_pruning;
        guided_pruning = not no_guided;
        flags = { Relmodel.Rel_model.default_flags with left_deep_only = left_deep };
        max_tasks = max_steps;
        max_millis = timeout_ms;
        domains;
        trace =
          (if trace then
             Some
               (fun e ->
                 Format.eprintf "trace: %a@." Volcano.Search_stats.pp_trace_event e)
           else None);
      }
    in
    let result = Relmodel.Optimizer.optimize request logical ~required in
    if trace then
      (* Close the per-task trace with the per-kind counters it drilled
         into, whether or not a plan was found. *)
      Format.eprintf "trace summary: %a@." Volcano.Search_stats.pp_tasks result.stats;
    if not result.complete then
      Format.printf
        "Budget exhausted after %d tasks; showing the best plan found so far.@.@."
        result.tasks_run;
    (match result.plan with
     | None ->
       Format.printf "No plan found within the cost limit.@.";
     | Some plan ->
       Format.printf "Volcano plan (estimated cost %s):@.%s@.@."
         (Cost.to_string plan.cost)
         (Relmodel.Optimizer.explain plan);
       Format.printf "Search: %a@." Volcano.Search_stats.pp result.stats;
       Format.printf "Tasks: %a@." Volcano.Search_stats.pp_tasks result.stats;
       Format.printf "Memo: %d groups, %d multi-expressions@.@." result.memo_groups
         result.memo_mexprs;
       if compare_exodus then begin
         let e = Exodus.optimize ~catalog ~max_nodes:200_000 logical ~required in
         match e.plan with
         | None -> Format.printf "EXODUS baseline: no plan (aborted=%b)@." e.aborted
         | Some eplan ->
           Format.printf "EXODUS baseline plan (estimated cost %s, nodes %d%s):@.%a@.@."
             (Cost.to_string (Relmodel.Plan_cost.estimate catalog eplan))
             e.stats.nodes
             (if e.aborted then ", aborted" else "")
             Physical.pp eplan
       end;
       if execute then begin
         let tuples, schema, io = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
         Format.printf "Result (%d rows; io: %a):@." (Array.length tuples)
           Executor.Io_stats.pp io;
         Format.printf "%s@." (String.concat " | " (Schema.names schema));
         Array.iteri
           (fun i t -> if i < 20 then Format.printf "%a@." Tuple.pp t)
           tuples;
         if Array.length tuples > 20 then
           Format.printf "... (%d more rows)@." (Array.length tuples - 20)
       end);
    0

let run_tables () =
  print_tables (demo_catalog ());
  0

let run_repl () =
  let catalog = demo_catalog () in
  let session = Relmodel.Optimizer.session (Relmodel.Optimizer.request catalog) in
  Format.printf
    "volcano-cli repl — demo tables: emp, dept, proj. Empty line or ctrl-d quits.@.";
  print_tables catalog;
  let rec loop () =
    Format.printf "@.sql> %!";
    match In_channel.input_line stdin with
    | None | Some "" -> 0
    | Some line -> begin
      (* Any failure — parse, optimize, or execute — is reported and
         the session (with its shared memo) survives for the next
         statement. *)
      (try
         match Sqlfront.parse catalog line with
         | exception Sqlfront.Parse_error msg -> Format.printf "parse error: %s@." msg
         | { logical; required } -> begin
           match (Relmodel.Optimizer.optimize_in session logical ~required).plan with
           | None -> Format.printf "no plan@."
           | Some plan ->
             Format.printf "%s@." (Relmodel.Optimizer.explain plan);
             let rows, schema, _ = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
             Format.printf "%s@." (String.concat " | " (Schema.names schema));
             Array.iteri (fun i t -> if i < 10 then Format.printf "%a@." Tuple.pp t) rows;
             if Array.length rows > 10 then
               Format.printf "... (%d rows total)@." (Array.length rows)
         end
       with
      | Stack_overflow | Out_of_memory -> Format.printf "error: resource exhausted@."
      | exn -> Format.printf "error: %s@." (Printexc.to_string exn));
      loop ()
    end
  in
  loop ()

let run_serve file workers capacity shards parameterize domains =
  let catalog = demo_catalog () in
  let srv =
    Plansrv.create
      (Plansrv.config ~capacity ~shards ~parameterize
         { (Relmodel.Optimizer.request catalog) with domains })
  in
  let lines =
    match file with
    | Some path -> In_channel.with_open_text path In_channel.input_lines
    | None -> In_channel.input_lines stdin
  in
  let statements =
    List.filter
      (fun line ->
        let line = String.trim line in
        line <> "" && line.[0] <> '#')
      lines
  in
  let parsed =
    List.filter_map
      (fun line ->
        match Sqlfront.parse catalog line with
        | exception Sqlfront.Parse_error msg ->
          Format.eprintf "parse error (skipped): %s  -- %s@." msg line;
          None
        | { Sqlfront.logical; required } -> Some (line, logical, required))
      statements
  in
  if parsed = [] then begin
    Format.eprintf "no statements to serve@.";
    1
  end
  else begin
    let requests =
      Array.of_list (List.map (fun (_, logical, required) -> (logical, required)) parsed)
    in
    let responses = Plansrv.serve ~workers srv requests in
    List.iteri
      (fun i (line, _, _) ->
        let r = responses.(i) in
        let outcome =
          match r.Plansrv.outcome with
          | Plansrv.Hit -> "HIT"
          | Plansrv.Miss -> "MISS"
          | Plansrv.Invalidated -> "STALE"
        in
        let cost =
          match r.Plansrv.plan with
          | Some plan -> Cost.to_string plan.cost
          | None -> "no plan"
        in
        let fp =
          if String.length r.Plansrv.fingerprint <= 32 then r.Plansrv.fingerprint
          else String.sub r.Plansrv.fingerprint 0 32 ^ "..."
        in
        Format.printf "%-5s %8.3f ms  cost %-14s %s%s  [%s]@." outcome
          r.Plansrv.latency_ms cost
          (if r.Plansrv.parameterized then "param " else "")
          line fp)
      parsed;
    Format.printf "@.%a@." Plansrv.pp_metrics (Plansrv.metrics srv);
    0
  end

let run_workload n seed =
  let spec = Workload.spec ~n_relations:n ~seed () in
  let q = Workload.generate spec in
  Format.printf "Random %d-relation query:@.%a@.@." n Logical.pp q.logical;
  let result =
    Relmodel.Optimizer.optimize (Relmodel.Optimizer.request q.catalog) q.logical
      ~required:Phys_prop.any
  in
  (match result.plan with
   | None -> Format.printf "no plan@."
   | Some plan ->
     Format.printf "Best plan (cost %s):@.%s@.@." (Cost.to_string plan.cost)
       (Relmodel.Optimizer.explain plan);
     Format.printf "Search: %a@." Volcano.Search_stats.pp result.stats;
     Format.printf "Tasks: %a@." Volcano.Search_stats.pp_tasks result.stats);
  0

open Cmdliner

let sql_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SQL" ~doc:"SQL statement to optimize (quote it).")

let optimize_cmd =
  let execute =
    Arg.(value & flag & info [ "execute"; "x" ] ~doc:"Execute the plan and print rows.")
  in
  let exodus =
    Arg.(value & flag & info [ "exodus" ] ~doc:"Also optimize with the EXODUS-style baseline.")
  in
  let no_pruning =
    Arg.(value & flag & info [ "no-pruning" ] ~doc:"Disable branch-and-bound pruning.")
  in
  let no_guided =
    Arg.(
      value & flag
      & info [ "no-guided-pruning" ]
          ~doc:
            "Keep plain Figure-2 branch-and-bound but disable the guided layer: group \
             cost lower bounds, lower-bound goal kills, and sibling-aware input limits.")
  in
  let left_deep =
    Arg.(value & flag & info [ "left-deep" ] ~doc:"Restrict join plans to left-deep shape.")
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Deterministic step budget: stop after N engine tasks and return the best \
             plan found so far (anytime optimization).")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Wall-clock budget in milliseconds; same anytime semantics as max-steps.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Print one line per search-engine task to stderr.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Run the search on N OCaml domains sharing one memo. The plan and cost \
             are bit-identical to the sequential engine at any N.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Optimize (and optionally run) a SQL statement")
    Term.(
      const run_optimize $ sql_arg $ execute $ exodus $ no_pruning $ no_guided
      $ left_deep $ max_steps $ timeout_ms $ trace $ domains)

let tables_cmd =
  Cmd.v (Cmd.info "tables" ~doc:"List the demo catalog") Term.(const run_tables $ const ())

let repl_cmd =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive SQL session over the demo catalog")
    Term.(const run_repl $ const ())

let serve_cmd =
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file"; "f" ] ~docv:"FILE"
          ~doc:"Read SQL statements (one per line, # comments) from $(docv) instead of stdin.")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N" ~doc:"Serving domains pulling from the request queue.")
  in
  let capacity =
    Arg.(
      value & opt int 512
      & info [ "capacity" ] ~docv:"N" ~doc:"Total plan-cache entries across all shards.")
  in
  let shards =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~docv:"N" ~doc:"Independently locked cache shards.")
  in
  let parameterize =
    Arg.(
      value & flag
      & info [ "parameterize" ]
          ~doc:
            "Erase the single numeric literal from fingerprints so one dynamic-plan \
             entry serves a whole range of constants.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "OCaml domains per cache-miss optimization (intra-query parallel search), \
             on top of the $(b,--workers) across-query parallelism.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Optimization service: fingerprinted plan cache over a batch of statements")
    Term.(const run_serve $ file $ workers $ capacity $ shards $ parameterize $ domains)

let workload_cmd =
  let n =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Number of input relations (2-10).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate and optimize a paper-style random query")
    Term.(const run_workload $ n $ seed)

let () =
  let doc = "The Volcano optimizer generator (Graefe & McKenna, ICDE 1993)" in
  let info = Cmd.info "volcano-cli" ~version:"1.0.0" ~doc in
  (* With no subcommand, render the help page (which lists every
     subcommand with its one-line summary) instead of erroring out. *)
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ optimize_cmd; tables_cmd; workload_cmd; repl_cmd; serve_cmd ]))
