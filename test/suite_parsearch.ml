(* Tests of intra-query parallel search (Search.run ~domains): the
   plans and costs must be bit-identical to the sequential engine at
   any domain count, duplicate goals must be claimed by exactly one
   worker, and the winner/failure tables published by workers must be
   consistent with the sequential ones. *)

open Relalg

(* Golden workloads shared with suite_engine: a subset is enough here
   because every case runs at three domain counts. *)
let chain_cases = [ (2, 11); (4, 23); (6, 42) ]
let star_cases = [ (3, 103); (4, 104); (5, 105) ]

let workloads () =
  List.map (fun (n, seed) -> (Workload.Chain, "chain", n, seed)) chain_cases
  @ List.map (fun (n, seed) -> (Workload.Star, "star", n, seed)) star_cases

(* Render a result so that any difference — operator choice, property
   vectors, per-node costs down to the last bit — breaks equality. *)
let render (result : Relmodel.Optimizer.result) =
  match result.plan with
  | None -> "NONE"
  | Some p ->
    Printf.sprintf "%s|%.17g" (Relmodel.Optimizer.explain p) (Cost.total p.cost)

let optimize_at ~domains (q : Workload.query) required =
  let request =
    { (Relmodel.Optimizer.request q.catalog) with restore_columns = false; domains }
  in
  Relmodel.Optimizer.optimize request q.logical ~required

(* ------------------------------------------------------------------ *)
(* Golden determinism: 1, 2 and 4 domains, bit-identical plans        *)
(* ------------------------------------------------------------------ *)

let test_golden_bit_identical () =
  List.iter
    (fun (shape, name, n, seed) ->
      let q = Workload.generate (Workload.spec ~shape ~n_relations:n ~seed ()) in
      List.iter
        (fun (rname, required) ->
          let base = render (optimize_at ~domains:1 q required) in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d %s: sequential run finds a plan" name n rname)
            true (base <> "NONE");
          List.iter
            (fun domains ->
              Alcotest.(check string)
                (Printf.sprintf "%s n=%d %s: %d domains bit-identical" name n rname
                   domains)
                base
                (render (optimize_at ~domains q required)))
            [ 2; 4 ])
        [
          ("any", Phys_prop.any);
          ("sorted", Phys_prop.sorted (Sort_order.asc [ List.hd q.relations ^ ".jk1" ]));
        ])
    (workloads ())

(* ------------------------------------------------------------------ *)
(* Claim stress: duplicate goals dedupe instead of racing             *)
(* ------------------------------------------------------------------ *)

(* N domains race Memo.try_claim over the same goal set, every domain
   starting from a different offset so collisions are certain. Exactly
   one claim per goal may succeed: that is the invariant that makes a
   goal optimized once even when several workers want it. *)
let test_claim_race () =
  let q = Workload.generate (Workload.spec ~shape:Workload.Chain ~n_relations:4 ~seed:7 ()) in
  let module M = (val Relmodel.Rel_model.make ~catalog:q.catalog ()) in
  let module S = Volcano.Search.Make (M) in
  let s = S.create () in
  let root = S.insert_query s (Relmodel.Rel_model.to_tree q.logical) in
  let memo = s.S.memo in
  let groups = List.init (S.Memo.n_groups memo) Fun.id in
  let keys =
    (Phys_prop.any, None)
    :: List.init 15 (fun i ->
           (Phys_prop.sorted (Sort_order.asc [ Printf.sprintf "c%d.jk1" i ]), None))
  in
  let goals =
    Array.of_list
      (List.concat_map (fun g -> List.map (fun key -> (g, key)) keys) groups)
  in
  let n_goals = Array.length goals in
  let wins = Array.init n_goals (fun _ -> Atomic.make 0) in
  let n_domains = 4 in
  let racer d () =
    for i = 0 to n_goals - 1 do
      let j = (i + (d * n_goals / n_domains)) mod n_goals in
      let g, key = goals.(j) in
      if S.Memo.try_claim memo g key then ignore (Atomic.fetch_and_add wins.(j) 1)
    done
  in
  List.iter Domain.join (List.init n_domains (fun d -> Domain.spawn (racer d)));
  Array.iteri
    (fun i w ->
      Alcotest.(check int)
        (Printf.sprintf "goal %d claimed exactly once" i)
        1 (Atomic.get w))
    wins;
  (* A claimed goal stays claimed for the rest of the phase... *)
  let g0, key0 = goals.(0) in
  Alcotest.(check bool) "re-claim of a claimed goal fails" false
    (S.Memo.try_claim memo g0 key0);
  (* ...and reset_claims opens the next phase. *)
  S.Memo.reset_claims memo;
  Alcotest.(check bool) "claim succeeds after reset" true
    (S.Memo.try_claim memo g0 key0);
  ignore root

(* ------------------------------------------------------------------ *)
(* Winner/failure tables: parallel entries consistent with sequential *)
(* ------------------------------------------------------------------ *)

(* Run the same query on two searchers — one sequential, one at 4
   domains — with the identical explore-first prelude, so group ids
   align. Every goal present in both winner tables must agree: two
   plans carry the same cost, and a failure on one side must have been
   recorded under a bound strictly below the other side's plan cost
   (a bounded failure is the claim "no plan at or under this bound"). *)
let test_winner_tables_consistent () =
  let q = Workload.generate (Workload.spec ~shape:Workload.Star ~n_relations:4 ~seed:104 ()) in
  let module M = (val Relmodel.Rel_model.make ~catalog:q.catalog ()) in
  let module S = Volcano.Search.Make (M) in
  let tree = Relmodel.Rel_model.to_tree q.logical in
  let required = Phys_prop.any in
  let run_seq () =
    let s = S.create () in
    let root = S.insert_query s tree in
    S.explore_reachable s root ~required ~limit:Cost.infinite;
    S.Memo.compress_paths s.S.memo;
    ignore (S.optimize s tree ~required : S.outcome);
    s
  in
  let run_par () =
    let s = S.create () in
    ignore (S.run ~domains:4 s tree ~required : S.outcome);
    s
  in
  let seq = run_seq () and par = run_par () in
  let compared = ref 0 in
  for g = 0 to S.Memo.n_groups seq.S.memo - 1 do
    if S.Memo.find_root seq.S.memo g = g then begin
      let ws = S.Memo.winners_alist seq.S.memo g in
      List.iter
        (fun (key, (s_w : S.Memo.winner)) ->
          match S.Memo.winner par.S.memo g key with
          | None -> ()
          | Some p_w ->
            incr compared;
            (match s_w.S.Memo.w_plan, p_w.S.Memo.w_plan with
             | Some sp, Some pp ->
               Alcotest.(check (float 0.))
                 (Printf.sprintf "group %d: winner costs identical" g)
                 (Cost.total sp.S.Memo.p_cost)
                 (Cost.total pp.S.Memo.p_cost)
             | Some sp, None ->
               Alcotest.(check bool)
                 (Printf.sprintf "group %d: parallel failure below sequential winner" g)
                 true
                 (Cost.total p_w.S.Memo.w_bound < Cost.total sp.S.Memo.p_cost)
             | None, Some pp ->
               Alcotest.(check bool)
                 (Printf.sprintf "group %d: sequential failure below parallel winner" g)
                 true
                 (Cost.total s_w.S.Memo.w_bound < Cost.total pp.S.Memo.p_cost)
             | None, None -> ()))
        ws
    end
  done;
  Alcotest.(check bool) "some goals were compared" true (!compared > 0)

(* ------------------------------------------------------------------ *)
(* Property: parallel result equals sequential on random workloads    *)
(* ------------------------------------------------------------------ *)

let prop_par_equals_seq =
  let gen =
    QCheck.Gen.(
      quad (oneofl [ Workload.Chain; Workload.Star ]) (int_range 2 5) (int_range 0 999)
        (int_range 2 4))
  in
  Helpers.qcheck_case ~count:12 "parallel plan equals sequential"
    (QCheck.make gen) (fun (shape, n, seed, domains) ->
      let q = Workload.generate (Workload.spec ~shape ~n_relations:n ~seed ()) in
      render (optimize_at ~domains:1 q Phys_prop.any)
      = render (optimize_at ~domains q Phys_prop.any))

let suite =
  [
    Alcotest.test_case "golden plans bit-identical at 1/2/4 domains" `Quick
      test_golden_bit_identical;
    Alcotest.test_case "duplicate goals claimed exactly once" `Quick test_claim_race;
    Alcotest.test_case "winner/failure tables consistent" `Quick
      test_winner_tables_consistent;
    prop_par_equals_seq;
  ]
