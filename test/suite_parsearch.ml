(* Tests of intra-query parallel search (Search.run ~domains): the
   plans and costs must be bit-identical to the sequential engine at
   any domain count, duplicate goals must be claimed by exactly one
   worker, and the winner/failure tables published by workers must be
   consistent with the sequential ones. *)

open Relalg

(* Golden workloads shared with suite_engine: a subset is enough here
   because every case runs at three domain counts. *)
let chain_cases = [ (2, 11); (4, 23); (6, 42) ]
let star_cases = [ (3, 103); (4, 104); (5, 105) ]

let workloads () =
  List.map (fun (n, seed) -> (Workload.Chain, "chain", n, seed)) chain_cases
  @ List.map (fun (n, seed) -> (Workload.Star, "star", n, seed)) star_cases

(* Render a result so that any difference — operator choice, property
   vectors, per-node costs down to the last bit — breaks equality. *)
let render (result : Relmodel.Optimizer.result) =
  match result.plan with
  | None -> "NONE"
  | Some p ->
    Printf.sprintf "%s|%.17g" (Relmodel.Optimizer.explain p) (Cost.total p.cost)

let optimize_at ?(scheduler = Volcano.Search.Stealing) ~domains (q : Workload.query)
    required =
  let request =
    {
      (Relmodel.Optimizer.request q.catalog) with
      restore_columns = false;
      domains;
      scheduler;
    }
  in
  Relmodel.Optimizer.optimize request q.logical ~required

let schedulers =
  [ ("stealing", Volcano.Search.Stealing); ("seeded", Volcano.Search.Seeded) ]

(* ------------------------------------------------------------------ *)
(* Golden determinism: 1, 2 and 4 domains, bit-identical plans        *)
(* ------------------------------------------------------------------ *)

let test_golden_bit_identical () =
  List.iter
    (fun (shape, name, n, seed) ->
      let q = Workload.generate (Workload.spec ~shape ~n_relations:n ~seed ()) in
      List.iter
        (fun (rname, required) ->
          let base = render (optimize_at ~domains:1 q required) in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d %s: sequential run finds a plan" name n rname)
            true (base <> "NONE");
          List.iter
            (fun domains ->
              List.iter
                (fun (sname, scheduler) ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s n=%d %s: %d domains (%s) bit-identical" name n
                       rname domains sname)
                    base
                    (render (optimize_at ~scheduler ~domains q required)))
                schedulers)
            [ 2; 4 ])
        [
          ("any", Phys_prop.any);
          ("sorted", Phys_prop.sorted (Sort_order.asc [ List.hd q.relations ^ ".jk1" ]));
        ])
    (workloads ())

(* ------------------------------------------------------------------ *)
(* Steal-heavy stress: skewed goal sizes under the stealing scheduler *)
(* ------------------------------------------------------------------ *)

(* A chain query's seed goals are heavily skewed — the goals at the top
   of each deque span far more subgoals than the ones near the leaves —
   so at 4 domains the workers that drain their own deque first must
   steal to stay busy. The stealing scheduler must still deliver the
   sequential plan bit-for-bit, claim at least every seed, and — the
   invariant the claim-table backoff buys — never compute a goal in
   duplicate. *)
let test_steal_stress () =
  List.iter
    (fun (shape, name, n, seed) ->
      let q = Workload.generate (Workload.spec ~shape ~n_relations:n ~seed ()) in
      let base = render (optimize_at ~domains:1 q Phys_prop.any) in
      let r = optimize_at ~scheduler:Volcano.Search.Stealing ~domains:4 q Phys_prop.any in
      Alcotest.(check string)
        (Printf.sprintf "%s n=%d: stealing at 4 domains bit-identical" name n)
        base (render r);
      Alcotest.(check bool)
        (Printf.sprintf "%s n=%d: search ran to completion" name n)
        true r.complete;
      let s = r.stats in
      Alcotest.(check bool)
        (Printf.sprintf "%s n=%d: workers claimed goals" name n)
        true
        (s.Volcano.Search_stats.par_goals_claimed > 0);
      Alcotest.(check int)
        (Printf.sprintf "%s n=%d: no goal computed in duplicate" name n)
        0 s.Volcano.Search_stats.par_dup_goals)
    [ (Workload.Chain, "chain", 6, 42); (Workload.Star, "star", 5, 105) ]

(* ------------------------------------------------------------------ *)
(* Claim stress: duplicate goals dedupe instead of racing             *)
(* ------------------------------------------------------------------ *)

(* N domains race Memo.try_claim over the same goal set, every domain
   starting from a different offset so collisions are certain. Exactly
   one claim per goal may succeed: that is the invariant that makes a
   goal optimized once even when several workers want it. *)
let test_claim_race () =
  let q = Workload.generate (Workload.spec ~shape:Workload.Chain ~n_relations:4 ~seed:7 ()) in
  let module M = (val Relmodel.Rel_model.make ~catalog:q.catalog ()) in
  let module S = Volcano.Search.Make (M) in
  let s = S.create () in
  let root = S.insert_query s (Relmodel.Rel_model.to_tree q.logical) in
  let memo = s.S.memo in
  let groups = List.init (S.Memo.n_groups memo) Fun.id in
  let keys =
    (Phys_prop.any, None)
    :: List.init 15 (fun i ->
           (Phys_prop.sorted (Sort_order.asc [ Printf.sprintf "c%d.jk1" i ]), None))
  in
  let goals =
    Array.of_list
      (List.concat_map (fun g -> List.map (fun key -> (g, key)) keys) groups)
  in
  let n_goals = Array.length goals in
  let wins = Array.init n_goals (fun _ -> Atomic.make 0) in
  let n_domains = 4 in
  let racer d () =
    for i = 0 to n_goals - 1 do
      let j = (i + (d * n_goals / n_domains)) mod n_goals in
      let g, key = goals.(j) in
      if S.Memo.try_claim memo g key then ignore (Atomic.fetch_and_add wins.(j) 1)
    done
  in
  List.iter Domain.join (List.init n_domains (fun d -> Domain.spawn (racer d)));
  Array.iteri
    (fun i w ->
      Alcotest.(check int)
        (Printf.sprintf "goal %d claimed exactly once" i)
        1 (Atomic.get w))
    wins;
  (* A claimed goal stays claimed for the rest of the phase... *)
  let g0, key0 = goals.(0) in
  Alcotest.(check bool) "re-claim of a claimed goal fails" false
    (S.Memo.try_claim memo g0 key0);
  (* ...and reset_claims opens the next phase. *)
  S.Memo.reset_claims memo;
  Alcotest.(check bool) "claim succeeds after reset" true
    (S.Memo.try_claim memo g0 key0);
  ignore root

(* ------------------------------------------------------------------ *)
(* Winner/failure tables: parallel entries consistent with sequential *)
(* ------------------------------------------------------------------ *)

(* Run the same query on two searchers — one sequential, one at 4
   domains — with the identical explore-first prelude, so group ids
   align. Every goal present in both winner tables must agree: two
   plans carry the same cost, and a failure on one side must have been
   recorded under a bound strictly below the other side's plan cost
   (a bounded failure is the claim "no plan at or under this bound"). *)
let test_winner_tables_consistent () =
  let q = Workload.generate (Workload.spec ~shape:Workload.Star ~n_relations:4 ~seed:104 ()) in
  let module M = (val Relmodel.Rel_model.make ~catalog:q.catalog ()) in
  let module S = Volcano.Search.Make (M) in
  let tree = Relmodel.Rel_model.to_tree q.logical in
  let required = Phys_prop.any in
  let run_seq () =
    let s = S.create () in
    let root = S.insert_query s tree in
    S.explore_reachable s root ~required ~limit:Cost.infinite;
    S.Memo.compress_paths s.S.memo;
    ignore (S.optimize s tree ~required : S.outcome);
    s
  in
  let run_par () =
    let s = S.create () in
    ignore (S.run ~domains:4 s tree ~required : S.outcome);
    s
  in
  let seq = run_seq () and par = run_par () in
  let compared = ref 0 in
  for g = 0 to S.Memo.n_groups seq.S.memo - 1 do
    if S.Memo.find_root seq.S.memo g = g then begin
      let ws = S.Memo.winners_alist seq.S.memo g in
      List.iter
        (fun (key, (s_w : S.Memo.winner)) ->
          match S.Memo.winner par.S.memo g key with
          | None -> ()
          | Some p_w ->
            incr compared;
            (match s_w.S.Memo.w_plan, p_w.S.Memo.w_plan with
             | Some sp, Some pp ->
               Alcotest.(check (float 0.))
                 (Printf.sprintf "group %d: winner costs identical" g)
                 (Cost.total sp.S.Memo.p_cost)
                 (Cost.total pp.S.Memo.p_cost)
             | Some sp, None ->
               Alcotest.(check bool)
                 (Printf.sprintf "group %d: parallel failure below sequential winner" g)
                 true
                 (Cost.total p_w.S.Memo.w_bound < Cost.total sp.S.Memo.p_cost)
             | None, Some pp ->
               Alcotest.(check bool)
                 (Printf.sprintf "group %d: sequential failure below parallel winner" g)
                 true
                 (Cost.total s_w.S.Memo.w_bound < Cost.total pp.S.Memo.p_cost)
             | None, None -> ()))
        ws
    end
  done;
  Alcotest.(check bool) "some goals were compared" true (!compared > 0)

(* ------------------------------------------------------------------ *)
(* The Chase–Lev deque under the scheduler                            *)
(* ------------------------------------------------------------------ *)

(* Sequential linearizability against a list model: with no concurrent
   thief, push/pop/steal must behave exactly like a two-ended queue —
   push and pop at the bottom (LIFO), steal at the top (FIFO) — through
   arbitrary interleavings, including ones that force buffer growth
   (the deque starts at capacity 2 here). *)
let prop_deque_model =
  let gen = QCheck.Gen.(list_size (int_range 0 200) (int_range 0 2)) in
  Helpers.qcheck_case ~count:100 "deque matches the two-ended-queue model"
    (QCheck.make gen) (fun ops ->
      let d = Volcano.Deque.create ~capacity:2 () in
      let model = ref [] in
      let counter = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
            incr counter;
            Volcano.Deque.push d !counter;
            model := !model @ [ !counter ];
            true
          | 1 -> begin
            let expect =
              match List.rev !model with
              | [] -> None
              | last :: rest ->
                model := List.rev rest;
                Some last
            in
            Volcano.Deque.pop d = expect
          end
          | _ -> begin
            match Volcano.Deque.steal d, !model with
            | Volcano.Deque.Empty, [] -> true
            | Volcano.Deque.Stolen v, first :: rest ->
              model := rest;
              v = first
            | Volcano.Deque.Empty, _ :: _
            | Volcano.Deque.Stolen _, []
            | Volcano.Deque.Retry, _ ->
              (* Retry is impossible without a concurrent racer. *)
              false
          end)
        ops
      && Volcano.Deque.size d = List.length !model)

(* Exactly-once delivery under real concurrency: one owner domain
   pushes N elements (popping some along the way) while three thief
   domains steal continuously. Every element must land in exactly one
   domain's basket — none lost to a race, none delivered twice. *)
let test_deque_exactly_once () =
  let n = 20_000 in
  let d = Volcano.Deque.create ~capacity:4 () in
  let done_ = Atomic.make false in
  let thief () =
    let got = ref [] in
    let rec loop () =
      match Volcano.Deque.steal d with
      | Volcano.Deque.Stolen v ->
        got := v :: !got;
        loop ()
      | Volcano.Deque.Retry -> loop ()
      | Volcano.Deque.Empty -> if not (Atomic.get done_) then loop ()
    in
    loop ();
    !got
  in
  let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
  let owner_got = ref [] in
  for i = 0 to n - 1 do
    Volcano.Deque.push d i;
    (* Pop roughly every third push so the owner races thieves at the
       last-element boundary, the hard case of the algorithm. *)
    if i mod 3 = 0 then
      match Volcano.Deque.pop d with
      | Some v -> owner_got := v :: !owner_got
      | None -> ()
  done;
  let rec drain () =
    match Volcano.Deque.pop d with
    | Some v ->
      owner_got := v :: !owner_got;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set done_ true;
  let stolen = List.concat_map Domain.join thieves in
  let all = List.sort compare (stolen @ !owner_got) in
  Alcotest.(check int) "every element delivered" n (List.length all);
  List.iteri
    (fun i v -> if i <> v then Alcotest.failf "element %d delivered as %d" i v)
    all;
  Alcotest.(check bool) "deque drained" true (Volcano.Deque.is_empty d)

(* ------------------------------------------------------------------ *)
(* Property: parallel result equals sequential on random workloads    *)
(* ------------------------------------------------------------------ *)

let prop_par_equals_seq =
  let gen =
    QCheck.Gen.(
      pair
        (quad (oneofl [ Workload.Chain; Workload.Star ]) (int_range 2 5)
           (int_range 0 999) (int_range 2 4))
        (oneofl [ Volcano.Search.Stealing; Volcano.Search.Seeded ]))
  in
  Helpers.qcheck_case ~count:12 "parallel plan equals sequential"
    (QCheck.make gen) (fun ((shape, n, seed, domains), scheduler) ->
      let q = Workload.generate (Workload.spec ~shape ~n_relations:n ~seed ()) in
      render (optimize_at ~domains:1 q Phys_prop.any)
      = render (optimize_at ~scheduler ~domains q Phys_prop.any))

let suite =
  [
    Alcotest.test_case "golden plans bit-identical at 1/2/4 domains" `Quick
      test_golden_bit_identical;
    Alcotest.test_case "steal-heavy stress: identical, complete, no duplicates" `Quick
      test_steal_stress;
    Alcotest.test_case "duplicate goals claimed exactly once" `Quick test_claim_race;
    Alcotest.test_case "winner/failure tables consistent" `Quick
      test_winner_tables_consistent;
    prop_deque_model;
    Alcotest.test_case "deque delivers each element exactly once" `Quick
      test_deque_exactly_once;
    prop_par_equals_seq;
  ]
