(* Tests of the paper-workload generator. *)

open Relalg

let test_reproducible () =
  let spec = Workload.spec ~n_relations:4 ~seed:9 () in
  let q1 = Workload.generate spec in
  let q2 = Workload.generate spec in
  Alcotest.(check bool) "same logical query" true (Logical.equal q1.logical q2.logical);
  let t1 = Catalog.find q1.catalog "rel0" and t2 = Catalog.find q2.catalog "rel0" in
  Alcotest.(check int) "same data" (Array.length t1.tuples) (Array.length t2.tuples);
  Alcotest.(check bool) "same first tuple" true (Tuple.equal t1.tuples.(0) t2.tuples.(0))

let test_different_seeds_differ () =
  let q1 = Workload.generate (Workload.spec ~n_relations:4 ~seed:9 ()) in
  let q2 = Workload.generate (Workload.spec ~n_relations:4 ~seed:10 ()) in
  Alcotest.(check bool) "different queries" false (Logical.equal q1.logical q2.logical)

let test_paper_parameters () =
  let q = Workload.generate (Workload.spec ~n_relations:5 ~seed:1 ()) in
  Alcotest.(check int) "five relations" 5 (List.length q.relations);
  List.iter
    (fun name ->
      let t = Catalog.find q.catalog name in
      let rows = Array.length t.tuples in
      Alcotest.(check bool)
        (Printf.sprintf "%s has 1200..7200 rows (%d)" name rows)
        true
        (rows >= 1_200 && rows <= 7_200);
      Alcotest.(check int)
        (Printf.sprintf "%s rows are 100 bytes" name)
        100 (Schema.row_width t.schema))
    q.relations

let count_ops pred q =
  let rec go (e : Logical.expr) =
    (if pred e.Logical.op then 1 else 0)
    + List.fold_left (fun acc i -> acc + go i) 0 e.Logical.inputs
  in
  go q

let test_selections_per_relation () =
  (* "as many selections as input relations" (§4.2) *)
  let q = Workload.generate (Workload.spec ~n_relations:6 ~seed:2 ()) in
  let selects =
    count_ops (function Logical.Select _ -> true | _ -> false) q.logical
  in
  Alcotest.(check int) "one selection per relation" 6 selects;
  let joins = count_ops (function Logical.Join _ -> true | _ -> false) q.logical in
  Alcotest.(check int) "n-1 joins" 5 joins

let test_no_initial_cartesian () =
  (* Every join in the generated spine carries at least one predicate. *)
  List.iter
    (fun shape ->
      let q =
        Workload.generate (Workload.spec ~shape ~n_relations:6 ~seed:3 ())
      in
      let rec go (e : Logical.expr) =
        (match e.Logical.op with
         | Logical.Join p ->
           Alcotest.(check bool) "join has a predicate" true (Expr.conjuncts p <> [])
         | _ -> ());
        List.iter go e.Logical.inputs
      in
      go q.logical)
    Workload.all_shapes

let test_batch_seeds_distinct () =
  let qs = Workload.generate_batch (Workload.spec ~n_relations:3 ~seed:4 ()) ~count:5 in
  Alcotest.(check int) "batch size" 5 (List.length qs);
  let distinct =
    List.sort_uniq compare
      (List.map (fun (q : Workload.query) -> Logical.op_name q.logical.Logical.op) qs)
  in
  Alcotest.(check bool) "predicates vary across the batch" true (List.length distinct > 1)

let test_all_shapes_optimizable () =
  List.iter
    (fun shape ->
      let q = Workload.generate (Workload.spec ~shape ~n_relations:5 ~seed:5 ()) in
      let r =
        Relmodel.Optimizer.optimize (Relmodel.Optimizer.request q.catalog) q.logical
          ~required:Phys_prop.any
      in
      Alcotest.(check bool) "plan found" true (r.plan <> None))
    Workload.all_shapes

(* Every topology must emit a CONNECTED join graph over exactly the
   requested relations — otherwise the left-deep spine would contain a
   predicate-less (cartesian) join. Checked with a union-find over the
   query's reported edges. *)
let test_topologies_connected () =
  List.iter
    (fun shape ->
      List.iter
        (fun n ->
          let q =
            Workload.generate (Workload.spec ~shape ~n_relations:n ~seed:(100 + n) ())
          in
          let name = Workload.shape_name shape in
          Alcotest.(check int)
            (Printf.sprintf "%s n=%d relation count" name n)
            n (List.length q.relations);
          let parent = Hashtbl.create 16 in
          let rec find x =
            match Hashtbl.find_opt parent x with
            | None | Some "" -> x
            | Some p ->
              let r = find p in
              Hashtbl.replace parent x r;
              r
          in
          let union a b =
            let ra = find a and rb = find b in
            if ra <> rb then Hashtbl.replace parent ra rb
          in
          List.iter
            (fun (a, b) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s n=%d edge endpoints are relations" name n)
                true
                (List.mem a q.relations && List.mem b q.relations);
              union a b)
            q.edges;
          let roots =
            List.sort_uniq compare (List.map find q.relations)
          in
          Alcotest.(check int)
            (Printf.sprintf "%s n=%d join graph connected" name n)
            1 (List.length roots);
          (* Shape-specific edge counts. *)
          let expected_edges =
            match shape with
            | Workload.Clique -> Some (n * (n - 1) / 2)
            | Workload.Cycle -> Some (if n >= 3 then n else n - 1)
            | Workload.Chain | Workload.Star | Workload.Random_acyclic
            | Workload.Snowflake ->
              Some (n - 1)
            | Workload.Grid -> None (* n-1 <= edges <= 2n; connectivity suffices *)
          in
          Option.iter
            (fun e ->
              Alcotest.(check int)
                (Printf.sprintf "%s n=%d edge count" name n)
                e (List.length q.edges))
            expected_edges)
        [ 1; 2; 3; 5; 10; 16 ])
    Workload.all_shapes

let test_skewed_stats () =
  let spec =
    Workload.spec ~shape:Workload.Snowflake ~skew:1. ~n_relations:8 ~seed:7 ()
  in
  let q = Workload.generate spec in
  let rows name = Array.length (Catalog.find q.catalog name).Catalog.tuples in
  (* Full skew: rel0 keeps max_rows and sizes fall off monotonically
     down to the min_rows clamp. *)
  Alcotest.(check int) "rel0 at max_rows" 7_200 (rows "rel0");
  List.iteri
    (fun i name ->
      if i > 0 then begin
        let prev = rows (Printf.sprintf "rel%d" (i - 1)) in
        Alcotest.(check bool)
          (Printf.sprintf "%s no larger than its predecessor" name)
          true
          (rows name <= prev);
        Alcotest.(check bool)
          (Printf.sprintf "%s clamped at min_rows" name)
          true (rows name >= 1_200)
      end)
    q.relations

let test_skew_zero_is_legacy () =
  (* skew = 0 and correlation = None must reproduce the pre-skew
     generator bit for bit (same RNG stream). *)
  let q1 = Workload.generate (Workload.spec ~n_relations:5 ~seed:11 ()) in
  let q2 =
    Workload.generate (Workload.spec ~skew:0. ~n_relations:5 ~seed:11 ())
  in
  Alcotest.(check bool) "same logical query" true (Logical.equal q1.logical q2.logical);
  List.iter
    (fun name ->
      Alcotest.(check int)
        (Printf.sprintf "%s same size" name)
        (Array.length (Catalog.find q1.catalog name).Catalog.tuples)
        (Array.length (Catalog.find q2.catalog name).Catalog.tuples))
    q1.relations

let test_correlation_extremes () =
  (* correlation = 1: every join predicate uses the shared key jk1;
     correlation = 0: none does. *)
  let count_key key q =
    count_ops
      (function
        | Logical.Join p ->
          List.exists
            (fun c ->
              match c with
              | Expr.Cmp (_, Expr.Col a, Expr.Col b) ->
                let has s = String.length s > 4
                            && String.sub s (String.length s - 3) 3 = key in
                has a || has b
              | _ -> false)
            (Expr.conjuncts p)
        | _ -> false)
      q.Workload.logical
  in
  let q1 =
    Workload.generate
      (Workload.spec ~shape:Workload.Clique ~correlation:1. ~n_relations:5 ~seed:13 ())
  in
  Alcotest.(check int) "all joins on jk1" 0 (count_key "jk2" q1);
  let q0 =
    Workload.generate
      (Workload.spec ~shape:Workload.Clique ~correlation:0. ~n_relations:5 ~seed:13 ())
  in
  Alcotest.(check int) "no join on jk1" 0 (count_key "jk1" q0)

let test_spec_validation () =
  let rejects name mk =
    match mk () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  rejects "n_relations = 0" (fun () -> Workload.spec ~n_relations:0 ~seed:1 ());
  rejects "n_relations < 0" (fun () -> Workload.spec ~n_relations:(-3) ~seed:1 ());
  rejects "skew < 0" (fun () -> Workload.spec ~skew:(-0.1) ~n_relations:3 ~seed:1 ());
  rejects "skew > 1" (fun () -> Workload.spec ~skew:1.5 ~n_relations:3 ~seed:1 ());
  rejects "skew nan" (fun () -> Workload.spec ~skew:Float.nan ~n_relations:3 ~seed:1 ());
  rejects "correlation < 0" (fun () ->
      Workload.spec ~correlation:(-0.5) ~n_relations:3 ~seed:1 ());
  rejects "correlation > 1" (fun () ->
      Workload.spec ~correlation:2. ~n_relations:3 ~seed:1 ());
  rejects "min_rows > max_rows" (fun () ->
      Workload.spec ~min_rows:100 ~max_rows:10 ~n_relations:3 ~seed:1 ());
  rejects "min_rows = 0" (fun () ->
      Workload.spec ~min_rows:0 ~n_relations:3 ~seed:1 ());
  (* And the boundary values are accepted. *)
  ignore (Workload.spec ~skew:1. ~correlation:0. ~n_relations:1 ~seed:1 ());
  ignore (Workload.spec ~skew:0. ~correlation:1. ~n_relations:1 ~seed:1 ())

let test_shape_names_roundtrip () =
  List.iter
    (fun s ->
      match Workload.shape_of_string (Workload.shape_name s) with
      | Some s' -> Alcotest.(check bool) "roundtrip" true (s = s')
      | None -> Alcotest.failf "shape %s does not roundtrip" (Workload.shape_name s))
    Workload.all_shapes;
  Alcotest.(check bool) "unknown name rejected" true
    (Workload.shape_of_string "moebius" = None)

let suite =
  [
    Alcotest.test_case "reproducible" `Quick test_reproducible;
    Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
    Alcotest.test_case "paper parameters" `Quick test_paper_parameters;
    Alcotest.test_case "selections per relation" `Quick test_selections_per_relation;
    Alcotest.test_case "no initial cartesian" `Quick test_no_initial_cartesian;
    Alcotest.test_case "batch variety" `Quick test_batch_seeds_distinct;
    Alcotest.test_case "all shapes optimizable" `Quick test_all_shapes_optimizable;
    Alcotest.test_case "topologies connected" `Quick test_topologies_connected;
    Alcotest.test_case "skewed statistics" `Quick test_skewed_stats;
    Alcotest.test_case "skew zero is legacy" `Quick test_skew_zero_is_legacy;
    Alcotest.test_case "correlation extremes" `Quick test_correlation_extremes;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "shape names roundtrip" `Quick test_shape_names_roundtrip;
  ]
