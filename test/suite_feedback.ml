(* Tests of the runtime cardinality feedback loop: observed-count
   exactness, drift-report shape, statistics corrections and their
   plan-cache invalidation, the mid-query escape hatch, and
   feedback-off bit-identity with the plain executor. *)

open Relalg

let skew_rows catalog table factor =
  let tbl = Catalog.find catalog table in
  let s = tbl.Catalog.stats in
  let stats =
    { s with Catalog.Stats.row_count = Float.max 1. (s.Catalog.Stats.row_count *. factor) }
  in
  Catalog.update_stats catalog ~table ~stats ()

let set_distinct catalog table column d =
  let tbl = Catalog.find catalog table in
  let s = tbl.Catalog.stats in
  let stats =
    {
      s with
      Catalog.Stats.columns =
        List.map
          (fun (c, (cs : Catalog.Stats.column_stats)) ->
            if c = column then (c, { cs with Catalog.Stats.n_distinct = d }) else (c, cs))
          s.Catalog.Stats.columns;
    }
  in
  Catalog.update_stats catalog ~table ~stats ()

let distinct_of catalog table column =
  let tbl = Catalog.find catalog table in
  let cs = List.assoc column tbl.Catalog.stats.Catalog.Stats.columns in
  cs.Catalog.Stats.n_distinct

let observe_plan catalog query =
  let plan = Helpers.optimize_plan catalog query in
  let phys = Relmodel.Optimizer.to_physical plan in
  match Feedback.observed_run catalog phys with
  | Feedback.Complete (tuples, schema, io, nodes) -> (phys, tuples, schema, io, nodes)
  | Feedback.Aborted _ -> Alcotest.fail "unexpected abort with no escape factor"

(* ---------- q-error ---------- *)

let test_q_error () =
  Alcotest.(check (float 1e-9)) "exact" 1.0 (Feedback.q_error ~estimated:60. ~observed:60);
  Alcotest.(check (float 1e-9)) "under" 5.0 (Feedback.q_error ~estimated:12. ~observed:60);
  Alcotest.(check (float 1e-9)) "over" 5.0 (Feedback.q_error ~estimated:60. ~observed:12);
  (* Both sides clamp below at 1: an empty result against a tiny
     estimate is not infinite drift. *)
  Alcotest.(check (float 1e-9)) "zero observed" 1.0 (Feedback.q_error ~estimated:0.5 ~observed:0)

let test_config_validation () =
  Alcotest.check_raises "threshold < 1 rejected"
    (Invalid_argument "Feedback.config: drift_threshold must be >= 1") (fun () ->
      ignore (Feedback.config ~drift_threshold:0.5 ()));
  Alcotest.check_raises "escape factor < 1 rejected"
    (Invalid_argument "Feedback.config: escape_factor must be >= 1") (fun () ->
      ignore (Feedback.config ~escape_factor:0.9 ()))

(* ---------- observed-cardinality exactness ---------- *)

let test_observed_counts_exact () =
  let catalog = Helpers.small_catalog () in
  let query = Logical.select Expr.(col "r.a" <=% int 3) (Logical.get "r") in
  let _, tuples, _, _, nodes = observe_plan catalog query in
  (* The root delivers exactly the result cardinality; the scan of r
     delivers exactly its 60 rows. *)
  let root = List.find (fun (n : Feedback.node_obs) -> n.path = []) nodes in
  Alcotest.(check int) "root observed = result rows" (Array.length tuples) root.observed;
  let scan =
    List.find (fun (n : Feedback.node_obs) -> n.alg = "table_scan(r)") nodes
  in
  Alcotest.(check int) "scan observed = table rows" 60 scan.observed;
  Alcotest.(check bool) "scan ran to completion" true scan.complete;
  Alcotest.(check (float 1e-9)) "scan estimate exact" 1.0 scan.ratio

let test_report_shape () =
  let catalog = Helpers.small_catalog () in
  let query =
    Logical.select
      Expr.(col "r.a" <=% int 3)
      (Logical.join Expr.(col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s"))
  in
  let phys, _, _, _, nodes = observe_plan catalog query in
  let rec count (p : Physical.plan) =
    1 + List.fold_left (fun acc c -> acc + count c) 0 p.Physical.children
  in
  Alcotest.(check int) "one observation per plan node" (count phys) (List.length nodes);
  (* Preorder: the root comes first, every path is unique. *)
  (match nodes with
   | first :: _ -> Alcotest.(check (list int)) "root first" [] first.Feedback.path
   | [] -> Alcotest.fail "empty report");
  let paths = List.map (fun (n : Feedback.node_obs) -> n.path) nodes in
  Alcotest.(check int) "paths unique" (List.length paths)
    (List.length (List.sort_uniq compare paths));
  List.iter
    (fun (n : Feedback.node_obs) ->
      if n.ratio < 1. then Alcotest.failf "ratio %.3f < 1 at %s" n.ratio n.alg)
    nodes

let jmem name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing JSON field %s" name

let jlist j = match Obs.Json.to_list j with Some l -> l | None -> Alcotest.fail "not a JSON list"
let jfloat j = match Obs.Json.to_float j with Some f -> f | None -> Alcotest.fail "not a JSON number"
let jint j = match Obs.Json.to_int j with Some i -> i | None -> Alcotest.fail "not a JSON int"
let jstr j = match Obs.Json.to_str j with Some s -> s | None -> Alcotest.fail "not a JSON string"

let test_report_json_shape () =
  let catalog = Helpers.small_catalog () in
  skew_rows catalog "r" 0.05;
  let query = Logical.select Expr.(col "r.a" <=% int 3) (Logical.get "r") in
  let plan = Helpers.optimize_plan catalog query in
  let outcome =
    Feedback.run_plan (Relmodel.Optimizer.request catalog) query ~required:Phys_prop.any
      plan
  in
  let json = Feedback.report_to_json outcome.Feedback.report in
  let nodes = jlist (jmem "nodes" json) in
  Alcotest.(check bool) "nodes present" true (nodes <> []);
  List.iter
    (fun n ->
      ignore (jlist (jmem "path" n));
      ignore (jstr (jmem "alg" n));
      ignore (jfloat (jmem "estimated" n));
      ignore (jint (jmem "observed" n));
      if jfloat (jmem "ratio" n) < 1. then Alcotest.fail "ratio < 1 in JSON export")
    nodes;
  let stats = jmem "stats" json in
  List.iter
    (fun name -> ignore (jint (jmem name stats)))
    (List.filter
       (fun n -> String.length n >= 9 && String.sub n 0 9 = "feedback_")
       (Volcano.Search_stats.metric_names ""))

(* ---------- drift eligibility ---------- *)

let test_incomplete_counts_are_lower_bounds () =
  let node ~complete ~estimated ~observed =
    {
      Feedback.path = [];
      alg = "x";
      estimated;
      observed;
      ratio = Feedback.q_error ~estimated ~observed;
      relations = [ "r" ];
      complete;
    }
  in
  (* An early-terminated node below its estimate proves nothing... *)
  Alcotest.(check int) "partial count below estimate not drifted" 0
    (List.length
       (Feedback.drift_nodes ~threshold:2. [ node ~complete:false ~estimated:100. ~observed:5 ]));
  (* ...but a partial count above the estimate is already proof. *)
  Alcotest.(check int) "partial count above estimate drifted" 1
    (List.length
       (Feedback.drift_nodes ~threshold:2. [ node ~complete:false ~estimated:10. ~observed:50 ]));
  Alcotest.(check int) "complete undercount drifted" 1
    (List.length
       (Feedback.drift_nodes ~threshold:2. [ node ~complete:true ~estimated:100. ~observed:5 ]))

(* ---------- corrections ---------- *)

let test_row_count_correction () =
  let catalog = Helpers.small_catalog () in
  skew_rows catalog "r" (1. /. 30.);
  let v0 = Catalog.stats_version catalog "r" in
  let query = Logical.select Expr.(col "r.a" <=% int 3) (Logical.get "r") in
  let _, _, _, _, nodes = observe_plan catalog query in
  let phys =
    Relmodel.Optimizer.to_physical (Helpers.optimize_plan catalog query)
  in
  let corrections = Feedback.apply_corrections catalog ~threshold:2. phys nodes in
  Alcotest.(check bool) "a correction was installed" true (corrections <> []);
  let c = List.find (fun (c : Feedback.correction) -> c.table = "r") corrections in
  Alcotest.(check bool) "stats version bumped" true (c.stats_version > v0);
  Alcotest.(check bool) "correction version is current" true
    (c.stats_version = Catalog.stats_version catalog "r");
  let tbl = Catalog.find catalog "r" in
  Alcotest.(check (float 1e-6)) "row count corrected to the observed truth" 60.
    tbl.Catalog.stats.Catalog.Stats.row_count

let test_distinct_correction () =
  let catalog = Helpers.small_catalog () in
  (* r.a really has 10 distinct values; claim 1, so the equality
     estimate becomes the whole table. *)
  set_distinct catalog "r" "r.a" 1.;
  let query = Logical.select Expr.(col "r.a" =% int 3) (Logical.get "r") in
  let _, tuples, _, _, nodes = observe_plan catalog query in
  let phys =
    Relmodel.Optimizer.to_physical (Helpers.optimize_plan catalog query)
  in
  let corrections = Feedback.apply_corrections catalog ~threshold:2. phys nodes in
  Alcotest.(check bool) "a correction was installed" true (corrections <> []);
  (* The corrected distinct count makes the estimator reproduce the
     observed selectivity: 60 / observed. *)
  let expected = 60. /. float_of_int (Array.length tuples) in
  let d = distinct_of catalog "r" "r.a" in
  Alcotest.(check bool)
    (Printf.sprintf "distinct corrected toward %.1f (got %.1f)" expected d)
    true
    (Float.abs (d -. expected) <= 0.35 *. expected)

let test_accurate_stats_no_corrections () =
  let catalog = Helpers.small_catalog () in
  let v0 = Catalog.stats_version catalog "r" in
  let query = Logical.select Expr.(col "r.a" <=% int 3) (Logical.get "r") in
  let plan = Helpers.optimize_plan catalog query in
  let outcome =
    Feedback.run_plan (Relmodel.Optimizer.request catalog) query ~required:Phys_prop.any
      plan
  in
  Alcotest.(check int) "no corrections on accurate statistics" 0
    (List.length outcome.Feedback.report.Feedback.corrections);
  Alcotest.(check int) "stats version untouched" v0 (Catalog.stats_version catalog "r")

let test_correction_invalidates_plansrv () =
  let catalog = Helpers.small_catalog () in
  skew_rows catalog "r" (1. /. 30.);
  let request = Relmodel.Optimizer.request catalog in
  let srv = Plansrv.create (Plansrv.config request) in
  let w = Plansrv.worker srv in
  let q_r = Logical.select Expr.(col "r.a" <=% int 3) (Logical.get "r") in
  let q_t = Logical.get "t" in
  let outcome_of (r : Plansrv.response) = r.Plansrv.outcome in
  let r1 = Plansrv.serve_one srv w q_r ~required:Phys_prop.any in
  let t1 = Plansrv.serve_one srv w q_t ~required:Phys_prop.any in
  Alcotest.(check bool) "both cold misses" true
    (outcome_of r1 = Plansrv.Miss && outcome_of t1 = Plansrv.Miss);
  (* Execute the cached r plan under feedback: the row-count lie is
     discovered and corrected, bumping r's statistics version. *)
  let plan = match r1.Plansrv.plan with Some p -> p | None -> Alcotest.fail "no plan" in
  let outcome = Feedback.run_plan request q_r ~required:Phys_prop.any plan in
  Alcotest.(check bool) "feedback corrected r" true
    (outcome.Feedback.report.Feedback.corrections <> []);
  (* The r entry is stamped with the old statistics version and must be
     lazily invalidated; the t entry is untouched. *)
  let r2 = Plansrv.serve_one srv w q_r ~required:Phys_prop.any in
  let t2 = Plansrv.serve_one srv w q_t ~required:Phys_prop.any in
  (match outcome_of r2 with
   | Plansrv.Invalidated -> ()
   | Plansrv.Hit -> Alcotest.fail "stale r entry served as a hit"
   | Plansrv.Miss -> Alcotest.fail "r entry vanished instead of invalidating");
  (match outcome_of t2 with
   | Plansrv.Hit -> ()
   | Plansrv.Invalidated -> Alcotest.fail "t entry invalidated by an r correction"
   | Plansrv.Miss -> Alcotest.fail "t entry vanished");
  (* After re-optimization against corrected statistics the entry is
     fresh again. *)
  let r3 = Plansrv.serve_one srv w q_r ~required:Phys_prop.any in
  Alcotest.(check bool) "corrected entry stays fresh" true (outcome_of r3 = Plansrv.Hit)

(* ---------- escape hatch ---------- *)

let test_escape_fires_at_k () =
  let catalog = Helpers.small_catalog () in
  skew_rows catalog "r" (1. /. 30.);
  let query = Logical.select Expr.(col "r.a" <=% int 3) (Logical.get "r") in
  let phys =
    Relmodel.Optimizer.to_physical (Helpers.optimize_plan catalog query)
  in
  match Feedback.observed_run ~escape_factor:4. catalog phys with
  | Feedback.Aborted { at; nodes; _ } ->
    let blown = List.find (fun (n : Feedback.node_obs) -> n.path = at) nodes in
    (* The abort happened exactly one tuple past the k x budget. *)
    let budget = int_of_float (Float.ceil (4. *. Float.max 1. blown.estimated)) in
    Alcotest.(check int) "aborted one tuple past k x estimate" (budget + 1) blown.observed
  | Feedback.Complete _ -> Alcotest.fail "escape hatch did not fire on a 30x lie"

let test_escape_never_fires_on_exact_estimates () =
  let catalog = Helpers.small_catalog () in
  List.iter
    (fun table ->
      let query = Logical.get table in
      let phys =
        Relmodel.Optimizer.to_physical (Helpers.optimize_plan catalog query)
      in
      let expected, _, _ = Executor.run catalog phys in
      (* k = 1: the tightest legal hatch still never fires when the
         estimate is exact. *)
      match Feedback.observed_run ~escape_factor:1. catalog phys with
      | Feedback.Complete (tuples, _, _, _) ->
        Alcotest.(check bool)
          (table ^ ": identical result under the armed hatch")
          true (tuples = expected)
      | Feedback.Aborted _ -> Alcotest.failf "%s: hatch fired on an exact estimate" table)
    [ "r"; "s"; "t" ]

let test_escape_replans_and_recovers () =
  let catalog = Helpers.small_catalog () in
  skew_rows catalog "r" (1. /. 30.);
  let request = Relmodel.Optimizer.request catalog in
  let query =
    Logical.select
      Expr.(col "r.a" <=% int 3)
      (Logical.join Expr.(col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s"))
  in
  let outcome =
    Feedback.run
      ~config:(Feedback.config ~escape_factor:2. ())
      request query ~required:Phys_prop.any
  in
  Alcotest.(check bool) "escaped" true outcome.Feedback.report.Feedback.escaped;
  Alcotest.(check bool) "replanned" true (outcome.Feedback.report.Feedback.replans >= 1);
  (* The replanned execution still returns the right answer. *)
  let expected, _ = Executor.naive catalog query in
  Helpers.check_same_bag "escape + replan result = naive" expected outcome.Feedback.tuples;
  (* And the catalog now tells the truth about r. *)
  let tbl = Catalog.find catalog "r" in
  Alcotest.(check (float 1e-6)) "row count corrected" 60.
    tbl.Catalog.stats.Catalog.Stats.row_count

(* ---------- counters ---------- *)

let test_feedback_counters () =
  let catalog = Helpers.small_catalog () in
  skew_rows catalog "r" (1. /. 30.);
  let query = Logical.select Expr.(col "r.a" <=% int 3) (Logical.get "r") in
  let plan = Helpers.optimize_plan catalog query in
  let outcome =
    Feedback.run_plan (Relmodel.Optimizer.request catalog) query ~required:Phys_prop.any
      plan
  in
  let s = outcome.Feedback.report.Feedback.stats in
  Alcotest.(check int) "one run" 1 s.Volcano.Search_stats.feedback_runs;
  Alcotest.(check int) "every node observed"
    (List.length outcome.Feedback.report.Feedback.nodes)
    s.Volcano.Search_stats.feedback_nodes_observed;
  Alcotest.(check int) "drift counter matches report"
    (List.length outcome.Feedback.report.Feedback.drifted)
    s.Volcano.Search_stats.feedback_drift_nodes;
  Alcotest.(check int) "correction counter matches report"
    (List.length outcome.Feedback.report.Feedback.corrections)
    s.Volcano.Search_stats.feedback_corrections;
  (* The feedback_* family is exported through the metrics registry. *)
  let reg = Obs.Metrics.create () in
  Volcano.Search_stats.register reg s;
  let json = Obs.Json.to_string (Obs.Metrics.to_json reg) in
  Alcotest.(check bool) "feedback_runs exported" true
    (Helpers.contains json "feedback_runs")

(* ---------- feedback-off bit-identity ---------- *)

let prop_observed_run_bit_identical =
  let gen =
    QCheck.make
      QCheck.Gen.(
        triple (oneofl [ "r"; "s"; "t" ]) (int_bound 9) QCheck.Gen.bool)
  in
  Helpers.qcheck_case ~count:60 "observed_run is bit-identical to Executor.run" gen
    (fun (table, k, joined) ->
      let catalog = Helpers.small_catalog () in
      let query =
        if joined then
          Logical.select
            Expr.(col "r.a" <=% int k)
            (Logical.join
               Expr.(col "r.a" =% col "s.a")
               (Logical.get "r") (Logical.get "s"))
        else Logical.select Expr.(col (table ^ ".id") <=% int (k * 7)) (Logical.get table)
      in
      let phys =
        Relmodel.Optimizer.to_physical (Helpers.optimize_plan catalog query)
      in
      let expected, schema, _ = Executor.run catalog phys in
      match Feedback.observed_run catalog phys with
      | Feedback.Complete (tuples, schema', _, _) ->
        tuples = expected && Schema.names schema' = Schema.names schema
      | Feedback.Aborted _ -> false)

let suite =
  [
    Alcotest.test_case "q-error" `Quick test_q_error;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "observed counts exact" `Quick test_observed_counts_exact;
    Alcotest.test_case "report shape" `Quick test_report_shape;
    Alcotest.test_case "report JSON shape" `Quick test_report_json_shape;
    Alcotest.test_case "incomplete counts are lower bounds" `Quick
      test_incomplete_counts_are_lower_bounds;
    Alcotest.test_case "row-count correction" `Quick test_row_count_correction;
    Alcotest.test_case "distinct correction" `Quick test_distinct_correction;
    Alcotest.test_case "accurate stats: no corrections" `Quick
      test_accurate_stats_no_corrections;
    Alcotest.test_case "correction invalidates the right plansrv entries" `Quick
      test_correction_invalidates_plansrv;
    Alcotest.test_case "escape fires at k x estimate" `Quick test_escape_fires_at_k;
    Alcotest.test_case "escape never fires on exact estimates" `Quick
      test_escape_never_fires_on_exact_estimates;
    Alcotest.test_case "escape replans and recovers" `Quick test_escape_replans_and_recovers;
    Alcotest.test_case "feedback counters" `Quick test_feedback_counters;
    prop_observed_run_bit_identical;
  ]
