(* Tests of the plan-cache and optimization service: LRU mechanics,
   fingerprint soundness, hit/miss/invalidation behavior, parameterized
   (Dynplan-backed) entries, and concurrent serving equivalence. *)

open Relalg

(* ---------- Lru ---------- *)

let test_lru_basics () =
  let l = Plansrv.Lru.create ~capacity:2 in
  Alcotest.(check (option (pair string string))) "no eviction yet" None
    (Plansrv.Lru.add l "a" "1");
  Alcotest.(check (option (pair string string))) "no eviction yet" None
    (Plansrv.Lru.add l "b" "2");
  (* Touch "a" so "b" is the LRU when "c" arrives. *)
  Alcotest.(check (option string)) "find promotes" (Some "1") (Plansrv.Lru.find l "a");
  (match Plansrv.Lru.add l "c" "3" with
   | Some ("b", "2") -> ()
   | Some (k, _) -> Alcotest.failf "evicted %s, expected b" k
   | None -> Alcotest.fail "expected an eviction");
  Alcotest.(check int) "length at capacity" 2 (Plansrv.Lru.length l);
  Alcotest.(check (option string)) "b gone" None (Plansrv.Lru.find l "b");
  Alcotest.(check (option string)) "a kept" (Some "1") (Plansrv.Lru.peek l "a");
  let removed = Plansrv.Lru.remove_if l (fun k _ -> k = "c") in
  Alcotest.(check int) "remove_if removes one" 1 (List.length removed);
  Alcotest.(check int) "one left" 1 (Plansrv.Lru.length l)

let test_lru_replace () =
  let l = Plansrv.Lru.create ~capacity:2 in
  ignore (Plansrv.Lru.add l "a" 1);
  ignore (Plansrv.Lru.add l "a" 2);
  Alcotest.(check int) "replace keeps one binding" 1 (Plansrv.Lru.length l);
  Alcotest.(check (option int)) "latest value" (Some 2) (Plansrv.Lru.find l "a")

(* ---------- fingerprints ---------- *)

let key ?(parameterize = false) ?(required = Phys_prop.any) q =
  (fst (Plansrv.Fingerprint.of_query ~parameterize q ~required)).Plansrv.Fingerprint.key

let test_fingerprint_commutative_join () =
  let p = Expr.(col "r.a" =% col "s.a") in
  let a = Logical.join p (Logical.get "r") (Logical.get "s") in
  let b = Logical.join p (Logical.get "s") (Logical.get "r") in
  Alcotest.(check string) "swapped join inputs share a key" (key a) (key b);
  (* Swapped predicate orientation too. *)
  let c = Logical.join Expr.(col "s.a" =% col "r.a") (Logical.get "s") (Logical.get "r") in
  Alcotest.(check string) "swapped predicate operands share a key" (key a) (key c)

let test_fingerprint_commutative_setops () =
  let u1 = Logical.union (Logical.get "r") (Logical.get "s") in
  let u2 = Logical.union (Logical.get "s") (Logical.get "r") in
  Alcotest.(check string) "union commutes" (key u1) (key u2);
  let i1 = Logical.intersect (Logical.get "r") (Logical.get "s") in
  let i2 = Logical.intersect (Logical.get "s") (Logical.get "r") in
  Alcotest.(check string) "intersect commutes" (key i1) (key i2);
  let d1 = Logical.difference (Logical.get "r") (Logical.get "s") in
  let d2 = Logical.difference (Logical.get "s") (Logical.get "r") in
  Alcotest.(check bool) "difference does NOT commute" true (key d1 <> key d2)

let test_fingerprint_predicate_normal_form () =
  let sel p = Logical.select p (Logical.get "r") in
  let p1 = Expr.(col "r.a" >% int 5 &&% (col "r.b" =% int 2)) in
  let p2 = Expr.(col "r.b" =% int 2 &&% (int 5 <% col "r.a")) in
  Alcotest.(check string) "conjunct order and comparison orientation" (key (sel p1))
    (key (sel p2));
  let p3 = Expr.(col "r.a" >% int 6 &&% (col "r.b" =% int 2)) in
  Alcotest.(check bool) "different literal, different key" true
    (key (sel p1) <> key (sel p3));
  (* ... unless the literal is parameterized out. *)
  Alcotest.(check string) "parameterized keys erase the literal"
    (key ~parameterize:true (sel Expr.(col "r.a" >% int 5)))
    (key ~parameterize:true (sel Expr.(col "r.a" >% int 6)))

let test_fingerprint_required_props () =
  let q = Logical.get "r" in
  let k_any = key q in
  let k_sorted = key ~required:(Phys_prop.sorted (Sort_order.asc [ "r.a" ])) q in
  Alcotest.(check bool) "required properties are part of the key" true (k_any <> k_sorted)

(* Soundness over random workloads: commutative-join variants of the
   same query agree, and distinct queries get distinct keys. *)
let prop_fingerprint_sound =
  let gen = QCheck.Gen.(int_range 0 10_000) in
  Helpers.qcheck_case ~count:50 "fingerprint soundness on workload pairs"
    (QCheck.make QCheck.Gen.(pair gen gen))
    (fun (s1, s2) ->
      let q1 = (Workload.generate (Workload.spec ~n_relations:4 ~seed:s1 ())).logical in
      let q2 = (Workload.generate (Workload.spec ~n_relations:4 ~seed:s2 ())).logical in
      (* A commutative rewrite of q1: swap the inputs of every join. *)
      let rec flip (e : Logical.expr) =
        let inputs = List.map flip e.Logical.inputs in
        match e.Logical.op, inputs with
        | Logical.Join p, [ l; r ] -> Logical.mk (Logical.Join p) [ r; l ]
        | op, inputs -> Logical.mk op inputs
      in
      let variants_agree = key q1 = key (flip q1) in
      let distinct_queries_differ =
        let c1 = Plansrv.Fingerprint.canonicalize q1
        and c2 = Plansrv.Fingerprint.canonicalize q2 in
        Logical.equal c1 c2 = (key q1 = key q2)
      in
      variants_agree && distinct_queries_differ)

(* ---------- the service ---------- *)

let service ?(capacity = 64) ?(shards = 4) ?parameterize catalog =
  let request = { (Relmodel.Optimizer.request catalog) with restore_columns = false } in
  Plansrv.create (Plansrv.config ~capacity ~shards ?parameterize request)

let explain_of (r : Plansrv.response) =
  match r.plan with
  | Some p -> Relmodel.Optimizer.explain p
  | None -> Alcotest.fail "response carries no plan"

let cost_of (r : Plansrv.response) =
  match r.plan with
  | Some p -> Cost.total p.cost
  | None -> Alcotest.fail "response carries no plan"

let join_rs =
  Expr.(Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s"))

let test_warm_hit_identical () =
  let catalog = Helpers.small_catalog () in
  let srv = service catalog in
  let w = Plansrv.worker srv in
  let first = Plansrv.serve_one srv w join_rs ~required:Phys_prop.any in
  let second = Plansrv.serve_one srv w join_rs ~required:Phys_prop.any in
  Alcotest.(check bool) "first is a miss" true (first.outcome = Plansrv.Miss);
  Alcotest.(check bool) "second is a hit" true (second.outcome = Plansrv.Hit);
  Alcotest.(check string) "identical plan" (explain_of first) (explain_of second);
  Alcotest.(check (float 0.)) "identical cost" (cost_of first) (cost_of second);
  (* Commutative variant served from the same entry. *)
  let flipped =
    Expr.(Logical.join (col "s.a" =% col "r.a") (Logical.get "s") (Logical.get "r"))
  in
  let third = Plansrv.serve_one srv w flipped ~required:Phys_prop.any in
  Alcotest.(check bool) "variant is a hit" true (third.outcome = Plansrv.Hit);
  Alcotest.(check string) "variant gets the canonical plan" (explain_of first)
    (explain_of third);
  (* And the cached plan is what direct optimization of the canonical
     form produces. *)
  let request = { (Relmodel.Optimizer.request catalog) with restore_columns = false } in
  let direct =
    Relmodel.Optimizer.optimize request
      (Plansrv.Fingerprint.canonicalize join_rs)
      ~required:Phys_prop.any
  in
  (match direct.plan with
   | Some p ->
     Alcotest.(check string) "cache = direct optimization"
       (Relmodel.Optimizer.explain p) (explain_of first)
   | None -> Alcotest.fail "direct optimization failed");
  let m = Plansrv.metrics srv in
  Alcotest.(check int) "2 hits" 2 m.hits;
  Alcotest.(check int) "1 miss" 1 m.misses;
  Alcotest.(check int) "1 entry" 1 m.entries

let test_eviction () =
  let catalog = Helpers.small_catalog () in
  let srv = service ~capacity:2 ~shards:1 catalog in
  let w = Plansrv.worker srv in
  let q name = Logical.get name in
  List.iter
    (fun name -> ignore (Plansrv.serve_one srv w (q name) ~required:Phys_prop.any))
    [ "r"; "s"; "t" ];
  let m = Plansrv.metrics srv in
  Alcotest.(check int) "one eviction" 1 m.evictions;
  Alcotest.(check int) "population at capacity" 2 m.entries;
  (* The LRU victim was "r"; it misses again. *)
  let again = Plansrv.serve_one srv w (q "r") ~required:Phys_prop.any in
  Alcotest.(check bool) "evicted entry misses" true (again.outcome = Plansrv.Miss)

let test_stats_invalidation () =
  let catalog = Helpers.small_catalog () in
  let srv = service catalog in
  let w = Plansrv.worker srv in
  let q_rs = join_rs in
  let q_t = Logical.select Expr.(col "t.c" <% int 7) (Logical.get "t") in
  let serve q = Plansrv.serve_one srv w q ~required:Phys_prop.any in
  ignore (serve q_rs);
  ignore (serve q_t);
  Alcotest.(check bool) "warm before the change" true ((serve q_rs).outcome = Plansrv.Hit);
  Alcotest.(check bool) "warm before the change" true ((serve q_t).outcome = Plansrv.Hit);
  (* Refresh t's statistics: only fingerprints referencing t go stale. *)
  Catalog.update_stats catalog ~table:"t" ();
  Alcotest.(check bool) "entry over r,s survives" true ((serve q_rs).outcome = Plansrv.Hit);
  let stale = serve q_t in
  Alcotest.(check bool) "entry over t was invalidated" true
    (stale.outcome = Plansrv.Invalidated);
  Alcotest.(check bool) "re-populated entry is warm again" true
    ((serve q_t).outcome = Plansrv.Hit);
  let m = Plansrv.metrics srv in
  Alcotest.(check int) "exactly one invalidation" 1 m.invalidations;
  Alcotest.(check int) "both entries live" 2 m.entries

let test_proactive_invalidation () =
  let catalog = Helpers.small_catalog () in
  let srv = service catalog in
  let w = Plansrv.worker srv in
  ignore (Plansrv.serve_one srv w join_rs ~required:Phys_prop.any);
  ignore (Plansrv.serve_one srv w (Logical.get "t") ~required:Phys_prop.any);
  Alcotest.(check int) "sweep drops only r-referencing entries" 1
    (Plansrv.invalidate_table srv "r");
  let m = Plansrv.metrics srv in
  Alcotest.(check int) "one entry left" 1 m.entries

let test_parameterized_entry () =
  let catalog = Catalog.create () in
  ignore
    (Catalog.add_synthetic catalog ~name:"fact"
       ~columns:
         [ ("k", Catalog.Uniform_int (0, 499)); ("v", Catalog.Uniform_int (0, 9_999)) ]
       ~rows:3_000 ~seed:31 ());
  ignore
    (Catalog.add_synthetic catalog ~name:"dim"
       ~columns:[ ("k", Catalog.Uniform_int (0, 499)); ("w", Catalog.Uniform_int (0, 99)) ]
       ~rows:1_500 ~seed:32 ());
  let query c =
    let open Expr in
    Logical.join
      (col "fact.k" =% col "dim.k")
      (Logical.select (Expr.Cmp (Expr.Le, col "fact.v", Expr.int c)) (Logical.get "fact"))
      (Logical.get "dim")
  in
  let srv = service ~parameterize:true catalog in
  let w = Plansrv.worker srv in
  let r1 = Plansrv.serve_one srv w (query 40) ~required:Phys_prop.any in
  Alcotest.(check bool) "first literal misses" true (r1.outcome = Plansrv.Miss);
  Alcotest.(check bool) "and is parameterized" true r1.parameterized;
  let r2 = Plansrv.serve_one srv w (query 7_000) ~required:Phys_prop.any in
  Alcotest.(check bool) "different literal hits the same template" true
    (r2.outcome = Plansrv.Hit);
  Alcotest.(check bool) "parameterized hit" true r2.parameterized;
  (* The served plans carry the actual literal and compute the right
     rows. *)
  List.iter
    (fun (r, c) ->
      match r.Plansrv.plan with
      | None -> Alcotest.fail "no plan"
      | Some plan ->
        let rows, _, _ = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
        let expected, _ = Executor.naive catalog (query c) in
        Helpers.check_same_bag (Printf.sprintf "literal %d" c) expected rows)
    [ (r1, 40); (r2, 7_000) ];
  let m = Plansrv.metrics srv in
  Alcotest.(check int) "one template entry" 1 m.entries;
  Alcotest.(check int) "both requests parameterized" 2 m.param_served

(* The headline guarantee: concurrent domains serving a shuffled
   workload return bit-identical plans and costs to sequential
   single-session optimization. *)
let test_concurrent_matches_sequential () =
  let base = Workload.generate (Workload.spec ~n_relations:5 ~seed:4242 ()) in
  let catalog = base.catalog in
  (* 20 distinct queries: join prefixes of the chain crossed with extra
     selections of varying constants. *)
  let rec prefixes (e : Logical.expr) acc =
    match e.Logical.op, e.Logical.inputs with
    | Logical.Join _, [ l; _ ] -> prefixes l (e :: acc)
    | _, _ -> acc
  in
  let spines = prefixes base.logical [] in
  let first_col = List.hd base.relations ^ ".jk1" in
  let uniques =
    List.concat_map
      (fun spine ->
        List.map
          (fun c -> Logical.select Expr.(col first_col >=% int c) spine)
          [ 0; 3; 7; 11; 19 ])
      spines
  in
  let uniques = List.filteri (fun i _ -> i < 20) uniques in
  Alcotest.(check int) "20 unique queries" 20 (List.length uniques);
  (* 200 requests: each query 10 times, deterministically shuffled. *)
  let rng = Random.State.make [| 99 |] in
  let requests =
    List.concat_map (fun q -> List.init 10 (fun _ -> q)) uniques
    |> List.map (fun q -> (Random.State.bits rng, q))
    |> List.sort compare
    |> List.map (fun (_, q) -> (q, Phys_prop.any))
    |> Array.of_list
  in
  let request = { (Relmodel.Optimizer.request catalog) with restore_columns = false } in
  (* Sequential single-session baseline over the canonical forms. *)
  let baseline = Hashtbl.create 32 in
  let session = Relmodel.Optimizer.session request in
  List.iter
    (fun q ->
      let fp, canonical = Plansrv.Fingerprint.of_query q ~required:Phys_prop.any in
      match (Relmodel.Optimizer.optimize_in session canonical ~required:Phys_prop.any).plan with
      | Some p ->
        Hashtbl.replace baseline fp.Plansrv.Fingerprint.key
          (Relmodel.Optimizer.explain p, Cost.total p.cost)
      | None -> Alcotest.fail "baseline optimization failed")
    uniques;
  let srv = Plansrv.create (Plansrv.config ~capacity:64 ~shards:4 request) in
  let responses = Plansrv.serve ~workers:4 srv requests in
  Array.iteri
    (fun i (r : Plansrv.response) ->
      let expected_explain, expected_cost = Hashtbl.find baseline r.fingerprint in
      Alcotest.(check string)
        (Printf.sprintf "request %d: plan identical to sequential" i)
        expected_explain (explain_of r);
      Alcotest.(check (float 0.))
        (Printf.sprintf "request %d: cost identical to sequential" i)
        expected_cost (cost_of r))
    responses;
  (* No torn counters: every request accounted for exactly once. *)
  let m = Plansrv.metrics srv in
  Alcotest.(check int) "requests" 200 m.requests;
  Alcotest.(check int) "hits + misses = requests" 200 (m.hits + m.misses);
  Alcotest.(check int) "warm latencies = hits" m.hits m.warm.count;
  Alcotest.(check int) "cold latencies = misses" m.misses m.cold.count;
  Alcotest.(check bool)
    (Printf.sprintf "every unique query misses at least once (misses=%d)" m.misses)
    true (m.misses >= 20);
  Alcotest.(check int) "no invalidations" 0 m.invalidations

let test_serve_sequential_equals_concurrent_metrics () =
  (* The same batch served by 1 worker and by 4 workers yields the same
     plans (metrics like hit counts may differ only through duplicated
     concurrent misses). *)
  let catalog = Helpers.small_catalog () in
  let queries =
    [|
      (Logical.get "r", Phys_prop.any);
      (join_rs, Phys_prop.any);
      (Logical.get "r", Phys_prop.any);
      (join_rs, Phys_prop.any);
      (Logical.select Expr.(col "t.c" <% int 5) (Logical.get "t"), Phys_prop.any);
    |]
  in
  let run workers =
    let srv = service catalog in
    Plansrv.serve ~workers srv queries |> Array.map explain_of
  in
  Alcotest.(check (array string)) "1 worker = 4 workers" (run 1) (run 4)

let suite =
  [
    Alcotest.test_case "lru basics" `Quick test_lru_basics;
    Alcotest.test_case "lru replace" `Quick test_lru_replace;
    Alcotest.test_case "fingerprint: join commutes" `Quick test_fingerprint_commutative_join;
    Alcotest.test_case "fingerprint: set ops" `Quick test_fingerprint_commutative_setops;
    Alcotest.test_case "fingerprint: predicate NF" `Quick test_fingerprint_predicate_normal_form;
    Alcotest.test_case "fingerprint: required props" `Quick test_fingerprint_required_props;
    prop_fingerprint_sound;
    Alcotest.test_case "warm hit identical" `Quick test_warm_hit_identical;
    Alcotest.test_case "bounded cache evicts" `Quick test_eviction;
    Alcotest.test_case "stats bump invalidates" `Quick test_stats_invalidation;
    Alcotest.test_case "proactive sweep" `Quick test_proactive_invalidation;
    Alcotest.test_case "parameterized entries" `Quick test_parameterized_entry;
    Alcotest.test_case "concurrent = sequential" `Quick test_concurrent_matches_sequential;
    Alcotest.test_case "worker counts agree" `Quick test_serve_sequential_equals_concurrent_metrics;
  ]
