(* Tests of the observability layer (lib/obs) and its wiring into the
   search engine: JSON emit/parse roundtrips, the metrics registry and
   its exporters, span-tree well-formedness (every span closed exactly
   once, children bracketed by their parents, per-kind task-span counts
   equal to the engine's task counters — sequentially and across
   parallel worker tracks), the Chrome-trace exporter, EXPLAIN
   provenance, plansrv latency quantiles, and the guarantee that
   turning observability on never changes the plan. *)

open Relalg

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("a", Arr [ int 1; Num 2.5; Str "x\"y\n\t\\"; Bool true; Null ]);
          ("empty_obj", Obj []);
          ("empty_arr", Arr []);
          ("neg", Num (-0.125));
          ("big", Num 1e17);
        ])
  in
  (match Obs.Json.of_string (Obs.Json.to_string v) with
   | Ok v' -> Alcotest.(check bool) "emit/parse roundtrip" true (v = v')
   | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Accessors. *)
  let l = Option.bind (Obs.Json.member "a" v) Obs.Json.to_list in
  (match l with
   | Some (x :: _) -> Alcotest.(check (option int)) "int accessor" (Some 1) (Obs.Json.to_int x)
   | _ -> Alcotest.fail "member/to_list");
  Alcotest.(check (option string)) "str accessor" (Some "x\"y\n\t\\")
    (match l with
     | Some [ _; _; s; _; _ ] -> Obs.Json.to_str s
     | _ -> None);
  Alcotest.(check bool) "missing member" true (Obs.Json.member "nope" v = None);
  Alcotest.(check bool) "shape mismatch" true (Obs.Json.to_int (Obs.Json.Str "1") = None)

let test_json_errors () =
  let bad s =
    match Obs.Json.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unterminated object" true (bad "{");
  Alcotest.(check bool) "trailing garbage" true (bad "1 x");
  Alcotest.(check bool) "bare word" true (bad "nulla");
  Alcotest.(check bool) "unterminated string" true (bad {|"abc|});
  Alcotest.(check bool) "valid nested ok" false (bad {|{"a":[1,{"b":null}]}|})

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters_and_gauges () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg ~help:"test counter" "test_total" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  Alcotest.(check int) "counter accumulates" 42 (Obs.Metrics.counter_value c);
  (* Fetch-by-name returns the same counter. *)
  Obs.Metrics.incr (Obs.Metrics.counter reg "test_total");
  Alcotest.(check int) "same counter by name" 43 (Obs.Metrics.counter_value c);
  let cell = ref 7.5 in
  Obs.Metrics.gauge reg ~help:"test gauge" "test_gauge" (fun () -> !cell);
  let text = Obs.Metrics.to_prometheus reg in
  let contains needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prometheus counter line" true (contains "test_total 43" text);
  Alcotest.(check bool) "prometheus gauge line" true (contains "test_gauge 7.5" text);
  Alcotest.(check bool) "prometheus TYPE comments" true (contains "# TYPE test_total counter" text);
  (* Gauges read the live cell at export time. *)
  cell := 9.;
  Alcotest.(check bool) "gauge reads live value" true
    (contains "test_gauge 9" (Obs.Metrics.to_prometheus reg))

let test_histogram_quantiles () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg ~help:"test histogram" "test_ms" in
  Alcotest.(check (float 0.)) "empty quantile" 0. (Obs.Metrics.quantile h 0.5);
  for i = 1 to 100 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Obs.Metrics.hist_count h);
  Alcotest.(check (float 0.)) "sum" 5050. (Obs.Metrics.hist_sum h);
  Alcotest.(check (float 0.)) "max" 100. (Obs.Metrics.hist_max h);
  (* Log-bucketed estimates are conservative: at least the true value,
     at most 2x it (and never above the observed max). *)
  List.iter
    (fun (q, true_v) ->
      let est = Obs.Metrics.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q%.2f estimate %.1f >= true %.1f" q est true_v)
        true (est >= true_v);
      Alcotest.(check bool)
        (Printf.sprintf "q%.2f estimate %.1f <= 2x true" q est)
        true (est <= 2. *. true_v);
      Alcotest.(check bool) "estimate capped at max" true (est <= 100.))
    [ (0.5, 50.); (0.95, 95.); (0.99, 99.) ];
  Alcotest.(check (float 0.)) "q1 is the max" 100. (Obs.Metrics.quantile h 1.0)

let test_metrics_json_shape () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.incr (Obs.Metrics.counter reg "c_total");
  Obs.Metrics.gauge reg "g" (fun () -> 3.);
  Obs.Metrics.observe (Obs.Metrics.histogram reg "h_ms") 12.;
  let j = Obs.Metrics.to_json reg in
  let get path =
    List.fold_left (fun acc k -> Option.bind acc (Obs.Json.member k)) (Some j) path
  in
  Alcotest.(check (option int)) "counter in JSON" (Some 1)
    (Option.bind (get [ "counters"; "c_total" ]) Obs.Json.to_int);
  Alcotest.(check (option (float 0.))) "gauge in JSON" (Some 3.)
    (Option.bind (get [ "gauges"; "g" ]) Obs.Json.to_float);
  List.iter
    (fun field ->
      Alcotest.(check bool)
        (Printf.sprintf "histogram %s present" field)
        true
        (Option.bind (get [ "histograms"; "h_ms"; field ]) Obs.Json.to_float <> None))
    [ "count"; "sum"; "max"; "p50"; "p95"; "p99" ]

(* ------------------------------------------------------------------ *)
(* Span trees from real optimizations                                  *)
(* ------------------------------------------------------------------ *)

let optimize ?tracer ?profiler ?recorder ?(explain = false) ?(domains = 1)
    (q : Workload.query) =
  let req =
    { (Relmodel.Optimizer.request q.catalog) with
      restore_columns = false;
      domains;
      tracer;
      profiler;
      recorder;
      explain }
  in
  Relmodel.Optimizer.optimize req q.logical ~required:Phys_prop.any

let workload ~shape ~n ~seed =
  Workload.generate (Workload.spec ~shape ~n_relations:n ~seed ())

(* The well-formedness contract of a finished run's trace:
   - every span closed exactly once ([closed = total], no open spans);
   - parent links resolve, stay on one track, and bracket the child in
     time (a goal span closes after its concluding task's span);
   - per-kind task-span counts equal the engine's task counters, so the
     trace is a complete account of the work — including the parallel
     phase, whose workers record on their own tracks;
   - the merged span list is start-ordered. *)
let assert_well_formed msg tracer (stats : Volcano.Search_stats.t) =
  let spans = Obs.Trace.spans tracer in
  Alcotest.(check int)
    (msg ^ ": every span closed exactly once")
    (Obs.Trace.total tracer) (Obs.Trace.closed tracer);
  let by_id = Hashtbl.create 1024 in
  List.iter (fun (sp : Obs.Trace.span) -> Hashtbl.replace by_id sp.Obs.Trace.sp_id sp) spans;
  List.iter
    (fun (sp : Obs.Trace.span) ->
      if Obs.Trace.is_open sp then Alcotest.failf "%s: span %s left open" msg sp.sp_name;
      if Int64.compare sp.sp_end sp.sp_start < 0 then
        Alcotest.failf "%s: span %s ends before it starts" msg sp.sp_name;
      if sp.sp_parent <> 0 then
        match Hashtbl.find_opt by_id sp.sp_parent with
        | None -> Alcotest.failf "%s: span %s has a dangling parent id" msg sp.sp_name
        | Some parent ->
          if parent.Obs.Trace.sp_track <> sp.sp_track then
            Alcotest.failf "%s: span %s crosses tracks to its parent" msg sp.sp_name;
          if
            Int64.compare parent.Obs.Trace.sp_start sp.sp_start > 0
            || Int64.compare sp.sp_end parent.Obs.Trace.sp_end > 0
          then Alcotest.failf "%s: span %s escapes its parent's bracket" msg sp.sp_name)
    spans;
  let task_spans =
    List.filter (fun (sp : Obs.Trace.span) -> sp.Obs.Trace.sp_cat = "task") spans
  in
  List.iter
    (fun k ->
      let name = Volcano.Search_stats.task_kind_name k in
      Alcotest.(check int)
        (Printf.sprintf "%s: %s spans = task counter" msg name)
        (Volcano.Search_stats.tasks_of_kind stats k)
        (List.length
           (List.filter (fun (sp : Obs.Trace.span) -> sp.Obs.Trace.sp_name = name) task_spans)))
    Volcano.Search_stats.task_kinds;
  Alcotest.(check int)
    (msg ^ ": task spans = total tasks counter")
    stats.Volcano.Search_stats.tasks (List.length task_spans);
  let rec ordered = function
    | (a : Obs.Trace.span) :: (b :: _ as rest) ->
      Int64.compare a.sp_start b.Obs.Trace.sp_start <= 0 && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) (msg ^ ": merged spans start-ordered") true (ordered spans)

let test_span_tree_sequential () =
  let q = workload ~shape:Workload.Chain ~n:4 ~seed:23 in
  let tracer = Obs.Trace.create () in
  let result = optimize ~tracer q in
  Alcotest.(check bool) "found a plan" true (result.plan <> None);
  Alcotest.(check (list int)) "sequential run uses track 0 only" [ 0 ]
    (Obs.Trace.tracks tracer);
  assert_well_formed "sequential chain n=4" tracer result.stats;
  let spans = Obs.Trace.spans tracer in
  (* Goal spans carry outcomes; at least one goal won (the root). *)
  let goals = List.filter (fun (sp : Obs.Trace.span) -> sp.Obs.Trace.sp_cat = "goal") spans in
  Alcotest.(check bool) "goal spans present" true (goals <> []);
  List.iter
    (fun (sp : Obs.Trace.span) ->
      if sp.Obs.Trace.sp_outcome = "" then
        Alcotest.failf "goal span for group %d has no outcome" sp.sp_group)
    goals;
  Alcotest.(check bool) "some goal won" true
    (List.exists (fun (sp : Obs.Trace.span) -> sp.Obs.Trace.sp_outcome = "won") goals)

let test_double_close_raises () =
  let tracer = Obs.Trace.create () in
  let buf = Obs.Trace.buf tracer ~track:0 in
  let sp = Obs.Trace.open_span buf ~cat:"task" "x" in
  Obs.Trace.close sp;
  Alcotest.check_raises "second close refused"
    (Invalid_argument "Trace.close: span already closed") (fun () -> Obs.Trace.close sp)

let test_four_domain_tracks () =
  let q = workload ~shape:Workload.Star ~n:5 ~seed:105 in
  let tracer = Obs.Trace.create () in
  let result = optimize ~tracer ~domains:4 q in
  Alcotest.(check bool) "found a plan" true (result.plan <> None);
  Alcotest.(check (list int)) "one track per domain plus the sequential engine"
    [ 0; 1; 2; 3; 4 ] (Obs.Trace.tracks tracer);
  assert_well_formed "star n=5 at 4 domains" tracer result.stats;
  (* The parallel phase is really covered: worker tracks carry task
     spans (the old flat hook dropped all of this on the floor). *)
  let worker_tasks =
    List.filter
      (fun (sp : Obs.Trace.span) -> sp.Obs.Trace.sp_track > 0 && sp.sp_cat = "task")
      (Obs.Trace.spans tracer)
  in
  Alcotest.(check bool) "worker tracks carry task spans" true (worker_tasks <> []);
  (* Track 0 brackets the run in phase spans. *)
  let phases =
    List.filter_map
      (fun (sp : Obs.Trace.span) ->
        if sp.Obs.Trace.sp_cat = "phase" && sp.sp_track = 0 then Some sp.sp_name else None)
      (Obs.Trace.spans tracer)
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (Printf.sprintf "phase %S present" name) true
        (List.mem name phases))
    [ "explore"; "prefix"; "parallel"; "finish" ]

(* Observability must never steer the search: the plan and cost are
   bit-identical with tracing/explain off, with both on, and at any
   domain count with a tracer attached. *)
let render (result : Relmodel.Optimizer.result) =
  match result.plan with
  | None -> "NONE"
  | Some p -> Printf.sprintf "%s|%.17g" (Relmodel.Optimizer.explain p) (Cost.total p.cost)

let test_observability_bit_identity () =
  List.iter
    (fun (shape, name, n, seed) ->
      let q = workload ~shape ~n ~seed in
      let base = render (optimize q) in
      Alcotest.(check bool) (name ^ ": base run finds a plan") true (base <> "NONE");
      Alcotest.(check string) (name ^ ": tracer+explain identical") base
        (render (optimize ~tracer:(Obs.Trace.create ()) ~explain:true q));
      List.iter
        (fun domains ->
          Alcotest.(check string)
            (Printf.sprintf "%s: traced %d-domain run identical" name domains)
            base
            (render (optimize ~tracer:(Obs.Trace.create ()) ~domains q)))
        [ 2; 4 ])
    [
      (Workload.Chain, "chain n=4", 4, 23);
      (Workload.Star, "star n=5", 5, 105);
    ]

(* Property: on random workloads, sequential or parallel, the span tree
   of a finished run is well-formed and accounts for every task. *)
let prop_spans_well_formed =
  let gen =
    QCheck.Gen.(
      quad (oneofl [ Workload.Chain; Workload.Star ]) (int_range 2 4) (int_range 0 999)
        (int_range 1 2))
  in
  Helpers.qcheck_case ~count:12 "span tree well-formed on random workloads"
    (QCheck.make gen) (fun (shape, n, seed, domains) ->
      let q = workload ~shape ~n ~seed in
      let tracer = Obs.Trace.create () in
      let result = optimize ~tracer ~domains q in
      assert_well_formed
        (Printf.sprintf "shape=%s n=%d seed=%d domains=%d"
           (match shape with Workload.Chain -> "chain" | _ -> "star")
           n seed domains)
        tracer result.stats;
      result.plan <> None)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_shape () =
  let q = workload ~shape:Workload.Star ~n:4 ~seed:104 in
  let tracer = Obs.Trace.create () in
  ignore (optimize ~tracer ~domains:4 q : Relmodel.Optimizer.result);
  let parsed =
    match Obs.Json.of_string (Obs.Json.to_string (Obs.Chrome_trace.to_json tracer)) with
    | Ok j -> j
    | Error e -> Alcotest.failf "exported trace does not parse: %s" e
  in
  Alcotest.(check (option string)) "displayTimeUnit" (Some "ms")
    (Option.bind (Obs.Json.member "displayTimeUnit" parsed) Obs.Json.to_str);
  let events =
    match Option.bind (Obs.Json.member "traceEvents" parsed) Obs.Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "traceEvents missing or not an array"
  in
  Alcotest.(check int) "one event per span plus track metadata"
    (Obs.Trace.total tracer + List.length (Obs.Trace.tracks tracer))
    (List.length events);
  let field name ev = Obs.Json.member name ev in
  let tids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let ph =
        match Option.bind (field "ph" ev) Obs.Json.to_str with
        | Some ph -> ph
        | None -> Alcotest.fail "event without ph"
      in
      Alcotest.(check bool) "ph is X or M" true (ph = "X" || ph = "M");
      Alcotest.(check bool) "event has a name" true
        (Option.bind (field "name" ev) Obs.Json.to_str <> None);
      let tid =
        match Option.bind (field "tid" ev) Obs.Json.to_int with
        | Some tid -> tid
        | None -> Alcotest.fail "event without tid"
      in
      if ph = "X" then begin
        Hashtbl.replace tids tid ();
        let num name =
          match Option.bind (field name ev) Obs.Json.to_float with
          | Some v -> v
          | None -> Alcotest.failf "X event without %s" name
        in
        Alcotest.(check bool) "ts >= 0" true (num "ts" >= 0.);
        Alcotest.(check bool) "dur >= 0" true (num "dur" >= 0.);
        Alcotest.(check bool) "cat is task/goal/phase" true
          (match Option.bind (field "cat" ev) Obs.Json.to_str with
           | Some ("task" | "goal" | "phase") -> true
           | _ -> false)
      end)
    events;
  List.iter
    (fun track ->
      Alcotest.(check bool) (Printf.sprintf "track %d has events" track) true
        (Hashtbl.mem tids track))
    (Obs.Trace.tracks tracer)

(* ------------------------------------------------------------------ *)
(* EXPLAIN provenance                                                  *)
(* ------------------------------------------------------------------ *)

let test_explain_provenance () =
  let q = workload ~shape:Workload.Star ~n:4 ~seed:104 in
  let result = optimize ~explain:true q in
  let plan = match result.plan with Some p -> p | None -> Alcotest.fail "no plan" in
  let text = match result.explain with Some s -> s | None -> Alcotest.fail "no explain" in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let contains needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let winners = List.filter (contains "rule=") lines in
  let alts = List.filter (contains "~ ") lines in
  (* One winner line per plan node, each with its cost breakdown. *)
  let rec plan_size (p : Relmodel.Optimizer.plan_node) =
    1 + List.fold_left (fun acc c -> acc + plan_size c) 0 p.children
  in
  Alcotest.(check int) "one provenance line per plan node" (plan_size plan)
    (List.length winners);
  List.iter
    (fun l ->
      Alcotest.(check bool) "winner line has cost" true (contains "cost " l);
      Alcotest.(check bool) "winner line has local cost" true (contains "local " l);
      Alcotest.(check bool) "winner line has its group" true (contains "group=" l))
    winners;
  (* The root line names the root algorithm. *)
  (match lines with
   | first :: _ ->
     Alcotest.(check bool) "root line names the root algorithm" true
       (contains (Physical.alg_name plan.alg) first)
   | [] -> Alcotest.fail "empty explain");
  (* Losing alternatives survive, with human-readable reasons. *)
  Alcotest.(check bool) "losing alternatives present" true (alts <> []);
  Alcotest.(check bool) "a losing reason is rendered" true
    (List.exists
       (fun l ->
         contains "completed" l || contains "bound exceeded" l || contains "pruned" l
         || contains "failed" l)
       alts)

let test_explain_off_by_default () =
  let q = workload ~shape:Workload.Chain ~n:3 ~seed:1 in
  let result = optimize q in
  Alcotest.(check bool) "no explain text unless requested" true (result.explain = None)

(* ------------------------------------------------------------------ *)
(* Plansrv latency quantiles and registry                              *)
(* ------------------------------------------------------------------ *)

let test_plansrv_latency_and_registry () =
  let catalog = Helpers.small_catalog () in
  let request =
    { (Relmodel.Optimizer.request catalog) with restore_columns = false }
  in
  let srv = Plansrv.create (Plansrv.config ~capacity:16 ~shards:2 request) in
  let w = Plansrv.worker srv in
  let q = Expr.(Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s")) in
  ignore (Plansrv.serve_one srv w q ~required:Phys_prop.any);
  for _ = 1 to 5 do
    ignore (Plansrv.serve_one srv w q ~required:Phys_prop.any)
  done;
  let m = Plansrv.metrics srv in
  let check_latency name (l : Plansrv.latency) =
    Alcotest.(check bool) (name ^ ": non-negative latencies") true (l.p50_ms >= 0.);
    Alcotest.(check bool) (name ^ ": quantiles ordered") true
      (l.p50_ms <= l.p95_ms && l.p95_ms <= l.p99_ms);
    Alcotest.(check bool) (name ^ ": p99 within observed max") true (l.p99_ms <= l.max_ms)
  in
  Alcotest.(check int) "one cold serve" 1 m.cold.count;
  Alcotest.(check int) "five warm serves" 5 m.warm.count;
  check_latency "cold" m.cold;
  check_latency "warm" m.warm;
  (* The registry surfaces the service and search counters. *)
  let text = Obs.Metrics.to_prometheus (Plansrv.registry srv) in
  let contains needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (Printf.sprintf "registry exports %s" name) true
        (contains name text))
    [
      "plansrv_requests 6";
      "plansrv_hits 5";
      "plansrv_misses 1";
      "plansrv_warm_latency_ms_count 5";
      "plansrv_cold_latency_ms_count 1";
      "volcano_search_tasks";
    ]

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_flightrec_wraparound () =
  let fr = Obs.Flight_recorder.create ~capacity:8 () in
  let ring = Obs.Flight_recorder.ring fr ~track:0 in
  for i = 0 to 19 do
    Obs.Flight_recorder.record ring Obs.Flight_recorder.Task_begin ~group:i ~detail:i
  done;
  Alcotest.(check int) "recorded counts every event" 20 (Obs.Flight_recorder.recorded fr);
  Alcotest.(check int) "dropped = recorded - capacity" 12 (Obs.Flight_recorder.dropped fr);
  let events = Obs.Flight_recorder.events fr in
  Alcotest.(check int) "only capacity events survive" 8 (List.length events);
  (* The survivors are the newest 8 (details 12..19), oldest first. *)
  Alcotest.(check (list int)) "oldest surviving event first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun (e : Obs.Flight_recorder.event) -> e.detail) events);
  let rec time_ordered = function
    | (a : Obs.Flight_recorder.event) :: (b :: _ as rest) ->
      a.ns <= b.Obs.Flight_recorder.ns && time_ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "events time-ordered" true (time_ordered events);
  (* A half-full ring keeps everything in insertion order. *)
  let fr2 = Obs.Flight_recorder.create ~capacity:8 () in
  let ring2 = Obs.Flight_recorder.ring fr2 ~track:0 in
  for i = 0 to 4 do
    Obs.Flight_recorder.record ring2 Obs.Flight_recorder.Claim ~group:i ~detail:i
  done;
  Alcotest.(check int) "no drops below capacity" 0 (Obs.Flight_recorder.dropped fr2);
  Alcotest.(check (list int)) "insertion order below capacity" [ 0; 1; 2; 3; 4 ]
    (List.map
       (fun (e : Obs.Flight_recorder.event) -> e.detail)
       (Obs.Flight_recorder.events fr2))

let test_flightrec_concurrent_writers () =
  let fr = Obs.Flight_recorder.create ~capacity:64 () in
  let domains =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            (* Each writer owns its ring: registration is thread-safe,
               recording is single-writer lock-free. *)
            let ring = Obs.Flight_recorder.ring fr ~track:(w + 1) in
            for i = 0 to 999 do
              Obs.Flight_recorder.record ring Obs.Flight_recorder.Publish ~group:w
                ~detail:i
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "every record landed" 4000 (Obs.Flight_recorder.recorded fr);
  Alcotest.(check int) "drops account for the rest" (4 * (1000 - 64))
    (Obs.Flight_recorder.dropped fr);
  Alcotest.(check (list int)) "one track per writer" [ 1; 2; 3; 4 ]
    (Obs.Flight_recorder.tracks fr);
  let events = Obs.Flight_recorder.events fr in
  Alcotest.(check int) "each ring kept its capacity" (4 * 64) (List.length events);
  (* Per track, the survivors are that writer's newest 64 details. *)
  List.iter
    (fun track ->
      let mine =
        List.filter_map
          (fun (e : Obs.Flight_recorder.event) ->
            if e.track = track then Some e.detail else None)
          events
      in
      Alcotest.(check (list int))
        (Printf.sprintf "track %d keeps its newest events in order" track)
        (List.init 64 (fun i -> 936 + i))
        (List.sort compare mine))
    [ 1; 2; 3; 4 ]

let test_flightrec_trigger_dump () =
  let path = Filename.temp_file "flightrec" ".json" in
  let fr = Obs.Flight_recorder.create ~capacity:16 ~path () in
  let ring = Obs.Flight_recorder.ring fr ~track:0 in
  for i = 0 to 9 do
    Obs.Flight_recorder.record ring Obs.Flight_recorder.Incumbent ~group:1 ~detail:i
  done;
  Alcotest.(check int) "no dump before a trigger" 0 (Obs.Flight_recorder.dumps fr);
  Obs.Flight_recorder.trigger fr ~reason:"test-abort";
  Alcotest.(check int) "trigger counted" 1 (Obs.Flight_recorder.dumps fr);
  Alcotest.(check string) "reason remembered" "test-abort"
    (Obs.Flight_recorder.last_reason fr);
  let j =
    match Obs.Json.read_file path with
    | Ok j -> j
    | Error e -> Alcotest.failf "post-mortem does not parse: %s" e
  in
  Sys.remove path;
  Alcotest.(check (option string)) "dump carries the reason" (Some "test-abort")
    (Option.bind (Obs.Json.member "reason" j) Obs.Json.to_str);
  Alcotest.(check (option int)) "dump carries the events" (Some 10)
    (Option.map List.length
       (Option.bind (Obs.Json.member "events" j) Obs.Json.to_list))

(* ------------------------------------------------------------------ *)
(* Search profiler                                                     *)
(* ------------------------------------------------------------------ *)

(* The attribution-parity invariant: the engine charges exactly one
   profiler task per executed task, so the per-entry task counts sum to
   the engine's total task counter — sequentially and across parallel
   worker tracks. *)
let test_profiler_attribution_parity () =
  List.iter
    (fun domains ->
      let q = workload ~shape:Workload.Star ~n:5 ~seed:105 in
      let profiler = Obs.Profile.create () in
      let result = optimize ~profiler ~domains q in
      Alcotest.(check bool) "found a plan" true (result.plan <> None);
      Alcotest.(check int)
        (Printf.sprintf "domains=%d: per-rule tasks sum to the task counter" domains)
        result.stats.Volcano.Search_stats.tasks
        (Obs.Profile.total_tasks profiler);
      let entries = Obs.Profile.report profiler in
      Alcotest.(check bool) "entries present" true (entries <> []);
      (* Someone won the root: plans_won attribution is live. *)
      Alcotest.(check bool) "plans won attributed" true
        (List.exists (fun (e : Obs.Profile.entry) -> e.plans_won > 0) entries);
      (* Transformation and implementation rules show up by name. *)
      Alcotest.(check bool) "rule entries present" true
        (List.exists (fun (e : Obs.Profile.entry) -> e.kind = Obs.Profile.Rule) entries);
      List.iter
        (fun (e : Obs.Profile.entry) ->
          if e.tasks < 0 || e.mexprs < 0 || e.plans_won < 0 || e.pruned < 0
             || e.wasted < 0 || Int64.compare e.ns 0L < 0
          then Alcotest.failf "negative counter for %s" e.name)
        entries)
    [ 1; 4 ]

(* Profiler JSON and registry export shapes. *)
let test_profiler_export_shapes () =
  let q = workload ~shape:Workload.Chain ~n:4 ~seed:23 in
  let profiler = Obs.Profile.create () in
  let result = optimize ~profiler q in
  let j = Obs.Profile.to_json profiler in
  Alcotest.(check (option int)) "json total matches the engine"
    (Some result.stats.Volcano.Search_stats.tasks)
    (Option.bind (Obs.Json.member "total_tasks" j) Obs.Json.to_int);
  let entries =
    match Option.bind (Obs.Json.member "entries" j) Obs.Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "entries missing"
  in
  Alcotest.(check bool) "json entries present" true (entries <> []);
  let reg = Obs.Metrics.create () in
  Obs.Profile.register profiler reg;
  let text = Obs.Metrics.to_prometheus reg in
  let contains = Helpers.contains in
  Alcotest.(check bool) "rule_* gauges exported" true (contains text "rule_");
  Alcotest.(check bool) "per-rule task gauge exported" true (contains text "_tasks");
  (* The table renderer stays bounded. *)
  let table = Format.asprintf "%a" (Obs.Profile.pp_table ~top:5) profiler in
  Alcotest.(check bool) "table has a header" true (contains table "tasks");
  Alcotest.(check bool) "table mentions a rule" true (contains table "rule")

(* Observability stays plan-inert with the profiler and the flight
   recorder attached, at 1, 2, and 4 domains. *)
let test_profiling_bit_identity () =
  List.iter
    (fun (shape, name, n, seed) ->
      let q = workload ~shape ~n ~seed in
      let base = render (optimize q) in
      Alcotest.(check bool) (name ^ ": base run finds a plan") true (base <> "NONE");
      List.iter
        (fun domains ->
          Alcotest.(check string)
            (Printf.sprintf "%s: profiled %d-domain run identical" name domains)
            base
            (render
               (optimize ~profiler:(Obs.Profile.create ())
                  ~recorder:(Obs.Flight_recorder.create ~capacity:128 ())
                  ~domains q)))
        [ 1; 2; 4 ])
    [
      (Workload.Chain, "chain n=4", 4, 23);
      (Workload.Star, "star n=5", 5, 105);
    ]

(* Property: profiling and flight recording never change the plan, and
   attribution parity holds, on random workloads at random domain
   counts. *)
let prop_profile_plan_inert =
  let gen =
    QCheck.Gen.(
      quad (oneofl [ Workload.Chain; Workload.Star ]) (int_range 2 4) (int_range 0 999)
        (int_range 1 2))
  in
  Helpers.qcheck_case ~count:12 "profiling is plan-inert on random workloads"
    (QCheck.make gen) (fun (shape, n, seed, domains) ->
      let q = workload ~shape ~n ~seed in
      let plain = render (optimize ~domains q) in
      let profiler = Obs.Profile.create () in
      let recorder = Obs.Flight_recorder.create ~capacity:64 () in
      let result = optimize ~profiler ~recorder ~domains q in
      plain = render result
      && Obs.Profile.total_tasks profiler = result.stats.Volcano.Search_stats.tasks)

(* ------------------------------------------------------------------ *)
(* Plansrv slow-query log and status                                   *)
(* ------------------------------------------------------------------ *)

let test_plansrv_slow_log_and_status () =
  let catalog = Helpers.small_catalog () in
  let request =
    { (Relmodel.Optimizer.request catalog) with restore_columns = false }
  in
  (* Threshold 0: every response is "slow", so the log fills. *)
  let srv = Plansrv.create (Plansrv.config ~capacity:16 ~shards:2 ~slow_ms:0. request) in
  let w = Plansrv.worker srv in
  let q = Expr.(Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s")) in
  ignore (Plansrv.serve_one srv w q ~required:Phys_prop.any);
  ignore (Plansrv.serve_one srv w q ~required:Phys_prop.any);
  let log = Plansrv.slow_log srv in
  Alcotest.(check int) "both responses logged" 2 (List.length log);
  (match log with
   | [ miss; hit ] ->
     Alcotest.(check string) "first entry is the miss" "miss" miss.Plansrv.sq_outcome;
     Alcotest.(check string) "second entry is the hit" "hit" hit.Plansrv.sq_outcome;
     Alcotest.(check bool) "miss carries EXPLAIN provenance" true
       (miss.Plansrv.sq_explain <> None);
     Alcotest.(check bool) "fingerprints agree" true
       (miss.Plansrv.sq_fingerprint = hit.Plansrv.sq_fingerprint)
   | _ -> Alcotest.fail "expected exactly two slow entries");
  (* JSON views parse and carry the headline numbers. *)
  let slow_j = Plansrv.slow_log_json srv in
  Alcotest.(check (option int)) "slow log JSON counts entries" (Some 2)
    (Option.map List.length
       (Option.bind (Obs.Json.member "entries" slow_j) Obs.Json.to_list));
  let status = Plansrv.status_json srv in
  let field name = Option.bind (Obs.Json.member name status) Obs.Json.to_int in
  Alcotest.(check (option int)) "status requests" (Some 2) (field "requests");
  Alcotest.(check (option int)) "status hits" (Some 1) (field "hits");
  Alcotest.(check (option int)) "status rejected" (Some 0) (field "rejected");
  Alcotest.(check (option int)) "status slow occupancy" (Some 2) (field "slow_logged");
  (* A raised threshold leaves fast responses out of the log. *)
  let srv2 =
    Plansrv.create (Plansrv.config ~capacity:16 ~shards:2 ~slow_ms:60_000. request)
  in
  let w2 = Plansrv.worker srv2 in
  ignore (Plansrv.serve_one srv2 w2 q ~required:Phys_prop.any);
  Alcotest.(check int) "fast responses stay out of the log" 0
    (List.length (Plansrv.slow_log srv2))

let suite =
  [
    Alcotest.test_case "json roundtrip and accessors" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_errors;
    Alcotest.test_case "counters and gauges" `Quick test_metrics_counters_and_gauges;
    Alcotest.test_case "histogram quantiles conservative" `Quick test_histogram_quantiles;
    Alcotest.test_case "metrics JSON shape" `Quick test_metrics_json_shape;
    Alcotest.test_case "sequential span tree well-formed" `Quick test_span_tree_sequential;
    Alcotest.test_case "a span closes exactly once" `Quick test_double_close_raises;
    Alcotest.test_case "4-domain run: one track per worker" `Quick test_four_domain_tracks;
    Alcotest.test_case "observability never changes the plan" `Quick
      test_observability_bit_identity;
    prop_spans_well_formed;
    Alcotest.test_case "chrome trace export shape" `Quick test_chrome_trace_shape;
    Alcotest.test_case "explain provenance" `Quick test_explain_provenance;
    Alcotest.test_case "explain off by default" `Quick test_explain_off_by_default;
    Alcotest.test_case "plansrv latency quantiles and registry" `Quick
      test_plansrv_latency_and_registry;
    Alcotest.test_case "flight recorder ring wraparound" `Quick test_flightrec_wraparound;
    Alcotest.test_case "flight recorder concurrent writers" `Quick
      test_flightrec_concurrent_writers;
    Alcotest.test_case "flight recorder trigger dump" `Quick test_flightrec_trigger_dump;
    Alcotest.test_case "profiler attribution parity" `Quick
      test_profiler_attribution_parity;
    Alcotest.test_case "profiler export shapes" `Quick test_profiler_export_shapes;
    Alcotest.test_case "profiling never changes the plan" `Quick
      test_profiling_bit_identity;
    prop_profile_plan_inert;
    Alcotest.test_case "plansrv slow log and status" `Quick
      test_plansrv_slow_log_and_status;
  ]
