(* Tests of the explicit task engine: golden plan costs against the
   recursive engine it replaced, budgets and anytime plans, failure
   caching observed through the task counters, resumability, and span
   tracing. *)

open Relalg

(* ------------------------------------------------------------------ *)
(* Golden plan costs                                                   *)
(* ------------------------------------------------------------------ *)

(* Winning plan costs recorded from the seed recursive engine (PR 0) on
   seeded paper-style workloads, exhaustive search, bare plans (no
   column-restoring projection). The task engine must reproduce them
   exactly: same memoized winners, same branch-and-bound arithmetic. *)

(* (n_relations, seed, cost with no requirement, cost sorted on the
   first relation's jk1) for chain-shaped queries. *)
let golden_chain =
  [
    (2, 11, 2.719843728, 3.179941510);
    (2, 23, 2.249610724, 2.249610724);
    (2, 42, 4.396997975, 4.396997975);
    (3, 11, 7.353301507, 7.353301507);
    (3, 23, 4.336324454, 4.336324454);
    (3, 42, 6.683663355, 7.060915910);
    (4, 11, 6.722604455, 6.837956860);
    (4, 23, 7.000138822, 7.004945243);
    (4, 42, 11.033511393, 11.837808443);
    (5, 11, 9.107850929, 9.114017189);
    (5, 23, 8.525771961, 8.666151647);
    (5, 42, 73.068731901, 1753.028290731);
    (6, 11, 13.529168341, 56.297521566);
    (6, 23, 11.168764357, 12.284949509);
    (6, 42, 18.890240582, 22.381516967);
  ]

(* (n_relations, cost with no requirement) for star-shaped queries,
   seed 100 + n. *)
let golden_star = [ (3, 5.221257341); (4, 11.549146041); (5, 14.609767043) ]

let close msg expected actual =
  let ok = Float.abs (actual -. expected) <= 1e-6 *. Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9f, got %.9f" msg expected actual)
    true ok

let workload_cost ~shape ~n ~seed ~required =
  let q = Workload.generate (Workload.spec ~shape ~n_relations:n ~seed ()) in
  let request =
    { (Relmodel.Optimizer.request q.catalog) with restore_columns = false }
  in
  match (Relmodel.Optimizer.optimize request q.logical ~required).plan with
  | None -> Alcotest.fail "no plan on a golden workload"
  | Some p -> (q, Cost.total p.cost)

let test_golden_chain () =
  List.iter
    (fun (n, seed, want_any, want_sorted) ->
      let q, got_any =
        workload_cost ~shape:Workload.Chain ~n ~seed ~required:Phys_prop.any
      in
      close (Printf.sprintf "chain n=%d seed=%d (any)" n seed) want_any got_any;
      let required =
        Phys_prop.sorted (Sort_order.asc [ List.hd q.relations ^ ".jk1" ])
      in
      let _, got_sorted = workload_cost ~shape:Workload.Chain ~n ~seed ~required in
      close (Printf.sprintf "chain n=%d seed=%d (sorted)" n seed) want_sorted got_sorted)
    golden_chain

let test_golden_star () =
  List.iter
    (fun (n, want) ->
      let _, got =
        workload_cost ~shape:Workload.Star ~n ~seed:(100 + n) ~required:Phys_prop.any
      in
      close (Printf.sprintf "star n=%d" n) want got)
    golden_star

(* ------------------------------------------------------------------ *)
(* Failure caching through the task counters                           *)
(* ------------------------------------------------------------------ *)

let catalog = Helpers.small_catalog ()

let join_query =
  Expr.(Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s"))

let test_failed_goal_cached_no_new_tasks () =
  (* Optimize under an impossible cost limit; the root goal is recorded
     as a failure. Re-optimizing the same goal in the same session must
     be answered from the winner table: one Optimize_group task that
     hits the memo, and no exploration, move generation, or pursuit. *)
  let request =
    {
      (Relmodel.Optimizer.request catalog) with
      limit = Some (Cost.make ~io:0. ~cpu:1e-12);
      restore_columns = false;
    }
  in
  let session = Relmodel.Optimizer.session request in
  let first = Relmodel.Optimizer.optimize_in session join_query ~required:Phys_prop.any in
  Alcotest.(check bool) "first attempt fails" true (first.plan = None);
  let s = first.stats in
  let open Volcano.Search_stats in
  let snap () =
    ( s.goals,
      s.tasks,
      tasks_of_kind s Apply_transform,
      tasks_of_kind s Optimize_mexpr,
      tasks_of_kind s Optimize_inputs,
      tasks_of_kind s Apply_enforcer )
  in
  let goals0, tasks0, tr0, mx0, inp0, enf0 = snap () in
  let hits0 = s.goal_hits in
  let second = Relmodel.Optimizer.optimize_in session join_query ~required:Phys_prop.any in
  Alcotest.(check bool) "second attempt fails too" true (second.plan = None);
  let goals1, tasks1, tr1, mx1, inp1, enf1 = snap () in
  Alcotest.(check int) "no new real optimizations" goals0 goals1;
  Alcotest.(check int) "no new transform tasks" tr0 tr1;
  Alcotest.(check int) "no new move-generation tasks" mx0 mx1;
  Alcotest.(check int) "no new input-optimization tasks" inp0 inp1;
  Alcotest.(check int) "no new enforcer tasks" enf0 enf1;
  Alcotest.(check int) "answered by one memo-consulting task" 1 (tasks1 - tasks0);
  Alcotest.(check int) "counted as a winner-table hit" (hits0 + 1) s.goal_hits

(* ------------------------------------------------------------------ *)
(* Anytime behavior under step budgets                                 *)
(* ------------------------------------------------------------------ *)

let three_way_join =
  Expr.(
    Logical.join
      (col "s.c" =% col "t.c")
      (Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s"))
      (Logical.get "t"))

let test_anytime_budget_sweep () =
  let optimize ?max_tasks:(mt = None) () =
    let request =
      {
        (Relmodel.Optimizer.request catalog) with
        max_tasks = mt;
        restore_columns = false;
      }
    in
    Relmodel.Optimizer.optimize request three_way_join ~required:Phys_prop.any
  in
  let exhaustive = optimize () in
  Alcotest.(check bool) "exhaustive run is complete" true exhaustive.complete;
  let optimum =
    match exhaustive.plan with
    | Some p -> Cost.total p.cost
    | None -> Alcotest.fail "exhaustive optimization failed"
  in
  let total_tasks = exhaustive.tasks_run in
  let partial_with_plan = ref 0 in
  let budget = ref 1 in
  while !budget < total_tasks do
    let r = optimize ~max_tasks:(Some !budget) () in
    Alcotest.(check bool)
      (Printf.sprintf "budget %d marked incomplete" !budget)
      false r.complete;
    Alcotest.(check bool)
      (Printf.sprintf "budget %d respected" !budget)
      true
      (r.tasks_run <= !budget);
    (match r.plan with
     | None -> ()
     | Some p ->
       incr partial_with_plan;
       (* An anytime plan is valid but possibly suboptimal: never
          cheaper than the exhaustive optimum. *)
       Alcotest.(check bool)
         (Printf.sprintf "budget %d anytime cost >= optimum" !budget)
         true
         (Cost.total p.cost >= optimum -. 1e-9));
    budget := !budget + 7
  done;
  Alcotest.(check bool) "some partial budget already yields a plan" true
    (!partial_with_plan > 0);
  let exact = optimize ~max_tasks:(Some total_tasks) () in
  match exact.plan with
  | None -> Alcotest.fail "full-budget run lost the plan"
  | Some p -> close "full budget returns the optimum" optimum (Cost.total p.cost)

(* ------------------------------------------------------------------ *)
(* Resumability at the engine level                                    *)
(* ------------------------------------------------------------------ *)

module M = (val Relmodel.Rel_model.make ~catalog ())
module S = Volcano.Search.Make (M)

let test_resume_equivalence () =
  (* Drive one run in many small budget slices; the final plan must be
     cost-identical to a fresh exhaustive run, with no work redone. *)
  let tree = Relmodel.Rel_model.to_tree three_way_join in
  let fresh = S.create () in
  let fresh_outcome = S.optimize fresh tree ~required:Phys_prop.any in
  let optimum =
    match fresh_outcome.plan with
    | Some p -> Cost.total p.cost
    | None -> Alcotest.fail "fresh exhaustive run failed"
  in
  let sliced = S.create () in
  let run = S.start sliced tree ~required:Phys_prop.any in
  let pauses = ref 0 in
  let slice = 13 in
  let rec drive budget =
    match S.resume ~budget:(S.budget ~max_tasks:budget ()) run with
    | S.Complete -> ()
    | S.Paused S.Task_budget ->
      incr pauses;
      (* Anytime plans only improve as the budget grows. *)
      (match S.best_so_far run with
       | None -> ()
       | Some p -> Alcotest.(check bool) "anytime >= optimum" true
                     (Cost.total p.cost >= optimum -. 1e-9));
      drive (budget + slice)
    | S.Paused S.Time_budget -> Alcotest.fail "unexpected time pause"
  in
  drive slice;
  Alcotest.(check bool) "search actually paused along the way" true (!pauses > 10);
  let outcome = S.outcome_of run in
  Alcotest.(check bool) "resumed run is complete" true (outcome.status = S.Complete);
  (match outcome.plan with
   | None -> Alcotest.fail "resumed run found no plan"
   | Some p -> close "resumed = fresh exhaustive" optimum (Cost.total p.cost));
  (* Work was never redone: same number of real goal optimizations. *)
  Alcotest.(check int) "same goals as fresh run" (S.stats fresh).goals
    (S.stats sliced).goals;
  Alcotest.(check int) "same plans costed as fresh run" (S.stats fresh).plans_costed
    (S.stats sliced).plans_costed

let test_resume_after_complete_is_noop () =
  let tree = Relmodel.Rel_model.to_tree join_query in
  let t = S.create () in
  let run = S.start t tree ~required:Phys_prop.any in
  Alcotest.(check bool) "completes" true (S.resume run = S.Complete);
  let tasks = (S.stats t).tasks in
  Alcotest.(check bool) "still complete" true (S.resume run = S.Complete);
  Alcotest.(check int) "no further tasks" tasks (S.stats t).tasks

(* ------------------------------------------------------------------ *)
(* Tracing and scheduler counters                                      *)
(* ------------------------------------------------------------------ *)

let test_trace_spans_and_counters () =
  let tracer = Obs.Trace.create () in
  let config = { S.default_config with tracer = Some tracer } in
  let t = S.create ~config () in
  let outcome =
    S.optimize t (Relmodel.Rel_model.to_tree three_way_join) ~required:Phys_prop.any
  in
  Alcotest.(check bool) "plan found" true (outcome.plan <> None);
  let s = S.stats t in
  let spans = Obs.Trace.spans tracer in
  let task_spans =
    List.filter (fun (sp : Obs.Trace.span) -> sp.sp_cat = "task") spans
  in
  Alcotest.(check int) "one task span per task" s.tasks (List.length task_spans);
  let open Volcano.Search_stats in
  Alcotest.(check int) "per-kind counters sum to the total" s.tasks
    (List.fold_left (fun acc k -> acc + tasks_of_kind s k) 0 task_kinds);
  List.iter
    (fun k ->
      let n =
        List.length
          (List.filter
             (fun (sp : Obs.Trace.span) -> sp.sp_name = task_kind_name k)
             task_spans)
      in
      Alcotest.(check int)
        (Printf.sprintf "task-span count for %s matches its counter" (task_kind_name k))
        (tasks_of_kind s k) n;
      Alcotest.(check bool)
        (Printf.sprintf "task kind %s exercised" (task_kind_name k))
        true
        (tasks_of_kind s k > 0))
    task_kinds;
  Alcotest.(check bool) "stack high-water mark recorded" true (s.stack_hwm > 1);
  (* A completed sequential run leaves no span open. *)
  Alcotest.(check int) "every span closed" (Obs.Trace.total tracer)
    (Obs.Trace.closed tracer);
  (* [spans] is start-ordered. *)
  let starts = List.map (fun (sp : Obs.Trace.span) -> sp.sp_start) spans in
  Alcotest.(check bool) "spans are start-ordered" true
    (List.sort compare starts = starts)

let suite =
  [
    Alcotest.test_case "golden chain costs vs recursive engine" `Slow test_golden_chain;
    Alcotest.test_case "golden star costs vs recursive engine" `Quick test_golden_star;
    Alcotest.test_case "failed goal answered from memo, zero new tasks" `Quick
      test_failed_goal_cached_no_new_tasks;
    Alcotest.test_case "anytime plans under a step-budget sweep" `Quick
      test_anytime_budget_sweep;
    Alcotest.test_case "paused-and-resumed run matches fresh exhaustive" `Quick
      test_resume_equivalence;
    Alcotest.test_case "resume after completion is a no-op" `Quick
      test_resume_after_complete_is_noop;
    Alcotest.test_case "span tracing matches the task counters" `Quick
      test_trace_spans_and_counters;
  ]
