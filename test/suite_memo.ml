(* Tests of the memo structure: expression deduplication, equivalence
   class merging (union-find), winner tables. Driven through a
   relational model instance. *)

open Relalg

let catalog = Helpers.small_catalog ()

module M = (val Relmodel.Rel_model.make ~catalog ())
module S = Volcano.Search.Make (M)
module Memo = S.Memo

let new_memo () = Memo.create (Volcano.Search_stats.create ())

let get t = Logical.Get t

let join p = Logical.Join p

let test_insert_dedup () =
  let m = new_memo () in
  let g1 = Memo.insert m (get "r") [] in
  let g2 = Memo.insert m (get "r") [] in
  Alcotest.(check int) "same group" g1 g2;
  Alcotest.(check int) "one group" 1 (Memo.n_groups m);
  Alcotest.(check int) "one mexpr" 1 (Memo.n_mexprs m);
  let g3 = Memo.insert m (get "s") [] in
  Alcotest.(check bool) "different table, different group" true (g1 <> g3)

let test_insert_into_target () =
  let m = new_memo () in
  let gr = Memo.insert m (get "r") [] in
  let gs = Memo.insert m (get "s") [] in
  let pred = Expr.(col "r.a" =% col "s.a") in
  let gj = Memo.insert m (join pred) [ gr; gs ] in
  (* The commuted expression belongs to the same class. *)
  let gj' = Memo.insert m ~target:gj (join pred) [ gs; gr ] in
  Alcotest.(check int) "same class" (Memo.find_root m gj) (Memo.find_root m gj');
  Alcotest.(check int) "two join mexprs in class" 2
    (List.length (Memo.mexprs m gj))

let test_merge_via_duplicate_derivation () =
  let m = new_memo () in
  let gr = Memo.insert m (get "r") [] in
  let gs = Memo.insert m (get "s") [] in
  let pred = Expr.(col "r.a" =% col "s.a") in
  (* Derive the same expression in two separate classes, then prove
     them equal by inserting one's expression into the other. *)
  let g1 = Memo.insert m (join pred) [ gr; gs ] in
  let g2 = Memo.insert m (join pred) [ gs; gr ] in
  Alcotest.(check bool) "initially separate" true (Memo.find_root m g1 <> Memo.find_root m g2);
  let merged = Memo.insert m ~target:g2 (join pred) [ gr; gs ] in
  Alcotest.(check int) "merged root" (Memo.find_root m g1) (Memo.find_root m merged);
  Alcotest.(check int) "g2 merged too" (Memo.find_root m g1) (Memo.find_root m g2);
  Alcotest.(check int) "both mexprs survive" 2 (List.length (Memo.mexprs m g1))

let test_merge_reindexes_parents () =
  let m = new_memo () in
  let gr = Memo.insert m (get "r") [] in
  let gs = Memo.insert m (get "s") [] in
  let gt = Memo.insert m (get "t") [] in
  let p1 = Expr.(col "r.a" =% col "s.a") in
  let g1 = Memo.insert m (join p1) [ gr; gs ] in
  let g2 = Memo.insert m (join p1) [ gs; gr ] in
  (* Parents over both classes. *)
  let p2 = Expr.(col "s.c" =% col "t.c") in
  let top1 = Memo.insert m (join p2) [ g1; gt ] in
  let top2 = Memo.insert m (join p2) [ g2; gt ] in
  Alcotest.(check bool) "tops separate" true (Memo.find_root m top1 <> Memo.find_root m top2);
  (* Merging the children must fold the parents too: after g1 = g2,
     JOIN(p2, g1, t) and JOIN(p2, g2, t) spell the same expression. *)
  ignore (Memo.insert m ~target:g2 (join p1) [ gr; gs ]);
  Alcotest.(check int) "parents merged transitively" (Memo.find_root m top1)
    (Memo.find_root m top2)

let test_lprops_derived_once () =
  let m = new_memo () in
  let gr = Memo.insert m (get "r") [] in
  let props = Memo.lprops m gr in
  Alcotest.(check (float 0.)) "card from catalog" 60. props.Logical_props.card;
  let gsel = Memo.insert m (Logical.Select Expr.(col "r.a" =% int 3)) [ gr ] in
  let sprops = Memo.lprops m gsel in
  Alcotest.(check bool) "selection reduces card" true
    (sprops.Logical_props.card < props.Logical_props.card)

let test_winner_table () =
  let m = new_memo () in
  let gr = Memo.insert m (get "r") [] in
  let key = (Phys_prop.any, None) in
  Alcotest.(check bool) "empty at first" true (Memo.winner m gr key = None);
  let plan =
    {
      Memo.p_alg = Physical.Table_scan "r";
      p_rule = "scan";
      p_inputs = [];
      p_props = Phys_prop.any;
      p_cost = Cost.make ~io:1. ~cpu:0.;
    }
  in
  Memo.set_winner m gr key (Some plan) Cost.infinite;
  (match Memo.winner m gr key with
   | Some { w_plan = Some p; _ } ->
     Alcotest.(check bool) "stored plan" true (p.Memo.p_alg = Physical.Table_scan "r")
   | _ -> Alcotest.fail "winner not stored");
  (* Distinct goals are distinct entries. *)
  let key2 = (Phys_prop.sorted (Sort_order.asc [ "r.a" ]), None) in
  Alcotest.(check bool) "other goal empty" true (Memo.winner m gr key2 = None);
  (* The excluding vector is part of the goal identity. *)
  let key3 = (Phys_prop.any, Some (Phys_prop.sorted (Sort_order.asc [ "r.a" ]))) in
  Alcotest.(check bool) "excluded variant empty" true (Memo.winner m gr key3 = None)

let test_in_progress_marks () =
  let m = new_memo () in
  let gr = Memo.insert m (get "r") [] in
  (* In-progress marks are keyed by interned goal id; interning the
     same key twice yields the same id (the memo fast path). *)
  let kid = Memo.intern m (Phys_prop.any, None) in
  Alcotest.(check int) "interning is idempotent" kid
    (Memo.intern m (Phys_prop.any, None));
  Alcotest.(check bool) "not in progress" false (Memo.in_progress m gr kid);
  Memo.mark_in_progress m gr kid;
  Alcotest.(check bool) "marked" true (Memo.in_progress m gr kid);
  Memo.unmark_in_progress m gr kid;
  Alcotest.(check bool) "unmarked" false (Memo.in_progress m gr kid)

let test_extract_any () =
  let m = new_memo () in
  let gr = Memo.insert m (get "r") [] in
  let gsel = Memo.insert m (Logical.Select Expr.(col "r.a" =% int 3)) [ gr ] in
  let tree = Memo.extract_any m gsel in
  Alcotest.(check int) "tree size" 2 (Volcano.Tree.size tree)

(* Property: after a random interleaving of inserts (with and without
   targets), every (op, canonical inputs) key lives in exactly one root
   group, and mexpr counts never exceed distinct insertions. *)
let prop_insert_unique_home =
  let gen =
    QCheck.Gen.(list_size (int_range 1 30) (pair (oneofl [ "r"; "s"; "t" ]) (int_range 0 2)))
  in
  let arb = QCheck.make gen in
  Helpers.qcheck_case ~count:50 "memo: one home per expression" arb (fun actions ->
      let m = new_memo () in
      let groups = ref [] in
      List.iter
        (fun (t, mode) ->
          let g = Memo.insert m (get t) [] in
          groups := g :: !groups;
          match mode, !groups with
          | 0, _ -> ()
          | _, a :: b :: _ when a <> b ->
            (* Join over two existing groups, twice with swapped inputs. *)
            let pred = Expr.true_ in
            let g1 = Memo.insert m (join pred) [ a; b ] in
            ignore (Memo.insert m ~target:g1 (join pred) [ b; a ])
          | _, _ -> ())
        actions;
      (* Re-inserting any already-present expression must return its
         root and create nothing new. *)
      let before = Memo.n_mexprs m in
      List.iter (fun (t, _) -> ignore (Memo.insert m (get t) [])) actions;
      Memo.n_mexprs m = before)

let suite =
  [
    Alcotest.test_case "insert dedup" `Quick test_insert_dedup;
    Alcotest.test_case "insert into target" `Quick test_insert_into_target;
    Alcotest.test_case "merge on duplicate derivation" `Quick test_merge_via_duplicate_derivation;
    Alcotest.test_case "merge reindexes parents" `Quick test_merge_reindexes_parents;
    Alcotest.test_case "logical props derived once" `Quick test_lprops_derived_once;
    Alcotest.test_case "winner table per goal" `Quick test_winner_table;
    Alcotest.test_case "in-progress marks" `Quick test_in_progress_marks;
    Alcotest.test_case "extract_any" `Quick test_extract_any;
    prop_insert_unique_home;
  ]
