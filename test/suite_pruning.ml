(* Tests of guided pruning: group cost lower bounds must never change
   the outcome — only how much work finds it. Every configuration arm
   (no pruning, plain Figure-2, Figure 2 + guided) must produce a
   bit-identical winning plan and cost, sequentially and in parallel;
   the bound itself must sit at or below every winner the search
   records. *)

open Relalg

(* Render a result so that any difference — operator choice, property
   vectors, per-node costs down to the last bit — breaks equality. *)
let render (result : Relmodel.Optimizer.result) =
  match result.plan with
  | None -> "NONE"
  | Some p ->
    Printf.sprintf "%s|%.17g" (Relmodel.Optimizer.explain p) (Cost.total p.cost)

let optimize_arm ?(domains = 1) ~pruning ~guided (q : Workload.query) required =
  let request =
    {
      (Relmodel.Optimizer.request q.catalog) with
      restore_columns = false;
      pruning;
      guided_pruning = guided;
      domains;
    }
  in
  Relmodel.Optimizer.optimize request q.logical ~required

let requireds (q : Workload.query) =
  [
    ("any", Phys_prop.any);
    ("sorted", Phys_prop.sorted (Sort_order.asc [ List.hd q.relations ^ ".jk1" ]));
  ]

(* ------------------------------------------------------------------ *)
(* Goldens: the guided counters actually fire, and never mislead       *)
(* ------------------------------------------------------------------ *)

let test_counters_fire () =
  let q = Workload.generate (Workload.spec ~shape:Workload.Star ~n_relations:4 ~seed:104 ()) in
  let r = optimize_arm ~pruning:true ~guided:true q Phys_prop.any in
  Alcotest.(check bool) "found a plan" true (r.plan <> None);
  Alcotest.(check bool) "goals pruned on lower bounds" true
    (r.stats.goals_pruned_lb > 0);
  Alcotest.(check bool) "input limits tightened" true
    (r.stats.input_limits_tightened > 0);
  Alcotest.(check bool) "memo fast path hit" true (r.stats.memo_fastpath_hits > 0)

let test_counters_inert_without_guided () =
  let q = Workload.generate (Workload.spec ~shape:Workload.Star ~n_relations:4 ~seed:104 ()) in
  List.iter
    (fun (pruning, guided) ->
      let r = optimize_arm ~pruning ~guided q Phys_prop.any in
      Alcotest.(check int) "no lower-bound pruning" 0 r.stats.goals_pruned_lb;
      Alcotest.(check int) "no tightened limits" 0 r.stats.input_limits_tightened)
    [ (false, false); (true, false); (false, true) ]

let test_guided_reduces_tasks () =
  let q = Workload.generate (Workload.spec ~shape:Workload.Star ~n_relations:5 ~seed:105 ()) in
  let f2 = optimize_arm ~pruning:true ~guided:false q Phys_prop.any in
  let guided = optimize_arm ~pruning:true ~guided:true q Phys_prop.any in
  Alcotest.(check string) "same plan" (render f2) (render guided);
  Alcotest.(check bool)
    (Printf.sprintf "fewer tasks (figure2 %d, guided %d)" f2.stats.tasks
       guided.stats.tasks)
    true
    (guided.stats.tasks < f2.stats.tasks)

(* ------------------------------------------------------------------ *)
(* Bound soundness: the cached bound never exceeds a recorded winner   *)
(* ------------------------------------------------------------------ *)

(* Optimize, then sweep the memo: for every goal with a winning plan,
   the model's lower bound for that (group, required) must be <= the
   plan's cost. A violation is exactly the condition under which guided
   pruning could kill the optimum. *)
let test_bound_below_every_winner () =
  List.iter
    (fun (shape, n, seed) ->
      let q = Workload.generate (Workload.spec ~shape ~n_relations:n ~seed ()) in
      let module M = (val Relmodel.Rel_model.make ~catalog:q.catalog ()) in
      let module S = Volcano.Search.Make (M) in
      let s = S.create () in
      List.iter
        (fun (rname, required) ->
          ignore
            (S.optimize s (Relmodel.Rel_model.to_tree q.logical) ~required : S.outcome);
          let checked = ref 0 in
          for g = 0 to S.Memo.n_groups s.S.memo - 1 do
            if S.Memo.find_root s.S.memo g = g then
              List.iter
                (fun (((req, _) : S.Memo.Goal_key.t), (w : S.Memo.winner)) ->
                  match w.S.Memo.w_plan with
                  | None -> ()
                  | Some p ->
                    incr checked;
                    let lb = S.Memo.lower_bound s.S.memo g req in
                    Alcotest.(check bool)
                      (Printf.sprintf "%s n=%d %s group %d: bound %s <= winner %s"
                         (match shape with Workload.Chain -> "chain" | _ -> "star")
                         n rname g (Cost.to_string lb)
                         (Cost.to_string p.S.Memo.p_cost))
                      true
                      (Cost.compare lb p.S.Memo.p_cost <= 0))
                (S.Memo.winners_alist s.S.memo g)
          done;
          Alcotest.(check bool) "some winners checked" true (!checked > 0))
        (requireds q))
    [ (Workload.Chain, 4, 23); (Workload.Star, 4, 104); (Workload.Star, 5, 105) ]

(* ------------------------------------------------------------------ *)
(* Property: every arm agrees, sequentially and at 4 domains          *)
(* ------------------------------------------------------------------ *)

let prop_arms_agree =
  let gen =
    QCheck.Gen.(
      quad (oneofl [ Workload.Chain; Workload.Star ]) (int_range 2 5) (int_range 0 999)
        (oneofl [ false; true ]))
  in
  Helpers.qcheck_case ~count:30 "pruning arms agree on plan and cost"
    (QCheck.make gen) (fun (shape, n, seed, sorted) ->
      let q = Workload.generate (Workload.spec ~shape ~n_relations:n ~seed ()) in
      let required =
        if sorted then Phys_prop.sorted (Sort_order.asc [ List.hd q.relations ^ ".jk1" ])
        else Phys_prop.any
      in
      let base = render (optimize_arm ~pruning:false ~guided:false q required) in
      render (optimize_arm ~pruning:true ~guided:false q required) = base
      && render (optimize_arm ~pruning:true ~guided:true q required) = base)

let prop_guided_parallel_equals_seq =
  let gen =
    QCheck.Gen.(
      triple (oneofl [ Workload.Chain; Workload.Star ]) (int_range 2 5) (int_range 0 999))
  in
  Helpers.qcheck_case ~count:12 "guided pruning bit-identical at 4 domains"
    (QCheck.make gen) (fun (shape, n, seed) ->
      let q = Workload.generate (Workload.spec ~shape ~n_relations:n ~seed ()) in
      render (optimize_arm ~pruning:true ~guided:true q Phys_prop.any)
      = render (optimize_arm ~domains:4 ~pruning:true ~guided:true q Phys_prop.any))

let suite =
  [
    Alcotest.test_case "guided counters fire" `Quick test_counters_fire;
    Alcotest.test_case "counters inert without guided" `Quick
      test_counters_inert_without_guided;
    Alcotest.test_case "guided reduces tasks, keeps the plan" `Quick
      test_guided_reduces_tasks;
    Alcotest.test_case "lower bound below every winner" `Quick
      test_bound_below_every_winner;
    prop_arms_agree;
    prop_guided_parallel_equals_seq;
  ]
