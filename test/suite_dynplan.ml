(* Tests of dynamic plans (the paper's "incompletely specified queries"
   requirement): bucketed preparation, choose-plan dispatch, parameter
   substitution, and execution correctness. *)

open Relalg

(* A scenario with a genuine plan flip: joining a parameterized slice of
   [fact] against [dim]. A tiny slice makes nested loops (or a cheap
   sort) attractive; a large slice favours the hash join. *)
let catalog =
  let c = Catalog.create () in
  ignore
    (Catalog.add_synthetic c ~name:"fact"
       ~columns:
         [ ("k", Catalog.Uniform_int (0, 499)); ("v", Catalog.Uniform_int (0, 9_999)) ]
       ~rows:6_000 ~seed:31 ());
  ignore
    (Catalog.add_synthetic c ~name:"dim"
       ~columns:[ ("k", Catalog.Uniform_int (0, 499)); ("w", Catalog.Uniform_int (0, 99)) ]
       ~rows:3_000 ~seed:32 ());
  c

let template param =
  let open Expr in
  Logical.join
    (col "fact.k" =% col "dim.k")
    (Logical.select (Expr.Cmp (Expr.Le, col "fact.v", Expr.Const param)) (Logical.get "fact"))
    (Logical.get "dim")

let request = Relmodel.Optimizer.request catalog

(* The NL-vs-hash crossover sits at small slice cardinalities, so the
   parameter range focuses there (selectivities from ~0 to ~2%). *)
let prepared =
  Dynplan.prepare ~request template ~range:(0., 200.) ~buckets:10
    ~required:Phys_prop.any ()

let test_buckets_cover_range () =
  let buckets = prepared.Dynplan.buckets in
  Alcotest.(check bool) "at least one bucket" true (List.length buckets >= 1);
  Alcotest.(check (float 1e-9)) "starts at lo" 0. (List.hd buckets).Dynplan.lo;
  Alcotest.(check (float 1e-9)) "ends at hi" 200. (List.nth buckets (List.length buckets - 1)).Dynplan.hi;
  (* Contiguity. *)
  let rec contiguous = function
    | a :: (b :: _ as rest) -> a.Dynplan.hi = b.Dynplan.lo && contiguous rest
    | _ -> true
  in
  Alcotest.(check bool) "contiguous" true (contiguous buckets)

let test_choose_dispatch () =
  List.iter
    (fun v ->
      let b = Dynplan.choose prepared (Value.Int v) in
      Alcotest.(check bool)
        (Printf.sprintf "param %d lands in [%g, %g)" v b.Dynplan.lo b.Dynplan.hi)
        true
        (Float.of_int v >= b.Dynplan.lo -. 1e-9
        && (Float.of_int v <= b.Dynplan.hi +. 1e-9 || b.Dynplan.hi >= 10_000.)))
    [ 0; 1; 77; 120; 199; 200 ]

let test_out_of_range_clamps () =
  let low = Dynplan.choose prepared (Value.Int (-5)) in
  Alcotest.(check (float 1e-9)) "below range -> first bucket" 0. low.Dynplan.lo;
  let high = Dynplan.choose prepared (Value.Int 50_000) in
  Alcotest.(check bool) "above range -> last bucket" true (high.Dynplan.hi >= 200.)

let test_instantiate_substitutes () =
  let b = Dynplan.choose prepared (Value.Int 123) in
  let plan = Dynplan.instantiate b.Dynplan.plan ~witness:b.Dynplan.witness ~actual:(Value.Int 123) in
  let text = Physical.to_string plan in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "actual parameter appears" true (contains text "123");
  Alcotest.(check bool) "witness constant is gone" true
    (not (contains text "0.000244"))

let test_execution_matches_naive () =
  List.iter
    (fun v ->
      let param = Value.Int v in
      let rows, _, _ = Dynplan.execute catalog prepared ~param in
      let expected, _ = Executor.naive catalog (template param) in
      Helpers.check_same_bag (Printf.sprintf "param %d" v) expected rows)
    [ 3; 60; 190 ]

let test_dynamic_no_worse_than_static () =
  (* At every grid point, the dynamic choice (judged by the neutral
     estimator on the instantiated plans) is at most the static plan. *)
  List.iter
    (fun v ->
      let param = Value.Int v in
      let b = Dynplan.choose prepared param in
      let dynamic =
        Relmodel.Plan_cost.estimate catalog
          (Dynplan.instantiate b.Dynplan.plan ~witness:b.Dynplan.witness ~actual:param)
      in
      let static_ =
        Relmodel.Plan_cost.estimate catalog
          (Dynplan.instantiate prepared.Dynplan.static_plan ~witness:100. ~actual:param)
      in
      Alcotest.(check bool)
        (Printf.sprintf "dynamic (%.4f) <= static (%.4f) at %d" (Cost.total dynamic)
           (Cost.total static_) v)
        true
        (Cost.total dynamic <= Cost.total static_ +. 1e-6))
    [ 5; 50; 100; 195 ]

(* Bucket boundaries: parameters exactly on a bucket's [lo] land in
   that bucket; parameters exactly on an interior boundary (one
   bucket's [hi] = the next one's [lo]) land in the following bucket;
   the range's own [hi] lands in the last bucket. *)
let test_exact_boundaries () =
  let buckets = prepared.Dynplan.buckets in
  List.iter
    (fun (b : Dynplan.bucket) ->
      let chosen = Dynplan.choose prepared (Value.Float b.lo) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "param exactly on lo %g stays in its bucket" b.lo)
        b.lo chosen.Dynplan.lo)
    buckets;
  let rec interior = function
    | (a : Dynplan.bucket) :: (b : Dynplan.bucket) :: rest ->
      let chosen = Dynplan.choose prepared (Value.Float a.hi) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "interior boundary %g belongs to the next bucket" a.hi)
        b.lo chosen.Dynplan.lo;
      interior (b :: rest)
    | _ -> ()
  in
  interior buckets;
  let last = List.nth buckets (List.length buckets - 1) in
  let at_hi = Dynplan.choose prepared (Value.Float last.Dynplan.hi) in
  Alcotest.(check (float 1e-9)) "range hi lands in the last bucket" last.Dynplan.lo
    at_hi.Dynplan.lo

let test_outside_prepared_range () =
  let buckets = prepared.Dynplan.buckets in
  let first = List.hd buckets and last = List.nth buckets (List.length buckets - 1) in
  List.iter
    (fun v ->
      let b = Dynplan.choose prepared (Value.Float v) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "%g clamps to the first bucket" v)
        first.Dynplan.lo b.Dynplan.lo)
    [ -1e9; -0.5; -1e-9 ];
  List.iter
    (fun v ->
      let b = Dynplan.choose prepared (Value.Float v) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "%g clamps to the last bucket" v)
        last.Dynplan.lo b.Dynplan.lo)
    [ 200.000001; 5_000.; 1e12 ];
  (* Non-numeric parameters also resolve (to some bucket) rather than
     raising: choose is total. *)
  let b = Dynplan.choose prepared (Value.Str "not-a-number") in
  Alcotest.(check bool) "non-numeric parameter still dispatches" true
    (List.exists (fun (x : Dynplan.bucket) -> x.lo = b.Dynplan.lo) buckets)

let test_plan_actually_flips () =
  (* The scenario must exercise the machinery: more than one distinct
     plan across the parameter range. *)
  Alcotest.(check bool) "multiple plans kept" true (Dynplan.n_distinct_plans prepared >= 2)

let suite =
  [
    Alcotest.test_case "buckets cover the range" `Quick test_buckets_cover_range;
    Alcotest.test_case "choose dispatch" `Quick test_choose_dispatch;
    Alcotest.test_case "out-of-range clamps" `Quick test_out_of_range_clamps;
    Alcotest.test_case "exact bucket boundaries" `Quick test_exact_boundaries;
    Alcotest.test_case "outside the prepared range" `Quick test_outside_prepared_range;
    Alcotest.test_case "instantiation substitutes" `Quick test_instantiate_substitutes;
    Alcotest.test_case "execution matches naive" `Quick test_execution_matches_naive;
    Alcotest.test_case "dynamic <= static" `Quick test_dynamic_no_worse_than_static;
    Alcotest.test_case "plan flips across range" `Quick test_plan_actually_flips;
  ]

(* Property: for random ranges and bucket counts, buckets are contiguous,
   cover the range, and every in-range parameter lands in the bucket
   containing it. *)
let prop_bucket_laws =
  let gen =
    QCheck.Gen.(
      let* lo = float_range 0. 100.
      and* width = float_range 50. 400.
      and* buckets = int_range 1 12
      and* probe = float_range 0. 1. in
      return (lo, lo +. width, buckets, probe))
  in
  Helpers.qcheck_case ~count:20 "dynplan bucket laws" (QCheck.make gen)
    (fun (lo, hi, buckets, probe) ->
      let p = Dynplan.prepare ~request template ~range:(lo, hi) ~buckets ~required:Phys_prop.any () in
      let bs = p.Dynplan.buckets in
      let contiguous =
        let rec go = function
          | a :: (b :: _ as rest) ->
            Float.abs (a.Dynplan.hi -. b.Dynplan.lo) < 1e-9 && go rest
          | _ -> true
        in
        go bs
      in
      let covers =
        Float.abs ((List.hd bs).Dynplan.lo -. lo) < 1e-9
        && Float.abs ((List.nth bs (List.length bs - 1)).Dynplan.hi -. hi) < 1e-9
      in
      let v = lo +. (probe *. (hi -. lo)) in
      let b = Dynplan.choose p (Value.Float v) in
      let landed = v >= b.Dynplan.lo -. 1e-9 && (v <= b.Dynplan.hi +. 1e-9 || b.Dynplan.hi >= hi) in
      contiguous && covers && landed)

(* Property: [choose] is total over the prepared interval — every
   parameter in [lo, hi] (including both endpoints) dispatches without
   raising to a bucket that covers it. *)
let prop_choose_total =
  let gen = QCheck.Gen.float_range 0. 1. in
  Helpers.qcheck_case ~count:200 "choose is total over the prepared interval"
    (QCheck.make gen)
    (fun frac ->
      let v = 0. +. (frac *. 200.) in
      let b = Dynplan.choose prepared (Value.Float v) in
      let last =
        List.nth prepared.Dynplan.buckets (List.length prepared.Dynplan.buckets - 1)
      in
      v >= b.Dynplan.lo -. 1e-9
      && (v <= b.Dynplan.hi +. 1e-9 || b.Dynplan.lo = last.Dynplan.lo))

let suite = suite @ [ prop_bucket_laws; prop_choose_total ]
