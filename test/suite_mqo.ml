(* Tests of multi-query optimization: per-subtree fingerprints, the
   sharing-off bit-identity guarantee, Volcano-SH / Volcano-RU
   improvement and no-regression, counters, and the overlapping-batch
   workload generator. *)

open Relalg
module Optimizer = Relmodel.Optimizer

let overlapping ?(count = 5) ?(core_relations = 2) ?(n_relations = 5) ?(seed = 11)
    ~sharing () =
  Workload.generate_overlapping
    (Workload.spec ~n_relations ~seed ())
    ~count ~core_relations ~sharing ()

let pairs_of (b : Workload.batch) = List.map (fun q -> (q, Phys_prop.any)) b.queries

let cost17 c = Printf.sprintf "%.17g" (Cost.total c)

(* ---------- per-subtree fingerprints ---------- *)

(* Equal subtree keys iff equal canonical forms — over every pair of
   subtrees drawn from two independently generated workload queries
   (commuted joins, flipped predicates, and genuinely distinct subtrees
   all arise). *)
let test_subtree_keys_iff_canonical =
  let gen =
    QCheck.Gen.(
      triple
        (oneofl [ Workload.Chain; Workload.Star; Workload.Random_acyclic ])
        (int_range 2 5) (int_range 0 1_000))
  in
  Helpers.qcheck_case ~count:40 "subtree keys iff canonical forms equal"
    (QCheck.make gen) (fun (shape, n, seed) ->
      let q1 = (Workload.generate (Workload.spec ~shape ~n_relations:n ~seed ())).logical in
      let q2 =
        (Workload.generate (Workload.spec ~shape ~n_relations:n ~seed:(seed + 1) ()))
          .logical
      in
      let subs = Plansrv.Fingerprint.subtrees q1 @ Plansrv.Fingerprint.subtrees q2 in
      List.for_all
        (fun (k1, e1) ->
          List.for_all
            (fun (k2, e2) -> String.equal k1 k2 = Logical.equal e1 e2)
            subs)
        subs)

let test_subtrees_detect_embedded_core () =
  (* The whole point: a core embedded under different private joins
     fingerprints identically to the standalone core. *)
  let b = overlapping ~sharing:1.0 () in
  let core = Option.get b.core in
  let core_key = Plansrv.Fingerprint.expr_key core in
  List.iter
    (fun q ->
      let keys = List.map fst (Plansrv.Fingerprint.subtrees q) in
      Alcotest.(check bool) "core key found in query subtrees" true
        (List.mem core_key keys))
    b.queries

let test_subtrees_postorder_root_last () =
  let q = (overlapping ~sharing:0.0 ()).queries |> List.hd in
  let subs = Plansrv.Fingerprint.subtrees q in
  let root_key = Plansrv.Fingerprint.expr_key q in
  match List.rev subs with
  | (last_key, _) :: _ ->
    Alcotest.(check string) "root subtree is last (post-order)" root_key last_key
  | [] -> Alcotest.fail "no subtrees"

(* ---------- sharing off: bit-identical to independent runs ---------- *)

let test_off_bit_identical_to_independent () =
  List.iter
    (fun domains ->
      let b = overlapping ~count:4 ~sharing:0.5 () in
      let req = { (Optimizer.request b.batch_catalog) with domains } in
      let report = Mqo.optimize_batch ~strategy:Mqo.Off req (pairs_of b) in
      Alcotest.(check int) "no shared groups reported" 0 report.shared_groups;
      Alcotest.(check int) "no materializations" 0 report.materialize_chosen;
      List.iter2
        (fun q (qr : Mqo.query_result) ->
          let ind = Optimizer.optimize req q ~required:Phys_prop.any in
          match ind.plan, qr.plan with
          | Some a, Some b ->
            Alcotest.(check string)
              (Printf.sprintf "identical plan at %d domains" domains)
              (Optimizer.explain a) (Optimizer.explain b);
            Alcotest.(check string)
              (Printf.sprintf "bit-identical cost at %d domains" domains)
              (cost17 a.cost) (cost17 b.cost)
          | _, _ -> Alcotest.fail "missing plan")
        b.queries report.results;
      let sum =
        List.fold_left
          (fun acc (qr : Mqo.query_result) -> acc +. Cost.total qr.final_cost)
          0. report.results
      in
      Alcotest.(check string) "batch total = sum of independent costs"
        (Printf.sprintf "%.17g" report.independent_total)
        (Printf.sprintf "%.17g" sum);
      Alcotest.(check string) "batch total unchanged"
        (Printf.sprintf "%.17g" report.independent_total)
        (Printf.sprintf "%.17g" report.batch_total))
    [ 1; 2; 4 ]

(* ---------- Volcano-SH ---------- *)

let test_sh_improves_on_shared_batch () =
  let b = overlapping ~count:6 ~n_relations:6 ~core_relations:3 ~sharing:0.7 () in
  let req = Optimizer.request b.batch_catalog in
  let r = Mqo.optimize_batch ~strategy:Mqo.Volcano_sh req (pairs_of b) in
  Alcotest.(check bool) "shared groups detected" true (r.shared_groups > 0);
  Alcotest.(check bool) "materialization chosen" true (r.materialize_chosen > 0);
  Alcotest.(check bool) "reuse hits recorded" true (r.reuse_hits > 0);
  Alcotest.(check bool)
    (Printf.sprintf "batch %.6f strictly below independent %.6f" r.batch_total
       r.independent_total)
    true
    (r.batch_total < r.independent_total);
  (* The chosen plans really carry the claimed costs. *)
  let replayed =
    List.fold_left
      (fun acc (qr : Mqo.query_result) ->
        match qr.plan with
        | Some p -> acc +. Cost.total p.Optimizer.cost
        | None -> acc)
      0. r.results
  in
  Alcotest.(check string) "batch total = sum of final plan costs"
    (Printf.sprintf "%.17g" r.batch_total)
    (Printf.sprintf "%.17g" replayed);
  (* Consumers scan the materialized intermediates they reuse. *)
  let reusers =
    List.filter (fun (qr : Mqo.query_result) -> qr.reused <> []) r.results
  in
  Alcotest.(check bool) "some query reads a materialized result" true (reusers <> []);
  List.iter
    (fun (s : Mqo.shared) ->
      if s.chosen then begin
        Alcotest.(check bool) "chosen sharing has consumers" true (s.consumers <> []);
        Alcotest.(check bool) "materialized table registered" true
          (Catalog.mem b.batch_catalog s.mat_name
           && (Catalog.find b.batch_catalog s.mat_name).materialized)
      end)
    r.shared

let test_sh_never_regresses () =
  (* Across seeds and sharing levels (including zero), the SH post-pass
     must never raise the batch cost above independent optimization. *)
  List.iter
    (fun (seed, sharing) ->
      let b = overlapping ~count:4 ~seed ~sharing () in
      let req = Optimizer.request b.batch_catalog in
      let r = Mqo.optimize_batch ~strategy:Mqo.Volcano_sh req (pairs_of b) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d sharing %.1f: %.6f <= %.6f" seed sharing r.batch_total
           r.independent_total)
        true
        (r.batch_total <= r.independent_total))
    [ (1, 0.0); (2, 0.3); (3, 0.7); (4, 1.0); (5, 0.5) ]

(* ---------- Volcano-RU ---------- *)

let test_ru_improves_on_shared_batch () =
  let b = overlapping ~count:6 ~n_relations:6 ~core_relations:3 ~sharing:0.7 () in
  let req = Optimizer.request b.batch_catalog in
  let r = Mqo.optimize_batch ~strategy:Mqo.Volcano_ru req (pairs_of b) in
  Alcotest.(check bool) "shared groups detected" true (r.shared_groups > 0);
  Alcotest.(check bool) "materialization chosen" true (r.materialize_chosen > 0);
  Alcotest.(check bool) "reuse hits recorded" true (r.reuse_hits > 0);
  Alcotest.(check bool)
    (Printf.sprintf "batch %.6f strictly below independent %.6f" r.batch_total
       r.independent_total)
    true
    (r.batch_total < r.independent_total);
  (* Every chosen materialization pays for itself: summed consumer gains
     exceed compute + write. *)
  List.iter
    (fun (s : Mqo.shared) ->
      if s.chosen then begin
        Alcotest.(check bool) "chosen sharing has consumers" true (s.consumers <> []);
        Alcotest.(check bool) "producer plan recorded" true (s.producer_plan <> None)
      end)
    r.shared;
  (* The first query arrives before any candidate exists, so it keeps
     its independent plan. *)
  (match r.results with
   | first :: _ ->
     Alcotest.(check string) "first query keeps its independent cost"
       (cost17 first.independent_cost) (cost17 first.final_cost)
   | [] -> Alcotest.fail "no results")

let test_ru_never_regresses () =
  List.iter
    (fun (seed, sharing) ->
      let b = overlapping ~count:4 ~seed ~sharing () in
      let req = Optimizer.request b.batch_catalog in
      let r = Mqo.optimize_batch ~strategy:Mqo.Volcano_ru req (pairs_of b) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d sharing %.1f: %.6f <= %.6f" seed sharing r.batch_total
           r.independent_total)
        true
        (r.batch_total <= r.independent_total);
      (* Rejected materializations are cleaned out of the catalog. *)
      List.iter
        (fun (s : Mqo.shared) ->
          if not s.chosen then
            Alcotest.(check bool)
              (Printf.sprintf "rejected %s removed from catalog" s.mat_name)
              false
              (s.mat_name <> "" && Catalog.mem b.batch_catalog s.mat_name))
        r.shared)
    [ (1, 0.0); (2, 0.3); (3, 0.7); (4, 1.0); (5, 0.5) ]

(* ---------- counters ---------- *)

let test_report_counters_in_stats () =
  let b = overlapping ~count:6 ~n_relations:6 ~core_relations:3 ~sharing:0.7 () in
  let req = Optimizer.request b.batch_catalog in
  List.iter
    (fun strategy ->
      let r = Mqo.optimize_batch ~strategy req (pairs_of b) in
      Alcotest.(check int) "stats mirror shared_groups" r.shared_groups
        r.stats.Volcano.Search_stats.mqo_shared_groups;
      Alcotest.(check int) "stats mirror materialize_chosen" r.materialize_chosen
        r.stats.Volcano.Search_stats.mqo_materialize_chosen;
      Alcotest.(check int) "stats mirror reuse_hits" r.reuse_hits
        r.stats.Volcano.Search_stats.mqo_reuse_hits)
    [ Mqo.Off; Mqo.Volcano_sh; Mqo.Volcano_ru ]

let test_counters_through_stats_ops () =
  let a = Volcano.Search_stats.create () in
  a.Volcano.Search_stats.mqo_shared_groups <- 3;
  a.Volcano.Search_stats.mqo_materialize_chosen <- 2;
  a.Volcano.Search_stats.mqo_reuse_hits <- 5;
  let c = Volcano.Search_stats.copy a in
  Alcotest.(check int) "copy keeps mqo counters" 5 c.Volcano.Search_stats.mqo_reuse_hits;
  let b = Volcano.Search_stats.create () in
  b.Volcano.Search_stats.mqo_shared_groups <- 1;
  Volcano.Search_stats.merge ~into:b a;
  Alcotest.(check int) "merge sums" 4 b.Volcano.Search_stats.mqo_shared_groups;
  let d = Volcano.Search_stats.diff ~since:a b in
  Alcotest.(check int) "diff subtracts" 1 d.Volcano.Search_stats.mqo_shared_groups;
  Alcotest.(check bool) "metric names expose mqo counters" true
    (List.mem "volcano_search_mqo_reuse_hits"
       (Volcano.Search_stats.metric_names "volcano_search_"));
  let rendered = Format.asprintf "%a" Volcano.Search_stats.pp a in
  Alcotest.(check bool) "pp renders mqo counters" true
    (Helpers.contains rendered "mqo-reuse=5")

(* ---------- plan service batch entry point ---------- *)

let test_serve_batch_off_matches_cache () =
  let b = overlapping ~count:4 ~sharing:0.5 () in
  let request = Optimizer.request b.batch_catalog in
  let srv = Plansrv.create (Plansrv.config ~capacity:64 ~shards:2 request) in
  let w = Plansrv.worker srv in
  let report, responses = Mqo.serve_batch ~strategy:Mqo.Off srv w (pairs_of b) in
  Alcotest.(check int) "one response per query" (List.length b.queries)
    (List.length responses);
  List.iter2
    (fun (qr : Mqo.query_result) (resp : Plansrv.response) ->
      match qr.plan, resp.Plansrv.plan with
      | Some a, Some b ->
        Alcotest.(check string) "batch plan = served plan" (Optimizer.explain b)
          (Optimizer.explain a)
      | _, _ -> Alcotest.fail "missing plan")
    report.results responses;
  (* A second pass is answered warm. *)
  let _, responses2 = Mqo.serve_batch ~strategy:Mqo.Off srv w (pairs_of b) in
  List.iter
    (fun (resp : Plansrv.response) ->
      match resp.Plansrv.outcome with
      | Plansrv.Hit -> ()
      | _ -> Alcotest.fail "expected warm hit on second batch")
    responses2

let test_serve_batch_merges_mqo_counters () =
  let b = overlapping ~count:6 ~n_relations:6 ~core_relations:3 ~sharing:0.7 () in
  let request = Optimizer.request b.batch_catalog in
  let srv = Plansrv.create (Plansrv.config ~capacity:64 ~shards:2 request) in
  let w = Plansrv.worker srv in
  let report, _ = Mqo.serve_batch ~strategy:Mqo.Volcano_sh srv w (pairs_of b) in
  Alcotest.(check bool) "strategy found sharing" true (report.shared_groups > 0);
  let m = Plansrv.metrics srv in
  Alcotest.(check int) "service exports mqo_shared_groups" report.shared_groups
    m.Plansrv.search.Volcano.Search_stats.mqo_shared_groups;
  Alcotest.(check int) "service exports mqo_materialize_chosen" report.materialize_chosen
    m.Plansrv.search.Volcano.Search_stats.mqo_materialize_chosen;
  Alcotest.(check int) "service exports mqo_reuse_hits" report.reuse_hits
    m.Plansrv.search.Volcano.Search_stats.mqo_reuse_hits

(* ---------- overlapping-batch generator ---------- *)

let test_overlapping_validation () =
  let spec = Workload.spec ~n_relations:4 ~seed:1 () in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "count 0 rejected" true (raises (fun () ->
      Workload.generate_overlapping spec ~count:0 ~sharing:0.5 ()));
  Alcotest.(check bool) "sharing -0.1 rejected" true (raises (fun () ->
      Workload.generate_overlapping spec ~count:3 ~sharing:(-0.1) ()));
  Alcotest.(check bool) "sharing 1.5 rejected" true (raises (fun () ->
      Workload.generate_overlapping spec ~count:3 ~sharing:1.5 ()));
  Alcotest.(check bool) "core_relations >= n rejected" true (raises (fun () ->
      Workload.generate_overlapping spec ~count:3 ~core_relations:4 ~sharing:0.5 ()))

let test_overlapping_sharing_levels () =
  let b0 = overlapping ~count:6 ~sharing:0.0 () in
  Alcotest.(check bool) "sharing 0: no core" true (b0.core = None);
  let b1 = overlapping ~count:6 ~sharing:1.0 () in
  let core_key = Plansrv.Fingerprint.expr_key (Option.get b1.core) in
  let embeds q =
    List.exists (fun (k, _) -> String.equal k core_key) (Plansrv.Fingerprint.subtrees q)
  in
  Alcotest.(check int) "sharing 1: all queries embed the core" 6
    (List.length (List.filter embeds b1.queries));
  let bh = overlapping ~count:6 ~sharing:0.5 () in
  let core_key = Plansrv.Fingerprint.expr_key (Option.get bh.core) in
  let embeds q =
    List.exists (fun (k, _) -> String.equal k core_key) (Plansrv.Fingerprint.subtrees q)
  in
  Alcotest.(check int) "sharing 0.5: half the queries embed the core" 3
    (List.length (List.filter embeds bh.queries));
  (* One shared catalog; every query optimizable against it. *)
  let req = Optimizer.request bh.batch_catalog in
  List.iter
    (fun q ->
      let r = Optimizer.optimize req q ~required:Phys_prop.any in
      Alcotest.(check bool) "query optimizable" true (r.plan <> None))
    bh.queries

let test_overlapping_reproducible () =
  let b1 = overlapping ~count:5 ~sharing:0.6 () in
  let b2 = overlapping ~count:5 ~sharing:0.6 () in
  List.iter2
    (fun q1 q2 ->
      Alcotest.(check bool) "same queries across runs" true (Logical.equal q1 q2))
    b1.queries b2.queries

let suite =
  [
    test_subtree_keys_iff_canonical;
    Alcotest.test_case "core detected in embeddings" `Quick
      test_subtrees_detect_embedded_core;
    Alcotest.test_case "subtrees post-order" `Quick test_subtrees_postorder_root_last;
    Alcotest.test_case "off bit-identical (1/2/4 domains)" `Quick
      test_off_bit_identical_to_independent;
    Alcotest.test_case "volcano-sh improves shared batch" `Quick
      test_sh_improves_on_shared_batch;
    Alcotest.test_case "volcano-sh never regresses" `Quick test_sh_never_regresses;
    Alcotest.test_case "volcano-ru improves shared batch" `Quick
      test_ru_improves_on_shared_batch;
    Alcotest.test_case "volcano-ru never regresses" `Quick test_ru_never_regresses;
    Alcotest.test_case "report counters in stats" `Quick test_report_counters_in_stats;
    Alcotest.test_case "counters through stats ops" `Quick
      test_counters_through_stats_ops;
    Alcotest.test_case "serve_batch off = cached serving" `Quick
      test_serve_batch_off_matches_cache;
    Alcotest.test_case "serve_batch merges counters" `Quick
      test_serve_batch_merges_mqo_counters;
    Alcotest.test_case "generator validation" `Quick test_overlapping_validation;
    Alcotest.test_case "generator sharing levels" `Quick test_overlapping_sharing_levels;
    Alcotest.test_case "generator reproducible" `Quick test_overlapping_reproducible;
  ]
