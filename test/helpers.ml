(* Shared fixtures for the test suites. *)

open Relalg

let small_catalog () =
  let catalog = Catalog.create () in
  let add name rows seed columns =
    ignore (Catalog.add_synthetic catalog ~name ~columns ~rows ~seed ())
  in
  add "r" 60 1
    [ ("id", Catalog.Serial); ("a", Catalog.Uniform_int (0, 9)); ("b", Catalog.Uniform_int (0, 4)) ];
  add "s" 40 2
    [ ("id", Catalog.Serial); ("a", Catalog.Uniform_int (0, 9)); ("c", Catalog.Uniform_int (0, 19)) ];
  add "t" 25 3 [ ("id", Catalog.Serial); ("c", Catalog.Uniform_int (0, 19)) ];
  catalog

(* Multiset equality of tuple arrays, ignoring order. *)
let same_bag (a : Tuple.t array) (b : Tuple.t array) =
  let key t = List.map Value.to_string (Array.to_list t) in
  let sorted arr = List.sort compare (List.map key (Array.to_list arr)) in
  sorted a = sorted b

let check_same_bag msg a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s (|a|=%d |b|=%d)" msg (Array.length a) (Array.length b))
    true (same_bag a b)

(* Optimize a logical query against a catalog and return the plan,
   failing the test when optimization fails. *)
let optimize_plan ?(required = Phys_prop.any) ?request catalog query =
  let req = match request with Some r -> r | None -> Relmodel.Optimizer.request catalog in
  let result = Relmodel.Optimizer.optimize req query ~required in
  match result.plan with
  | Some p -> p
  | None -> Alcotest.fail "optimizer returned no plan"

(* End-to-end: optimized execution must agree with the naive oracle. *)
let check_optimized_matches_naive ?(required = Phys_prop.any) catalog query =
  let plan = optimize_plan ~required catalog query in
  let expected, _ = Executor.naive catalog query in
  let actual, _, _ = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
  check_same_bag "optimized result = naive result" expected actual;
  plan

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0
