(* Tests of the plan-space scale-up machinery: dynamic promise
   ordering (must never change the found plan, only the order moves
   are pursued in) and the anytime budget ladder. *)

open Relalg

(* Render a result so "bit-identical" means operators, properties, and
   per-node costs down to the last bit. *)
let render (result : Relmodel.Optimizer.result) =
  match result.plan with
  | None -> "NONE"
  | Some p ->
    Printf.sprintf "%s|%.17g" (Relmodel.Optimizer.explain p) (Cost.total p.cost)

let optimize_arm q ~required ~promise ~guided ~domains =
  let request =
    {
      (Relmodel.Optimizer.request q.Workload.catalog) with
      restore_columns = false;
      guided_pruning = guided;
      promise;
      domains;
    }
  in
  Relmodel.Optimizer.optimize request q.Workload.logical ~required

(* The tentpole invariant: under unbounded budgets the static and
   dynamic promise orders find bit-identical plans — dynamic ordering
   may only change how fast the winner is reached, never which plan
   wins (the cost-tie-break in [consider] keys on the static rank both
   arms compute). Exercised across random topologies, skew,
   correlation, both pruning arms, and 1/2/4 domains. *)
let qcheck_static_dynamic_identical =
  let gen =
    QCheck.Gen.(
      let* n = int_range 3 5 in
      let* shape = oneofl Workload.all_shapes in
      let* seed = int_range 0 10_000 in
      let* skew = oneofl [ 0.; 0.5; 1. ] in
      let* correlation = oneofl [ None; Some 0.; Some 0.8; Some 1. ] in
      let* sorted = bool in
      return (n, shape, seed, skew, correlation, sorted))
  in
  let print (n, shape, seed, skew, correlation, sorted) =
    Printf.sprintf "n=%d shape=%s seed=%d skew=%g corr=%s sorted=%b" n
      (Workload.shape_name shape) seed skew
      (match correlation with None -> "-" | Some c -> string_of_float c)
      sorted
  in
  Helpers.qcheck_case ~count:12 "static and dynamic promise find identical plans"
    (QCheck.make ~print gen)
    (fun (n, shape, seed, skew, correlation, sorted) ->
      let q =
        Workload.generate
          (Workload.spec ~shape ~skew ?correlation ~n_relations:n ~seed ())
      in
      let required =
        if sorted then Phys_prop.sorted (Sort_order.asc [ List.hd q.relations ^ ".jk1" ])
        else Phys_prop.any
      in
      let reference =
        render (optimize_arm q ~required ~promise:Volcano.Search.Static ~guided:true
                  ~domains:1)
      in
      List.for_all
        (fun (promise, guided, domains) ->
          render (optimize_arm q ~required ~promise ~guided ~domains) = reference)
        [
          (Volcano.Search.Dynamic, true, 1);
          (Volcano.Search.Static, false, 1);
          (Volcano.Search.Dynamic, false, 1);
          (Volcano.Search.Dynamic, true, 2);
          (Volcano.Search.Dynamic, true, 4);
        ])

let anytime_of q ~promise ~budgets =
  let request =
    {
      (Relmodel.Optimizer.request q.Workload.catalog) with
      restore_columns = false;
      promise;
    }
  in
  Relmodel.Optimizer.optimize_anytime request ~budgets q.Workload.logical
    ~required:Phys_prop.any

(* Anytime monotonicity: along the budget ladder, best-so-far never
   appears and then disappears, never gets worse, tasks never run
   backwards, and completeness is absorbing with a stable final cost. *)
let test_anytime_monotone () =
  let q =
    Workload.generate
      (Workload.spec ~shape:Workload.Cycle ~skew:0.7 ~correlation:0.85
         ~n_relations:7 ~seed:21 ())
  in
  List.iter
    (fun promise ->
      let a =
        anytime_of q ~promise
          ~budgets:[ 100; 500; 2_000; 10_000; 50_000; 1_000_000_000 ]
      in
      Alcotest.(check int) "one point per budget" 6 (List.length a.an_points);
      let rec walk (prev : Relmodel.Optimizer.anytime_point option) = function
        | [] -> ()
        | (p : Relmodel.Optimizer.anytime_point) :: rest ->
          (match prev with
           | None -> ()
           | Some pr ->
             Alcotest.(check bool) "budgets ascend" true (p.at_budget > pr.at_budget);
             Alcotest.(check bool) "tasks never run backwards" true
               (p.at_tasks >= pr.at_tasks);
             (match (pr.at_cost, p.at_cost) with
              | Some c0, Some c1 ->
                Alcotest.(check bool) "best-so-far never worsens" true
                  (Cost.total c1 <= Cost.total c0)
              | Some _, None -> Alcotest.fail "best-so-far disappeared"
              | None, _ -> ());
             if pr.at_complete then begin
               Alcotest.(check bool) "completeness is absorbing" true p.at_complete;
               match (pr.at_cost, p.at_cost) with
               | Some c0, Some c1 ->
                 Alcotest.(check (float 0.)) "final cost stable" (Cost.total c0)
                   (Cost.total c1)
               | _ -> Alcotest.fail "complete rung without a plan"
             end);
          walk (Some p) rest
      in
      walk None a.an_points;
      let last = List.nth a.an_points (List.length a.an_points - 1) in
      Alcotest.(check bool) "unbounded rung completes" true last.at_complete;
      (* The incumbent log: tasks ascend, costs strictly improve, and
         the last incumbent is the final plan's cost. *)
      let rec check_incumbents = function
        | (t0, c0) :: ((t1, c1) :: _ as rest) ->
          Alcotest.(check bool) "incumbent tasks ascend" true (t1 >= t0);
          Alcotest.(check bool) "incumbent costs strictly improve" true
            (Cost.total c1 < Cost.total c0);
          check_incumbents rest
        | _ -> ()
      in
      check_incumbents a.an_incumbents;
      match (a.an_result.plan, List.rev a.an_incumbents) with
      | Some p, (_, c) :: _ ->
        Alcotest.(check (float 0.)) "last incumbent is the final cost"
          (Cost.total p.cost) (Cost.total c)
      | Some _, [] -> Alcotest.fail "plan found but no incumbent recorded"
      | None, _ -> Alcotest.fail "no plan on the unbounded rung")
    [ Volcano.Search.Static; Volcano.Search.Dynamic ]

(* The ladder's final state must agree with a plain one-shot
   optimization of the same request. *)
let test_anytime_matches_one_shot () =
  let q =
    Workload.generate
      (Workload.spec ~shape:Workload.Clique ~skew:0.5 ~n_relations:5 ~seed:33 ())
  in
  let a = anytime_of q ~promise:Volcano.Search.Dynamic ~budgets:[ 1_000_000_000 ] in
  let one_shot =
    optimize_arm q ~required:Phys_prop.any ~promise:Volcano.Search.Dynamic
      ~guided:true ~domains:1
  in
  Alcotest.(check bool) "both complete" true (a.an_result.complete && one_shot.complete);
  Alcotest.(check string) "identical plan" (render one_shot) (render a.an_result)

(* The new effort counters only move when their feature is on. *)
let test_promise_counters () =
  let q =
    Workload.generate
      (Workload.spec ~shape:Workload.Star ~n_relations:5 ~seed:44 ())
  in
  let stat promise =
    (optimize_arm q ~required:Phys_prop.any ~promise ~guided:true ~domains:1).stats
  in
  let st = stat Volcano.Search.Static in
  Alcotest.(check int) "static: no promise evals" 0 st.promise_evals;
  Alcotest.(check int) "static: no reorders" 0 st.moves_reordered;
  let dy = stat Volcano.Search.Dynamic in
  Alcotest.(check bool) "dynamic: promise evaluated" true (dy.promise_evals > 0);
  Alcotest.(check bool) "dynamic: anytime improvements tracked" true
    (dy.anytime_improvements >= 0)

let suite =
  [
    qcheck_static_dynamic_identical;
    Alcotest.test_case "anytime monotone" `Quick test_anytime_monotone;
    Alcotest.test_case "anytime matches one-shot" `Quick test_anytime_matches_one_shot;
    Alcotest.test_case "promise counters" `Quick test_promise_counters;
  ]
