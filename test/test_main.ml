let () =
  Alcotest.run "volcano_opt"
    [
      ("value", Suite_value.suite);
      ("schema", Suite_schema.suite);
      ("expr", Suite_expr.suite);
      ("sort_order", Suite_sort_order.suite);
      ("stats", Suite_stats.suite);
      ("volcano", Suite_volcano.suite);
      ("memo", Suite_memo.suite);
      ("search", Suite_search.suite);
      ("engine", Suite_engine.suite);
      ("relmodel", Suite_relmodel.suite);
      ("executor", Suite_executor.suite);
      ("access_paths", Suite_access_paths.suite);
      ("parallel", Suite_parallel.suite);
      ("parsearch", Suite_parsearch.suite);
      ("pruning", Suite_pruning.suite);
      ("dynplan", Suite_dynplan.suite);
      ("session", Suite_session.suite);
      ("plansrv", Suite_plansrv.suite);
      ("exodus", Suite_exodus.suite);
      ("sql", Suite_sql.suite);
      ("workload", Suite_workload.suite);
      ("scaleup", Suite_scaleup.suite);
      ("mqo", Suite_mqo.suite);
      ("oomodel", Suite_oomodel.suite);
      ("obs", Suite_obs.suite);
      ("feedback", Suite_feedback.suite);
      ("e2e", Suite_e2e.suite);
    ]
