(* Tests of optimizer sessions: one memo living across queries
   ("longer-lived partial results", paper §3). *)

open Relalg

let catalog = Helpers.small_catalog ()

let request = { (Relmodel.Optimizer.request catalog) with restore_columns = false }

let join_rs =
  Expr.(Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s"))

let join_rst =
  Expr.(Logical.join (col "s.c" =% col "t.c") join_rs (Logical.get "t"))

let test_session_matches_fresh () =
  let s = Relmodel.Optimizer.session request in
  List.iter
    (fun q ->
      let fresh = Relmodel.Optimizer.optimize request q ~required:Phys_prop.any in
      let shared = Relmodel.Optimizer.optimize_in s q ~required:Phys_prop.any in
      match fresh.plan, shared.plan with
      | Some f, Some sh ->
        Alcotest.(check (float 1e-9)) "same optimal cost" (Cost.total f.cost)
          (Cost.total sh.cost)
      | _, _ -> Alcotest.fail "missing plan")
    [ Logical.get "r"; join_rs; join_rst ]

let test_session_reuses_memo () =
  let s = Relmodel.Optimizer.session request in
  let first = Relmodel.Optimizer.optimize_in s join_rst ~required:Phys_prop.any in
  let goals_after_first = first.stats.goals in
  (* The subquery was fully explored as part of the larger query: its
     optimization should be answered (almost) entirely from the memo. *)
  let second = Relmodel.Optimizer.optimize_in s join_rs ~required:Phys_prop.any in
  let new_goals = second.stats.goals - goals_after_first in
  (* Only the subquery's own top-level goal (its property vector was
     never requested at the root before) needs work; everything below
     is answered from the winner tables — up to a goal or two that the
     first run concluded as a failure under a branch-and-bound limit
     tighter than the second run's (dynamic promise ordering reaches
     tight limits early, so such entries are more common; the paper's
     "increasingly generous cost limits" re-optimization covers them). *)
  Alcotest.(check bool)
    (Printf.sprintf "subquery nearly free (%d new goals)" new_goals)
    true
    (new_goals <= 3);
  Alcotest.(check bool) "and still yields a plan" true (second.plan <> None)

let test_session_new_requirements_extend () =
  let s = Relmodel.Optimizer.session request in
  ignore (Relmodel.Optimizer.optimize_in s join_rs ~required:Phys_prop.any);
  (* A stronger requirement on the same expression needs new goals but
     must still succeed. *)
  let ordered =
    Relmodel.Optimizer.optimize_in s join_rs
      ~required:(Phys_prop.sorted (Sort_order.asc [ "r.a" ]))
  in
  match ordered.plan with
  | Some p ->
    Alcotest.(check bool) "ordered plan found in session" true
      (Phys_prop.covers ~provided:p.props
         ~required:(Phys_prop.sorted (Sort_order.asc [ "r.a" ])))
  | None -> Alcotest.fail "no ordered plan"

let test_session_results_correct () =
  let s = Relmodel.Optimizer.session request in
  ignore (Relmodel.Optimizer.optimize_in s join_rst ~required:Phys_prop.any);
  match (Relmodel.Optimizer.optimize_in s join_rs ~required:Phys_prop.any).plan with
  | None -> Alcotest.fail "no plan"
  | Some p ->
    let actual, _, _ = Executor.run catalog (Relmodel.Optimizer.to_physical p) in
    let expected, _ = Executor.naive catalog join_rs in
    (* Column order may differ (bare plans); compare canonically. *)
    let canon (arr : Tuple.t array) =
      Array.to_list arr
      |> List.map (fun t -> List.sort compare (List.map Value.to_string (Array.to_list t)))
      |> List.sort compare
    in
    Alcotest.(check bool) "session plan computes the right rows" true
      (canon actual = canon expected)

let suite =
  [
    Alcotest.test_case "session matches fresh optima" `Quick test_session_matches_fresh;
    Alcotest.test_case "session reuses the memo" `Quick test_session_reuses_memo;
    Alcotest.test_case "new requirements extend" `Quick test_session_new_requirements_extend;
    Alcotest.test_case "session results correct" `Quick test_session_results_correct;
  ]
