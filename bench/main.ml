(* Benchmark harness regenerating the paper's evaluation (Figure 4) and
   the ablations A1-A10 of DESIGN.md.

     dune exec bench/main.exe            -- every experiment
     dune exec bench/main.exe -- f4      -- just Figure 4
     dune exec bench/main.exe -- a1..a10 -- one ablation
     dune exec bench/main.exe -- plansrv -- plan-cache service (BENCH_plansrv.json)
     dune exec bench/main.exe -- parsearch -- intra-query parallel search (BENCH_parsearch.json)
     dune exec bench/main.exe -- pruning -- guided-pruning ablation (BENCH_pruning.json)
     dune exec bench/main.exe -- pruning smoke -- CI mode: small sizes, nonzero exit on failure
     dune exec bench/main.exe -- obs     -- observability overhead (BENCH_obs.json)
     dune exec bench/main.exe -- obs smoke -- CI mode: nonzero exit on divergence or parity break
     dune exec bench/main.exe -- mqo     -- multi-query optimization (BENCH_mqo.json)
     dune exec bench/main.exe -- mqo smoke -- CI mode: nonzero exit if sharing-off diverges
                                              or a materialization raises the batch cost
     dune exec bench/main.exe -- feedback -- runtime cardinality feedback (BENCH_feedback.json)
     dune exec bench/main.exe -- feedback smoke -- CI mode: nonzero exit if a skewed arm
                                              fails to recover or feedback perturbs results
     dune exec bench/main.exe -- micro   -- Bechamel micro-benchmarks
     dune exec bench/main.exe -- full    -- paper-sized query counts everywhere

   Absolute times are machine-dependent (the paper used a ~12 MIPS
   SparcStation-1); shapes, ratios, and crossovers are what EXPERIMENTS.md
   compares. *)

open Relalg

let seed_base = 20260708

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. Float.of_int (List.length xs)

let geomean = function
  | [] -> nan
  | xs -> exp (mean (List.map log xs))

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let volcano_optimize ?(flags = Relmodel.Rel_model.default_flags) ?(pruning = true)
    ?max_moves (q : Workload.query) ~required =
  let request =
    {
      (Relmodel.Optimizer.request q.catalog) with
      flags;
      pruning;
      max_moves;
      (* Plans are compared bare: no cosmetic column-restoring projection. *)
      restore_columns = false;
    }
  in
  Relmodel.Optimizer.optimize request q.logical ~required

(* ------------------------------------------------------------------ *)
(* F4: Figure 4 — exhaustive optimization performance, Volcano vs      *)
(* EXODUS, 1-7 joins (2-8 input relations).                            *)
(* ------------------------------------------------------------------ *)

let f4 ~full () =
  header "F4  Figure 4: exhaustive optimization, Volcano vs EXODUS";
  Printf.printf
    "Per size: average optimization time and average estimated plan execution\n\
     time (both optimizers' plans re-costed by one neutral estimator).\n";
  let volcano_queries = if full then 50 else 30 in
  let exodus_queries n = if n <= 5 then volcano_queries else if n = 6 then 5 else 3 in
  let exodus_budget = 40_000 in
  Printf.printf
    "Volcano: %d queries/size. EXODUS: %d queries for <=5 relations, fewer after\n\
     (node budget %d; the paper's EXODUS likewise aborted on complex queries).\n\n"
    volcano_queries (exodus_queries 2) exodus_budget;
  Printf.printf
    "  n | volcano opt (ms) | exodus opt (ms) | time ratio | volcano exec (s) | exodus exec (s) | exec ratio | exodus ok\n";
  Printf.printf
    "  --+------------------+-----------------+------------+------------------+-----------------+------------+----------\n";
  List.iter
    (fun n ->
      let queries =
        Workload.generate_batch
          (Workload.spec ~shape:Workload.Chain ~n_relations:n ~seed:(seed_base + n) ())
          ~count:volcano_queries
      in
      let v_times = ref [] and v_costs = ref [] in
      List.iter
        (fun (q : Workload.query) ->
          let dt, result = time_it (fun () -> volcano_optimize q ~required:Phys_prop.any) in
          match result.plan with
          | None -> ()
          | Some plan ->
            v_times := dt :: !v_times;
            v_costs :=
              Cost.total
                (Relmodel.Plan_cost.estimate q.catalog
                   (Relmodel.Optimizer.to_physical plan))
              :: !v_costs)
        queries;
      let e_times = ref [] and e_costs = ref [] and e_ok = ref 0 in
      let e_abort_ratios = ref [] in
      let e_queries = List.filteri (fun i _ -> i < exodus_queries n) queries in
      List.iteri
        (fun i (q : Workload.query) ->
          let dt, result =
            time_it (fun () ->
                Exodus.optimize ~catalog:q.catalog ~max_nodes:exodus_budget q.logical
                  ~required:Phys_prop.any)
          in
          match result.plan with
          | Some plan when not result.aborted ->
            incr e_ok;
            e_times := dt :: !e_times;
            e_costs := Cost.total (Relmodel.Plan_cost.estimate q.catalog plan) :: !e_costs
          | Some plan ->
            (* Aborted search: compare its best-so-far plan against the
               Volcano optimum for the same query. *)
            let ec = Cost.total (Relmodel.Plan_cost.estimate q.catalog plan) in
            let vc = List.nth (List.rev !v_costs) i in
            e_abort_ratios := (ec /. vc) :: !e_abort_ratios
          | None -> ())
        e_queries;
      let v_t = mean !v_times *. 1000. and e_t = mean !e_times *. 1000. in
      let v_c = mean !v_costs and e_c = mean !e_costs in
      Printf.printf
        "  %d | %16.2f | %15.2f | %10.1f | %16.4f | %15.4f | %10.3f | %d/%d%s\n%!" n v_t e_t
        (e_t /. v_t) v_c e_c (e_c /. v_c) !e_ok (List.length e_queries)
        (if !e_abort_ratios = [] then ""
         else Printf.sprintf "  (aborted best-so-far %.2fx optimum)" (geomean !e_abort_ratios)))
    [ 2; 3; 4; 5; 6; 7; 8 ]

(* ------------------------------------------------------------------ *)
(* A1: memo deduplication — redundant derivations detected via the     *)
(* expression hash table and the winner table.                         *)
(* ------------------------------------------------------------------ *)

let a1 ~full () =
  header "A1  Memo deduplication (the hash table of expressions and classes)";
  Printf.printf
    "  n | groups | mexprs | rule firings | class merges | goals | winner hits | hit rate | tasks | stack hwm\n";
  Printf.printf
    "  --+--------+--------+--------------+--------------+-------+-------------+----------+-------+----------\n";
  let count = if full then 20 else 10 in
  List.iter
    (fun n ->
      let queries =
        Workload.generate_batch
          (Workload.spec ~n_relations:n ~seed:(seed_base + (100 * n)) ())
          ~count
      in
      let acc = Array.make 8 0. in
      List.iter
        (fun (q : Workload.query) ->
          let r = volcano_optimize q ~required:Phys_prop.any in
          let s = r.stats in
          acc.(0) <- acc.(0) +. Float.of_int r.memo_groups;
          acc.(1) <- acc.(1) +. Float.of_int r.memo_mexprs;
          acc.(2) <- acc.(2) +. Float.of_int s.rule_firings;
          acc.(3) <- acc.(3) +. Float.of_int s.merges;
          acc.(4) <- acc.(4) +. Float.of_int s.goals;
          acc.(5) <- acc.(5) +. Float.of_int s.goal_hits;
          acc.(6) <- acc.(6) +. Float.of_int s.tasks;
          acc.(7) <- acc.(7) +. Float.of_int s.stack_hwm)
        queries;
      let c = Float.of_int count in
      Printf.printf
        "  %d | %6.0f | %6.0f | %12.0f | %12.0f | %5.0f | %11.0f | %8.2f | %5.0f | %9.0f\n%!"
        n (acc.(0) /. c) (acc.(1) /. c) (acc.(2) /. c) (acc.(3) /. c) (acc.(4) /. c)
        (acc.(5) /. c)
        (acc.(5) /. (acc.(4) +. acc.(5)))
        (acc.(6) /. c) (acc.(7) /. c))
    [ 3; 4; 5; 6; 7; 8 ]

(* ------------------------------------------------------------------ *)
(* A2: branch-and-bound pruning — same optima, less work.              *)
(* ------------------------------------------------------------------ *)

let a2 ~full () =
  header "A2  Branch-and-bound pruning (cost limits of Figure 2)";
  Printf.printf
    "  n | time on (ms) | time off (ms) | plans on | plans off | pruned | optima equal\n";
  Printf.printf
    "  --+--------------+---------------+----------+-----------+--------+-------------\n";
  let count = if full then 20 else 10 in
  List.iter
    (fun n ->
      let queries =
        Workload.generate_batch
          (Workload.spec ~n_relations:n ~seed:(seed_base + (200 * n)) ())
          ~count
      in
      let t_on = ref [] and t_off = ref [] in
      let p_on = ref 0 and p_off = ref 0 and pruned = ref 0 in
      let equal = ref true in
      List.iter
        (fun (q : Workload.query) ->
          let dt1, r1 =
            time_it (fun () -> volcano_optimize ~pruning:true q ~required:Phys_prop.any)
          in
          let dt2, r2 =
            time_it (fun () -> volcano_optimize ~pruning:false q ~required:Phys_prop.any)
          in
          t_on := dt1 :: !t_on;
          t_off := dt2 :: !t_off;
          p_on := !p_on + r1.stats.plans_costed;
          p_off := !p_off + r2.stats.plans_costed;
          pruned := !pruned + r1.stats.pruned;
          match r1.plan, r2.plan with
          | Some a, Some b ->
            if Float.abs (Cost.total a.cost -. Cost.total b.cost) > 1e-9 then equal := false
          | _, _ -> equal := false)
        queries;
      Printf.printf "  %d | %12.3f | %13.3f | %8d | %9d | %6d | %b\n%!" n
        (mean !t_on *. 1000.) (mean !t_off *. 1000.) (!p_on / count) (!p_off / count)
        (!pruned / count) !equal)
    (if full then [ 3; 4; 5; 6; 7; 8 ] else [ 3; 4; 5; 6; 7 ])

(* ------------------------------------------------------------------ *)
(* A3: property-driven search vs after-the-fact glue sorting.          *)
(* ------------------------------------------------------------------ *)

let a3 ~full () =
  header "A3  Physical properties drive the search (ORDER BY queries)";
  Printf.printf
    "Volcano passes the sort requirement into the search (enforcers, excluding\n\
     vectors); the baseline optimizes ignoring order and glues a final sort on\n\
     top (the EXODUS/Starburst treatment the paper criticizes).\n\n";
  Printf.printf "  n | volcano cost | glue cost | glue/volcano (geomean)\n";
  Printf.printf "  --+--------------+-----------+-----------------------\n";
  let count = if full then 30 else 15 in
  List.iter
    (fun n ->
      let queries =
        Workload.generate_batch
          (Workload.spec ~n_relations:n ~seed:(seed_base + (300 * n)) ())
          ~count
      in
      let ratios = ref [] and v_costs = ref [] and g_costs = ref [] in
      List.iter
        (fun (q : Workload.query) ->
          (* Ask for the output sorted on the first relation's first join
             key — an order a merge join along the spine can produce. *)
          let order_col = List.hd q.relations ^ ".jk1" in
          let required = Phys_prop.sorted (Sort_order.asc [ order_col ]) in
          let v = volcano_optimize q ~required in
          let g = volcano_optimize q ~required:Phys_prop.any in
          match v.plan, g.plan with
          | Some vp, Some gp ->
            let vc =
              Cost.total
                (Relmodel.Plan_cost.estimate q.catalog (Relmodel.Optimizer.to_physical vp))
            in
            let gplan =
              Physical.mk (Physical.Sort required.Phys_prop.order)
                [ Relmodel.Optimizer.to_physical gp ]
            in
            let gc = Cost.total (Relmodel.Plan_cost.estimate q.catalog gplan) in
            v_costs := vc :: !v_costs;
            g_costs := gc :: !g_costs;
            ratios := (gc /. vc) :: !ratios
          | _, _ -> ())
        queries;
      Printf.printf "  %d | %12.4f | %9.4f | %21.4f\n%!" n (mean !v_costs) (mean !g_costs)
        (geomean !ratios))
    [ 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* A4: heuristic guidance — the implementor's search knobs.            *)
(* ------------------------------------------------------------------ *)

let a4 ~full () =
  header "A4  Heuristic guidance: exhaustive vs left-deep vs top-k moves";
  Printf.printf "  n | exhaustive ms/cost | left-deep ms/cost | top-8 moves ms/cost\n";
  Printf.printf "  --+--------------------+-------------------+--------------------\n";
  let count = if full then 20 else 10 in
  let run_variant queries ~flags ~max_moves =
    let times = ref [] and costs = ref [] in
    List.iter
      (fun (q : Workload.query) ->
        let dt, r =
          time_it (fun () -> volcano_optimize ~flags ?max_moves q ~required:Phys_prop.any)
        in
        match r.plan with
        | Some p ->
          times := dt :: !times;
          costs :=
            Cost.total
              (Relmodel.Plan_cost.estimate q.catalog (Relmodel.Optimizer.to_physical p))
            :: !costs
        | None -> ())
      queries;
    (mean !times *. 1000., mean !costs)
  in
  List.iter
    (fun n ->
      let queries =
        Workload.generate_batch
          (Workload.spec ~n_relations:n ~seed:(seed_base + (400 * n)) ())
          ~count
      in
      let open Relmodel.Rel_model in
      let ex_t, ex_c = run_variant queries ~flags:default_flags ~max_moves:None in
      let ld_t, ld_c =
        run_variant queries ~flags:{ default_flags with left_deep_only = true } ~max_moves:None
      in
      let tk_t, tk_c = run_variant queries ~flags:default_flags ~max_moves:(Some 8) in
      Printf.printf "  %d | %9.2f / %-8.3f | %8.2f / %-8.3f | %9.2f / %-8.3f\n%!" n ex_t ex_c
        ld_t ld_c tk_t tk_c)
    [ 4; 5; 6; 7 ]

(* ------------------------------------------------------------------ *)
(* A5: multiple alternative input property vectors (merge set ops).    *)
(* ------------------------------------------------------------------ *)

let a5 ~full () =
  header "A5  Alternative input property vectors (the intersection example)";
  ignore full;
  Printf.printf
    "INTERSECT of two relations both stored sorted on (y, x) — the rotated\n\
     column order. With alternative vectors enabled the merge intersection\n\
     exploits the stored order directly (the paper's R sorted on (A,B,C),\n\
     S sorted on (B,A,C) example); without them only the (x, y) vector is\n\
     tried and the stored order is wasted.\n\n";
  let catalog = Catalog.create () in
  let make_table name seed =
    let rng = Random.State.make [| seed |] in
    let tuples =
      Array.init 4_000 (fun _ ->
          [| Value.Int (Random.State.int rng 40); Value.Int (Random.State.int rng 40) |])
    in
    let rotated = Sort_order.asc [ name ^ ".y"; name ^ ".x" ] in
    let schema =
      [| Schema.attribute (name ^ ".x") Schema.TInt; Schema.attribute (name ^ ".y") Schema.TInt |]
    in
    Array.sort (Sort_order.compare_tuples schema rotated) tuples;
    ignore (Catalog.add catalog ~name ~schema ~stored_order:rotated tuples)
  in
  make_table "a" 51;
  make_table "b" 52;
  let query = Logical.intersect (Logical.get "a") (Logical.get "b") in
  (* Require the output in the rotated order. *)
  let required =
    { Phys_prop.any with order = Sort_order.asc [ "a.y"; "a.x" ]; distinct = true }
  in
  let run ~alternatives =
    let flags = { Relmodel.Rel_model.default_flags with alternatives } in
    let request = { (Relmodel.Optimizer.request catalog) with flags } in
    let dt, result =
      time_it (fun () -> Relmodel.Optimizer.optimize request query ~required)
    in
    match result.plan with
    | None -> (dt, nan, "no plan")
    | Some p -> (dt, Cost.total p.cost, Physical.alg_name p.alg)
  in
  let t_on, c_on, root_on = run ~alternatives:true in
  let t_off, c_off, root_off = run ~alternatives:false in
  Printf.printf "  alternatives on : cost %.4f  root %-24s (%.2f ms)\n" c_on root_on
    (t_on *. 1000.);
  Printf.printf "  alternatives off: cost %.4f  root %-24s (%.2f ms)\n" c_off root_off
    (t_off *. 1000.);
  Printf.printf "  saving: %.1f%%\n%!" (100. *. (1. -. (c_on /. c_off)))

(* ------------------------------------------------------------------ *)
(* A6: search-space growth — optimization effort tracks the number of  *)
(* equivalent logical expressions (Ono-Lohman).                        *)
(* ------------------------------------------------------------------ *)

let a6 ~full () =
  header "A6  Growth of the logical search space (cf. Ono & Lohman)";
  Printf.printf
    "For a chain query with Cartesian products admitted, the number of join\n\
     multi-expressions in the memo is sum over subsets S (|S|>=2) of\n\
     (2^|S| - 2) = 3^n - 2^(n+1) + n + 1; optimization time should track it.\n\n";
  Printf.printf "  n | mexprs (measured) | join mexprs (theory) | time (ms)\n";
  Printf.printf "  --+-------------------+----------------------+----------\n";
  let count = if full then 10 else 5 in
  List.iter
    (fun n ->
      let queries =
        Workload.generate_batch
          (Workload.spec ~n_relations:n ~seed:(seed_base + (600 * n)) ())
          ~count
      in
      let times = ref [] and mexprs = ref [] in
      List.iter
        (fun (q : Workload.query) ->
          let dt, r = time_it (fun () -> volcano_optimize q ~required:Phys_prop.any) in
          times := dt :: !times;
          mexprs := Float.of_int r.memo_mexprs :: !mexprs)
        queries;
      let theory =
        (3. ** Float.of_int n) -. (2. ** Float.of_int (n + 1)) +. Float.of_int n +. 1.
      in
      Printf.printf "  %d | %17.0f | %20.0f | %8.2f\n%!" n (mean !mexprs) theory
        (mean !times *. 1000.))
    [ 3; 4; 5; 6; 7; 8 ]

(* ------------------------------------------------------------------ *)
(* A7: partitioning as a physical property — exchange enforcers and    *)
(* co-partitioned parallel joins (paper §4.1/§6).                      *)
(* ------------------------------------------------------------------ *)

let a7 ~full () =
  header "A7  Partitioning property: exchanges and parallel joins";
  ignore full;
  let make_catalog () =
    let c = Catalog.create () in
    let add name rows seed part =
      let rng = Random.State.make [| seed |] in
      let tuples =
        Array.init rows (fun i ->
            [| Value.Int i; Value.Int (Random.State.int rng 500);
               Value.Int (Random.State.int rng 100) |])
      in
      let schema =
        [|
          Schema.attribute (name ^ ".id") Schema.TInt;
          Schema.attribute (name ^ ".k") Schema.TInt;
          Schema.attribute (name ^ ".v") Schema.TInt;
        |]
      in
      ignore (Catalog.add c ~name ~schema ?stored_partitioning:part tuples)
    in
    add "f1" 6_000 91 (Some (Phys_prop.Hashed [ "f1.k" ]));
    add "f2" 6_000 92 (Some (Phys_prop.Hashed [ "f2.k" ]));
    c
  in
  let catalog = make_catalog () in
  let query =
    Expr.(Logical.join (col "f1.k" =% col "f2.k") (Logical.get "f1") (Logical.get "f2"))
  in
  Printf.printf
    "Join of two relations pre-partitioned on the join key, result gathered at\n\
     one site; the co-partitioned parallel join divides the work across the\n\
     workers, paying one exchange.\n\n";
  Printf.printf "  workers | est. cost | plan root\n";
  Printf.printf "  --------+-----------+----------\n";
  List.iter
    (fun workers ->
      let request =
        {
          (Relmodel.Optimizer.request catalog) with
          params = { Cost_model.default with workers };
          restore_columns = false;
        }
      in
      let result = Relmodel.Optimizer.optimize request query ~required:Phys_prop.gathered in
      match result.plan with
      | None -> Printf.printf "  %7d | no plan\n%!" workers
      | Some p ->
        Printf.printf "  %7d | %9.4f | %s\n%!" workers (Cost.total p.cost)
          (Physical.alg_name p.alg))
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* A8: dynamic plans for incompletely specified queries (paper §1,     *)
(* requirement 5).                                                      *)
(* ------------------------------------------------------------------ *)

let a8 ~full () =
  header "A8  Dynamic plans (parameterized query, unknown selectivity)";
  ignore full;
  let catalog = Catalog.create () in
  ignore
    (Catalog.add_synthetic catalog ~name:"fact"
       ~columns:[ ("k", Catalog.Uniform_int (0, 499)); ("v", Catalog.Uniform_int (0, 9_999)) ]
       ~rows:6_000 ~seed:31 ());
  ignore
    (Catalog.add_synthetic catalog ~name:"dim"
       ~columns:[ ("k", Catalog.Uniform_int (0, 499)); ("w", Catalog.Uniform_int (0, 99)) ]
       ~rows:3_000 ~seed:32 ());
  let template param =
    let open Expr in
    Logical.join
      (col "fact.k" =% col "dim.k")
      (Logical.select (Expr.Cmp (Expr.Le, col "fact.v", Expr.Const param)) (Logical.get "fact"))
      (Logical.get "dim")
  in
  let request =
    { (Relmodel.Optimizer.request catalog) with restore_columns = false }
  in
  let prepared =
    Dynplan.prepare ~request template ~range:(0., 400.) ~buckets:16 ~required:Phys_prop.any ()
  in
  Printf.printf
    "The parameter bounds fact.v; selectivity is unknown until run time. The\n\
     dynamic plan keeps %d distinct plans; the static plan is optimized at the\n\
     range midpoint. Costs below are the neutral estimate of the instantiated\n\
     plans; 'oracle' re-optimizes for the actual value.\n\n"
    (Dynplan.n_distinct_plans prepared);
  Printf.printf "  param | dynamic | static | oracle | static/dynamic\n";
  Printf.printf "  ------+---------+--------+--------+---------------\n";
  List.iter
    (fun v ->
      let param = Value.Int v in
      let b = Dynplan.choose prepared param in
      let dynamic =
        Cost.total
          (Relmodel.Plan_cost.estimate catalog
             (Dynplan.instantiate b.Dynplan.plan ~witness:b.Dynplan.witness ~actual:param))
      in
      let static_ =
        Cost.total
          (Relmodel.Plan_cost.estimate catalog
             (Dynplan.instantiate prepared.Dynplan.static_plan ~witness:200. ~actual:param))
      in
      let oracle =
        match (Relmodel.Optimizer.optimize request (template param) ~required:Phys_prop.any).plan with
        | Some p -> Cost.total p.cost
        | None -> nan
      in
      Printf.printf "  %5d | %7.4f | %6.4f | %6.4f | %14.2f\n%!" v dynamic static_ oracle
        (static_ /. dynamic))
    [ 2; 10; 25; 50; 100; 200; 400 ]

(* ------------------------------------------------------------------ *)
(* A9: longer-lived partial results — one memo across queries (§3).    *)
(* ------------------------------------------------------------------ *)

let a9 ~full () =
  header "A9  Memo reuse across queries (longer-lived partial results)";
  let n = 6 in
  let count = if full then 30 else 15 in
  (* Queries over one catalog sharing subexpressions: prefixes of a
     chain with varying selections. *)
  let base = Workload.generate (Workload.spec ~n_relations:n ~seed:(seed_base + 999) ()) in
  let queries =
    (* Re-optimize the same query repeatedly plus its join prefixes:
       the session should answer later requests mostly from the memo. *)
    List.concat
      (List.init count (fun _ ->
           let rec prefixes (e : Logical.expr) acc =
             match e.Logical.op, e.Logical.inputs with
             | Logical.Join _, [ l; _ ] -> prefixes l (e :: acc)
             | _, _ -> acc
           in
           prefixes base.logical []))
  in
  let request =
    { (Relmodel.Optimizer.request base.catalog) with restore_columns = false }
  in
  let t_fresh, _ =
    time_it (fun () ->
        List.iter
          (fun q -> ignore (Relmodel.Optimizer.optimize request q ~required:Phys_prop.any))
          queries)
  in
  let t_session, _ =
    time_it (fun () ->
        let s = Relmodel.Optimizer.session request in
        List.iter
          (fun q -> ignore (Relmodel.Optimizer.optimize_in s q ~required:Phys_prop.any))
          queries)
  in
  Printf.printf
    "%d optimizations of overlapping queries (%d-relation chain and its prefixes):\n"
    (List.length queries) n;
  Printf.printf "  fresh memo per query : %8.2f ms\n" (t_fresh *. 1000.);
  Printf.printf "  one session memo     : %8.2f ms   (%.1fx faster)\n%!"
    (t_session *. 1000.) (t_fresh /. t_session)

(* ------------------------------------------------------------------ *)
(* A10: anytime optimization — plan quality under a task budget.       *)
(* ------------------------------------------------------------------ *)

let a10 ~full () =
  header "A10  Anytime optimization (task budgets on the stepper loop)";
  Printf.printf
    "The task engine stops cleanly when its step budget runs out and returns\n\
     the best complete plan found so far. Plan quality vs budget, as a\n\
     geomean ratio over the exhaustive optimum ('-' = no plan yet).\n\n";
  let n = 6 in
  let count = if full then 20 else 10 in
  let queries =
    Workload.generate_batch
      (Workload.spec ~shape:Workload.Chain ~n_relations:n ~seed:(seed_base + 1000) ())
      ~count
  in
  let optimum =
    List.map
      (fun (q : Workload.query) ->
        match (volcano_optimize q ~required:Phys_prop.any).plan with
        | Some p -> Cost.total p.cost
        | None -> nan)
      queries
  in
  let exhaustive_tasks =
    List.map
      (fun (q : Workload.query) ->
        (volcano_optimize q ~required:Phys_prop.any).tasks_run)
      queries
  in
  Printf.printf "  exhaustive search: %.0f tasks on average (%d-relation chain)\n\n"
    (mean (List.map Float.of_int exhaustive_tasks))
    n;
  Printf.printf "  budget (tasks) | plans found | cost / optimum (geomean)\n";
  Printf.printf "  ---------------+-------------+-------------------------\n";
  List.iter
    (fun budget ->
      let found = ref 0 and ratios = ref [] in
      List.iter2
        (fun (q : Workload.query) opt ->
          let request =
            {
              (Relmodel.Optimizer.request q.catalog) with
              max_tasks = Some budget;
              restore_columns = false;
            }
          in
          let r = Relmodel.Optimizer.optimize request q.logical ~required:Phys_prop.any in
          match r.plan with
          | Some p ->
            incr found;
            ratios := (Cost.total p.cost /. opt) :: !ratios
          | None -> ())
        queries optimum;
      Printf.printf "  %14d | %8d/%-2d | %s\n%!" budget !found count
        (if !ratios = [] then "-" else Printf.sprintf "%.4f" (geomean !ratios)))
    [ 50; 200; 500; 1_000; 2_000; 5_000; 20_000 ]

(* ------------------------------------------------------------------ *)
(* PLANSRV: the plan-cache service under a repeated workload — warm    *)
(* hits vs cold optimizations, and concurrent serving throughput.      *)
(* Writes BENCH_plansrv.json next to the build.                        *)
(* ------------------------------------------------------------------ *)

let median xs =
  match List.sort Float.compare xs with
  | [] -> nan
  | sorted -> List.nth sorted (List.length sorted / 2)

let plansrv_bench ~full () =
  header "PLANSRV  Plan-cache service: repeated workload, warm vs cold";
  let replays = if full then 100 else 50 in
  (* 20 distinct queries over one catalog: the same 5-relation chain
     under 20 different selection constants — the shape of a
     parameterized application workload. *)
  let base = Workload.generate (Workload.spec ~n_relations:5 ~seed:(seed_base + 1100) ()) in
  let catalog = base.catalog in
  let first_col = List.hd base.relations ^ ".jk1" in
  let uniques =
    List.init 20 (fun i ->
        Logical.select Expr.(col first_col >=% int (2 * i)) base.logical)
  in
  let n_unique = List.length uniques in
  (* The request stream: every unique query replayed [replays] times, in
     a deterministically shuffled order. *)
  let rng = Random.State.make [| seed_base + 1101 |] in
  let stream = Array.concat (List.init replays (fun _ -> Array.of_list uniques)) in
  let n = Array.length stream in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = stream.(i) in
    stream.(i) <- stream.(j);
    stream.(j) <- tmp
  done;
  let request =
    { (Relmodel.Optimizer.request catalog) with restore_columns = false }
  in
  (* Latency profile on one worker: per-response latency is measured
     inside the service. *)
  let srv = Plansrv.create (Plansrv.config request) in
  let w = Plansrv.worker srv in
  let responses =
    Array.map (fun q -> Plansrv.serve_one srv w q ~required:Phys_prop.any) stream
  in
  let latencies outcome =
    Array.to_list responses
    |> List.filter_map (fun (r : Plansrv.response) ->
           if r.outcome = outcome then Some r.latency_ms else None)
  in
  let cold = latencies Plansrv.Miss and warm = latencies Plansrv.Hit in
  let m = Plansrv.metrics srv in
  let cold_med = median cold and warm_med = median warm in
  let speedup = cold_med /. warm_med in
  Printf.printf
    "%d unique queries x %d replays = %d requests; hits %d, misses %d (hit rate %.1f%%)\n"
    n_unique replays n m.hits m.misses
    (100. *. Float.of_int m.hits /. Float.of_int m.requests);
  Printf.printf "  cold (optimize) median: %8.3f ms   mean: %8.3f ms\n" cold_med (mean cold);
  Printf.printf "  warm (cache hit) median: %7.3f ms   mean: %8.3f ms\n" warm_med (mean warm);
  Printf.printf "  median speedup: %.1fx\n\n" speedup;
  (* Concurrent throughput: per worker count, a cold run on a fresh
     service (its misses column counts duplicated optimizations from
     concurrent workers missing on the same key) and a second, fully
     warmed run over the same stream. Domains beyond the available
     cores only add scheduling and GC-synchronization overhead, so read
     the scaling against the reported core count. *)
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  available cores: %d\n" cores;
  Printf.printf "  workers | cold (ms) | misses | warm (ms) | warm req/s | lock-free hits\n";
  Printf.printf "  --------+-----------+--------+-----------+------------+---------------\n";
  let batch = Array.map (fun q -> (q, Phys_prop.any)) stream in
  let throughput =
    List.map
      (fun workers ->
        let srv = Plansrv.create (Plansrv.config request) in
        let dt_cold, _ = time_it (fun () -> ignore (Plansrv.serve ~workers srv batch)) in
        let misses = (Plansrv.metrics srv).misses in
        let before_warm = (Plansrv.metrics srv).lockfree_hits in
        let dt_warm, _ = time_it (fun () -> ignore (Plansrv.serve ~workers srv batch)) in
        (* Every request of the warmed pass must have been served off the
           shard snapshot without locking: that is the machine-neutral
           signal that warm throughput scales with workers even on a
           single-core container. *)
        let lockfree = (Plansrv.metrics srv).lockfree_hits - before_warm in
        let rps = Float.of_int n /. dt_warm in
        Printf.printf "  %7d | %9.1f | %6d | %9.1f | %10.0f | %d/%d\n%!" workers
          (dt_cold *. 1000.) misses (dt_warm *. 1000.) rps lockfree n;
        (workers, dt_cold *. 1000., misses, dt_warm *. 1000., rps, lockfree))
      [ 1; 2; 4 ]
  in
  let oc = open_out "BENCH_plansrv.json" in
  Printf.fprintf oc
    "{\n\
    \  \"unique_queries\": %d,\n\
    \  \"replays\": %d,\n\
    \  \"requests\": %d,\n\
    \  \"hits\": %d,\n\
    \  \"misses\": %d,\n\
    \  \"hit_rate\": %.4f,\n\
    \  \"cold_median_ms\": %.4f,\n\
    \  \"cold_mean_ms\": %.4f,\n\
    \  \"warm_median_ms\": %.4f,\n\
    \  \"warm_mean_ms\": %.4f,\n\
    \  \"median_speedup\": %.1f,\n\
    \  \"evictions\": %d,\n\
    \  \"entries\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"throughput\": [\n%s\n\
    \  ]\n\
     }\n"
    n_unique replays n m.hits m.misses
    (Float.of_int m.hits /. Float.of_int m.requests)
    cold_med (mean cold) warm_med (mean warm) speedup m.evictions m.entries cores
    (String.concat ",\n"
       (List.map
          (fun (w, cold_ms, misses, warm_ms, rps, lockfree) ->
            Printf.sprintf
              "    { \"workers\": %d, \"cold_wall_ms\": %.1f, \"cold_misses\": %d, \
               \"warm_wall_ms\": %.1f, \"warm_req_per_s\": %.0f, \
               \"warm_lockfree_hits\": %d }"
              w cold_ms misses warm_ms rps lockfree)
          throughput));
  close_out oc;
  Printf.printf "\n  wrote BENCH_plansrv.json\n%!"

(* ------------------------------------------------------------------ *)
(* PARSEARCH: intra-query parallel search — wall-clock and total work  *)
(* at 1, 2 and 4 domains on chain/star joins.                          *)
(* Writes BENCH_parsearch.json next to the build.                      *)
(* ------------------------------------------------------------------ *)

(* Two scheduler arms over the same workloads and domain counts: the
   work-stealing deques (default) and the shared-counter seeded
   scheduler (ablation). The plan must be bit-identical to the
   sequential engine in every cell, and the stealing arm's claim-table
   backoff must kill duplicate goal computations outright
   (par_dup_goals = 0). [smoke] shrinks sizes for CI and exits nonzero
   when either property breaks. *)
let parsearch_bench ?(smoke = false) ~full () =
  header "PARSEARCH  Intra-query parallel search (Search.run ~domains)";
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "Per workload, scheduler arm, and domain count: best-of-%d wall clock,\n\
     speedup vs the sequential engine, and the hardware-neutral work counters\n\
     (total engine tasks summed over all domains, goals claimed by workers,\n\
     goals computed in duplicate, steals, backoff waits, duplicate kills).\n\
     Plans are verified bit-identical across arms and domain counts.\n\
     Available cores: %d%s\n\n"
    (if smoke then 1 else 3) cores
    (if cores < 4 then
       " — fewer cores than domains: expect no wall-clock speedup here;\n\
       \     the work counters are the machine-independent signal"
     else "");
  let sizes = if smoke then [ 5; 6 ] else if full then [ 6; 7; 8 ] else [ 6; 7 ] in
  let reps = if smoke then 1 else 3 in
  let workloads =
    List.concat_map
      (fun n -> [ (Workload.Star, "star", n); (Workload.Chain, "chain", n) ])
      sizes
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  Printf.printf
    "  workload | arm      | domains | wall (ms) | speedup | tasks | claimed | dup | \
     steals | backoffs | kills | identical\n";
  Printf.printf
    "  ---------+----------+---------+-----------+---------+-------+---------+-----+-\
     -------+----------+-------+----------\n";
  let rows =
    List.concat_map
      (fun (shape, name, n) ->
        let q =
          Workload.generate
            (Workload.spec ~shape ~n_relations:n ~seed:(seed_base + (1200 * n)) ())
        in
        let measure scheduler domains =
          let request =
            {
              (Relmodel.Optimizer.request q.catalog) with
              restore_columns = false;
              domains;
              scheduler;
            }
          in
          let best = ref infinity and last = ref None in
          for _ = 1 to reps do
            let dt, r =
              time_it (fun () ->
                  Relmodel.Optimizer.optimize request q.logical ~required:Phys_prop.any)
            in
            if dt < !best then best := dt;
            last := Some r
          done;
          (!best *. 1000., Option.get !last)
        in
        let base_ms, base = measure Volcano.Search.Stealing 1 in
        let base_cost =
          match base.plan with
          | Some p -> Cost.total p.cost
          | None -> nan
        in
        List.concat_map
          (fun (scheduler, arm) ->
            List.map
              (fun domains ->
                let ms, r = measure scheduler domains in
                let cost =
                  match r.plan with Some p -> Cost.total p.cost | None -> nan
                in
                let identical = Float.abs (cost -. base_cost) = 0. in
                if not identical then
                  fail "%s n=%d: %s arm at %d domains diverges from sequential" name n
                    arm domains;
                if arm = "stealing" && r.stats.Volcano.Search_stats.par_dup_goals > 0
                then
                  fail "%s n=%d: stealing arm at %d domains computed %d duplicate goals"
                    name n domains r.stats.Volcano.Search_stats.par_dup_goals;
                let speedup = base_ms /. ms in
                let s = r.stats in
                Printf.printf
                  "  %5s n=%d | %-8s | %7d | %9.1f | %6.2fx | %5d | %7d | %3d | %6d | \
                   %8d | %5d | %b\n\
                   %!"
                  name n arm domains ms speedup s.tasks s.par_goals_claimed
                  s.par_dup_goals s.par_steals s.par_backoffs s.par_dup_kills identical;
                ( name, n, arm, domains, ms, speedup, s.tasks, s.par_goals_claimed,
                  s.par_dup_goals, s.par_steals, s.par_backoffs, s.par_dup_kills, cost,
                  identical ))
              [ 1; 2; 4 ])
          [ (Volcano.Search.Stealing, "stealing"); (Volcano.Search.Seeded, "seeded") ])
      workloads
  in
  let oc = open_out "BENCH_parsearch.json" in
  Printf.fprintf oc
    "{\n  \"cores\": %d,\n  \"all_identical\": %b,\n  \"runs\": [\n%s\n  ]\n}\n" cores
    (!failures = [])
    (String.concat ",\n"
       (List.map
          (fun
            ( name, n, arm, domains, ms, speedup, tasks, claimed, dup, steals, backoffs,
              kills, cost, identical )
          ->
            Printf.sprintf
              "    { \"workload\": \"%s\", \"relations\": %d, \"scheduler\": \"%s\", \
               \"domains\": %d, \"wall_ms\": %.2f, \"speedup\": %.3f, \"tasks\": %d, \
               \"par_goals_claimed\": %d, \"par_dup_goals\": %d, \"par_steals\": %d, \
               \"par_backoffs\": %d, \"par_dup_kills\": %d, \"plan_cost\": %.9f, \
               \"identical_to_sequential\": %b }"
              name n arm domains ms speedup tasks claimed dup steals backoffs kills cost
              identical)
          rows));
  close_out oc;
  Printf.printf "\n  wrote BENCH_parsearch.json\n%!";
  if !failures <> [] then begin
    List.iter (Printf.printf "  FAIL: %s\n") (List.rev !failures);
    if smoke then exit 1
  end

(* ------------------------------------------------------------------ *)
(* PRUNING  Guided-pruning ablation (BENCH_pruning.json)               *)
(* ------------------------------------------------------------------ *)

(* Three arms over the same workloads: no pruning at all, plain
   Figure-2 branch-and-bound, and Figure 2 plus the guided layer
   (group cost lower bounds driving goal kills, doomed-move
   projections, and sibling-aware input limits). The winning plan must
   be bit-identical across every arm and, for the guided arm, across
   1/2/4 domains; total engine tasks are the machine-independent work
   measure. [smoke] shrinks the sizes for CI and makes the run exit
   nonzero when any arm diverges or the star workload shows no
   lower-bound pruning. *)
let pruning_bench ?(smoke = false) ~full () =
  header "PRUNING  Guided pruning ablation (group cost lower bounds)";
  Printf.printf
    "Per workload and required property: wall clock (best of %d), total engine\n\
     tasks, and the guided-pruning counters. \"identical\" compares the plan\n\
     rendering (operators, properties, per-node costs to the last bit) against\n\
     the no-pruning arm of the same workload.\n\n"
    (if smoke then 1 else 3);
  let sizes = if smoke then [ 4; 5 ] else if full then [ 5; 6; 7; 8 ] else [ 5; 6; 7 ] in
  let reps = if smoke then 1 else 3 in
  let workloads =
    List.concat_map
      (fun n -> [ (Workload.Chain, "chain", n); (Workload.Star, "star", n) ])
      sizes
  in
  let arms = [ ("none", false, false); ("figure2", true, false); ("guided", true, true) ] in
  let render (result : Relmodel.Optimizer.result) =
    match result.plan with
    | None -> "NONE"
    | Some p ->
      Printf.sprintf "%s|%.17g" (Relmodel.Optimizer.explain p) (Cost.total p.cost)
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  Printf.printf
    "  workload | required | arm     | wall (ms) | tasks | lb-pruned | tightened | fastpath | identical\n";
  Printf.printf
    "  ---------+----------+---------+-----------+-------+-----------+-----------+----------+----------\n";
  let rows =
    List.concat_map
      (fun (shape, name, n) ->
        let q =
          Workload.generate
            (Workload.spec ~shape ~n_relations:n ~seed:(seed_base + (1300 * n)) ())
        in
        let requireds =
          [
            ("any", Phys_prop.any);
            ("sorted", Phys_prop.sorted (Sort_order.asc [ List.hd q.relations ^ ".jk1" ]));
          ]
        in
        List.concat_map
          (fun (rname, required) ->
            let measure ~pruning ~guided ~domains =
              let request =
                {
                  (Relmodel.Optimizer.request q.catalog) with
                  restore_columns = false;
                  pruning;
                  guided_pruning = guided;
                  domains;
                }
              in
              let best = ref infinity and last = ref None in
              for _ = 1 to reps do
                let dt, r =
                  time_it (fun () ->
                      Relmodel.Optimizer.optimize request q.logical ~required)
                in
                if dt < !best then best := dt;
                last := Some r
              done;
              (!best *. 1000., Option.get !last)
            in
            let baseline = ref "" in
            let arm_rows =
              List.map
                (fun (arm, pruning, guided) ->
                  let ms, r = measure ~pruning ~guided ~domains:1 in
                  let rendered = render r in
                  if arm = "none" then baseline := rendered;
                  let identical = rendered = !baseline in
                  if not identical then
                    fail "%s n=%d %s: arm %s diverges from no-pruning plan" name n
                      rname arm;
                  let s = r.stats in
                  Printf.printf
                    "  %5s n=%d | %8s | %-7s | %9.1f | %5d | %9d | %9d | %8d | %b\n%!"
                    name n rname arm ms s.tasks s.goals_pruned_lb
                    s.input_limits_tightened s.memo_fastpath_hits identical;
                  ( name, n, rname, arm, ms, s.tasks, s.goals_pruned_lb,
                    s.input_limits_tightened, s.memo_fastpath_hits,
                    (match r.plan with Some p -> Cost.total p.cost | None -> nan),
                    identical ))
                arms
            in
            (* The guided arm must stay bit-identical in parallel too. *)
            List.iter
              (fun domains ->
                let _, r = measure ~pruning:true ~guided:true ~domains in
                if render r <> !baseline then
                  fail "%s n=%d %s: guided arm at %d domains diverges" name n rname
                    domains)
              [ 2; 4 ];
            arm_rows)
          requireds)
      workloads
  in
  let star_tasks arm =
    List.fold_left
      (fun acc (name, _, _, a, _, tasks, _, _, _, _, _) ->
        if name = "star" && a = arm then acc + tasks else acc)
      0 rows
  in
  let star_lb_pruned =
    List.fold_left
      (fun acc (name, _, _, a, _, _, lb, _, _, _, _) ->
        if name = "star" && a = "guided" then acc + lb else acc)
      0 rows
  in
  let f2 = star_tasks "figure2" and guided = star_tasks "guided" in
  let reduction = 100. *. (1. -. (Float.of_int guided /. Float.of_int f2)) in
  Printf.printf
    "\n  star workload: figure2 %d tasks, guided %d tasks (%.1f%% reduction); \
     lb-pruned %d\n"
    f2 guided reduction star_lb_pruned;
  if star_lb_pruned = 0 then
    fail "star workload: guided arm never pruned on a lower bound";
  let oc = open_out "BENCH_pruning.json" in
  Printf.fprintf oc
    "{\n  \"cores\": %d,\n  \"star_task_reduction_pct\": %.2f,\n\
    \  \"star_goals_pruned_lb\": %d,\n\
    \  \"all_arms_identical\": %b,\n  \"runs\": [\n%s\n  ]\n}\n"
    (Domain.recommended_domain_count ()) reduction star_lb_pruned (!failures = [])
    (String.concat ",\n"
       (List.map
          (fun (name, n, rname, arm, ms, tasks, lb, tight, fast, cost, identical) ->
            Printf.sprintf
              "    { \"workload\": \"%s\", \"relations\": %d, \"required\": \"%s\", \
               \"arm\": \"%s\", \"wall_ms\": %.2f, \"tasks\": %d, \
               \"goals_pruned_lb\": %d, \"input_limits_tightened\": %d, \
               \"memo_fastpath_hits\": %d, \"plan_cost\": %.17g, \
               \"identical_to_no_pruning\": %b }"
              name n rname arm ms tasks lb tight fast cost identical)
          rows));
  close_out oc;
  Printf.printf "\n  wrote BENCH_pruning.json\n%!";
  if !failures <> [] then begin
    List.iter (Printf.printf "  FAIL: %s\n") (List.rev !failures);
    if smoke then exit 1
  end

(* ------------------------------------------------------------------ *)
(* OBS  Observability overhead (BENCH_obs.json)                        *)
(* ------------------------------------------------------------------ *)

(* Five arms over the same workloads: observability off, span tracing
   on (one span per engine task plus goal and phase spans), tracing
   plus EXPLAIN alternative recording, the per-rule profiler, and the
   profiler plus the flight-recorder ring. The winning plan must stay
   bit-identical across all arms — observability may cost time but must
   never steer the search — the traced arm's span counts must equal the
   engine's task counters, and the profiled arms' per-rule task sums
   must equal the same counters (trace and profile are each a complete
   account of the work). [smoke] shrinks sizes for CI and exits nonzero
   when a plan diverges, parity breaks, or the overhead explodes. *)
let obs_bench ?(smoke = false) ~full () =
  header "OBS  Observability overhead (tracing, EXPLAIN, profiler, recorder)";
  let sizes = if smoke then [ 4; 5 ] else if full then [ 5; 6; 7 ] else [ 5; 6 ] in
  let reps = if smoke then 3 else 7 in
  Printf.printf
    "Per workload: median wall clock of %d runs per arm, span counts of the\n\
     traced arm, and each arm's overhead relative to the off arm.\n\n"
    reps;
  let workloads =
    List.concat_map
      (fun n -> [ (Workload.Chain, "chain", n); (Workload.Star, "star", n) ])
      sizes
  in
  let render (result : Relmodel.Optimizer.result) =
    match result.plan with
    | None -> "NONE"
    | Some p ->
      Printf.sprintf "%s|%.17g" (Relmodel.Optimizer.explain p) (Cost.total p.cost)
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  Printf.printf
    "  workload | arm               | wall (ms) | tasks | spans | overhead\n";
  Printf.printf
    "  ---------+-------------------+-----------+-------+-------+---------\n";
  let rows =
    List.concat_map
      (fun (shape, name, n) ->
        let q =
          Workload.generate
            (Workload.spec ~shape ~n_relations:n ~seed:(seed_base + (1700 * n)) ())
        in
        let measure ~arm =
          (* Fresh collectors per run: buffers are per-optimization. *)
          let samples = ref []
          and last = ref None
          and last_tracer = ref None
          and last_profiler = ref None in
          for _ = 1 to reps do
            let tracer =
              if arm = "trace" || arm = "trace+explain" then
                Some (Obs.Trace.create ())
              else None
            in
            let profiler =
              if arm = "profile" || arm = "profile+flightrec" then
                Some (Obs.Profile.create ())
              else None
            in
            let recorder =
              if arm = "profile+flightrec" then
                Some (Obs.Flight_recorder.create ())
              else None
            in
            let request =
              {
                (Relmodel.Optimizer.request q.catalog) with
                restore_columns = false;
                tracer;
                profiler;
                recorder;
                explain = arm = "trace+explain";
              }
            in
            let dt, r =
              time_it (fun () ->
                  Relmodel.Optimizer.optimize request q.logical
                    ~required:Phys_prop.any)
            in
            samples := (dt *. 1000.) :: !samples;
            last := Some r;
            last_tracer := tracer;
            last_profiler := profiler
          done;
          (median !samples, Option.get !last, !last_tracer, !last_profiler)
        in
        let base_ms, base_r, _, _ = measure ~arm:"off" in
        let baseline = render base_r in
        List.map
          (fun arm ->
            let ms, r, tracer, profiler =
              if arm = "off" then (base_ms, base_r, None, None) else measure ~arm
            in
            if render r <> baseline then
              fail "%s n=%d: arm %s diverges from the untraced plan" name n arm;
            let spans, task_spans =
              match tracer with
              | None -> (0, 0)
              | Some tr ->
                ( Obs.Trace.total tr,
                  List.length
                    (List.filter
                       (fun (sp : Obs.Trace.span) -> sp.Obs.Trace.sp_cat = "task")
                       (Obs.Trace.spans tr)) )
            in
            if tracer <> None && task_spans <> r.stats.Volcano.Search_stats.tasks then
              fail "%s n=%d: arm %s recorded %d task spans for %d tasks" name n arm
                task_spans r.stats.Volcano.Search_stats.tasks;
            (match profiler with
             | None -> ()
             | Some pr ->
               let total = Obs.Profile.total_tasks pr in
               if total <> r.stats.Volcano.Search_stats.tasks then
                 fail "%s n=%d: arm %s attributed %d tasks for %d executed" name n
                   arm total r.stats.Volcano.Search_stats.tasks);
            let overhead = 100. *. ((ms /. base_ms) -. 1.) in
            Printf.printf "  %5s n=%d | %-17s | %9.2f | %5d | %5d | %+7.1f%%\n%!"
              name n arm ms r.stats.Volcano.Search_stats.tasks spans
              (if arm = "off" then 0. else overhead);
            (name, n, arm, ms, r.stats.Volcano.Search_stats.tasks, spans, overhead))
          [ "off"; "trace"; "trace+explain"; "profile"; "profile+flightrec" ])
      workloads
  in
  (* Overhead across workloads: tracing buys a complete account of the
     search for a bounded slice of the wall clock. The geomean of the
     per-workload ratios is the headline; the smoke gate is generous
     (4x) because CI machines are noisy and smoke sizes are tiny. *)
  let ratios arm =
    List.filter_map
      (fun (_, _, a, _, _, _, overhead) ->
        if a = arm then Some (1. +. (overhead /. 100.)) else None)
      rows
  in
  let trace_x = geomean (ratios "trace") in
  let explain_x = geomean (ratios "trace+explain") in
  let profile_x = geomean (ratios "profile") in
  let flightrec_x = geomean (ratios "profile+flightrec") in
  Printf.printf
    "\n  geomean slowdown: tracing %.2fx, tracing+explain %.2fx, profiler \
     %.2fx,\n  profiler+flightrec %.2fx (off = 1.00x)\n"
    trace_x explain_x profile_x flightrec_x;
  if smoke && trace_x > 4. then
    fail "tracing slowdown %.2fx exceeds the 4x smoke gate" trace_x;
  (* The profiler and ring are counters and preallocated slots, no
     allocation per event: they must stay far cheaper than tracing. *)
  if smoke && profile_x > 2. then
    fail "profiler slowdown %.2fx exceeds the 2x smoke gate" profile_x;
  if smoke && flightrec_x > 2. then
    fail "profiler+flightrec slowdown %.2fx exceeds the 2x smoke gate" flightrec_x;
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n  \"cores\": %d,\n  \"trace_slowdown_x\": %.3f,\n\
    \  \"trace_explain_slowdown_x\": %.3f,\n\
    \  \"profile_slowdown_x\": %.3f,\n\
    \  \"profile_flightrec_slowdown_x\": %.3f,\n\
    \  \"all_arms_identical\": %b,\n  \"runs\": [\n%s\n  ]\n}\n"
    (Domain.recommended_domain_count ()) trace_x explain_x profile_x flightrec_x
    (!failures = [])
    (String.concat ",\n"
       (List.map
          (fun (name, n, arm, ms, tasks, spans, overhead) ->
            Printf.sprintf
              "    { \"workload\": \"%s\", \"relations\": %d, \"arm\": \"%s\", \
               \"wall_ms\": %.3f, \"tasks\": %d, \"spans\": %d, \
               \"overhead_pct\": %.1f }"
              name n arm ms tasks spans overhead)
          rows));
  close_out oc;
  Printf.printf "\n  wrote BENCH_obs.json\n%!";
  if !failures <> [] then begin
    List.iter (Printf.printf "  FAIL: %s\n") (List.rev !failures);
    if smoke then exit 1
  end

(* ------------------------------------------------------------------ *)
(* OBSPROF  Profiler / flight-recorder watchdog (no report)            *)
(* ------------------------------------------------------------------ *)

(* The regression watchdog behind the profiled arms of OBS: off vs
   profiler vs profiler+flight-recorder, sequentially and at 4 domains.
   Three properties gate the run — the plan stays bit-identical, the
   profiler's per-rule task sums equal the engine's task counters on
   every arm (attribution parity holds under work stealing too), and
   the profiled arms stay under 2x the off arm. Prints and gates; the
   durable numbers live in BENCH_obs.json. *)
let obsprof_bench ?(smoke = false) ~full () =
  header "OBSPROF  Profiler & flight-recorder watchdog (plan-inert, <2x)";
  let sizes = if smoke then [ 4; 5 ] else if full then [ 5; 6 ] else [ 5 ] in
  let reps = if smoke then 3 else 5 in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let render (result : Relmodel.Optimizer.result) =
    match result.plan with
    | None -> "NONE"
    | Some p ->
      Printf.sprintf "%s|%.17g" (Relmodel.Optimizer.explain p) (Cost.total p.cost)
  in
  Printf.printf
    "  workload | domains | arm               | wall (ms) | tasks | overhead\n";
  Printf.printf
    "  ---------+---------+-------------------+-----------+-------+---------\n";
  let ratios = ref [] in
  List.iter
    (fun (shape, name, n) ->
      let q =
        Workload.generate
          (Workload.spec ~shape ~n_relations:n ~seed:(seed_base + (2300 * n)) ())
      in
      List.iter
        (fun domains ->
          let measure ~arm =
            let samples = ref [] and last = ref None and last_profiler = ref None in
            for _ = 1 to reps do
              let profiler =
                if arm = "off" then None else Some (Obs.Profile.create ())
              in
              let recorder =
                if arm = "profile+flightrec" then
                  Some (Obs.Flight_recorder.create ())
                else None
              in
              let request =
                {
                  (Relmodel.Optimizer.request q.catalog) with
                  restore_columns = false;
                  profiler;
                  recorder;
                  domains;
                }
              in
              let dt, r =
                time_it (fun () ->
                    Relmodel.Optimizer.optimize request q.logical
                      ~required:Phys_prop.any)
              in
              samples := (dt *. 1000.) :: !samples;
              last := Some r;
              last_profiler := profiler
            done;
            (median !samples, Option.get !last, !last_profiler)
          in
          let base_ms, base_r, _ = measure ~arm:"off" in
          let baseline = render base_r in
          List.iter
            (fun arm ->
              let ms, r, profiler =
                if arm = "off" then (base_ms, base_r, None) else measure ~arm
              in
              if render r <> baseline then
                fail "%s n=%d domains=%d: arm %s changes the plan" name n domains
                  arm;
              (match profiler with
               | None -> ()
               | Some pr ->
                 let total = Obs.Profile.total_tasks pr in
                 if total <> r.stats.Volcano.Search_stats.tasks then
                   fail
                     "%s n=%d domains=%d: arm %s attributed %d tasks for %d \
                      executed"
                     name n domains arm total r.stats.Volcano.Search_stats.tasks);
              let x = ms /. base_ms in
              if arm <> "off" && domains = 1 then ratios := x :: !ratios;
              Printf.printf
                "  %5s n=%d |       %d | %-17s | %9.2f | %5d | %+7.1f%%\n%!" name
                n domains arm ms r.stats.Volcano.Search_stats.tasks
                (if arm = "off" then 0. else 100. *. (x -. 1.)))
            [ "off"; "profile"; "profile+flightrec" ])
        [ 1; 4 ])
    (List.concat_map
       (fun n -> [ (Workload.Chain, "chain", n); (Workload.Star, "star", n) ])
       sizes);
  let slowdown = geomean !ratios in
  Printf.printf "\n  geomean profiled slowdown (sequential arms): %.2fx\n" slowdown;
  if smoke && slowdown > 2. then
    fail "profiled slowdown %.2fx exceeds the 2x smoke gate" slowdown;
  if !failures <> [] then begin
    List.iter (Printf.printf "  FAIL: %s\n") (List.rev !failures);
    if smoke then exit 1
  end

(* ------------------------------------------------------------------ *)
(* MQO  Multi-query optimization (BENCH_mqo.json)                      *)
(* ------------------------------------------------------------------ *)

(* Sharing-ratio arms (0%, ~30%, ~70% of the batch embedding a common
   join/select core) crossed with the strategies: independent
   optimization in the shared memo (off), the Volcano-SH post-pass, and
   Volcano-RU arrival-order reuse. The off arm must be bit-identical to
   N fresh independent optimizations at 1, 2, and 4 domains, and no
   strategy may ever raise the batch cost above the independent
   baseline — [smoke] exits nonzero when either property breaks. *)
let mqo_bench ?(smoke = false) ~full () =
  header "MQO  Multi-query optimization (shared memo, materialize/reuse)";
  let count = if smoke then 6 else if full then 16 else 10 in
  let n_relations = if smoke then 5 else 6 in
  let core_relations = 3 in
  let sharings = [ 0.0; 0.3; 0.7 ] in
  Printf.printf
    "Batches of %d queries over one %d-relation catalog; a sharing-ratio arm\n\
     embeds the same selective %d-relation join core in that fraction of the\n\
     batch. Totals are estimated plan costs (seconds); \"saved\" compares the\n\
     batch against optimizing every query independently.\n\n"
    count n_relations core_relations;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let make_batch sharing =
    Workload.generate_overlapping
      (Workload.spec ~n_relations ~seed:(seed_base + 1900) ())
      ~count ~core_relations ~sharing ()
  in
  let render (plan : Relmodel.Optimizer.plan_node option) =
    match plan with
    | None -> "NONE"
    | Some p ->
      Printf.sprintf "%s|%.17g" (Relmodel.Optimizer.explain p) (Cost.total p.cost)
  in
  Printf.printf
    "  sharing | strategy   | domains | wall (ms) | independent | batch    | saved | \
     groups | mat | reuse | off identical\n";
  Printf.printf
    "  --------+------------+---------+-----------+-------------+----------+-------+-\
     -------+-----+-------+--------------\n";
  let rows =
    List.concat_map
      (fun sharing ->
        (* The independent baseline for the bit-identity gate: every
           query optimized on a fresh memo. *)
        let baseline_batch = make_batch sharing in
        let baseline_req = Relmodel.Optimizer.request baseline_batch.batch_catalog in
        let baseline =
          List.map
            (fun q ->
              render (Relmodel.Optimizer.optimize baseline_req q ~required:Phys_prop.any).plan)
            baseline_batch.queries
        in
        let arms =
          List.concat_map
            (fun strategy ->
              match strategy with
              | Mqo.Off -> List.map (fun d -> (Mqo.Off, d)) [ 1; 2; 4 ]
              | s -> [ (s, 1) ])
            [ Mqo.Off; Mqo.Volcano_sh; Mqo.Volcano_ru ]
        in
        List.map
          (fun (strategy, domains) ->
            (* A fresh batch (same seed, bit-identical queries and
               statistics) per arm: strategies register materialized
               intermediates in the catalog, so arms must not share it. *)
            let b = make_batch sharing in
            let request =
              { (Relmodel.Optimizer.request b.batch_catalog) with domains }
            in
            let queries = List.map (fun q -> (q, Phys_prop.any)) b.queries in
            let dt, report =
              time_it (fun () -> Mqo.optimize_batch ~strategy request queries)
            in
            let off_identical =
              match strategy with
              | Mqo.Off ->
                let same =
                  List.for_all2
                    (fun base (qr : Mqo.query_result) -> base = render qr.Mqo.plan)
                    baseline report.Mqo.results
                in
                if not same then
                  fail
                    "sharing %.1f: off arm at %d domains diverges from independent \
                     optimization"
                    sharing domains;
                Some same
              | _ ->
                if report.Mqo.batch_total > report.Mqo.independent_total then
                  fail
                    "sharing %.1f: %s raised batch cost above the independent baseline \
                     (%.6f > %.6f)"
                    sharing
                    (Mqo.strategy_name strategy)
                    report.Mqo.batch_total report.Mqo.independent_total;
                None
            in
            let saved_pct =
              if report.Mqo.independent_total > 0. then
                100.
                *. (report.Mqo.independent_total -. report.Mqo.batch_total)
                /. report.Mqo.independent_total
              else 0.
            in
            Printf.printf
              "  %6.0f%% | %-10s | %7d | %9.1f | %11.6f | %8.6f | %4.1f%% | %6d | %3d \
               | %5d | %s\n\
               %!"
              (100. *. sharing)
              (Mqo.strategy_name strategy)
              domains (dt *. 1000.) report.Mqo.independent_total report.Mqo.batch_total
              saved_pct report.Mqo.shared_groups report.Mqo.materialize_chosen
              report.Mqo.reuse_hits
              (match off_identical with
               | Some b -> string_of_bool b
               | None -> "-");
            ( sharing, strategy, domains, dt *. 1000., report.Mqo.independent_total,
              report.Mqo.batch_total, saved_pct, report.Mqo.shared_groups,
              report.Mqo.materialize_chosen, report.Mqo.reuse_hits, off_identical ))
          arms)
      sharings
  in
  (* The headline claim: on the sharing arms, both strategies must beat
     independent optimization strictly. Smoke keeps only the safety
     gates (bit-identity, never-regress); the full artifact records the
     improvement for EXPERIMENTS.md to quote. *)
  List.iter
    (fun (sharing, strategy, _, _, ind, batch, _, _, _, _, _) ->
      if (not smoke) && sharing >= 0.3 && strategy <> Mqo.Off && batch >= ind then
        fail "sharing %.1f: %s failed to improve on the independent baseline" sharing
          (Mqo.strategy_name strategy))
    rows;
  let oc = open_out "BENCH_mqo.json" in
  Printf.fprintf oc
    "{\n\
    \  \"cores\": %d,\n\
    \  \"count\": %d,\n\
    \  \"relations\": %d,\n\
    \  \"core_relations\": %d,\n\
    \  \"all_gates_pass\": %b,\n\
    \  \"runs\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (Domain.recommended_domain_count ())
    count n_relations core_relations (!failures = [])
    (String.concat ",\n"
       (List.map
          (fun
            (sharing, strategy, domains, ms, ind, batch, saved, groups, mat, reuse, offid)
          ->
            Printf.sprintf
              "    { \"sharing\": %.2f, \"strategy\": \"%s\", \"domains\": %d, \
               \"wall_ms\": %.2f, \"independent_total\": %.17g, \"batch_total\": \
               %.17g, \"saved_pct\": %.2f, \"mqo_shared_groups\": %d, \
               \"mqo_materialize_chosen\": %d, \"mqo_reuse_hits\": %d%s }"
              sharing
              (Mqo.strategy_name strategy)
              domains ms ind batch saved groups mat reuse
              (match offid with
               | Some b -> Printf.sprintf ", \"identical_to_independent\": %b" b
               | None -> ""))
          rows));
  close_out oc;
  Printf.printf "\n  wrote BENCH_mqo.json\n%!";
  if !failures <> [] then begin
    List.iter (Printf.printf "  FAIL: %s\n") (List.rev !failures);
    if smoke then exit 1
  end

(* ------------------------------------------------------------------ *)
(* FEEDBACK  Runtime cardinality feedback (BENCH_feedback.json)        *)
(* ------------------------------------------------------------------ *)

(* Skewed-statistics arms: the catalog's claimed row or distinct counts
   are doctored by a known factor (the stored data is untouched), the
   query is optimized against the lie and executed instrumented, the
   feedback loop corrects the statistics, and the query is re-optimized
   and re-executed. Plan quality is judged by measured work (per-operator
   tuple touches from observed cardinalities, plus pages), not estimates.
   Gates: every skewed arm reaches >= 10x estimate error; after
   correction the single-table estimates match reality (q-error <= 2);
   the undercount arm recovers strictly in measured work; the accurate
   arm installs no corrections and keeps its plan; feedback-off
   execution is bit-identical to the plain executor; the escape hatch
   replans mid-query on the undercount arm and never fires on the
   accurate one. Measured work on the other skewed arms is recorded but
   not gated: an overcounted table can push the optimizer into a plan
   that happens to measure cheaper than the estimated-best one — a
   cost-model gap the artifact documents rather than hides. [smoke]
   exits nonzero on any gate failure. *)
let feedback_bench ?(smoke = false) ~full:_ () =
  header "FEEDBACK  Runtime cardinality feedback (drift, correction, recovery)";
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let make_catalog () =
    let catalog = Catalog.create () in
    ignore
      (Catalog.add_synthetic catalog ~name:"emp"
         ~columns:
           [
             ("id", Catalog.Serial);
             ("dept_id", Catalog.Uniform_int (0, 119));
             ("salary", Catalog.Uniform_int (30_000, 150_000));
           ]
         ~rows:7_200 ~seed:7 ());
    ignore
      (Catalog.add_synthetic catalog ~name:"dept"
         ~columns:
           [ ("id", Catalog.Serial); ("budget", Catalog.Uniform_int (100_000, 5_000_000)) ]
         ~rows:1_200 ~seed:8 ());
    catalog
  in
  (* Doctor one table's claimed row count (and proportionally cap its
     distinct counts) without touching the data. *)
  let skew_rows catalog table factor =
    let tbl = Catalog.find catalog table in
    let s = tbl.Catalog.stats in
    let rc = Float.max 1. (s.Catalog.Stats.row_count *. factor) in
    let stats =
      {
        Catalog.Stats.row_count = rc;
        columns =
          List.map
            (fun (c, (cs : Catalog.Stats.column_stats)) ->
              ( c,
                {
                  cs with
                  Catalog.Stats.n_distinct =
                    Float.max 1. (Float.min cs.Catalog.Stats.n_distinct rc);
                } ))
            s.Catalog.Stats.columns;
      }
    in
    Catalog.update_stats catalog ~table ~stats ()
  in
  let skew_distinct catalog table column factor =
    let tbl = Catalog.find catalog table in
    let s = tbl.Catalog.stats in
    let stats =
      {
        s with
        Catalog.Stats.columns =
          List.map
            (fun (c, (cs : Catalog.Stats.column_stats)) ->
              if c = column then
                ( c,
                  {
                    cs with
                    Catalog.Stats.n_distinct =
                      Float.max 1. (cs.Catalog.Stats.n_distinct *. factor);
                  } )
              else (c, cs))
            s.Catalog.Stats.columns;
      }
    in
    Catalog.update_stats catalog ~table ~stats ()
  in
  let q_range =
    Logical.select
      Expr.(col "emp.salary" >% int 140_000)
      (Logical.join
         Expr.(col "emp.dept_id" =% col "dept.id")
         (Logical.get "emp") (Logical.get "dept"))
  in
  let q_eq =
    Logical.select
      Expr.(col "emp.dept_id" =% int 3)
      (Logical.join
         Expr.(col "emp.dept_id" =% col "dept.id")
         (Logical.get "emp") (Logical.get "dept"))
  in
  let arms =
    [
      ("row_undercount", (fun c -> skew_rows c "emp" 0.02), q_range, true);
      ("row_overcount", (fun c -> skew_rows c "emp" 50.), q_range, true);
      ("distinct_skew", (fun c -> skew_distinct c "emp" "emp.dept_id" 0.02), q_eq, true);
      ("accurate", (fun _ -> ()), q_range, false);
    ]
  in
  let explain_of plan = Relmodel.Optimizer.explain plan in
  (* Different plans deliver the same bag in different orders; only the
     instrumentation bit-identity gate compares arrays exactly. *)
  let bag tuples =
    let copy = Array.copy tuples in
    Array.sort compare copy;
    copy
  in
  let optimize catalog q =
    match (Relmodel.Optimizer.optimize (Relmodel.Optimizer.request catalog) q
             ~required:Phys_prop.any).plan with
    | Some p -> p
    | None -> failwith "feedback bench: optimizer found no plan"
  in
  (* Only proven drift counts: an early-terminated node's count is a
     lower bound, not a cardinality (drift_nodes at threshold 1 is
     exactly the proven-drift filter). *)
  let proven nodes = Feedback.drift_nodes ~threshold:1. nodes in
  let max_q nodes =
    List.fold_left
      (fun m (n : Feedback.node_obs) -> Float.max m n.Feedback.ratio)
      1. (proven nodes)
  in
  (* Estimate accuracy over the single-table subtrees (scans and
     filters) — the nodes the correction rule can actually fix; join
     estimates are beyond a distinct/range estimator. *)
  let single_table_q nodes =
    List.fold_left
      (fun m (n : Feedback.node_obs) ->
        match n.Feedback.relations with
        | [ _ ] -> Float.max m n.Feedback.ratio
        | _ -> m)
      1. (proven nodes)
  in
  let work catalog plan =
    let phys = Relmodel.Optimizer.to_physical plan in
    match Feedback.observed_run catalog phys with
    | Feedback.Complete (tuples, _, io, nodes) ->
      (Feedback.measured_work phys nodes ~io, nodes, tuples)
    | Feedback.Aborted _ -> assert false (* no escape factor armed *)
  in
  Printf.printf
    "  arm            | max q-error | work before | work after | recovered | \
     corrections | escape replans\n";
  Printf.printf
    "  ---------------+-------------+-------------+------------+-----------+-\
     ------------+---------------\n";
  let rows =
    List.map
      (fun (name, skew, q, expect_drift) ->
        (* Optimize and execute against the lie. *)
        let catalog = make_catalog () in
        skew catalog;
        let before_plan = optimize catalog q in
        let work_before, nodes_before, tuples_before = work catalog before_plan in
        let max_q = max_q nodes_before in
        (* Bit-identity of the instrumented run against the plain executor. *)
        let plain, _, _ =
          Executor.run catalog (Relmodel.Optimizer.to_physical before_plan)
        in
        if plain <> tuples_before then
          fail "%s: instrumented execution is not bit-identical to Executor.run" name;
        (* Close the loop: corrections, then re-optimize and re-execute. *)
        let outcome =
          Feedback.run_plan
            (Relmodel.Optimizer.request catalog)
            q ~required:Phys_prop.any before_plan
        in
        let corrections = List.length outcome.Feedback.report.Feedback.corrections in
        let after_plan = optimize catalog q in
        let work_after, nodes_after, tuples_after = work catalog after_plan in
        if bag tuples_after <> bag tuples_before then
          fail "%s: re-optimized plan changed the query result" name;
        (* Escape hatch on a fresh copy of the same skewed catalog. *)
        let escape_catalog = make_catalog () in
        skew escape_catalog;
        let escape_outcome =
          Feedback.run
            ~config:(Feedback.config ~escape_factor:4. ())
            (Relmodel.Optimizer.request escape_catalog)
            q ~required:Phys_prop.any
        in
        let replans = escape_outcome.Feedback.report.Feedback.replans in
        if bag escape_outcome.Feedback.tuples <> bag tuples_before then
          fail "%s: escape-hatch execution changed the query result" name;
        let recovered = work_after < work_before in
        let st_before = single_table_q nodes_before in
        let st_after = single_table_q nodes_after in
        Printf.printf
          "  %-14s | %10.1fx | %11.0f | %10.0f | %-9b | %11d | %d%s\n%!" name max_q
          work_before work_after recovered corrections replans
          (if escape_outcome.Feedback.report.Feedback.escaped then " (escaped)" else "");
        (name, expect_drift, max_q, work_before, work_after, recovered, corrections,
         escape_outcome.Feedback.report.Feedback.escaped, replans,
         explain_of before_plan = explain_of after_plan, st_before, st_after))
      arms
  in
  List.iter
    (fun (name, expect_drift, max_q, before, after, recovered, corrections, escaped,
          _replans, same_plan, st_before, st_after) ->
      if expect_drift && max_q < 10. then
        fail "%s: expected >= 10x estimate error, measured %.1fx" name max_q;
      if expect_drift && st_after > 2. then
        fail "%s: single-table estimates did not converge (%.1fx -> %.1fx)" name
          st_before st_after;
      match name with
      | "row_undercount" ->
        if not recovered then
          fail "row_undercount: re-optimized plan did not strictly lower measured work \
                (%.0f -> %.0f)"
            before after;
        if not escaped then fail "row_undercount: escape hatch did not fire at 4x"
      | "accurate" ->
        if corrections <> 0 then
          fail "accurate: %d corrections installed on accurate statistics" corrections;
        if not same_plan then fail "accurate: plan changed without statistics drift";
        if escaped then fail "accurate: escape hatch fired on accurate statistics"
      | _ -> ())
    rows;
  let oc = open_out "BENCH_feedback.json" in
  Printf.fprintf oc
    "{\n\
    \  \"cores\": %d,\n\
    \  \"drift_threshold\": 2.0,\n\
    \  \"escape_factor\": 4.0,\n\
    \  \"all_gates_pass\": %b,\n\
    \  \"arms\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (Domain.recommended_domain_count ())
    (!failures = [])
    (String.concat ",\n"
       (List.map
          (fun (name, _, max_q, before, after, recovered, corrections, escaped, replans,
                same_plan, st_before, st_after) ->
            Printf.sprintf
              "    { \"arm\": \"%s\", \"max_q_error\": %.2f, \"work_before\": %.17g, \
               \"work_after\": %.17g, \"recovered\": %b, \"corrections\": %d, \
               \"escaped\": %b, \"escape_replans\": %d, \"plan_unchanged\": %b, \
               \"single_table_q_before\": %.2f, \"single_table_q_after\": %.2f }"
              name max_q before after recovered corrections escaped replans same_plan
              st_before st_after)
          rows));
  close_out oc;
  Printf.printf "\n  wrote BENCH_feedback.json\n%!";
  if !failures <> [] then begin
    List.iter (Printf.printf "  FAIL: %s\n") (List.rev !failures);
    if smoke then exit 1
  end

(* ------------------------------------------------------------------ *)
(* SCALEUP  Dynamic promise + anytime search (BENCH_scaleup.json)      *)
(* ------------------------------------------------------------------ *)

(* Plan-cost-vs-budget curves on 6-18-relation join graphs (clique,
   cycle, grid, snowflake; skewed statistics, correlated predicates),
   four arms per cell: static vs dynamic promise ordering, each with
   the guided pruning layer on and off. Every arm of a cell is ONE
   search observed at a ladder of cumulative task budgets (the engine's
   anytime resume semantics), so the whole curve costs only the largest
   budget. Reference cells (<= 10 relations) get an extra effectively
   unbounded rung: there the search completes and the final plan must
   be bit-identical across all four arms — dynamic ordering may only
   change how fast incumbents arrive, never which plan wins. [smoke]
   shrinks the grid for CI and exits nonzero when a reference arm
   diverges or the dynamic arm reaches its first incumbent later than
   static on a clique cell. *)
let scaleup_bench ?(smoke = false) ~full () =
  header "SCALEUP  Dynamic promise ordering + anytime search";
  Printf.printf
    "Per cell (topology x relations) and arm: tasks to first incumbent, tasks to\n\
     an incumbent within 10%% of the cell's best final cost, and the best-so-far\n\
     cost at each budget rung. Reference cells run to completion; their plans\n\
     must be bit-identical across arms.\n\n";
  let cells =
    (* (shape, name, relations, reference). Reference cells are sized so
       the exhaustive search finishes in seconds; ladder cells are the
       10-20-relation regime where only budgeted search is feasible. *)
    if smoke then
      [
        (Workload.Clique, "clique", 6, true);
        (Workload.Cycle, "cycle", 8, true);
        (Workload.Snowflake, "snowflake", 8, true);
        (Workload.Clique, "clique", 12, false);
      ]
    else if full then
      [
        (Workload.Clique, "clique", 8, true);
        (Workload.Cycle, "cycle", 10, true);
        (Workload.Grid, "grid", 9, true);
        (Workload.Snowflake, "snowflake", 10, true);
        (Workload.Clique, "clique", 12, false);
        (Workload.Cycle, "cycle", 14, false);
        (Workload.Grid, "grid", 16, false);
        (Workload.Snowflake, "snowflake", 18, false);
      ]
    else
      [
        (Workload.Clique, "clique", 6, true);
        (Workload.Cycle, "cycle", 8, true);
        (Workload.Grid, "grid", 9, true);
        (Workload.Snowflake, "snowflake", 8, true);
        (Workload.Clique, "clique", 12, false);
      ]
  in
  let ladder =
    if smoke then [ 1_000; 4_000; 16_000; 64_000 ]
    else [ 2_000_000; 4_000_000; 8_000_000; 16_000_000 ]
  in
  (* Cumulative, so this rung just lets reference cells run to the end. *)
  let exhaustive_cap = 1_000_000_000 in
  let arms =
    [
      ("static", Volcano.Search.Static, true);
      ("dynamic", Volcano.Search.Dynamic, true);
      ("static-unguided", Volcano.Search.Static, false);
      ("dynamic-unguided", Volcano.Search.Dynamic, false);
    ]
  in
  let render (result : Relmodel.Optimizer.result) =
    match result.plan with
    | None -> "NONE"
    | Some p ->
      Printf.sprintf "%s|%.17g" (Relmodel.Optimizer.explain p) (Cost.total p.cost)
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let opt_str = function None -> "-" | Some t -> string_of_int t in
  Printf.printf
    "  cell               | arm              | wall (ms) | first inc | within 10%% |   best at | final cost | complete\n";
  Printf.printf
    "  -------------------+------------------+-----------+-----------+------------+-----------+------------+---------\n";
  let cell_rows =
    List.map
      (fun (shape, name, n, reference) ->
        let q =
          Workload.generate
            (Workload.spec ~shape ~skew:0.7 ~correlation:0.85 ~n_relations:n
               ~seed:(seed_base + (1700 * n)) ())
        in
        let budgets = ladder @ if reference then [ exhaustive_cap ] else [] in
        let measured =
          List.map
            (fun (arm, promise, guided) ->
              let request =
                {
                  (Relmodel.Optimizer.request q.catalog) with
                  restore_columns = false;
                  guided_pruning = guided;
                  promise;
                }
              in
              let dt, a =
                time_it (fun () ->
                    Relmodel.Optimizer.optimize_anytime request ~budgets q.logical
                      ~required:Phys_prop.any)
              in
              (arm, promise, guided, dt *. 1000., a))
            arms
        in
        (* The 10% level is relative to the best final cost any arm of
           this cell reached (for reference cells: the optimum). *)
        let final_cost (a : Relmodel.Optimizer.anytime) =
          Option.map (fun p -> Cost.total (Relmodel.Optimizer.plan_cost p))
            a.an_result.plan
        in
        let best_final =
          List.fold_left
            (fun acc (_, _, _, _, a) ->
              match final_cost a with Some c -> Float.min acc c | None -> acc)
            infinity measured
        in
        let threshold = 1.1 *. best_final in
        let baseline = ref "" in
        let arm_rows =
          List.map
            (fun (arm, _, guided, ms, (a : Relmodel.Optimizer.anytime)) ->
              let tasks_to_first =
                match a.an_incumbents with [] -> None | (t, _) :: _ -> Some t
              in
              let tasks_to_10 =
                Option.map fst
                  (List.find_opt
                     (fun (_, c) -> Cost.total c <= threshold)
                     a.an_incumbents)
              in
              (* When the arm's best plan was first in hand — the
                 anytime point after which further tasks only prove
                 optimality or fail to improve. *)
              let tasks_to_best =
                match List.rev a.an_incumbents with
                | (t, _) :: _ -> Some t
                | [] -> None
              in
              if reference then begin
                let rendered = render a.an_result in
                if not a.an_result.complete then
                  fail "%s n=%d: arm %s did not complete its exhaustive rung" name n
                    arm;
                if arm = "static" then baseline := rendered;
                if rendered <> !baseline then
                  fail "%s n=%d: arm %s plan diverges from the static reference" name
                    n arm
              end;
              ignore guided;
              Printf.printf
                "  %9s n=%-7d | %-16s | %9.1f | %9s | %10s | %9s | %10.4g | %b\n%!"
                name n arm ms (opt_str tasks_to_first) (opt_str tasks_to_10)
                (opt_str tasks_to_best)
                (Option.value (final_cost a) ~default:nan)
                a.an_result.complete;
              (arm, ms, tasks_to_first, tasks_to_10, tasks_to_best, a))
            measured
        in
        (* Anytime gate: on clique cells the dynamic guided arm must not
           reach its first incumbent later than the static guided arm. *)
        let first_of arm_name =
          List.find_map
            (fun (arm, _, first, _, _, _) -> if arm = arm_name then first else None)
            arm_rows
        in
        if name = "clique" then begin
          match (first_of "static", first_of "dynamic") with
          | Some s, Some d ->
            if d > s then
              fail "clique n=%d: dynamic first incumbent at %d tasks, static at %d"
                n d s
          | Some s, None ->
            fail "clique n=%d: dynamic arm found no incumbent (static at %d)" n s
          | None, _ -> ()
        end;
        (name, n, reference, arm_rows))
      cells
  in
  (* Headline: the task savings of dynamic ordering — tasks until the
     arm's best plan was in hand. *)
  List.iter
    (fun (name, n, _, arm_rows) ->
      let best arm_name =
        List.find_map
          (fun (arm, _, _, _, tb, _) -> if arm = arm_name then tb else None)
          arm_rows
      in
      match (best "static", best "dynamic") with
      | Some s, Some d ->
        Printf.printf
          "  %s n=%d: tasks until the best plan was found: static %d, dynamic %d \
           (%.2fx)\n"
          name n s d
          (Float.of_int s /. Float.of_int d)
      | _ -> ())
    cell_rows;
  let json_opt = function None -> "null" | Some t -> string_of_int t in
  let oc = open_out "BENCH_scaleup.json" in
  Printf.fprintf oc
    "{\n  \"cores\": %d,\n  \"all_reference_cells_identical\": %b,\n  \"cells\": [\n%s\n  ]\n}\n"
    (Domain.recommended_domain_count ())
    (not
       (List.exists
          (fun f ->
            (* only plan-identity failures flip the flag *)
            let has sub s =
              let ls = String.length s and lsub = String.length sub in
              let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
              go 0
            in
            has "diverges" f || has "exhaustive rung" f)
          !failures))
    (String.concat ",\n"
       (List.map
          (fun (name, n, reference, arm_rows) ->
            Printf.sprintf
              "    { \"workload\": \"%s\", \"relations\": %d, \"reference\": %b, \
               \"arms\": [\n%s\n    ] }"
              name n reference
              (String.concat ",\n"
                 (List.map
                    (fun (arm, ms, first, t10, tbest, (a : Relmodel.Optimizer.anytime))
                    ->
                      let s = a.an_result.stats in
                      Printf.sprintf
                        "      { \"arm\": \"%s\", \"wall_ms\": %.2f, \
                         \"tasks_to_first_incumbent\": %s, \
                         \"tasks_to_within_10pct\": %s, \"tasks_to_best\": %s, \
                         \"final_cost\": %s, \
                         \"complete\": %b, \"promise_evals\": %d, \
                         \"moves_reordered\": %d, \"anytime_improvements\": %d, \
                         \"curve\": [ %s ] }"
                        arm ms (json_opt first) (json_opt t10) (json_opt tbest)
                        (match a.an_result.plan with
                         | Some p ->
                           Printf.sprintf "%.17g"
                             (Cost.total (Relmodel.Optimizer.plan_cost p))
                         | None -> "null")
                        a.an_result.complete s.promise_evals s.moves_reordered
                        s.anytime_improvements
                        (String.concat ", "
                           (List.map
                              (fun (p : Relmodel.Optimizer.anytime_point) ->
                                Printf.sprintf
                                  "{ \"budget\": %d, \"tasks\": %d, \"cost\": %s, \
                                   \"complete\": %b }"
                                  p.at_budget p.at_tasks
                                  (match p.at_cost with
                                   | Some c -> Printf.sprintf "%.17g" (Cost.total c)
                                   | None -> "null")
                                  p.at_complete)
                              a.an_points)))
                    arm_rows)))
          cell_rows));
  close_out oc;
  Printf.printf "\n  wrote BENCH_scaleup.json\n%!";
  if !failures <> [] then begin
    List.iter (Printf.printf "  FAIL: %s\n") (List.rev !failures);
    if smoke then exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment.            *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "MICRO  Bechamel micro-benchmarks (one test per experiment)";
  let open Bechamel in
  let query n = Workload.generate (Workload.spec ~n_relations:n ~seed:77 ()) in
  let q4 = query 4 and q6 = query 6 in
  let ord_required (q : Workload.query) =
    Phys_prop.sorted (Sort_order.asc [ List.hd q.relations ^ ".jk1" ])
  in
  let oo_store : Oomodel.Oo_algebra.store =
    [
      {
        cname = "emp";
        extent_size = 10_000.;
        object_bytes = 120;
        references = [ ("dept", "dept") ];
      };
      { cname = "dept"; extent_size = 100.; object_bytes = 64; references = [] };
    ]
  in
  let oo_query =
    Volcano.Tree.node
      (Oomodel.Oo_algebra.O_select ([ "dept" ], 0.1))
      [ Volcano.Tree.node (Oomodel.Oo_algebra.Extent "emp") [] ]
  in
  let tests =
    [
      Test.make ~name:"f4-volcano-4rel"
        (Staged.stage (fun () -> volcano_optimize q4 ~required:Phys_prop.any));
      Test.make ~name:"f4-volcano-6rel"
        (Staged.stage (fun () -> volcano_optimize q6 ~required:Phys_prop.any));
      Test.make ~name:"f4-exodus-4rel"
        (Staged.stage (fun () ->
             Exodus.optimize ~catalog:q4.catalog ~max_nodes:40_000 q4.logical
               ~required:Phys_prop.any));
      Test.make ~name:"a2-no-pruning-4rel"
        (Staged.stage (fun () -> volcano_optimize ~pruning:false q4 ~required:Phys_prop.any));
      Test.make ~name:"a3-orderby-4rel"
        (Staged.stage (fun () -> volcano_optimize q4 ~required:(ord_required q4)));
      Test.make ~name:"a4-leftdeep-6rel"
        (Staged.stage (fun () ->
             volcano_optimize
               ~flags:{ Relmodel.Rel_model.default_flags with left_deep_only = true }
               q6 ~required:Phys_prop.any));
      Test.make ~name:"oo-assembledness"
        (Staged.stage (fun () ->
             Oomodel.Oo_model.optimize ~store:oo_store oo_query
               ~required:Oomodel.Oo_algebra.Path_set.empty));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %12.2f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "full" args in
  let smoke = List.mem "smoke" args in
  let args = List.filter (fun a -> a <> "full" && a <> "smoke") args in
  let all = args = [] || args = [ "all" ] in
  let want name = all || List.mem name args in
  let t0 = Unix.gettimeofday () in
  if want "f4" then f4 ~full ();
  if want "a1" then a1 ~full ();
  if want "a2" then a2 ~full ();
  if want "a3" then a3 ~full ();
  if want "a4" then a4 ~full ();
  if want "a5" then a5 ~full ();
  if want "a6" then a6 ~full ();
  if want "a7" then a7 ~full ();
  if want "a8" then a8 ~full ();
  if want "a9" then a9 ~full ();
  if want "a10" then a10 ~full ();
  if want "plansrv" then plansrv_bench ~full ();
  if want "parsearch" then parsearch_bench ~smoke ~full ();
  if want "pruning" then pruning_bench ~smoke ~full ();
  if want "obs" then obs_bench ~smoke ~full ();
  if want "obsprof" then obsprof_bench ~smoke ~full ();
  if want "mqo" then mqo_bench ~smoke ~full ();
  if want "feedback" then feedback_bench ~smoke ~full ();
  if want "scaleup" then scaleup_bench ~smoke ~full ();
  if List.mem "micro" args then micro ();
  Printf.printf "\nTotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
