(** The generated relational optimizer, packaged behind a concrete API:
    build the model from a catalog, apply the generator (the
    {!Volcano.Search.Make} functor), optimize one query, and return the
    winning plan with its cost and search statistics. A fresh memo is
    used per query, as in the paper. *)

(** A plan annotated with the optimizer's per-node promises. *)
type plan_node = {
  alg : Relalg.Physical.alg;
  children : plan_node list;
  props : Relalg.Phys_prop.t;  (** physical properties the node delivers *)
  cost : Relalg.Cost.t;  (** total cost of the subtree *)
}

type result = {
  plan : plan_node option;
      (** [None]: no plan within the cost limit (or, under an exhausted
          budget, none found yet) *)
  complete : bool;
      (** [false]: the task/time budget ran out; [plan] is the best
          found so far (anytime optimization) *)
  tasks_run : int;  (** engine tasks this optimization executed *)
  stats : Volcano.Search_stats.t;
  memo_groups : int;
  memo_mexprs : int;
  explain : string option;
      (** winner provenance rendered from the memo — per-node costs,
          producing rules, and losing alternatives with reasons — when
          the request's [explain] flag was on and a plan was found *)
}

type request = {
  catalog : Catalog.t;
  params : Relalg.Cost_model.params;
  flags : Rel_model.flags;
  pruning : bool;
  guided_pruning : bool;
      (** layer group cost lower bounds on top of Figure-2 pruning:
          kill goals whose bound exceeds their limit and tighten input
          limits by unresolved siblings' bounds (default [true]; no
          effect when [pruning] is off) *)
  max_moves : int option;
  limit : Relalg.Cost.t option;  (** cost limit (Figure 2's Limit); [None] = infinity *)
  max_tasks : int option;  (** deterministic step budget; [None] = unlimited *)
  max_millis : float option;  (** wall-clock budget; [None] = unlimited *)
  tracer : Obs.Trace.t option;
      (** hierarchical span collector for the search (goal, task, and
          phase spans, covering the parallel phase on per-worker
          tracks); export with {!Obs.Chrome_trace} *)
  profiler : Obs.Profile.t option;
      (** per-rule / per-enforcer / per-operator effort attribution
          (tasks, mexprs, plans won, pruned goals, wasted work,
          cumulative task time), collected per worker track and merged
          post-run. Plan-inert: attaching a profiler never changes the
          found plan. *)
  recorder : Obs.Flight_recorder.t option;
      (** always-on flight recorder of recent engine events in
          fixed-size per-worker rings, dumped post-mortem on abnormal
          ends (budget pause, stall-abandon). Plan-inert. *)
  explain : bool;
      (** record losing alternatives during the search and render winner
          provenance into the result's [explain] field *)
  restore_columns : bool;
      (** append a projection restoring the logical column order when
          join commutativity reordered the output (default [true]; plan
          benchmarks turn it off so both comparands are judged on the
          bare plan) *)
  domains : int;
      (** OCaml 5 domains for intra-query parallel search (default [1] =
          sequential). The final plan and cost are bit-identical at any
          domain count; see {!Volcano.Search.Make.run}. *)
  scheduler : Volcano.Search.scheduler;
      (** how the parallel phase schedules goal tasks over domains
          (default {!Volcano.Search.Stealing}: per-domain work-stealing
          deques with duplicate-killing claim backoff;
          {!Volcano.Search.Seeded} is the shared-counter ablation arm).
          No effect on the found plan. *)
  promise : Volcano.Search.promise_mode;
      (** how each goal's assembled moves are ordered for pursuit
          (default {!Volcano.Search.Dynamic}: estimate-aware scoring
          from the model's local cost estimates and the input groups'
          cost lower bounds; {!Volcano.Search.Static} is the paper's
          per-rule promise integers, kept as the ablation arm). Under
          unbounded budgets the found plan is bit-identical either way;
          only the order incumbents arrive in changes. *)
}

val request : Catalog.t -> request
(** Default request: full paper configuration, pruning on, exhaustive
    moves, no cost limit. *)

val optimize :
  request -> Relalg.Logical.expr -> required:Relalg.Phys_prop.t -> result
(** One-shot optimization on a fresh memo: generate the optimizer for
    the request's catalog and flags, insert the query, and search for
    the cheapest plan delivering [required]. *)

(** {1 Anytime ladder: plan-cost-vs-budget curves} *)

(** One rung of an anytime ladder: the state of the search when its
    cumulative task budget reached [at_budget]. *)
type anytime_point = {
  at_budget : int;  (** cumulative task budget of this rung *)
  at_tasks : int;  (** tasks actually executed when the rung was read *)
  at_cost : Relalg.Cost.t option;  (** best-so-far plan cost, if any *)
  at_complete : bool;  (** the search finished within this rung's budget *)
}

type anytime = {
  an_points : anytime_point list;  (** one per requested budget, ascending *)
  an_incumbents : (int * Relalg.Cost.t) list;
      (** [(tasks, cost)] at every strict improvement of the root
          goal's best-so-far plan, oldest first: tasks-to-first-
          incumbent is the head's first component *)
  an_result : result;  (** the state after the last rung *)
}

val optimize_anytime :
  request -> budgets:int list -> Relalg.Logical.expr ->
  required:Relalg.Phys_prop.t -> anytime
(** Run ONE search, pausing at each cumulative task budget of [budgets]
    (sorted and deduplicated) to record the best-so-far cost: the
    plan-cost-vs-budget curve of the run, at the total price of the
    largest budget. Drives the sequential engine; [domains] is
    ignored. *)

val to_physical : plan_node -> Relalg.Physical.plan
(** Strip annotations for execution. *)

val plan_cost : plan_node -> Relalg.Cost.t
(** Total cost of the plan (the root node's subtree cost). *)

val pp_plan : Format.formatter -> plan_node -> unit
(** Indented rendering with per-node properties and costs. *)

val explain : plan_node -> string
(** Multi-line EXPLAIN rendering with properties and costs. *)

(** {1 Optimizer sessions: longer-lived partial results}

    The paper reinitializes the memo per query but flags "research into
    longer-lived partial results" (§3). A session keeps one memo across
    queries on the same catalog: equivalence classes, winners, and
    failures for shared subexpressions are reused, so similar queries
    optimize faster. *)

type session
(** One memo kept alive across queries on the same catalog. *)

val session : request -> session
(** Create a session; the request's configuration (including
    [domains]) applies to every optimization in it. *)

val optimize_in :
  session -> Relalg.Logical.expr -> required:Relalg.Phys_prop.t -> result
(** Like {!optimize} but accumulating in the session's memo. Statistics
    are cumulative across the session ({!Volcano.Search_stats.diff}
    recovers per-query deltas). Sessions honor the request's
    [restore_columns] exactly as {!optimize} does. *)

val session_request : session -> request
(** The request the session was created from (used by the plan service
    to renew sessions when the catalog changes). *)
