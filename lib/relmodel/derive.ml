open Relalg

let agg_type (input : Schema.t) (a : Logical.agg) =
  match a.func, a.column with
  | Logical.Count, _ -> Schema.TInt
  | Logical.Avg, _ -> Schema.TFloat
  | (Logical.Sum | Logical.Min | Logical.Max), Some col -> (Schema.find input col).ty
  | (Logical.Sum | Logical.Min | Logical.Max), None ->
    invalid_arg "Derive: aggregate other than count requires a column"

let op registry (o : Logical.op) (inputs : Logical_props.t list) : Logical_props.t =
  let in1 () = match inputs with [ i ] -> i | _ -> invalid_arg "Derive.op: unary arity" in
  let in2 () =
    match inputs with [ l; r ] -> (l, r) | _ -> invalid_arg "Derive.op: binary arity"
  in
  match o with
  | Logical.Get name -> Catalog.base_props (Catalog.find registry name)
  | Logical.Select pred ->
    let i = in1 () in
    let sel = Catalog.Selectivity.predicate i pred in
    Logical_props.make ~schema:i.schema ~card:(i.card *. sel) ~distincts:i.distincts
      ~ranges:i.ranges ~relations:i.relations ~grouped:i.grouped ()
  | Logical.Project cols ->
    let i = in1 () in
    let schema = Schema.project i.schema cols in
    let keep assoc = List.filter (fun (c, _) -> Schema.mem schema c) assoc in
    Logical_props.make ~schema ~card:i.card ~distincts:(keep i.distincts)
      ~ranges:(keep i.ranges) ~relations:i.relations ~grouped:i.grouped ()
  | Logical.Join pred ->
    let l, r = in2 () in
    let sel = Catalog.Selectivity.join ~left:l ~right:r pred in
    Logical_props.make
      ~schema:(Schema.concat l.schema r.schema)
      ~card:(l.card *. r.card *. sel)
      ~distincts:(l.distincts @ r.distincts)
      ~ranges:(l.ranges @ r.ranges)
      ~relations:(l.relations @ r.relations)
      ~grouped:(l.grouped || r.grouped) ()
  | Logical.Union ->
    let l, r = in2 () in
    Logical_props.make ~schema:l.schema ~card:(l.card +. r.card) ~distincts:l.distincts
      ~ranges:l.ranges ~relations:(l.relations @ r.relations)
      ~grouped:(l.grouped || r.grouped) ()
  | Logical.Intersect ->
    let l, r = in2 () in
    Logical_props.make ~schema:l.schema
      ~card:(Float.min l.card r.card /. 2.)
      ~distincts:l.distincts ~ranges:l.ranges ~relations:(l.relations @ r.relations)
      ~grouped:(l.grouped || r.grouped) ()
  | Logical.Difference ->
    let l, r = in2 () in
    Logical_props.make ~schema:l.schema ~card:(l.card /. 2.) ~distincts:l.distincts
      ~ranges:l.ranges ~relations:(l.relations @ r.relations)
      ~grouped:(l.grouped || r.grouped) ()
  | Logical.Group_by (keys, aggs) ->
    let i = in1 () in
    let key_schema = Schema.project i.schema keys in
    let agg_schema =
      Array.of_list
        (List.map (fun a -> Schema.attribute (Logical.agg_result_name a) (agg_type i.schema a)) aggs)
    in
    let schema = Schema.concat key_schema agg_schema in
    let groups =
      List.fold_left (fun acc k -> acc *. Logical_props.distinct_of i k) 1. keys
    in
    let card = Float.max 1. (Float.min i.card groups) in
    let distincts =
      List.filter_map
        (fun (c, d) -> if Schema.mem key_schema c then Some (c, Float.min d card) else None)
        i.distincts
    in
    Logical_props.make ~schema ~card ~distincts ~relations:i.relations ~grouped:true ()

let rec expr registry (e : Logical.expr) =
  op registry e.op (List.map (expr registry) e.inputs)
