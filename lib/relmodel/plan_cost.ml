open Relalg

let derive_alg catalog (alg : Physical.alg) (inputs : Logical_props.t list) :
    Logical_props.t =
  let child i = List.nth inputs i in
  match alg with
  | Physical.Table_scan t | Physical.Scan_materialized t ->
    Catalog.base_props (Catalog.find catalog t)
  | Physical.Index_scan (t, _, pred) ->
    Derive.op catalog (Logical.Select pred) [ Catalog.base_props (Catalog.find catalog t) ]
  | Physical.Filter pred -> Derive.op catalog (Logical.Select pred) [ child 0 ]
  | Physical.Project_cols cols -> Derive.op catalog (Logical.Project cols) [ child 0 ]
  | Physical.Nested_loop_join pred | Physical.Merge_join (_, pred)
  | Physical.Hash_join (_, pred) ->
    Derive.op catalog (Logical.Join pred) [ child 0; child 1 ]
  | Physical.Hash_join_project (_, pred, cols) ->
    Derive.op catalog (Logical.Project cols)
      [ Derive.op catalog (Logical.Join pred) [ child 0; child 1 ] ]
  | Physical.Sort _ -> child 0
  | Physical.Hash_dedup | Physical.Sort_dedup _ | Physical.Materialize _ -> child 0
  | Physical.Repartition _ | Physical.Gather | Physical.Merge_gather _ -> child 0
  | Physical.Merge_union | Physical.Hash_union ->
    Derive.op catalog Logical.Union [ child 0; child 1 ]
  | Physical.Merge_intersect | Physical.Hash_intersect ->
    Derive.op catalog Logical.Intersect [ child 0; child 1 ]
  | Physical.Merge_difference | Physical.Hash_difference ->
    Derive.op catalog Logical.Difference [ child 0; child 1 ]
  | Physical.Stream_aggregate (keys, aggs) | Physical.Hash_aggregate (keys, aggs) ->
    Derive.op catalog (Logical.Group_by (keys, aggs)) [ child 0 ]

let rec props catalog (p : Physical.plan) : Logical_props.t =
  derive_alg catalog p.alg (List.map (props catalog) p.children)

let estimate catalog ?(params = Cost_model.default) (plan : Physical.plan) : Cost.t =
  let rec go (p : Physical.plan) : Cost.t * Logical_props.t =
    let results = List.map go p.children in
    let input_costs = List.map fst results and input_props = List.map snd results in
    let output = derive_alg catalog p.alg input_props in
    let local = Cost_model.cost params p.alg ~inputs:input_props ~output in
    (List.fold_left Cost.add local input_costs, output)
  in
  fst (go plan)
