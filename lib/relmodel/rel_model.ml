open Relalg
module Rule = Volcano.Rule

module type REL_MODEL =
  Volcano.Signatures.MODEL
    with type op = Logical.op
     and type alg = Physical.alg
     and type logical_props = Logical_props.t
     and type phys_props = Phys_prop.t
     and type cost = Cost.t

type flags = {
  alternatives : bool;
  left_deep_only : bool;
  order_enforcer : bool;
  cartesian : bool;
}

let default_flags =
  { alternatives = true; left_deep_only = false; order_enforcer = true; cartesian = true }

let rec to_tree (e : Logical.expr) = Volcano.Tree.node e.op (List.map to_tree e.inputs)

(* ---------------------------------------------------------------------- *)
(* Pattern helpers                                                          *)
(* ---------------------------------------------------------------------- *)

let is_join = function Logical.Join _ -> true | _ -> false
let is_get = function Logical.Get _ -> true | _ -> false
let is_select = function Logical.Select _ -> true | _ -> false
let is_project = function Logical.Project _ -> true | _ -> false
let is_group_by = function Logical.Group_by _ -> true | _ -> false
let is_union = function Logical.Union -> true | _ -> false
let is_intersect = function Logical.Intersect -> true | _ -> false
let is_difference = function Logical.Difference -> true | _ -> false

let join_pattern = Rule.Op (is_join, [ Rule.Any; Rule.Any ])

(* A conjunct mentions a schema "alone" when every column it references
   resolves there. *)
let refers_within schema conj = Expr.refers_only_to schema conj

(* ---------------------------------------------------------------------- *)
(* Transformation rules                                                     *)
(* ---------------------------------------------------------------------- *)

(* Join commutativity: JOIN(p, A, B) == JOIN(p, B, A). *)
let join_commute : (Logical.op, Logical_props.t) Rule.transform =
  {
    t_name = "join-commute";
    t_promise = 1;
    t_pattern = join_pattern;
    t_apply =
      (fun ~lookup:_ binding ->
        match binding with
        | Rule.Node (Logical.Join p, [ a; b ]) -> [ Rule.Node (Logical.Join p, [ b; a ]) ]
        | _ -> []);
  }

(* Join associativity (Figure 3): JOIN(p1, JOIN(p2, A, B), C) ==
   JOIN(top, A, JOIN(bottom, B, C)), redistributing the conjuncts of
   p1 AND p2 by the schemas they reference. The inner JOIN(bottom,B,C)
   is expression "C" of Figure 3: it requires a new equivalence
   class. *)
let join_assoc ~cartesian : (Logical.op, Logical_props.t) Rule.transform =
  {
    t_name = "join-assoc";
    t_promise = 1;
    t_pattern = Rule.Op (is_join, [ join_pattern; Rule.Any ]);
    t_apply =
      (fun ~lookup binding ->
        match binding with
        | Rule.Node
            ( Logical.Join p1,
              [ Rule.Node (Logical.Join p2, [ a; b ]); (Rule.Group gc as c) ] ) ->
          let group_of = function
            | Rule.Group g -> g
            | Rule.Node _ ->
              (* Patterns bottom out in Any, so A and B are groups. *)
              assert false
          in
          let sb = (lookup (group_of b)).Logical_props.schema in
          let sc = (lookup gc).Logical_props.schema in
          let top, bottom = Rewrites.assoc_split ~p1 ~p2 ~schema_b:sb ~schema_c:sc in
          if
            (not cartesian)
            && not (List.exists (Rewrites.links_schemas sb sc) (Expr.conjuncts bottom))
          then []
          else
            [
              Rule.Node
                (Logical.Join top, [ a; Rule.Node (Logical.Join bottom, [ b; c ]) ]);
            ]
        | _ -> []);
  }

(* Selection cascade: SELECT(p1, SELECT(p2, A)) == SELECT(p1 AND p2, A). *)
let select_merge : (Logical.op, Logical_props.t) Rule.transform =
  {
    t_name = "select-merge";
    t_promise = 1;
    t_pattern = Rule.Op (is_select, [ Rule.Op (is_select, [ Rule.Any ]) ]);
    t_apply =
      (fun ~lookup:_ binding ->
        match binding with
        | Rule.Node (Logical.Select p1, [ Rule.Node (Logical.Select p2, [ a ]) ]) ->
          [ Rule.Node (Logical.Select (Expr.conjoin (Expr.conjuncts p1 @ Expr.conjuncts p2)), [ a ]) ]
        | _ -> []);
  }

(* Selection pushdown: SELECT(p, JOIN(jp, A, B)) pushes each conjunct of
   p to the input whose schema covers it, merging the rest into the join
   predicate. *)
let select_push_join : (Logical.op, Logical_props.t) Rule.transform =
  {
    t_name = "select-push-join";
    t_promise = 1;
    t_pattern = Rule.Op (is_select, [ join_pattern ]);
    t_apply =
      (fun ~lookup binding ->
        match binding with
        | Rule.Node
            ( Logical.Select p,
              [ Rule.Node (Logical.Join jp, [ (Rule.Group gl as a); (Rule.Group gr as b) ]) ] )
          ->
          let sl = (lookup gl).Logical_props.schema in
          let sr = (lookup gr).Logical_props.schema in
          let conj = Expr.conjuncts p in
          let on_left, rest = List.partition (refers_within sl) conj in
          let on_right, to_join = List.partition (refers_within sr) rest in
          if on_left = [] && on_right = [] && to_join = [] then []
          else begin
            let wrap side preds =
              match preds with
              | [] -> side
              | _ -> Rule.Node (Logical.Select (Expr.conjoin preds), [ side ])
            in
            let jp' = Expr.conjoin (Expr.conjuncts jp @ to_join) in
            [ Rule.Node (Logical.Join jp', [ wrap a on_left; wrap b on_right ]) ]
          end
        | _ -> []);
  }

(* Set-operation commutativity is deliberately omitted: our columns are
   resolved by name, and commuting a union/intersection would present
   the right branch's column names to parent operators. The plan space
   loses nothing — the merge- and hash-based set algorithms treat both
   inputs symmetrically. *)

(* ---------------------------------------------------------------------- *)
(* Model construction                                                       *)
(* ---------------------------------------------------------------------- *)

let make ~catalog ?(params = Cost_model.default) ?(flags = default_flags) () :
    (module REL_MODEL) =
  let module M = struct
    let model_name = "relational"

    type op = Logical.op

    let op_arity = Logical.arity
    let op_equal = Logical.op_equal
    let op_hash = Logical.op_hash
    let op_name = Logical.op_name

    type alg = Physical.alg

    let alg_arity = Physical.arity
    let alg_name = Physical.alg_name

    type logical_props = Logical_props.t

    let derive o inputs = Derive.op catalog o inputs

    type phys_props = Phys_prop.t

    let pp_equal = Phys_prop.equal
    let pp_hash = Phys_prop.hash
    let pp_covers = Phys_prop.covers

    let pp_trivial p = Phys_prop.covers ~provided:Phys_prop.any ~required:p
    let pp_to_string = Phys_prop.to_string

    type cost = Cost.t

    let cost_zero = Cost.zero
    let cost_infinite = Cost.infinite
    let cost_is_infinite = Cost.is_infinite
    let cost_add = Cost.add
    let cost_sub = Cost.sub
    let cost_compare = Cost.compare
    let cost_to_string = Cost.to_string

    let deliver (alg : Physical.alg) (inputs : Phys_prop.t list) : Phys_prop.t =
      let in1 () = match inputs with [ p ] -> p | _ -> Phys_prop.any in
      let left () = match inputs with l :: _ -> l | [] -> Phys_prop.any in
      (* Output distribution of a binary operator: the vectors only ever
         pair one-site inputs or co-partitioned inputs, and the result
         stays where the rows are. *)
      let joined_partitioning () =
        match inputs with
        | [ { Phys_prop.partitioning = Phys_prop.Singleton; _ };
            { Phys_prop.partitioning = Phys_prop.Singleton; _ } ] ->
          Phys_prop.Singleton
        | [ { Phys_prop.partitioning = Phys_prop.Hashed c; _ }; _ ] -> Phys_prop.Hashed c
        | _ -> Phys_prop.Any_part
      in
      match alg with
      | Physical.Table_scan t -> begin
        match Catalog.find_opt catalog t with
        | Some tbl ->
          {
            Phys_prop.order = tbl.stored_order;
            distinct = false;
            partitioning = tbl.stored_partitioning;
          }
        | None -> Phys_prop.any
      end
      | Physical.Index_scan (t, cols, _) -> begin
        match Catalog.find_opt catalog t with
        | Some tbl ->
          {
            Phys_prop.order = Sort_order.asc cols;
            distinct = false;
            partitioning = tbl.stored_partitioning;
          }
        | None -> Phys_prop.any
      end
      | Physical.Filter _ -> in1 ()
      | Physical.Project_cols cols ->
        (* Order survives as long as its leading keys are retained;
           hash-partitioning only if its columns are retained too. *)
        let p = in1 () in
        let rec prefix = function
          | (c, d) :: rest when List.mem c cols -> (c, d) :: prefix rest
          | _ -> []
        in
        let partitioning =
          match p.Phys_prop.partitioning with
          | Phys_prop.Hashed pc when not (List.for_all (fun c -> List.mem c cols) pc) ->
            Phys_prop.Any_part
          | other -> other
        in
        { Phys_prop.order = prefix p.Phys_prop.order; distinct = false; partitioning }
      | Physical.Nested_loop_join _ | Physical.Merge_join _ ->
        {
          Phys_prop.order = (left ()).Phys_prop.order;
          distinct = false;
          partitioning = joined_partitioning ();
        }
      | Physical.Hash_join _ | Physical.Hash_join_project _ ->
        { Phys_prop.any with partitioning = joined_partitioning () }
      | Physical.Sort o -> { (in1 ()) with Phys_prop.order = o }
      | Physical.Hash_dedup ->
        (* Equal tuples hash alike on any column subset, so per-partition
           duplicate removal is globally correct and the distribution is
           preserved. *)
        { Phys_prop.order = []; distinct = true; partitioning = (in1 ()).Phys_prop.partitioning }
      | Physical.Sort_dedup o ->
        { Phys_prop.order = o; distinct = true; partitioning = (in1 ()).Phys_prop.partitioning }
      | Physical.Repartition cols ->
        {
          Phys_prop.order = [];
          distinct = (in1 ()).Phys_prop.distinct;
          partitioning = Phys_prop.Hashed cols;
        }
      | Physical.Gather ->
        {
          Phys_prop.order = [];
          distinct = (in1 ()).Phys_prop.distinct;
          partitioning = Phys_prop.Singleton;
        }
      | Physical.Merge_gather o ->
        {
          Phys_prop.order = o;
          distinct = (in1 ()).Phys_prop.distinct;
          partitioning = Phys_prop.Singleton;
        }
      | Physical.Merge_union | Physical.Merge_intersect | Physical.Merge_difference ->
        {
          Phys_prop.order = (left ()).Phys_prop.order;
          distinct = true;
          partitioning = joined_partitioning ();
        }
      | Physical.Hash_union | Physical.Hash_intersect | Physical.Hash_difference ->
        { Phys_prop.order = []; distinct = true; partitioning = joined_partitioning () }
      | Physical.Stream_aggregate (keys, _) ->
        {
          Phys_prop.order = Sort_order.asc keys;
          distinct = true;
          partitioning = (in1 ()).Phys_prop.partitioning;
        }
      | Physical.Hash_aggregate _ ->
        { Phys_prop.order = []; distinct = true; partitioning = (in1 ()).Phys_prop.partitioning }
      | Physical.Materialize _ ->
        (* A tee: tuples flow through to the parent in the same order,
           distribution, and multiplicity while a copy is written out. *)
        in1 ()
      | Physical.Scan_materialized t -> begin
        match Catalog.find_opt catalog t with
        | Some tbl ->
          {
            Phys_prop.order = tbl.stored_order;
            distinct = false;
            partitioning = tbl.stored_partitioning;
          }
        | None -> Phys_prop.any
      end

    (* Partitioned execution divides an operator's work across the
       workers; exchanges that funnel everything to one site do not
       parallelize. *)
    let cost_of alg ~inputs ~input_props ~output =
      let base = Cost_model.cost params alg ~inputs ~output in
      if params.Cost_model.workers <= 1 then base
      else begin
        match alg with
        | Physical.Gather | Physical.Merge_gather _ -> base
        | _ -> begin
          match (deliver alg input_props).Phys_prop.partitioning with
          | Phys_prop.Hashed _ -> Cost.scale (1. /. Float.of_int params.Cost_model.workers) base
          | Phys_prop.Singleton | Phys_prop.Any_part -> base
        end
      end

    (* The promise estimate is the real local cost plus an input-
       preparation estimate. The local part reuses Cost_model's
       closed-form arithmetic over cached logical properties. The
       preparation part charges each input that must arrive sorted an
       estimated [Sort] of that input — the group lower bounds the
       search adds on top are order-blind for joins, so without this a
       merge join (whose sorts are paid inside its input subgoals)
       would look spuriously cheaper than the equivalent hash join and
       be pursued first. An input that happens to deliver the order
       for free (index, stored order) makes this an overestimate;
       promise only orders pursuit, never decides winners, so that is
       acceptable. *)
    let move_promise alg ~inputs ~input_props ~output =
      let local = cost_of alg ~inputs ~input_props ~output in
      List.fold_left2
        (fun acc (i : Logical_props.t) (p : Phys_prop.t) ->
          if p.Phys_prop.order = [] then acc
          else
            Cost.add acc
              (cost_of (Physical.Sort p.Phys_prop.order) ~inputs:[ i ]
                 ~input_props:[ Phys_prop.any ] ~output:i))
        local inputs input_props

    (* A certified lower bound on the cost of any plan delivering
       [required] for an expression with logical properties [props]
       (see {!Signatures.MODEL.cost_lower_bound}). Three additive
       floors, each provable against every algorithm shape in
       {!Cost_model}:
       - copy: every plan's top non-exchange, non-sort operator pays
         [card * cpu_tuple] to produce the result; exchanges, [Sort]
         and [Sort_dedup] inherit the floor from their input, which
         belongs to the same class and so has the same cardinality;
       - leaves: transformation rules preserve the multiset of base
         relations, so every plan contains one access-path leaf per
         relation occurrence. A relation without indexes can only be
         read by a full [Table_scan] ([pages * io_time]); with indexes
         at least the index descent plus one data page is paid, so
         [min pages 2 * io_time] holds either way;
       - sort: when an order is required over a single-relation,
         aggregate-free class whose relation offers no ordered access
         path on the leading required column (no index, no stored
         order), the order can only originate at a [Sort] or
         [Sort_dedup] of at least [card] rows (cardinality never grows
         along a unary chain). Joins and set operations are excluded —
         they can expand cardinality above the ordered side's — as are
         grouped classes, where [Stream_aggregate] delivers its key
         order for a comparison-only cost.
       The floors reuse {!Cost_model}'s exact floating-point
       expressions, so the bound can equal an optimal plan's cost to
       the last bit but never exceed it. Parallel execution scales an
       operator's cost by [1/workers] at most, so the whole bound is
       scaled likewise. *)
    let cost_lower_bound (props : Logical_props.t) (required : Phys_prop.t) : Cost.t =
      let copy_cpu = props.Logical_props.card *. params.Cost_model.cpu_tuple in
      let leaf_io =
        List.fold_left
          (fun acc name ->
            match Catalog.find_opt catalog name with
            | None -> acc
            | Some tbl ->
              let pg =
                Logical_props.pages ~page_size:params.Cost_model.page_bytes
                  (Catalog.base_props tbl)
              in
              let floor_pages = if tbl.indexes = [] then pg else Float.min pg 2. in
              acc +. (floor_pages *. params.Cost_model.io_time))
          0. props.Logical_props.relations
      in
      let sort_cpu =
        match required.Phys_prop.order with
        | [] -> 0.
        | (lead, _) :: _ -> begin
          match props.Logical_props.relations with
          | [ name ] when not props.Logical_props.grouped -> begin
            match Catalog.find_opt catalog name with
            | None -> 0.
            | Some tbl ->
              let canon c =
                match Schema.resolve tbl.schema c with
                | resolved -> resolved
                | exception Not_found -> c
              in
              let lead = canon (Logical_props.canonical_name props lead) in
              let leads c = String.equal (canon c) lead in
              let free_order =
                (match tbl.stored_order with (c, _) :: _ -> leads c | [] -> false)
                || List.exists (function c :: _ -> leads c | [] -> false) tbl.indexes
              in
              if free_order then 0.
              else begin
                let n = Float.max props.Logical_props.card 1. in
                n *. (Cost_model.log2 n +. 1.) *. params.Cost_model.cpu_compare
              end
          end
          | _ -> 0.
        end
      in
      let bound = Cost.make ~io:leaf_io ~cpu:(copy_cpu +. sort_cpu) in
      if params.Cost_model.workers <= 1 then bound
      else Cost.scale (1. /. Float.of_int params.Cost_model.workers) bound

    (* ------------------------------------------------------------------ *)

    let transforms =
      [
        join_commute;
        join_assoc ~cartesian:flags.cartesian;
        select_merge;
        select_push_join;
      ]

    (* Implementation rules. Each apply function doubles as the paper's
       applicability function: it inspects the required property vector
       and proposes the input requirement vectors under which the
       algorithm can deliver it. *)

    let choice alg c_inputs c_alternatives = { Rule.c_alg = alg; c_inputs; c_alternatives }

    let parallel = params.Cost_model.workers > 1

    (* Distribution requirements for binary operators: both inputs at
       one site, or — when running parallel and keys are available —
       co-partitioned on the join keys ("compatible partitioning
       rules", paper Â§3). *)
    let binary_vectors ?partition_keys vectors =
      let at site v = List.map (Phys_prop.with_partitioning site) v in
      List.concat_map
        (fun v ->
          let singleton = at Phys_prop.Singleton v in
          let partitioned =
            match partition_keys with
            | Some (lk, rk) when parallel -> begin
              match v with
              | [ l; r ] ->
                [
                  [
                    Phys_prop.with_partitioning (Phys_prop.Hashed lk) l;
                    Phys_prop.with_partitioning (Phys_prop.Hashed rk) r;
                  ];
                ]
              | _ -> []
            end
            | _ -> []
          in
          singleton :: partitioned)
        vectors

    let get_to_scan : (Logical.op, Physical.alg, Logical_props.t, Phys_prop.t) Rule.implement =
      {
        i_name = "get->table_scan";
        i_promise = 5;
        i_pattern = Rule.Op (is_get, []);
        i_apply =
          (fun ~lookup:_ ~required:_ binding ->
            match binding with
            | Rule.Node (Logical.Get t, []) ->
              let alg =
                match Catalog.find_opt catalog t with
                | Some tbl when tbl.materialized -> Physical.Scan_materialized t
                | _ -> Physical.Table_scan t
              in
              [ choice alg [] [ [] ] ]
            | _ -> []);
      }

    let select_to_filter : (Logical.op, Physical.alg, Logical_props.t, Phys_prop.t) Rule.implement
        =
      {
        i_name = "select->filter";
        i_promise = 4;
        i_pattern = Rule.Op (is_select, [ Rule.Any ]);
        i_apply =
          (fun ~lookup:_ ~required binding ->
            match binding with
            | Rule.Node (Logical.Select p, [ Rule.Group g ]) ->
              (* Filter is property-transparent: pass the requirement
                 through to the input. *)
              [ choice (Physical.Filter p) [ g ] [ [ required ] ] ]
            | _ -> []);
      }

    let project_to_project :
        (Logical.op, Physical.alg, Logical_props.t, Phys_prop.t) Rule.implement =
      {
        i_name = "project->project";
        i_promise = 4;
        i_pattern = Rule.Op (is_project, [ Rule.Any ]);
        i_apply =
          (fun ~lookup:_ ~required binding ->
            match binding with
            | Rule.Node (Logical.Project cols, [ Rule.Group g ]) ->
              if required.Phys_prop.distinct then []
              else if
                List.for_all (fun (c, _) -> List.mem c cols) required.Phys_prop.order
              then
                [
                  choice (Physical.Project_cols cols) [ g ]
                    [ [ Phys_prop.sorted required.Phys_prop.order ] ];
                ]
              else []
            | _ -> []);
      }

    let left_deep_ok lookup gr =
      (not flags.left_deep_only)
      || List.length (lookup gr).Logical_props.relations <= 1

    (* Selection over a stored relation implemented by one index range
       scan — the paper's multi-node implementation rules: "it is
       possible to map multiple logical operators to a single physical
       operator" (§2.2). Applicable when some index's leading column is
       range- or equality-bounded by the predicate. *)
    let index_applicable (table : Catalog.table) pred =
      let bounds_column col conj =
        match conj with
        | Expr.Cmp (_, Expr.Col c, Expr.Const _) | Expr.Cmp (_, Expr.Const _, Expr.Col c)
          -> begin
          match Schema.resolve table.schema c with
          | resolved -> String.equal resolved col
          | exception Not_found -> false
        end
        | _ -> false
      in
      List.filter
        (fun index ->
          match index with
          | lead :: _ -> List.exists (bounds_column lead) (Expr.conjuncts pred)
          | [] -> false)
        table.indexes

    let select_get_to_index_scan :
        (Logical.op, Physical.alg, Logical_props.t, Phys_prop.t) Rule.implement =
      {
        i_name = "select(get)->index_scan";
        i_promise = 5;
        i_pattern = Rule.Op (is_select, [ Rule.Op (is_get, []) ]);
        i_apply =
          (fun ~lookup:_ ~required binding ->
            match binding with
            | Rule.Node (Logical.Select pred, [ Rule.Node (Logical.Get t, []) ]) -> begin
              if required.Phys_prop.distinct then []
              else
                match Catalog.find_opt catalog t with
                | None -> []
                | Some table ->
                  List.map
                    (fun index -> choice (Physical.Index_scan (t, index, pred)) [] [ [] ])
                    (index_applicable table pred)
            end
            | _ -> []);
      }

    let get_to_index_scan :
        (Logical.op, Physical.alg, Logical_props.t, Phys_prop.t) Rule.implement =
      {
        i_name = "get->index_scan(order)";
        i_promise = 4;
        i_pattern = Rule.Op (is_get, []);
        i_apply =
          (fun ~lookup:_ ~required binding ->
            match binding with
            | Rule.Node (Logical.Get t, []) -> begin
              (* A full scan in index order: only worth proposing when an
                 order is actually wanted (access-path interesting
                 orders). *)
              if required.Phys_prop.order = [] then []
              else
                match Catalog.find_opt catalog t with
                | None -> []
                | Some table ->
                  List.map
                    (fun index ->
                      choice (Physical.Index_scan (t, index, Expr.true_)) [] [ [] ])
                    table.indexes
            end
            | _ -> []);
      }

    (* Projection fused into the join — the paper's join+projection
       single-procedure example (§2.2). *)
    let project_join_fuse :
        (Logical.op, Physical.alg, Logical_props.t, Phys_prop.t) Rule.implement =
      {
        i_name = "project(join)->hash_join_project";
        i_promise = 4;
        i_pattern = Rule.Op (is_project, [ join_pattern ]);
        i_apply =
          (fun ~lookup ~required binding ->
            match binding with
            | Rule.Node
                ( Logical.Project cols,
                  [ Rule.Node (Logical.Join p, [ Rule.Group gl; Rule.Group gr ]) ] ) ->
              let sl = (lookup gl).Logical_props.schema in
              let sr = (lookup gr).Logical_props.schema in
              let keys = Expr.equijoin_keys p ~left:sl ~right:sr in
              if
                keys = []
                || required.Phys_prop.order <> []
                || required.Phys_prop.distinct
                || not (left_deep_ok lookup gr)
              then []
              else
                [
                  choice
                    (Physical.Hash_join_project (keys, p, cols))
                    [ gl; gr ]
                    (binary_vectors
                       ~partition_keys:(List.map fst keys, List.map snd keys)
                       [ [ Phys_prop.any; Phys_prop.any ] ]);
                ]
            | _ -> []);
      }

    let join_sides lookup gl gr =
      let l = lookup gl and r = lookup gr in
      (l.Logical_props.schema, r.Logical_props.schema, l, r)

    let join_to_nested_loop :
        (Logical.op, Physical.alg, Logical_props.t, Phys_prop.t) Rule.implement =
      {
        i_name = "join->nested_loop";
        i_promise = 1;
        i_pattern = join_pattern;
        i_apply =
          (fun ~lookup ~required binding ->
            match binding with
            | Rule.Node (Logical.Join p, [ Rule.Group gl; Rule.Group gr ]) ->
              if not (left_deep_ok lookup gr) then []
              else if required.Phys_prop.distinct then []
              else begin
                (* Nested loops preserves the outer order, so the order
                   requirement can be delegated to the outer input. *)
                let base = [ Phys_prop.any; Phys_prop.any ] in
                let vectors =
                  if required.Phys_prop.order = [] then [ base ]
                  else [ [ Phys_prop.sorted required.Phys_prop.order; Phys_prop.any ] ]
                in
                [ choice (Physical.Nested_loop_join p) [ gl; gr ] (binary_vectors vectors) ]
              end
            | _ -> []);
      }

    let join_to_hash : (Logical.op, Physical.alg, Logical_props.t, Phys_prop.t) Rule.implement =
      {
        i_name = "join->hybrid_hash";
        i_promise = 3;
        i_pattern = join_pattern;
        i_apply =
          (fun ~lookup ~required binding ->
            match binding with
            | Rule.Node (Logical.Join p, [ Rule.Group gl; Rule.Group gr ]) ->
              let sl, sr, _, _ = join_sides lookup gl gr in
              let keys = Expr.equijoin_keys p ~left:sl ~right:sr in
              if keys = [] || not (left_deep_ok lookup gr) then []
              else if required.Phys_prop.order <> [] || required.Phys_prop.distinct then
                (* Hash join cannot deliver order or uniqueness: fails
                   the applicability test (§2.2's example). *)
                []
              else
                [
                  choice (Physical.Hash_join (keys, p)) [ gl; gr ]
                    (binary_vectors
                       ~partition_keys:(List.map fst keys, List.map snd keys)
                       [ [ Phys_prop.any; Phys_prop.any ] ]);
                ]
            | _ -> []);
      }

    (* Key orders merge join may sort its inputs by: the natural key
       order; when the required output order is a permutation of (a
       prefix of) the keys, an order aligned with it; and, when
       alternatives are enabled, the reversed key order (the paper's
       multiple-alternative-vectors facility, §3). *)
    let merge_key_orders required keys =
      let req_cols = List.map fst required.Phys_prop.order in
      let all_asc =
        List.for_all (fun (_, d) -> d = Sort_order.Asc) required.Phys_prop.order
      in
      let aligned =
        if all_asc && req_cols <> [] && List.for_all (fun c -> List.mem_assoc c keys) req_cols
        then begin
          (* Start with the keys named by the requirement, in its order,
             then the remaining keys. *)
          let first = List.map (fun c -> (c, List.assoc c keys)) req_cols in
          let rest = List.filter (fun (l, _) -> not (List.mem l req_cols)) keys in
          [ first @ rest ]
        end
        else []
      in
      let base = [ keys ] in
      let reversed = if flags.alternatives && List.length keys > 1 then [ List.rev keys ] else [] in
      (* Dedup while preserving order. *)
      List.fold_left
        (fun acc o -> if List.mem o acc then acc else acc @ [ o ])
        [] (aligned @ base @ reversed)

    let join_to_merge : (Logical.op, Physical.alg, Logical_props.t, Phys_prop.t) Rule.implement
        =
      {
        i_name = "join->merge";
        i_promise = 2;
        i_pattern = join_pattern;
        i_apply =
          (fun ~lookup ~required binding ->
            match binding with
            | Rule.Node (Logical.Join p, [ Rule.Group gl; Rule.Group gr ]) ->
              let sl, sr, _, _ = join_sides lookup gl gr in
              let keys = Expr.equijoin_keys p ~left:sl ~right:sr in
              if keys = [] || not (left_deep_ok lookup gr) then []
              else if required.Phys_prop.distinct then []
              else begin
                let vectors =
                  List.map
                    (fun key_order ->
                      [
                        Phys_prop.sorted (Sort_order.asc (List.map fst key_order));
                        Phys_prop.sorted (Sort_order.asc (List.map snd key_order));
                      ])
                    (merge_key_orders required keys)
                in
                [
                  choice (Physical.Merge_join (keys, p)) [ gl; gr ]
                    (binary_vectors
                       ~partition_keys:(List.map fst keys, List.map snd keys)
                       vectors);
                ]
              end
            | _ -> []);
      }

    (* Sorted-input vectors for merge-based set operations: any sort
       order works as long as both inputs use the same column positions
       (§3's intersection example). We offer the schema order and, when
       alternatives are enabled, one rotation. *)
    let setop_vectors lookup gl gr =
      let sl = (lookup gl).Logical_props.schema and sr = (lookup gr).Logical_props.schema in
      let cols schema = Array.to_list (Array.map (fun (a : Schema.attribute) -> a.name) schema) in
      let lcols = cols sl and rcols = cols sr in
      let rotate = function [] -> [] | x :: rest -> rest @ [ x ] in
      (* The merge algorithms skip duplicates on the fly, so the inputs
         only need matching sort orders, not uniqueness. *)
      let vector lc rc =
        [ Phys_prop.sorted (Sort_order.asc lc); Phys_prop.sorted (Sort_order.asc rc) ]
      in
      let base = vector lcols rcols in
      if flags.alternatives && List.length lcols > 1 then
        [ base; vector (rotate lcols) (rotate rcols) ]
      else [ base ]

    let setop_impl name ~promise ~matches ~merge_alg ~hash_alg :
        (Logical.op, Physical.alg, Logical_props.t, Phys_prop.t) Rule.implement =
      {
        i_name = name;
        i_promise = promise;
        i_pattern = Rule.Op (matches, [ Rule.Any; Rule.Any ]);
        i_apply =
          (fun ~lookup ~required binding ->
            match binding with
            | Rule.Node (_, [ Rule.Group gl; Rule.Group gr ]) ->
              (* Set operations run at one site: partition compatibility
                 across differently-named columns is out of scope. *)
              let merge =
                choice merge_alg [ gl; gr ] (binary_vectors (setop_vectors lookup gl gr))
              in
              let hash =
                if required.Phys_prop.order <> [] then []
                else
                  [
                    choice hash_alg [ gl; gr ]
                      (binary_vectors [ [ Phys_prop.any; Phys_prop.any ] ]);
                  ]
              in
              merge :: hash
            | _ -> []);
      }

    let union_impl =
      setop_impl "union->merge|hash" ~promise:2 ~matches:is_union
        ~merge_alg:Physical.Merge_union ~hash_alg:Physical.Hash_union

    let intersect_impl =
      setop_impl "intersect->merge|hash" ~promise:2 ~matches:is_intersect
        ~merge_alg:Physical.Merge_intersect ~hash_alg:Physical.Hash_intersect

    let difference_impl =
      setop_impl "difference->merge|hash" ~promise:2 ~matches:is_difference
        ~merge_alg:Physical.Merge_difference ~hash_alg:Physical.Hash_difference

    let group_by_impl : (Logical.op, Physical.alg, Logical_props.t, Phys_prop.t) Rule.implement
        =
      {
        i_name = "group_by->stream|hash";
        i_promise = 3;
        i_pattern = Rule.Op (is_group_by, [ Rule.Any ]);
        i_apply =
          (fun ~lookup:_ ~required binding ->
            match binding with
            | Rule.Node (Logical.Group_by (keys, aggs), [ Rule.Group g ]) ->
              (* Grouping is correct at one site, or partitioned on the
                 grouping keys (each group lives wholly at one worker). *)
              let unary_vectors base =
                let singleton =
                  [ Phys_prop.with_partitioning Phys_prop.Singleton base ]
                in
                if parallel && keys <> [] then
                  [
                    singleton;
                    [ Phys_prop.with_partitioning (Phys_prop.Hashed keys) base ];
                  ]
                else [ singleton ]
              in
              let stream =
                choice
                  (Physical.Stream_aggregate (keys, aggs))
                  [ g ]
                  (unary_vectors (Phys_prop.sorted (Sort_order.asc keys)))
              in
              let hash =
                if required.Phys_prop.order <> [] then []
                else
                  [
                    choice (Physical.Hash_aggregate (keys, aggs)) [ g ]
                      (unary_vectors Phys_prop.any);
                  ]
              in
              stream :: hash
            | _ -> []);
      }

    let implementations =
      [
        get_to_scan;
        get_to_index_scan;
        select_get_to_index_scan;
        select_to_filter;
        project_to_project;
        project_join_fuse;
        join_to_hash;
        join_to_merge;
        join_to_nested_loop;
        union_impl;
        intersect_impl;
        difference_impl;
        group_by_impl;
      ]

    let enforcers ~props ~required =
      let order = required.Phys_prop.order
      and distinct = required.Phys_prop.distinct
      and partitioning = required.Phys_prop.partitioning in
      let schema = props.Logical_props.schema in
      let order_valid = List.for_all (fun (c, _) -> Schema.mem schema c) order in
      (* Sorting runs per partition, so the relaxed requirement keeps
         the distribution constraint; likewise dedup. Exchanges relax
         the distribution and destroy order (except the order-merging
         gather). *)
      let sort_moves =
        if order <> [] && order_valid && flags.order_enforcer then
          [
            ( Physical.Sort order,
              { required with Phys_prop.order = [] },
              { Phys_prop.any with order } );
          ]
          @
          if distinct then
            [
              ( Physical.Sort_dedup order,
                { required with Phys_prop.order = []; distinct = false },
                { Phys_prop.any with order; distinct = true } );
            ]
          else []
        else []
      in
      let dedup_moves =
        if distinct && order = [] then
          [
            ( Physical.Hash_dedup,
              { required with Phys_prop.distinct = false },
              { Phys_prop.any with distinct = true } );
          ]
        else []
      in
      let exchange_moves =
        match partitioning with
        | Phys_prop.Any_part -> []
        | Phys_prop.Hashed cols ->
          if List.for_all (fun c -> Schema.mem schema c) cols then
            [
              ( Physical.Repartition cols,
                { Phys_prop.order = []; distinct; partitioning = Phys_prop.Any_part },
                { Phys_prop.any with partitioning = Phys_prop.Hashed cols } );
            ]
          else []
        | Phys_prop.Singleton ->
          [
            ( Physical.Gather,
              { Phys_prop.order = []; distinct; partitioning = Phys_prop.Any_part },
              { Phys_prop.any with partitioning = Phys_prop.Singleton } );
          ]
          @
          if order <> [] && order_valid then
            [
              ( Physical.Merge_gather order,
                { Phys_prop.order = order; distinct; partitioning = Phys_prop.Any_part },
                { Phys_prop.any with order; partitioning = Phys_prop.Singleton } );
            ]
          else []
      in
      sort_moves @ dedup_moves @ exchange_moves
  end in
  (module M : REL_MODEL)
