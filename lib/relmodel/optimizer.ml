type plan_node = {
  alg : Relalg.Physical.alg;
  children : plan_node list;
  props : Relalg.Phys_prop.t;
  cost : Relalg.Cost.t;
}

type result = {
  plan : plan_node option;
  complete : bool;
  tasks_run : int;
  stats : Volcano.Search_stats.t;
  memo_groups : int;
  memo_mexprs : int;
  explain : string option;
}

type request = {
  catalog : Catalog.t;
  params : Relalg.Cost_model.params;
  flags : Rel_model.flags;
  pruning : bool;
  guided_pruning : bool;
  max_moves : int option;
  limit : Relalg.Cost.t option;
  max_tasks : int option;
  max_millis : float option;
  tracer : Obs.Trace.t option;
  profiler : Obs.Profile.t option;
  recorder : Obs.Flight_recorder.t option;
  explain : bool;
  restore_columns : bool;
  domains : int;
  scheduler : Volcano.Search.scheduler;
  promise : Volcano.Search.promise_mode;
}

let request catalog =
  {
    catalog;
    params = Relalg.Cost_model.default;
    flags = Rel_model.default_flags;
    pruning = true;
    guided_pruning = true;
    max_moves = None;
    limit = None;
    max_tasks = None;
    max_millis = None;
    tracer = None;
    profiler = None;
    recorder = None;
    explain = false;
    restore_columns = true;
    domains = 1;
    scheduler = Volcano.Search.Stealing;
    promise = Volcano.Search.Dynamic;
  }

let rec to_physical_raw (p : plan_node) : Relalg.Physical.plan =
  Relalg.Physical.mk p.alg (List.map to_physical_raw p.children)

(* Join commutativity can leave the winning plan's columns in a
   different order than the query's logical schema; restore the
   logical order with a (free at this scale) final projection. *)
let restore_column_order req query (p : plan_node) : plan_node =
  let logical_names = Relalg.Schema.names (Derive.expr req.catalog query).schema in
  let physical_names =
    Relalg.Schema.names (Catalog.plan_schema req.catalog (to_physical_raw p))
  in
  if List.equal String.equal logical_names physical_names then p
  else
    {
      alg = Relalg.Physical.Project_cols logical_names;
      children = [ p ];
      props = p.props;
      cost = p.cost;
    }

let make_searcher req =
  let (module M : Rel_model.REL_MODEL) =
    Rel_model.make ~catalog:req.catalog ~params:req.params ~flags:req.flags ()
  in
  let module S = Volcano.Search.Make (M) in
  let config =
    {
      S.pruning = req.pruning;
      guided = req.guided_pruning;
      max_moves = req.max_moves;
      budget = S.budget ?max_tasks:req.max_tasks ?max_millis:req.max_millis ();
      tracer = req.tracer;
      explain = req.explain;
      scheduler = req.scheduler;
      promise = req.promise;
      profiler = req.profiler;
      recorder = req.recorder;
    }
  in
  let opt = S.create ~config () in
  let run (query : Relalg.Logical.expr) required : result =
    let limit = Option.value req.limit ~default:Relalg.Cost.infinite in
    let outcome =
      S.run ~limit ~domains:req.domains opt (Rel_model.to_tree query) ~required
    in
    let rec convert (p : S.plan_tree) : plan_node =
      { alg = p.alg; children = List.map convert p.children; props = p.props; cost = p.cost }
    in
    let finish p =
      if req.restore_columns then restore_column_order req query (convert p)
      else convert p
    in
    let explain =
      (* Winner provenance, straight from the memo (so it reflects the
         plan the search chose, before any column-restoring projection). *)
      if req.explain && outcome.plan <> None then
        Option.map
          (fun x -> Format.asprintf "%a" S.pp_explain x)
          (S.explain opt outcome.root_group ~required)
      else None
    in
    {
      plan = Option.map finish outcome.plan;
      complete = (outcome.status = S.Complete);
      tasks_run = outcome.tasks_run;
      stats = outcome.search_stats;
      memo_groups = outcome.memo_groups;
      memo_mexprs = outcome.memo_mexprs;
      explain;
    }
  in
  run

let optimize req (query : Relalg.Logical.expr) ~required : result =
  (make_searcher req) query required

(* ---------------------------------------------------------------- *)
(* Anytime ladder: one search, observed at a ladder of task budgets  *)
(* ---------------------------------------------------------------- *)

type anytime_point = {
  at_budget : int;  (** cumulative task budget of this rung *)
  at_tasks : int;  (** tasks actually executed when the rung was read *)
  at_cost : Relalg.Cost.t option;  (** best-so-far plan cost, if any *)
  at_complete : bool;  (** the search finished within this rung's budget *)
}

type anytime = {
  an_points : anytime_point list;  (** one per requested budget, ascending *)
  an_incumbents : (int * Relalg.Cost.t) list;
      (** [(tasks, cost)] at every strict root-incumbent improvement *)
  an_result : result;  (** the state after the last rung *)
}

(* Run ONE sequential search, pausing it at each cumulative task budget
   of [budgets] to record the best-so-far cost — the plan-cost-vs-budget
   curve of the run. Budgets are cumulative (the engine's resume
   semantics), so the whole ladder costs only the largest budget. The
   ladder drives the sequential engine directly; [req.domains] is
   ignored. *)
let optimize_anytime req ~budgets (query : Relalg.Logical.expr) ~required : anytime =
  let (module M : Rel_model.REL_MODEL) =
    Rel_model.make ~catalog:req.catalog ~params:req.params ~flags:req.flags ()
  in
  let module S = Volcano.Search.Make (M) in
  let config =
    {
      S.pruning = req.pruning;
      guided = req.guided_pruning;
      max_moves = req.max_moves;
      budget = S.unlimited;
      tracer = req.tracer;
      explain = req.explain;
      scheduler = req.scheduler;
      promise = req.promise;
      profiler = req.profiler;
      recorder = req.recorder;
    }
  in
  let opt = S.create ~config () in
  let limit = Option.value req.limit ~default:Relalg.Cost.infinite in
  let run = S.start ~limit opt (Rel_model.to_tree query) ~required in
  let rung b =
    let status = S.resume ~budget:(S.budget ~max_tasks:b ()) run in
    let cost =
      Option.map (fun (p : S.plan_tree) -> p.S.cost) (S.best_so_far run)
    in
    {
      at_budget = b;
      at_tasks = run.S.r_tasks;
      at_cost = cost;
      at_complete = (status = S.Complete);
    }
  in
  let points = List.map rung (List.sort_uniq compare budgets) in
  let rec convert (p : S.plan_tree) : plan_node =
    { alg = p.alg; children = List.map convert p.children; props = p.props; cost = p.cost }
  in
  let finish p =
    if req.restore_columns then restore_column_order req query (convert p)
    else convert p
  in
  let out = S.outcome_of run in
  let an_result =
    {
      plan = Option.map finish out.S.plan;
      complete = (out.S.status = S.Complete);
      tasks_run = out.S.tasks_run;
      stats = out.S.search_stats;
      memo_groups = out.S.memo_groups;
      memo_mexprs = out.S.memo_mexprs;
      explain = None;
    }
  in
  { an_points = points; an_incumbents = S.incumbents run; an_result }

let to_physical = to_physical_raw

let plan_cost (p : plan_node) = p.cost

let pp_plan ppf p =
  let rec go depth node =
    Format.fprintf ppf "%s%s  [%s; cost %s]" (String.make depth ' ')
      (Relalg.Physical.alg_name node.alg)
      (Relalg.Phys_prop.to_string node.props)
      (Relalg.Cost.to_string node.cost);
    List.iter
      (fun c ->
        Format.pp_print_newline ppf ();
        go (depth + 2) c)
      node.children
  in
  go 0 p

let explain p = Format.asprintf "%a" pp_plan p

type session = {
  run : Relalg.Logical.expr -> Relalg.Phys_prop.t -> result;
  req : request;
}

let session req = { run = make_searcher req; req }

let optimize_in s query ~required = s.run query required

let session_request s = s.req
