(** Hierarchical span tracing for the search engine.

    A collector owns one buffer per {e track} (the sequential engine is
    track 0; each parallel worker domain gets its own track). A buffer
    is single-writer — the domain that owns it — so spans are recorded
    without locks; the collector's registration list is the only
    mutex-guarded state. After the run, {!spans} merges every track
    into one start-ordered list, which is what finally lets a trace
    cover the parallel phase (the old flat hook was simply dropped in
    workers).

    Spans form a tree through parent ids: a [goal] span brackets one
    (group, property, limit) optimization goal and carries its outcome
    ([won], [failed], [hit], [pruned-lb], [parked], ...); each executed
    engine task is a [task] span parented to the goal it serves, so
    per-kind task-span counts equal the engine's task counters; [phase]
    spans bracket whole phases (per-worker parallel phases, the
    sequential prefix, ...). *)

type span = {
  sp_id : int;  (** unique across tracks; see {!id} *)
  sp_parent : int;  (** 0 = no parent *)
  sp_track : int;
  sp_cat : string;  (** ["task"], ["goal"], or ["phase"] *)
  sp_name : string;
  sp_group : int;  (** memo group the span concerns, or [-1] *)
  sp_start : int64;  (** {!Clock.now_ns} at open *)
  mutable sp_end : int64;  (** [0L] while open *)
  mutable sp_outcome : string;  (** [""] = none recorded *)
  mutable sp_args : (string * string) list;
}

type buf
(** One track's span buffer. Single-writer: only the owning domain may
    open or close spans in it. *)

type t
(** A collector: the set of track buffers for one optimization. *)

val create : unit -> t

val buf : t -> track:int -> buf
(** Register a new buffer for [track]. Thread-safe. *)

val open_span :
  buf ->
  ?parent:span ->
  ?group:int ->
  ?args:(string * string) list ->
  cat:string ->
  string ->
  span

val close : ?outcome:string -> span -> unit
(** Stamp the end time (and outcome). Raises [Invalid_argument] if the
    span is already closed — a span closes exactly once. *)

val is_open : span -> bool

val id : span -> int

val spans : t -> span list
(** Every span from every track, ordered by start time (ties by id).
    Call only after all writers finished (workers joined). *)

val total : t -> int
(** Number of spans recorded across all tracks. *)

val closed : t -> int
(** Number of {!close} calls that succeeded across all tracks. *)

val tracks : t -> int list
(** The registered track numbers, ascending. *)
