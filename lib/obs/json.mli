(** A minimal JSON value type with an emitter and a parser — just
    enough for the observability exporters (Chrome trace, metrics
    snapshots) and the CI shape validators, without pulling a JSON
    dependency into the tree. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t
(** Integer-valued {!Num}. *)

val to_string : t -> string
(** Compact rendering. Integral numbers print without a fraction;
    everything else prints with enough digits to round-trip. *)

val to_channel : out_channel -> t -> unit

val write_file : string -> t -> unit
(** Write [t] to [path] with a trailing newline. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    offending byte offset. *)

val read_file : string -> (t, string) result

(** {1 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
(** Field of an object. *)

val to_list : t -> t list option

val to_float : t -> float option

val to_int : t -> int option

val to_str : t -> string option
