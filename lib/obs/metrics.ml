type counter = {
  c_name : string;
  c_help : string;
  c_cell : int Atomic.t;
}

(* Bucket [i] holds observations in (2^(i-13), 2^(i-12)]: 64 geometric
   buckets spanning ~2.4e-4 .. 2.2e15, wide enough for sub-millisecond
   latencies and for task counts in the millions. *)
let n_buckets = 64

let bucket_shift = 12

let bucket_upper i = Float.ldexp 1.0 (i - bucket_shift)

let bucket_of v =
  if v <= 0. then 0
  else begin
    let _, e = Float.frexp v in
    (* frexp: v = m * 2^e with m in [0.5, 1), so 2^(e-1) < v <= 2^e. *)
    let i = e + bucket_shift in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
  end

type histogram = {
  h_name : string;
  h_help : string;
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_max : float Atomic.t;
}

type gauge = {
  g_name : string;
  g_help : string;
  mutable g_read : unit -> float;
}

type registry = {
  lock : Mutex.t;
  mutable counters : counter list;  (** reverse registration order *)
  mutable gauges : gauge list;
  mutable histograms : histogram list;
}

let create () = { lock = Mutex.create (); counters = []; gauges = []; histograms = [] }

let counter reg ?(help = "") name =
  Mutex.protect reg.lock (fun () ->
      match List.find_opt (fun c -> c.c_name = name) reg.counters with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_help = help; c_cell = Atomic.make 0 } in
        reg.counters <- c :: reg.counters;
        c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_cell by : int)

let counter_value c = Atomic.get c.c_cell

let gauge reg ?(help = "") name read =
  Mutex.protect reg.lock (fun () ->
      match List.find_opt (fun g -> g.g_name = name) reg.gauges with
      | Some g -> g.g_read <- read
      | None -> reg.gauges <- { g_name = name; g_help = help; g_read = read } :: reg.gauges)

let histogram reg ?(help = "") name =
  Mutex.protect reg.lock (fun () ->
      match List.find_opt (fun h -> h.h_name = name) reg.histograms with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            h_help = help;
            h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0.;
            h_max = Atomic.make 0.;
          }
        in
        reg.histograms <- h :: reg.histograms;
        h)

let rec atomic_add_float cell v =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. v)) then atomic_add_float cell v

let rec atomic_max_float cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max_float cell v

let observe h v =
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1 : int);
  ignore (Atomic.fetch_and_add h.h_count 1 : int);
  atomic_add_float h.h_sum v;
  atomic_max_float h.h_max v

let hist_count h = Atomic.get h.h_count

let hist_sum h = Atomic.get h.h_sum

let hist_max h = Atomic.get h.h_max

let quantile h q =
  let count = Atomic.get h.h_count in
  if count = 0 then 0.
  else begin
    let rank = Float.to_int (Float.round (q *. float_of_int count)) in
    let rank = if rank < 1 then 1 else if rank > count then count else rank in
    let rec walk i cum =
      if i >= n_buckets then hist_max h
      else begin
        let cum = cum + Atomic.get h.h_buckets.(i) in
        if cum >= rank then Float.min (bucket_upper i) (hist_max h) else walk (i + 1) cum
      end
    in
    walk 0 0
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let snapshot reg =
  Mutex.protect reg.lock (fun () ->
      (List.rev reg.counters, List.rev reg.gauges, List.rev reg.histograms))

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_prometheus reg =
  let counters, gauges, histograms = snapshot reg in
  let buf = Buffer.create 1024 in
  let header name help kind =
    if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun c ->
      header c.c_name c.c_help "counter";
      Buffer.add_string buf (Printf.sprintf "%s %d\n" c.c_name (Atomic.get c.c_cell)))
    counters;
  List.iter
    (fun g ->
      header g.g_name g.g_help "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %s\n" g.g_name (fmt_float (g.g_read ()))))
    gauges;
  List.iter
    (fun h ->
      header h.h_name h.h_help "histogram";
      let cum = ref 0 in
      Array.iteri
        (fun i cell ->
          let n = Atomic.get cell in
          if n > 0 then begin
            cum := !cum + n;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name
                 (fmt_float (bucket_upper i))
                 !cum)
          end)
        h.h_buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" h.h_name (Atomic.get h.h_count));
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" h.h_name (fmt_float (Atomic.get h.h_sum)));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" h.h_name (Atomic.get h.h_count)))
    histograms;
  Buffer.contents buf

let to_json reg =
  let counters, gauges, histograms = snapshot reg in
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun c -> (c.c_name, Json.int (Atomic.get c.c_cell))) counters) );
      ("gauges", Json.Obj (List.map (fun g -> (g.g_name, Json.Num (g.g_read ()))) gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun h ->
               ( h.h_name,
                 Json.Obj
                   [
                     ("count", Json.int (hist_count h));
                     ("sum", Json.Num (hist_sum h));
                     ("max", Json.Num (hist_max h));
                     ("p50", Json.Num (quantile h 0.50));
                     ("p95", Json.Num (quantile h 0.95));
                     ("p99", Json.Num (quantile h 0.99));
                   ] ))
             histograms) );
    ]
