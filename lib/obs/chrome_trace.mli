(** Export a span collector in the Chrome trace event format, loadable
    in chrome://tracing or {{:https://ui.perfetto.dev}Perfetto}. Each
    track becomes one thread row ([tid]): track 0 is the sequential
    engine, track [n > 0] the [n]-th parallel worker domain. Spans are
    complete ([ph = "X"]) events with microsecond timestamps relative
    to the earliest span; goal outcomes and span args land in [args]. *)

val to_json : Trace.t -> Json.t
(** Object form: [{"traceEvents": [...], "displayTimeUnit": "ms"}].
    Spans still open at export time (an abandoned or paused run) are
    emitted with the latest end time seen, with [args.open = true]. *)

val write : string -> Trace.t -> unit
(** Write {!to_json} to a file. *)
