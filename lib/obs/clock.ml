let now_ns () = Monotonic_clock.now ()

let ms_of_ns ns = Int64.to_float ns /. 1e6

let us_of_ns ns = Int64.to_float ns /. 1e3

let span_ms ~since now = ms_of_ns (Int64.sub now since)
