type kind = Rule | Enforcer | Operator | Engine

let kind_name = function
  | Rule -> "rule"
  | Enforcer -> "enforcer"
  | Operator -> "operator"
  | Engine -> "engine"

type cell = {
  c_kind : kind;
  c_name : string;
  mutable c_tasks : int;
  mutable c_mexprs : int;
  mutable c_plans_won : int;
  mutable c_pruned : int;
  mutable c_wasted : int;
  mutable c_ns : int64;
}

type buf = {
  pb_track : int;
  pb_cells : (int * string, cell) Hashtbl.t;
}

type t = {
  pr_lock : Mutex.t;
  mutable pr_bufs : buf list;
}

let create () = { pr_lock = Mutex.create (); pr_bufs = [] }

let buf t ~track =
  let b = { pb_track = track; pb_cells = Hashtbl.create 64 } in
  Mutex.protect t.pr_lock (fun () -> t.pr_bufs <- b :: t.pr_bufs);
  b

let kind_code = function Rule -> 0 | Enforcer -> 1 | Operator -> 2 | Engine -> 3

let cell b kind name =
  let key = (kind_code kind, name) in
  match Hashtbl.find_opt b.pb_cells key with
  | Some c -> c
  | None ->
    let c =
      {
        c_kind = kind;
        c_name = name;
        c_tasks = 0;
        c_mexprs = 0;
        c_plans_won = 0;
        c_pruned = 0;
        c_wasted = 0;
        c_ns = 0L;
      }
    in
    Hashtbl.add b.pb_cells key c;
    c

let task b kind name ~ns =
  let c = cell b kind name in
  c.c_tasks <- c.c_tasks + 1;
  c.c_ns <- Int64.add c.c_ns ns

let mexprs b kind name n =
  if n <> 0 then begin
    let c = cell b kind name in
    c.c_mexprs <- c.c_mexprs + n
  end

let plan_won b kind name =
  let c = cell b kind name in
  c.c_plans_won <- c.c_plans_won + 1

let pruned b kind name =
  let c = cell b kind name in
  c.c_pruned <- c.c_pruned + 1

let wasted b kind name n =
  if n <> 0 then begin
    let c = cell b kind name in
    c.c_wasted <- c.c_wasted + n
  end

(* ------------------------------------------------------------------ *)
(* Merged report                                                       *)
(* ------------------------------------------------------------------ *)

type entry = {
  kind : kind;
  name : string;
  tasks : int;
  mexprs : int;
  plans_won : int;
  pruned : int;
  wasted : int;
  ns : int64;
}

let bufs t = Mutex.protect t.pr_lock (fun () -> t.pr_bufs)

let report t =
  let merged : (int * string, entry ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun key (c : cell) ->
          match Hashtbl.find_opt merged key with
          | Some e ->
            e :=
              {
                !e with
                tasks = !e.tasks + c.c_tasks;
                mexprs = !e.mexprs + c.c_mexprs;
                plans_won = !e.plans_won + c.c_plans_won;
                pruned = !e.pruned + c.c_pruned;
                wasted = !e.wasted + c.c_wasted;
                ns = Int64.add !e.ns c.c_ns;
              }
          | None ->
            Hashtbl.add merged key
              (ref
                 {
                   kind = c.c_kind;
                   name = c.c_name;
                   tasks = c.c_tasks;
                   mexprs = c.c_mexprs;
                   plans_won = c.c_plans_won;
                   pruned = c.c_pruned;
                   wasted = c.c_wasted;
                   ns = c.c_ns;
                 }))
        b.pb_cells)
    (bufs t);
  Hashtbl.fold (fun _ e acc -> !e :: acc) merged []
  |> List.sort (fun a b ->
         let c = Int64.compare b.ns a.ns in
         if c <> 0 then c else compare (a.kind, a.name) (b.kind, b.name))

let total_tasks t =
  List.fold_left (fun acc e -> acc + e.tasks) 0 (report t)

let tracks t = List.sort_uniq compare (List.map (fun b -> b.pb_track) (bufs t))

let ms_of e = Int64.to_float e.ns /. 1e6

let to_json t =
  let entries =
    List.map
      (fun e ->
        Json.Obj
          [
            ("kind", Json.Str (kind_name e.kind));
            ("name", Json.Str e.name);
            ("tasks", Json.int e.tasks);
            ("mexprs", Json.int e.mexprs);
            ("plans_won", Json.int e.plans_won);
            ("pruned", Json.int e.pruned);
            ("wasted", Json.int e.wasted);
            ("time_ms", Json.Num (ms_of e));
          ])
      (report t)
  in
  Json.Obj
    [
      ("total_tasks", Json.int (total_tasks t));
      ("tracks", Json.Arr (List.map Json.int (tracks t)));
      ("entries", Json.Arr entries);
    ]

let pp_table ?(top = 20) ppf t =
  let entries = report t in
  let shown = List.filteri (fun i _ -> i < top) entries in
  Format.fprintf ppf "%-9s %-28s %8s %8s %6s %7s %7s %10s@."
    "kind" "name" "tasks" "mexprs" "won" "pruned" "wasted" "time_ms";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-9s %-28s %8d %8d %6d %7d %7d %10.3f@."
        (kind_name e.kind) e.name e.tasks e.mexprs e.plans_won e.pruned
        e.wasted (ms_of e))
    shown;
  let rest = List.length entries - List.length shown in
  if rest > 0 then Format.fprintf ppf "... and %d more@." rest

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' | '_' -> c
      | 'A' .. 'Z' -> Char.lowercase_ascii c
      | _ -> '_')
    name

(* Export rule/enforcer attribution as registry gauges: the gauge
   closures re-merge at scrape time, so they track a live search. *)
let register ?(prefix = "rule_") t reg =
  let seen = Hashtbl.create 16 in
  let publish e =
    let base =
      match e.kind with
      | Rule -> prefix ^ sanitize e.name
      | Enforcer -> prefix ^ "enforcer_" ^ sanitize e.name
      | Operator | Engine -> ""
    in
    if base <> "" && not (Hashtbl.mem seen base) then begin
      Hashtbl.add seen base ();
      let field suffix pick =
        Metrics.gauge reg
          ~help:(Printf.sprintf "profiler %s for %s %s" suffix (kind_name e.kind) e.name)
          (base ^ "_" ^ suffix)
          (fun () ->
            match
              List.find_opt
                (fun x -> x.kind = e.kind && x.name = e.name)
                (report t)
            with
            | Some x -> pick x
            | None -> 0.)
      in
      field "tasks" (fun x -> float_of_int x.tasks);
      field "mexprs" (fun x -> float_of_int x.mexprs);
      field "plans_won" (fun x -> float_of_int x.plans_won);
      field "wasted" (fun x -> float_of_int x.wasted);
      field "time_ms" ms_of
    end
  in
  List.iter publish (report t)
