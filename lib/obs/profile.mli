(** Per-rule / per-enforcer / per-operator search effort attribution.

    A profiler owns one buffer per {e track} (sequential engine =
    track 0, each parallel worker domain its own track), exactly like
    {!Trace}: buffers are single-writer, so the task hot path records
    without locks, and the collector's registration list is the only
    mutex-guarded state. After the run {!report} merges every track
    into one list of per-(kind, name) entries.

    The attribution contract: the engine charges {e exactly one}
    {!task} call per executed task (so the sum of per-entry task counts
    equals the engine's total task counter), plus side-channel counts —
    mexprs generated per rule firing, plans won per rule, goals pruned
    per rule, and wasted tasks (tasks spent under a move whose subtree
    produced no winner). Recording must never influence the search:
    the profiler is observation-only and plan-inert. *)

type kind = Rule | Enforcer | Operator | Engine

val kind_name : kind -> string

type buf
(** One track's attribution buffer. Single-writer: only the owning
    domain may record into it. *)

type t
(** A collector: the set of track buffers for one optimization. *)

val create : unit -> t

val buf : t -> track:int -> buf
(** Register a new buffer for [track]. Thread-safe. *)

val task : buf -> kind -> string -> ns:int64 -> unit
(** Charge one executed task and its wall time to [(kind, name)]. *)

val mexprs : buf -> kind -> string -> int -> unit
(** Charge [n] generated mexprs (a rule firing's yield). *)

val plan_won : buf -> kind -> string -> unit
(** The winning plan of some goal came from [(kind, name)]. *)

val pruned : buf -> kind -> string -> unit
(** A goal spawned by [(kind, name)] was pruned. *)

val wasted : buf -> kind -> string -> int -> unit
(** Charge [n] tasks of wasted work: tasks executed while pursuing a
    move of [(kind, name)] whose subtree produced no winner. *)

(** {1 Merged report} *)

type entry = {
  kind : kind;
  name : string;
  tasks : int;
  mexprs : int;
  plans_won : int;
  pruned : int;
  wasted : int;
  ns : int64;  (** cumulative monotonic task time *)
}

val report : t -> entry list
(** Every entry merged across tracks, sorted by cumulative time
    (descending). Call only after all writers finished. *)

val total_tasks : t -> int
(** Sum of per-entry task counts — must equal the engine's total task
    counter (the attribution-parity invariant). *)

val tracks : t -> int list
(** The registered track numbers, ascending. *)

val to_json : t -> Json.t

val pp_table : ?top:int -> Format.formatter -> t -> unit
(** Human-readable top-N table, time-ordered. *)

val register : ?prefix:string -> t -> Metrics.registry -> unit
(** Export rule and enforcer entries as [rule_*] gauges (tasks, mexprs,
    plans_won, wasted, time_ms per entry). Gauges read live state at
    scrape time. *)
