(** A small metrics registry: counters, closure-backed gauges, and
    log-bucketed histograms, exported as Prometheus text or JSON.

    Hot-path instruments are lock-free: counters are atomic integers
    and histogram observation touches one atomic bucket plus atomic
    count/sum/max cells, so domains can record concurrently without a
    mutex. The registry itself is mutex-guarded, but only registration
    and export take the lock. *)

type registry

val create : unit -> registry

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter : registry -> ?help:string -> string -> counter
(** Register (or fetch, if the name exists) a counter. *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

(** {1 Gauges} — read through a closure at export time, so existing
    mutable statistics records (e.g. {!Volcano.Search_stats.t}) can be
    surfaced without double bookkeeping. *)

val gauge : registry -> ?help:string -> string -> (unit -> float) -> unit
(** Registering an existing name replaces its reader. *)

(** {1 Histograms} — power-of-two log-bucketed, for long-tailed
    distributions (latencies, per-goal task counts). Quantiles are
    estimated from the bucket walk: the reported value is the upper
    bound of the bucket holding the quantile rank (capped at the
    observed maximum), so estimates are conservative and never more
    than 2x the true value. *)

type histogram

val histogram : registry -> ?help:string -> string -> histogram
(** Register (or fetch, if the name exists) a histogram. *)

val observe : histogram -> float -> unit

val hist_count : histogram -> int

val hist_sum : histogram -> float

val hist_max : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]; [0.] when the histogram is empty. *)

(** {1 Export} *)

val to_prometheus : registry -> string
(** Prometheus text exposition format (version 0.0.4): counters,
    gauges, and histograms with cumulative [le] buckets. *)

val to_json : registry -> Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name:
    {count, sum, max, p50, p95, p99}}}]. *)
