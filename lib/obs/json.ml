type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_nan f || Float.abs f = Float.infinity then
    (* JSON has no NaN/Inf; null is the least-wrong rendering. *)
    Buffer.add_string buf "null"
  else begin
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  end

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> escape buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

let write_file path v =
  Out_channel.with_open_text path (fun oc ->
      to_channel oc v;
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parser: plain recursive descent over the input string               *)
(* ------------------------------------------------------------------ *)

exception Bad of string * int

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (msg, !pos)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
             in
             (* Encode the BMP codepoint as UTF-8. *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
           | _ -> fail "bad escape");
          go ()
        end
        | c ->
          Buffer.add_char buf c;
          go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) -> Error (Printf.sprintf "%s at offset %d" msg at)

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_list = function Arr items -> Some items | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
