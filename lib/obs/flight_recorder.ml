type kind = Task_begin | Task_end | Claim | Publish | Prune | Incumbent

let kind_name = function
  | Task_begin -> "task_begin"
  | Task_end -> "task_end"
  | Claim -> "claim"
  | Publish -> "publish"
  | Prune -> "prune"
  | Incumbent -> "incumbent"

let kind_code = function
  | Task_begin -> 0
  | Task_end -> 1
  | Claim -> 2
  | Publish -> 3
  | Prune -> 4
  | Incumbent -> 5

let kind_of_code = function
  | 0 -> Task_begin
  | 1 -> Task_end
  | 2 -> Claim
  | 3 -> Publish
  | 4 -> Prune
  | _ -> Incumbent

(* One ring slot. All fields are immediate ints mutated in place, so
   recording allocates nothing after ring creation ([ev_ns] is the
   monotonic clock collapsed to an int — 63 bits of nanoseconds). *)
type slot = {
  mutable ev_ns : int;
  mutable ev_kind : int;
  mutable ev_group : int;
  mutable ev_detail : int;
}

type ring = {
  rg_track : int;
  rg_slots : slot array;
  mutable rg_count : int;  (** total events ever recorded *)
}

type t = {
  fr_lock : Mutex.t;
  fr_capacity : int;
  mutable fr_rings : ring list;
  mutable fr_path : string option;
  mutable fr_dumps : int;
  mutable fr_last_reason : string;
}

let default_capacity = 512

let create ?(capacity = default_capacity) ?path () =
  if capacity < 1 then invalid_arg "Flight_recorder.create: capacity must be >= 1";
  {
    fr_lock = Mutex.create ();
    fr_capacity = capacity;
    fr_rings = [];
    fr_path = path;
    fr_dumps = 0;
    fr_last_reason = "";
  }

let capacity t = t.fr_capacity

let ring t ~track =
  let slots =
    Array.init t.fr_capacity (fun _ ->
        { ev_ns = 0; ev_kind = -1; ev_group = -1; ev_detail = 0 })
  in
  let r = { rg_track = track; rg_slots = slots; rg_count = 0 } in
  Mutex.protect t.fr_lock (fun () -> t.fr_rings <- r :: t.fr_rings);
  r

let record r kind ~group ~detail =
  let slot = r.rg_slots.(r.rg_count mod Array.length r.rg_slots) in
  slot.ev_ns <- Int64.to_int (Clock.now_ns ());
  slot.ev_kind <- kind_code kind;
  slot.ev_group <- group;
  slot.ev_detail <- detail;
  r.rg_count <- r.rg_count + 1

(* ------------------------------------------------------------------ *)
(* Post-mortem view                                                    *)
(* ------------------------------------------------------------------ *)

type event = {
  ns : int;
  track : int;
  kind : kind;
  group : int;
  detail : int;
}

let rings t = Mutex.protect t.fr_lock (fun () -> t.fr_rings)

let ring_events r =
  let n = Array.length r.rg_slots in
  let kept = min r.rg_count n in
  List.init kept (fun i ->
      (* Oldest first: when the ring wrapped, the oldest surviving slot
         is the one the next write would overwrite. *)
      let idx = if r.rg_count <= n then i else (r.rg_count + i) mod n in
      let s = r.rg_slots.(idx) in
      {
        ns = s.ev_ns;
        track = r.rg_track;
        kind = kind_of_code s.ev_kind;
        group = s.ev_group;
        detail = s.ev_detail;
      })

let events t =
  List.concat_map ring_events (rings t)
  |> List.sort (fun a b ->
         let c = compare a.ns b.ns in
         if c <> 0 then c else compare (a.track, a.kind) (b.track, b.kind))

let recorded t = List.fold_left (fun acc r -> acc + r.rg_count) 0 (rings t)

let dropped t =
  List.fold_left
    (fun acc r -> acc + max 0 (r.rg_count - Array.length r.rg_slots))
    0 (rings t)

let tracks t = List.sort_uniq compare (List.map (fun r -> r.rg_track) (rings t))

let to_json ?(reason = "") t =
  let evs =
    List.map
      (fun e ->
        Json.Obj
          [
            ("ns", Json.int e.ns);
            ("track", Json.int e.track);
            ("kind", Json.Str (kind_name e.kind));
            ("group", Json.int e.group);
            ("detail", Json.int e.detail);
          ])
      (events t)
  in
  Json.Obj
    [
      ("reason", Json.Str reason);
      ("capacity", Json.int t.fr_capacity);
      ("recorded", Json.int (recorded t));
      ("dropped", Json.int (dropped t));
      ("tracks", Json.Arr (List.map Json.int (tracks t)));
      ("events", Json.Arr evs);
    ]

let set_path t path = t.fr_path <- Some path

let dumps t = t.fr_dumps

let last_reason t = t.fr_last_reason

(* A trigger marks the recorder (always) and writes the post-mortem
   file (when a destination is configured). Torn reads of slots still
   being written by live workers are acceptable: this fires on the way
   out of a failing run, and a corrupt tail event beats no record. *)
let trigger t ~reason =
  (* Triggers can fire from worker domains (stall-abandon); the counter
     update takes the registration lock, the file write does not. *)
  Mutex.protect t.fr_lock (fun () ->
      t.fr_last_reason <- reason;
      t.fr_dumps <- t.fr_dumps + 1);
  match t.fr_path with
  | None -> ()
  | Some path -> Json.write_file path (to_json ~reason t)
