(** Monotonic time source for the observability layer. Span timestamps
    and service latencies must never run backwards, so everything here
    reads CLOCK_MONOTONIC (via the bechamel stub), not the wall clock. *)

val now_ns : unit -> int64
(** Monotonic nanoseconds since an arbitrary epoch. *)

val ms_of_ns : int64 -> float

val us_of_ns : int64 -> float

val span_ms : since:int64 -> int64 -> float
(** [span_ms ~since now] — elapsed milliseconds between two readings. *)
