(** Always-on flight recorder: a fixed-size, lock-free, per-worker ring
    buffer of recent engine events, dumped post-mortem when a search
    ends abnormally (budget/timeout pause, stall-consensus abandon,
    feedback escape hatch, plansrv rejection).

    Each track (sequential engine = 0, workers 1..n) owns one ring of
    preallocated slots; {!record} mutates a slot in place — no
    allocation, no lock, no branch on a "enabled" flag — so steady-state
    cost is a few stores per event. The collector registration list is
    the only mutex-guarded state, exactly like {!Trace} and {!Profile}.

    Recording is observation-only: it must never influence the search
    (the plan-inertness contract). Reads of a live ring may see torn
    slots; {!trigger} fires on the way out of a failing run, where a
    corrupt tail event beats no record. *)

type kind = Task_begin | Task_end | Claim | Publish | Prune | Incumbent

val kind_name : kind -> string

type ring
(** One track's event ring. Single-writer. *)

type t

val default_capacity : int

val create : ?capacity:int -> ?path:string -> unit -> t
(** [capacity] is per ring (default {!default_capacity}); [path], when
    given, is where {!trigger} writes the JSON post-mortem. *)

val capacity : t -> int

val ring : t -> track:int -> ring
(** Register a new ring for [track]. Thread-safe. *)

val record : ring -> kind -> group:int -> detail:int -> unit
(** Record one event, overwriting the oldest when the ring is full.
    Allocation-free and lock-free. [group] is the memo group concerned
    (or [-1]); [detail] is kind-specific (task kind index, worker id,
    ...). *)

(** {1 Post-mortem view} *)

type event = {
  ns : int;  (** monotonic nanoseconds, collapsed to int *)
  track : int;
  kind : kind;
  group : int;
  detail : int;
}

val events : t -> event list
(** Surviving events from every ring, oldest first (merged by
    timestamp). *)

val recorded : t -> int
(** Total events ever recorded across rings (including overwritten). *)

val dropped : t -> int
(** Events lost to ring wraparound. *)

val tracks : t -> int list

val to_json : ?reason:string -> t -> Json.t

val set_path : t -> string -> unit
(** Set (or replace) the post-mortem destination. *)

val trigger : t -> reason:string -> unit
(** Mark an abnormal end: remembers [reason], bumps the dump counter,
    and writes the JSON post-mortem if a path is configured. *)

val dumps : t -> int
(** Number of {!trigger} calls so far. *)

val last_reason : t -> string
(** Reason of the most recent trigger ([""] if none). *)
