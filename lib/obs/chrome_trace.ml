let track_name = function
  | 0 -> "search (sequential)"
  | n -> Printf.sprintf "worker %d" n

let to_json t =
  let spans = Trace.spans t in
  let t0 =
    List.fold_left
      (fun acc (sp : Trace.span) -> if Int64.compare sp.sp_start acc < 0 then sp.sp_start else acc)
      (match spans with [] -> 0L | sp :: _ -> sp.sp_start)
      spans
  in
  let t_end =
    List.fold_left
      (fun acc (sp : Trace.span) -> if Int64.compare sp.sp_end acc > 0 then sp.sp_end else acc)
      t0 spans
  in
  let us_since ns = Json.Num (Clock.us_of_ns (Int64.sub ns t0)) in
  let meta =
    List.map
      (fun track ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.int 0);
            ("tid", Json.int track);
            ("args", Json.Obj [ ("name", Json.Str (track_name track)) ]);
          ])
      (Trace.tracks t)
  in
  let events =
    List.map
      (fun (sp : Trace.span) ->
        let still_open = Trace.is_open sp in
        let sp_end = if still_open then t_end else sp.sp_end in
        let args =
          List.concat
            [
              (if sp.sp_group >= 0 then [ ("group", Json.int sp.sp_group) ] else []);
              (if sp.sp_outcome <> "" then [ ("outcome", Json.Str sp.sp_outcome) ] else []);
              (if still_open then [ ("open", Json.Bool true) ] else []);
              List.map (fun (k, v) -> (k, Json.Str v)) sp.sp_args;
            ]
        in
        Json.Obj
          [
            ("name", Json.Str sp.sp_name);
            ("cat", Json.Str sp.sp_cat);
            ("ph", Json.Str "X");
            ("ts", us_since sp.sp_start);
            ("dur", Json.Num (Clock.us_of_ns (Int64.sub sp_end sp.sp_start)));
            ("pid", Json.int 0);
            ("tid", Json.int sp.sp_track);
            ("id", Json.int sp.sp_id);
            ("args", Json.Obj args);
          ])
      spans
  in
  Json.Obj
    [ ("traceEvents", Json.Arr (meta @ events)); ("displayTimeUnit", Json.Str "ms") ]

let write path t = Json.write_file path (to_json t)
