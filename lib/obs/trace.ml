type span = {
  sp_id : int;
  sp_parent : int;
  sp_track : int;
  sp_cat : string;
  sp_name : string;
  sp_group : int;
  sp_start : int64;
  mutable sp_end : int64;
  mutable sp_outcome : string;
  mutable sp_args : (string * string) list;
}

type buf = {
  bf_track : int;
  mutable bf_spans : span list;  (** newest first *)
  mutable bf_count : int;
}

type t = {
  tr_lock : Mutex.t;
  mutable tr_bufs : buf list;
}

let create () = { tr_lock = Mutex.create (); tr_bufs = [] }

let buf t ~track =
  let b = { bf_track = track; bf_spans = []; bf_count = 0 } in
  Mutex.protect t.tr_lock (fun () -> t.tr_bufs <- b :: t.tr_bufs);
  b

(* Span ids carry the track in the high bits so each buffer allocates
   ids without coordination; 0 is reserved for "no parent". *)
let open_span b ?parent ?(group = -1) ?(args = []) ~cat name =
  b.bf_count <- b.bf_count + 1;
  let sp =
    {
      sp_id = (b.bf_track lsl 40) lor b.bf_count;
      sp_parent = (match parent with None -> 0 | Some p -> p.sp_id);
      sp_track = b.bf_track;
      sp_cat = cat;
      sp_name = name;
      sp_group = group;
      sp_start = Clock.now_ns ();
      sp_end = 0L;
      sp_outcome = "";
      sp_args = args;
    }
  in
  b.bf_spans <- sp :: b.bf_spans;
  sp

let close ?(outcome = "") sp =
  if sp.sp_end <> 0L then invalid_arg "Trace.close: span already closed";
  sp.sp_end <- Clock.now_ns ();
  if outcome <> "" then sp.sp_outcome <- outcome

let is_open sp = sp.sp_end = 0L

let id sp = sp.sp_id

let bufs t = Mutex.protect t.tr_lock (fun () -> t.tr_bufs)

let spans t =
  List.concat_map (fun b -> b.bf_spans) (bufs t)
  |> List.sort (fun a b ->
         let c = Int64.compare a.sp_start b.sp_start in
         if c <> 0 then c else compare a.sp_id b.sp_id)

let total t = List.fold_left (fun acc b -> acc + b.bf_count) 0 (bufs t)

let closed t =
  List.fold_left
    (fun acc b ->
      acc + List.length (List.filter (fun sp -> sp.sp_end <> 0L) b.bf_spans))
    0 (bufs t)

let tracks t = List.sort_uniq compare (List.map (fun b -> b.bf_track) (bufs t))
