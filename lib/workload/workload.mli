(** Random select–join workloads reproducing the paper's experimental
    setup (§4.2): queries over 2–8 input relations of 1,200–7,200
    records of 100 bytes, with as many selections as input relations.
    All generation is seeded and reproducible. *)

type shape =
  | Chain  (** R1 ⋈ R2 ⋈ ... ⋈ Rn, predicates between neighbours *)
  | Star  (** R1 joined to each of R2..Rn *)
  | Random_acyclic  (** random spanning tree of join predicates *)

type spec = {
  n_relations : int;
  shape : shape;
  min_rows : int;  (** default 1,200 — paper's smallest relation *)
  max_rows : int;  (** default 7,200 — paper's largest *)
  row_bytes : int;  (** default 100 — paper's record size *)
  seed : int;
}

val spec : ?shape:shape -> ?min_rows:int -> ?max_rows:int -> ?row_bytes:int ->
  n_relations:int -> seed:int -> unit -> spec

type query = {
  catalog : Catalog.t;
  logical : Relalg.Logical.expr;  (** selections on leaves, left-deep join spine *)
  relations : string list;
}

val generate : spec -> query
(** Build a fresh catalog with [n_relations] synthetic relations and a
    select–join query over all of them, with one selection predicate
    per relation (the paper's "as many selections as input relations"). *)

val generate_batch : spec -> count:int -> query list
(** [count] queries with distinct derived seeds (the paper optimizes 50
    queries per complexity level). *)

(** {1 Overlapping batches}

    Workloads for multi-query optimization: [count] queries over {e one}
    shared catalog, a controllable fraction of which embed a common
    join/select core subtree (bit-identical across those queries, so
    per-subtree fingerprints unify it), each extended with per-query
    private relations and selections. *)

type batch = {
  batch_catalog : Catalog.t;  (** the one catalog all queries run against *)
  queries : Relalg.Logical.expr list;
  core : Relalg.Logical.expr option;
      (** the injected shared subtree; [None] when [sharing] rounded to
          zero queries *)
  core_relations : string list;  (** relations spanned by the core *)
}

val generate_overlapping :
  spec -> count:int -> ?core_relations:int -> sharing:float -> unit -> batch
(** [generate_overlapping spec ~count ~sharing ()] emits [count]
    queries of which [round (sharing * count)] embed the shared core (a
    selective chain join over [core_relations] relations, default 2);
    the rest use the same relations with per-query selections, so the
    control arm has the same shape but no cross-query subexpressions.
    @raise Invalid_argument unless [0 <= sharing <= 1],
    [count >= 1], and [1 <= core_relations < spec.n_relations]. *)
