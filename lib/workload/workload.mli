(** Random select–join workloads reproducing the paper's experimental
    setup (§4.2): queries over 2–8 input relations of 1,200–7,200
    records of 100 bytes, with as many selections as input relations.
    All generation is seeded and reproducible. *)

type shape =
  | Chain  (** R1 ⋈ R2 ⋈ ... ⋈ Rn, predicates between neighbours *)
  | Star  (** R1 joined to each of R2..Rn *)
  | Random_acyclic  (** random spanning tree of join predicates *)
  | Clique  (** every pair of relations joined (cyclic, densest graph) *)
  | Cycle  (** chain plus a closing edge (cyclic for n >= 3) *)
  | Grid  (** near-square row-major grid, neighbours joined (cyclic) *)
  | Snowflake
      (** fact table, dimension heads joined to it, sub-dimensions
          attached to the heads — with [skew], fact big and
          sub-dimensions tiny *)

val shape_name : shape -> string

val shape_of_string : string -> shape option
(** Inverse of {!shape_name} ("chain", "star", "random", "clique",
    "cycle", "grid", "snowflake"). *)

val all_shapes : shape list

type spec = {
  n_relations : int;
  shape : shape;
  min_rows : int;  (** default 1,200 — paper's smallest relation *)
  max_rows : int;  (** default 7,200 — paper's largest *)
  row_bytes : int;  (** default 100 — paper's record size *)
  seed : int;
  skew : float;
      (** per-table statistics skew in [0, 1]: 0 (default) draws row
          counts uniformly as the paper does; above 0, relation [i]
          gets [max_rows / (i+1)^(2*skew)] rows (clamped at
          [min_rows]) — a zipf-like size ladder *)
  correlation : float option;
      (** probability a join edge reuses the shared key column [jk1]
          (correlated predicates and shared interesting orders);
          [None] (default) keeps the legacy fixed 3/4 draw *)
}

val spec : ?shape:shape -> ?min_rows:int -> ?max_rows:int -> ?row_bytes:int ->
  ?skew:float -> ?correlation:float -> n_relations:int -> seed:int -> unit -> spec
(** Validated constructor.
    @raise Invalid_argument unless [n_relations >= 1],
    [1 <= min_rows <= max_rows], [row_bytes >= 24], [0 <= skew <= 1],
    and (when given) [0 <= correlation <= 1]. *)

type query = {
  catalog : Catalog.t;
  logical : Relalg.Logical.expr;  (** selections on leaves, left-deep join spine *)
  relations : string list;
  edges : (string * string) list;
      (** the join graph's edges, for connectivity checks and reporting *)
}

val generate : spec -> query
(** Build a fresh catalog with [n_relations] synthetic relations and a
    select–join query over all of them, with one selection predicate
    per relation (the paper's "as many selections as input relations").
    Cyclic shapes keep the left-deep spine; a join conjoins the
    predicates of every edge it newly connects. *)

val generate_batch : spec -> count:int -> query list
(** [count] queries with distinct derived seeds (the paper optimizes 50
    queries per complexity level). *)

(** {1 Overlapping batches}

    Workloads for multi-query optimization: [count] queries over {e one}
    shared catalog, a controllable fraction of which embed a common
    join/select core subtree (bit-identical across those queries, so
    per-subtree fingerprints unify it), each extended with per-query
    private relations and selections. *)

type batch = {
  batch_catalog : Catalog.t;  (** the one catalog all queries run against *)
  queries : Relalg.Logical.expr list;
  core : Relalg.Logical.expr option;
      (** the injected shared subtree; [None] when [sharing] rounded to
          zero queries *)
  core_relations : string list;  (** relations spanned by the core *)
}

val generate_overlapping :
  spec -> count:int -> ?core_relations:int -> sharing:float -> unit -> batch
(** [generate_overlapping spec ~count ~sharing ()] emits [count]
    queries of which [round (sharing * count)] embed the shared core (a
    selective chain join over [core_relations] relations, default 2);
    the rest use the same relations with per-query selections, so the
    control arm has the same shape but no cross-query subexpressions.
    @raise Invalid_argument unless [0 <= sharing <= 1],
    [count >= 1], and [1 <= core_relations < spec.n_relations]. *)
