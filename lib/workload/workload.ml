open Relalg

type shape =
  | Chain
  | Star
  | Random_acyclic
  | Clique
  | Cycle
  | Grid
  | Snowflake

let shape_name = function
  | Chain -> "chain"
  | Star -> "star"
  | Random_acyclic -> "random"
  | Clique -> "clique"
  | Cycle -> "cycle"
  | Grid -> "grid"
  | Snowflake -> "snowflake"

let all_shapes = [ Chain; Star; Random_acyclic; Clique; Cycle; Grid; Snowflake ]

let shape_of_string s =
  List.find_opt (fun sh -> String.equal (shape_name sh) s) all_shapes

type spec = {
  n_relations : int;
  shape : shape;
  min_rows : int;
  max_rows : int;
  row_bytes : int;
  seed : int;
  skew : float;
  correlation : float option;
}

let spec ?(shape = Chain) ?(min_rows = 1_200) ?(max_rows = 7_200) ?(row_bytes = 100)
    ?(skew = 0.) ?correlation ~n_relations ~seed () =
  if n_relations < 1 then invalid_arg "Workload.spec: need at least one relation";
  if min_rows < 1 || max_rows < min_rows then
    invalid_arg "Workload.spec: need 1 <= min_rows <= max_rows";
  if row_bytes < 24 then invalid_arg "Workload.spec: row_bytes must be at least 24";
  if not (skew >= 0. && skew <= 1.) then
    invalid_arg "Workload.spec: skew must be within [0, 1]";
  (match correlation with
   | Some c when not (c >= 0. && c <= 1.) ->
     invalid_arg "Workload.spec: correlation must be within [0, 1]"
   | _ -> ());
  { n_relations; shape; min_rows; max_rows; row_bytes; seed; skew; correlation }

type query = {
  catalog : Catalog.t;
  logical : Logical.expr;
  relations : string list;
  edges : (string * string) list;
}

(* Each relation has a key column, a set of join columns shared across
   the workload's domain, and filler columns padding the record to
   [row_bytes] (the paper's 100-byte records: column count follows from
   the target width). *)
let build_catalog rng spec =
  let catalog = Catalog.create () in
  let names = List.init spec.n_relations (fun i -> Printf.sprintf "rel%d" i) in
  List.iteri
    (fun i name ->
      let drawn =
        spec.min_rows + Random.State.int rng (max 1 (spec.max_rows - spec.min_rows + 1))
      in
      (* Skewed per-table statistics: a zipf-like ladder over the
         relation index — rel0 keeps [max_rows], later relations shrink
         as [1/(i+1)^(2*skew)] down to [min_rows]. [skew = 0] keeps the
         paper's uniform draw (and the exact RNG stream of older
         seeds — the draw is consumed either way). *)
      let rows =
        if spec.skew = 0. then drawn
        else
          max spec.min_rows
            (int_of_float
               (float_of_int spec.max_rows
               /. (float_of_int (i + 1) ** (2. *. spec.skew))))
      in
      (* Join columns draw from a shared domain so equi-joins are
         selective but non-empty; domain scales with relation size. *)
      let domain = max 10 (rows / 10) in
      let columns =
        [
          ("id", Catalog.Serial);
          ("jk1", Catalog.Uniform_int (0, domain - 1));
          ("jk2", Catalog.Uniform_int (0, (domain / 2) - 1));
          ("val", Catalog.Uniform_int (0, 999));
        ]
      in
      (* The record width (the paper's 100 bytes) is modeled by column
         widths rather than filler columns: "val" absorbs the padding. *)
      let widths = [ ("val", max 8 (spec.row_bytes - (3 * 8))) ] in
      ignore
        (Catalog.add_synthetic catalog ~name ~columns ~widths ~rows
           ~seed:(Random.State.bits rng) ()))
    names;
  (catalog, names)

let join_edges rng spec names =
  let arr = Array.of_list names in
  let n = Array.length arr in
  match spec.shape with
  | Chain -> List.init (n - 1) (fun i -> (arr.(i), arr.(i + 1)))
  | Star -> List.init (n - 1) (fun i -> (arr.(0), arr.(i + 1)))
  | Random_acyclic ->
    (* Random spanning tree: attach each relation to a random earlier
       one. *)
    List.init (n - 1) (fun i -> (arr.(Random.State.int rng (i + 1)), arr.(i + 1)))
  | Clique ->
    (* Every pair joined: the densest (and cyclic) join graph, where
       the plan space explodes fastest. *)
    List.concat
      (List.init n (fun i -> List.init (n - 1 - i) (fun j -> (arr.(i), arr.(i + 1 + j)))))
  | Cycle ->
    (* Chain plus a closing edge (cyclic for n >= 3). *)
    List.init (n - 1) (fun i -> (arr.(i), arr.(i + 1)))
    @ (if n >= 3 then [ (arr.(0), arr.(n - 1)) ] else [])
  | Grid ->
    (* Near-square row-major grid: each relation joined to its left and
       upper neighbours (cyclic once both dimensions exceed 1). *)
    let cols = max 1 (int_of_float (ceil (sqrt (float_of_int n)))) in
    List.concat
      (List.init n (fun i ->
           let left = if i mod cols > 0 then [ (arr.(i - 1), arr.(i)) ] else [] in
           let up = if i >= cols then [ (arr.(i - cols), arr.(i)) ] else [] in
           left @ up))
  | Snowflake ->
    (* rel0 is the fact table; roughly a third of the remaining
       relations are dimension heads joined to it, and the rest are
       sub-dimensions attached round-robin to the heads. With [skew]
       on, the size ladder makes the fact big and sub-dimensions tiny. *)
    let heads = max 1 ((n - 1 + 2) / 3) in
    List.init (n - 1) (fun i ->
        let i = i + 1 in
        if i <= heads then (arr.(0), arr.(i))
        else (arr.(((i - heads - 1) mod heads) + 1), arr.(i)))

let selection_predicate rng table_name =
  (* One selection per relation, on its value column, with random
     selectivity (the workload trait the paper's experiments use). *)
  let threshold = Random.State.int rng 1000 in
  let open Expr in
  if Random.State.bool rng then col (table_name ^ ".val") <=% int threshold
  else col (table_name ^ ".val") >% int threshold

let join_predicate rng spec (a, b) =
  (* Mostly join on jk1 so consecutive joins share sort orders — the
     "interesting orders" regime the paper's quality comparison needs.
     [correlation] tunes the shared-key probability (1.0: every edge
     reuses jk1, fully correlated predicates; 0.0: all independent);
     [None] keeps the legacy 3/4 draw bit-for-bit. *)
  let key =
    match spec.correlation with
    | None -> if Random.State.int rng 4 < 3 then "jk1" else "jk2"
    | Some c -> if Random.State.float rng 1.0 < c then "jk1" else "jk2"
  in
  let open Expr in
  col (a ^ "." ^ key) =% col (b ^ "." ^ key)

let generate spec =
  let rng = Random.State.make [| spec.seed; 0x5ca1ab1e |] in
  let catalog, names = build_catalog rng spec in
  let leaves =
    List.map
      (fun name -> (name, Logical.select (selection_predicate rng name) (Logical.get name)))
      names
  in
  let edges = join_edges rng spec names in
  (* Left-deep spine over the leaves in name order; each join carries
     the predicates of all edges it newly connects. *)
  let logical =
    match leaves with
    | [] -> assert false
    | (first, first_leaf) :: rest ->
      let _, expr =
        List.fold_left
          (fun (joined, acc) (name, leaf) ->
            let joined' = name :: joined in
            let preds =
              edges
              |> List.filter (fun (a, b) ->
                     (List.mem a joined && String.equal b name)
                     || (List.mem b joined && String.equal a name))
              |> List.map (join_predicate rng spec)
            in
            (joined', Logical.join (Expr.conjoin preds) acc leaf))
          ([ first ], first_leaf)
          rest
      in
      expr
  in
  { catalog; logical; relations = names; edges }

let generate_batch spec ~count =
  List.init count (fun i -> generate { spec with seed = spec.seed + (i * 7919) })

(* ---------- overlapping batches (multi-query optimization) ---------- *)

type batch = {
  batch_catalog : Catalog.t;
  queries : Logical.expr list;
  core : Logical.expr option;
  core_relations : string list;
}

(* The shared core subtree: a chain join over the core relations with
   fixed, selective selections. Deterministic — no generator draws — so
   every query that embeds it embeds the bit-identical subexpression
   and per-subtree fingerprints unify them. The tight selections keep
   the core's result small relative to its input scans, which is the
   regime where materializing once and rescanning beats recomputing. *)
let core_subtree names =
  let leaf name =
    Logical.select Expr.(col (name ^ ".val") <=% int 99) (Logical.get name)
  in
  match names with
  | [] -> invalid_arg "Workload.core_subtree: no relations"
  | first :: rest ->
    let _, expr =
      List.fold_left
        (fun (prev, acc) name ->
          (name, Logical.join Expr.(col (prev ^ ".jk1") =% col (name ^ ".jk1")) acc (leaf name)))
        (first, leaf first) rest
    in
    expr

(* Like [core_subtree] but with per-query random selections: the same
   shape over the same relations, yet canonically distinct — the
   sharing-off control arm. *)
let private_core rng names =
  match names with
  | [] -> invalid_arg "Workload.private_core: no relations"
  | first :: rest ->
    let leaf name = Logical.select (selection_predicate rng name) (Logical.get name) in
    let _, expr =
      List.fold_left
        (fun (prev, acc) name ->
          (name, Logical.join Expr.(col (prev ^ ".jk1") =% col (name ^ ".jk1")) acc (leaf name)))
        (first, leaf first) rest
    in
    expr

let generate_overlapping spec ~count ?(core_relations = 2) ~sharing () =
  if count < 1 then invalid_arg "Workload.generate_overlapping: count must be >= 1";
  if sharing < 0. || sharing > 1. then
    invalid_arg "Workload.generate_overlapping: sharing must be within [0, 1]";
  if core_relations < 1 || core_relations >= spec.n_relations then
    invalid_arg
      "Workload.generate_overlapping: need 1 <= core_relations < n_relations";
  let rng = Random.State.make [| spec.seed; 0x0ecca51a |] in
  let catalog, names = build_catalog rng spec in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  let rec drop n = function
    | _ :: rest when n > 0 -> drop (n - 1) rest
    | l -> l
  in
  let core_names = take core_relations names in
  let pool = Array.of_list (drop core_relations names) in
  let core = core_subtree core_names in
  let n_share = int_of_float ((sharing *. float_of_int count) +. 0.5) in
  let last_core = List.nth core_names (core_relations - 1) in
  let queries =
    List.init count (fun i ->
        let base = if i < n_share then core else private_core rng core_names in
        (* One or two private relations joined onto the core chain, with
           per-query selections — the non-shared part of each query. *)
        let extras = 1 + Random.State.int rng (min 2 (Array.length pool)) in
        let picks =
          let chosen = ref [] in
          while List.length !chosen < extras do
            let p = pool.(Random.State.int rng (Array.length pool)) in
            if not (List.mem p !chosen) then chosen := p :: !chosen
          done;
          List.rev !chosen
        in
        let _, expr =
          List.fold_left
            (fun (prev, acc) name ->
              let leaf = Logical.select (selection_predicate rng name) (Logical.get name) in
              ( name,
                Logical.join Expr.(col (prev ^ ".jk1") =% col (name ^ ".jk1")) acc leaf ))
            (last_core, base) picks
        in
        expr)
  in
  {
    batch_catalog = catalog;
    queries;
    core = (if n_share > 0 then Some core else None);
    core_relations = core_names;
  }
