(** Multi-query optimization over the shared memo.

    A batch of queries is loaded into {e one} optimizer session (one
    memo), so structurally-equal subexpressions across queries land in
    the same equivalence classes. Per-subtree fingerprints
    ({!Plansrv.Fingerprint.subtrees}) detect the common subexpressions,
    and the batch search decides, per shared result, whether to
    {e materialize} it once (paying the write cost) and have every
    other consumer {e reuse} it (paying a scan of the stored result),
    or to recompute it per consumer — the choice framed by Roy et al.,
    "Efficient and Extensible Algorithms for Multi Query Optimization".

    Two strategies are implemented on top of the common machinery:

    - {e Volcano-SH}: optimize every query independently (in the shared
      session), then run a cost-based post-pass over the winning plans:
      physical subplans computing the same logical subexpression in two
      or more places are candidates; one occurrence becomes the
      producer (wrapped in [Materialize]), the others are spliced to
      [Scan_materialized] when that strictly lowers the batch cost.
    - {e Volcano-RU}: process queries in arrival order; every earlier
      query's subexpressions are reuse candidates for later ones. A
      later query is re-optimized against a rewritten form that reads
      the materialized candidate, and the cheaper form wins. At the end
      of the batch, each materialization is kept only if the summed
      consumer gains exceed its compute + write cost — otherwise its
      consumers revert to their independent plans.

    Both strategies only ever {e lower} the batch cost relative to
    independent optimization (strict-improvement acceptance); with
    sharing [Off] the batch is bit-identical to independent runs. *)

type strategy =
  | Off  (** optimize each query independently in the shared session *)
  | Volcano_sh  (** post-pass over independently-optimal plans *)
  | Volcano_ru  (** reuse-aware re-optimization in arrival order *)

val strategy_name : strategy -> string
(** ["off"], ["volcano-sh"], ["volcano-ru"]. *)

val strategy_of_string : string -> strategy option
(** Accepts the names above plus the short forms ["sh"] and ["ru"]. *)

(** One shared subexpression detected across the batch. *)
type shared = {
  key : string;  (** canonical per-subtree fingerprint key *)
  mat_name : string;  (** catalog name of the materialized intermediate *)
  relations : string list;  (** base relations under the subexpression *)
  producer : int option;
      (** query whose plan computes and writes the result (Volcano-SH);
          [None] for Volcano-RU, where a standalone materialization job
          computes it (its cost is [compute + write]) *)
  producer_plan : Relmodel.Optimizer.plan_node option;
      (** the standalone producer plan (Volcano-RU) *)
  consumers : int list;  (** query indices reading the materialized result *)
  compute : Relalg.Cost.t;  (** computing the shared result once *)
  write : Relalg.Cost.t;  (** materialize write cost *)
  read : Relalg.Cost.t;  (** one consumer's scan of the stored result *)
  chosen : bool;
      (** whether materializing this result lowered the batch cost (and
          the rewrites were kept) *)
}

type query_result = {
  plan : Relmodel.Optimizer.plan_node option;  (** the final plan for this query *)
  independent_cost : Relalg.Cost.t;
      (** cost of this query optimized independently *)
  final_cost : Relalg.Cost.t;
      (** cost of the plan actually chosen for the batch (equals
          [independent_cost] when no reuse was applied) *)
  reused : string list;  (** materialized intermediates this plan reads *)
}

type report = {
  strategy : strategy;
  results : query_result list;  (** in input order *)
  shared : shared list;
  independent_total : float;
      (** sum of independent plan costs (I/O + CPU seconds) *)
  batch_total : float;
      (** total batch cost: final plan costs plus, for Volcano-RU, the
          compute + write cost of every chosen materialization job.
          Never exceeds [independent_total]; strictly below it whenever
          any materialization was chosen *)
  shared_groups : int;
      (** subexpressions that occurred in two or more queries *)
  materialize_chosen : int;  (** shared results the search materialized *)
  reuse_hits : int;  (** consumer sites rewritten to read a materialized result *)
  stats : Volcano.Search_stats.t;
      (** cumulative session search effort, with the [mqo_*] counters
          filled in *)
}

val optimize_batch :
  ?strategy:strategy ->
  Relmodel.Optimizer.request ->
  (Relalg.Logical.expr * Relalg.Phys_prop.t) list ->
  report
(** Optimize a batch of (query, required properties) pairs in one
    shared session. Chosen materialized intermediates stay registered
    in the request's catalog (the final plans reference them); rejected
    ones are removed again. *)

val serve_batch :
  ?strategy:strategy ->
  Plansrv.t ->
  Plansrv.worker ->
  (Relalg.Logical.expr * Relalg.Phys_prop.t) list ->
  report * Plansrv.response list
(** Like {!optimize_batch}, but the per-query independent results are
    served through the plan service's sharded cache ({!Plansrv.serve_one}
    per query — warm batches skip the independent optimizations), and
    the batch pass's extra search effort (including the [mqo_*]
    counters) is folded into the service's merged metrics
    ({!Plansrv.note_search}). *)
