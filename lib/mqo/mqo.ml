open Relalg
module Optimizer = Relmodel.Optimizer

type strategy =
  | Off
  | Volcano_sh
  | Volcano_ru

let strategy_name = function
  | Off -> "off"
  | Volcano_sh -> "volcano-sh"
  | Volcano_ru -> "volcano-ru"

let strategy_of_string = function
  | "off" -> Some Off
  | "sh" | "volcano-sh" -> Some Volcano_sh
  | "ru" | "volcano-ru" -> Some Volcano_ru
  | _ -> None

type shared = {
  key : string;
  mat_name : string;
  relations : string list;
  producer : int option;
  producer_plan : Optimizer.plan_node option;
  consumers : int list;
  compute : Cost.t;
  write : Cost.t;
  read : Cost.t;
  chosen : bool;
}

type query_result = {
  plan : Optimizer.plan_node option;
  independent_cost : Cost.t;
  final_cost : Cost.t;
  reused : string list;
}

type report = {
  strategy : strategy;
  results : query_result list;
  shared : shared list;
  independent_total : float;
  batch_total : float;
  shared_groups : int;
  materialize_chosen : int;
  reuse_hits : int;
  stats : Volcano.Search_stats.t;
}

let scalar = Cost.total

let fresh_mat_name catalog =
  let rec go i =
    let name = Printf.sprintf "__mqo%d" i in
    if Catalog.mem catalog name then go (i + 1) else name
  in
  go 0

(* The logical subexpression a physical subplan computes. Enforcers
   (and [Materialize]) are logically transparent — they map to their
   input's expression; every algorithm maps to the operator(s) it
   implements, mirroring {!Relmodel.Plan_cost.derive_alg}. *)
let rec logical_of_node (n : Optimizer.plan_node) : Logical.expr option =
  let child i =
    match List.nth_opt n.children i with
    | Some c -> logical_of_node c
    | None -> None
  in
  let map1 f = Option.map f (child 0) in
  let map2 f =
    match child 0, child 1 with
    | Some l, Some r -> Some (f l r)
    | _, _ -> None
  in
  match n.alg with
  | Physical.Table_scan t | Physical.Scan_materialized t -> Some (Logical.get t)
  | Physical.Index_scan (t, _, pred) -> Some (Logical.select pred (Logical.get t))
  | Physical.Filter p -> map1 (Logical.select p)
  | Physical.Project_cols cols -> map1 (Logical.project cols)
  | Physical.Nested_loop_join p | Physical.Merge_join (_, p) | Physical.Hash_join (_, p)
    ->
    map2 (Logical.join p)
  | Physical.Hash_join_project (_, p, cols) ->
    map2 (fun l r -> Logical.project cols (Logical.join p l r))
  | Physical.Sort _ | Physical.Hash_dedup | Physical.Sort_dedup _ | Physical.Repartition _
  | Physical.Gather | Physical.Merge_gather _ | Physical.Materialize _ -> child 0
  | Physical.Merge_union | Physical.Hash_union -> map2 Logical.union
  | Physical.Merge_intersect | Physical.Hash_intersect -> map2 Logical.intersect
  | Physical.Merge_difference | Physical.Hash_difference -> map2 Logical.difference
  | Physical.Stream_aggregate (keys, aggs) | Physical.Hash_aggregate (keys, aggs) ->
    map1 (Logical.group_by keys aggs)

let rec mem_node needle (n : Optimizer.plan_node) =
  n == needle || List.exists (mem_node needle) n.children

let rec scan_names acc (n : Optimizer.plan_node) =
  let acc =
    match n.alg with
    | Physical.Scan_materialized t -> if List.mem t acc then acc else t :: acc
    | _ -> acc
  in
  List.fold_left scan_names acc n.children

let reused_of plan =
  match plan with
  | None -> []
  | Some p -> List.rev (scan_names [] p)

(* ------------------------------------------------------------------ *)
(* Volcano-SH: cost-based post-pass over independently-optimal plans   *)
(* ------------------------------------------------------------------ *)

type occurrence = {
  o_query : int;
  o_node : Optimizer.plan_node;
}

(* Splice a plan: replace occurrence nodes (by physical identity) with
   [Scan_materialized] leaves, wrap the producer node in [Materialize],
   and repair the cumulative costs along every rebuilt path. Untouched
   subtrees are returned as-is, so later candidates can still locate
   their occurrence nodes by identity. *)
let splice ~replacements ~producer_site plan =
  let rec go (n : Optimizer.plan_node) : Optimizer.plan_node =
    match List.assq_opt n replacements with
    | Some leaf -> leaf
    | None ->
      let wrap (n : Optimizer.plan_node) =
        match producer_site with
        | Some (site, mat_name, write) when site == n ->
          {
            Optimizer.alg = Physical.Materialize mat_name;
            children = [ n ];
            props = n.props;
            cost = Cost.add n.cost write;
          }
        | _ -> n
      in
      let children' = List.map go n.children in
      if List.for_all2 ( == ) children' n.children then wrap n
      else begin
        let old_sum =
          List.fold_left (fun acc (c : Optimizer.plan_node) -> Cost.add acc c.cost)
            Cost.zero n.children
        in
        let new_sum =
          List.fold_left (fun acc (c : Optimizer.plan_node) -> Cost.add acc c.cost)
            Cost.zero children'
        in
        let local = Cost.sub n.cost old_sum in
        wrap { n with children = children'; cost = Cost.add local new_sum }
      end
  in
  go plan

let sh_pass ~catalog ~params (plans : Optimizer.plan_node option array) =
  (* Every non-enforcer subplan computing a multi-relation (non-leaf)
     logical expression, keyed by its canonical subtree fingerprint. *)
  let occurrences : (string, occurrence list ref) Hashtbl.t = Hashtbl.create 64 in
  let key_order = ref [] in
  let record qi (n : Optimizer.plan_node) =
    if
      (not (Physical.is_enforcer n.alg))
      && n.props.Phys_prop.partitioning = Phys_prop.Singleton
    then
      match logical_of_node n with
      | Some l when Logical.size l > 1 -> begin
        let key = Plansrv.Fingerprint.expr_key l in
        match Hashtbl.find_opt occurrences key with
        | Some occs -> occs := { o_query = qi; o_node = n } :: !occs
        | None ->
          Hashtbl.add occurrences key (ref [ { o_query = qi; o_node = n } ]);
          key_order := key :: !key_order
      end
      | _ -> ()
  in
  Array.iteri
    (fun qi plan ->
      match plan with
      | None -> ()
      | Some p ->
        let rec walk n =
          record qi n;
          List.iter walk n.Optimizer.children
        in
        walk p)
    plans;
  let current = Array.copy plans in
  let total () =
    Array.fold_left
      (fun acc plan ->
        match plan with
        | None -> acc
        | Some (p : Optimizer.plan_node) -> acc +. scalar p.cost)
      0. current
  in
  (* Shared candidates: keys spanning at least two queries. *)
  let candidates =
    List.rev !key_order
    |> List.filter_map (fun key ->
           let occs = List.rev !(Hashtbl.find occurrences key) in
           let queries = List.sort_uniq compare (List.map (fun o -> o.o_query) occs) in
           if List.length queries >= 2 then Some (key, occs) else None)
  in
  let shared_groups = List.length candidates in
  (* Estimated savings order the greedy pass; acceptance itself re-checks
     the spliced plans for strict improvement. *)
  let estimate occs =
    List.fold_left (fun acc o -> acc +. scalar o.o_node.Optimizer.cost) 0. occs
  in
  let ordered =
    List.stable_sort (fun (_, a) (_, b) -> compare (estimate b) (estimate a)) candidates
  in
  let shared = ref [] in
  let reuse_hits = ref 0 in
  let chosen_count = ref 0 in
  List.iter
    (fun (key, occs) ->
      (* Occurrences still present (by identity) in the current plans. *)
      let occs =
        List.filter
          (fun o ->
            match current.(o.o_query) with
            | Some p -> mem_node o.o_node p
            | None -> false)
          occs
      in
      if List.length occs >= 2 then begin
        (* Producer: the occurrence delivering the strongest order, so
           the stored result covers every consumer's delivered
           properties. *)
        let ordered_occs =
          List.stable_sort
            (fun a b ->
              compare
                (List.length b.o_node.Optimizer.props.Phys_prop.order)
                (List.length a.o_node.Optimizer.props.Phys_prop.order))
            occs
        in
        let producer = List.hd ordered_occs in
        let stored_order = producer.o_node.Optimizer.props.Phys_prop.order in
        let scan_props =
          {
            Phys_prop.order = stored_order;
            distinct = false;
            partitioning = Phys_prop.Singleton;
          }
        in
        let props_l =
          Relmodel.Plan_cost.props catalog (Optimizer.to_physical producer.o_node)
        in
        let mat_name = fresh_mat_name catalog in
        let read =
          Cost_model.cost params (Physical.Scan_materialized mat_name) ~inputs:[]
            ~output:props_l
        in
        let write =
          Cost_model.cost params (Physical.Materialize mat_name) ~inputs:[ props_l ]
            ~output:props_l
        in
        let consumers =
          List.filter
            (fun o ->
              (not (o.o_node == producer.o_node))
              && Phys_prop.covers ~provided:scan_props ~required:o.o_node.Optimizer.props
              && scalar o.o_node.Optimizer.cost > scalar read)
            ordered_occs
        in
        if consumers <> [] then begin
          let before = total () in
          let leaf =
            {
              Optimizer.alg = Physical.Scan_materialized mat_name;
              children = [];
              props = scan_props;
              cost = read;
            }
          in
          let next = Array.copy current in
          let affected = List.sort_uniq compare (List.map (fun o -> o.o_query) (producer :: consumers)) in
          List.iter
            (fun qi ->
              let replacements =
                List.filter_map
                  (fun o -> if o.o_query = qi then Some (o.o_node, leaf) else None)
                  consumers
              in
              let producer_site =
                if producer.o_query = qi then Some (producer.o_node, mat_name, write)
                else None
              in
              next.(qi) <-
                Option.map (splice ~replacements ~producer_site) current.(qi))
            affected;
          let after =
            Array.fold_left
              (fun acc plan ->
                match plan with
                | None -> acc
                | Some (p : Optimizer.plan_node) -> acc +. scalar p.cost)
              0. next
          in
          let accept = after < before in
          if accept then begin
            Array.blit next 0 current 0 (Array.length next);
            ignore
              (Catalog.add_materialized catalog ~name:mat_name ~props:props_l
                 ~stored_order ());
            reuse_hits := !reuse_hits + List.length consumers;
            incr chosen_count
          end;
          shared :=
            {
              key;
              mat_name = (if accept then mat_name else "");
              relations = props_l.Logical_props.relations;
              producer = Some producer.o_query;
              producer_plan = None;
              consumers = List.sort_uniq compare (List.map (fun o -> o.o_query) consumers);
              compute = producer.o_node.Optimizer.cost;
              write;
              read;
              chosen = accept;
            }
            :: !shared
        end
      end)
    ordered;
  (current, List.rev !shared, shared_groups, !chosen_count, !reuse_hits)

(* ------------------------------------------------------------------ *)
(* Volcano-RU: reuse-aware re-optimization in arrival order            *)
(* ------------------------------------------------------------------ *)

type mat = {
  m_name : string;
  m_compute : Cost.t;
  m_write : Cost.t;
  m_read : Cost.t;
  m_relations : string list;
  m_plan : Optimizer.plan_node;
}

type candidate = {
  c_expr : Logical.expr;  (** canonical subexpression *)
  mutable c_mat : mat option;  (** materialized lazily on first match *)
}

(* Replace every subtree whose canonical key is [key] by a scan of the
   materialized intermediate; returns the rewritten expression and how
   many sites were replaced. *)
let rewrite_expr ~key ~mat e =
  let count = ref 0 in
  let rec go e =
    if String.equal (Plansrv.Fingerprint.expr_key e) key then begin
      incr count;
      Logical.get mat
    end
    else Logical.mk e.Logical.op (List.map go e.Logical.inputs)
  in
  let e' = go e in
  (e', !count)

type tentative = {
  t_query : int;
  t_gain : float;  (** independent scalar cost minus rewritten scalar cost *)
  t_result : Optimizer.result;
  t_sites : int;  (** consumer sites rewritten in this query *)
}

let ensure_mat ~catalog ~params ~session cand =
  match cand.c_mat with
  | Some m -> Some m
  | None -> begin
    match
      (Optimizer.optimize_in session cand.c_expr ~required:Phys_prop.any).Optimizer.plan
    with
    | None -> None
    | Some pl ->
      let props_l = Relmodel.Plan_cost.props catalog (Optimizer.to_physical pl) in
      let name = fresh_mat_name catalog in
      let tbl =
        Catalog.add_materialized catalog ~name ~props:props_l
          ~stored_order:pl.Optimizer.props.Phys_prop.order ()
      in
      let read =
        Cost_model.cost params (Physical.Scan_materialized name) ~inputs:[]
          ~output:(Catalog.base_props tbl)
      in
      let write =
        Cost_model.cost params (Physical.Materialize name) ~inputs:[ props_l ]
          ~output:props_l
      in
      let m =
        {
          m_name = name;
          m_compute = pl.Optimizer.cost;
          m_write = write;
          m_read = read;
          m_relations = props_l.Logical_props.relations;
          m_plan = pl;
        }
      in
      cand.c_mat <- Some m;
      Some m
  end

let ru_pass ~catalog ~params ~session (queries : (Logical.expr * Phys_prop.t) array)
    (inds : Optimizer.result array) =
  let n = Array.length queries in
  let candidates : (string, candidate) Hashtbl.t = Hashtbl.create 64 in
  let matched : (string, tentative list ref) Hashtbl.t = Hashtbl.create 16 in
  let matched_order = ref [] in
  let finals = Array.map (fun (r : Optimizer.result) -> (r, [])) inds in
  for i = 0 to n - 1 do
    let q, required = queries.(i) in
    let subs = Plansrv.Fingerprint.subtrees q in
    (match inds.(i).Optimizer.plan with
     | None -> ()
     | Some ind_plan ->
       let ind_cost = scalar ind_plan.Optimizer.cost in
       let canon_q =
         match List.rev subs with
         | (_, root) :: _ -> root
         | [] -> q
       in
       (* Candidate keys from earlier queries present in this one. *)
       let matches =
         subs
         |> List.filter (fun (_, sub) -> Logical.size sub > 1)
         |> List.filter_map (fun (key, _) ->
                Option.map (fun c -> (key, c)) (Hashtbl.find_opt candidates key))
         |> List.sort_uniq (fun (a, _) (b, _) -> String.compare a b)
       in
       (* Evaluate each matching candidate separately and keep the best
          strictly-improving one, so the end-of-batch accounting can
          attribute each query's gain to exactly one materialization. *)
       let best =
         List.fold_left
           (fun best (key, cand) ->
             match ensure_mat ~catalog ~params ~session cand with
             | None -> best
             | Some m -> begin
               let rewritten, sites = rewrite_expr ~key ~mat:m.m_name canon_q in
               if sites = 0 then best
               else begin
                 let r = Optimizer.optimize_in session rewritten ~required in
                 match r.Optimizer.plan with
                 | None -> best
                 | Some rw_plan ->
                   let gain = ind_cost -. scalar rw_plan.Optimizer.cost in
                   if
                     gain > 0.
                     &&
                     match best with
                     | None -> true
                     | Some (_, b) -> gain > b.t_gain
                   then
                     Some
                       (key, { t_query = i; t_gain = gain; t_result = r; t_sites = sites })
                   else best
               end
             end)
           None matches
       in
       (match best with
        | None -> ()
        | Some (key, t) ->
          (match Hashtbl.find_opt matched key with
           | Some l -> l := t :: !l
           | None ->
             Hashtbl.add matched key (ref [ t ]);
             matched_order := key :: !matched_order)));
    (* Register this query's own subexpressions for later arrivals —
       from the original form, whether or not a rewrite was accepted. *)
    List.iter
      (fun (key, sub) ->
        if Logical.size sub > 1 && not (Hashtbl.mem candidates key) then
          Hashtbl.add candidates key { c_expr = sub; c_mat = None })
      subs
  done;
  (* End-of-batch decision: keep a materialization only if the summed
     consumer gains exceed its compute + write cost. *)
  let shared = ref [] in
  let chosen_count = ref 0 in
  let reuse_hits = ref 0 in
  let net_total = ref 0. in
  List.iter
    (fun key ->
      let tentatives = List.rev !(Hashtbl.find matched key) in
      let cand = Hashtbl.find candidates key in
      match cand.c_mat with
      | None -> ()
      | Some m ->
        let gains = List.fold_left (fun acc t -> acc +. t.t_gain) 0. tentatives in
        let overhead = scalar m.m_compute +. scalar m.m_write in
        let chosen = gains > overhead in
        if chosen then begin
          incr chosen_count;
          net_total := !net_total +. (gains -. overhead);
          List.iter
            (fun t ->
              reuse_hits := !reuse_hits + t.t_sites;
              finals.(t.t_query) <- (t.t_result, [ m.m_name ]))
            tentatives
        end;
        shared :=
          {
            key;
            mat_name = m.m_name;
            relations = m.m_relations;
            producer = None;
            producer_plan = (if chosen then Some m.m_plan else None);
            consumers = List.map (fun t -> t.t_query) tentatives;
            compute = m.m_compute;
            write = m.m_write;
            read = m.m_read;
            chosen;
          }
          :: !shared)
    (List.rev !matched_order);
  (* Drop the intermediates that did not pay off. *)
  Hashtbl.iter
    (fun key cand ->
      match cand.c_mat with
      | Some m ->
        let kept =
          match Hashtbl.find_opt matched key with
          | Some ts -> List.exists (fun t -> fst finals.(t.t_query) != inds.(t.t_query)) !ts
          | None -> false
        in
        if not kept then Catalog.remove catalog m.m_name
      | None -> ())
    candidates;
  let shared_groups =
    Hashtbl.fold (fun _ _ acc -> acc + 1) matched 0
  in
  (finals, List.rev !shared, shared_groups, !chosen_count, !reuse_hits, !net_total)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let cost_of (r : Optimizer.result) =
  match r.Optimizer.plan with
  | Some p -> p.Optimizer.cost
  | None -> Cost.zero

let finish ~strategy ~inds ~final_plans ~final_costs ~reused ~shared ~shared_groups
    ~materialize_chosen ~reuse_hits ~batch_total ~stats =
  let independent_total =
    Array.fold_left (fun acc c -> acc +. scalar c) 0. (Array.map cost_of inds)
  in
  let results =
    Array.to_list
      (Array.mapi
         (fun i plan ->
           {
             plan;
             independent_cost = cost_of inds.(i);
             final_cost = final_costs.(i);
             reused = reused.(i);
           })
         final_plans)
  in
  let stats = Volcano.Search_stats.copy stats in
  stats.Volcano.Search_stats.mqo_shared_groups <- shared_groups;
  stats.Volcano.Search_stats.mqo_materialize_chosen <- materialize_chosen;
  stats.Volcano.Search_stats.mqo_reuse_hits <- reuse_hits;
  {
    strategy;
    results;
    shared;
    independent_total;
    batch_total;
    shared_groups;
    materialize_chosen;
    reuse_hits;
    stats;
  }

let session_stats (results : Optimizer.result list) =
  match List.rev results with
  | last :: _ -> last.Optimizer.stats
  | [] -> Volcano.Search_stats.create ()

let batch_with ~strategy ~(request : Optimizer.request) ~session
    (queries : (Logical.expr * Phys_prop.t) list)
    (inds : Optimizer.result array) ~extra_stats =
  let catalog = request.Optimizer.catalog and params = request.Optimizer.params in
  match strategy with
  | Off ->
    let final_plans = Array.map (fun (r : Optimizer.result) -> r.Optimizer.plan) inds in
    let final_costs = Array.map cost_of inds in
    let batch_total = Array.fold_left (fun acc c -> acc +. scalar c) 0. final_costs in
    finish ~strategy ~inds ~final_plans ~final_costs
      ~reused:(Array.map (fun _ -> []) inds)
      ~shared:[] ~shared_groups:0 ~materialize_chosen:0 ~reuse_hits:0 ~batch_total
      ~stats:(extra_stats ())
  | Volcano_sh ->
    let plans = Array.map (fun (r : Optimizer.result) -> r.Optimizer.plan) inds in
    let final_plans, shared, shared_groups, chosen, reuse_hits =
      sh_pass ~catalog ~params plans
    in
    let final_costs =
      Array.map
        (fun plan ->
          match plan with
          | Some (p : Optimizer.plan_node) -> p.Optimizer.cost
          | None -> Cost.zero)
        final_plans
    in
    let batch_total = Array.fold_left (fun acc c -> acc +. scalar c) 0. final_costs in
    finish ~strategy ~inds ~final_plans ~final_costs
      ~reused:(Array.map reused_of final_plans)
      ~shared ~shared_groups ~materialize_chosen:chosen ~reuse_hits ~batch_total
      ~stats:(extra_stats ())
  | Volcano_ru ->
    let queries = Array.of_list queries in
    let finals, shared, shared_groups, chosen, reuse_hits, net_total =
      ru_pass ~catalog ~params ~session queries inds
    in
    let final_plans = Array.map (fun (r, _) -> r.Optimizer.plan) finals in
    let final_costs = Array.map (fun (r, _) -> cost_of r) finals in
    let independent_total =
      Array.fold_left (fun acc r -> acc +. scalar (cost_of r)) 0. inds
    in
    (* Batch total = independent total minus the strictly-positive net
       benefit of every chosen materialization (consumer gains less the
       one-time compute + write), so "chosen implies strictly cheaper"
       holds exactly. *)
    let batch_total = independent_total -. net_total in
    finish ~strategy ~inds ~final_plans ~final_costs
      ~reused:(Array.map (fun (_, reused) -> reused) finals)
      ~shared ~shared_groups ~materialize_chosen:chosen ~reuse_hits ~batch_total
      ~stats:(extra_stats ())

let optimize_batch ?(strategy = Off) (request : Optimizer.request) queries =
  let session = Optimizer.session request in
  let results =
    List.map
      (fun (q, required) -> Optimizer.optimize_in session q ~required)
      queries
  in
  let inds = Array.of_list results in
  (* Cumulative session effort: the independent pass plus whatever
     re-optimizations the strategy ran afterwards. The session's stats
     record is shared across its results, so reading the last result
     after the batch pass reflects everything. *)
  batch_with ~strategy ~request ~session queries inds ~extra_stats:(fun () ->
      session_stats results)

let serve_batch ?(strategy = Off) srv worker queries =
  let request = Plansrv.service_request srv in
  let responses =
    List.map (fun (q, required) -> Plansrv.serve_one srv worker q ~required) queries
  in
  (* Independent results come from the sharded cache; wrap them in the
     result shape the batch pass consumes. *)
  let inds =
    Array.of_list
      (List.map
         (fun (resp : Plansrv.response) ->
           {
             Optimizer.plan = resp.Plansrv.plan;
             complete = true;
             tasks_run = 0;
             stats = Volcano.Search_stats.create ();
             memo_groups = 0;
             memo_mexprs = 0;
             explain = None;
           })
         responses)
  in
  let session = Optimizer.session request in
  let local_stats = Volcano.Search_stats.create () in
  let report =
    batch_with ~strategy ~request ~session queries inds ~extra_stats:(fun () ->
        local_stats)
  in
  (* Fold the batch pass's effort — the RU re-optimizations' counters
     live in the session results we didn't keep, but the mqo_* deltas
     are what the service-level registry must export. *)
  let delta = Volcano.Search_stats.create () in
  delta.Volcano.Search_stats.mqo_shared_groups <- report.shared_groups;
  delta.Volcano.Search_stats.mqo_materialize_chosen <- report.materialize_chosen;
  delta.Volcano.Search_stats.mqo_reuse_hits <- report.reuse_hits;
  Plansrv.note_search srv delta;
  (report, responses)
