(** Dynamic plans for incompletely specified queries.

    The paper's fifth requirement (§1): the generator "had to support
    flexible cost models that permit generating dynamic plans for
    incompletely specified queries" — queries with a run-time parameter
    whose value (and therefore selectivity) is unknown at optimization
    time, later developed into the choose-plan operator (Cole & Graefe).

    [prepare] optimizes the query template once per parameter bucket
    and keeps each distinct winning plan; at run time [choose] picks
    the bucket plan for the actual parameter value — a start-up-time
    choose-plan, with no re-optimization. *)

type template = Relalg.Value.t -> Relalg.Logical.expr
(** A query parameterized by one run-time value. The function must be
    {e structural}: for every argument it returns the same operator
    tree, with the argument embedded as a constant. *)

type bucket = {
  lo : float;
  hi : float;  (** parameter interval covered by this plan *)
  witness : float;  (** representative value the plan was optimized for *)
  plan : Relmodel.Optimizer.plan_node;
}

type t = {
  buckets : bucket list;  (** ascending, contiguous; distinct plans only *)
  static_plan : Relmodel.Optimizer.plan_node;
      (** the conventional single plan, optimized at the range midpoint *)
  required : Relalg.Phys_prop.t;
}

val prepare :
  request:Relmodel.Optimizer.request ->
  template ->
  range:float * float ->
  ?buckets:int ->
  required:Relalg.Phys_prop.t ->
  unit ->
  t
(** Optimize the template at [buckets] (default 8) evenly spaced
    witnesses across [range], merging adjacent intervals whose winning
    plans have the same shape.
    @raise Invalid_argument if any bucket fails to produce a plan. *)

val choose : t -> Relalg.Value.t -> bucket
(** The bucket covering the actual parameter value (clamped to the
    range). *)

val instantiate :
  Relmodel.Optimizer.plan_node -> witness:float -> actual:Relalg.Value.t ->
  Relalg.Physical.plan
(** Substitute the actual parameter for the witness constant throughout
    the plan's predicates, yielding an executable plan. *)

val instantiate_node :
  Relmodel.Optimizer.plan_node -> witness:float -> actual:Relalg.Value.t ->
  Relmodel.Optimizer.plan_node
(** Like {!instantiate} but preserving the per-node property and cost
    annotations (the costs remain those of the witness optimization).
    Used by the plan cache to hand out annotated plans from
    parameterized entries. *)

val execute :
  Catalog.t -> t -> param:Relalg.Value.t ->
  Relalg.Tuple.t array * Relalg.Schema.t * Executor.Io_stats.t
(** Choose, instantiate, run. *)

val n_distinct_plans : t -> int
(** Number of structurally distinct plans across the buckets — [1]
    means the optimizer's choice is parameter-insensitive over the
    whole range and the dynamic plan degenerates to the static one. *)
