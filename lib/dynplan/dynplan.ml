open Relalg

type template = Value.t -> Logical.expr

type bucket = {
  lo : float;
  hi : float;
  witness : float;
  plan : Relmodel.Optimizer.plan_node;
}

type t = {
  buckets : bucket list;
  static_plan : Relmodel.Optimizer.plan_node;
  required : Phys_prop.t;
}

(* Witnesses carry a sub-integer tag so they can be located and replaced
   inside the plan's predicates without colliding with the query's own
   constants (which are integers or "round" floats in practice). *)
let tag = 2.4414e-4

let witness_value w = Value.Float (w +. tag)

let rec subst_expr ~witness ~actual (e : Expr.t) : Expr.t =
  match e with
  | Expr.Const (Value.Float f) when Float.abs (f -. (witness +. tag)) < 1e-9 ->
    Expr.Const actual
  | Expr.Const _ | Expr.Col _ -> e
  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, subst_expr ~witness ~actual a, subst_expr ~witness ~actual b)
  | Expr.And (a, b) -> Expr.And (subst_expr ~witness ~actual a, subst_expr ~witness ~actual b)
  | Expr.Or (a, b) -> Expr.Or (subst_expr ~witness ~actual a, subst_expr ~witness ~actual b)
  | Expr.Not a -> Expr.Not (subst_expr ~witness ~actual a)
  | Expr.Arith (op, a, b) ->
    Expr.Arith (op, subst_expr ~witness ~actual a, subst_expr ~witness ~actual b)

let subst_alg ~witness ~actual (alg : Physical.alg) : Physical.alg =
  let s = subst_expr ~witness ~actual in
  match alg with
  | Physical.Filter p -> Physical.Filter (s p)
  | Physical.Index_scan (t, cols, p) -> Physical.Index_scan (t, cols, s p)
  | Physical.Hash_join_project (keys, p, cols) -> Physical.Hash_join_project (keys, s p, cols)
  | Physical.Nested_loop_join p -> Physical.Nested_loop_join (s p)
  | Physical.Merge_join (keys, p) -> Physical.Merge_join (keys, s p)
  | Physical.Hash_join (keys, p) -> Physical.Hash_join (keys, s p)
  | Physical.Table_scan _ | Physical.Project_cols _ | Physical.Sort _ | Physical.Hash_dedup
  | Physical.Sort_dedup _ | Physical.Repartition _ | Physical.Gather
  | Physical.Merge_gather _ | Physical.Merge_union | Physical.Hash_union
  | Physical.Merge_intersect | Physical.Hash_intersect | Physical.Merge_difference
  | Physical.Hash_difference | Physical.Stream_aggregate _ | Physical.Hash_aggregate _
  | Physical.Materialize _ | Physical.Scan_materialized _ ->
    alg

let instantiate (plan : Relmodel.Optimizer.plan_node) ~witness ~actual : Physical.plan =
  let rec go (p : Relmodel.Optimizer.plan_node) =
    Physical.mk (subst_alg ~witness ~actual p.alg) (List.map go p.children)
  in
  go plan

let instantiate_node (plan : Relmodel.Optimizer.plan_node) ~witness ~actual :
    Relmodel.Optimizer.plan_node =
  let rec go (p : Relmodel.Optimizer.plan_node) =
    { p with alg = subst_alg ~witness ~actual p.alg; children = List.map go p.children }
  in
  go plan

(* Plan shape, with the parameter constant erased, for merging buckets
   that chose the same plan. *)
let shape_of (plan : Relmodel.Optimizer.plan_node) ~witness =
  Physical.to_string (instantiate plan ~witness ~actual:(Value.Str "?"))

let prepare ~request template ~range:(lo, hi) ?(buckets = 8) ~required () : t =
  if buckets < 1 || hi <= lo then invalid_arg "Dynplan.prepare: bad range or bucket count";
  let width = (hi -. lo) /. Float.of_int buckets in
  let optimize_at w =
    let query = template (witness_value w) in
    match (Relmodel.Optimizer.optimize request query ~required).plan with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Dynplan.prepare: no plan at parameter %g" w)
  in
  let raw =
    List.init buckets (fun i ->
        let b_lo = lo +. (Float.of_int i *. width) in
        let witness = b_lo +. (width /. 2.) in
        { lo = b_lo; hi = b_lo +. width; witness; plan = optimize_at witness })
  in
  (* Merge adjacent buckets with the same plan shape. *)
  let merged =
    List.fold_left
      (fun acc b ->
        match acc with
        | prev :: rest when shape_of prev.plan ~witness:prev.witness = shape_of b.plan ~witness:b.witness
          ->
          { prev with hi = b.hi } :: rest
        | _ -> b :: acc)
      [] raw
    |> List.rev
  in
  let mid = (lo +. hi) /. 2. in
  { buckets = merged; static_plan = optimize_at mid; required }

let choose t (param : Value.t) : bucket =
  let v = Option.value (Value.to_float param) ~default:nan in
  let rec pick = function
    | [] -> invalid_arg "Dynplan.choose: empty dynamic plan"
    | [ last ] -> last
    | b :: rest -> if v < b.hi then b else pick rest
  in
  pick t.buckets

let execute catalog t ~param =
  let b = choose t param in
  Executor.run catalog (instantiate b.plan ~witness:b.witness ~actual:param)

let n_distinct_plans t = List.length t.buckets
