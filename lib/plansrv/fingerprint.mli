(** Query fingerprints: a canonical normal form for logical queries
    hashed into a stable plan-cache key.

    Two queries that the optimizer must treat identically — notably
    commutative variants (swapped inner-join, union, or intersection
    inputs) and reordered conjunctions — receive the same fingerprint.
    The cache therefore stores the plan of the {e canonical} form, and
    every variant is served from it.

    With [parameterize] on, the single numeric literal of a
    column-versus-constant comparison is erased from the key and
    reported as a {!param} slot, so one cached entry (backed by
    {!Dynplan} buckets) serves the whole family of literal values. *)

type t = {
  key : string;
      (** full canonical serialization (query + required properties);
          collision-free by construction *)
  hash : int;  (** stable hash of [key]; selects the cache shard *)
  tables : string list;  (** referenced relations, sorted, distinct *)
  param : (string * Relalg.Value.t) option;
      (** [(column, literal)] when the query was parameterized: the
          column the erased literal is compared against, and the
          literal's actual value in this request *)
}

val canonicalize : Relalg.Logical.expr -> Relalg.Logical.expr
(** The canonical normal form: inputs of commutative binary operators
    ordered by their serialization, conjunction/disjunction chains
    flattened and sorted, comparisons oriented column-first. Semantics
    preserving — the optimizer may be handed the canonical form in
    place of the original. *)

val of_query :
  ?parameterize:bool ->
  Relalg.Logical.expr ->
  required:Relalg.Phys_prop.t ->
  t * Relalg.Logical.expr
(** Fingerprint a query under its required physical properties;
    also returns the canonical form (literals intact) that a cache
    miss should optimize. [parameterize] defaults to [false]; it only
    takes effect when the canonical query contains {e exactly one}
    numeric literal compared against a column — otherwise the literal
    stays in the key. *)

val subtrees : Relalg.Logical.expr -> (string * Relalg.Logical.expr) list
(** Per-subtree fingerprint keys for multi-query sharing: canonicalize
    the whole expression, then emit [(key, canonical_subtree)] for every
    node, bottom-up (children strictly before parents). Keys are built
    from child keys, so the walk is near-linear. Two subtrees — from the
    same or different queries — receive equal keys iff their canonical
    forms are equal. *)

val expr_key : Relalg.Logical.expr -> string
(** The canonical serialization of one expression: equal to the key
    {!subtrees} assigns it as a subtree of any enclosing query. *)

val with_parameter :
  Relalg.Logical.expr -> Relalg.Value.t -> Relalg.Logical.expr
(** Replace the unique parameterizable literal (see {!of_query}) with a
    new value: the {!Dynplan.template} of a parameterized cache entry.
    @raise Invalid_argument when the query has no such unique literal. *)
