type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards MRU *)
  mutable next : 'a node option;  (* towards LRU *)
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable first : 'a node option;  (* MRU *)
  mutable last : 'a node option;  (* LRU *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { cap = capacity; table = Hashtbl.create (2 * capacity); first = None; last = None }

let capacity t = t.cap

let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.first <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.first;
  (match t.first with
   | Some f -> f.prev <- Some node
   | None -> t.last <- Some node);
  t.first <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.value

let peek t key = Option.map (fun n -> n.value) (Hashtbl.find_opt t.table key)

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table key;
    Some node.value

let add t key value =
  (match Hashtbl.find_opt t.table key with
   | Some node ->
     node.value <- value;
     unlink t node;
     push_front t node
   | None ->
     let node = { key; value; prev = None; next = None } in
     Hashtbl.replace t.table key node;
     push_front t node);
  if Hashtbl.length t.table <= t.cap then None
  else
    match t.last with
    | None -> None
    | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.key;
      Some (lru.key, lru.value)

let iter f t =
  let rec go = function
    | None -> ()
    | Some node ->
      let next = node.next in
      f node.key node.value;
      go next
  in
  go t.first

let to_list t =
  let acc = ref [] in
  iter (fun k v -> acc := (k, v) :: !acc) t;
  List.rev !acc

let remove_if t pred =
  let doomed = ref [] in
  iter (fun k v -> if pred k v then doomed := (k, v) :: !doomed) t;
  List.iter (fun (k, _) -> ignore (remove t k)) !doomed;
  List.rev !doomed
