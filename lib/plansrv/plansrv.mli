(** The optimization service: a sharded, bounded plan cache in front of
    {!Relmodel.Optimizer}, served concurrently by OCaml domains.

    In a system serving heavy repeated traffic, plan caching — not plan
    search — absorbs most query arrivals. A request is fingerprinted
    ({!Fingerprint}), routed to a cache shard by key hash, and answered
    from the cache when a fresh entry exists; otherwise the worker's
    own optimizer session optimizes the canonical form, populates the
    cache, and answers. Warm hits are served off an immutable per-shard
    snapshot without taking the shard lock (see
    {!type-metrics.lockfree_hits}), so warm throughput scales with
    serving domains instead of serializing on the shard mutexes. Entries are stamped with the catalog statistics
    versions they were optimized under and invalidated lazily when the
    statistics change. Parameterized entries delegate to {!Dynplan}
    buckets, so one cached template serves a whole range of literal
    values.

    Serving is deterministic: every response carries the plan the
    sequential optimizer would produce for the canonical form of the
    query, regardless of worker count, scheduling, or cache state. *)

module Lru = Lru
module Fingerprint = Fingerprint

type config = {
  request : Relmodel.Optimizer.request;
      (** optimizer configuration used by every worker session and
          cache-miss optimization. Setting its [domains] field above 1
          gives each cold miss intra-query parallel search
          ({!Volcano.Search.Make.run}) on top of the service's
          across-query worker parallelism. *)
  capacity : int;  (** total cached entries, divided across shards *)
  shards : int;  (** independently locked cache shards *)
  parameterize : bool;
      (** erase the single numeric literal from fingerprints and back
          the entry with {!Dynplan} buckets *)
  dyn_buckets : int;  (** buckets per parameterized entry *)
  slow_ms : float;
      (** responses at or above this latency land in the slow-query log
          ({!slow_log}) with their captured EXPLAIN provenance *)
}

val config :
  ?capacity:int ->
  ?shards:int ->
  ?parameterize:bool ->
  ?dyn_buckets:int ->
  ?slow_ms:float ->
  Relmodel.Optimizer.request ->
  config
(** Defaults: capacity 512, 8 shards, parameterization off, 8 buckets,
    slow threshold 50ms. *)

type t
(** A running service: the shard array plus its observability
    counters. Safe to share across domains. *)

val create : config -> t
(** Create an empty service; capacity is divided evenly across the
    shards. *)

(** How a request was answered. *)
type outcome =
  | Hit  (** fresh cache entry *)
  | Miss  (** no entry; optimized and populated *)
  | Invalidated
      (** an entry existed but its statistics stamps were stale: the
          entry was evicted, the query re-optimized and re-populated *)

type response = {
  plan : Relmodel.Optimizer.plan_node option;
      (** the winning plan for the {e canonical} form of the query
          ([None] only when optimization itself finds no plan) *)
  plan_bytes : string option;
      (** preformatted EXPLAIN text of [plan], rendered once when the
          entry was cached; warm hits hand it back without formatting
          work. [None] for parameterized ({!Dynplan}-backed) entries,
          whose plan depends on the literal. *)
  outcome : outcome;
  parameterized : bool;  (** answered through a {!Dynplan}-backed entry *)
  latency_ms : float;
  fingerprint : string;  (** full cache key *)
}

(** {1 Serving} *)

type worker
(** A serving worker: an optimizer session plus the catalog epoch it
    was created under. Workers are single-threaded; create one per
    domain. *)

val worker : t -> worker
(** A fresh worker for this service, with its own optimizer session. *)

val serve_one : t -> worker -> Relalg.Logical.expr -> required:Relalg.Phys_prop.t -> response
(** Serve a single request on this worker (the line-at-a-time loop of
    [volcano-cli serve]). *)

val serve :
  ?workers:int ->
  t ->
  (Relalg.Logical.expr * Relalg.Phys_prop.t) array ->
  response array
(** Serve a batch: [workers] domains (default 1 = run on the calling
    domain) pull requests from a shared queue until it drains.
    [results.(i)] answers [requests.(i)]. *)

(** {1 Invalidation} *)

val invalidate_table : t -> string -> int
(** Proactively drop every cache entry whose fingerprint references the
    named table, returning how many were dropped. (Entries are also
    invalidated lazily on lookup via statistics version stamps; this
    sweep is for operators who want the space back immediately.) *)

(** {1 Observability} *)

type latency = {
  count : int;
  mean_ms : float;
  max_ms : float;
  p50_ms : float;  (** median, from the service's log-bucketed histogram *)
  p95_ms : float;
  p99_ms : float;
      (** quantiles are bucket upper bounds (capped at the observed
          maximum), so they over-estimate by at most one power of two *)
}

type metrics = {
  requests : int;
  hits : int;
  lockfree_hits : int;
      (** hits served entirely from a shard's immutable map snapshot —
          no mutex, no LRU mutation. The warm read path is lock-free:
          writers (misses, invalidations, evictions) publish a new
          snapshot under the shard lock; readers only [Atomic.get] it.
          Every warm hit takes this path, so at quiescence
          [lockfree_hits = hits]. *)
  misses : int;
  rejected : int;
      (** misses whose optimization produced no plan (nothing to cache
          or answer with); each one also triggers the optimizer
          request's flight recorder, when present, with reason
          ["plansrv-reject"] *)
  invalidations : int;  (** stale-stamp evictions plus proactive sweeps *)
  evictions : int;  (** capacity evictions *)
  param_served : int;  (** requests answered through parameterized entries *)
  entries : int;  (** current cache population across shards *)
  cold : latency;  (** misses and invalidations: full optimization *)
  warm : latency;  (** hits: cache lookup *)
  search : Volcano.Search_stats.t;
      (** merged search effort of every cache-miss optimization *)
}

val metrics : t -> metrics
(** Counters are exact totals (lock-free atomics on the serving path);
    a snapshot taken while requests are in flight may observe a request
    whose outcome counter is updated but whose latency is not yet, so
    cross-counter identities (e.g. warm.count = hits) are guaranteed
    only at quiescence. *)

val pp_metrics : Format.formatter -> metrics -> unit
(** Multi-line operator-facing rendering: hit rate, latency profiles
    (mean, quantiles, max), and the merged search effort. *)

val service_request : t -> Relmodel.Optimizer.request
(** The optimizer request the service was configured with (shared by
    {!Mqo}'s batch entry point to run its re-optimization passes under
    the same configuration). *)

val note_search : t -> Volcano.Search_stats.t -> unit
(** Fold a search-effort delta performed on behalf of the service but
    outside {!serve_one} — e.g. the multi-query batch optimizer's
    passes — into the merged view {!metrics} and {!registry} export. *)

val registry : t -> Obs.Metrics.registry
(** The service's metrics registry: every counter above as a gauge
    ([plansrv_*]), warm/cold latency histograms
    ([plansrv_warm_latency_ms], [plansrv_cold_latency_ms]), and the
    merged search-effort counters ([volcano_search_*]). Export with
    {!Obs.Metrics.to_prometheus} or {!Obs.Metrics.to_json} — this is
    what [volcano-cli serve --metrics-port] serves. *)

(** {1 Slow-query log and service status} *)

(** One slow response: latency at or above the configured [slow_ms]. *)
type slow_entry = {
  sq_ns : int64;  (** monotonic stamp when the response finished *)
  sq_fingerprint : string;
  sq_outcome : string;  (** ["hit"] / ["miss"] / ["invalidated"] *)
  sq_latency_ms : float;
  sq_explain : string option;
      (** EXPLAIN provenance of the served plan, captured when the
          entry was cached (static entries only) *)
}

val slow_threshold_ms : t -> float
(** The configured slow-query threshold. *)

val slow_log : t -> slow_entry list
(** The most recent slow responses (up to a fixed ring capacity),
    oldest first. Empty until some response crosses the threshold. *)

val slow_log_json : t -> Obs.Json.t
(** The slow log as JSON — what [volcano-cli serve --metrics-port]
    answers on [/slow]. *)

val status_json : t -> Obs.Json.t
(** A one-shot service status document (counters, hit rate, latency
    profiles, slow-log occupancy) — what [volcano-cli serve
    --metrics-port] answers on [/status]. *)
