open Relalg

type t = {
  key : string;
  hash : int;
  tables : string list;
  param : (string * Value.t) option;
}

(* ---------- predicate normal form ---------- *)

let swap_cmp = function
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le
  | Expr.Eq -> Expr.Eq
  | Expr.Ne -> Expr.Ne

(* Column-first orientation keeps the shape the selectivity estimator
   pattern-matches on; two columns (or two constants) are ordered by
   their rendering. *)
let canon_cmp op a b =
  let keep = Expr.Cmp (op, a, b) and swapped = Expr.Cmp (swap_cmp op, b, a) in
  match a, b with
  | Expr.Col _, Expr.Col _ | Expr.Const _, Expr.Const _ ->
    if Expr.to_string a <= Expr.to_string b then keep else swapped
  | Expr.Col _, _ -> keep
  | _, Expr.Col _ -> swapped
  | _, _ -> if Expr.to_string a <= Expr.to_string b then keep else swapped

let rec flatten_and = function
  | Expr.And (a, b) -> flatten_and a @ flatten_and b
  | e -> [ e ]

let rec flatten_or = function
  | Expr.Or (a, b) -> flatten_or a @ flatten_or b
  | e -> [ e ]

let sort_by_rendering = List.sort (fun a b -> compare (Expr.to_string a) (Expr.to_string b))

let rebuild join = function
  | [] -> assert false
  | first :: rest -> List.fold_left join first rest

let rec canon_expr (e : Expr.t) : Expr.t =
  match e with
  | Expr.Col _ | Expr.Const _ -> e
  | Expr.Not a -> Expr.Not (canon_expr a)
  | Expr.Cmp (op, a, b) -> canon_cmp op (canon_expr a) (canon_expr b)
  | Expr.Arith (op, a, b) -> begin
    let a = canon_expr a and b = canon_expr b in
    match op with
    | Expr.Add | Expr.Mul ->
      if Expr.to_string a <= Expr.to_string b then Expr.Arith (op, a, b)
      else Expr.Arith (op, b, a)
    | Expr.Sub | Expr.Div -> Expr.Arith (op, a, b)
  end
  | Expr.And _ ->
    flatten_and e |> List.map canon_expr |> sort_by_rendering
    |> rebuild (fun a b -> Expr.And (a, b))
  | Expr.Or _ ->
    flatten_or e |> List.map canon_expr |> sort_by_rendering
    |> rebuild (fun a b -> Expr.Or (a, b))

(* ---------- logical normal form ---------- *)

let rec encode (e : Logical.expr) =
  match e.Logical.inputs with
  | [] -> Logical.op_name e.Logical.op
  | inputs ->
    Logical.op_name e.Logical.op ^ "(" ^ String.concat "," (List.map encode inputs) ^ ")"

let rec canonicalize (e : Logical.expr) : Logical.expr =
  let inputs = List.map canonicalize e.Logical.inputs in
  match e.Logical.op, inputs with
  | Logical.Select p, [ i ] -> Logical.mk (Logical.Select (canon_expr p)) [ i ]
  | Logical.Join p, [ l; r ] ->
    let p = canon_expr p in
    let l, r = if encode l <= encode r then (l, r) else (r, l) in
    Logical.mk (Logical.Join p) [ l; r ]
  | (Logical.Union | Logical.Intersect), [ l; r ] ->
    let l, r = if encode l <= encode r then (l, r) else (r, l) in
    Logical.mk e.Logical.op [ l; r ]
  | op, inputs -> Logical.mk op inputs

(* ---------- per-subtree keys (multi-query sharing) ---------- *)

(* Bottom-up keys over the canonical form. Each node's key is built from
   its children's keys (the same construction as [encode], so
   [fst (List.nth (subtrees q) i)] = [encode] of that canonical
   subtree), making the walk near-linear instead of quadratic. Emitted
   in post-order: children strictly before parents. *)
let subtrees query =
  let canonical = canonicalize query in
  let acc = ref [] in
  let rec go (e : Logical.expr) : string =
    let child_keys = List.map go e.Logical.inputs in
    let key =
      match child_keys with
      | [] -> Logical.op_name e.Logical.op
      | ks -> Logical.op_name e.Logical.op ^ "(" ^ String.concat "," ks ^ ")"
    in
    acc := (key, e) :: !acc;
    key
  in
  ignore (go canonical);
  List.rev !acc

let expr_key e = encode (canonicalize e)

(* ---------- parameter slots ---------- *)

let is_numeric = function
  | Value.Int _ | Value.Float _ -> true
  | Value.Null | Value.Bool _ | Value.Str _ -> false

(* Column-versus-numeric-literal comparisons, in traversal order. Only
   the direct [col op const] shape qualifies; literals nested inside
   arithmetic stay part of the fingerprint. *)
let rec expr_slots (e : Expr.t) acc =
  match e with
  | Expr.Cmp (_, Expr.Col c, Expr.Const v) when is_numeric v -> (c, v) :: acc
  | Expr.Cmp (_, Expr.Const v, Expr.Col c) when is_numeric v -> (c, v) :: acc
  | Expr.Cmp _ | Expr.Col _ | Expr.Const _ -> acc
  | Expr.And (a, b) | Expr.Or (a, b) | Expr.Arith (_, a, b) ->
    expr_slots b (expr_slots a acc)
  | Expr.Not a -> expr_slots a acc

let rec query_slots (e : Logical.expr) acc =
  let acc =
    match e.Logical.op with
    | Logical.Select p | Logical.Join p -> expr_slots p acc
    | Logical.Get _ | Logical.Project _ | Logical.Union | Logical.Intersect
    | Logical.Difference | Logical.Group_by _ ->
      acc
  in
  List.fold_left (fun acc i -> query_slots i acc) acc e.Logical.inputs

let slots e = List.rev (query_slots e [])

let rec subst_slot_expr (e : Expr.t) value : Expr.t =
  match e with
  | Expr.Cmp (op, (Expr.Col _ as c), Expr.Const v) when is_numeric v ->
    Expr.Cmp (op, c, Expr.Const value)
  | Expr.Cmp (op, Expr.Const v, (Expr.Col _ as c)) when is_numeric v ->
    Expr.Cmp (op, Expr.Const value, c)
  | Expr.Cmp _ | Expr.Col _ | Expr.Const _ -> e
  | Expr.And (a, b) -> Expr.And (subst_slot_expr a value, subst_slot_expr b value)
  | Expr.Or (a, b) -> Expr.Or (subst_slot_expr a value, subst_slot_expr b value)
  | Expr.Not a -> Expr.Not (subst_slot_expr a value)
  | Expr.Arith (op, a, b) ->
    Expr.Arith (op, subst_slot_expr a value, subst_slot_expr b value)

let rec subst_slot (e : Logical.expr) value : Logical.expr =
  let inputs = List.map (fun i -> subst_slot i value) e.Logical.inputs in
  match e.Logical.op with
  | Logical.Select p -> Logical.mk (Logical.Select (subst_slot_expr p value)) inputs
  | Logical.Join p -> Logical.mk (Logical.Join (subst_slot_expr p value)) inputs
  | op -> Logical.mk op inputs

let with_parameter e value =
  match slots e with
  | [ _ ] -> subst_slot e value
  | ss ->
    invalid_arg
      (Printf.sprintf "Fingerprint.with_parameter: %d parameter slots (need exactly 1)"
         (List.length ss))

(* ---------- keys ---------- *)

(* FNV-1a over the whole key: [Hashtbl.hash] only samples a prefix,
   which would collapse shard selection for long similar queries. *)
let fnv1a s =
  String.fold_left (fun h c -> (h lxor Char.code c) * 16777619 land max_int) 2166136261 s

let of_query ?(parameterize = false) query ~required =
  let canonical = canonicalize query in
  let param, keyed =
    if not parameterize then (None, canonical)
    else
      match slots canonical with
      | [ (column, value) ] ->
        (Some (column, value), subst_slot canonical (Value.Str "?"))
      | _ -> (None, canonical)
  in
  let key = encode keyed ^ " | " ^ Phys_prop.to_string required in
  let tables = List.sort_uniq String.compare (Logical.relations canonical) in
  ({ key; hash = fnv1a key; tables; param }, canonical)
