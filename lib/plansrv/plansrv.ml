module Lru = Lru
module Fingerprint = Fingerprint

type config = {
  request : Relmodel.Optimizer.request;
  capacity : int;
  shards : int;
  parameterize : bool;
  dyn_buckets : int;
  slow_ms : float;
}

let config ?(capacity = 512) ?(shards = 8) ?(parameterize = false) ?(dyn_buckets = 8)
    ?(slow_ms = 50.) request =
  if capacity < 1 then invalid_arg "Plansrv.config: capacity must be >= 1";
  if shards < 1 then invalid_arg "Plansrv.config: shards must be >= 1";
  if slow_ms < 0. then invalid_arg "Plansrv.config: slow_ms must be >= 0";
  { request; capacity; shards; parameterize; dyn_buckets; slow_ms }

type cached = {
  plan : Relmodel.Optimizer.plan_node;
  search : Volcano.Search_stats.t;  (** per-query delta that produced the plan *)
  tasks_run : int;
}

type payload =
  | Static of cached
  | Dynamic of Dynplan.t

type entry = {
  stamps : (string * int) list;  (** table -> stats_version at optimization *)
  tables : string list;
  payload : payload;
  bytes : string option;
      (** preformatted plan text, rendered once at insertion for static
          entries, so warm hits serve bytes without formatting work *)
  serve_count : int Atomic.t;
}

module Smap = Map.Make (String)

(* A shard keeps two views of the same bindings: the mutex-guarded LRU
   (authoritative — recency, capacity, eviction) and an immutable map
   snapshot published through an atomic. Writers update both under the
   shard lock; warm readers consult only the snapshot, so a cache hit
   never takes a lock or mutates shared state (the epoch-style read
   path). The price is approximate recency: lock-free hits do not
   promote the entry, so eviction order degrades toward insertion
   order under pure-hit traffic. *)
type shard = {
  lock : Mutex.t;
  cache : entry Lru.t;
  snapshot : entry Smap.t Atomic.t;
}

(* Hot-path counters are atomics, not a mutex: every request records an
   outcome, and a single shared lock here serializes the whole service
   (and costs a futex round-trip per request under contention).
   Latency accumulates in integer nanoseconds so sums and maxima stay
   lock-free too. The merged search stats are mutex-guarded ([stats_lock])
   but only touched on the miss path. *)
type counters = {
  requests : int Atomic.t;
  hits : int Atomic.t;
  lockfree_hits : int Atomic.t;
      (** hits answered entirely from the shard snapshot: no lock, no
          LRU mutation (every warm hit in the current implementation) *)
  rejected : int Atomic.t;
      (** misses whose optimization produced no plan: the service had
          nothing to answer with *)
  misses : int Atomic.t;
  invalidations : int Atomic.t;
  evictions : int Atomic.t;
  param_served : int Atomic.t;
  cold_count : int Atomic.t;
  cold_ns_sum : int Atomic.t;
  cold_ns_max : int Atomic.t;
  warm_count : int Atomic.t;
  warm_ns_sum : int Atomic.t;
  warm_ns_max : int Atomic.t;
  warm_hist : Obs.Metrics.histogram;  (** hit latency, milliseconds *)
  cold_hist : Obs.Metrics.histogram;  (** miss latency, milliseconds *)
  search : Volcano.Search_stats.t;
}

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

(* Slow-query log: the most recent responses whose latency crossed the
   configured [slow_ms] threshold, each carrying the EXPLAIN provenance
   captured when its entry was cached. Slow requests are rare by
   definition, so a mutex-guarded ring costs nothing on the fast path
   (sub-threshold responses never touch it). *)
let slow_log_capacity = 64

type slow_entry = {
  sq_ns : int64;  (** monotonic stamp when the response finished *)
  sq_fingerprint : string;
  sq_outcome : string;  (** ["hit"] / ["miss"] / ["invalidated"] *)
  sq_latency_ms : float;
  sq_explain : string option;
      (** preformatted EXPLAIN text of the served plan, when the cache
          held one (static entries render it at insertion) *)
}

type slow_log = {
  sl_lock : Mutex.t;
  sl_slots : slow_entry option array;
  mutable sl_count : int;  (** total slow responses ever logged *)
}

type t = {
  cfg : config;
  shard_tbl : shard array;
  stats_lock : Mutex.t;
  counters : counters;
  slow : slow_log;
  registry : Obs.Metrics.registry;
}

let create cfg =
  let shard_capacity = max 1 ((cfg.capacity + cfg.shards - 1) / cfg.shards) in
  let registry = Obs.Metrics.create () in
  let shard_tbl =
    Array.init cfg.shards (fun _ ->
        {
          lock = Mutex.create ();
          cache = Lru.create ~capacity:shard_capacity;
          snapshot = Atomic.make Smap.empty;
        })
  in
  let counters =
    {
      requests = Atomic.make 0;
      hits = Atomic.make 0;
      lockfree_hits = Atomic.make 0;
      rejected = Atomic.make 0;
      misses = Atomic.make 0;
      invalidations = Atomic.make 0;
      evictions = Atomic.make 0;
      param_served = Atomic.make 0;
      cold_count = Atomic.make 0;
      cold_ns_sum = Atomic.make 0;
      cold_ns_max = Atomic.make 0;
      warm_count = Atomic.make 0;
      warm_ns_sum = Atomic.make 0;
      warm_ns_max = Atomic.make 0;
      warm_hist =
        Obs.Metrics.histogram registry ~help:"cache-hit serve latency (ms)"
          "plansrv_warm_latency_ms";
      cold_hist =
        Obs.Metrics.histogram registry ~help:"cache-miss serve latency (ms)"
          "plansrv_cold_latency_ms";
      search = Volcano.Search_stats.create ();
    }
  in
  (* Gauges read the service's own lock-free counters: the registry is
     a view, not a second set of books. *)
  let atomic name help a =
    Obs.Metrics.gauge registry ~help ("plansrv_" ^ name) (fun () ->
        float_of_int (Atomic.get a))
  in
  atomic "requests" "requests served" counters.requests;
  atomic "hits" "requests answered from the cache" counters.hits;
  atomic "lockfree_hits" "hits served from the shard snapshot without locking"
    counters.lockfree_hits;
  atomic "misses" "requests that ran an optimization" counters.misses;
  atomic "rejected" "misses whose optimization produced no plan" counters.rejected;
  atomic "invalidations" "stale entries dropped" counters.invalidations;
  atomic "evictions" "capacity evictions" counters.evictions;
  atomic "param_served" "requests answered via parameterized entries"
    counters.param_served;
  Obs.Metrics.gauge registry ~help:"cached entries across shards" "plansrv_entries"
    (fun () ->
      float_of_int
        (Array.fold_left
           (fun acc shard ->
             acc + Mutex.protect shard.lock (fun () -> Lru.length shard.cache))
           0 shard_tbl));
  Volcano.Search_stats.register registry counters.search;
  let slow =
    {
      sl_lock = Mutex.create ();
      sl_slots = Array.make slow_log_capacity None;
      sl_count = 0;
    }
  in
  { cfg; shard_tbl; stats_lock = Mutex.create (); counters; slow; registry }

let registry t = t.registry

let service_request t = t.cfg.request

(* Extra search effort performed on behalf of the service but outside
   [serve_one] — e.g. the multi-query batch optimizer's re-optimization
   passes — folded into the same merged view the registry exports. *)
let note_search t delta =
  Mutex.protect t.stats_lock (fun () ->
      Volcano.Search_stats.merge ~into:t.counters.search delta)

let shard_of t hash = t.shard_tbl.(hash mod Array.length t.shard_tbl)

type outcome =
  | Hit
  | Miss
  | Invalidated

type response = {
  plan : Relmodel.Optimizer.plan_node option;
  plan_bytes : string option;
      (** preformatted EXPLAIN text of [plan] for static entries,
          rendered when the entry was cached: warm hits return it
          without any formatting work *)
  outcome : outcome;
  parameterized : bool;
  latency_ms : float;
  fingerprint : string;
}

(* ---------- workers ---------- *)

type worker = {
  mutable session : Relmodel.Optimizer.session;
  mutable epoch : int;  (** catalog version the session was created under *)
  mutable stats_mark : Volcano.Search_stats.t;
      (** snapshot of the session's cumulative stats, for per-query deltas *)
}

let worker t =
  {
    session = Relmodel.Optimizer.session t.cfg.request;
    epoch = Catalog.version t.cfg.request.catalog;
    stats_mark = Volcano.Search_stats.create ();
  }

(* A session's memo holds winners computed under the statistics current
   at optimization time; any catalog change makes them unreliable, so
   the worker renews its session (fresh memo) on an epoch mismatch. *)
let ensure_fresh_session t w =
  let v = Catalog.version t.cfg.request.catalog in
  if v <> w.epoch then begin
    w.session <- Relmodel.Optimizer.session t.cfg.request;
    w.epoch <- v;
    w.stats_mark <- Volcano.Search_stats.create ()
  end

(* ---------- miss path ---------- *)

let stamps_of t (fp : Fingerprint.t) =
  List.map (fun tb -> (tb, Catalog.stats_version t.cfg.request.catalog tb)) fp.tables

let stamps_fresh t stamps =
  List.for_all
    (fun (tb, v) -> Catalog.stats_version t.cfg.request.catalog tb = v)
    stamps

(* The statistics range of the column the parameter is compared
   against; the Dynplan bucket grid spans it. *)
let param_range t column =
  match String.index_opt column '.' with
  | None -> None
  | Some i -> begin
    match Catalog.find_opt t.cfg.request.catalog (String.sub column 0 i) with
    | None -> None
    | Some table -> begin
      match Catalog.Stats.column table.Catalog.stats column with
      | None -> None
      | Some cs -> begin
        match cs.Catalog.Stats.min_value, cs.Catalog.Stats.max_value with
        | Some mn, Some mx -> begin
          match Relalg.Value.to_float mn, Relalg.Value.to_float mx with
          | Some lo, Some hi when lo < hi -> Some (lo, hi)
          | _, _ -> None
        end
        | _, _ -> None
      end
    end
  end

let optimize_static t w canonical required =
  ensure_fresh_session t w;
  let result = Relmodel.Optimizer.optimize_in w.session canonical ~required in
  let delta = Volcano.Search_stats.diff ~since:w.stats_mark result.stats in
  w.stats_mark <- Volcano.Search_stats.copy result.stats;
  Mutex.protect t.stats_lock (fun () ->
      Volcano.Search_stats.merge ~into:t.counters.search delta);
  Option.map
    (fun plan -> Static { plan; search = delta; tasks_run = result.tasks_run })
    result.plan

(* Parameterized miss: optimize the literal-erased template once per
   bucket. Any failure (no statistics range, a bucket without a plan)
   falls back to a static entry for the concrete literal. *)
let optimize_payload t w (fp : Fingerprint.t) canonical required =
  match fp.param with
  | Some (column, _) when t.cfg.parameterize -> begin
    match param_range t column with
    | None -> optimize_static t w canonical required
    | Some range -> begin
      let template v = Fingerprint.with_parameter canonical v in
      match
        Dynplan.prepare ~request:t.cfg.request template ~range
          ~buckets:t.cfg.dyn_buckets ~required ()
      with
      | dyn -> Some (Dynamic dyn)
      | exception Invalid_argument _ -> optimize_static t w canonical required
    end
  end
  | Some _ | None -> optimize_static t w canonical required

let plan_of_payload payload (fp : Fingerprint.t) =
  match payload, fp.param with
  | Static c, _ -> (Some c.plan, false)
  | Dynamic dyn, Some (_, value) ->
    let b = Dynplan.choose dyn value in
    (Some (Dynplan.instantiate_node b.Dynplan.plan ~witness:b.Dynplan.witness ~actual:value), true)
  | Dynamic dyn, None ->
    (* Unreachable: a Dynamic entry's key has its literal erased, so any
       request hashing to it carries a param slot. Serve the static
       fallback plan rather than failing. *)
    (Some dyn.Dynplan.static_plan, true)

(* ---------- serving ---------- *)

let record_latency t outcome parameterized dt_ms =
  let c = t.counters in
  let dt_ns = int_of_float (dt_ms *. 1e6) in
  ignore (Atomic.fetch_and_add c.requests 1);
  if parameterized then ignore (Atomic.fetch_and_add c.param_served 1);
  match outcome with
  | Hit ->
    ignore (Atomic.fetch_and_add c.hits 1);
    ignore (Atomic.fetch_and_add c.warm_count 1);
    ignore (Atomic.fetch_and_add c.warm_ns_sum dt_ns);
    atomic_max c.warm_ns_max dt_ns;
    Obs.Metrics.observe c.warm_hist dt_ms
  | Miss | Invalidated ->
    ignore (Atomic.fetch_and_add c.misses 1);
    if outcome = Invalidated then ignore (Atomic.fetch_and_add c.invalidations 1);
    ignore (Atomic.fetch_and_add c.cold_count 1);
    ignore (Atomic.fetch_and_add c.cold_ns_sum dt_ns);
    atomic_max c.cold_ns_max dt_ns;
    Obs.Metrics.observe c.cold_hist dt_ms

let count_eviction t = ignore (Atomic.fetch_and_add t.counters.evictions 1)

let outcome_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Invalidated -> "invalidated"

let slow_note t ~fingerprint ~outcome ~latency_ms ~explain =
  let e =
    {
      sq_ns = Obs.Clock.now_ns ();
      sq_fingerprint = fingerprint;
      sq_outcome = outcome_name outcome;
      sq_latency_ms = latency_ms;
      sq_explain = explain;
    }
  in
  Mutex.protect t.slow.sl_lock (fun () ->
      t.slow.sl_slots.(t.slow.sl_count mod slow_log_capacity) <- Some e;
      t.slow.sl_count <- t.slow.sl_count + 1)

(* A miss the optimizer could not answer (no plan within the limit) is
   one of the abnormal ends the flight recorder dumps on: the recorder
   travels in the optimizer request, so the engine rings it just filled
   are the ones captured. *)
let note_reject t =
  ignore (Atomic.fetch_and_add t.counters.rejected 1);
  match t.cfg.request.Relmodel.Optimizer.recorder with
  | None -> ()
  | Some fr -> Obs.Flight_recorder.trigger fr ~reason:"plansrv-reject"

(* Snapshot writes happen under the shard lock, so the functional update
   below has no competing writer; the atomic is for the release fence
   that makes the new map (and the entries it points to) safe to read
   lock-free on other domains. *)
let snap_update shard f = Atomic.set shard.snapshot (f (Atomic.get shard.snapshot))

let bytes_of_payload = function
  | Static c -> Some (Relmodel.Optimizer.explain c.plan)
  | Dynamic _ -> None

let serve_one t w query ~required =
  (* Monotonic, not wall-clock: an NTP step mid-request must not mint a
     negative (or wildly wrong) latency sample. *)
  let t0 = Obs.Clock.now_ns () in
  let fp, canonical =
    Fingerprint.of_query ~parameterize:t.cfg.parameterize query ~required
  in
  let shard = shard_of t fp.Fingerprint.hash in
  (* Warm probe against the immutable snapshot: no lock, no LRU
     mutation, no allocation beyond the response record. *)
  let lookup =
    match Smap.find_opt fp.Fingerprint.key (Atomic.get shard.snapshot) with
    | Some entry when stamps_fresh t entry.stamps ->
      ignore (Atomic.fetch_and_add entry.serve_count 1);
      ignore (Atomic.fetch_and_add t.counters.lockfree_hits 1);
      `Fresh entry
    | Some _ ->
      (* Stale under the snapshot; drop it from both views under the
         lock. Concurrent workers may race here — the second remove is
         a no-op. *)
      Mutex.protect shard.lock (fun () ->
          ignore (Lru.remove shard.cache fp.Fingerprint.key);
          snap_update shard (Smap.remove fp.Fingerprint.key));
      `Stale
    | None -> `Empty
  in
  let finish outcome bytes payload =
    let plan, parameterized =
      match payload with
      | Some p -> plan_of_payload p fp
      | None -> (None, false)
    in
    let dt_ms = Obs.Clock.span_ms ~since:t0 (Obs.Clock.now_ns ()) in
    record_latency t outcome parameterized dt_ms;
    if dt_ms >= t.cfg.slow_ms then
      slow_note t ~fingerprint:fp.Fingerprint.key ~outcome ~latency_ms:dt_ms
        ~explain:bytes;
    {
      plan;
      plan_bytes = bytes;
      outcome;
      parameterized;
      latency_ms = dt_ms;
      fingerprint = fp.Fingerprint.key;
    }
  in
  match lookup with
  | `Fresh entry -> finish Hit entry.bytes (Some entry.payload)
  | (`Empty | `Stale) as miss ->
    (* Optimize outside the shard lock: concurrent workers missing on
       the same key duplicate work but — optimization being
       deterministic — insert identical entries. *)
    let stamps = stamps_of t fp in
    let payload = optimize_payload t w fp canonical required in
    let bytes = Option.fold ~none:None ~some:bytes_of_payload payload in
    (match payload with
     | None -> note_reject t
     | Some payload ->
       let entry =
         {
           stamps;
           tables = fp.Fingerprint.tables;
           payload;
           bytes;
           serve_count = Atomic.make 0;
         }
       in
       let evicted =
         Mutex.protect shard.lock (fun () ->
             let evicted = Lru.add shard.cache fp.Fingerprint.key entry in
             snap_update shard (fun snap ->
                 let snap = Smap.add fp.Fingerprint.key entry snap in
                 match evicted with
                 | Some (victim, _) -> Smap.remove victim snap
                 | None -> snap);
             evicted)
       in
       if Option.is_some evicted then count_eviction t);
    finish (match miss with `Empty -> Miss | `Stale -> Invalidated) bytes payload

let serve ?(workers = 1) t requests =
  let n = Array.length requests in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let work () =
    let w = worker t in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let query, required = requests.(i) in
        results.(i) <- Some (serve_one t w query ~required);
        loop ()
      end
    in
    loop ()
  in
  if workers <= 1 then work ()
  else List.iter Domain.join (List.init workers (fun _ -> Domain.spawn work));
  Array.map (function Some r -> r | None -> assert false) results

(* ---------- invalidation ---------- *)

let invalidate_table t table =
  let dropped =
    Array.fold_left
      (fun acc shard ->
        acc
        + Mutex.protect shard.lock (fun () ->
              let removed =
                Lru.remove_if shard.cache (fun _ entry ->
                    List.mem table entry.tables)
              in
              snap_update shard (fun snap ->
                  List.fold_left (fun s (k, _) -> Smap.remove k s) snap removed);
              List.length removed))
      0 t.shard_tbl
  in
  if dropped > 0 then ignore (Atomic.fetch_and_add t.counters.invalidations dropped);
  dropped

(* ---------- observability ---------- *)

type latency = {
  count : int;
  mean_ms : float;
  max_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type metrics = {
  requests : int;
  hits : int;
  lockfree_hits : int;
  misses : int;
  rejected : int;
  invalidations : int;
  evictions : int;
  param_served : int;
  entries : int;
  cold : latency;
  warm : latency;
  search : Volcano.Search_stats.t;
}

let metrics t =
  let entries =
    Array.fold_left
      (fun acc shard -> acc + Mutex.protect shard.lock (fun () -> Lru.length shard.cache))
      0 t.shard_tbl
  in
  let c = t.counters in
  let lat count sum mx hist =
    let count = Atomic.get count in
    {
      count;
      mean_ms =
        (if count = 0 then 0. else float_of_int (Atomic.get sum) /. 1e6 /. float_of_int count);
      max_ms = float_of_int (Atomic.get mx) /. 1e6;
      p50_ms = Obs.Metrics.quantile hist 0.5;
      p95_ms = Obs.Metrics.quantile hist 0.95;
      p99_ms = Obs.Metrics.quantile hist 0.99;
    }
  in
  let search =
    Mutex.protect t.stats_lock (fun () -> Volcano.Search_stats.copy c.search)
  in
  {
    requests = Atomic.get c.requests;
    hits = Atomic.get c.hits;
    lockfree_hits = Atomic.get c.lockfree_hits;
    misses = Atomic.get c.misses;
    rejected = Atomic.get c.rejected;
    invalidations = Atomic.get c.invalidations;
    evictions = Atomic.get c.evictions;
    param_served = Atomic.get c.param_served;
    entries;
    cold = lat c.cold_count c.cold_ns_sum c.cold_ns_max c.cold_hist;
    warm = lat c.warm_count c.warm_ns_sum c.warm_ns_max c.warm_hist;
    search;
  }

let pp_metrics ppf m =
  Format.fprintf ppf
    "@[<v>requests=%d hits=%d (lock-free %d) misses=%d (hit rate %.1f%%)@,\
     rejected=%d invalidations=%d evictions=%d parameterized=%d entries=%d@,\
     warm: n=%d mean=%.3fms p50<=%.3fms p95<=%.3fms p99<=%.3fms max=%.3fms@,\
     cold: n=%d mean=%.3fms p50<=%.3fms p95<=%.3fms p99<=%.3fms max=%.3fms@,\
     search effort (misses): %a@]"
    m.requests m.hits m.lockfree_hits m.misses
    (if m.requests = 0 then 0. else 100. *. float_of_int m.hits /. float_of_int m.requests)
    m.rejected m.invalidations m.evictions m.param_served m.entries m.warm.count
    m.warm.mean_ms
    m.warm.p50_ms m.warm.p95_ms m.warm.p99_ms m.warm.max_ms m.cold.count
    m.cold.mean_ms m.cold.p50_ms m.cold.p95_ms m.cold.p99_ms m.cold.max_ms
    Volcano.Search_stats.pp m.search

let slow_threshold_ms t = t.cfg.slow_ms

let slow_log t =
  Mutex.protect t.slow.sl_lock (fun () ->
      let n = Array.length t.slow.sl_slots in
      let kept = min t.slow.sl_count n in
      List.init kept (fun i ->
          (* Oldest surviving entry first, mirroring the ring order. *)
          let idx = if t.slow.sl_count <= n then i else (t.slow.sl_count + i) mod n in
          t.slow.sl_slots.(idx))
      |> List.filter_map Fun.id)

let slow_log_json t =
  let module J = Obs.Json in
  let entries =
    List.map
      (fun e ->
        J.Obj
          [
            ("ns", J.int (Int64.to_int e.sq_ns));
            ("fingerprint", J.Str e.sq_fingerprint);
            ("outcome", J.Str e.sq_outcome);
            ("latency_ms", J.Num e.sq_latency_ms);
            ( "explain",
              match e.sq_explain with None -> J.Null | Some s -> J.Str s );
          ])
      (slow_log t)
  in
  J.Obj
    [
      ("threshold_ms", J.Num t.cfg.slow_ms);
      ("logged", J.int (Mutex.protect t.slow.sl_lock (fun () -> t.slow.sl_count)));
      ("entries", J.Arr entries);
    ]

let status_json t =
  let module J = Obs.Json in
  let m = metrics t in
  let lat name l =
    ( name,
      J.Obj
        [
          ("count", J.int l.count);
          ("mean_ms", J.Num l.mean_ms);
          ("max_ms", J.Num l.max_ms);
          ("p50_ms", J.Num l.p50_ms);
          ("p95_ms", J.Num l.p95_ms);
          ("p99_ms", J.Num l.p99_ms);
        ] )
  in
  J.Obj
    [
      ("requests", J.int m.requests);
      ("hits", J.int m.hits);
      ("lockfree_hits", J.int m.lockfree_hits);
      ("misses", J.int m.misses);
      ("rejected", J.int m.rejected);
      ("invalidations", J.int m.invalidations);
      ("evictions", J.int m.evictions);
      ("param_served", J.int m.param_served);
      ("entries", J.int m.entries);
      ( "hit_rate",
        J.Num
          (if m.requests = 0 then 0.
           else float_of_int m.hits /. float_of_int m.requests) );
      ("slow_threshold_ms", J.Num t.cfg.slow_ms);
      ("slow_logged", J.int (Mutex.protect t.slow.sl_lock (fun () -> t.slow.sl_count)));
      lat "warm" m.warm;
      lat "cold" m.cold;
    ]
