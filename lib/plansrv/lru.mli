(** A bounded least-recently-used map with string keys.

    The plan cache's storage layer: O(1) lookup, insertion, and
    eviction via a hash table over an intrusive doubly-linked recency
    list. Not thread-safe — {!Plansrv} wraps one instance per shard
    behind a mutex. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
(** The bound given at creation. *)

val length : 'a t -> int
(** Current number of bindings (at most {!capacity}). *)

val find : 'a t -> string -> 'a option
(** Lookup and promote the entry to most-recently-used. *)

val peek : 'a t -> string -> 'a option
(** Lookup without touching recency. *)

val add : 'a t -> string -> 'a -> (string * 'a) option
(** Insert (or replace) at most-recently-used; returns the evicted
    least-recently-used binding when the insert pushed the map over
    capacity. *)

val remove : 'a t -> string -> 'a option
(** Remove and return the binding, if present. *)

val remove_if : 'a t -> (string -> 'a -> bool) -> (string * 'a) list
(** Remove every binding satisfying the predicate (targeted
    invalidation); returns the removed bindings. *)

val iter : (string -> 'a -> unit) -> 'a t -> unit
(** Most-recently-used first. *)

val to_list : 'a t -> (string * 'a) list
(** Bindings, most-recently-used first. *)
