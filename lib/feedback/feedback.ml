(* Runtime cardinality feedback: instrument executor cursors, diff the
   actual per-node cardinalities against the optimizer's estimates,
   correct the catalog statistics the drift incriminates, and (through
   the stats-version stamps) let cached plans invalidate themselves.
   See DESIGN.md §15 for the correction rule and escape-hatch
   semantics. *)

open Relalg
module Stats = Catalog.Stats
module Opt = Relmodel.Optimizer
module S = Volcano.Search_stats
module J = Obs.Json

(* ---------------------------------------------------------------------- *)
(* Configuration                                                           *)
(* ---------------------------------------------------------------------- *)

type config = {
  drift_threshold : float;
  escape_factor : float option;
  correct : bool;
  max_replans : int;
  recorder : Obs.Flight_recorder.t option;
}

let config ?(drift_threshold = 2.) ?escape_factor ?(correct = true) ?(max_replans = 1)
    ?recorder () =
  if drift_threshold < 1. then
    invalid_arg "Feedback.config: drift_threshold must be >= 1";
  (match escape_factor with
   | Some k when k < 1. -> invalid_arg "Feedback.config: escape_factor must be >= 1"
   | _ -> ());
  { drift_threshold; escape_factor; correct; max_replans = max 0 max_replans; recorder }

(* The escape hatch firing is exactly the abnormal end the flight
   recorder exists for: dump whatever the engine rings still hold. *)
let escape_trigger config =
  match config.recorder with
  | None -> ()
  | Some fr -> Obs.Flight_recorder.trigger fr ~reason:"feedback-escape"

let default_config = config ()

(* ---------------------------------------------------------------------- *)
(* Observations                                                            *)
(* ---------------------------------------------------------------------- *)

type node_obs = {
  path : int list;
  alg : string;
  estimated : float;
  observed : int;
  ratio : float;
  relations : string list;
  complete : bool;
}

let q_error ~estimated ~observed =
  let e = Float.max 1. estimated and o = Float.max 1. (float_of_int observed) in
  Float.max (e /. o) (o /. e)

type correction = {
  table : string;
  detail : string;
  stats_version : int;
}

type report = {
  nodes : node_obs list;
  drifted : node_obs list;
  threshold : float;
  corrections : correction list;
  escaped : bool;
  replans : int;
  stats : S.t;
}

(* Per-path logical properties of the believed plan: the node estimate
   is [card], the responsible base relations [relations]. Derived with
   the same estimator the search used ({!Relmodel.Plan_cost.props}), so
   the diff is against what the optimizer actually promised. *)
let estimate_table catalog plan =
  let tbl = Hashtbl.create 32 in
  let rec walk path (p : Physical.plan) =
    Hashtbl.replace tbl path (Relmodel.Plan_cost.props catalog p);
    List.iteri (fun i c -> walk (path @ [ i ]) c) p.Physical.children
  in
  walk [] plan;
  tbl

(* Per-path physical nodes, for correction attribution. *)
let plan_table plan =
  let tbl = Hashtbl.create 32 in
  let rec walk path (p : Physical.plan) =
    Hashtbl.replace tbl path p;
    List.iteri (fun i c -> walk (path @ [ i ]) c) p.Physical.children
  in
  walk [] plan;
  tbl

type run_result =
  | Complete of Tuple.t array * Schema.t * Executor.Io_stats.t * node_obs list
  | Aborted of { at : int list; nodes : node_obs list; io : Executor.Io_stats.t }

exception Escape_hatch of int list

let observed_run ?escape_factor ?estimate_plan catalog (plan : Physical.plan) =
  let believed = Option.value estimate_plan ~default:plan in
  let est = estimate_table catalog believed in
  let card path =
    match Hashtbl.find_opt est path with
    | Some (lp : Logical_props.t) -> Some lp.card
    | None -> None
  in
  let ctx = Executor.Engine.context catalog in
  let counts : (int list, int ref) Hashtbl.t = Hashtbl.create 32 in
  let completed : (int list, unit) Hashtbl.t = Hashtbl.create 32 in
  let observe ~path (_ : Physical.plan) cursor =
    let n = ref 0 in
    Hashtbl.replace counts path n;
    let at_end () = Hashtbl.replace completed path () in
    match escape_factor with
    | None -> Executor.Cursor.observed ~at_end (fun _ -> incr n) cursor
    | Some k ->
      let budget =
        match card path with
        | Some c -> int_of_float (Float.ceil (k *. Float.max 1. c))
        | None -> max_int
      in
      Executor.Cursor.observed ~at_end
        (fun _ ->
          incr n;
          if !n > budget then raise (Escape_hatch path))
        cursor
  in
  let cursor = Executor.Engine.compile_instrumented ctx ~observe plan in
  let nodes () =
    let out = ref [] in
    let rec walk path (p : Physical.plan) =
      let lp = Hashtbl.find_opt est path in
      let estimated =
        match lp with Some (lp : Logical_props.t) -> lp.card | None -> 0.
      in
      let relations =
        match lp with Some (lp : Logical_props.t) -> lp.relations | None -> []
      in
      let observed =
        match Hashtbl.find_opt counts path with Some n -> !n | None -> 0
      in
      out :=
        {
          path;
          alg = Physical.alg_name p.Physical.alg;
          estimated;
          observed;
          ratio = q_error ~estimated ~observed;
          relations;
          complete = Hashtbl.mem completed path;
        }
        :: !out;
      List.iteri (fun i c -> walk (path @ [ i ]) c) p.Physical.children
    in
    walk [] plan;
    List.rev !out
  in
  match Executor.Cursor.to_array cursor with
  | tuples ->
    Executor.Io_stats.produced ctx.Executor.Engine.io (Array.length tuples);
    Complete (tuples, cursor.Executor.Cursor.schema, ctx.Executor.Engine.io, nodes ())
  | exception Escape_hatch at -> Aborted { at; nodes = nodes (); io = ctx.Executor.Engine.io }

(* An incomplete node's count is a lower bound: drift is proven only
   when the bound already exceeds the estimate. *)
let drifted ~threshold n =
  n.ratio >= threshold
  && (n.complete || float_of_int n.observed > n.estimated)

let drift_nodes ~threshold nodes = List.filter (drifted ~threshold) nodes

(* ---------------------------------------------------------------------- *)
(* Corrections                                                             *)
(* ---------------------------------------------------------------------- *)

(* Pending changes to one table's statistics, accumulated over the
   drifted nodes before a single [Catalog.update_stats] installs them
   (one stats-version bump per corrected table). *)
type col_fix =
  | Fix_distinct of float
  | Fix_lo of float
  | Fix_hi of float

type table_fix = {
  mutable row : float option;
  mutable cols : (string * col_fix) list;
  mutable why : string list;
}

(* [Cmp (op, Col c, Const v)] modulo argument order. *)
let normalize_cmp e =
  let flip = function
    | Expr.Lt -> Expr.Gt
    | Expr.Le -> Expr.Ge
    | Expr.Gt -> Expr.Lt
    | Expr.Ge -> Expr.Le
    | (Expr.Eq | Expr.Ne) as o -> o
  in
  match e with
  | Expr.Cmp (op, Expr.Col c, (Expr.Const _ as k)) -> Some (op, c, k)
  | Expr.Cmp (op, (Expr.Const _ as k), Expr.Col c) -> Some (flip op, c, k)
  | _ -> None

let clamp_sel s = Float.max 1e-4 (Float.min 1. s)

(* Make the estimator reproduce the observed selectivity of [pred] over
   the base table: solve each correctable single-column conjunct for the
   statistic the estimator reads — distinct count for equality (System R
   1/d), range endpoint for inequalities (linear interpolation). The
   residual selectivity of uncorrectable conjuncts is divided out first;
   with several correctable conjuncts the miss is apportioned evenly in
   the geometric mean. *)
let predicate_fixes props pred ~s_obs fix =
  let supported, unsupported =
    List.partition_map
      (fun c ->
        match normalize_cmp c with
        | Some (op, col, Expr.Const v)
          when op <> Expr.Ne && Value.to_float v <> None ->
          Either.Left (op, col, Option.get (Value.to_float v), c)
        | _ -> Either.Right c)
      (Expr.conjuncts pred)
  in
  if supported <> [] then begin
    let sel c = Catalog.Selectivity.predicate props c in
    let s_unsup = List.fold_left (fun acc c -> acc *. sel c) 1. unsupported in
    let target_all = clamp_sel (s_obs /. Float.max 1e-9 s_unsup) in
    let s_sup = List.fold_left (fun acc (_, _, _, c) -> acc *. sel c) 1. supported in
    let scale =
      (target_all /. Float.max 1e-9 s_sup)
      ** (1. /. float_of_int (List.length supported))
    in
    List.iter
      (fun (op, col, v, c) ->
        let target = clamp_sel (sel c *. scale) in
        let col = Logical_props.canonical_name props col in
        match op with
        | Expr.Eq ->
          let d = Float.max 1. (1. /. target) in
          fix.cols <- (col, Fix_distinct d) :: fix.cols;
          fix.why <- Printf.sprintf "%s distinct -> %.1f" col d :: fix.why
        | Expr.Lt | Expr.Le -> begin
          match Logical_props.range_of props col with
          | Some (lo, hi) when v > lo && v < hi ->
            let t = Float.min 0.999 (Float.max 0.001 target) in
            let lo' = (v -. (t *. hi)) /. (1. -. t) in
            fix.cols <- (col, Fix_lo lo') :: fix.cols;
            fix.why <- Printf.sprintf "%s min -> %.1f" col lo' :: fix.why
          | _ -> ()
        end
        | Expr.Gt | Expr.Ge -> begin
          match Logical_props.range_of props col with
          | Some (lo, hi) when v > lo && v < hi ->
            let t = Float.min 0.999 (Float.max 0.001 target) in
            let hi' = lo +. ((v -. lo) /. (1. -. t)) in
            fix.cols <- (col, Fix_hi hi') :: fix.cols;
            fix.why <- Printf.sprintf "%s max -> %.1f" col hi' :: fix.why
          | _ -> ()
        end
        | Expr.Ne -> ())
      supported
  end

(* Keep a corrected bound's value kind aligned with the stored data so
   integer columns keep integer bounds. *)
let value_like old v ~round =
  match old with
  | Some (Value.Int _) -> Value.Int (int_of_float (round v))
  | _ -> Value.Float v

let apply_table_fix catalog table_name fix =
  let table = Catalog.find catalog table_name in
  let s = table.Catalog.stats in
  (* Row-count correction: rescale the mass-proportional statistics;
     distinct counts only clamp downward (growth reveals rows, not new
     values we could know about). *)
  let s =
    match fix.row with
    | None -> s
    | Some rc ->
      let rc = Float.max 1. rc in
      let f = rc /. Float.max 1. s.Stats.row_count in
      {
        Stats.row_count = rc;
        columns =
          List.map
            (fun (c, (cs : Stats.column_stats)) ->
              ( c,
                {
                  cs with
                  Stats.n_distinct = Float.max 1. (Float.min cs.Stats.n_distinct rc);
                  null_count = cs.Stats.null_count *. f;
                  histogram =
                    Option.map
                      (fun (h : Stats.histogram) ->
                        { h with Stats.buckets = Array.map (fun b -> b *. f) h.Stats.buckets })
                      cs.Stats.histogram;
                } ))
            s.Stats.columns;
      }
  in
  let update_col s col g =
    {
      s with
      Stats.columns =
        List.map
          (fun (c, cs) -> if String.equal c col then (c, g cs) else (c, cs))
          s.Stats.columns;
    }
  in
  let s =
    List.fold_left
      (fun acc (col, cf) ->
        match cf with
        | Fix_distinct d ->
          update_col acc col (fun (cs : Stats.column_stats) ->
              { cs with Stats.n_distinct = Float.max 1. (Float.min d acc.Stats.row_count) })
        | Fix_lo lo ->
          update_col acc col (fun (cs : Stats.column_stats) ->
              { cs with Stats.min_value = Some (value_like cs.Stats.min_value lo ~round:Float.floor) })
        | Fix_hi hi ->
          update_col acc col (fun (cs : Stats.column_stats) ->
              { cs with Stats.max_value = Some (value_like cs.Stats.max_value hi ~round:Float.ceil) }))
      s fix.cols
  in
  Catalog.update_stats catalog ~table:table_name ~stats:s ();
  {
    table = table_name;
    detail = String.concat "; " (List.rev fix.why);
    stats_version = Catalog.stats_version catalog table_name;
  }

let apply_corrections ?only catalog ~threshold plan nodes =
  let by_path = plan_table plan in
  let obs_by_path = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace obs_by_path n.path n) nodes;
  let fixes : (string, table_fix) Hashtbl.t = Hashtbl.create 8 in
  let fix_for t =
    match Hashtbl.find_opt fixes t with
    | Some f -> f
    | None ->
      let f = { row = None; cols = []; why = [] } in
      Hashtbl.add fixes t f;
      f
  in
  let stored_table t =
    match Catalog.find_opt catalog t with
    | Some tbl when not tbl.Catalog.materialized -> Some tbl
    | _ -> None
  in
  let consider (n : node_obs) =
    if drifted ~threshold n then
      match Hashtbl.find_opt by_path n.path with
      | None -> ()
      | Some (p : Physical.plan) -> begin
        match p.Physical.alg with
        | Physical.Table_scan t ->
          (* A full scan observes the true row count directly. *)
          Option.iter
            (fun (tbl : Catalog.table) ->
              let f = fix_for t in
              let rc = float_of_int n.observed in
              f.row <- Some rc;
              f.why <-
                Printf.sprintf "row_count %.0f -> %.0f" tbl.Catalog.stats.Stats.row_count
                  rc
                :: f.why)
            (stored_table t)
        | Physical.Filter pred -> begin
          (* A selection whose subtree reads one base relation: the
             observed selectivity (output over the child's observed
             input) incriminates the predicate columns' statistics. *)
          match n.relations with
          | [ t ] ->
            Option.iter
              (fun tbl ->
                match Hashtbl.find_opt obs_by_path (n.path @ [ 0 ]) with
                | Some input when input.observed > 0 ->
                  let s_obs =
                    float_of_int n.observed /. float_of_int input.observed
                  in
                  predicate_fixes (Catalog.base_props tbl) pred ~s_obs (fix_for t)
                | _ -> ())
              (stored_table t)
          | _ -> ()
        end
        | Physical.Index_scan (t, _, pred) ->
          (* The index scan applies its predicate during the scan, so
             only the qualifying count is observed; the claimed row
             count stands in for the input (attributing a row-count lie
             to the predicate — the best the observation supports). *)
          Option.iter
            (fun (tbl : Catalog.table) ->
              let claimed = Float.max 1. tbl.Catalog.stats.Stats.row_count in
              let s_obs = Float.min 1. (float_of_int n.observed /. claimed) in
              predicate_fixes (Catalog.base_props tbl) pred ~s_obs (fix_for t))
            (stored_table t)
        | _ -> ()
      end
  in
  (match only with
   | Some path -> Option.iter consider (Hashtbl.find_opt obs_by_path path)
   | None -> List.iter consider nodes);
  Hashtbl.fold (fun t f acc -> (t, f) :: acc) fixes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (t, f) -> apply_table_fix catalog t f)

(* ---------------------------------------------------------------------- *)
(* Measured cost                                                           *)
(* ---------------------------------------------------------------------- *)

(* Tuple touches each operator actually performed, from the observed
   cardinalities and how the executor implements the algorithm: the
   nested-loop join evaluates its predicate on every (outer x
   materialized-inner) pair, the hash join touches build + probe +
   matches, the merge join is linear, sorts compare n log n times, and
   the exchange operators are pass-through on the single-node executor
   (their output is their child's, already counted). An estimated cost
   model never enters: this is the metric estimates are judged by. *)
let node_work by_path obs (n : node_obs) =
  let c path = float_of_int (Option.value (Hashtbl.find_opt obs path) ~default:0) in
  let self = float_of_int n.observed in
  let in0 = c (n.path @ [ 0 ]) and in1 = c (n.path @ [ 1 ]) in
  let sort_work m = m *. Float.max 1. (Float.log2 (Float.max 2. m)) in
  match Hashtbl.find_opt by_path n.path with
  | None -> self
  | Some (p : Physical.plan) -> begin
    match p.Physical.alg with
    | Physical.Table_scan _ | Physical.Index_scan _ | Physical.Scan_materialized _ ->
      self
    | Physical.Filter _ | Physical.Project_cols _ | Physical.Hash_dedup -> in0
    | Physical.Nested_loop_join _ -> in0 *. in1
    | Physical.Hash_join _ | Physical.Hash_join_project _ | Physical.Merge_join _ ->
      in0 +. in1 +. self
    | Physical.Sort _ | Physical.Sort_dedup _ -> sort_work in0
    | Physical.Merge_union | Physical.Hash_union | Physical.Merge_intersect
    | Physical.Hash_intersect | Physical.Merge_difference | Physical.Hash_difference ->
      in0 +. in1
    | Physical.Stream_aggregate _ | Physical.Hash_aggregate _ -> in0
    | Physical.Repartition _ | Physical.Gather | Physical.Merge_gather _
    | Physical.Materialize _ ->
      0.
  end

let measured_work plan nodes ~(io : Executor.Io_stats.t) =
  let by_path = plan_table plan in
  let obs = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace obs n.path n.observed) nodes;
  List.fold_left (fun acc n -> acc +. node_work by_path obs n) 0. nodes
  +. float_of_int (io.page_reads + io.page_writes)

(* ---------------------------------------------------------------------- *)
(* JSON export                                                             *)
(* ---------------------------------------------------------------------- *)

let node_to_json n =
  J.Obj
    [
      ("path", J.Arr (List.map J.int n.path));
      ("alg", J.Str n.alg);
      ("estimated", J.Num n.estimated);
      ("observed", J.int n.observed);
      ("ratio", J.Num n.ratio);
      ("relations", J.Arr (List.map (fun r -> J.Str r) n.relations));
      ("complete", J.Bool n.complete);
    ]

let report_to_json r =
  J.Obj
    [
      ("drift_threshold", J.Num r.threshold);
      ("nodes", J.Arr (List.map node_to_json r.nodes));
      ("drifted", J.int (List.length r.drifted));
      ( "corrections",
        J.Arr
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("table", J.Str c.table);
                   ("detail", J.Str c.detail);
                   ("stats_version", J.int c.stats_version);
                 ])
             r.corrections) );
      ("escaped", J.Bool r.escaped);
      ("replans", J.int r.replans);
      ( "stats",
        J.Obj
          [
            ("feedback_runs", J.int r.stats.S.feedback_runs);
            ("feedback_nodes_observed", J.int r.stats.S.feedback_nodes_observed);
            ("feedback_drift_nodes", J.int r.stats.S.feedback_drift_nodes);
            ("feedback_corrections", J.int r.stats.S.feedback_corrections);
            ("feedback_escapes", J.int r.stats.S.feedback_escapes);
            ("feedback_replans", J.int r.stats.S.feedback_replans);
          ] );
    ]

(* ---------------------------------------------------------------------- *)
(* The loop end to end                                                     *)
(* ---------------------------------------------------------------------- *)

type outcome = {
  tuples : Tuple.t array;
  schema : Schema.t;
  io : Executor.Io_stats.t;
  plan : Opt.plan_node;
  report : report;
}

let finish config stats catalog ~escaped ~replans ~mid_corrections plan_node
    (tuples, schema, io, nodes) =
  stats.S.feedback_runs <- stats.S.feedback_runs + 1;
  stats.S.feedback_nodes_observed <- stats.S.feedback_nodes_observed + List.length nodes;
  let drifted = drift_nodes ~threshold:config.drift_threshold nodes in
  stats.S.feedback_drift_nodes <- stats.S.feedback_drift_nodes + List.length drifted;
  let post =
    if config.correct && drifted <> [] then
      apply_corrections catalog ~threshold:config.drift_threshold
        (Opt.to_physical plan_node) nodes
    else []
  in
  stats.S.feedback_corrections <- stats.S.feedback_corrections + List.length post;
  {
    tuples;
    schema;
    io;
    plan = plan_node;
    report =
      {
        nodes;
        drifted;
        threshold = config.drift_threshold;
        corrections = mid_corrections @ post;
        escaped;
        replans;
        stats;
      };
  }

let run_plan ?(config = default_config) (request : Opt.request) query ~required
    plan_node =
  let catalog = request.Opt.catalog in
  let stats = S.create () in
  let escaped = ref false in
  let replans = ref 0 in
  let mid_corrections = ref [] in
  let rec attempt budget plan_node =
    let phys = Opt.to_physical plan_node in
    (* The final attempt always runs to completion: no hatch left. *)
    let escape_factor = if budget > 0 then config.escape_factor else None in
    match observed_run ?escape_factor catalog phys with
    | Complete (tuples, schema, io, nodes) -> (plan_node, (tuples, schema, io, nodes))
    | Aborted { at; nodes; io = _ } -> begin
      escaped := true;
      stats.S.feedback_escapes <- stats.S.feedback_escapes + 1;
      escape_trigger config;
      (* Correct only the node that blew its budget: its count already
         proves the estimate wrong by the escape factor, while every
         other count is still a partial lower bound. *)
      let cs =
        apply_corrections ~only:at catalog ~threshold:config.drift_threshold phys nodes
      in
      match cs with
      | [] ->
        (* No single-table statistic to pin the blowup on (e.g. a join
           misestimate): re-optimizing would reproduce the same plan, so
           disarm the hatch and finish the run. *)
        attempt 0 plan_node
      | cs -> begin
        stats.S.feedback_corrections <- stats.S.feedback_corrections + List.length cs;
        mid_corrections := !mid_corrections @ cs;
        stats.S.feedback_replans <- stats.S.feedback_replans + 1;
        incr replans;
        let result = Opt.optimize request query ~required in
        S.merge ~into:stats result.Opt.stats;
        match result.Opt.plan with
        | Some p -> attempt (budget - 1) p
        | None -> attempt 0 plan_node
      end
    end
  in
  let final_plan, run = attempt config.max_replans plan_node in
  finish config stats catalog ~escaped:!escaped ~replans:!replans
    ~mid_corrections:!mid_corrections final_plan run

let run ?config (request : Opt.request) query ~required =
  let result = Opt.optimize request query ~required in
  match result.Opt.plan with
  | None -> invalid_arg "Feedback.run: optimizer found no plan"
  | Some p -> run_plan ?config request query ~required p

let run_dynamic ?(config = default_config) (request : Opt.request) (dyn : Dynplan.t)
    ~param =
  let catalog = request.Opt.catalog in
  let stats = S.create () in
  (* The static plan was optimized at the range midpoint (see
     Dynplan.prepare); that witness carries its embedded constants. *)
  let witness =
    match dyn.Dynplan.buckets with
    | [] -> 0.
    | first :: _ ->
      let last = List.fold_left (fun _ b -> b) first dyn.Dynplan.buckets in
      (first.Dynplan.lo +. last.Dynplan.hi) /. 2.
  in
  let static_node = Dynplan.instantiate_node dyn.Dynplan.static_plan ~witness ~actual:param in
  let static_actual = Opt.to_physical static_node in
  let static_believed = Opt.to_physical dyn.Dynplan.static_plan in
  match
    observed_run ?escape_factor:config.escape_factor ~estimate_plan:static_believed
      catalog static_actual
  with
  | Complete (tuples, schema, io, nodes) ->
    finish config stats catalog ~escaped:false ~replans:0 ~mid_corrections:[]
      static_node
      (tuples, schema, io, nodes)
  | Aborted _ -> begin
    (* Abort into the dynplan bucket covering the actual parameter: the
       start-up-time choose-plan re-run as a run-time fallback. *)
    stats.S.feedback_escapes <- stats.S.feedback_escapes + 1;
    escape_trigger config;
    let bucket = Dynplan.choose dyn param in
    let bucket_node =
      Dynplan.instantiate_node bucket.Dynplan.plan ~witness:bucket.Dynplan.witness
        ~actual:param
    in
    let believed = Opt.to_physical bucket.Dynplan.plan in
    match
      observed_run ~estimate_plan:believed catalog (Opt.to_physical bucket_node)
    with
    | Complete (tuples, schema, io, nodes) ->
      finish config stats catalog ~escaped:true ~replans:0 ~mid_corrections:[]
        bucket_node
        (tuples, schema, io, nodes)
    | Aborted _ -> assert false (* no escape factor on the fallback run *)
  end
