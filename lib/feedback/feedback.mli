(** The runtime cardinality feedback loop: close the circle between the
    optimizer's estimates and the executor's reality.

    The Volcano generator optimizes against {e estimated} costs; this
    module confronts those estimates with actuals. An instrumented
    execution wraps every plan node's cursor with a pass-through counter
    ({!Executor.Cursor.observed}), records the actual output cardinality
    per node, and diffs it against the estimate the optimizer's property
    derivation attaches to the same node ({!Relmodel.Plan_cost.props}).
    The diff becomes a {!report} — per node: estimated vs observed and
    the q-error between them, plus the base relations responsible.

    Drifted single-table nodes feed {e corrections} back into the
    catalog ({!Catalog.update_stats}): a table scan whose actual count
    contradicts the claimed row count corrects the row count; a
    drifted selection corrects the predicate column's distinct count
    (equality) or value range (inequality) so the estimator reproduces
    the observed selectivity. Every correction bumps the table's
    statistics version, so plan caches stamped with the old version
    ({!Plansrv}) invalidate lazily and re-optimize on their next
    lookup — the feedback loop needs no private channel into the cache.

    A mid-query escape hatch aborts execution as soon as any node's
    observed cardinality exceeds [k x] its estimate: the run re-enters
    the optimizer with the correction proven so far, or — for dynamic
    plans — switches to the {!Dynplan} bucket covering the actual
    parameter ({!run_dynamic}). *)

(** {1 Configuration} *)

type config = {
  drift_threshold : float;
      (** q-error at or above which a node counts as drifted (and, for
          single-table nodes, produces a correction); must be >= 1 *)
  escape_factor : float option;
      (** the escape hatch's [k]: abort mid-query when a node's observed
          cardinality exceeds [k x max(1, estimate)]; [None] disarms the
          hatch. With exact estimates and [k >= 1] the hatch never
          fires. *)
  correct : bool;
      (** install catalog corrections after a completed run ([false]:
          observe and report only) *)
  max_replans : int;
      (** escape-hatch re-optimization budget per {!run} (the final
          attempt always executes to completion) *)
  recorder : Obs.Flight_recorder.t option;
      (** flight recorder to {!Obs.Flight_recorder.trigger} (reason
          ["feedback-escape"]) whenever the escape hatch aborts a run:
          the post-mortem dump captures the engine events leading up to
          the misestimate *)
}

val config :
  ?drift_threshold:float ->
  ?escape_factor:float ->
  ?correct:bool ->
  ?max_replans:int ->
  ?recorder:Obs.Flight_recorder.t ->
  unit ->
  config
(** Defaults: threshold 2, hatch disarmed, corrections on, 1 replan.
    @raise Invalid_argument if [drift_threshold < 1.] or
    [escape_factor < 1.]. *)

(** {1 Drift reports} *)

(** One plan node's estimate confronted with its actual. *)
type node_obs = {
  path : int list;
      (** position in the plan tree: [[]] is the root, [path @ [i]] the
          i-th child — the same paths
          {!Executor.Engine.compile_instrumented} hands its hook *)
  alg : string;  (** physical algorithm name ({!Relalg.Physical.alg_name}) *)
  estimated : float;  (** cardinality the optimizer derived for the node *)
  observed : int;  (** tuples the node actually delivered *)
  ratio : float;
      (** q-error [max(obs', est') / min(obs', est')] with both sides
          clamped below at 1; [1.0] means the estimate was exact *)
  relations : string list;  (** base relations feeding the node *)
  complete : bool;
      (** the node delivered its end of stream. When [false] — the
          consumer stopped pulling early, e.g. a merge join whose other
          input ran out — [observed] is only a lower bound, so the node
          counts as drifted only if that bound already exceeds the
          estimate. *)
}

val q_error : estimated:float -> observed:int -> float
(** The {!node_obs.ratio} metric by itself. *)

(** One statistics correction installed in the catalog. *)
type correction = {
  table : string;
  detail : string;  (** human-readable rule applied (row count, distinct, range) *)
  stats_version : int;
      (** the table's statistics version {e after} the correction — the
          stamp cached plans must now carry to stay fresh *)
}

(** The per-query drift report. *)
type report = {
  nodes : node_obs list;  (** every observed node, preorder *)
  drifted : node_obs list;  (** the subset with [ratio >= threshold] *)
  threshold : float;  (** the configured drift threshold *)
  corrections : correction list;  (** catalog corrections installed *)
  escaped : bool;  (** the escape hatch fired at least once *)
  replans : int;  (** optimizer re-entries triggered *)
  stats : Volcano.Search_stats.t;
      (** the run's counters: the [feedback_*] family plus the search
          effort of any feedback-triggered re-optimization *)
}

val report_to_json : report -> Obs.Json.t
(** Export shape (validated by [validate_obs drift]): [nodes] array
    with per-node path/alg/estimated/observed/ratio/relations, the
    drifted count, corrections with their new stats versions, and every
    [feedback_*] counter under ["stats"]. *)

(** {1 Instrumented execution} *)

(** How an instrumented execution ended. *)
type run_result =
  | Complete of
      Relalg.Tuple.t array * Relalg.Schema.t * Executor.Io_stats.t * node_obs list
      (** ran to exhaustion; the tuple array is bit-identical to
          {!Executor.run} on the same plan *)
  | Aborted of {
      at : int list;  (** path of the node that blew its budget *)
      nodes : node_obs list;
          (** counts accumulated up to the abort — lower bounds, except
              at [at] where the count already proves the estimate wrong
              by the escape factor *)
      io : Executor.Io_stats.t;
    }  (** the escape hatch fired *)

val observed_run :
  ?escape_factor:float ->
  ?estimate_plan:Relalg.Physical.plan ->
  Catalog.t ->
  Relalg.Physical.plan ->
  run_result
(** Execute [plan] with a per-node cardinality observer. Estimates are
    derived from [estimate_plan] when given (a structurally congruent
    plan carrying the constants the optimizer actually believed — used
    by {!run_dynamic} to judge a parameter-instantiated plan against
    its witness), from [plan] itself otherwise. *)

val drift_nodes : threshold:float -> node_obs list -> node_obs list
(** The nodes whose q-error reaches [threshold] and whose drift is
    proven: either the node ran to completion, or its partial count
    already exceeds the estimate. *)

val apply_corrections :
  ?only:int list ->
  Catalog.t ->
  threshold:float ->
  Relalg.Physical.plan ->
  node_obs list ->
  correction list
(** Derive and install catalog corrections from the drifted single-table
    nodes of an observed run (see the correction rule in DESIGN.md §15).
    [only] restricts correction to the node at that path (the escape
    hatch corrects just the node that blew its budget, since every other
    count is still partial). Each affected table receives one
    [Catalog.update_stats], bumping its statistics version once. *)

val measured_work :
  Relalg.Physical.plan -> node_obs list -> io:Executor.Io_stats.t -> float
(** Machine-neutral measured cost of an observed run: the tuple touches
    each operator actually performed — from the observed cardinalities
    and the executor's algorithm (nested-loop joins pay outer x inner
    predicate evaluations, hash joins build + probe + matches, sorts
    n log n comparisons, exchanges nothing) — plus the pages read and
    written. No estimate enters; the feedback benchmarks judge
    plan-quality recovery by this. *)

(** {1 The feedback loop end to end} *)

(** A feedback-instrumented query execution. *)
type outcome = {
  tuples : Relalg.Tuple.t array;
  schema : Relalg.Schema.t;
  io : Executor.Io_stats.t;
  plan : Relmodel.Optimizer.plan_node;
      (** the plan that produced [tuples] — the re-optimized one if the
          escape hatch replanned *)
  report : report;
}

val run_plan :
  ?config:config ->
  Relmodel.Optimizer.request ->
  Relalg.Logical.expr ->
  required:Relalg.Phys_prop.t ->
  Relmodel.Optimizer.plan_node ->
  outcome
(** Execute an already-optimized plan under the feedback loop: observe,
    escape/replan within [config.max_replans] (re-entering
    {!Relmodel.Optimizer.optimize} against the corrected catalog), and
    install post-run corrections when [config.correct]. Used by
    [volcano-cli serve --feedback] to confront cached plans with
    reality. *)

val run :
  ?config:config ->
  Relmodel.Optimizer.request ->
  Relalg.Logical.expr ->
  required:Relalg.Phys_prop.t ->
  outcome
(** Optimize then {!run_plan} — the [volcano-cli run --feedback] path.
    @raise Invalid_argument when the optimizer finds no plan. *)

val run_dynamic :
  ?config:config ->
  Relmodel.Optimizer.request ->
  Dynplan.t ->
  param:Relalg.Value.t ->
  outcome
(** Execute a dynamic plan's static choice under the feedback loop,
    judged against the estimates of its optimization-time witness. When
    the escape hatch fires, abort into the {!Dynplan} bucket covering
    the actual parameter (choose-plan as a run-time fallback, no
    re-optimization) and execute that to completion. *)
