(** The memo: "a hash table of expressions and equivalence classes"
    (paper §3). An equivalence class (group) represents two
    collections — equivalent logical multi-expressions, whose inputs
    are themselves groups, and physical plans indexed by the property
    vectors for which the class has been optimized (the winner table,
    which also records failures). Duplicate derivations of the same
    expression are detected through the expression index; when the same
    expression is derived in two classes, the classes are merged
    (union-find), and only the expressions referencing the dead class
    are re-indexed (each group tracks its parent expressions).

    The whole memo is arena-shaped: groups live in one flat growable
    array indexed by group id, multi-expressions live in one flat
    growable array indexed by mexpr id (groups hold member/parent id
    lists, not pointers), and optimization-goal keys — (required
    property vector, excluding vector) pairs — are interned to small
    sequential integer ids. Every per-group goal table (winners,
    claims, in-progress marks, cost lower bounds) is then a flat array
    indexed by goal id: the stepper loop's hot lookups are a bounds
    check and an array load, with no hashing and no per-entry boxes
    beyond the stored values themselves. *)

module Make (M : Signatures.MODEL) = struct
  type group = int

  type mexpr = {
    mid : int;  (** arena id; stable for the life of the memo *)
    op : M.op;
    op_h : int;  (** cached [M.op_hash op]: operators can be large *)
    mutable key_h : int;
        (** cached combined structural hash ([op_h] folded with the
            input group ids); recomputed when a merge re-points inputs *)
    mutable inputs : group list;
        (** kept canonical: re-pointed whenever an input group merges *)
    mutable owner : group;  (** canonicalize with [find_root] before use *)
    mutable applied : int;  (** bitmask of transformation rules already fired *)
    mutable dead : bool;  (** folded into an identical expression after a merge *)
  }

  (** A physical plan node. Children are referenced by optimization
      goal so the full tree can be re-extracted from winner tables. *)
  type plan = {
    p_alg : M.alg;
    p_inputs : (group * M.phys_props * M.phys_props option) list;
        (** (group, required, excluding vector) per input *)
    p_props : M.phys_props;  (** properties the plan promises to deliver *)
    p_cost : M.cost;  (** total cost including inputs *)
    p_rule : string;
        (** provenance: the implementation rule that produced this
            node's algorithm choice, or ["enforcer"] for enforcer
            moves — surfaced by EXPLAIN *)
  }

  type winner = {
    mutable w_plan : plan option;  (** [None] = failure *)
    mutable w_bound : M.cost;  (** cost limit the optimization ran under *)
  }

  (** Why a pursued alternative did not become (or stay) the winner —
      EXPLAIN's losing-reason annotations, recorded per goal as the
      search abandons or completes each move. *)
  type alt_reason =
    | Alt_completed
        (** fully costed candidate; the eventual winner is among these,
            the rest lost on cost (or arrived over the limit) *)
    | Alt_over_bound
        (** abandoned mid-pursuit: accumulated cost exceeded the
            branch-and-bound bound (Figure 2's limit test) *)
    | Alt_pruned_lb
        (** guided pruning: the lower-bound projection already exceeded
            the bound, so the move was never pursued *)
    | Alt_input_failed
        (** an input goal concluded with no plan within its limit — a
            failure-table hit or a fresh bounded failure *)

  (** One considered-and-rejected (or considered-and-won) alternative
      for a goal. *)
  type alt = {
    a_alg : M.alg;
    a_rule : string;  (** producing rule, or ["enforcer"] *)
    a_cost : M.cost option;
        (** full cost for {!Alt_completed}, the partial accumulated
            cost for {!Alt_over_bound}, [None] otherwise *)
    a_reason : alt_reason;
  }

  module Goal_key = struct
    type t = M.phys_props * M.phys_props option

    let equal (r1, e1) (r2, e2) =
      M.pp_equal r1 r2
      &&
      match e1, e2 with
      | None, None -> true
      | Some a, Some b -> M.pp_equal a b
      | None, Some _ | Some _, None -> false

    let hash (r, e) =
      M.pp_hash r + (31 * match e with None -> 0 | Some p -> 1 + M.pp_hash p)
  end

  module Goal_tbl = Hashtbl.Make (Goal_key)

  (** Interned-goal-id tables. The per-group goal tables themselves are
      flat arrays now; this module remains for id-keyed side tables
      (EXPLAIN provenance here, per-run in-progress marks in the
      search) where population is sparse. *)
  module Id_tbl = Hashtbl.Make (struct
    type t = int

    let equal (a : int) (b : int) = a = b

    let hash (i : int) = i
  end)

  (* The goal-id-indexed per-group tables, as flat growable arrays.
     [None] / [false] are the empty states; arrays grow geometrically
     on first write past the end, and a read past the end is simply the
     empty state (goal ids are memo-global, so most groups only ever
     see a small prefix). *)

  type group_data = {
    gid : int;
    mutable parent : int;  (** union-find; self when root *)
    mutable mexprs : int list;  (** member mexpr ids; meaningful on roots only *)
    mutable parents : int list;
        (** ids of expressions (anywhere in the memo) using this group
            as an input *)
    mutable lprops : M.logical_props option;
    mutable winners : winner option array;  (** indexed by interned goal id *)
    mutable in_progress : bool array;  (** goal id on the sequential DFS path *)
    mutable claimed : bool array;
        (** goals claimed by a parallel worker (transient, per parallel
            phase): duplicate goals dedupe instead of racing *)
    mutable lbounds : M.cost option array;
        (** cached {!Signatures.MODEL.cost_lower_bound} per interned
            (required, no-excluding) goal id — guided pruning consults
            the bound once per (group, requirement) *)
    alts : alt list Id_tbl.t;
        (** per-goal EXPLAIN provenance (newest first); only populated
            when the search runs with [explain] recording on *)
    mutable explored : bool;
    mutable exploring : bool;
  }

  module Expr_key = struct
    type t = int * M.op * group list  (* combined structural hash, operator, inputs *)

    let equal ((h1, o1, is1) : t) ((h2, o2, is2) : t) =
      h1 = h2
      && List.length is1 = List.length is2
      && List.for_all2 ( = ) is1 is2
      && M.op_equal o1 o2

    let hash ((h, _, _) : t) = h

    let combine op_h inputs = List.fold_left (fun acc g -> (acc * 31) + g) op_h inputs
  end

  module Expr_tbl = Hashtbl.Make (Expr_key)

  (* Number of winner-table lock stripes (power of two). Stripes are
     keyed by root group id, so one group's winner/claim tables are
     always guarded by the same mutex. *)
  let n_stripes = 64

  type t = {
    mutable groups : group_data array;  (** group arena, indexed by group id *)
    mutable n_groups : int;
    mutable exprs : mexpr array;  (** mexpr arena, indexed by mexpr id *)
    mutable n_exprs : int;
    index : mexpr Expr_tbl.t;
    stats : Search_stats.t;
    stripes : Mutex.t array;
        (** winner/claim-table locks for the parallel search phase; the
            sequential engine never takes them *)
    key_index : int Goal_tbl.t;  (** goal-key hash-consing: key -> id *)
    mutable keys : Goal_key.t array;  (** id -> goal key *)
    mutable n_keys : int;
    key_mutex : Mutex.t;
        (** guards the intern tables during the parallel phase; the
            sequential engine interns without it *)
  }

  let create stats =
    {
      groups = [||];
      n_groups = 0;
      exprs = [||];
      n_exprs = 0;
      index = Expr_tbl.create 256;
      stats;
      stripes = Array.init n_stripes (fun _ -> Mutex.create ());
      key_index = Goal_tbl.create 64;
      keys = [||];
      n_keys = 0;
      key_mutex = Mutex.create ();
    }

  let data t g =
    assert (g >= 0 && g < t.n_groups);
    t.groups.(g)

  let rec find_root t g =
    let d = data t g in
    if d.parent = g then g
    else begin
      let root = find_root t d.parent in
      d.parent <- root;
      root
    end

  let new_group t =
    let gid = t.n_groups in
    let d =
      {
        gid;
        parent = gid;
        mexprs = [];
        parents = [];
        lprops = None;
        winners = [||];
        in_progress = [||];
        claimed = [||];
        lbounds = [||];
        alts = Id_tbl.create 1;
        explored = false;
        exploring = false;
      }
    in
    if t.n_groups = Array.length t.groups then begin
      let bigger = Array.make (max 64 (2 * Array.length t.groups)) d in
      Array.blit t.groups 0 bigger 0 t.n_groups;
      t.groups <- bigger
    end;
    t.groups.(t.n_groups) <- d;
    t.n_groups <- t.n_groups + 1;
    t.stats.Search_stats.groups_created <- t.stats.Search_stats.groups_created + 1;
    gid

  (* Growable-array plumbing for the goal-id-indexed tables. Each
     grower pads generously past the requested id so a group's table
     resizes O(log n) times over a whole search. *)

  let grown_len len id = max 8 (max (id + 1) (2 * len))

  let ensure_winners d id =
    let len = Array.length d.winners in
    if id >= len then begin
      let bigger = Array.make (grown_len len id) None in
      Array.blit d.winners 0 bigger 0 len;
      d.winners <- bigger
    end

  let ensure_in_progress d id =
    let len = Array.length d.in_progress in
    if id >= len then begin
      let bigger = Array.make (grown_len len id) false in
      Array.blit d.in_progress 0 bigger 0 len;
      d.in_progress <- bigger
    end

  let ensure_claimed d id =
    let len = Array.length d.claimed in
    if id >= len then begin
      let bigger = Array.make (grown_len len id) false in
      Array.blit d.claimed 0 bigger 0 len;
      d.claimed <- bigger
    end

  let ensure_lbounds d id =
    let len = Array.length d.lbounds in
    if id >= len then begin
      let bigger = Array.make (grown_len len id) None in
      Array.blit d.lbounds 0 bigger 0 len;
      d.lbounds <- bigger
    end

  let get_winner d id = if id < Array.length d.winners then d.winners.(id) else None

  let canonical_inputs t inputs = List.map (find_root t) inputs

  let key_of_mexpr (m : mexpr) : Expr_key.t = (m.key_h, m.op, m.inputs)

  let mexpr_of_id t i =
    assert (i >= 0 && i < t.n_exprs);
    t.exprs.(i)

  (* Append a freshly built mexpr to the arena. *)
  let add_expr t m =
    if t.n_exprs = Array.length t.exprs then begin
      let bigger = Array.make (max 64 (2 * Array.length t.exprs)) m in
      Array.blit t.exprs 0 bigger 0 t.n_exprs;
      t.exprs <- bigger
    end;
    t.exprs.(t.n_exprs) <- m;
    t.n_exprs <- t.n_exprs + 1

  (* ------------------------------------------------------------------ *)
  (* Goal-key interning (hash-consing). Every (required, excluding)     *)
  (* pair the search ever forms is mapped to a small integer id, once;  *)
  (* all per-group goal tables are then flat integer-indexed arrays, so *)
  (* repeated lookups — and especially the lock-striped claim/publish   *)
  (* churn of the parallel phase — stop rehashing property vectors.     *)
  (* ------------------------------------------------------------------ *)

  (** [intern t key] — the id of [key], allocating one on first sight.
      Sequential-phase entry point: takes no lock. *)
  let intern t (key : Goal_key.t) : int =
    match Goal_tbl.find_opt t.key_index key with
    | Some id ->
      t.stats.Search_stats.memo_fastpath_hits <-
        t.stats.Search_stats.memo_fastpath_hits + 1;
      id
    | None ->
      let id = t.n_keys in
      if id = Array.length t.keys then begin
        let bigger = Array.make (max 64 (2 * Array.length t.keys)) key in
        Array.blit t.keys 0 bigger 0 id;
        t.keys <- bigger
      end;
      t.keys.(id) <- key;
      t.n_keys <- id + 1;
      Goal_tbl.replace t.key_index key id;
      id

  (** {!intern} under the intern mutex, for parallel workers. The hit
      counter is incremented inside the lock, so worker counts are
      exact. *)
  let intern_locked t key = Mutex.protect t.key_mutex (fun () -> intern t key)

  (** The key an id stands for. Taken under the intern mutex so a
      worker always observes a fully published entry. *)
  let key_of_id t id : Goal_key.t = Mutex.protect t.key_mutex (fun () -> t.keys.(id))

  let lprops t g =
    let d = data t (find_root t g) in
    match d.lprops with
    | Some p -> p
    | None -> invalid_arg "Memo.lprops: group has no logical properties yet"

  let mexprs t g =
    List.filter_map
      (fun i ->
        let m = t.exprs.(i) in
        if m.dead then None else Some m)
      (data t (find_root t g)).mexprs

  let register_parents t m =
    List.iter
      (fun ig ->
        let d = data t ig in
        d.parents <- m.mid :: d.parents)
      m.inputs

  (* Monotonic winner ordering, shared by class merging and by the
     parallel publish path: a plan beats a failure, a cheaper plan beats
     a dearer one, and of two failures the one recorded under the more
     generous bound carries more information. *)
  let winner_le (w : winner) (v : winner) =
    match w.w_plan, v.w_plan with
    | Some p1, Some p2 -> M.cost_compare p1.p_cost p2.p_cost <= 0
    | Some _, None -> true
    | None, Some _ -> false
    | None, None -> M.cost_compare w.w_bound v.w_bound >= 0

  (* Merge group [b] into group [a] (both roots): the same expression
     was derived in two classes, proving them equivalent. Only the
     expressions referencing [b] need re-indexing; folding may reveal
     further equivalences, which are merged recursively. *)
  let rec merge t a b =
    let a = find_root t a and b = find_root t b in
    if a = b then a
    else begin
      t.stats.Search_stats.merges <- t.stats.Search_stats.merges + 1;
      let da = data t a and db = data t b in
      db.parent <- a;
      da.explored <- da.explored && db.explored;
      (* Combine winner tables, keeping the better entry per goal. Goal
         ids are memo-global, so the tables merge id-for-id. *)
      Array.iteri
        (fun id w ->
          match w with
          | None -> ()
          | Some w -> (
            ensure_winners da id;
            match da.winners.(id) with
            | None -> da.winners.(id) <- Some w
            | Some existing ->
              if not (winner_le existing w) then da.winners.(id) <- Some w))
        db.winners;
      (* Combine EXPLAIN provenance id-for-id: both classes' recorded
         alternatives describe the same (now unified) goal. *)
      Id_tbl.iter
        (fun id l ->
          match Id_tbl.find_opt da.alts id with
          | None -> Id_tbl.replace da.alts id l
          | Some existing -> Id_tbl.replace da.alts id (l @ existing))
        db.alts;
      (* Move b's expressions and parent links into a. Cross-group
         same-key duplicates cannot exist (insert would have merged
         instead), so b's own expressions keep their index entries. *)
      List.iter
        (fun i ->
          let m = t.exprs.(i) in
          if not m.dead then m.owner <- a)
        db.mexprs;
      da.mexprs <- da.mexprs @ db.mexprs;
      db.mexprs <- [];
      let b_parents = db.parents in
      da.parents <- da.parents @ b_parents;
      db.parents <- [];
      (* Re-index every live expression that referenced b. *)
      let pending = ref [] in
      List.iter
        (fun i ->
          let m = t.exprs.(i) in
          if not m.dead then begin
            Expr_tbl.remove t.index (key_of_mexpr m);
            m.inputs <- canonical_inputs t m.inputs;
            m.key_h <- Expr_key.combine m.op_h m.inputs;
            let key = key_of_mexpr m in
            match Expr_tbl.find_opt t.index key with
            | None -> Expr_tbl.replace t.index key m
            | Some existing ->
              (* [m] now spells the same expression as [existing]. *)
              existing.applied <- existing.applied lor m.applied;
              m.dead <- true;
              let go = find_root t m.owner and ge = find_root t existing.owner in
              if go <> ge then pending := (go, ge) :: !pending
          end)
        b_parents;
      List.iter (fun (x, y) -> ignore (merge t x y)) !pending;
      find_root t a
    end

  (** Insert expression [op inputs]. If it already exists, returns its
      group (merging with [target] if they differ — duplicate-derivation
      detection). Otherwise adds a new mexpr to [target] or to a fresh
      group. Returns the root group holding the expression. *)
  let insert t ?target op inputs =
    let inputs = canonical_inputs t inputs in
    let op_h = M.op_hash op in
    let key : Expr_key.t = (Expr_key.combine op_h inputs, op, inputs) in
    match Expr_tbl.find_opt t.index key with
    | Some m -> begin
      let g = find_root t m.owner in
      match target with
      | None -> g
      | Some tgt ->
        let tgt = find_root t tgt in
        if tgt = g then g else merge t g tgt
    end
    | None ->
      let g = match target with Some tgt -> find_root t tgt | None -> new_group t in
      let h, _, _ = key in
      let m =
        { mid = t.n_exprs; op; op_h; key_h = h; inputs; owner = g; applied = 0;
          dead = false }
      in
      add_expr t m;
      let d = data t g in
      d.mexprs <- m.mid :: d.mexprs;
      d.explored <- false;
      Expr_tbl.replace t.index key m;
      register_parents t m;
      t.stats.Search_stats.mexprs_created <- t.stats.Search_stats.mexprs_created + 1;
      (if d.lprops = None then
         let input_props = List.map (lprops t) inputs in
         d.lprops <- Some (M.derive op input_props));
      g

  let winner_id t g id = get_winner (data t (find_root t g)) id

  let set_winner_id t g id plan bound =
    let d = data t (find_root t g) in
    ensure_winners d id;
    d.winners.(id) <- Some { w_plan = plan; w_bound = bound }

  let winner t g key = winner_id t g (intern t key)

  let set_winner t g key plan bound = set_winner_id t g (intern t key) plan bound

  (** [record_alt t g id alt] — append EXPLAIN provenance for the goal
      [id] of group [g]. Sequential-phase entry point. *)
  let record_alt t g id alt =
    let d = data t (find_root t g) in
    let existing = Option.value (Id_tbl.find_opt d.alts id) ~default:[] in
    Id_tbl.replace d.alts id (alt :: existing)

  (** [alts t g id] — recorded alternatives for a goal, oldest first
      (the order the search pursued them in). *)
  let alts t g id =
    let d = data t (find_root t g) in
    List.rev (Option.value (Id_tbl.find_opt d.alts id) ~default:[])

  (** Winner-table snapshot with materialized keys, for tests and
      debugging (the live table is indexed by interned ids). *)
  let winners_alist t g : (Goal_key.t * winner) list =
    let d = data t (find_root t g) in
    let out = ref [] in
    Array.iteri
      (fun id w -> match w with None -> () | Some w -> out := (t.keys.(id), w) :: !out)
      d.winners;
    !out

  (** [lower_bound t g required] — the model's certified cost lower
      bound for delivering [required] from group [g], cached per
      (group, interned requirement). Sequential-phase entry point. *)
  let lower_bound t g required =
    let g = find_root t g in
    let d = data t g in
    let id = intern t (required, None) in
    match if id < Array.length d.lbounds then d.lbounds.(id) else None with
    | Some c -> c
    | None ->
      let c =
        match d.lprops with
        | Some props -> M.cost_lower_bound props required
        | None -> M.cost_zero
      in
      ensure_lbounds d id;
      d.lbounds.(id) <- Some c;
      c

  (* ------------------------------------------------------------------ *)
  (* Lock-striped access for the parallel search phase. The memo's      *)
  (* logical structure (groups, mexprs, expression index) must already  *)
  (* be frozen — exploration complete, no inserts or merges — so only   *)
  (* the per-group winner and claim tables need guarding.               *)
  (* ------------------------------------------------------------------ *)

  let stripe t g = t.stripes.(g land (n_stripes - 1))

  (** [winner_locked_id t g id] is {!winner_id} under the group's
      stripe lock, returning a private copy so the caller never
      observes a concurrent publish halfway through. *)
  let winner_locked_id t g id =
    let g = find_root t g in
    Mutex.protect (stripe t g) (fun () ->
        match get_winner (data t g) id with
        | None -> None
        | Some w -> Some { w_plan = w.w_plan; w_bound = w.w_bound })

  let winner_locked t g key = winner_locked_id t g (intern_locked t key)

  (** [publish_winner_id t g id plan bound] records a winner from a
      parallel worker, merging monotonically under the stripe lock:
      whichever of the existing and incoming entries {!winner_le}
      prefers survives, so racing publications commute. Returns [false]
      when an existing entry already subsumed the incoming one — the
      computation that produced it was redundant; a publication that is
      fresh or strictly improves the table returns [true]. *)
  let publish_winner_id t g id plan bound =
    let g = find_root t g in
    let incoming = { w_plan = plan; w_bound = bound } in
    Mutex.protect (stripe t g) (fun () ->
        let d = data t g in
        match get_winner d id with
        | None ->
          ensure_winners d id;
          d.winners.(id) <- Some incoming;
          true
        | Some existing ->
          if winner_le existing incoming then false
          else begin
            d.winners.(id) <- Some incoming;
            true
          end)

  let publish_winner t g key plan bound =
    publish_winner_id t g (intern_locked t key) plan bound

  (** [try_claim_id t g id] claims the goal for the calling worker.
      Returns [false] when another worker already claimed it or a
      winner is already recorded — the once-per-goal dedup of the
      parallel phase. *)
  let try_claim_id t g id =
    let g = find_root t g in
    Mutex.protect (stripe t g) (fun () ->
        let d = data t g in
        if
          (id < Array.length d.claimed && d.claimed.(id))
          || get_winner d id <> None
        then false
        else begin
          ensure_claimed d id;
          d.claimed.(id) <- true;
          true
        end)

  let try_claim t g key = try_claim_id t g (intern_locked t key)

  (** [try_acquire_id t g id] — test-and-set on the claim bit alone,
      ignoring any recorded winner. The stealing scheduler uses it to
      serialize {e re-optimizations}: a goal whose recorded failure
      bound proved insufficient must be recomputed under a more
      generous limit even though an entry exists — exactly the case
      {!try_claim_id}'s winner check is designed to refuse. *)
  let try_acquire_id t g id =
    let g = find_root t g in
    Mutex.protect (stripe t g) (fun () ->
        let d = data t g in
        if id < Array.length d.claimed && d.claimed.(id) then false
        else begin
          ensure_claimed d id;
          d.claimed.(id) <- true;
          true
        end)

  (** [claim_id t g id] marks the goal claimed unconditionally (used
      when a worker starts a subgoal mid-run, so later seed grabs skip
      it). *)
  let claim_id t g id =
    let g = find_root t g in
    Mutex.protect (stripe t g) (fun () ->
        let d = data t g in
        ensure_claimed d id;
        d.claimed.(id) <- true)

  (** [is_claimed_id t g id] — whether some run claimed the goal.
      Workers consult this to wait for the claim holder's published
      winner instead of duplicating the whole subtree. *)
  let is_claimed_id t g id =
    let g = find_root t g in
    Mutex.protect (stripe t g) (fun () ->
        let d = data t g in
        id < Array.length d.claimed && d.claimed.(id))

  (** [release_claim_id t g id] reopens a claimed goal. The stealing
      scheduler releases claims when a run is abandoned mid-flight (its
      claimed-but-unpublished goals must become claimable again, or
      every run parked on them would stall) and when a goal is
      finalized (the published winner, not the claim, is then the
      authority — a later run that needs a more generous bound
      re-claims and re-optimizes instead of parking forever). *)
  let release_claim_id t g id =
    let g = find_root t g in
    Mutex.protect (stripe t g) (fun () ->
        let d = data t g in
        if id < Array.length d.claimed then d.claimed.(id) <- false)

  (** {!lower_bound} for parallel workers: the intern table is guarded
      by the intern mutex and the per-group cache by the group's
      stripe. The bound is deterministic per class, so racing
      recomputations store the same value. *)
  let lower_bound_locked t g required =
    let g = find_root t g in
    let d = data t g in
    let id = intern_locked t (required, None) in
    Mutex.protect (stripe t g) (fun () ->
        match if id < Array.length d.lbounds then d.lbounds.(id) else None with
        | Some c -> c
        | None ->
          let c =
            match d.lprops with
            | Some props -> M.cost_lower_bound props required
            | None -> M.cost_zero
          in
          ensure_lbounds d id;
          d.lbounds.(id) <- Some c;
          c)

  (** {!record_alt} under the group's stripe lock, for parallel
      workers. *)
  let record_alt_locked t g id alt =
    let g = find_root t g in
    Mutex.protect (stripe t g) (fun () -> record_alt t g id alt)

  (** Forget all claims (start of a parallel phase; claims are
      transient and never consulted by the sequential engine). *)
  let reset_claims t =
    for g = 0 to t.n_groups - 1 do
      let d = t.groups.(g) in
      Array.fill d.claimed 0 (Array.length d.claimed) false
    done

  (** Fully compress union-find paths so concurrent readers of a frozen
      memo only ever race on writes of already-final root values. *)
  let compress_paths t =
    for g = 0 to t.n_groups - 1 do
      ignore (find_root t g : group)
    done

  let in_progress t g id =
    let d = data t (find_root t g) in
    id < Array.length d.in_progress && d.in_progress.(id)

  let mark_in_progress t g id =
    let d = data t (find_root t g) in
    ensure_in_progress d id;
    d.in_progress.(id) <- true

  let unmark_in_progress t g id =
    let d = data t (find_root t g) in
    if id < Array.length d.in_progress then d.in_progress.(id) <- false

  let is_explored t g = (data t (find_root t g)).explored

  let set_explored t g v = (data t (find_root t g)).explored <- v

  let is_exploring t g = (data t (find_root t g)).exploring

  let set_exploring t g v = (data t (find_root t g)).exploring <- v

  let n_groups t =
    let n = ref 0 in
    for g = 0 to t.n_groups - 1 do
      if t.groups.(g).parent = g then incr n
    done;
    !n

  let n_mexprs t =
    let n = ref 0 in
    for g = 0 to t.n_groups - 1 do
      if t.groups.(g).parent = g then
        n :=
          !n
          + List.length (List.filter (fun i -> not t.exprs.(i).dead) t.groups.(g).mexprs)
    done;
    !n

  let roots t =
    let out = ref [] in
    for g = t.n_groups - 1 downto 0 do
      if t.groups.(g).parent = g then out := g :: !out
    done;
    !out

  (** One arbitrary logical expression tree from a group, for display
      and debugging. *)
  let rec extract_any t g : M.op Tree.t =
    match mexprs t g with
    | [] -> invalid_arg "Memo.extract_any: empty group"
    | m :: _ -> Tree.node m.op (List.map (extract_any t) m.inputs)
end
