(** Machine-independent search-effort counters. Figure 4 compares
    wall-clock seconds on a SparcStation-1; these counters let the
    benchmarks report effort in a hardware-neutral way alongside time.

    Since the search core became an explicit task engine, effort is also
    accounted per task kind, together with the work-stack high-water
    mark — the scheduler-level counters industrial transformation-based
    optimizers expose. *)

(** The task kinds of the search engine's work stack (see
    {!Search.Make}). Kept here, outside the functor, so stats and
    tracing are shared across all generated optimizers. *)
type task_kind =
  | Optimize_group  (** FindBestPlan for one (group, property, limit) goal *)
  | Explore_group  (** close a group under the transformation rules *)
  | Optimize_mexpr  (** enumerate implementation moves of one multi-expression *)
  | Apply_transform  (** fire one transformation rule on one multi-expression *)
  | Optimize_inputs  (** optimize one input of a pursued algorithm move *)
  | Apply_enforcer  (** pursue one enforcer move *)

val task_kinds : task_kind list
(** All kinds, in display order. *)

val task_kind_name : task_kind -> string

type t = {
  mutable goals : int;  (** goals that ran a real optimization *)
  mutable goal_hits : int;  (** goals answered from the winner table *)
  mutable goal_misses : int;  (** goal lookups that found no usable entry *)
  mutable groups_created : int;
  mutable mexprs_created : int;
  mutable rule_firings : int;  (** transformation-rule applications *)
  mutable plans_costed : int;  (** implementation/enforcer moves pursued *)
  mutable enforcer_moves : int;
  mutable failures : int;  (** goals concluded without a plan within the limit *)
  mutable pruned : int;  (** moves abandoned because the cost limit was exceeded *)
  mutable merges : int;  (** equivalence-class merges from duplicate detection *)
  mutable tasks : int;  (** total tasks executed by the stepper loop *)
  tasks_by_kind : int array;  (** per-kind totals; read via {!tasks_of_kind} *)
  mutable stack_hwm : int;  (** work-stack high-water mark *)
  mutable par_goals_claimed : int;
      (** goals claimed and computed by parallel search workers *)
  mutable par_dup_goals : int;
      (** goals a parallel worker computed only to find another worker
          had already published an equivalent winner (bounded in-flight
          duplication; the published result is unaffected) *)
  mutable goals_pruned_lb : int;
      (** goals and moves abandoned because a group cost lower bound
          ({!Signatures.MODEL.cost_lower_bound}) proved the limit
          unreachable: a goal killed at lookup time (its failure is
          recorded at the limit exactly as a fruitless full optimization
          would have recorded it), an implementation move whose local
          cost plus input lower bounds already exceeds the bound, or an
          enforcer move whose relaxed subgoal cannot fit the remaining
          budget *)
  mutable input_limits_tightened : int;
      (** input optimizations whose Figure-2 limit
          ([bound - accumulated cost]) was strictly tightened by
          subtracting the lower bounds of unresolved sibling inputs *)
  mutable memo_fastpath_hits : int;
      (** goal-key intern lookups answered by the memo's hash-consing
          table: the goal's winner/claim tables are then addressed by a
          small integer id instead of rehashing property vectors *)
  mutable par_steals : int;
      (** goal tasks a worker stole from another worker's Chase–Lev
          deque (stealing scheduler only) *)
  mutable par_backoffs : int;
      (** backoff waits: a worker whose runnable work was exhausted —
          every remaining goal parked on another worker's claim — slept
          until a publication ticked (stealing scheduler only) *)
  mutable par_dup_kills : int;
      (** duplicate goal computations killed outright by the claim
          table: a goal this worker wanted was already claimed (or
          answered) by another worker, so it parked or skipped instead
          of recomputing (stealing scheduler only) *)
  mutable mqo_shared_groups : int;
      (** logical subexpressions that occurred in two or more queries of
          a batch (multi-query optimization) *)
  mutable mqo_materialize_chosen : int;
      (** shared subexpressions the batch search decided to materialize
          once and reuse across consumers *)
  mutable mqo_reuse_hits : int;
      (** consumer sites rewritten to read a materialized shared result
          instead of recomputing it *)
  mutable feedback_runs : int;
      (** instrumented executions completed by the runtime feedback loop
          ({!Feedback}): plans run with per-node cardinality observers *)
  mutable feedback_nodes_observed : int;
      (** plan nodes whose actual output cardinality was recorded during
          an instrumented execution *)
  mutable feedback_drift_nodes : int;
      (** observed nodes whose q-error (max(obs,est)/min(obs,est), both
          clamped below at 1) reached the configured drift threshold *)
  mutable feedback_corrections : int;
      (** per-table statistics corrections the feedback loop installed
          through [Catalog.update_stats], each bumping that table's
          stats version (and thereby invalidating stale cached plans) *)
  mutable feedback_escapes : int;
      (** mid-query escape-hatch aborts: a node's observed cardinality
          blew past its estimate by the configured k factor *)
  mutable feedback_replans : int;
      (** re-optimizations triggered by the feedback loop, whether from
          an escape-hatch abort or an explicit post-correction re-entry *)
  mutable promise_evals : int;
      (** moves scored by the model's promise estimate
          ({!Signatures.MODEL.move_promise}) while assembling a goal's
          move list under dynamic promise ordering *)
  mutable moves_reordered : int;
      (** moves whose pursuit position under dynamic promise ordering
          differs from their static rule-promise position *)
  mutable anytime_improvements : int;
      (** root-goal incumbent replacements: a run's root goal already
          had a best-so-far plan and a strictly cheaper one arrived *)
}

val create : unit -> t

val reset : t -> unit

val copy : t -> t
(** Independent snapshot; later mutation of either side does not affect
    the other. *)

val merge : into:t -> t -> unit
(** Accumulate [t]'s counters into [into] (high-water marks take the
    max). Used to aggregate per-worker optimizer statistics into one
    service-wide view. *)

val diff : since:t -> t -> t
(** Counter deltas [t - since] (high-water mark taken from [t]): the
    per-query statistics of one optimization inside a cumulative
    session. *)

val count_task : t -> task_kind -> unit

val tasks_of_kind : t -> task_kind -> int

val note_stack_depth : t -> int -> unit

val pp : Format.formatter -> t -> unit

val pp_tasks : Format.formatter -> t -> unit
(** Render the per-kind task counters and the stack high-water mark. *)

val register : ?prefix:string -> Obs.Metrics.registry -> t -> unit
(** Surface every counter (including the per-kind task counters) as a
    gauge in [reg], named [prefix ^ field] (default prefix
    ["volcano_search_"]). Gauges read the live record, so registering
    once before (or after) a run is enough. *)

val metric_names : string -> string list
(** [metric_names prefix] — the metric names {!register} would create,
    for shape validators and the documentation glossary. *)
