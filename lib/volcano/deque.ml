(* A Chase–Lev work-stealing deque over OCaml 5 atomics.

   One domain — the owner — pushes and pops at the bottom (LIFO, so the
   owner keeps working on what it queued last), while any number of
   thieves steal from the top (FIFO, so thieves take the oldest — in
   the search scheduler, the largest — pending goal tasks). This is the
   classic dynamic circular work-stealing deque of Chase and Lev
   (SPAA 2005): [top] only ever advances (by a successful steal or by
   the owner winning the last-element race), [bottom] is owned by the
   owner, and the single point of inter-domain contention is one
   compare-and-set on [top].

   OCaml's [Atomic.t] gives sequentially consistent reads and writes,
   which is stronger than the fences the original algorithm needs, so
   the standard correctness argument applies directly:

   - a cell is only reused for a new push after the buffer has wrapped,
     which on a full buffer triggers [grow] into a fresh array — the
     old array is never written again, so a thief that read a cell
     from a stale buffer still read a valid value;
   - a thief returns that value only if its CAS on [top] succeeds,
     i.e. no other thief (and not the owner, racing for the last
     element) consumed index [t] first — every element is therefore
     delivered exactly once.

   The buffer grows geometrically and never shrinks; deques in the
   search scheduler live for one parallel phase, so unbounded growth is
   not a concern. *)

type 'a buffer = { mask : int; cells : 'a option Atomic.t array }

type 'a t = {
  top : int Atomic.t;  (** next index a thief will try to steal *)
  bottom : int Atomic.t;  (** next index the owner will push at *)
  buf : 'a buffer Atomic.t;  (** current circular buffer (owner-replaced) *)
}

type 'a steal_result =
  | Empty  (** nothing to steal right now *)
  | Retry  (** lost a race with another thief or the owner; try again *)
  | Stolen of 'a

let make_buffer size =
  { mask = size - 1; cells = Array.init size (fun _ -> Atomic.make None) }

let create ?(capacity = 64) () =
  let size =
    let rec up n = if n >= capacity || n >= max_int / 2 then n else up (n * 2) in
    up 8
  in
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (make_buffer size) }

let put buffer i v = Atomic.set buffer.cells.(i land buffer.mask) v
let cell buffer i = Atomic.get buffer.cells.(i land buffer.mask)

(* Owner only: copy the live window [t, b) into a buffer twice the
   size and publish it. Thieves racing on the old buffer still read
   valid cells — the old array is frozen from here on. *)
let grow q t b old =
  let fresh = make_buffer (2 * (old.mask + 1)) in
  for i = t to b - 1 do
    put fresh i (cell old i)
  done;
  Atomic.set q.buf fresh;
  fresh

(* Owner only. *)
let push q v =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let buffer = Atomic.get q.buf in
  let buffer = if b - t > buffer.mask then grow q t b buffer else buffer in
  put buffer b (Some v);
  Atomic.set q.bottom (b + 1)

(* Owner only: take the most recently pushed element, racing thieves
   for the last one. *)
let pop q =
  let b = Atomic.get q.bottom - 1 in
  let buffer = Atomic.get q.buf in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* Already empty: restore the canonical empty state. *)
    Atomic.set q.bottom t;
    None
  end
  else if b > t then cell buffer b
  else begin
    (* Exactly one element left: decide it against the thieves with
       the same CAS they use. *)
    let won = Atomic.compare_and_set q.top t (t + 1) in
    Atomic.set q.bottom (t + 1);
    if won then cell buffer b else None
  end

(* Any domain. *)
let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then Empty
  else begin
    let v = cell (Atomic.get q.buf) t in
    if Atomic.compare_and_set q.top t (t + 1) then
      match v with
      | Some v -> Stolen v
      | None -> Empty (* unreachable: cells in [t, b) are always set *)
    else Retry
  end

(* Linearizable only from the owner; a racy estimate elsewhere. *)
let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)
let is_empty q = size q = 0
