(** Chase–Lev work-stealing deque (SPAA 2005) over OCaml 5 atomics.

    Single owner, many thieves: the owner [push]es and [pop]s at the
    bottom in LIFO order; other domains [steal] from the top in FIFO
    order. Every pushed element is delivered exactly once, to exactly
    one of [pop] or [steal]. The buffer grows geometrically as needed
    and is never shrunk. *)

type 'a t

type 'a steal_result =
  | Empty  (** nothing to steal right now *)
  | Retry  (** lost a race with another thief or the owner; try again *)
  | Stolen of 'a

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 64) is rounded up to a power of two. *)

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only: most recently pushed element, or [None] when empty. *)

val steal : 'a t -> 'a steal_result
(** Any domain: oldest element. [Retry] means a race was lost, not that
    the deque is empty — callers typically retry or move to the next
    victim. *)

val size : 'a t -> int
(** Exact from the owner, racy estimate from other domains. *)

val is_empty : 'a t -> bool
