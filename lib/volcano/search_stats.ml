type task_kind =
  | Optimize_group
  | Explore_group
  | Optimize_mexpr
  | Apply_transform
  | Optimize_inputs
  | Apply_enforcer

let task_kinds =
  [
    Optimize_group;
    Explore_group;
    Optimize_mexpr;
    Apply_transform;
    Optimize_inputs;
    Apply_enforcer;
  ]

let task_kind_index = function
  | Optimize_group -> 0
  | Explore_group -> 1
  | Optimize_mexpr -> 2
  | Apply_transform -> 3
  | Optimize_inputs -> 4
  | Apply_enforcer -> 5

let task_kind_name = function
  | Optimize_group -> "optimize-group"
  | Explore_group -> "explore-group"
  | Optimize_mexpr -> "optimize-mexpr"
  | Apply_transform -> "apply-transform"
  | Optimize_inputs -> "optimize-inputs"
  | Apply_enforcer -> "apply-enforcer"

type t = {
  mutable goals : int;
  mutable goal_hits : int;
  mutable goal_misses : int;
  mutable groups_created : int;
  mutable mexprs_created : int;
  mutable rule_firings : int;
  mutable plans_costed : int;
  mutable enforcer_moves : int;
  mutable failures : int;
  mutable pruned : int;
  mutable merges : int;
  mutable tasks : int;
  tasks_by_kind : int array;  (** indexed by [task_kind_index] *)
  mutable stack_hwm : int;
  mutable par_goals_claimed : int;
      (** goals claimed and computed by parallel workers *)
  mutable par_dup_goals : int;
      (** goals a worker computed only to find another worker had
          already published an (equivalent) winner *)
  mutable goals_pruned_lb : int;
      (** goals killed before pursuit because the group's cost lower
          bound already exceeded the goal's limit (guided pruning) *)
  mutable input_limits_tightened : int;
      (** input optimizations whose Figure-2 limit was tightened by
          subtracting sibling lower bounds (guided pruning) *)
  mutable memo_fastpath_hits : int;
      (** goal-key intern lookups answered by the memo's hash-consing
          table (no structural hashing or key allocation) *)
  mutable par_steals : int;
      (** goal tasks a worker stole from another worker's deque
          (stealing scheduler only) *)
  mutable par_backoffs : int;
      (** backoff waits: a worker with only parked goals slept until
          another worker published progress (stealing scheduler only) *)
  mutable par_dup_kills : int;
      (** duplicate goal computations killed outright by the claim
          table: the goal was already being computed (or answered)
          elsewhere, so this worker parked or skipped it instead of
          recomputing (stealing scheduler only) *)
  mutable mqo_shared_groups : int;
      (** logical subexpressions that occurred in two or more queries of
          a batch (multi-query optimization) *)
  mutable mqo_materialize_chosen : int;
      (** shared subexpressions the batch search decided to materialize
          once and reuse *)
  mutable mqo_reuse_hits : int;
      (** consumer sites rewritten to read a materialized shared result
          instead of recomputing it *)
  mutable feedback_runs : int;
      (** instrumented executions completed by the feedback loop *)
  mutable feedback_nodes_observed : int;
      (** plan nodes whose actual output cardinality was recorded *)
  mutable feedback_drift_nodes : int;
      (** observed nodes whose q-error reached the drift threshold *)
  mutable feedback_corrections : int;
      (** per-table statistics corrections installed in the catalog *)
  mutable feedback_escapes : int;
      (** mid-query escape-hatch aborts (observed > k x estimated) *)
  mutable feedback_replans : int;
      (** re-optimizations triggered by the feedback loop *)
  mutable promise_evals : int;
      (** moves scored by the model's promise estimate when a goal's
          move list was assembled (dynamic promise ordering) *)
  mutable moves_reordered : int;
      (** moves whose pursuit position changed when the dynamic promise
          ordering disagreed with the static rule-promise order *)
  mutable anytime_improvements : int;
      (** root-goal incumbent replacements: the best-so-far plan of a
          run's root goal was improved after a first plan existed *)
}

let create () =
  {
    goals = 0;
    goal_hits = 0;
    goal_misses = 0;
    groups_created = 0;
    mexprs_created = 0;
    rule_firings = 0;
    plans_costed = 0;
    enforcer_moves = 0;
    failures = 0;
    pruned = 0;
    merges = 0;
    tasks = 0;
    tasks_by_kind = Array.make (List.length task_kinds) 0;
    stack_hwm = 0;
    par_goals_claimed = 0;
    par_dup_goals = 0;
    goals_pruned_lb = 0;
    input_limits_tightened = 0;
    memo_fastpath_hits = 0;
    par_steals = 0;
    par_backoffs = 0;
    par_dup_kills = 0;
    mqo_shared_groups = 0;
    mqo_materialize_chosen = 0;
    mqo_reuse_hits = 0;
    feedback_runs = 0;
    feedback_nodes_observed = 0;
    feedback_drift_nodes = 0;
    feedback_corrections = 0;
    feedback_escapes = 0;
    feedback_replans = 0;
    promise_evals = 0;
    moves_reordered = 0;
    anytime_improvements = 0;
  }

let reset t =
  t.goals <- 0;
  t.goal_hits <- 0;
  t.goal_misses <- 0;
  t.groups_created <- 0;
  t.mexprs_created <- 0;
  t.rule_firings <- 0;
  t.plans_costed <- 0;
  t.enforcer_moves <- 0;
  t.failures <- 0;
  t.pruned <- 0;
  t.merges <- 0;
  t.tasks <- 0;
  Array.fill t.tasks_by_kind 0 (Array.length t.tasks_by_kind) 0;
  t.stack_hwm <- 0;
  t.par_goals_claimed <- 0;
  t.par_dup_goals <- 0;
  t.goals_pruned_lb <- 0;
  t.input_limits_tightened <- 0;
  t.memo_fastpath_hits <- 0;
  t.par_steals <- 0;
  t.par_backoffs <- 0;
  t.par_dup_kills <- 0;
  t.mqo_shared_groups <- 0;
  t.mqo_materialize_chosen <- 0;
  t.mqo_reuse_hits <- 0;
  t.feedback_runs <- 0;
  t.feedback_nodes_observed <- 0;
  t.feedback_drift_nodes <- 0;
  t.feedback_corrections <- 0;
  t.feedback_escapes <- 0;
  t.feedback_replans <- 0;
  t.promise_evals <- 0;
  t.moves_reordered <- 0;
  t.anytime_improvements <- 0

let copy t = { t with tasks_by_kind = Array.copy t.tasks_by_kind }

let merge ~into t =
  into.goals <- into.goals + t.goals;
  into.goal_hits <- into.goal_hits + t.goal_hits;
  into.goal_misses <- into.goal_misses + t.goal_misses;
  into.groups_created <- into.groups_created + t.groups_created;
  into.mexprs_created <- into.mexprs_created + t.mexprs_created;
  into.rule_firings <- into.rule_firings + t.rule_firings;
  into.plans_costed <- into.plans_costed + t.plans_costed;
  into.enforcer_moves <- into.enforcer_moves + t.enforcer_moves;
  into.failures <- into.failures + t.failures;
  into.pruned <- into.pruned + t.pruned;
  into.merges <- into.merges + t.merges;
  into.tasks <- into.tasks + t.tasks;
  Array.iteri (fun i n -> into.tasks_by_kind.(i) <- into.tasks_by_kind.(i) + n) t.tasks_by_kind;
  into.par_goals_claimed <- into.par_goals_claimed + t.par_goals_claimed;
  into.par_dup_goals <- into.par_dup_goals + t.par_dup_goals;
  into.goals_pruned_lb <- into.goals_pruned_lb + t.goals_pruned_lb;
  into.input_limits_tightened <- into.input_limits_tightened + t.input_limits_tightened;
  into.memo_fastpath_hits <- into.memo_fastpath_hits + t.memo_fastpath_hits;
  into.par_steals <- into.par_steals + t.par_steals;
  into.par_backoffs <- into.par_backoffs + t.par_backoffs;
  into.par_dup_kills <- into.par_dup_kills + t.par_dup_kills;
  into.mqo_shared_groups <- into.mqo_shared_groups + t.mqo_shared_groups;
  into.mqo_materialize_chosen <- into.mqo_materialize_chosen + t.mqo_materialize_chosen;
  into.mqo_reuse_hits <- into.mqo_reuse_hits + t.mqo_reuse_hits;
  into.feedback_runs <- into.feedback_runs + t.feedback_runs;
  into.feedback_nodes_observed <- into.feedback_nodes_observed + t.feedback_nodes_observed;
  into.feedback_drift_nodes <- into.feedback_drift_nodes + t.feedback_drift_nodes;
  into.feedback_corrections <- into.feedback_corrections + t.feedback_corrections;
  into.feedback_escapes <- into.feedback_escapes + t.feedback_escapes;
  into.feedback_replans <- into.feedback_replans + t.feedback_replans;
  into.promise_evals <- into.promise_evals + t.promise_evals;
  into.moves_reordered <- into.moves_reordered + t.moves_reordered;
  into.anytime_improvements <- into.anytime_improvements + t.anytime_improvements;
  if t.stack_hwm > into.stack_hwm then into.stack_hwm <- t.stack_hwm

let diff ~since t =
  let d = copy t in
  d.goals <- t.goals - since.goals;
  d.goal_hits <- t.goal_hits - since.goal_hits;
  d.goal_misses <- t.goal_misses - since.goal_misses;
  d.groups_created <- t.groups_created - since.groups_created;
  d.mexprs_created <- t.mexprs_created - since.mexprs_created;
  d.rule_firings <- t.rule_firings - since.rule_firings;
  d.plans_costed <- t.plans_costed - since.plans_costed;
  d.enforcer_moves <- t.enforcer_moves - since.enforcer_moves;
  d.failures <- t.failures - since.failures;
  d.pruned <- t.pruned - since.pruned;
  d.merges <- t.merges - since.merges;
  d.tasks <- t.tasks - since.tasks;
  Array.iteri (fun i n -> d.tasks_by_kind.(i) <- n - since.tasks_by_kind.(i)) t.tasks_by_kind;
  d.par_goals_claimed <- t.par_goals_claimed - since.par_goals_claimed;
  d.par_dup_goals <- t.par_dup_goals - since.par_dup_goals;
  d.goals_pruned_lb <- t.goals_pruned_lb - since.goals_pruned_lb;
  d.input_limits_tightened <- t.input_limits_tightened - since.input_limits_tightened;
  d.memo_fastpath_hits <- t.memo_fastpath_hits - since.memo_fastpath_hits;
  d.par_steals <- t.par_steals - since.par_steals;
  d.par_backoffs <- t.par_backoffs - since.par_backoffs;
  d.par_dup_kills <- t.par_dup_kills - since.par_dup_kills;
  d.mqo_shared_groups <- t.mqo_shared_groups - since.mqo_shared_groups;
  d.mqo_materialize_chosen <- t.mqo_materialize_chosen - since.mqo_materialize_chosen;
  d.mqo_reuse_hits <- t.mqo_reuse_hits - since.mqo_reuse_hits;
  d.feedback_runs <- t.feedback_runs - since.feedback_runs;
  d.feedback_nodes_observed <- t.feedback_nodes_observed - since.feedback_nodes_observed;
  d.feedback_drift_nodes <- t.feedback_drift_nodes - since.feedback_drift_nodes;
  d.feedback_corrections <- t.feedback_corrections - since.feedback_corrections;
  d.feedback_escapes <- t.feedback_escapes - since.feedback_escapes;
  d.feedback_replans <- t.feedback_replans - since.feedback_replans;
  d.promise_evals <- t.promise_evals - since.promise_evals;
  d.moves_reordered <- t.moves_reordered - since.moves_reordered;
  d.anytime_improvements <- t.anytime_improvements - since.anytime_improvements;
  d

let count_task t kind =
  t.tasks <- t.tasks + 1;
  let i = task_kind_index kind in
  t.tasks_by_kind.(i) <- t.tasks_by_kind.(i) + 1

let tasks_of_kind t kind = t.tasks_by_kind.(task_kind_index kind)

let note_stack_depth t depth = if depth > t.stack_hwm then t.stack_hwm <- depth

let pp ppf t =
  Format.fprintf ppf
    "goals=%d hits=%d misses=%d groups=%d mexprs=%d firings=%d plans=%d enforcers=%d \
     failures=%d pruned=%d merges=%d tasks=%d hwm=%d par-claimed=%d par-dup=%d \
     lb-pruned=%d limits-tightened=%d fastpath=%d steals=%d backoffs=%d dup-kills=%d \
     mqo-shared=%d mqo-mat=%d mqo-reuse=%d fb-runs=%d fb-observed=%d fb-drift=%d \
     fb-corrections=%d fb-escapes=%d fb-replans=%d promise-evals=%d reordered=%d \
     anytime=%d"
    t.goals t.goal_hits t.goal_misses t.groups_created t.mexprs_created t.rule_firings
    t.plans_costed t.enforcer_moves t.failures t.pruned t.merges t.tasks t.stack_hwm
    t.par_goals_claimed t.par_dup_goals t.goals_pruned_lb t.input_limits_tightened
    t.memo_fastpath_hits t.par_steals t.par_backoffs t.par_dup_kills t.mqo_shared_groups
    t.mqo_materialize_chosen t.mqo_reuse_hits t.feedback_runs t.feedback_nodes_observed
    t.feedback_drift_nodes t.feedback_corrections t.feedback_escapes t.feedback_replans
    t.promise_evals t.moves_reordered t.anytime_improvements

let pp_tasks ppf t =
  Format.fprintf ppf "tasks=%d (%s) hwm=%d" t.tasks
    (String.concat ", "
       (List.map
          (fun k -> Printf.sprintf "%s=%d" (task_kind_name k) (tasks_of_kind t k))
          task_kinds))
    t.stack_hwm

(* Every counter with its metric-name suffix, in display order — the
   single source for metrics registration (and for the glossary in the
   README, which must list exactly these names). *)
let fields t =
  [
    ("goals", fun () -> t.goals);
    ("goal_hits", fun () -> t.goal_hits);
    ("goal_misses", fun () -> t.goal_misses);
    ("groups_created", fun () -> t.groups_created);
    ("mexprs_created", fun () -> t.mexprs_created);
    ("rule_firings", fun () -> t.rule_firings);
    ("plans_costed", fun () -> t.plans_costed);
    ("enforcer_moves", fun () -> t.enforcer_moves);
    ("failures", fun () -> t.failures);
    ("pruned", fun () -> t.pruned);
    ("merges", fun () -> t.merges);
    ("tasks_total", fun () -> t.tasks);
    ("stack_hwm", fun () -> t.stack_hwm);
    ("par_goals_claimed", fun () -> t.par_goals_claimed);
    ("par_dup_goals", fun () -> t.par_dup_goals);
    ("goals_pruned_lb", fun () -> t.goals_pruned_lb);
    ("input_limits_tightened", fun () -> t.input_limits_tightened);
    ("memo_fastpath_hits", fun () -> t.memo_fastpath_hits);
    ("par_steals", fun () -> t.par_steals);
    ("par_backoffs", fun () -> t.par_backoffs);
    ("par_dup_kills", fun () -> t.par_dup_kills);
    ("mqo_shared_groups", fun () -> t.mqo_shared_groups);
    ("mqo_materialize_chosen", fun () -> t.mqo_materialize_chosen);
    ("mqo_reuse_hits", fun () -> t.mqo_reuse_hits);
    ("feedback_runs", fun () -> t.feedback_runs);
    ("feedback_nodes_observed", fun () -> t.feedback_nodes_observed);
    ("feedback_drift_nodes", fun () -> t.feedback_drift_nodes);
    ("feedback_corrections", fun () -> t.feedback_corrections);
    ("feedback_escapes", fun () -> t.feedback_escapes);
    ("feedback_replans", fun () -> t.feedback_replans);
    ("promise_evals", fun () -> t.promise_evals);
    ("moves_reordered", fun () -> t.moves_reordered);
    ("anytime_improvements", fun () -> t.anytime_improvements);
  ]
  @ List.map
      (fun k ->
        let suffix =
          String.map (fun c -> if c = '-' then '_' else c) (task_kind_name k)
        in
        ("tasks_" ^ suffix, fun () -> tasks_of_kind t k))
      task_kinds

let metric_names prefix = List.map (fun (n, _) -> prefix ^ n) (fields (create ()))

let register ?(prefix = "volcano_search_") reg t =
  List.iter
    (fun (name, read) ->
      Obs.Metrics.gauge reg (prefix ^ name) (fun () -> float_of_int (read ())))
    (fields t)
