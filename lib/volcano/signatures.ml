(** The model specification interface: everything an optimizer
    implementor supplies to the generator (the ten items enumerated at
    the end of paper §2.2). Applying {!Search.Make} to a [MODEL] is this
    reproduction's equivalent of running the generator: the rule set is
    compiled (into closures over variant constructors rather than into
    C with string-to-integer translation), and the resulting module is
    the generated optimizer, sharing the common search engine. *)

module type MODEL = sig
  val model_name : string

  (** {1 Logical algebra} — item (1) *)

  type op

  val op_arity : op -> int

  val op_equal : op -> op -> bool

  val op_hash : op -> int

  val op_name : op -> string

  (** {1 Physical algebra: algorithms and enforcers} — item (3) *)

  type alg

  val alg_arity : alg -> int

  val alg_name : alg -> string

  (** {1 ADT "logical properties"} — item (6), with the property
      function for logical operators from item (10); selectivity
      estimation is encapsulated here (§2.2). *)

  type logical_props

  val derive : op -> logical_props list -> logical_props
  (** Logical properties of an operator's output from its inputs'.
      Deterministic per equivalence class: any expression in a class
      must derive the same properties. *)

  (** {1 ADT "physical property vector"} — item (7) *)

  type phys_props

  val pp_equal : phys_props -> phys_props -> bool

  val pp_hash : phys_props -> int

  val pp_covers : provided:phys_props -> required:phys_props -> bool
  (** The "cover" comparison: data with [provided] properties also
      satisfies [required]. Must be reflexive and transitive. *)

  val pp_trivial : phys_props -> bool
  (** [true] iff the vector demands nothing — every plan covers it.
      Dynamic promise ordering uses this to pursue moves that open no
      property-establishment subgoals before moves that do. *)

  val pp_to_string : phys_props -> string

  (** {1 ADT "cost"} — item (5) *)

  type cost

  val cost_zero : cost

  val cost_infinite : cost

  val cost_is_infinite : cost -> bool

  val cost_add : cost -> cost -> cost

  val cost_sub : cost -> cost -> cost
  (** For limit propagation in branch-and-bound (Figure 2:
      [Limit - TotalCost]). *)

  val cost_compare : cost -> cost -> int

  val cost_to_string : cost -> string

  (** {1 Support functions} — items (8), (9), (10) *)

  val cost_of :
    alg ->
    inputs:logical_props list ->
    input_props:phys_props list ->
    output:logical_props ->
    cost
  (** Cost function for each algorithm and enforcer: the local cost of
      one execution, excluding input costs. [input_props] are the
      physical property vectors the inputs will be optimized to
      provide — the paper allows cost to depend on physical context
      (e.g. partitioned execution divides work across workers). *)

  val deliver : alg -> phys_props list -> phys_props
  (** Property function for algorithms and enforcers: the physical
      properties of the output, given the properties the inputs will be
      optimized to provide. *)

  val cost_lower_bound : logical_props -> phys_props -> cost
  (** Guided pruning: a lower bound on the cost of {e any} plan that
      delivers [required] for an expression with these logical
      properties. The search engine subtracts sibling bounds from
      branch-and-bound input limits and kills goals whose bound already
      exceeds their limit, so the bound must be {e true}: if some plan
      of cost [c] exists, then [cost_lower_bound props required <= c].
      An unsound bound silently changes winners. [cost_zero] is always
      sound (and disables guided pruning for the model). The engine
      caches the result per (group, required-property key) in the memo,
      so the function may do real work (e.g. catalog lookups). *)

  val move_promise :
    alg ->
    inputs:logical_props list ->
    input_props:phys_props list ->
    output:logical_props ->
    cost
  (** Promise estimate for dynamic move ordering: a cheap estimate of
      the local cost of one execution of [alg], evaluated when a goal's
      moves are assembled and combined with the input groups' cost lower
      bounds to pursue the most promising move first (§4.2 "promise").
      Unlike {!cost_lower_bound} it need not be a true bound, and unlike
      {!cost_of} it may cut corners — it only influences pursuit
      {e order}, never which plan wins, so any deterministic estimate is
      sound. Delegating to {!cost_of} is always correct. *)

  (** {1 Rules} — items (2) and (4) *)

  val transforms : (op, logical_props) Rule.transform list

  val implementations : (op, alg, logical_props, phys_props) Rule.implement list

  val enforcers :
    props:logical_props -> required:phys_props -> (alg * phys_props * phys_props) list
  (** Enforcer moves for a required property vector, given the logical
      properties of the expression being optimized (so the model can
      refuse orders over columns the schema does not contain): each is
      [(enforcer, relaxed, excluded)] where [relaxed] is the requirement
      passed down to the enforcer's input and [excluded] is the
      excluding physical property vector (§3) that suppresses
      algorithms already able to satisfy what the enforcer establishes.
      Must return [[]] when [required] is trivial, or enforcer
      recursion would not terminate. *)
end
