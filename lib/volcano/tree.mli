(** Plain operator trees: the form in which queries enter a generated
    optimizer, before being captured in the memo. *)

type 'op t = Node of 'op * 'op t list

val node : 'op -> 'op t list -> 'op t
(** [node op inputs] builds one tree node. *)

val op : 'op t -> 'op
(** The root operator. *)

val inputs : 'op t -> 'op t list
(** The root's input subtrees, in order. *)

val size : 'op t -> int
(** Number of nodes. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Rewrite every operator, preserving the shape. *)

val pp : (Format.formatter -> 'op -> unit) -> Format.formatter -> 'op t -> unit
(** Indented multi-line rendering, given an operator printer. *)
