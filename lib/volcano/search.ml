(** The search engine shared by all generated optimizers (paper §3):
    directed dynamic programming. FindBestPlan (Figure 2) is realized as
    an {e explicit task engine}: instead of direct recursion, the search
    is a work stack of first-class tasks — [Optimize_group],
    [Explore_group], [Optimize_mexpr], [Apply_transform],
    [Optimize_inputs], [Apply_enforcer] — driven by a single stepper
    loop ({!step}). This is the reification that the Cascades lineage
    applied to the same algorithm, and it buys three things recursion
    cannot give: deterministic step budgets and wall-clock timeouts that
    abort cleanly mid-goal (anytime optimization), hierarchical span
    tracing of the task tree ({!Obs.Trace}), and resumable searches (a
    paused run continues under a higher budget without redoing work).

    The paper's semantics are preserved exactly: memoized winners {e
    and} failures per (group, property vector, limit), in-progress
    marking, excluding property vectors, promise ordering, and
    branch-and-bound limits. One deliberate restructuring carried over
    from the recursive engine: where Figure 2 lists transformations
    among the moves of a goal, we first close the goal's equivalence
    class under the transformation rules ([Explore_group] tasks) and
    then enumerate algorithm and enforcer moves over all
    multi-expressions in the class. For exhaustive search the two orders
    visit exactly the same plans. *)

(** How the parallel phase of {!Make.run} schedules goal tasks over
    worker domains. Kept outside the functor so callers can plumb the
    choice without naming a model.

    - [Seeded]: the original scheme — workers pull seeds from one
      shared atomic counter, park runs that hit another worker's claim,
      and rely on an idle-sweep liveness valve that force-duplicates a
      blocked goal after sustained futility. Robust, but the valve
      cascades under core oversubscription (descheduled claim holders
      look dead), duplicating whole subtrees.
    - [Stealing]: per-domain Chase–Lev deques ({!Deque}) over the goal
      tasks, claim acquisition made atomic with the winner-table
      consultation, event-driven wakeup of parked runs (a shared
      publication tick), and claims released on publication — so
      duplicate goal computations are killed outright instead of being
      forced for liveness. Deadlock (a genuine cross-worker wait
      cycle) is broken by abandoning a parked run and releasing its
      claims — never by duplicating work.

    Both schedulers publish only entries the sequential engine would
    itself record, at the same Figure-2 limits, so the final plan is
    bit-identical across schedulers and domain counts. *)
type scheduler = Seeded | Stealing

(** How a goal's assembled moves are ordered for pursuit.

    [Static] is the paper's §4.2 baseline: the per-rule promise
    integers declared by the model, with the sum of the input groups'
    cost lower bounds as tie-break.

    [Dynamic] rescores every move when the goal's move list is
    assembled, from what the memo knows by then: the model's local
    cost estimate ({!Signatures.MODEL.move_promise}, fed by estimated
    output cardinality), the input groups' cost lower bounds, and
    whether the move satisfies the required physical property directly
    or through an enforcer. Cheapest projected total first; the static
    order breaks ties.

    Ordering decides only {e when} the optimum is found, never
    {e which} plan wins: on exact cost ties the engine keeps the
    candidate whose move came first in the {e static} order, whichever
    order pursued it, so both modes pick bit-identical final plans
    under unbounded budgets. *)
type promise_mode = Static | Dynamic

module Make (M : Signatures.MODEL) = struct
  module Memo = Memo.Make (M)

  (** Step/time budgets for one optimization run. Both are cumulative
      over the run, including across {!resume} calls, so a paused run
      resumed with a larger budget continues instead of starting its
      accounting over. [max_tasks] is deterministic; [max_millis] is
      wall-clock. *)
  type budget = {
    max_tasks : int option;
    max_millis : float option;
  }

  let unlimited = { max_tasks = None; max_millis = None }

  let budget ?max_tasks ?max_millis () = { max_tasks; max_millis }

  type config = {
    pruning : bool;  (** branch-and-bound via cost limits (Figure 2) *)
    guided : bool;
        (** guided pruning on top of Figure 2 (no effect unless
            [pruning]): kill goals whose group cost lower bound
            ({!Signatures.MODEL.cost_lower_bound}) already exceeds
            their limit, and tighten each input's limit by the lower
            bounds of its unresolved siblings. Sound bounds leave every
            winner bit-identical; only effort shrinks. *)
    max_moves : int option;
        (** pursue only the k most promising moves per goal — the
            paper's heuristic-guidance hook ("In the future, a subset of
            the moves will be selected"); [None] = exhaustive *)
    budget : budget;
        (** default budget for {!optimize}; {!unlimited} reproduces the
            exhaustive search of the paper *)
    tracer : Obs.Trace.t option;
        (** hierarchical span collector: one [goal] span per (group,
            property, limit) optimization goal with its outcome, one
            [task] span per executed engine task nested under its goal,
            and [phase] spans around the parallel phases. Workers buffer
            spans on their own tracks and the collector merges them
            post-run, so traces cover the parallel phase. [None] (the
            default) records nothing and costs one pattern match per
            task. *)
    explain : bool;
        (** record losing alternatives (and their losing reasons) in
            the memo as the search abandons or completes each move, for
            {!explain}. Recording never changes pursuit order, pruning,
            or winners — only what the memo remembers about them. *)
    scheduler : scheduler;
        (** how {!run}'s parallel phase schedules goal tasks over
            worker domains; no effect on the sequential engine or on
            the found plan (see {!scheduler}) *)
    promise : promise_mode;
        (** how assembled moves are ordered for pursuit (see
            {!promise_mode}); no effect on the found plan under
            unbounded budgets, only on how fast incumbents arrive *)
    profiler : Obs.Profile.t option;
        (** per-rule / per-enforcer / per-operator effort attribution:
            exactly one charge per executed task (so per-entry task
            sums equal the task counters), plus mexprs generated per
            rule firing, plans won, goals pruned, and wasted work.
            Workers record into their own tracks, merged post-run like
            trace tracks. Observation-only: recording never changes
            pursuit order, pruning, or winners. [None] (the default)
            records nothing. *)
    recorder : Obs.Flight_recorder.t option;
        (** always-on flight recorder: a fixed-size lock-free ring of
            recent engine events per track (task begin/end,
            claim/publish, prune, incumbent improvement), dumped
            post-mortem when the run ends abnormally (budget pause,
            stall-consensus abandon). ~Zero steady-state cost and
            plan-inert, like the profiler. *)
  }

  let default_config =
    {
      pruning = true;
      guided = true;
      max_moves = None;
      budget = unlimited;
      tracer = None;
      explain = false;
      scheduler = Stealing;
      promise = Dynamic;
      profiler = None;
      recorder = None;
    }

  (* How this searcher view accesses the shared goal state. [Seq] is
     the plain single-domain engine: unlocked winner tables and the
     memo's own in-progress marks. [Worker] is a per-domain view used
     during the parallel phase of {!run}: winner reads and writes go
     through the memo's lock stripes and merge monotonically, while
     in-progress marks live in per-run private tables — a mark is a
     statement about *this* run's descent (inverse-rule/enforcer cycle
     neutralization), and sharing it across runs would make one run's
     unfinished goal look like another's cycle. *)
  type worker_ctx = {
    wk_cap : M.cost;
        (** the incumbent plan's cost — the most generous limit any
            consultation in this optimization can still carry. A worker
            re-optimizing a goal whose recorded failure bound proved
            insufficient computes at this cap, so the refreshed entry
            settles the goal for the rest of the phase instead of being
            re-optimized under every intermediate limit. *)
    mutable wk_blocked : (Memo.group * int) option;
        (** set by the stepper when the current run deferred to a goal
            another worker has claimed (group, interned goal id):
            suspend this run *)
    mutable wk_force : (Memo.group * int) option;
        (** one goal this worker may compute even though it is claimed
            elsewhere — seeds it just claimed itself, and the bounded
            duplicate-compute fallback that guarantees liveness
            (seeded scheduler only) *)
    wk_stealing : bool;
        (** stealing-scheduler semantics: claim acquisition is fused
            with the winner consultation ([try_claim] instead of
            check-then-claim), claims are released at publication, and
            parked runs wake on {!wk_tick} instead of being polled
            blindly *)
    wk_tick : int Atomic.t;
        (** shared publication tick, bumped on every worker publication
            (and claim release): a parked run can only have become
            runnable if the tick moved, so workers sleep on it instead
            of sweeping their blocked queues *)
  }

  type mode =
    | Seq
    | Worker of worker_ctx

  type t = {
    memo : Memo.t;
    config : config;
    stats : Search_stats.t;
    mode : mode;
    tr_buf : Obs.Trace.buf option;
        (** this searcher view's span buffer: track 0 for the
            sequential engine, track [n] for the [n]-th worker *)
    pr_buf : Obs.Profile.buf option;
        (** this searcher view's profiler buffer, tracked like
            [tr_buf] *)
    fr_ring : Obs.Flight_recorder.ring option;
        (** this searcher view's flight-recorder ring, tracked like
            [tr_buf] *)
  }

  (** A fully extracted plan: the optimizer's output. *)
  type plan_tree = {
    alg : M.alg;
    children : plan_tree list;
    props : M.phys_props;
    cost : M.cost;  (** total cost of this subtree *)
  }

  let create ?(config = default_config) () =
    let stats = Search_stats.create () in
    {
      memo = Memo.create stats;
      config;
      stats;
      mode = Seq;
      tr_buf = Option.map (fun tr -> Obs.Trace.buf tr ~track:0) config.tracer;
      pr_buf = Option.map (fun pr -> Obs.Profile.buf pr ~track:0) config.profiler;
      fr_ring =
        Option.map (fun fr -> Obs.Flight_recorder.ring fr ~track:0) config.recorder;
    }

  (* Goal-state accessors, dispatched on the searcher's mode (see
     {!mode}). The sequential paths compile to exactly the pre-parallel
     engine's direct memo calls. All per-goal tables are addressed by
     the goal's interned key id (the memo's hash-consing fast path). *)

  let intern_goal t key =
    match t.mode with
    | Seq -> Memo.intern t.memo key
    | Worker _ -> Memo.intern_locked t.memo key

  let winner_for t g id =
    match t.mode with
    | Seq -> Memo.winner_id t.memo g id
    | Worker _ -> Memo.winner_locked_id t.memo g id

  let record_winner t g id plan bound =
    (match t.fr_ring with
     | None -> ()
     | Some ring ->
       Obs.Flight_recorder.record ring Obs.Flight_recorder.Publish ~group:g ~detail:id);
    match t.mode with
    | Seq -> Memo.set_winner_id t.memo g id plan bound
    | Worker ctx ->
      if not (Memo.publish_winner_id t.memo g id plan bound) then
        t.stats.Search_stats.par_dup_goals <- t.stats.Search_stats.par_dup_goals + 1;
      (* Wake parked runs: their blocking goal may be this one. *)
      Atomic.incr ctx.wk_tick

  (* Cached group cost lower bound for a requirement (guided pruning).
     The bound is deterministic per class, so both paths observe the
     same value. *)
  let lower_bound_for t g required =
    match t.mode with
    | Seq -> Memo.lower_bound t.memo g required
    | Worker _ -> Memo.lower_bound_locked t.memo g required

  let stats t = t.stats

  let memo t = t.memo

  (* Capture a query tree in the memo bottom-up. *)
  let rec insert_query t (tree : M.op Tree.t) : Memo.group =
    let inputs = List.map (insert_query t) (Tree.inputs tree) in
    Memo.insert t.memo (Tree.op tree) inputs

  let lookup t g = Memo.lprops t.memo g

  (* ------------------------------------------------------------------ *)
  (* Rule bindings                                                       *)
  (* ------------------------------------------------------------------ *)

  let rule_index = List.mapi (fun i r -> (i, r)) M.transforms

  let n_implementations = List.length M.implementations

  let implementation_index = List.mapi (fun i r -> (i, r)) M.implementations

  let cartesian lists =
    List.fold_right
      (fun options acc ->
        List.concat_map (fun o -> List.map (fun rest -> o :: rest) acc) options)
      lists [ [] ]

  (* All bindings of [pattern] rooted at multi-expression [m]. Unlike
     the old recursive engine, binding enumeration never explores groups
     inline: tasks that enumerate bindings first schedule
     [Explore_group] for every group an [Op] sub-pattern descends into
     (see [missing_for_mexpr]), so by the time [bindings_at] runs the
     enumeration is complete over already-closed classes. *)
  let rec bindings_below t pattern g : M.op Rule.binding list =
    match pattern with
    | Rule.Any -> [ Rule.Group (Memo.find_root t.memo g) ]
    | Rule.Op (_, _) ->
      List.concat_map (fun m -> bindings_at t pattern m) (Memo.mexprs t.memo g)

  and bindings_at t pattern (m : Memo.mexpr) : M.op Rule.binding list =
    match pattern with
    | Rule.Any -> assert false (* callers match roots against Op patterns *)
    | Rule.Op (matches, subs) ->
      if (not (matches m.op)) || List.length subs <> List.length m.inputs then []
      else
        cartesian (List.map2 (fun p g -> bindings_below t p g) subs m.inputs)
        |> List.map (fun inputs -> Rule.Node (m.op, inputs))

  (* Groups that [pattern] descends into below [m] which are neither
     explored nor mid-exploration: the exploration prerequisites of a
     rule application. A group currently being explored counts as
     satisfied — the cyclic case, where the recursive engine likewise
     proceeded with the class's partial contents. *)
  let rec missing_below t pattern g acc =
    match pattern with
    | Rule.Any -> acc
    | Rule.Op (matches, subs) ->
      let g = Memo.find_root t.memo g in
      if not (Memo.is_explored t.memo g || Memo.is_exploring t.memo g) then g :: acc
      else
        List.fold_left
          (fun acc (m : Memo.mexpr) ->
            if matches m.op && List.length subs = List.length m.inputs then
              List.fold_left2
                (fun acc p gi -> missing_below t p gi acc)
                acc subs m.inputs
            else acc)
          acc (Memo.mexprs t.memo g)

  let missing_for_mexpr t pattern (m : Memo.mexpr) : Memo.group list =
    match pattern with
    | Rule.Any -> []
    | Rule.Op (matches, subs) ->
      if (not (matches m.op)) || List.length subs <> List.length m.inputs then []
      else
        List.fold_left2 (fun acc p gi -> missing_below t p gi acc) [] subs m.inputs
        |> List.sort_uniq compare

  (* Insert the expression a rule produced. Nested nodes become (new or
     existing) classes of their own — Figure 3: expression C "requires a
     new equivalence class"; the root joins the class being explored. *)
  let rec insert_binding t ~target (b : M.op Rule.binding) : Memo.group =
    match b with
    | Rule.Group g -> g
    | Rule.Node (op, subs) ->
      let inputs = List.map (insert_binding_input t) subs in
      Memo.insert t.memo ~target op inputs

  and insert_binding_input t (b : M.op Rule.binding) : Memo.group =
    match b with
    | Rule.Group g -> g
    | Rule.Node (op, subs) ->
      let inputs = List.map (insert_binding_input t) subs in
      Memo.insert t.memo op inputs

  (* ------------------------------------------------------------------ *)
  (* Moves                                                               *)
  (* ------------------------------------------------------------------ *)

  type move =
    | Impl of {
        alg : M.alg;
        input_groups : Memo.group list;
        input_reqs : M.phys_props list;  (** one alternative vector *)
        promise : int;
        rule : string;  (** producing implementation rule, for provenance *)
      }
    | Enforce of {
        alg : M.alg;
        relaxed : M.phys_props;
        excluded : M.phys_props;
        promise : int;
      }

  let move_promise = function Impl m -> m.promise | Enforce m -> m.promise

  (* Implementation moves of rule [rule] rooted at multi-expression [m]. *)
  let impl_moves_at t (rule : (M.op, M.alg, M.logical_props, M.phys_props) Rule.implement)
      (m : Memo.mexpr) ~required : move list =
    bindings_at t rule.i_pattern m
    |> List.concat_map (fun b ->
           rule.i_apply ~lookup:(lookup t) ~required b
           |> List.concat_map (fun (c : _ Rule.impl_choice) ->
                  List.map
                    (fun vector ->
                      if List.length vector <> List.length c.c_inputs then
                        invalid_arg
                          (Printf.sprintf
                             "rule %s: alternative vector arity mismatch for %s"
                             rule.i_name (M.alg_name c.c_alg));
                      Impl
                        {
                          alg = c.c_alg;
                          input_groups = List.map (Memo.find_root t.memo) c.c_inputs;
                          input_reqs = vector;
                          promise = rule.i_promise;
                          rule = rule.i_name;
                        })
                    c.c_alternatives))

  let enforcer_moves ~props ~required =
    List.map
      (fun (alg, relaxed, excluded) -> Enforce { alg; relaxed; excluded; promise = 0 })
      (M.enforcers ~props ~required)

  (* ------------------------------------------------------------------ *)
  (* Tasks                                                               *)
  (* ------------------------------------------------------------------ *)

  let cost_lt a b = M.cost_compare a b < 0

  let cost_le a b = M.cost_compare a b <= 0

  (* Skip moves whose delivered properties already satisfy the excluding
     vector: "since merge-join is able to satisfy the excluding
     properties, it would not be considered a suitable algorithm for the
     sort input" (§3). *)
  let excluded_by ~excluded ~delivered =
    match excluded with
    | None -> false
    | Some ex -> M.pp_covers ~provided:delivered ~required:ex

  (* Where a finished goal writes its answer. The stack discipline
     guarantees the reader (the task pushed immediately beneath the
     goal) runs only after the goal's whole task subtree completed. *)
  type slot = { mutable answer : Memo.plan option }

  (* One (group, required, excluding, limit) optimization goal — the
     state Figure 2's FindBestPlan kept in its activation record, made
     explicit so the stepper can leave and re-enter it. *)
  type goal_state = {
    gs_group : Memo.group;
    gs_key_id : int;  (** interned id of (required, excluded) *)
    gs_required : M.phys_props;
    gs_excluded : M.phys_props option;
    mutable gs_limit : M.cost;
        (** the caller's limit; raised to the phase cap by workers
            re-optimizing a goal whose recorded bound proved
            insufficient (see [optimize_group_init]) *)
    mutable gs_bound : M.cost;  (** running branch-and-bound bound *)
    mutable gs_best : Memo.plan option;
    mutable gs_best_rank : int;
        (** static-order rank of the move that produced [gs_best]: the
            order-independent tie-break. On an exact cost tie the
            lower-ranked candidate wins, so static and dynamic pursuit
            orders agree on the final plan (see {!promise_mode}) *)
    gs_impl : move list array;  (** per-implementation-rule collection buckets *)
    mutable gs_moves : (int * move) list;
        (** pending moves in pursuit order, each tagged with its rank
            in the static promise order *)
    mutable gs_reranked : bool;
        (** dynamic promise: this goal's pending moves have been
            re-ranked by computed promise (which happens once, at the
            first pursuit step after the run's root goal has an
            incumbent) *)
    mutable gs_phase : goal_phase;
    gs_slot : slot;
    mutable gs_span : Obs.Trace.span option;
        (** open tracing span for this goal, when tracing is on *)
  }

  and goal_phase =
    | G_init  (** consult the winner table; start a real optimization if needed *)
    | G_collect  (** class explored: fan out move generation per multi-expression *)
    | G_pursue  (** assemble + promise-sort moves once, then pursue sequentially *)

  (* Pursuit of one algorithm move: optimize inputs left to right,
     tightening the remaining budget (Figure 2: Limit - TotalCost). *)
  and impl_state = {
    im_goal : goal_state;
    im_alg : M.alg;
    im_rank : int;  (** static-order rank of the pursued move *)
    im_rule : string;  (** producing implementation rule, for provenance *)
    im_start : int;
        (** [run.r_tasks] when pursuit began, for the profiler's
            wasted-work accounting *)
    im_delivered : M.phys_props;
    mutable im_acc_cost : M.cost;  (** local cost + completed inputs *)
    mutable im_done : (Memo.group * M.phys_props * M.phys_props option) list;
        (** completed input goals, reversed *)
    mutable im_pending : (Memo.group * M.phys_props * M.cost) list;
        (** remaining inputs with their cached cost lower bounds, for
            guided limit tightening *)
    mutable im_inflight : (Memo.group * M.phys_props * slot) option;
  }

  (* Pursuit of one enforcer move: §6 — the enforcer's cost is
     subtracted from the bound before its input is optimized. *)
  and enf_state = {
    en_goal : goal_state;
    en_alg : M.alg;
    en_rank : int;  (** static-order rank of the pursued move *)
    en_start : int;
        (** [run.r_tasks] when pursuit began, for the profiler's
            wasted-work accounting *)
    en_delivered : M.phys_props;
    en_relaxed : M.phys_props;
    en_excluded : M.phys_props;
    en_local : M.cost;
    en_slot : slot;
  }

  and task =
    | T_optimize_group of goal_state
    | T_explore_group of Memo.group  (** begin exploration *)
    | T_explore_round of Memo.group  (** one sweep of the exploration fixpoint *)
    | T_optimize_mexpr of goal_state * Memo.mexpr
    | T_apply_transform of Memo.group * Memo.mexpr * int  (** (target, mexpr, rule) *)
    | T_optimize_inputs of impl_state
    | T_apply_enforcer of enf_state

  let task_kind : task -> Search_stats.task_kind = function
    | T_optimize_group _ -> Search_stats.Optimize_group
    | T_explore_group _ | T_explore_round _ -> Search_stats.Explore_group
    | T_optimize_mexpr _ -> Search_stats.Optimize_mexpr
    | T_apply_transform _ -> Search_stats.Apply_transform
    | T_optimize_inputs _ -> Search_stats.Optimize_inputs
    | T_apply_enforcer _ -> Search_stats.Apply_enforcer

  let task_group : task -> Memo.group = function
    | T_optimize_group gs -> gs.gs_group
    | T_explore_group g | T_explore_round g -> g
    | T_optimize_mexpr (gs, _) -> gs.gs_group
    | T_apply_transform (g, _, _) -> g
    | T_optimize_inputs st -> st.im_goal.gs_group
    | T_apply_enforcer st -> st.en_goal.gs_group

  (* ------------------------------------------------------------------ *)
  (* Profiler / flight-recorder attribution                              *)
  (* ------------------------------------------------------------------ *)

  (* The (kind, name) a task's effort is charged to — exactly one
     charge per executed task, so per-entry task sums equal the task
     counters. Transform and input-optimization tasks charge their
     rule; enforcer tasks their algorithm; mexpr tasks their logical
     operator; engine bookkeeping tasks a fixed engine key. *)
  let task_attr : task -> Obs.Profile.kind * string = function
    | T_optimize_group _ -> (Obs.Profile.Engine, "optimize_group")
    | T_explore_group _ | T_explore_round _ -> (Obs.Profile.Engine, "explore_group")
    | T_optimize_mexpr (_, m) -> (Obs.Profile.Operator, M.op_name m.op)
    | T_apply_transform (_, _, i) ->
      (Obs.Profile.Rule, (List.assoc i rule_index).Rule.t_name)
    | T_optimize_inputs st -> (Obs.Profile.Rule, st.im_rule)
    | T_apply_enforcer st -> (Obs.Profile.Enforcer, M.alg_name st.en_alg)

  (* Kind-specific [detail] payload of ring events about tasks. *)
  let task_code : task -> int = function
    | T_optimize_group _ -> 0
    | T_explore_group _ -> 1
    | T_explore_round _ -> 2
    | T_optimize_mexpr _ -> 3
    | T_apply_transform _ -> 4
    | T_optimize_inputs _ -> 5
    | T_apply_enforcer _ -> 6

  (* All no-ops unless the corresponding collector is configured. *)
  let profile_pruned t kind name =
    match t.pr_buf with None -> () | Some pb -> Obs.Profile.pruned pb kind name

  let profile_wasted t kind name n =
    match t.pr_buf with None -> () | Some pb -> Obs.Profile.wasted pb kind name n

  let fr_event t kind ~group ~detail =
    match t.fr_ring with
    | None -> ()
    | Some ring -> Obs.Flight_recorder.record ring kind ~group ~detail

  (* ------------------------------------------------------------------ *)
  (* Runs: one resumable optimization                                    *)
  (* ------------------------------------------------------------------ *)

  type stop_reason =
    | Task_budget  (** the deterministic step budget was exhausted *)
    | Time_budget  (** the wall-clock budget was exhausted *)

  type status =
    | Complete
    | Paused of stop_reason

  type run = {
    rt : t;
    r_root : Memo.group;
    r_required : M.phys_props;
    r_limit : M.cost;
    r_goal : goal_state;  (** the root goal; its best-so-far is the anytime plan *)
    mutable r_stack : task list;
    mutable r_depth : int;
    mutable r_tasks : int;  (** tasks executed in this run (not the searcher) *)
    mutable r_incumbents : (int * M.cost) list;
        (** root-goal incumbent history, newest first: [(r_tasks, cost)]
            at every strict improvement of the root goal's best-so-far
            plan — the anytime cost-vs-effort curve of the run *)
    mutable r_millis : float;  (** active wall-clock milliseconds, across resumes *)
    mutable r_status : status option;  (** [Some Complete] once the stack drains *)
    r_marks : (int, unit Memo.Id_tbl.t) Hashtbl.t;
        (** worker-mode in-progress marks (interned goal ids), private
            to this run and keyed by root group; unused (empty) in
            [Seq] mode *)
    mutable r_open_goals : Obs.Trace.span list;
        (** open goal spans, innermost first — the parent chain for the
            next task span; empty when tracing is off *)
    mutable r_closing : (Obs.Trace.span * string) list;
        (** goal spans concluded mid-task, with their outcomes; closed
            after the current task's span so the bracketing is proper *)
  }

  let push run task =
    run.r_stack <- task :: run.r_stack;
    run.r_depth <- run.r_depth + 1;
    Search_stats.note_stack_depth run.rt.stats run.r_depth

  (* In-progress marks, dispatched on the searcher's mode. Sequentially
     they live in the memo (the engine is one big DFS); in worker mode
     each run keeps its own table, because a mark means "this run's
     descent passes through that goal" — the cycle-neutralization
     property of Figure 2 — and one run's unfinished goal must not look
     like a cycle to a different run. *)

  let run_marks run g =
    match Hashtbl.find_opt run.r_marks g with
    | Some tbl -> tbl
    | None ->
      let tbl = Memo.Id_tbl.create 4 in
      Hashtbl.add run.r_marks g tbl;
      tbl

  let goal_in_progress run g id =
    match run.rt.mode with
    | Seq -> Memo.in_progress run.rt.memo g id
    | Worker _ -> Memo.Id_tbl.mem (run_marks run g) id

  let mark_goal_in_progress run g id =
    match run.rt.mode with
    | Seq -> Memo.mark_in_progress run.rt.memo g id
    | Worker ctx ->
      Memo.Id_tbl.replace (run_marks run g) id ();
      (* Claim the goal so other workers wait for (or skip) it instead
         of recomputing its whole subtree. The stealing scheduler
         already acquired the claim atomically at consultation time
         (see [optimize_group_init]), so only the seeded scheduler
         claims here. *)
      if not ctx.wk_stealing then Memo.claim_id run.rt.memo g id

  let unmark_goal_in_progress run g id =
    match run.rt.mode with
    | Seq -> Memo.unmark_in_progress run.rt.memo g id
    | Worker _ -> Memo.Id_tbl.remove (run_marks run g) id

  (* ------------------------------------------------------------------ *)
  (* Tracing spans (all no-ops unless [config.tracer] is set)            *)
  (* ------------------------------------------------------------------ *)

  (* Open the goal's span, nested under the innermost open goal of this
     run — the span tree mirrors Figure 2's recursion. *)
  let goal_open run buf gs =
    let parent = match run.r_open_goals with sp :: _ -> Some sp | [] -> None in
    let sp =
      Obs.Trace.open_span buf ?parent ~cat:"goal"
        ~group:(Memo.find_root run.rt.memo gs.gs_group)
        ~args:
          [
            ("required", M.pp_to_string gs.gs_required);
            ("limit", M.cost_to_string gs.gs_limit);
          ]
        "goal"
    in
    gs.gs_span <- Some sp;
    run.r_open_goals <- sp :: run.r_open_goals

  (* Conclude a goal's span. The actual close is deferred to the end of
     the current task ([r_closing]), so the task span — the last work
     done inside the goal — closes before (inside) its goal span. *)
  let goal_conclude run gs outcome =
    match gs.gs_span with
    | None -> ()
    | Some sp ->
      gs.gs_span <- None;
      (match run.r_open_goals with
       | top :: rest when top == sp -> run.r_open_goals <- rest
       | l -> run.r_open_goals <- List.filter (fun s -> s != sp) l);
      run.r_closing <- (sp, outcome) :: run.r_closing

  let flush_goal_closes run =
    match run.r_closing with
    | [] -> ()
    | closing ->
      run.r_closing <- [];
      List.iter
        (fun (sp, outcome) -> Obs.Trace.close ~outcome sp)
        (List.rev closing)

  (* Close every span a run still holds open — it is being thrown away
     (a worker abandoning a seed, a parked run cut by the deadline). *)
  let abandon_run_spans run =
    flush_goal_closes run;
    List.iter (fun sp -> Obs.Trace.close ~outcome:"abandoned" sp) run.r_open_goals;
    run.r_open_goals <- []

  (* The parent span of a task: its goal's span if the task carries a
     goal, the innermost open goal of the run otherwise. *)
  let task_parent run task =
    let own =
      match task with
      | T_optimize_group gs | T_optimize_mexpr (gs, _) -> gs.gs_span
      | T_optimize_inputs st -> st.im_goal.gs_span
      | T_apply_enforcer st -> st.en_goal.gs_span
      | T_explore_group _ | T_explore_round _ | T_apply_transform _ -> None
    in
    match own with
    | Some _ -> own
    | None -> ( match run.r_open_goals with sp :: _ -> Some sp | [] -> None)

  (* ------------------------------------------------------------------ *)
  (* Task bodies                                                         *)
  (* ------------------------------------------------------------------ *)

  let new_goal t ~group ~required ~excluded ~limit slot =
    {
      gs_group = Memo.find_root t.memo group;
      gs_key_id = intern_goal t (required, excluded);
      gs_required = required;
      gs_excluded = excluded;
      gs_limit = limit;
      gs_bound = (if t.config.pruning then limit else M.cost_infinite);
      gs_best = None;
      gs_best_rank = max_int;
      gs_impl = Array.make (max 1 n_implementations) [];
      gs_moves = [];
      gs_reranked = false;
      gs_phase = G_init;
      gs_slot = slot;
      gs_span = None;
    }

  (* EXPLAIN provenance: remember why a move of [gs] lost (or that it
     completed). Gated on [config.explain]; recording never feeds back
     into the search. *)
  let note_alt t gs ~alg ~rule ~cost ~reason =
    if t.config.explain then begin
      let g = Memo.find_root t.memo gs.gs_group in
      let alt = { Memo.a_alg = alg; a_rule = rule; a_cost = cost; a_reason = reason } in
      match t.mode with
      | Seq -> Memo.record_alt t.memo g gs.gs_key_id alt
      | Worker _ -> Memo.record_alt_locked t.memo g gs.gs_key_id alt
    end

  (* Record a completed candidate plan against the goal, tightening the
     branch-and-bound bound (Figure 2's Limit update). [rank] is the
     candidate move's position in the *static* promise order: on an
     exact cost tie the lower rank wins, so which of two equal-cost
     plans is kept does not depend on pursuit order. Under static
     ordering ranks arrive increasing and the tie-break reduces to the
     engine's historical first-arrival rule. *)
  let consider run gs ~rank (candidate : Memo.plan) =
    let t = run.rt in
    note_alt t gs ~alg:candidate.p_alg ~rule:candidate.p_rule
      ~cost:(Some candidate.p_cost) ~reason:Memo.Alt_completed;
    let improved =
      match gs.gs_best with
      | None -> (not t.config.pruning) || cost_le candidate.p_cost gs.gs_limit
      | Some b -> cost_lt candidate.p_cost b.p_cost
    in
    let tie_break =
      (not improved)
      && (match gs.gs_best with
          | Some b -> M.cost_compare candidate.p_cost b.p_cost = 0 && rank < gs.gs_best_rank
          | None -> false)
    in
    if
      (improved || tie_break)
      && M.pp_covers ~provided:candidate.p_props ~required:gs.gs_required
    then begin
      if improved && gs == run.r_goal then begin
        if gs.gs_best <> None then
          t.stats.Search_stats.anytime_improvements <-
            t.stats.Search_stats.anytime_improvements + 1;
        fr_event t Obs.Flight_recorder.Incumbent
          ~group:(Memo.find_root t.memo gs.gs_group)
          ~detail:run.r_tasks;
        run.r_incumbents <- (run.r_tasks, candidate.p_cost) :: run.r_incumbents
      end;
      gs.gs_best <- Some candidate;
      gs.gs_best_rank <- rank;
      if cost_lt candidate.p_cost gs.gs_bound then gs.gs_bound <- candidate.p_cost
    end

  (* Conclude a goal: record the winner or the failure (with the bound
     it ran under — "failures that can save future optimization effort
     ... with the same or even lower cost limits") and deliver the
     answer to whoever scheduled the goal. *)
  let finalize_goal run gs =
    let t = run.rt in
    let g = Memo.find_root t.memo gs.gs_group in
    unmark_goal_in_progress run g gs.gs_key_id;
    (match gs.gs_best with
     | Some p -> record_winner t g gs.gs_key_id (Some p) gs.gs_limit
     | None ->
       t.stats.failures <- t.stats.failures + 1;
       record_winner t g gs.gs_key_id None gs.gs_limit);
    (* Credit the winner to the rule (or enforcer algorithm) that
       produced it. *)
    (match (gs.gs_best, t.pr_buf) with
     | Some p, Some pb ->
       if p.Memo.p_rule = "enforcer" then
         Obs.Profile.plan_won pb Obs.Profile.Enforcer (M.alg_name p.Memo.p_alg)
       else Obs.Profile.plan_won pb Obs.Profile.Rule p.Memo.p_rule
     | _ -> ());
    (* Stealing scheduler: the published entry, not the claim, is now
       the goal's authority — release the claim so a later run that
       needs a more generous bound can re-acquire and re-optimize
       instead of parking on a claim nobody will ever act on again. *)
    (match t.mode with
     | Worker ctx when ctx.wk_stealing ->
       Memo.release_claim_id t.memo g gs.gs_key_id
     | _ -> ());
    goal_conclude run gs (match gs.gs_best with Some _ -> "won" | None -> "failed");
    gs.gs_slot.answer <- gs.gs_best

  (* Schedule the child goal of a pursued move: push the waiter, then
     the child's [Optimize_group] on top so it runs first. *)
  let schedule_child run ~waiter ~group ~required ~excluded ~limit slot =
    let child = new_goal run.rt ~group ~required ~excluded ~limit slot in
    push run waiter;
    push run (T_optimize_group child)

  (* Pursue the goal's next pending move, or finalize. Each move runs to
     completion before the next starts, so the bound tightened by one
     move's plan prunes the following moves — exactly the sequential
     move order of the recursive engine. *)
  (* The cost floor of a move: the sum of its subgoals' lower bounds.
     Secondary sort key after promise — of equally promising moves, the
     one over the cheapest-bounded subtrees is pursued first, so the
     branch-and-bound bound tightens sooner. Computed in every
     configuration (including [guided = false] and [pruning = false]):
     the move order decides which of two equal-cost plans is found
     first, and the ablation arms must agree on it for their winners to
     be bit-identical. *)
  let move_floor t gs = function
    | Impl { input_groups; input_reqs; _ } ->
      List.fold_left2
        (fun acc gi ri -> M.cost_add acc (lower_bound_for t gi ri))
        M.cost_zero input_groups input_reqs
    | Enforce { relaxed; _ } -> lower_bound_for t gs.gs_group relaxed

  (* Dynamic promise: score one move from what the memo knows at
     assembly time. Three keys, lexicographic, lower first:

     - [pursuable] — whether the move can satisfy the required
       property at all (a move whose delivered vector is excluded or
       non-covering is a guaranteed no-op at pursuit: last);
     - [demands] — how many of the move's input properties are
       non-trivial. Each demanding input opens a property-establishment
       subgoal that strictly contains the work of its relaxed sibling
       (a sorted-input goal explores everything the any-property goal
       does, plus enforcers and order-delivering algorithms), so a
       demanding move tightens the branch-and-bound incumbent more
       slowly than its projected *plan* cost suggests;
     - the projected total: the model's promise estimate plus the
       floor already computed for the static tie-break.

     Implementations and enforcers compete on equal terms: a sort
     enforcer over a cheap unordered plan (one trivial input) outranks
     a merge join whose inputs must each pay for their order. *)
  let promise_score t gs floor mv =
    t.stats.Search_stats.promise_evals <- t.stats.Search_stats.promise_evals + 1;
    match mv with
    | Impl { alg; input_groups; input_reqs; _ } ->
      let delivered = M.deliver alg input_reqs in
      let pursuable =
        if
          excluded_by ~excluded:gs.gs_excluded ~delivered
          || not (M.pp_covers ~provided:delivered ~required:gs.gs_required)
        then 1
        else 0
      in
      let demands =
        List.fold_left
          (fun acc p -> if M.pp_trivial p then acc else acc + 1)
          0 input_reqs
      in
      let local =
        M.move_promise alg
          ~inputs:(List.map (lookup t) input_groups)
          ~input_props:input_reqs ~output:(lookup t gs.gs_group)
      in
      (pursuable, demands, M.cost_add local floor)
    | Enforce { alg; relaxed; _ } ->
      let gprops = lookup t gs.gs_group in
      let delivered = M.deliver alg [ relaxed ] in
      let pursuable =
        if
          excluded_by ~excluded:gs.gs_excluded ~delivered
          || not (M.pp_covers ~provided:delivered ~required:gs.gs_required)
        then 1
        else 0
      in
      let demands = if M.pp_trivial relaxed then 0 else 1 in
      let local =
        M.move_promise alg ~inputs:[ gprops ] ~input_props:[ relaxed ] ~output:gprops
      in
      (pursuable, demands, M.cost_add local floor)

  (* Re-rank a pursuit-ordered move list by computed promise: a stable
     sort on [promise_score], so ties keep their incoming (static)
     order. [moves_reordered] counts the positions that changed. *)
  let dynamic_order t gs (pending : (int * move) list) =
    let scored =
      List.map
        (fun (rank, mv) -> (rank, mv, promise_score t gs (move_floor t gs mv) mv))
        pending
    in
    let reordered =
      List.stable_sort
        (fun (_, _, (ca, da, pa)) (_, _, (cb, db, pb)) ->
          let c = compare (ca : int) cb in
          if c <> 0 then c
          else
            let d = compare (da : int) db in
            if d <> 0 then d else M.cost_compare pa pb)
        scored
      |> List.map (fun (rank, mv, _) -> (rank, mv))
    in
    List.iter2
      (fun (r0, _) (r1, _) ->
        if r0 <> r1 then
          t.stats.Search_stats.moves_reordered <-
            t.stats.Search_stats.moves_reordered + 1)
      pending reordered;
    reordered

  let rec next_move run gs =
    let t = run.rt in
    (* Dynamic promise, phase two: the first time this goal is stepped
       after the run's root goal has an incumbent, re-rank its pending
       moves by computed promise (once per goal — goals assembled
       after the incumbent arrive already ranked). *)
    if
      t.config.promise = Dynamic
      && (not gs.gs_reranked)
      && run.r_goal.gs_best <> None
    then begin
      gs.gs_reranked <- true;
      match gs.gs_moves with
      | [] | [ _ ] -> ()
      | pending -> gs.gs_moves <- dynamic_order t gs pending
    end;
    match gs.gs_moves with
    | [] -> finalize_goal run gs
    | (rank, mv) :: rest ->
      gs.gs_moves <- rest;
      (match mv with
       | Impl { alg; input_groups; input_reqs; promise = _; rule } ->
         let input_props = List.map (lookup t) input_groups in
         let output_props = lookup t gs.gs_group in
         let delivered = M.deliver alg input_reqs in
         if excluded_by ~excluded:gs.gs_excluded ~delivered then next_move run gs
         else if not (M.pp_covers ~provided:delivered ~required:gs.gs_required) then
           next_move run gs
         else begin
           t.stats.plans_costed <- t.stats.plans_costed + 1;
           let local =
             M.cost_of alg ~inputs:input_props ~input_props:input_reqs
               ~output:output_props
           in
           let pending =
             List.map2
               (fun gi ri -> (gi, ri, lower_bound_for t gi ri))
               input_groups input_reqs
           in
           (* Guided pruning: project the candidate's cheapest possible
              total — local cost plus every input's lower bound, folded
              in pursuit order so the float accumulation mirrors the
              candidate's own and can never exceed it. A projection
              over the bound abandons the move exactly where Figure 2
              would reject the finished candidate. *)
           let doomed =
             t.config.pruning && t.config.guided
             &&
             let projected =
               List.fold_left (fun acc (_, _, lb) -> M.cost_add acc lb) local pending
             in
             not (cost_le projected gs.gs_bound)
           in
           if doomed then begin
             t.stats.goals_pruned_lb <- t.stats.goals_pruned_lb + 1;
             profile_pruned t Obs.Profile.Rule rule;
             fr_event t Obs.Flight_recorder.Prune
               ~group:(Memo.find_root t.memo gs.gs_group) ~detail:0;
             note_alt t gs ~alg ~rule ~cost:None ~reason:Memo.Alt_pruned_lb;
             next_move run gs
           end
           else
             push run
               (T_optimize_inputs
                  {
                    im_goal = gs;
                    im_alg = alg;
                    im_rank = rank;
                    im_rule = rule;
                    im_start = run.r_tasks;
                    im_delivered = delivered;
                    im_acc_cost = local;
                    im_done = [];
                    im_pending = pending;
                    im_inflight = None;
                  })
         end
       | Enforce { alg; relaxed; excluded = enf_excluded; promise = _ } ->
         let gprops = lookup t gs.gs_group in
         let delivered = M.deliver alg [ relaxed ] in
         if excluded_by ~excluded:gs.gs_excluded ~delivered then next_move run gs
         else if not (M.pp_covers ~provided:delivered ~required:gs.gs_required) then
           next_move run gs
         else begin
           t.stats.enforcer_moves <- t.stats.enforcer_moves + 1;
           t.stats.plans_costed <- t.stats.plans_costed + 1;
           (* "the Volcano optimizer generator's search algorithm
              immediately ... subtracts the cost of the enforcer ...
              from the bound used for branch-and-bound pruning" (§6). *)
           let local =
             M.cost_of alg ~inputs:[ gprops ] ~input_props:[ relaxed ] ~output:gprops
           in
           let sub_limit = M.cost_sub gs.gs_bound local in
           if t.config.pruning && M.cost_compare sub_limit M.cost_zero <= 0 then begin
             t.stats.pruned <- t.stats.pruned + 1;
             profile_pruned t Obs.Profile.Enforcer (M.alg_name alg);
             fr_event t Obs.Flight_recorder.Prune
               ~group:(Memo.find_root t.memo gs.gs_group) ~detail:1;
             note_alt t gs ~alg ~rule:"enforcer" ~cost:(Some local)
               ~reason:Memo.Alt_over_bound;
             next_move run gs
           end
           else if
             (* Guided pruning: the enforcer's input is this same class
                under the relaxed requirement; if its lower bound
                already exceeds the budget left after the enforcer's
                own cost, the subgoal can only fail. *)
             t.config.pruning && t.config.guided
             && cost_lt sub_limit (lower_bound_for t gs.gs_group relaxed)
           then begin
             t.stats.goals_pruned_lb <- t.stats.goals_pruned_lb + 1;
             profile_pruned t Obs.Profile.Enforcer (M.alg_name alg);
             fr_event t Obs.Flight_recorder.Prune
               ~group:(Memo.find_root t.memo gs.gs_group) ~detail:1;
             note_alt t gs ~alg ~rule:"enforcer" ~cost:None ~reason:Memo.Alt_pruned_lb;
             next_move run gs
           end
           else begin
             let slot = { answer = None } in
             schedule_child run
               ~waiter:
                 (T_apply_enforcer
                    {
                      en_goal = gs;
                      en_alg = alg;
                      en_rank = rank;
                      en_start = run.r_tasks;
                      en_delivered = delivered;
                      en_relaxed = relaxed;
                      en_excluded = enf_excluded;
                      en_local = local;
                      en_slot = slot;
                    })
               ~group:gs.gs_group ~required:relaxed ~excluded:(Some enf_excluded)
               ~limit:sub_limit slot
           end
         end)

  (* FindBestPlan's winner-table consultation (Figure 2: "if the cost in
     the look-up table < Limit return Plan"), verbatim from the
     recursive engine: a recorded plan answers iff it fits the present
     limit; a recorded failure answers iff its bound was at least as
     generous; an in-progress goal (inverse rule pairs, enforcer cycles)
     answers with failure. *)
  let optimize_group_init run gs =
    let t = run.rt in
    let g = Memo.find_root t.memo gs.gs_group in
    let kid = gs.gs_key_id in
    let start_optimization () =
      t.stats.goal_misses <- t.stats.goal_misses + 1;
      (* Guided pruning: when the group's cost lower bound already
         exceeds the limit, no plan can be accepted — every candidate
         would fail Figure 2's limit test. Record the failure at the
         limit, exactly as the fruitless full optimization would have,
         and answer immediately. *)
      if
        t.config.pruning && t.config.guided
        && cost_lt gs.gs_limit (lower_bound_for t g gs.gs_required)
      then begin
        t.stats.goals_pruned_lb <- t.stats.goals_pruned_lb + 1;
        t.stats.failures <- t.stats.failures + 1;
        profile_pruned t Obs.Profile.Engine "optimize_group";
        fr_event t Obs.Flight_recorder.Prune ~group:g ~detail:2;
        record_winner t g kid None gs.gs_limit;
        (* The stealing scheduler acquired the claim before entering;
           the goal concluded without a [finalize_goal], so release it
           here (the published failure is now the authority). *)
        (match t.mode with
         | Worker ctx when ctx.wk_stealing -> Memo.release_claim_id t.memo g kid
         | _ -> ());
        goal_conclude run gs "pruned-lb";
        gs.gs_slot.answer <- None
      end
      else begin
        t.stats.goals <- t.stats.goals + 1;
        mark_goal_in_progress run g kid;
        gs.gs_phase <- G_collect;
        push run (T_optimize_group gs);
        push run (T_explore_group g)
      end
    in
    (* Stealing scheduler: suspend this run on goal [(g, kid)] — the
       claim holder will publish (and tick), at which point the re-
       pushed consultation re-runs and is answered from the table. *)
    let park_on ctx =
      t.stats.Search_stats.par_dup_kills <- t.stats.Search_stats.par_dup_kills + 1;
      push run (T_optimize_group gs);
      goal_conclude run gs "parked";
      ctx.wk_blocked <- Some (g, kid)
    in
    let count_claim () =
      t.stats.Search_stats.par_goals_claimed <-
        t.stats.Search_stats.par_goals_claimed + 1;
      fr_event t Obs.Flight_recorder.Claim ~group:g ~detail:kid
    in
    match winner_for t g kid with
    | Some { w_plan = Some p; _ } ->
      t.stats.goal_hits <- t.stats.goal_hits + 1;
      goal_conclude run gs "hit";
      gs.gs_slot.answer <-
        (if (not t.config.pruning) || cost_le p.p_cost gs.gs_limit then Some p else None)
    | Some { w_plan = None; w_bound } ->
      if cost_le gs.gs_limit w_bound then begin
        t.stats.goal_hits <- t.stats.goal_hits + 1;
        goal_conclude run gs "hit";
        gs.gs_slot.answer <- None
      end
      else begin
        (* Recorded failure, but under a stricter bound than ours:
           re-optimize ("the same expression and physical property
           vector may be optimized multiple times, with increasingly
           generous cost limits"). Workers re-optimize at the phase cap
           so the refreshed entry answers every later consultation. *)
        (match t.mode with
         | Worker ctx when M.cost_compare ctx.wk_cap gs.gs_limit > 0 ->
           gs.gs_limit <- ctx.wk_cap;
           if t.config.pruning then gs.gs_bound <- ctx.wk_cap
         | _ -> ());
        match t.mode with
        | Worker ctx when ctx.wk_stealing ->
          (* Serialize the re-optimization on the claim bit alone
             ([try_claim] would refuse: an entry exists by definition
             here). The loser parks; the holder publishes at the cap,
             which answers the re-polled consultation. *)
          if Memo.try_acquire_id t.memo g kid then begin
            count_claim ();
            start_optimization ()
          end
          else park_on ctx
        | _ -> start_optimization ()
      end
    | None ->
      if goal_in_progress run g kid then begin
        goal_conclude run gs "cycle";
        gs.gs_slot.answer <- None
      end
      else begin
        match t.mode with
        | Seq -> start_optimization ()
        | Worker ctx when ctx.wk_stealing ->
          (* Claim acquisition is fused with the consultation: exactly
             one run ever computes a goal (no check-then-claim window),
             so the claim table kills duplicates outright. A failed
             claim means the goal is being computed — park — or was
             published between our winner read and the claim attempt —
             the re-polled consultation then hits the fresh entry. *)
          if Memo.try_claim_id t.memo g kid then begin
            count_claim ();
            start_optimization ()
          end
          else park_on ctx
        | Worker ctx ->
          let forced =
            match ctx.wk_force with
            | Some (fg, fid) -> fg = g && fid = kid
            | None -> false
          in
          if forced then begin
            ctx.wk_force <- None;
            start_optimization ()
          end
          else if Memo.is_claimed_id t.memo g kid then begin
            (* Another run is computing this goal. Suspend: re-push the
               same consultation and signal the worker loop, which parks
               this run and picks up other work until the claim holder
               publishes a winner (or liveness forces a duplicate). *)
            push run (T_optimize_group gs);
            goal_conclude run gs "parked";
            ctx.wk_blocked <- Some (g, kid)
          end
          else start_optimization ()
      end

  (* The class is closed; fan move generation out, one task per
     multi-expression, then re-enter in [G_pursue] to assemble. *)
  let optimize_group_collect run gs =
    let t = run.rt in
    let g = Memo.find_root t.memo gs.gs_group in
    gs.gs_phase <- G_pursue;
    push run (T_optimize_group gs);
    (* Push in reverse so multi-expressions are processed in memo
       order, preserving the recursive engine's move enumeration. *)
    List.iter
      (fun m -> push run (T_optimize_mexpr (gs, m)))
      (List.rev (Memo.mexprs t.memo g))

  (* Assemble the goal's moves: implementation moves flattened
     rule-major (the recursive engine's enumeration order), then
     enforcer moves, stably sorted by promise, optionally truncated to
     the k most promising — then start pursuing. *)
  (* Assemble the final move list from the per-rule collection buckets:
     implementation moves flattened rule-major, enforcers appended,
     promise-sorted, optionally truncated — one deterministic order
     shared by the sequential pursuit and the parallel seeding. *)

  let assemble_moves run gs =
    let t = run.rt in
    let impl = List.concat (Array.to_list gs.gs_impl) in
    let enf = enforcer_moves ~props:(lookup t gs.gs_group) ~required:gs.gs_required in
    (* The static order is always computed: under [Static] it is the
       pursuit order, under [Dynamic] its positions are the ranks the
       cost-tie-break in [consider] keys on — the one order both arms
       agree about, independent of which is active. *)
    let static_order =
      List.map (fun mv -> (mv, move_floor t gs mv)) (impl @ enf)
      |> List.stable_sort (fun (a, fa) (b, fb) ->
             let c = compare (move_promise b) (move_promise a) in
             if c <> 0 then c else M.cost_compare fa fb)
      |> List.mapi (fun rank (mv, floor) -> (rank, mv, floor))
    in
    let ordered =
      match t.config.promise with
      | Static -> List.map (fun (rank, mv, _) -> (rank, mv)) static_order
      (* Two-phase anytime policy: until this run's root goal has a
         complete plan, pursue in the static rule order. Racing to a
         first incumbent is about which move's subtree *completes*
         cheapest, and completion cost is dominated by how much of the
         subtree earlier pursuits already optimized — reuse a local
         score cannot see (measured: at a sorted root, cost-greedy
         pursuit of the covering enforcer first re-derives the whole
         relaxed goal, 23x the tasks of static's order, which gets its
         first covering plan almost free by piggybacking on a
         non-covering descent). Once an incumbent exists the race is
         over and the computed promise takes over — [next_move]
         re-ranks the pending moves of goals assembled during the
         race. *)
      | Dynamic when run.r_goal.gs_best = None ->
        List.map (fun (rank, mv, _) -> (rank, mv)) static_order
      | Dynamic ->
        gs.gs_reranked <- true;
        dynamic_order t gs (List.map (fun (rank, mv, _) -> (rank, mv)) static_order)
    in
    match t.config.max_moves with
    | None -> ordered
    | Some k -> List.filteri (fun i _ -> i < k) ordered

  (* The subgoals a goal's pending moves will schedule, each with the
     cost limit branch-and-bound grants it: the goal's current bound
     minus the move's local cost. Moves are filtered exactly as the
     sequential pursuit filters them (excluded vectors, property
     coverage, local cost already over the bound), so no never-pursued
     goal is seeded. Every limit here is at least as generous as the
     limit the resumed sequential pass can consult the goal under — the
     bound only tightens after seeding — so a winner or failure
     published at the seeded limit answers those consultations exactly
     as a fresh sequential computation would.

     Seeds deliberately use the plain Figure-2 limit (bound minus local
     cost), NOT the guided sibling-tightened limit: tightened limits
     shrink as siblings resolve, so a seed published under one could be
     less generous than a limit the resumed pass later consults under,
     breaking the one-sided invariant above. Guided pruning still
     applies inside each worker's pursuit of the seeded goal. *)
  let seeds_of_moves t gs moves =
    let bound = gs.gs_bound in
    List.concat_map
      (fun mv ->
        match mv with
        | Impl { alg; input_groups; input_reqs; _ } ->
          let delivered = M.deliver alg input_reqs in
          if
            excluded_by ~excluded:gs.gs_excluded ~delivered
            || not (M.pp_covers ~provided:delivered ~required:gs.gs_required)
          then []
          else begin
            let input_props = List.map (lookup t) input_groups in
            let output_props = lookup t gs.gs_group in
            let local =
              M.cost_of alg ~inputs:input_props ~input_props:input_reqs
                ~output:output_props
            in
            let sub_limit = M.cost_sub bound local in
            if t.config.pruning && M.cost_compare sub_limit M.cost_zero <= 0 then []
            else
              List.map2
                (fun gi ri -> (Memo.find_root t.memo gi, (ri, None), sub_limit))
                input_groups input_reqs
          end
        | Enforce { alg; relaxed; excluded; _ } ->
          let delivered = M.deliver alg [ relaxed ] in
          if
            excluded_by ~excluded:gs.gs_excluded ~delivered
            || not (M.pp_covers ~provided:delivered ~required:gs.gs_required)
          then []
          else begin
            let gprops = lookup t gs.gs_group in
            let local =
              M.cost_of alg ~inputs:[ gprops ] ~input_props:[ relaxed ] ~output:gprops
            in
            let sub_limit = M.cost_sub bound local in
            if t.config.pruning && M.cost_compare sub_limit M.cost_zero <= 0 then []
            else
              [ (Memo.find_root t.memo gs.gs_group, (relaxed, Some excluded), sub_limit) ]
          end)
      moves

  let optimize_group_pursue run gs =
    gs.gs_moves <- assemble_moves run gs;
    next_move run gs

  let optimize_mexpr run gs (m : Memo.mexpr) =
    let t = run.rt in
    if m.dead then ()
    else begin
      (* Exploration prerequisites: groups that implementation patterns
         descend into must be closed before bindings are enumerated. *)
      let missing =
        List.concat_map
          (fun (_, (rule : _ Rule.implement)) -> missing_for_mexpr t rule.i_pattern m)
          implementation_index
        |> List.sort_uniq compare
      in
      if missing <> [] then begin
        push run (T_optimize_mexpr (gs, m));
        List.iter (fun g -> push run (T_explore_group g)) missing
      end
      else
        List.iter
          (fun (i, rule) ->
            let moves = impl_moves_at t rule m ~required:gs.gs_required in
            gs.gs_impl.(i) <- gs.gs_impl.(i) @ moves)
          implementation_index
    end

  (* Raised when a parallel worker would have to explore a group. The
     parallel phase runs only after exploration reached a fixpoint over
     every reachable group, so this is a should-not-happen escape: the
     worker abandons its current seed (winners it already published
     remain sound) and the sequential finishing pass computes the rest. *)
  exception Par_unexplored

  let explore_group run g =
    let t = run.rt in
    let g = Memo.find_root t.memo g in
    if Memo.is_explored t.memo g || Memo.is_exploring t.memo g then ()
    else begin
      (match t.mode with Worker _ -> raise Par_unexplored | Seq -> ());
      Memo.set_exploring t.memo g true;
      push run (T_explore_round g)
    end

  (* One sweep of the exploration fixpoint: schedule a rule application
     for every (multi-expression, rule) pair not yet fired, with a
     re-check underneath. New multi-expressions appended by those
     applications carry empty applied-bitmasks and are caught by the
     next sweep; the bitmask keeps the total work linear in
     (mexpr, rule) pairs, as in the recursive engine. *)
  let explore_round run g =
    let t = run.rt in
    let g = Memo.find_root t.memo g in
    let pending =
      List.concat_map
        (fun (m : Memo.mexpr) ->
          List.filter_map
            (fun (i, _) -> if m.applied land (1 lsl i) = 0 then Some (m, i) else None)
            rule_index)
        (Memo.mexprs t.memo g)
    in
    if pending = [] then begin
      Memo.set_exploring t.memo g false;
      Memo.set_explored t.memo g true
    end
    else begin
      push run (T_explore_round g);
      List.iter
        (fun (m, i) -> push run (T_apply_transform (g, m, i)))
        (List.rev pending)
    end

  let apply_transform run target (m : Memo.mexpr) i =
    let t = run.rt in
    if m.dead then ()
    else begin
      let rule = List.assoc i rule_index in
      let bit = 1 lsl i in
      if m.applied land bit <> 0 then ()
      else begin
        let missing = missing_for_mexpr t rule.Rule.t_pattern m in
        if missing <> [] then begin
          push run (T_apply_transform (target, m, i));
          List.iter (fun g -> push run (T_explore_group g)) missing
        end
        else begin
          m.applied <- m.applied lor bit;
          let mexprs_before = t.stats.mexprs_created in
          let bindings = bindings_at t rule.Rule.t_pattern m in
          List.iter
            (fun b ->
              let results = rule.Rule.t_apply ~lookup:(lookup t) b in
              if results <> [] then begin
                t.stats.rule_firings <- t.stats.rule_firings + 1;
                List.iter
                  (fun b' ->
                    let target = Memo.find_root t.memo target in
                    ignore (insert_binding t ~target b' : Memo.group))
                  results
              end)
            bindings;
          (* Credit the genuinely new mexprs (the memo dedups the rest)
             to the rule that generated them. *)
          match t.pr_buf with
          | None -> ()
          | Some pb ->
            Obs.Profile.mexprs pb Obs.Profile.Rule rule.Rule.t_name
              (t.stats.mexprs_created - mexprs_before)
        end
      end
    end

  (* One step of the left-to-right input optimization of an algorithm
     move. Absorbs the answer of the input goal in flight (if any), then
     either schedules the next input under the tightened limit, prunes,
     or completes the candidate. *)
  let optimize_inputs run (st : impl_state) =
    let t = run.rt in
    let gs = st.im_goal in
    let failed =
      match st.im_inflight with
      | None -> false
      | Some (gi, ri, slot) ->
        st.im_inflight <- None;
        (match slot.answer with
         | None -> true
         | Some sub ->
           st.im_done <- (gi, ri, None) :: st.im_done;
           st.im_acc_cost <- M.cost_add st.im_acc_cost sub.Memo.p_cost;
           false)
    in
    if failed then begin
      profile_wasted t Obs.Profile.Rule st.im_rule (run.r_tasks - st.im_start);
      note_alt t gs ~alg:st.im_alg ~rule:st.im_rule ~cost:None
        ~reason:Memo.Alt_input_failed;
      next_move run gs
    end
    else
      match st.im_pending with
      | [] ->
        consider run gs ~rank:st.im_rank
          {
            Memo.p_alg = st.im_alg;
            p_rule = st.im_rule;
            p_inputs = List.rev st.im_done;
            p_props = st.im_delivered;
            p_cost = st.im_acc_cost;
          };
        next_move run gs
      | (gi, ri, lb) :: rest ->
        let over_acc = t.config.pruning && not (cost_le st.im_acc_cost gs.gs_bound) in
        let over_bound =
          over_acc
          || t.config.pruning && t.config.guided
             && begin
                  (* Project the cheapest completion: accumulated cost
                     plus the pending inputs' lower bounds, folded in
                     pursuit order (the candidate's own accumulation
                     order, so the projection can never float above the
                     finished cost). *)
                  let projected =
                    List.fold_left
                      (fun acc (_, _, lb) -> M.cost_add acc lb)
                      (M.cost_add st.im_acc_cost lb) rest
                  in
                  not (cost_le projected gs.gs_bound)
                end
        in
        if over_bound then begin
          t.stats.pruned <- t.stats.pruned + 1;
          profile_pruned t Obs.Profile.Rule st.im_rule;
          profile_wasted t Obs.Profile.Rule st.im_rule (run.r_tasks - st.im_start);
          fr_event t Obs.Flight_recorder.Prune
            ~group:(Memo.find_root t.memo gs.gs_group) ~detail:0;
          note_alt t gs ~alg:st.im_alg ~rule:st.im_rule
            ~cost:(if over_acc then Some st.im_acc_cost else None)
            ~reason:(if over_acc then Memo.Alt_over_bound else Memo.Alt_pruned_lb);
          next_move run gs
        end
        else begin
          (* Figure 2's input limit is [bound - accumulated]; guided
             pruning further subtracts the lower bounds of the inputs
             still waiting behind this one — their cost is committed,
             just not yet spent. As siblings resolve, [rest] shrinks
             and the subtraction is retaken against their true costs,
             so limits tighten as the move progresses. *)
          let f2_limit = M.cost_sub gs.gs_bound st.im_acc_cost in
          let sub_limit =
            if t.config.pruning && t.config.guided && rest <> [] then begin
              let tightened =
                List.fold_left (fun acc (_, _, lb) -> M.cost_sub acc lb) f2_limit rest
              in
              if cost_lt tightened f2_limit then
                t.stats.input_limits_tightened <- t.stats.input_limits_tightened + 1;
              tightened
            end
            else f2_limit
          in
          let slot = { answer = None } in
          st.im_pending <- rest;
          st.im_inflight <- Some (gi, ri, slot);
          schedule_child run ~waiter:(T_optimize_inputs st) ~group:gi ~required:ri
            ~excluded:None ~limit:sub_limit slot
        end

  let apply_enforcer run (st : enf_state) =
    let t = run.rt in
    let gs = st.en_goal in
    (match st.en_slot.answer with
     | None ->
       profile_wasted t Obs.Profile.Enforcer (M.alg_name st.en_alg)
         (run.r_tasks - st.en_start);
       note_alt t gs ~alg:st.en_alg ~rule:"enforcer" ~cost:None
         ~reason:Memo.Alt_input_failed
     | Some sub ->
       consider run gs ~rank:st.en_rank
         {
           Memo.p_alg = st.en_alg;
           p_rule = "enforcer";
           p_inputs = [ (gs.gs_group, st.en_relaxed, Some st.en_excluded) ];
           p_props = st.en_delivered;
           p_cost = M.cost_add st.en_local sub.Memo.p_cost;
         });
    next_move run gs

  (* ------------------------------------------------------------------ *)
  (* The stepper loop                                                    *)
  (* ------------------------------------------------------------------ *)

  let exec_task run task =
    match task with
    | T_optimize_group gs -> begin
      match gs.gs_phase with
      | G_init -> optimize_group_init run gs
      | G_collect -> optimize_group_collect run gs
      | G_pursue -> optimize_group_pursue run gs
    end
    | T_explore_group g -> explore_group run g
    | T_explore_round g -> explore_round run g
    | T_optimize_mexpr (gs, m) -> optimize_mexpr run gs m
    | T_apply_transform (g, m, i) -> apply_transform run g m i
    | T_optimize_inputs st -> optimize_inputs run st
    | T_apply_enforcer st -> apply_enforcer run st

  (* Dispatch one task, under a trace span when tracing is on. *)
  let exec_with_trace run task =
    let t = run.rt in
    match t.tr_buf with
    | None -> exec_task run task
    | Some buf ->
      (* A goal consultation begins the goal: open its span first so
         this task — and the goal's whole task subtree — nests inside
         it. A parked goal re-enters here and gets a fresh span. *)
      (match task with
       | T_optimize_group gs when gs.gs_phase = G_init && gs.gs_span = None ->
         goal_open run buf gs
       | _ -> ());
      let parent = task_parent run task in
      let sp =
        Obs.Trace.open_span buf ?parent ~cat:"task"
          ~group:(Memo.find_root t.memo (task_group task))
          (Search_stats.task_kind_name (task_kind task))
      in
      (match exec_task run task with
       | () -> Obs.Trace.close sp
       | exception e ->
         Obs.Trace.close ~outcome:"abandoned" sp;
         flush_goal_closes run;
         raise e);
      (* Goals concluded during the task close after it, keeping the
         bracketing proper: the task span is the goal's last child. *)
      flush_goal_closes run

  (* Execute one task. Returns [false] when the stack is empty. *)
  let step run =
    match run.r_stack with
    | [] -> false
    | task :: rest ->
      run.r_stack <- rest;
      run.r_depth <- run.r_depth - 1;
      run.r_tasks <- run.r_tasks + 1;
      let t = run.rt in
      Search_stats.count_task t.stats (task_kind task);
      (match (t.pr_buf, t.fr_ring) with
       | None, None -> exec_with_trace run task
       | pr, fr ->
         (match fr with
          | None -> ()
          | Some ring ->
            Obs.Flight_recorder.record ring Obs.Flight_recorder.Task_begin
              ~group:(Memo.find_root t.memo (task_group task))
              ~detail:(task_code task));
         let t_start = match pr with None -> 0L | Some _ -> Obs.Clock.now_ns () in
         (* Exactly one profile charge per executed task — including
            tasks that abort (a worker's [Par_unexplored]), which the
            task counters also include: the attribution-parity
            invariant (sum of per-entry tasks = total tasks). *)
         let finish () =
           (match pr with
            | None -> ()
            | Some pb ->
              let kind, name = task_attr task in
              Obs.Profile.task pb kind name
                ~ns:(Int64.sub (Obs.Clock.now_ns ()) t_start));
           match fr with
           | None -> ()
           | Some ring ->
             Obs.Flight_recorder.record ring Obs.Flight_recorder.Task_end
               ~group:(Memo.find_root t.memo (task_group task))
               ~detail:(task_code task)
         in
         (match exec_with_trace run task with
          | () -> finish ()
          | exception e ->
            finish ();
            raise e));
      true

  (* A run record with an empty work stack. *)
  let fresh_run t ~root ~required ~limit goal =
    {
      rt = t;
      r_root = root;
      r_required = required;
      r_limit = limit;
      r_goal = goal;
      r_stack = [];
      r_depth = 0;
      r_tasks = 0;
      r_incumbents = [];
      r_millis = 0.;
      r_status = None;
      r_marks = Hashtbl.create 8;
      r_open_goals = [];
      r_closing = [];
    }

  (** Begin a resumable optimization: capture the query in the memo and
      set up the root goal. No search work happens until {!resume}. *)
  let start ?(limit = M.cost_infinite) t (query : M.op Tree.t) ~required : run =
    let root = insert_query t query in
    let slot = { answer = None } in
    let goal = new_goal t ~group:root ~required ~excluded:None ~limit slot in
    let run = fresh_run t ~root ~required ~limit goal in
    push run (T_optimize_group goal);
    run

  (** Drive the stepper until the search completes or the budget runs
      out. Budgets are cumulative over the run: resuming a paused run
      with a larger budget continues exactly where it stopped, with all
      memoized work intact. Resuming a completed run is a no-op. *)
  let resume ?budget (run : run) : status =
    let budget = Option.value budget ~default:run.rt.config.budget in
    match run.r_status with
    | Some Complete -> Complete
    | _ ->
      let t0 = Unix.gettimeofday () in
      let out_of_budget () =
        match budget.max_tasks with
        | Some n when run.r_tasks >= n -> Some Task_budget
        | _ -> begin
          match budget.max_millis with
          | Some ms
            when run.r_millis +. ((Unix.gettimeofday () -. t0) *. 1000.) >= ms ->
            Some Time_budget
          | _ -> None
        end
      in
      let rec loop () =
        if run.r_stack = [] then Complete
        else
          match out_of_budget () with
          | Some reason -> Paused reason
          | None ->
            ignore (step run : bool);
            loop ()
      in
      let status = loop () in
      run.r_millis <- run.r_millis +. ((Unix.gettimeofday () -. t0) *. 1000.);
      run.r_status <- Some status;
      (* A budget pause is an abnormal end: dump the flight recorder so
         the post-mortem shows what the engine was doing when the
         budget ran out. *)
      (match (status, run.rt.config.recorder) with
       | Paused reason, Some fr ->
         Obs.Flight_recorder.trigger fr
           ~reason:
             (match reason with
              | Task_budget -> "task-budget"
              | Time_budget -> "time-budget")
       | _ -> ());
      status

  (* ------------------------------------------------------------------ *)
  (* Plan extraction                                                     *)
  (* ------------------------------------------------------------------ *)

  (* Materialize a plan tree from a winner-table plan node: children are
     re-read from the winner tables by their optimization goals. *)
  let rec extract_node t (p : Memo.plan) : plan_tree =
    let children =
      List.map
        (fun (gi, ri, ei) ->
          let gi = Memo.find_root t.memo gi in
          match Memo.winner t.memo gi (ri, ei) with
          | None | Some { w_plan = None; _ } ->
            invalid_arg "Search.extract: no winning plan recorded for goal"
          | Some { w_plan = Some sub; _ } -> extract_node t sub)
        p.p_inputs
    in
    (* Consistency check (§2.2): "generated optimizers verify that the
       physical properties of a chosen plan really do satisfy the
       physical property vector given as part of the optimization
       goal." *)
    List.iter2
      (fun (_, ri, _) (c : plan_tree) ->
        assert (M.pp_covers ~provided:c.props ~required:ri))
      p.p_inputs children;
    { alg = p.p_alg; children; props = p.p_props; cost = p.p_cost }

  let extract t g ~required ~excluded : plan_tree =
    let g = Memo.find_root t.memo g in
    match Memo.winner t.memo g (required, excluded) with
    | None | Some { w_plan = None; _ } ->
      invalid_arg "Search.extract: no winning plan recorded for goal"
    | Some { w_plan = Some p; _ } ->
      assert (M.pp_covers ~provided:p.p_props ~required);
      extract_node t p

  (* ------------------------------------------------------------------ *)
  (* EXPLAIN: winner provenance from the memo                            *)
  (* ------------------------------------------------------------------ *)

  (** A losing alternative of an optimization goal, with the reason the
      search let it go (see {!Memo.alt_reason}). Recorded only when
      [config.explain] is on. *)
  type explain_alt = {
    xa_alg : string;
    xa_rule : string;
    xa_cost : M.cost option;  (** completed or partial cost, if one was known *)
    xa_reason : Memo.alt_reason;
  }

  (** One node of the winning physical expression, re-read from the
      winner tables: the chosen algorithm, the implementation rule that
      produced it, its total and local costs, and the alternatives the
      goal rejected. *)
  type explain_node = {
    x_group : Memo.group;
    x_alg : M.alg;
    x_rule : string;
    x_required : M.phys_props;
    x_provided : M.phys_props;
    x_cost : M.cost;  (** total cost of this subtree *)
    x_local : M.cost;  (** this node's own cost (total minus inputs) *)
    x_inputs : explain_node list;
    x_alts : explain_alt list;  (** losing alternatives of this goal *)
  }

  let rec explain_goal t g ~required ~excluded : explain_node option =
    let g = Memo.find_root t.memo g in
    let id = Memo.intern t.memo (required, excluded) in
    match Memo.winner_id t.memo g id with
    | None | Some { Memo.w_plan = None; _ } -> None
    | Some { Memo.w_plan = Some p; _ } ->
      let inputs =
        List.filter_map
          (fun (gi, ri, ei) -> explain_goal t gi ~required:ri ~excluded:ei)
          p.Memo.p_inputs
      in
      let local =
        List.fold_left (fun acc (c : explain_node) -> M.cost_sub acc c.x_cost)
          p.Memo.p_cost inputs
      in
      (* The goal's recorded alternatives minus one entry for the winner
         itself: a completed candidate with the winner's algorithm, rule,
         and cost. Everything left lost. *)
      let is_winner (a : Memo.alt) =
        a.Memo.a_reason = Memo.Alt_completed
        && M.alg_name a.Memo.a_alg = M.alg_name p.Memo.p_alg
        && a.Memo.a_rule = p.Memo.p_rule
        && (match a.Memo.a_cost with
            | Some c -> M.cost_compare c p.Memo.p_cost = 0
            | None -> false)
      in
      let rec drop_winner = function
        | [] -> []
        | a :: rest -> if is_winner a then rest else a :: drop_winner rest
      in
      let alts =
        List.map
          (fun (a : Memo.alt) ->
            {
              xa_alg = M.alg_name a.Memo.a_alg;
              xa_rule = a.Memo.a_rule;
              xa_cost = a.Memo.a_cost;
              xa_reason = a.Memo.a_reason;
            })
          (drop_winner (Memo.alts t.memo g id))
      in
      Some
        {
          x_group = g;
          x_alg = p.Memo.p_alg;
          x_rule = p.Memo.p_rule;
          x_required = required;
          x_provided = p.Memo.p_props;
          x_cost = p.Memo.p_cost;
          x_local = local;
          x_inputs = inputs;
          x_alts = alts;
        }

  (** Reconstruct the winning physical expression for [(g, required)]
      with per-node provenance. [None] if no winner is recorded (run the
      optimization first, with [config.explain] on to see losing
      alternatives). *)
  let explain t g ~required = explain_goal t g ~required ~excluded:None

  let reason_label ~winner_cost (a : explain_alt) =
    match a.xa_reason with
    | Memo.Alt_completed -> (
      match a.xa_cost with
      | Some c when M.cost_compare c winner_cost = 0 ->
        Printf.sprintf "completed at cost %s, tied with winner (pursued later)"
          (M.cost_to_string c)
      | Some c ->
        Printf.sprintf "completed, cost %s above winner %s" (M.cost_to_string c)
          (M.cost_to_string winner_cost)
      | None -> "completed, costlier than winner")
    | Memo.Alt_over_bound -> (
      match a.xa_cost with
      | Some c ->
        Printf.sprintf "abandoned at partial cost %s: bound exceeded"
          (M.cost_to_string c)
      | None -> "abandoned: bound exceeded")
    | Memo.Alt_pruned_lb -> "pruned: cost lower bound above the limit"
    | Memo.Alt_input_failed -> "input goal failed within its limit (failure table)"

  (** Render an {!explain} tree: one line per winning node (algorithm,
      delivered properties, total and local cost, producing rule, memo
      group), each followed by its goal's losing alternatives. *)
  let pp_explain ppf (root : explain_node) =
    let rec go depth (n : explain_node) =
      let pad = String.make depth ' ' in
      Format.fprintf ppf "%s%s  [%s; cost %s; local %s]  rule=%s group=%d@\n" pad
        (M.alg_name n.x_alg) (M.pp_to_string n.x_provided)
        (M.cost_to_string n.x_cost) (M.cost_to_string n.x_local) n.x_rule n.x_group;
      List.iter
        (fun (a : explain_alt) ->
          Format.fprintf ppf "%s  ~ %s via %s: %s@\n" pad a.xa_alg a.xa_rule
            (reason_label ~winner_cost:n.x_cost a))
        n.x_alts;
      List.iter (fun c -> go (depth + 2) c) n.x_inputs
    in
    go 0 root

  (** The run's incumbent history, oldest first: [(tasks, cost)] at
      every strict improvement of the root goal's best-so-far plan.
      [tasks] counts this run's executed tasks when the incumbent was
      recorded — the x-axis of an anytime cost-vs-effort curve. *)
  let incumbents (run : run) : (int * M.cost) list = List.rev run.r_incumbents

  (** The best complete plan the run has found so far — the anytime
      answer. For a finished run this is the winner; for a paused run it
      is the root goal's best candidate, whose input goals all finished
      (and were memoized) before the candidate was recorded, so it
      extracts to a valid, executable plan. *)
  let best_so_far (run : run) : plan_tree option =
    let best =
      match run.r_status with
      | Some Complete -> run.r_goal.gs_slot.answer
      | _ -> (
        match run.r_goal.gs_slot.answer with
        | Some p -> Some p
        | None -> run.r_goal.gs_best)
    in
    Option.map (fun p -> extract_node run.rt p) best

  type outcome = {
    plan : plan_tree option;
        (** [None]: no plan within the cost limit (or none yet within
            the budget) *)
    status : status;  (** [Paused _]: the budget ran out; [plan] is anytime *)
    tasks_run : int;  (** tasks this optimization executed *)
    root_group : Memo.group;
    search_stats : Search_stats.t;
    memo_groups : int;
    memo_mexprs : int;
  }

  let outcome_of (run : run) : outcome =
    let status = match run.r_status with Some s -> s | None -> Paused Task_budget in
    {
      plan = best_so_far run;
      status;
      tasks_run = run.r_tasks;
      root_group = run.r_root;
      search_stats = run.rt.stats;
      memo_groups = Memo.n_groups run.rt.memo;
      memo_mexprs = Memo.n_mexprs run.rt.memo;
    }

  (** Optimize a query: insert it, run the task engine for the required
      properties under the cost limit and the searcher's configured
      budget, and extract the winning (or, under an exhausted budget,
      the best-so-far) plan. A fresh optimizer should be used per query
      (the paper reinitializes partial results for each query) unless
      memo reuse across queries is intended. *)
  let optimize ?(limit = M.cost_infinite) ?budget t (query : M.op Tree.t) ~required :
      outcome =
    let run = start ~limit t query ~required in
    ignore (resume ?budget run : status);
    outcome_of run

  (* ------------------------------------------------------------------ *)
  (* Intra-query parallel search                                         *)
  (* ------------------------------------------------------------------ *)

  (* Every group reachable from [root] through multi-expression inputs,
     in deterministic preorder. *)
  let reachable_groups t root =
    let seen = Hashtbl.create 64 in
    let order = ref [] in
    let rec go g =
      let g = Memo.find_root t.memo g in
      if not (Hashtbl.mem seen g) then begin
        Hashtbl.add seen g ();
        order := g :: !order;
        List.iter
          (fun (m : Memo.mexpr) -> List.iter go m.inputs)
          (Memo.mexprs t.memo g)
      end
    in
    go root;
    List.rev !order

  (* Close every reachable class before the workers start: first the
     root's own exploration cascade (the sequential engine's first move,
     task for task), then any reachable group still unexplored, until
     the reachable set is stable. Afterwards the memo's logical
     structure is frozen: move generation and goal pursuit only read
     it, which is what makes the parallel phase race-free. *)
  let explore_reachable t root ~required ~limit =
    let goal = new_goal t ~group:root ~required ~excluded:None ~limit { answer = None } in
    let run = fresh_run t ~root ~required ~limit goal in
    let drain () =
      while step run do
        ()
      done
    in
    let rec fix () =
      let unexplored =
        List.filter (fun g -> not (Memo.is_explored t.memo g)) (reachable_groups t root)
      in
      if unexplored <> [] then begin
        List.iter (fun g -> push run (T_explore_group g)) (List.rev unexplored);
        drain ();
        fix ()
      end
    in
    push run (T_explore_group (Memo.find_root t.memo root));
    drain ();
    fix ()

  (* Dedup seeds per (group, goal key), keeping the most generous limit
     (an entry computed under it answers the consultations of every
     merged duplicate), and order them bottom-up (lower group ids were
     created earlier, hence sit lower in the query), so workers publish
     shared subgoal winners before the larger goals that consult them
     start. *)
  let dedup_seeds seeds =
    let seen : (int, M.cost Memo.Goal_tbl.t) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun (g, key, limit) ->
        let tbl =
          match Hashtbl.find_opt seen g with
          | Some tbl -> tbl
          | None ->
            let tbl = Memo.Goal_tbl.create 8 in
            Hashtbl.add seen g tbl;
            tbl
        in
        match Memo.Goal_tbl.find_opt tbl key with
        | None ->
          Memo.Goal_tbl.replace tbl key limit;
          order := (g, key) :: !order
        | Some prev ->
          if M.cost_compare limit prev > 0 then Memo.Goal_tbl.replace tbl key limit)
      seeds;
    List.stable_sort
      (fun (a, _, _) (b, _, _) -> compare (a : int) b)
      (List.rev_map
         (fun (g, key) -> (g, key, Memo.Goal_tbl.find (Hashtbl.find seen g) key))
         !order)

  (* The parallel phase: [domains] worker domains cooperate over the
     initial seed queue plus the shared help-first pool. Each claimed
     goal is computed with the standard task engine against a private
     worker view — shared memo, lock-striped winner access, per-run
     in-progress marks and per-worker stats — under the exact cost limit
     branch-and-bound grants that subgoal given the incumbent plan found
     by the sequential prefix. Seeding at those limits keeps Figure 2's
     pruning alive inside every worker (seeding at infinite limits would
     perform the exhaustive, unpruned DP — an order of magnitude more
     work on the join workloads), and is sufficient: the resumed pass
     can only consult these goals under limits at most as generous (its
     bound only tightens), which any published winner (a true optimum)
     or failure (with the seeded bound) answers exactly as a fresh
     sequential computation would.

     A run that reaches a goal claimed by another run SUSPENDS (its
     stack parks on the worker's blocked queue) and the worker picks up
     other goals; it resumes once the claim holder publishes. That keeps
     total work near the sequential engine's instead of letting workers
     duplicate each other's subtrees. Liveness: when a worker has
     nothing runnable and a full poll sweep makes no progress, it
     force-computes the first blocked run's blocking goal — a bounded
     duplicate, counted in [par_dup_goals], never an error, since
     winners merge monotonically and racing publishes commute. *)
  let par_phase_seeded t ~domains ~deadline ~cap seeds =
    let seeds = Array.of_list seeds in
    let next = Atomic.make 0 in
    let work widx =
      let wstats = Search_stats.create () in
      let ctx =
        {
          wk_cap = cap;
          wk_blocked = None;
          wk_force = None;
          wk_stealing = false;
          wk_tick = Atomic.make 0;
        }
      in
      (* Each worker writes spans (and profile charges, and ring
         events) to its own track (track 0 is the sequential engine);
         the collectors merge the buffers post-run, so all three cover
         the parallel phase. *)
      let wbuf =
        Option.map (fun tr -> Obs.Trace.buf tr ~track:(widx + 1)) t.config.tracer
      in
      let wpbuf =
        Option.map (fun pr -> Obs.Profile.buf pr ~track:(widx + 1)) t.config.profiler
      in
      let wring =
        Option.map
          (fun fr -> Obs.Flight_recorder.ring fr ~track:(widx + 1))
          t.config.recorder
      in
      let wt =
        {
          t with
          stats = wstats;
          mode = Worker ctx;
          tr_buf = wbuf;
          pr_buf = wpbuf;
          fr_ring = wring;
        }
      in
      let phase_span =
        Option.map
          (fun buf -> Obs.Trace.open_span buf ~cat:"phase" "parallel-worker")
          wbuf
      in
      let past_deadline () =
        match deadline with None -> false | Some d -> Unix.gettimeofday () >= d
      in
      (* Suspended runs, each paired with the goal it last blocked on. *)
      let blocked : (run * (Memo.group * int)) Queue.t = Queue.create () in
      (* Step a run until it completes (true) or suspends (false). *)
      let step_through run =
        let rec go () =
          ctx.wk_blocked <- None;
          if not (step run) then true
          else if ctx.wk_blocked = None then go ()
          else false
        in
        try go ()
        with Par_unexplored ->
          run.r_stack <- [];
          abandon_run_spans run;
          true
      in
      let park run = Queue.add (run, Option.get ctx.wk_blocked) blocked in
      let launch (g, key, limit) =
        let kid = Memo.intern_locked t.memo key in
        if Memo.try_claim_id t.memo g kid then begin
          wstats.Search_stats.par_goals_claimed <-
            wstats.Search_stats.par_goals_claimed + 1;
          let required, excluded = key in
          let goal = new_goal wt ~group:g ~required ~excluded ~limit { answer = None } in
          let run = fresh_run wt ~root:g ~required ~limit goal in
          push run (T_optimize_group goal);
          (* We just claimed the goal ourselves: let this run compute it. *)
          ctx.wk_force <- Some (g, kid);
          let completed = step_through run in
          ctx.wk_force <- None;
          if not completed then park run
        end
      in
      let next_global () =
        let i = Atomic.fetch_and_add next 1 in
        if i >= Array.length seeds then None else Some seeds.(i)
      in
      let finished = ref false in
      (* Consecutive sweeps in which nothing advanced. While waiting,
         yield the processor — the claim holder may share our core (it
         certainly does on a single-core host), and busy-forcing its
         territory is how waiting degenerates into duplicated search.
         Only after sustained futility (a cross-worker wait cycle) does
         the worker force-compute a blocking goal to guarantee
         progress. *)
      let idle_sweeps = ref 0 in
      while not !finished do
        if past_deadline () then finished := true
        else begin
          (* Poll suspended runs first: resuming one whose blocking goal
             has been published both finishes real work and releases
             claims other workers may be waiting on. A still-blocked
             poll costs exactly one (re-pushed) task. *)
          let progressed = ref false in
          let n = Queue.length blocked in
          for _ = 1 to n do
            let run, _ = Queue.pop blocked in
            let before = run.r_tasks in
            if step_through run then progressed := true
            else begin
              park run;
              if run.r_tasks > before + 1 then progressed := true
            end
          done;
          match next_global () with
          | Some s ->
            idle_sweeps := 0;
            launch s
          | None ->
            if Queue.is_empty blocked then finished := true
            else if !progressed then idle_sweeps := 0
            else begin
              incr idle_sweeps;
              if !idle_sweeps > 50 then begin
                (* Nothing runnable and no poll advanced for a long
                   stretch: duplicate the first blocked run's blocking
                   goal to guarantee system-wide progress. *)
                idle_sweeps := 0;
                let run, bg = Queue.pop blocked in
                ctx.wk_force <- Some bg;
                if not (step_through run) then park run;
                ctx.wk_force <- None
              end
              else Unix.sleepf 0.0002
            end
        end
      done;
      (* Runs still parked at the deadline are being thrown away. *)
      Queue.iter (fun (run, _) -> abandon_run_spans run) blocked;
      Option.iter (fun sp -> Obs.Trace.close sp) phase_span;
      wstats
    in
    let workers = List.init domains (fun i -> Domain.spawn (fun () -> work i)) in
    List.iter (fun d -> Search_stats.merge ~into:t.stats (Domain.join d)) workers

  (* The stealing scheduler (see {!scheduler}): seeds are dealt
     round-robin into per-domain Chase–Lev deques; each worker pops its
     own deque bottom-up (shared subgoals publish before the larger
     goals that consult them) and steals the top — the largest pending
     goals — from others when its own runs dry. Claim acquisition is
     fused with the winner consultation inside [optimize_group_init],
     so a goal is computed by exactly one run; a run that loses the
     claim parks, and wakes when the shared publication tick moves
     (every publish and claim release bumps it). There is no forcing
     valve: a genuine cross-worker wait cycle — every worker idle,
     nothing published across repeated backoffs — is broken by
     abandoning one parked run and releasing its claims (a handful of
     re-claimable goals), never by duplicating a computation. *)
  let par_phase_stealing t ~domains ~deadline ~cap seeds =
    let deques = Array.init domains (fun _ -> Deque.create ()) in
    (* Deal bottom-up-ordered seeds round-robin, but push each share in
       top-down order: the owner then pops bottom-up while thieves
       steal from the top — the topmost, largest goals. *)
    let shares = Array.make domains [] in
    List.iteri (fun i s -> shares.(i mod domains) <- s :: shares.(i mod domains)) seeds;
    Array.iteri (fun w share -> List.iter (Deque.push deques.(w)) share) shares;
    let tick = Atomic.make 0 in
    let idle = Atomic.make 0 in
    let work widx =
      let wstats = Search_stats.create () in
      let ctx =
        {
          wk_cap = cap;
          wk_blocked = None;
          wk_force = None;
          wk_stealing = true;
          wk_tick = tick;
        }
      in
      let wbuf =
        Option.map (fun tr -> Obs.Trace.buf tr ~track:(widx + 1)) t.config.tracer
      in
      let wpbuf =
        Option.map (fun pr -> Obs.Profile.buf pr ~track:(widx + 1)) t.config.profiler
      in
      let wring =
        Option.map
          (fun fr -> Obs.Flight_recorder.ring fr ~track:(widx + 1))
          t.config.recorder
      in
      let wt =
        {
          t with
          stats = wstats;
          mode = Worker ctx;
          tr_buf = wbuf;
          pr_buf = wpbuf;
          fr_ring = wring;
        }
      in
      let phase_span =
        Option.map
          (fun buf -> Obs.Trace.open_span buf ~cat:"phase" "parallel-worker")
          wbuf
      in
      let past_deadline () =
        match deadline with None -> false | Some d -> Unix.gettimeofday () >= d
      in
      (* Suspended runs, each paired with the goal it last blocked on. *)
      let blocked : (run * (Memo.group * int)) Queue.t = Queue.create () in
      (* Release every claim a run still holds (its in-progress marks
         are exactly its claimed-but-unpublished goals) and bump the
         tick so runs parked on them re-poll and re-claim. *)
      let release_run_claims run =
        let released = ref false in
        Hashtbl.iter
          (fun g tbl ->
            Memo.Id_tbl.iter
              (fun id () ->
                released := true;
                Memo.release_claim_id t.memo g id)
              tbl)
          run.r_marks;
        Hashtbl.reset run.r_marks;
        if !released then Atomic.incr tick
      in
      (* Step a run until it completes (true) or suspends (false). *)
      let step_through run =
        let rec go () =
          ctx.wk_blocked <- None;
          if not (step run) then true
          else if ctx.wk_blocked = None then go ()
          else false
        in
        try go ()
        with Par_unexplored ->
          run.r_stack <- [];
          release_run_claims run;
          abandon_run_spans run;
          true
      in
      let abandon_run run =
        run.r_stack <- [];
        release_run_claims run;
        abandon_run_spans run
      in
      let park run = Queue.add (run, Option.get ctx.wk_blocked) blocked in
      let launch (g, key, limit) =
        let required, excluded = key in
        let goal = new_goal wt ~group:g ~required ~excluded ~limit { answer = None } in
        let run = fresh_run wt ~root:g ~required ~limit goal in
        push run (T_optimize_group goal);
        if not (step_through run) then park run
      in
      let my = deques.(widx) in
      (* One probe sweep over the other deques; [Retry] re-probes the
         same victim (another thief advanced it), [Empty] moves on. *)
      let try_steal () =
        let res = ref None in
        let v = ref 1 in
        while !res = None && !v < domains do
          match Deque.steal deques.((widx + !v) mod domains) with
          | Deque.Stolen s ->
            wstats.Search_stats.par_steals <- wstats.Search_stats.par_steals + 1;
            Option.iter
              (fun buf ->
                (* [phase] cat: a steal is a scheduler event, not an
                   engine task (task spans must tally with the task
                   counters). *)
                let sp =
                  Obs.Trace.open_span buf ~cat:"phase"
                    ~args:[ ("victim", string_of_int ((widx + !v) mod domains)) ]
                    "steal"
                in
                Obs.Trace.close ~outcome:"stolen" sp)
              wbuf;
            res := Some s
          | Deque.Retry -> ()
          | Deque.Empty -> incr v
        done;
        !res
      in
      (* Event-driven wakeup: a parked run can only have become
         runnable if the tick moved since we last polled (every
         publication — and claim release — happens after the winner
         read that parked us, so its bump is never missed). *)
      let last_tick = ref (-1) in
      (* Consecutive backoffs during which every worker was idle and
         nothing published: evidence of a cross-worker wait cycle. *)
      let futile = ref 0 in
      let finished = ref false in
      while not !finished do
        if past_deadline () then finished := true
        else begin
          let now = Atomic.get tick in
          if now <> !last_tick && not (Queue.is_empty blocked) then begin
            last_tick := now;
            futile := 0;
            let n = Queue.length blocked in
            for _ = 1 to n do
              let run, _ = Queue.pop blocked in
              if not (step_through run) then park run
            done
          end;
          match Deque.pop my with
          | Some s ->
            futile := 0;
            launch s
          | None -> (
            match try_steal () with
            | Some s ->
              futile := 0;
              launch s
            | None ->
              if Queue.is_empty blocked then finished := true
              else begin
                (* Backoff: nothing runnable. Sleep on the tick — the
                   claim holders may share our core, and yielding is
                   what lets them publish. *)
                wstats.Search_stats.par_backoffs <-
                  wstats.Search_stats.par_backoffs + 1;
                Atomic.incr idle;
                Unix.sleepf 0.0002;
                let stalled =
                  Atomic.get idle = domains && Atomic.get tick = !last_tick
                in
                Atomic.decr idle;
                if stalled then incr futile else futile := 0;
                if !futile > 25 then begin
                  (* Every worker idle and nothing published across
                     repeated backoffs: a wait cycle. Abandon our
                     oldest parked run, releasing its claims (which
                     bumps the tick and wakes the others); the goals it
                     held are re-claimable, nothing was duplicated, and
                     whatever is still unanswered at phase end falls to
                     the sequential finishing pass. *)
                  futile := 0;
                  let run, _ = Queue.pop blocked in
                  abandon_run run;
                  (* The stall consensus abandoned a parked run: an
                     abnormal event worth a post-mortem. *)
                  Option.iter
                    (fun fr ->
                      Obs.Flight_recorder.trigger fr ~reason:"stall-abandon")
                    t.config.recorder
                end
              end)
        end
      done;
      (* Runs still parked at the deadline are being thrown away. *)
      Queue.iter (fun (run, _) -> abandon_run run) blocked;
      Option.iter (fun sp -> Obs.Trace.close sp) phase_span;
      wstats
    in
    let workers = List.init domains (fun i -> Domain.spawn (fun () -> work i)) in
    List.iter (fun d -> Search_stats.merge ~into:t.stats (Domain.join d)) workers

  let par_phase t ~domains ~deadline ~cap seeds =
    match t.config.scheduler with
    | Seeded -> par_phase_seeded t ~domains ~deadline ~cap seeds
    | Stealing -> par_phase_stealing t ~domains ~deadline ~cap seeds

  (** {!optimize} with intra-query parallelism. With [domains = n > 1]
      the optimization runs in four phases:

      {ol
      {- exploration runs to a fixpoint sequentially, freezing the
         memo's logical structure (workers never fire transformation
         rules, so no equivalence classes merge under their feet);}
      {- the sequential engine runs as usual up to its {e first}
         complete candidate plan — the incumbent, whose cost bounds
         every limit the rest of the search can use;}
      {- [n] OCaml domains optimize the root's remaining subgoals —
         sibling input goals and enforcer goals — against the shared
         memo under the incumbent's cost limit, claiming goals so
         duplicates wait instead of racing, offering their own pending
         subgoals to a shared help-first pool, and publishing winners
         under lock stripes with monotonic merge;}
      {- the paused sequential run resumes over the warm winner tables
         and computes the final answer.}}

      The final plan and cost are bit-identical to the sequential engine
      at any domain count — phase 3 only publishes entries the
      sequential engine itself would record (true optima, true bounded
      failures), so the resumed run consults warm answers but can never
      be steered to a different result. Only effort statistics (tasks,
      hits, claimed and duplicated goals) vary with scheduling.
      [domains <= 1] is exactly {!optimize}. Budgets with [domains > 1]
      bound the wall clock across all phases but the task count only in
      the sequential phases. With a [tracer] configured, every phase is
      covered: the sequential engine records on track 0 under [phase]
      spans, each worker on its own track, and the collector merges the
      buffers post-run. *)
  let run ?(limit = M.cost_infinite) ?budget ?(domains = 1) t (query : M.op Tree.t)
      ~required : outcome =
    if domains <= 1 then optimize ~limit ?budget t query ~required
    else begin
      let t0 = Unix.gettimeofday () in
      let deadline =
        let b = Option.value budget ~default:t.config.budget in
        Option.map (fun ms -> t0 +. (ms /. 1000.)) b.max_millis
      in
      let past_deadline () =
        match deadline with None -> false | Some d -> Unix.gettimeofday () >= d
      in
      (* Bracket each of the four phases in a [phase] span on track 0.
         Monomorphic on purpose: every phase body returns unit. *)
      let phase name (f : unit -> unit) =
        match t.tr_buf with
        | None -> f ()
        | Some buf ->
          let sp = Obs.Trace.open_span buf ~cat:"phase" name in
          f ();
          Obs.Trace.close sp
      in
      let root = insert_query t query in
      let key = (required, None) in
      let answered =
        match Memo.winner t.memo root key with
        | Some { w_plan = Some p; _ } -> (not t.config.pruning) || cost_le p.p_cost limit
        | Some { w_plan = None; w_bound } -> cost_le limit w_bound
        | None -> false
      in
      if not answered then begin
        phase "explore" (fun () -> explore_reachable t root ~required ~limit);
        Memo.compress_paths t.memo
      end;
      let r = start ~limit t query ~required in
      if not answered then begin
        (* Sequential prefix: drive the engine to its first complete
           candidate. Promise ordering makes this a near-greedy descent,
           a small fraction of the total search. *)
        phase "prefix" (fun () ->
            while r.r_stack <> [] && r.r_goal.gs_best = None && not (past_deadline ()) do
              ignore (step r : bool)
            done);
        match r.r_goal.gs_best with
        | Some incumbent when r.r_stack <> [] && not (past_deadline ()) ->
          (* The root's move list is already assembled and mid-pursuit
             with its bound tightened to the incumbent's cost: the goals
             its remaining moves will demand, at the limits
             branch-and-bound grants them, are the parallel seeds. *)
          let seeds =
          dedup_seeds (seeds_of_moves t r.r_goal (List.map snd r.r_goal.gs_moves))
        in
          if seeds <> [] then begin
            Memo.reset_claims t.memo;
            phase "parallel" (fun () ->
                par_phase t ~domains ~deadline ~cap:incumbent.p_cost seeds)
          end
        | _ -> ()
      end;
      (* Charge the exploration, prefix, and parallel phases against the
         run's wall clock so a time budget bounds the whole
         optimization, not just the finishing pass. *)
      r.r_millis <- (Unix.gettimeofday () -. t0) *. 1000.;
      phase "finish" (fun () -> ignore (resume ?budget r : status));
      outcome_of r
    end

  (* Render the memo: every equivalence class with its logical
     multi-expressions and the winners recorded per optimization goal —
     the paper's "hash table of expressions and equivalence classes"
     made visible for debugging and teaching. *)
  let pp_memo ppf t =
    List.iter
      (fun g ->
        let mexprs = Memo.mexprs t.memo g in
        if mexprs <> [] then begin
          Format.fprintf ppf "group %d:@\n" g;
          List.iter
            (fun (m : Memo.mexpr) ->
              Format.fprintf ppf "  %s(%s)@\n" (M.op_name m.op)
                (String.concat ", " (List.map string_of_int m.inputs)))
            mexprs
        end)
      (Memo.roots t.memo)

  let pp_plan ppf (p : plan_tree) =
    let rec go depth node =
      Format.fprintf ppf "%s%s  [%s; cost %s]" (String.make depth ' ')
        (M.alg_name node.alg) (M.pp_to_string node.props) (M.cost_to_string node.cost);
      List.iter
        (fun c ->
          Format.pp_print_newline ppf ();
          go (depth + 2) c)
        node.children
    in
    go 0 p
end
