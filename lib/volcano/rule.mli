(** Rules: the paper's two rule kinds, with patterns matched against the
    memo and condition code folded into the apply functions.

    A {!pattern} describes the operator shape a rule fires on. The
    search engine enumerates {!binding}s — operator trees whose leaves
    are references to memo equivalence classes — matching a pattern,
    then hands each binding to the rule.

    - A {e transformation rule} (algebraic equivalence, §2.2) maps a
      binding to zero or more equivalent logical bindings. Returning
      [[]] is how condition code rejects a match.
    - An {e implementation rule} maps a binding (plus the required
      physical property vector) to algorithm choices. Each choice names
      the algorithm, the memo groups serving as its inputs, and one or
      more {e alternative} input property-vector combinations to try —
      the paper's merge-intersection example (§3). The apply function
      plays the role of the paper's applicability function. *)

type 'op pattern =
  | Any  (** matches any equivalence class (binds a group) *)
  | Op of ('op -> bool) * 'op pattern list
      (** matches an operator satisfying the predicate, with sub-patterns
          for each input *)

type group = int
(** Memo equivalence-class identifier. *)

(** An operator tree matched out of the memo: concrete operators at
    the nodes a pattern descended into, equivalence-class references at
    its [Any] leaves. The currency rules are applied to. *)
type 'op binding =
  | Group of group  (** an [Any] leaf: the whole equivalence class *)
  | Node of 'op * 'op binding list  (** a matched operator and its inputs *)

(** A transformation rule: an algebraic equivalence such as join
    commutativity or associativity (paper Figure 3). *)
type ('op, 'lp) transform = {
  t_name : string;  (** for tracing and diagnostics *)
  t_promise : int;  (** higher fires earlier (§3: "order the set of moves by promise") *)
  t_pattern : 'op pattern;
  t_apply : lookup:(group -> 'lp) -> 'op binding -> 'op binding list;
      (** [lookup] exposes logical properties of bound groups to
          condition code (e.g. schema checks for many-sorted algebras). *)
}

(** One algorithm choice produced by an implementation rule. *)
type ('op, 'alg, 'lp, 'pp) impl_choice = {
  c_alg : 'alg;  (** the physical algorithm *)
  c_inputs : group list;  (** memo groups serving as the algorithm's inputs *)
  c_alternatives : 'pp list list;
      (** each element is one full input-requirement vector: one
          property requirement per input, in input order *)
}

(** An implementation rule: maps a (possibly multi-node) logical
    pattern to algorithm choices for a required property vector. *)
type ('op, 'alg, 'lp, 'pp) implement = {
  i_name : string;  (** for tracing and diagnostics *)
  i_promise : int;  (** higher is pursued earlier, as for transforms *)
  i_pattern : 'op pattern;
  i_apply :
    lookup:(group -> 'lp) ->
    required:'pp ->
    'op binding ->
    ('op, 'alg, 'lp, 'pp) impl_choice list;
}

val leaf_groups : 'op binding -> group list
(** Groups bound by [Any] leaves, left to right. *)

val binding_op : 'op binding -> 'op option
(** Root operator, when the binding is a [Node]. *)

val pattern_depth : 'op pattern -> int
(** Longest operator chain the pattern matches ([Any] counts 0): how
    deep exploration must descend into input classes before the rule
    can be offered all its bindings. *)
