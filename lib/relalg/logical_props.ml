type t = {
  schema : Schema.t;
  card : float;
  row_bytes : int;
  distincts : (string * float) list;
  ranges : (string * (float * float)) list;
  relations : string list;
  grouped : bool;
}

let make ~schema ~card ~distincts ?(ranges = []) ?(relations = []) ?(grouped = false) () =
  {
    schema;
    card = Float.max card 0.;
    row_bytes = Schema.row_width schema;
    distincts;
    ranges;
    relations;
    grouped;
  }

let range_of t column =
  let canonical =
    match Schema.resolve t.schema column with
    | name -> name
    | exception Not_found -> column
  in
  List.assoc_opt canonical t.ranges

let canonical_name t column =
  match Schema.resolve t.schema column with
  | name -> name
  | exception Not_found -> column

let distinct_of t column =
  match List.assoc_opt (canonical_name t column) t.distincts with
  | Some d -> Float.min d t.card
  | None -> t.card

let distinct_raw t column = List.assoc_opt (canonical_name t column) t.distincts

let pages ~page_size t =
  Float.max 1. (Float.of_int t.row_bytes *. t.card /. Float.of_int page_size)

let pp ppf t =
  Format.fprintf ppf "card=%.0f width=%dB %a" t.card t.row_bytes Schema.pp t.schema
