(** The physical algebra: algorithms and enforcers from which query
    evaluation plans are composed (paper §2.2). Algorithms implement
    logical operators; enforcers ([Sort], [Hash_dedup]) perform no
    logical data manipulation but establish physical properties. *)

type alg =
  | Table_scan of string
  | Index_scan of string * string list * Expr.t
      (** [Index_scan (table, key columns, range predicate)]: deliver the
          qualifying rows in index-key order — the paper's facility of
          mapping multiple logical operators (a selection over a get)
          onto one physical operator *)
  | Filter of Expr.t
  | Project_cols of string list
  | Nested_loop_join of Expr.t
  | Merge_join of (string * string) list * Expr.t
      (** equi-keys (left col, right col) driving the merge, plus the
          full join predicate (evaluated as residual) *)
  | Hash_join of (string * string) list * Expr.t
  | Hash_join_project of (string * string) list * Expr.t * string list
      (** hash join emitting only the given columns — "a join followed
          by a projection ... implemented in a single procedure"
          (paper §2.2) *)
  | Sort of Sort_order.t  (** enforcer: establishes [order] *)
  | Hash_dedup  (** enforcer: establishes [distinct], destroys [order] *)
  | Sort_dedup of Sort_order.t
      (** enforcer establishing two properties at once (paper §2.2):
          sort-based duplicate removal delivers [order] and [distinct] *)
  | Repartition of string list
      (** exchange enforcer: hash-partition the stream on these columns
          across the workers; destroys sort order *)
  | Gather
      (** exchange enforcer: bring all partitions to one site; destroys
          sort order *)
  | Merge_gather of Sort_order.t
      (** order-preserving exchange: merge sorted partitions into one
          sorted stream at one site *)
  | Merge_union
  | Hash_union
  | Merge_intersect
  | Hash_intersect
  | Merge_difference
  | Hash_difference
  | Stream_aggregate of string list * Logical.agg list
      (** requires input sorted by the grouping keys *)
  | Hash_aggregate of string list * Logical.agg list
  | Materialize of string
      (** multi-query sharing: write the input stream once to the named
          temporary, passing the tuples through unchanged; consumers read
          it back with [Scan_materialized] *)
  | Scan_materialized of string
      (** read a result previously written by [Materialize]; costs like a
          scan of the (usually small) shared intermediate instead of
          recomputing it *)

type plan = {
  alg : alg;
  children : plan list;
}

val arity : alg -> int

val mk : alg -> plan list -> plan
(** @raise Invalid_argument on an arity mismatch. *)

val is_enforcer : alg -> bool

val alg_name : alg -> string

val size : plan -> int

val pp_alg : Format.formatter -> alg -> unit

val pp : Format.formatter -> plan -> unit
(** Multi-line indented tree rendering (EXPLAIN-style). *)

val to_string : plan -> string
