type params = {
  page_bytes : int;
  io_time : float;
  cpu_tuple : float;
  cpu_compare : float;
  cpu_hash : float;
  memory_pages : int;
  workers : int;
  net_tuple : float;
}

(* Calibrated to the paper's regime: relations of 1,200-7,200 records
   of 100 bytes sort within the workspace (no spill I/O), hybrid hash
   join runs without partition files, and hashing a tuple costs several
   comparisons — so merge joins win exactly when sort orders can be
   shared or are required downstream ("interesting orderings"). *)
let default =
  {
    page_bytes = 4096;
    io_time = 0.02;
    cpu_tuple = 2e-5;
    cpu_compare = 2e-6;
    cpu_hash = 3e-5;
    memory_pages = 1024;
    workers = 1;
    net_tuple = 4e-6;
  }

let pages p (props : Logical_props.t) = Logical_props.pages ~page_size:p.page_bytes props

let log2 x = if x <= 2. then 1. else Float.log x /. Float.log 2.

let scan_cost p props =
  Cost.make ~io:(pages p props *. p.io_time) ~cpu:(props.Logical_props.card *. p.cpu_tuple)

let sort_cost p (input : Logical_props.t) =
  (* Single-level merge (paper §4.2): write sorted runs, read them back
     for the merge; free of I/O when the input fits in the workspace. *)
  let pg = pages p input in
  let io = if pg <= Float.of_int p.memory_pages then 0. else 2. *. pg *. p.io_time in
  let n = Float.max input.card 1. in
  Cost.make ~io ~cpu:(n *. (log2 n +. 1.) *. p.cpu_compare)

let cost p (alg : Physical.alg) ~(inputs : Logical_props.t list) ~(output : Logical_props.t) =
  let in1 () = match inputs with [ i ] -> i | _ -> invalid_arg "Cost_model: unary arity" in
  let in2 () =
    match inputs with [ l; r ] -> (l, r) | _ -> invalid_arg "Cost_model: binary arity"
  in
  let out_card = output.Logical_props.card in
  match alg with
  | Physical.Table_scan _ -> scan_cost p output
  | Physical.Index_scan _ ->
    (* Read only the qualifying fraction of the relation, in key order
       (a clustered-index range scan); [output] already reflects the
       predicate's selectivity. One extra page for the index descent. *)
    Cost.make
      ~io:((pages p output +. 1.) *. p.io_time)
      ~cpu:(output.Logical_props.card *. p.cpu_tuple)
  | Physical.Filter _ ->
    let i = in1 () in
    Cost.make ~io:0. ~cpu:((i.card *. p.cpu_compare) +. (out_card *. p.cpu_tuple))
  | Physical.Project_cols _ ->
    let i = in1 () in
    Cost.make ~io:0. ~cpu:(i.card *. p.cpu_tuple)
  | Physical.Nested_loop_join _ ->
    let l, r = in2 () in
    Cost.make ~io:0.
      ~cpu:((l.card *. r.card *. p.cpu_compare) +. (out_card *. p.cpu_tuple))
  | Physical.Merge_join _ ->
    let l, r = in2 () in
    Cost.make ~io:0.
      ~cpu:(((l.card +. r.card) *. p.cpu_compare) +. (out_card *. p.cpu_tuple))
  | Physical.Hash_join _ | Physical.Hash_join_project _ ->
    (* The fused join-and-project (paper §2.2's single-procedure
       join+projection) shares the hash-join cost shape; the saving is
       the avoided separate projection pass. *)
    (* Hybrid hash join without partition files (paper §4.2): build on
       the right input, probe with the left; no spill I/O. *)
    let l, r = in2 () in
    Cost.make ~io:0.
      ~cpu:
        ((r.card *. p.cpu_hash) +. (l.card *. p.cpu_hash) +. (out_card *. p.cpu_tuple))
  | Physical.Sort _ -> sort_cost p (in1 ())
  | Physical.Repartition _ | Physical.Gather ->
    let i = in1 () in
    Cost.make ~io:0. ~cpu:(i.card *. p.net_tuple)
  | Physical.Merge_gather _ ->
    (* Ship every tuple plus one comparison per tuple for the merge of
       the sorted partition streams. *)
    let i = in1 () in
    Cost.make ~io:0. ~cpu:(i.card *. (p.net_tuple +. p.cpu_compare))
  | Physical.Sort_dedup _ ->
    (* Sort plus one comparison pass dropping duplicates. *)
    let i = in1 () in
    Cost.add (sort_cost p i) (Cost.make ~io:0. ~cpu:(i.card *. p.cpu_compare))
  | Physical.Hash_dedup ->
    let i = in1 () in
    Cost.make ~io:0. ~cpu:((i.card *. p.cpu_hash) +. (out_card *. p.cpu_tuple))
  | Physical.Merge_union | Physical.Merge_intersect | Physical.Merge_difference ->
    let l, r = in2 () in
    Cost.make ~io:0.
      ~cpu:(((l.card +. r.card) *. p.cpu_compare) +. (out_card *. p.cpu_tuple))
  | Physical.Hash_union | Physical.Hash_intersect | Physical.Hash_difference ->
    let l, r = in2 () in
    Cost.make ~io:0.
      ~cpu:(((l.card +. r.card) *. p.cpu_hash) +. (out_card *. p.cpu_tuple))
  | Physical.Stream_aggregate _ ->
    let i = in1 () in
    Cost.make ~io:0. ~cpu:((i.card *. p.cpu_compare) +. (out_card *. p.cpu_tuple))
  | Physical.Hash_aggregate _ ->
    let i = in1 () in
    Cost.make ~io:0. ~cpu:((i.card *. p.cpu_hash) +. (out_card *. p.cpu_tuple))
  | Physical.Materialize _ ->
    (* Write the stream to the shared temporary once; the tuples still
       flow through to the parent, so only the write I/O and a per-tuple
       copy are extra. *)
    let i = in1 () in
    Cost.make ~io:(pages p i *. p.io_time) ~cpu:(i.card *. p.cpu_tuple)
  | Physical.Scan_materialized _ ->
    (* Read the stored intermediate back, same shape as a table scan. *)
    scan_cost p output

let rec plan_cost p ~props_of (plan : Physical.plan) =
  let local =
    cost p plan.alg
      ~inputs:(List.map props_of plan.children)
      ~output:(props_of plan)
  in
  List.fold_left (fun acc c -> Cost.add acc (plan_cost p ~props_of c)) local plan.children
