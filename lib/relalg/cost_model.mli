(** Per-algorithm cost functions, parameterized the way the paper's
    experiments are set up (§4.2): costs include both I/O and CPU,
    hybrid hash join proceeds without partition files, and sorting is
    a single-level merge. *)

type params = {
  page_bytes : int;
  io_time : float;  (** seconds per page read or written *)
  cpu_tuple : float;  (** seconds to produce/copy one tuple *)
  cpu_compare : float;  (** seconds per comparison *)
  cpu_hash : float;  (** seconds per hash/probe operation *)
  memory_pages : int;  (** workspace available to sort before spilling *)
  workers : int;  (** degree of parallelism for partitioned execution *)
  net_tuple : float;  (** seconds to ship one tuple through an exchange *)
}

val log2 : float -> float
(** The sort-cost logarithm, clamped to at least one level. Exposed so
    cost lower bounds can reproduce the sort-cost floor with the exact
    same floating-point expression as {!cost}. *)

val default : params
(** Calibrated so a scan of a paper-sized relation (1,200–7,200 records
    of 100 bytes) costs milliseconds, like the ~12 MIPS SparcStation-1
    setting of Figure 4. *)

val cost :
  params -> Physical.alg -> inputs:Logical_props.t list -> output:Logical_props.t -> Cost.t
(** Local cost of running the algorithm once, excluding its inputs'
    costs (the search engine sums those per Figure 2). *)

val plan_cost :
  params ->
  props_of:(Physical.plan -> Logical_props.t) ->
  Physical.plan ->
  Cost.t
(** Bottom-up total cost of a complete plan, for validation against the
    search engine's incremental accounting. [props_of] supplies the
    logical properties of each subplan's output. *)
