(** Logical properties of an equivalence class: facts derivable from
    any expression in the class, independent of the plan chosen
    (paper §2.2). They encapsulate the schema, cardinality estimate,
    and per-column distinct-value estimates used by selectivity and
    cost functions. *)

type t = {
  schema : Schema.t;
  card : float;  (** estimated output cardinality *)
  row_bytes : int;  (** estimated stored width of one tuple *)
  distincts : (string * float) list;  (** estimated distinct values per column *)
  ranges : (string * (float * float)) list;
      (** known numeric [min, max] per column, for range selectivity *)
  relations : string list;
      (** base relations contributing to this result, for rule condition
          code (e.g. left-deep restrictions, predicate placement) *)
  grouped : bool;
      (** whether any aggregation (group-by) contributed to this result.
          Cost lower bounds consult this: an aggregate can deliver its
          key order without a sort, so sort-cost floors must not be
          asserted over grouped expressions. *)
}

val make :
  schema:Schema.t ->
  card:float ->
  distincts:(string * float) list ->
  ?ranges:(string * (float * float)) list ->
  ?relations:string list ->
  ?grouped:bool ->
  unit ->
  t

val range_of : t -> string -> (float * float) option

val canonical_name : t -> string -> string
(** Resolve a possibly-unqualified column name against the schema,
    returning it unchanged when it does not resolve. *)

val distinct_of : t -> string -> float
(** Distinct-count estimate for a column, clamped by [card], defaulting
    to [card] when the column is untracked (a fresh or computed
    column). *)

val distinct_raw : t -> string -> float option
(** The unclamped, inherited distinct count. Join selectivity must use
    this: it is invariant across the equivalent expressions of a memo
    class, so cardinality estimates are derivation-path-independent and
    every plan for the same subexpression is judged consistently. *)

val pages : page_size:int -> t -> float
(** Estimated pages occupied when materialized. *)

val pp : Format.formatter -> t -> unit
