type alg =
  | Table_scan of string
  | Index_scan of string * string list * Expr.t
  | Filter of Expr.t
  | Project_cols of string list
  | Nested_loop_join of Expr.t
  | Merge_join of (string * string) list * Expr.t
  | Hash_join of (string * string) list * Expr.t
  | Hash_join_project of (string * string) list * Expr.t * string list
  | Sort of Sort_order.t
  | Hash_dedup
  | Sort_dedup of Sort_order.t
  | Repartition of string list
  | Gather
  | Merge_gather of Sort_order.t
  | Merge_union
  | Hash_union
  | Merge_intersect
  | Hash_intersect
  | Merge_difference
  | Hash_difference
  | Stream_aggregate of string list * Logical.agg list
  | Hash_aggregate of string list * Logical.agg list
  | Materialize of string
  | Scan_materialized of string

type plan = {
  alg : alg;
  children : plan list;
}

let arity = function
  | Table_scan _ | Index_scan _ | Scan_materialized _ -> 0
  | Filter _ | Project_cols _ | Sort _ | Hash_dedup | Sort_dedup _ | Repartition _
  | Gather | Merge_gather _ | Stream_aggregate _ | Hash_aggregate _ | Materialize _ -> 1
  | Nested_loop_join _ | Merge_join _ | Hash_join _ | Hash_join_project _ | Merge_union
  | Hash_union | Merge_intersect | Hash_intersect | Merge_difference | Hash_difference -> 2

let mk alg children =
  if List.length children <> arity alg then invalid_arg "Physical.mk: arity mismatch"
  else { alg; children }

let is_enforcer = function
  | Sort _ | Hash_dedup | Sort_dedup _ | Repartition _ | Gather | Merge_gather _ -> true
  | Table_scan _ | Index_scan _ | Filter _ | Project_cols _ | Nested_loop_join _
  | Merge_join _ | Hash_join _ | Hash_join_project _ | Merge_union | Hash_union
  | Merge_intersect | Hash_intersect | Merge_difference | Hash_difference
  | Stream_aggregate _ | Hash_aggregate _ | Materialize _ | Scan_materialized _ -> false

let keys_to_string keys =
  String.concat ", " (List.map (fun (l, r) -> l ^ "=" ^ r) keys)

let alg_name = function
  | Table_scan t -> "table_scan(" ^ t ^ ")"
  | Index_scan (t, cols, pred) ->
    Printf.sprintf "index_scan(%s on %s)[%s]" t (String.concat ", " cols)
      (Expr.to_string pred)
  | Filter p -> "filter[" ^ Expr.to_string p ^ "]"
  | Project_cols cols -> "project[" ^ String.concat ", " cols ^ "]"
  | Nested_loop_join p -> "nested_loop_join[" ^ Expr.to_string p ^ "]"
  | Merge_join (keys, _) -> "merge_join[" ^ keys_to_string keys ^ "]"
  | Hash_join (keys, _) -> "hybrid_hash_join[" ^ keys_to_string keys ^ "]"
  | Hash_join_project (keys, _, cols) ->
    Printf.sprintf "hash_join_project[%s -> %s]" (keys_to_string keys)
      (String.concat ", " cols)
  | Sort order -> "sort[" ^ Sort_order.to_string order ^ "]"
  | Hash_dedup -> "hash_dedup"
  | Sort_dedup order -> "sort_dedup[" ^ Sort_order.to_string order ^ "]"
  | Repartition cols -> "exchange_repartition[" ^ String.concat ", " cols ^ "]"
  | Gather -> "exchange_gather"
  | Merge_gather order -> "exchange_merge_gather[" ^ Sort_order.to_string order ^ "]"
  | Merge_union -> "merge_union"
  | Hash_union -> "hash_union"
  | Merge_intersect -> "merge_intersect"
  | Hash_intersect -> "hash_intersect"
  | Merge_difference -> "merge_difference"
  | Hash_difference -> "hash_difference"
  | Stream_aggregate (keys, _) -> "stream_aggregate[" ^ String.concat ", " keys ^ "]"
  | Hash_aggregate (keys, _) -> "hash_aggregate[" ^ String.concat ", " keys ^ "]"
  | Materialize t -> "materialize(" ^ t ^ ")"
  | Scan_materialized t -> "scan_materialized(" ^ t ^ ")"

let rec size p = 1 + List.fold_left (fun acc c -> acc + size c) 0 p.children

let pp_alg ppf alg = Format.pp_print_string ppf (alg_name alg)

let rec pp_indent ppf depth p =
  Format.fprintf ppf "%s%a" (String.make (2 * depth) ' ') pp_alg p.alg;
  List.iter
    (fun c -> Format.fprintf ppf "@\n%a" (fun ppf -> pp_indent ppf (depth + 1)) c)
    p.children

let pp ppf p = pp_indent ppf 0 p

let to_string p = Format.asprintf "%a" pp p
