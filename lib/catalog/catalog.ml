module Stats = Stats
module Selectivity = Selectivity
module Plan_schema = Plan_schema

type table = {
  name : string;
  schema : Relalg.Schema.t;
  tuples : Relalg.Tuple.t array;
  mutable stats : Stats.t;
  mutable stats_version : int;
  stored_order : Relalg.Sort_order.t;
  stored_partitioning : Relalg.Phys_prop.partitioning;
  mutable indexes : string list list;
  materialized : bool;
}

type t = {
  tables : (string, table) Hashtbl.t;
  mutable catalog_version : int;
}

let create () = { tables = Hashtbl.create 16; catalog_version = 0 }

let version registry = registry.catalog_version

let bump registry = registry.catalog_version <- registry.catalog_version + 1

let qualify_schema name schema =
  Array.map
    (fun (a : Relalg.Schema.attribute) ->
      if String.contains a.name '.' then a
      else { a with name = Relalg.Schema.qualify name a.name })
    schema

let add registry ~name ~schema ?(stored_order = [])
    ?(stored_partitioning = Relalg.Phys_prop.Singleton) tuples =
  if Hashtbl.mem registry.tables name then
    invalid_arg (Printf.sprintf "Catalog.add: table %S already exists" name);
  let schema = qualify_schema name schema in
  let stats = Stats.of_tuples schema tuples in
  let table =
    {
      name;
      schema;
      tuples;
      stats;
      stats_version = 0;
      stored_order;
      stored_partitioning;
      indexes = [];
      materialized = false;
    }
  in
  Hashtbl.add registry.tables name table;
  bump registry;
  table

(* A derived relation backing a shared materialized intermediate: no
   stored tuples, statistics synthesized from the logical properties of
   the expression it caches, so property derivation and selectivity over
   it mirror the original subexpression. Column names keep their
   original qualification so predicates above the replaced subtree still
   resolve. *)
let add_materialized registry ~name ~(props : Relalg.Logical_props.t)
    ?(stored_order = []) () =
  if Hashtbl.mem registry.tables name then
    invalid_arg (Printf.sprintf "Catalog.add_materialized: table %S already exists" name);
  let columns =
    Array.to_list props.schema
    |> List.map (fun (a : Relalg.Schema.attribute) ->
           let n_distinct =
             match Relalg.Logical_props.distinct_raw props a.name with
             | Some d -> Float.min d props.card
             | None -> props.card
           in
           let min_value, max_value =
             match Relalg.Logical_props.range_of props a.name with
             | Some (lo, hi) ->
               let v x =
                 match a.ty with
                 | Relalg.Schema.TInt -> Relalg.Value.Int (Float.to_int x)
                 | _ -> Relalg.Value.Float x
               in
               (Some (v lo), Some (v hi))
             | None -> (None, None)
           in
           ( a.name,
             {
               Stats.n_distinct;
               null_count = 0.;
               min_value;
               max_value;
               histogram = None;
             } ))
  in
  let table =
    {
      name;
      schema = props.schema;
      tuples = [||];
      stats = { Stats.row_count = props.card; columns };
      stats_version = 0;
      stored_order;
      stored_partitioning = Relalg.Phys_prop.Singleton;
      indexes = [];
      materialized = true;
    }
  in
  Hashtbl.add registry.tables name table;
  bump registry;
  table

let remove registry name =
  if Hashtbl.mem registry.tables name then begin
    Hashtbl.remove registry.tables name;
    bump registry
  end

let find registry name = Hashtbl.find registry.tables name

let add_index registry ~table columns =
  let t = find registry table in
  let qualified = List.map (Relalg.Schema.resolve t.schema) columns in
  if not (List.mem qualified t.indexes) then begin
    t.indexes <- qualified :: t.indexes;
    bump registry
  end

let stats_version registry name = (find registry name).stats_version

let update_stats registry ~table ?stats () =
  let t = find registry table in
  t.stats <- (match stats with Some s -> s | None -> Stats.of_tuples t.schema t.tuples);
  t.stats_version <- t.stats_version + 1;
  bump registry

let find_opt registry name = Hashtbl.find_opt registry.tables name

let mem registry name = Hashtbl.mem registry.tables name

let tables registry =
  Hashtbl.fold (fun _ t acc -> t :: acc) registry.tables []
  |> List.sort (fun a b -> String.compare a.name b.name)

let base_props table =
  let distincts =
    List.map (fun (col, (s : Stats.column_stats)) -> (col, s.n_distinct)) table.stats.columns
  in
  let ranges =
    List.filter_map
      (fun (col, (s : Stats.column_stats)) ->
        match s.min_value, s.max_value with
        | Some mn, Some mx ->
          (match Relalg.Value.to_float mn, Relalg.Value.to_float mx with
           | Some lo, Some hi -> Some (col, (lo, hi))
           | _, _ -> None)
        | _, _ -> None)
      table.stats.columns
  in
  Relalg.Logical_props.make ~schema:table.schema ~card:table.stats.row_count ~distincts
    ~ranges ~relations:[ table.name ] ()

type column_spec =
  | Serial
  | Uniform_int of int * int
  | Uniform_float of float * float
  | Choice of string list

let spec_type = function
  | Serial | Uniform_int _ -> Relalg.Schema.TInt
  | Uniform_float _ -> Relalg.Schema.TFloat
  | Choice _ -> Relalg.Schema.TStr

let add_synthetic registry ~name ~columns ?(widths = []) ~rows ~seed () =
  let rng = Random.State.make [| seed; Hashtbl.hash name |] in
  let gen_value row = function
    | Serial -> Relalg.Value.Int row
    | Uniform_int (lo, hi) -> Relalg.Value.Int (lo + Random.State.int rng (hi - lo + 1))
    | Uniform_float (lo, hi) ->
      Relalg.Value.Float (lo +. Random.State.float rng (hi -. lo))
    | Choice options ->
      Relalg.Value.Str (List.nth options (Random.State.int rng (List.length options)))
  in
  let schema =
    Array.of_list
      (List.map
         (fun (col, spec) ->
           Relalg.Schema.attribute ?width:(List.assoc_opt col widths) col (spec_type spec))
         columns)
  in
  let tuples =
    Array.init rows (fun row ->
        Array.of_list (List.map (fun (_, spec) -> gen_value row spec) columns))
  in
  add registry ~name ~schema tuples

(** Output schema of a physical plan against this catalog. *)
let plan_schema registry plan =
  Plan_schema.of_plan (fun name -> (find registry name).schema) plan
