(** The catalog: named stored relations with their schemas, data, and
    statistics. The data itself lives here too — the execution engine
    reads it through a paged storage view. *)

module Stats = Stats
module Selectivity = Selectivity
module Plan_schema = Plan_schema

type table = {
  name : string;
  schema : Relalg.Schema.t;  (** columns carry qualified names ["table.col"] *)
  tuples : Relalg.Tuple.t array;
  mutable stats : Stats.t;  (** refreshed through {!update_stats} *)
  mutable stats_version : int;
      (** bumped on every {!update_stats}; plan caches stamp their
          entries with it and invalidate on mismatch *)
  stored_order : Relalg.Sort_order.t;
      (** physical order of the stored data ([[]] = unordered heap) *)
  stored_partitioning : Relalg.Phys_prop.partitioning;
      (** how the stored data is distributed across workers
          ([Singleton] = one site) *)
  mutable indexes : string list list;
      (** clustered-style indexes: each entry is a key-column list; an
          index delivers its key order and supports range scans on its
          leading column *)
  materialized : bool;
      (** a derived relation registered by the multi-query optimizer to
          stand for a shared materialized intermediate; has no stored
          tuples, and [Get] over it implements as [Scan_materialized] *)
}

type t

val create : unit -> t

val add :
  t ->
  name:string ->
  schema:Relalg.Schema.t ->
  ?stored_order:Relalg.Sort_order.t ->
  ?stored_partitioning:Relalg.Phys_prop.partitioning ->
  Relalg.Tuple.t array ->
  table
(** Register a relation; schema column names are qualified with the
    table name if not already. Statistics are computed immediately.
    @raise Invalid_argument if the name is already taken. *)

val add_materialized :
  t ->
  name:string ->
  props:Relalg.Logical_props.t ->
  ?stored_order:Relalg.Sort_order.t ->
  unit ->
  table
(** Register a derived relation standing for a materialized shared
    intermediate (multi-query optimization). It stores no tuples;
    statistics are synthesized from [props] — the logical properties of
    the subexpression it caches — so cardinality and selectivity
    estimates over it match the original subexpression. Column names
    keep their original qualification, so predicates written against
    the replaced subtree still resolve. Bumps the catalog version.
    @raise Invalid_argument if the name is already taken. *)

val remove : t -> string -> unit
(** Drop a relation (no-op when absent); bumps the catalog version when
    something was removed. Used to retract materialized intermediates
    that did not pay off. *)

val find : t -> string -> table
(** @raise Not_found *)

val add_index : t -> table:string -> string list -> unit
(** Register an index on the named table (columns may be unqualified).
    @raise Not_found if the table is absent. *)

(** {1 Statistics versioning}

    Optimizer results are only as good as the statistics they were
    computed from. Every table carries a statistics version stamp, and
    the catalog carries a global version covering every change that can
    affect plan choice (new tables, new indexes, refreshed statistics).
    Long-lived consumers — plan caches, optimizer sessions — record the
    stamps they optimized under and treat a mismatch as staleness. *)

val version : t -> int
(** Global catalog version: bumped by {!add}, {!add_index}, and
    {!update_stats}. *)

val stats_version : t -> string -> int
(** Per-table statistics version.
    @raise Not_found if the table is absent. *)

val update_stats : t -> table:string -> ?stats:Stats.t -> unit -> unit
(** Install new statistics for a table — recomputed from the stored
    tuples when [stats] is omitted — and bump both the table's stats
    version and the catalog version.
    @raise Not_found if the table is absent. *)

val find_opt : t -> string -> table option

val mem : t -> string -> bool

val tables : t -> table list

val base_props : table -> Relalg.Logical_props.t
(** Logical properties of the stored relation (the leaf case of
    property derivation). *)

(** {1 Synthetic data}

    Generator used by tests, examples, and the paper-workload
    benchmarks (relations of 1,200–7,200 records of 100 bytes). *)

type column_spec =
  | Serial  (** 0, 1, 2, ... — a key column *)
  | Uniform_int of int * int  (** inclusive bounds *)
  | Uniform_float of float * float
  | Choice of string list  (** categorical strings *)

val add_synthetic :
  t ->
  name:string ->
  columns:(string * column_spec) list ->
  ?widths:(string * int) list ->
  rows:int ->
  seed:int ->
  unit ->
  table
(** Build and register a table with pseudo-random contents; the same
    seed always yields the same data. *)

val plan_schema : t -> Relalg.Physical.plan -> Relalg.Schema.t
(** Output schema of a physical plan against this catalog. *)
