(** Output schemas of physical plans. Shared by the execution engine
    (cursor schemas) and the optimizer wrapper (to restore the logical
    column order after commutativity has reordered join inputs).
    Parameterized by a table-schema lookup so it stays independent of
    the registry representation. *)

open Relalg

let agg_type (input : Schema.t) (a : Logical.agg) =
  match a.func, a.column with
  | Logical.Count, _ -> Schema.TInt
  | Logical.Avg, _ -> Schema.TFloat
  | (Logical.Sum | Logical.Min | Logical.Max), Some col -> (Schema.find input col).ty
  | (Logical.Sum | Logical.Min | Logical.Max), None ->
    invalid_arg "Plan_schema: aggregate other than count requires a column"

let aggregate_schema input keys aggs =
  let key_schema = Schema.project input keys in
  let agg_schema =
    Array.of_list
      (List.map
         (fun (a : Logical.agg) ->
           Schema.attribute (Logical.agg_result_name a) (agg_type input a))
         aggs)
  in
  Schema.concat key_schema agg_schema

let rec of_plan (table_schema : string -> Schema.t) (p : Physical.plan) : Schema.t =
  let child i = of_plan table_schema (List.nth p.children i) in
  match p.alg with
  | Physical.Table_scan t | Physical.Index_scan (t, _, _) | Physical.Scan_materialized t ->
    table_schema t
  | Physical.Filter _ | Physical.Sort _ | Physical.Hash_dedup | Physical.Sort_dedup _
  | Physical.Repartition _ | Physical.Gather | Physical.Merge_gather _
  | Physical.Materialize _ ->
    child 0
  | Physical.Project_cols cols -> Schema.project (child 0) cols
  | Physical.Nested_loop_join _ | Physical.Merge_join _ | Physical.Hash_join _ ->
    Schema.concat (child 0) (child 1)
  | Physical.Hash_join_project (_, _, cols) ->
    Schema.project (Schema.concat (child 0) (child 1)) cols
  | Physical.Merge_union | Physical.Hash_union | Physical.Merge_intersect
  | Physical.Hash_intersect | Physical.Merge_difference | Physical.Hash_difference ->
    child 0
  | Physical.Stream_aggregate (keys, aggs) | Physical.Hash_aggregate (keys, aggs) ->
    aggregate_schema (child 0) keys aggs
