(** The Volcano iterator interface: every query processing algorithm is
    an operator with open/next/close, consuming and producing streams of
    tuples (Graefe's Volcano execution model, which this optimizer was
    built to feed). *)

type t = {
  schema : Relalg.Schema.t;  (** output schema of the stream *)
  open_ : unit -> unit;
      (** prepare the operator for producing tuples; called exactly once
          before the first [next] *)
  next : unit -> Relalg.Tuple.t option;
      (** deliver the next output tuple, or [None] at end of stream *)
  close : unit -> unit;  (** release operator state after the last [next] *)
}

val of_array : Relalg.Schema.t -> Relalg.Tuple.t array -> t
(** A cursor delivering the array's tuples in order; [open_] rewinds to
    the first tuple. *)

val to_array : t -> Relalg.Tuple.t array
(** Drive a cursor to exhaustion: open, drain, close. *)

val iter : (Relalg.Tuple.t -> unit) -> t -> unit
(** Apply [f] to every tuple of the stream: open, drain, close. *)

val map_stream : Relalg.Schema.t -> (Relalg.Tuple.t -> Relalg.Tuple.t) -> t -> t
(** One-in one-out streaming operator over an input cursor. *)

val filter_stream : (Relalg.Tuple.t -> bool) -> t -> t
(** Streaming selection: deliver only the tuples satisfying the
    predicate; open/close are the input's. *)

val observed : ?at_end:(unit -> unit) -> (Relalg.Tuple.t -> unit) -> t -> t
(** Instrumentation point of the runtime feedback loop: a pass-through
    cursor invoking [f] on every tuple delivered by [next], and [at_end]
    each time [next] reports end of stream. A consumer that stops
    pulling early (a merge join exhausting its other input) never
    triggers [at_end] — that is how the feedback loop distinguishes a
    true cardinality from a lower bound. The wrapped cursor's data flow
    is unchanged — same schema, same tuples, same open/close — so
    executing an instrumented plan is bit-identical to executing the
    plan itself. [f] may raise (the escape hatch aborts a run this
    way); the exception propagates out of [next]. *)
