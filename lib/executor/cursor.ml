type t = {
  schema : Relalg.Schema.t;
  open_ : unit -> unit;
  next : unit -> Relalg.Tuple.t option;
  close : unit -> unit;
}

let of_array schema tuples =
  let pos = ref 0 in
  {
    schema;
    open_ = (fun () -> pos := 0);
    next =
      (fun () ->
        if !pos >= Array.length tuples then None
        else begin
          let t = tuples.(!pos) in
          incr pos;
          Some t
        end);
    close = ignore;
  }

let to_array c =
  c.open_ ();
  let out = ref [] in
  let rec drain () =
    match c.next () with
    | None -> ()
    | Some t ->
      out := t :: !out;
      drain ()
  in
  drain ();
  c.close ();
  Array.of_list (List.rev !out)

let iter f c =
  c.open_ ();
  let rec drain () =
    match c.next () with
    | None -> ()
    | Some t ->
      f t;
      drain ()
  in
  drain ();
  c.close ()

let map_stream schema f input =
  {
    schema;
    open_ = input.open_;
    next = (fun () -> Option.map f (input.next ()));
    close = input.close;
  }

let observed ?(at_end = fun () -> ()) f input =
  {
    input with
    next =
      (fun () ->
        match input.next () with
        | Some t as r ->
          f t;
          r
        | None ->
          at_end ();
          None);
  }

let filter_stream keep input =
  let rec next () =
    match input.next () with
    | None -> None
    | Some t -> if keep t then Some t else next ()
  in
  { schema = input.schema; open_ = input.open_; next; close = input.close }
