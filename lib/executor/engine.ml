(** Compilation of physical plans into Volcano iterators, with page I/O
    accounting that mirrors the cost model's assumptions (paged scans,
    sorts that spill past the workspace, hash joins without partition
    files). *)

open Relalg

type context = {
  catalog : Catalog.t;
  page_bytes : int;
  memory_pages : int;
  io : Io_stats.t;
}

let context ?(page_bytes = 4096) ?(memory_pages = 1024) catalog =
  { catalog; page_bytes; memory_pages; io = Io_stats.create () }

let pages_of ctx schema n_tuples =
  max 1 ((n_tuples * Schema.row_width schema + ctx.page_bytes - 1) / ctx.page_bytes)

let aggregate_schema = Catalog.Plan_schema.aggregate_schema

let schema_of ctx (p : Physical.plan) : Schema.t = Catalog.plan_schema ctx.catalog p

(* ---------------------------------------------------------------------- *)
(* Aggregate evaluation                                                    *)
(* ---------------------------------------------------------------------- *)

type agg_state = {
  mutable rows : int;
  mutable non_null : int;
  mutable sum : Value.t;
  mutable min_v : Value.t option;
  mutable max_v : Value.t option;
}

let agg_state () = { rows = 0; non_null = 0; sum = Value.Null; min_v = None; max_v = None }

let agg_update schema (a : Logical.agg) st tuple =
  st.rows <- st.rows + 1;
  match a.column with
  | None -> ()
  | Some col ->
    let v = Tuple.get tuple (Schema.index_of schema col) in
    if not (Value.is_null v) then begin
      st.non_null <- st.non_null + 1;
      st.sum <- (if Value.is_null st.sum then v else Value.add st.sum v);
      (match st.min_v with
       | None -> st.min_v <- Some v
       | Some m -> if Value.compare v m < 0 then st.min_v <- Some v);
      match st.max_v with
      | None -> st.max_v <- Some v
      | Some m -> if Value.compare v m > 0 then st.max_v <- Some v
    end

let agg_finalize (a : Logical.agg) st : Value.t =
  match a.func with
  | Logical.Count -> Value.Int (match a.column with None -> st.rows | Some _ -> st.non_null)
  | Logical.Sum -> st.sum
  | Logical.Min -> Option.value st.min_v ~default:Value.Null
  | Logical.Max -> Option.value st.max_v ~default:Value.Null
  | Logical.Avg ->
    if st.non_null = 0 then Value.Null
    else begin
      match Value.to_float st.sum with
      | Some s -> Value.Float (s /. float_of_int st.non_null)
      | None -> Value.Null
    end

(* ---------------------------------------------------------------------- *)
(* Operators                                                               *)
(* ---------------------------------------------------------------------- *)

let table_scan ctx name : Cursor.t =
  let table = Catalog.find ctx.catalog name in
  let inner = Cursor.of_array table.schema table.tuples in
  {
    inner with
    Cursor.open_ =
      (fun () ->
        Io_stats.read ctx.io (pages_of ctx table.schema (Array.length table.tuples));
        inner.Cursor.open_ ());
  }

(* A clustered-index range scan, simulated over the in-memory heap:
   deliver the qualifying rows in key order, reading only the pages the
   qualifying fraction occupies (plus one for the index descent). *)
let index_scan ctx name cols pred : Cursor.t =
  let table = Catalog.find ctx.catalog name in
  let keep = Expr.eval_pred table.schema pred in
  let state = ref [||] in
  let pos = ref 0 in
  {
    Cursor.schema = table.schema;
    open_ =
      (fun () ->
        let qualifying = Array.of_seq (Seq.filter keep (Array.to_seq table.tuples)) in
        Array.sort (Sort_order.compare_tuples table.schema (Sort_order.asc cols)) qualifying;
        Io_stats.read ctx.io (1 + pages_of ctx table.schema (Array.length qualifying));
        state := qualifying;
        pos := 0);
    next =
      (fun () ->
        if !pos >= Array.length !state then None
        else begin
          let t = !state.(!pos) in
          incr pos;
          Some t
        end);
    close = (fun () -> state := [||]);
  }

(* Materialize an input, counting spill I/O when it exceeds the sort
   workspace (single-level merge: write runs, read them back). *)
let materialize_for_sort ctx (input : Cursor.t) =
  let tuples = Cursor.to_array input in
  let pages = pages_of ctx input.Cursor.schema (Array.length tuples) in
  if pages > ctx.memory_pages then begin
    Io_stats.write ctx.io pages;
    Io_stats.read ctx.io pages
  end;
  tuples

let sort_op ctx order ~dedup (input : Cursor.t) : Cursor.t =
  let schema = input.Cursor.schema in
  let state = ref [||] in
  let pos = ref 0 in
  {
    Cursor.schema;
    open_ =
      (fun () ->
        let tuples = materialize_for_sort ctx input in
        Array.sort (Sort_order.compare_tuples schema order) tuples;
        let deduped =
          if not dedup then tuples
          else begin
            let out = ref [] in
            Array.iter
              (fun t ->
                match !out with
                | prev :: _ when Tuple.equal prev t -> ()
                | _ -> out := t :: !out)
              tuples;
            Array.of_list (List.rev !out)
          end
        in
        state := deduped;
        pos := 0);
    next =
      (fun () ->
        if !pos >= Array.length !state then None
        else begin
          let t = !state.(!pos) in
          incr pos;
          Some t
        end);
    close = (fun () -> state := [||]);
  }

let hash_dedup_op (input : Cursor.t) : Cursor.t =
  let seen = Hashtbl.create 256 in
  let next () =
    let rec go () =
      match input.Cursor.next () with
      | None -> None
      | Some t ->
        let key = Array.to_list t in
        if Hashtbl.mem seen key then go ()
        else begin
          Hashtbl.add seen key ();
          Some t
        end
    in
    go ()
  in
  {
    Cursor.schema = input.Cursor.schema;
    open_ =
      (fun () ->
        Hashtbl.reset seen;
        input.Cursor.open_ ());
    next;
    close = input.Cursor.close;
  }

let nested_loop_join pred (left : Cursor.t) (right : Cursor.t) : Cursor.t =
  let schema = Schema.concat left.Cursor.schema right.Cursor.schema in
  let keep = Expr.eval_pred schema pred in
  let inner = ref [||] in
  let outer_cur = ref None in
  let inner_pos = ref 0 in
  let rec next () =
    match !outer_cur with
    | None -> begin
      match left.Cursor.next () with
      | None -> None
      | Some l ->
        outer_cur := Some l;
        inner_pos := 0;
        next ()
    end
    | Some l ->
      if !inner_pos >= Array.length !inner then begin
        outer_cur := None;
        next ()
      end
      else begin
        let r = !inner.(!inner_pos) in
        incr inner_pos;
        let joined = Tuple.concat l r in
        if keep joined then Some joined else next ()
      end
  in
  {
    Cursor.schema;
    open_ =
      (fun () ->
        inner := Cursor.to_array right;
        outer_cur := None;
        inner_pos := 0;
        left.Cursor.open_ ());
    next;
    close =
      (fun () ->
        inner := [||];
        left.Cursor.close ());
  }

let hash_join keys pred (left : Cursor.t) (right : Cursor.t) : Cursor.t =
  let schema = Schema.concat left.Cursor.schema right.Cursor.schema in
  let keep = Expr.eval_pred schema pred in
  let lidx = List.map (fun (l, _) -> Schema.index_of left.Cursor.schema l) keys in
  let ridx = List.map (fun (_, r) -> Schema.index_of right.Cursor.schema r) keys in
  let table : (Value.t list, Tuple.t list) Hashtbl.t = Hashtbl.create 1024 in
  let probe_cur = ref None in
  let matches = ref [] in
  let rec next () =
    match !matches with
    | r :: rest -> begin
      matches := rest;
      match !probe_cur with
      | None -> assert false
      | Some l ->
        let joined = Tuple.concat l r in
        if keep joined then Some joined else next ()
    end
    | [] -> begin
      match left.Cursor.next () with
      | None -> None
      | Some l ->
        probe_cur := Some l;
        let key = List.map (fun i -> Tuple.get l i) lidx in
        matches := (match Hashtbl.find_opt table key with Some ts -> ts | None -> []);
        next ()
    end
  in
  {
    Cursor.schema;
    open_ =
      (fun () ->
        Hashtbl.reset table;
        (* Build on the right input. *)
        Cursor.iter
          (fun r ->
            let key = List.map (fun i -> Tuple.get r i) ridx in
            let existing =
              match Hashtbl.find_opt table key with Some ts -> ts | None -> []
            in
            Hashtbl.replace table key (r :: existing))
          right;
        probe_cur := None;
        matches := [];
        left.Cursor.open_ ());
    next;
    close =
      (fun () ->
        Hashtbl.reset table;
        left.Cursor.close ());
  }

(* Streaming merge join over inputs sorted on the equi-key columns:
   buffers one group of equal keys per side, emits their cross product
   (filtered by the residual predicate), then advances both sides. *)
let merge_join keys pred (left : Cursor.t) (right : Cursor.t) : Cursor.t =
  let schema = Schema.concat left.Cursor.schema right.Cursor.schema in
  let keep = Expr.eval_pred schema pred in
  let lidx = List.map (fun (l, _) -> Schema.index_of left.Cursor.schema l) keys in
  let ridx = List.map (fun (_, r) -> Schema.index_of right.Cursor.schema r) keys in
  let key_of idx t = List.map (fun i -> Tuple.get t i) idx in
  let compare_keys k1 k2 =
    List.fold_left2 (fun acc a b -> if acc <> 0 then acc else Value.compare a b) 0 k1 k2
  in
  let lcur = ref None and rcur = ref None in
  let queue = ref [] in
  let advance_l () = lcur := left.Cursor.next () in
  let advance_r () = rcur := right.Cursor.next () in
  (* Collect all consecutive tuples with the given key; leaves the
     cursor state at the first non-matching tuple. *)
  let collect_group cur advance idx key =
    let group = ref [] in
    let rec go () =
      match !cur with
      | Some t when compare_keys (key_of idx t) key = 0 ->
        group := t :: !group;
        advance ();
        go ()
      | Some _ | None -> ()
    in
    go ();
    List.rev !group
  in
  let rec next () =
    match !queue with
    | t :: rest ->
      queue := rest;
      if keep t then Some t else next ()
    | [] -> begin
      match !lcur, !rcur with
      | None, _ | _, None -> None
      | Some l, Some r ->
        let lk = key_of lidx l and rk = key_of ridx r in
        let c = compare_keys lk rk in
        if c < 0 then begin
          advance_l ();
          next ()
        end
        else if c > 0 then begin
          advance_r ();
          next ()
        end
        else begin
          let lgroup = collect_group lcur advance_l lidx lk in
          let rgroup = collect_group rcur advance_r ridx rk in
          queue :=
            List.concat_map (fun lt -> List.map (fun rt -> Tuple.concat lt rt) rgroup) lgroup;
          next ()
        end
    end
  in
  {
    Cursor.schema;
    open_ =
      (fun () ->
        left.Cursor.open_ ();
        right.Cursor.open_ ();
        advance_l ();
        advance_r ();
        queue := []);
    next;
    close =
      (fun () ->
        left.Cursor.close ();
        right.Cursor.close ());
  }

(* Set operations. Hash-based variants treat inputs as bags and emit
   sets; merge-based variants rely on both inputs arriving sorted in the
   same positional order and duplicate-free, as their implementation
   rules require. *)

let hash_union (left : Cursor.t) (right : Cursor.t) : Cursor.t =
  let seen = Hashtbl.create 256 in
  let side = ref `Left in
  let rec next () =
    let candidate =
      match !side with
      | `Left -> begin
        match left.Cursor.next () with
        | Some t -> Some t
        | None ->
          side := `Right;
          right.Cursor.next ()
      end
      | `Right -> right.Cursor.next ()
    in
    match candidate with
    | None -> None
    | Some t ->
      let key = Array.to_list t in
      if Hashtbl.mem seen key then next ()
      else begin
        Hashtbl.add seen key ();
        Some t
      end
  in
  {
    Cursor.schema = left.Cursor.schema;
    open_ =
      (fun () ->
        Hashtbl.reset seen;
        side := `Left;
        left.Cursor.open_ ();
        right.Cursor.open_ ());
    next;
    close =
      (fun () ->
        left.Cursor.close ();
        right.Cursor.close ());
  }

let hash_semi ~anti (left : Cursor.t) (right : Cursor.t) : Cursor.t =
  (* Intersection (anti=false) or difference (anti=true) with set
     output. *)
  let members = Hashtbl.create 256 in
  let emitted = Hashtbl.create 256 in
  let rec next () =
    match left.Cursor.next () with
    | None -> None
    | Some t ->
      let key = Array.to_list t in
      let in_right = Hashtbl.mem members key in
      let wanted = if anti then not in_right else in_right in
      if wanted && not (Hashtbl.mem emitted key) then begin
        Hashtbl.add emitted key ();
        Some t
      end
      else next ()
  in
  {
    Cursor.schema = left.Cursor.schema;
    open_ =
      (fun () ->
        Hashtbl.reset members;
        Hashtbl.reset emitted;
        Cursor.iter (fun t -> Hashtbl.replace members (Array.to_list t) ()) right;
        left.Cursor.open_ ());
    next;
    close = left.Cursor.close;
  }

let merge_setop kind (left : Cursor.t) (right : Cursor.t) : Cursor.t =
  let lcur = ref None and rcur = ref None in
  let compare_tuples (a : Tuple.t) (b : Tuple.t) =
    let n = min (Array.length a) (Array.length b) in
    let rec go i =
      if i >= n then 0
      else begin
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
      end
    in
    go 0
  in
  (* Advance a side past every tuple equal to the one just consumed:
     inputs only need to be sorted, not duplicate-free, and the output
     is a set. *)
  let skip_l l =
    let rec go () =
      lcur := left.Cursor.next ();
      match !lcur with Some t when compare_tuples t l = 0 -> go () | _ -> ()
    in
    go ()
  in
  let skip_r r =
    let rec go () =
      rcur := right.Cursor.next ();
      match !rcur with Some t when compare_tuples t r = 0 -> go () | _ -> ()
    in
    go ()
  in
  let rec next () =
    match !lcur, !rcur with
    | None, None -> None
    | Some l, None -> begin
      match kind with
      | `Union | `Difference ->
        skip_l l;
        Some l
      | `Intersect -> None
    end
    | None, Some r -> begin
      match kind with
      | `Union ->
        skip_r r;
        Some r
      | `Intersect | `Difference -> None
    end
    | Some l, Some r ->
      let c = compare_tuples l r in
      if c < 0 then begin
        skip_l l;
        match kind with `Union | `Difference -> Some l | `Intersect -> next ()
      end
      else if c > 0 then begin
        skip_r r;
        match kind with `Union -> Some r | `Intersect | `Difference -> next ()
      end
      else begin
        skip_l l;
        skip_r r;
        match kind with `Union | `Intersect -> Some l | `Difference -> next ()
      end
  in
  {
    Cursor.schema = left.Cursor.schema;
    open_ =
      (fun () ->
        left.Cursor.open_ ();
        right.Cursor.open_ ();
        lcur := left.Cursor.next ();
        rcur := right.Cursor.next ());
    next;
    close =
      (fun () ->
        left.Cursor.close ();
        right.Cursor.close ());
  }

let hash_aggregate keys aggs (input : Cursor.t) : Cursor.t =
  let in_schema = input.Cursor.schema in
  let schema = aggregate_schema in_schema keys aggs in
  let kidx = List.map (Schema.index_of in_schema) keys in
  let groups : (Value.t list, agg_state list) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let pending = ref [] in
  let finalize key states =
    Array.of_list (key @ List.map2 agg_finalize aggs states)
  in
  {
    Cursor.schema;
    open_ =
      (fun () ->
        Hashtbl.reset groups;
        order := [];
        Cursor.iter
          (fun t ->
            let key = List.map (fun i -> Tuple.get t i) kidx in
            let states =
              match Hashtbl.find_opt groups key with
              | Some s -> s
              | None ->
                let s = List.map (fun _ -> agg_state ()) aggs in
                Hashtbl.add groups key s;
                order := key :: !order;
                s
            in
            List.iter2 (fun a st -> agg_update in_schema a st t) aggs states)
          input;
        pending :=
          List.rev_map (fun key -> finalize key (Hashtbl.find groups key)) !order);
    next =
      (fun () ->
        match !pending with
        | [] -> None
        | t :: rest ->
          pending := rest;
          Some t);
    close = (fun () -> Hashtbl.reset groups);
  }

let stream_aggregate keys aggs (input : Cursor.t) : Cursor.t =
  let in_schema = input.Cursor.schema in
  let schema = aggregate_schema in_schema keys aggs in
  let kidx = List.map (Schema.index_of in_schema) keys in
  let current_key = ref None in
  let states = ref [] in
  let lookahead = ref None in
  let finalize key sts = Array.of_list (key @ List.map2 agg_finalize aggs sts) in
  let rec next () =
    let tuple =
      match !lookahead with
      | Some t ->
        lookahead := None;
        Some t
      | None -> input.Cursor.next ()
    in
    match tuple, !current_key with
    | None, None -> None
    | None, Some key ->
      let out = finalize key !states in
      current_key := None;
      states := [];
      Some out
    | Some t, _ ->
      let key = List.map (fun i -> Tuple.get t i) kidx in
      (match !current_key with
       | Some k when k <> key ->
         (* Group boundary: emit the finished group, keep the tuple. *)
         let out = finalize k !states in
         current_key := Some key;
         states := List.map (fun _ -> agg_state ()) aggs;
         List.iter2 (fun a st -> agg_update in_schema a st t) aggs !states;
         Some out
       | Some _ ->
         List.iter2 (fun a st -> agg_update in_schema a st t) aggs !states;
         next ()
       | None ->
         current_key := Some key;
         states := List.map (fun _ -> agg_state ()) aggs;
         List.iter2 (fun a st -> agg_update in_schema a st t) aggs !states;
         next ())
  in
  {
    Cursor.schema;
    open_ =
      (fun () ->
        current_key := None;
        states := [];
        lookahead := None;
        input.Cursor.open_ ());
    next;
    close = input.Cursor.close;
  }

(* ---------------------------------------------------------------------- *)
(* Plan compilation                                                        *)
(* ---------------------------------------------------------------------- *)

(* One node's operator over already-compiled inputs ([child i] compiles
   the i-th input). Shared by the plain and the instrumented compiler,
   so the two paths cannot diverge. *)
let compile_node ctx ~child (p : Physical.plan) : Cursor.t =
  match p.alg with
  | Physical.Table_scan name -> table_scan ctx name
  | Physical.Index_scan (name, cols, pred) -> index_scan ctx name cols pred
  | Physical.Filter pred ->
    let input = child 0 in
    Cursor.filter_stream (Expr.eval_pred input.Cursor.schema pred) input
  | Physical.Project_cols cols ->
    let input = child 0 in
    let schema = Schema.project input.Cursor.schema cols in
    let idx = List.map (Schema.index_of input.Cursor.schema) cols in
    Cursor.map_stream schema
      (fun t -> Array.of_list (List.map (fun i -> Tuple.get t i) idx))
      input
  | Physical.Nested_loop_join pred -> nested_loop_join pred (child 0) (child 1)
  | Physical.Merge_join (keys, pred) -> merge_join keys pred (child 0) (child 1)
  | Physical.Hash_join (keys, pred) -> hash_join keys pred (child 0) (child 1)
  | Physical.Hash_join_project (keys, pred, cols) ->
    let joined = hash_join keys pred (child 0) (child 1) in
    let schema = Schema.project joined.Cursor.schema cols in
    let idx = List.map (Schema.index_of joined.Cursor.schema) cols in
    Cursor.map_stream schema
      (fun t -> Array.of_list (List.map (fun i -> Tuple.get t i) idx))
      joined
  | Physical.Sort order -> sort_op ctx order ~dedup:false (child 0)
  | Physical.Repartition _ | Physical.Gather | Physical.Merge_gather _ ->
    (* Exchanges are physical-distribution operators; the single-node
       simulation executes them as identity (see DESIGN.md
       substitutions — their cost, not their data flow, is modeled). *)
    child 0
  | Physical.Sort_dedup order -> sort_op ctx order ~dedup:true (child 0)
  | Physical.Hash_dedup -> hash_dedup_op (child 0)
  | Physical.Merge_union -> merge_setop `Union (child 0) (child 1)
  | Physical.Hash_union -> hash_union (child 0) (child 1)
  | Physical.Merge_intersect -> merge_setop `Intersect (child 0) (child 1)
  | Physical.Hash_intersect -> hash_semi ~anti:false (child 0) (child 1)
  | Physical.Merge_difference -> merge_setop `Difference (child 0) (child 1)
  | Physical.Hash_difference -> hash_semi ~anti:true (child 0) (child 1)
  | Physical.Stream_aggregate (keys, aggs) -> stream_aggregate keys aggs (child 0)
  | Physical.Hash_aggregate (keys, aggs) -> hash_aggregate keys aggs (child 0)
  | Physical.Materialize _ ->
    (* The single-node simulation keeps every intermediate in memory, so
       the materialize write is identity at execution time (its cost,
       not its data flow, is modeled — like the exchanges above). *)
    child 0
  | Physical.Scan_materialized name -> table_scan ctx name

let rec compile ctx (p : Physical.plan) : Cursor.t =
  compile_node ctx ~child:(fun i -> compile ctx (List.nth p.children i)) p

(* Feedback hook: like [compile], but [observe] wraps every node's
   cursor (typically with [Cursor.observed] counters). [path] is the
   node's position in the plan tree — [[]] at the root, [path @ [i]]
   for the i-th child — matching [Feedback]'s drift-report keys. *)
let compile_instrumented ctx
    ~(observe : path:int list -> Physical.plan -> Cursor.t -> Cursor.t)
    (p : Physical.plan) : Cursor.t =
  let rec go rev_path p =
    let raw =
      compile_node ctx
        ~child:(fun i -> go (i :: rev_path) (List.nth p.Physical.children i))
        p
    in
    observe ~path:(List.rev rev_path) p raw
  in
  go [] p

let run ?page_bytes ?memory_pages catalog plan =
  let ctx = context ?page_bytes ?memory_pages catalog in
  let cursor = compile ctx plan in
  let tuples = Cursor.to_array cursor in
  Io_stats.produced ctx.io (Array.length tuples);
  (tuples, cursor.Cursor.schema, ctx.io)
