open Oo_algebra
module Rule = Volcano.Rule

module type OO_MODEL =
  Volcano.Signatures.MODEL
    with type op = Oo_algebra.op
     and type alg = Oo_algebra.alg
     and type logical_props = Oo_algebra.props
     and type phys_props = Oo_algebra.phys
     and type cost = Relalg.Cost.t

type params = {
  random_io : float;
  assembly_io : float;
  assembly_setup : float;
  scan_io : float;
  cpu_test : float;
}

let default_params =
  {
    random_io = 0.01;
    assembly_io = 0.002;
    assembly_setup = 1.0;
    scan_io = 0.0005;
    cpu_test = 1e-6;
  }

let path_steps paths = List.fold_left (fun acc p -> acc + List.length p) 0 paths

let is_extent = function Extent _ -> true | O_select _ | Materialize _ -> false

let is_select = function O_select _ -> true | Extent _ | Materialize _ -> false

let is_materialize = function Materialize _ -> true | Extent _ | O_select _ -> false

(* Materialize cascade: MAT(P1, MAT(P2, x)) == MAT(P1 u P2, x). *)
let materialize_merge : (op, props) Rule.transform =
  {
    t_name = "materialize-merge";
    t_promise = 2;
    t_pattern = Rule.Op (is_materialize, [ Rule.Op (is_materialize, [ Rule.Any ]) ]);
    t_apply =
      (fun ~lookup:_ binding ->
        match binding with
        | Rule.Node (Materialize p1, [ Rule.Node (Materialize p2, [ x ]) ]) ->
          let union = Path_set.elements (Path_set.of_list (p1 @ p2)) in
          [ Rule.Node (Materialize union, [ x ]) ]
        | _ -> []);
  }

(* Select and materialize commute in both directions; the memo's
   duplicate detection and in-progress marking neutralize the inverse
   pair (§3: rules that "are inverses of each other"). *)
let select_past_materialize : (op, props) Rule.transform =
  {
    t_name = "select-past-materialize";
    t_promise = 1;
    t_pattern = Rule.Op (is_select, [ Rule.Op (is_materialize, [ Rule.Any ]) ]);
    t_apply =
      (fun ~lookup:_ binding ->
        match binding with
        | Rule.Node (O_select (p, sel), [ Rule.Node (Materialize ps, [ x ]) ]) ->
          [ Rule.Node (Materialize ps, [ Rule.Node (O_select (p, sel), [ x ]) ]) ]
        | _ -> []);
  }

let materialize_past_select : (op, props) Rule.transform =
  {
    t_name = "materialize-past-select";
    t_promise = 1;
    t_pattern = Rule.Op (is_materialize, [ Rule.Op (is_select, [ Rule.Any ]) ]);
    t_apply =
      (fun ~lookup:_ binding ->
        match binding with
        | Rule.Node (Materialize ps, [ Rule.Node (O_select (p, sel), [ x ]) ]) ->
          [ Rule.Node (O_select (p, sel), [ Rule.Node (Materialize ps, [ x ]) ]) ]
        | _ -> []);
  }

let make ~store ?(params = default_params) () : (module OO_MODEL) =
  let module M = struct
    let model_name = "object-algebra"

    type op = Oo_algebra.op

    let op_arity = Oo_algebra.op_arity
    let op_equal (a : op) (b : op) = a = b
    let op_hash (a : op) = Hashtbl.hash_param 100 256 a
    let op_name = Oo_algebra.op_name

    type alg = Oo_algebra.alg

    let alg_arity = Oo_algebra.alg_arity
    let alg_name = Oo_algebra.alg_name

    type logical_props = Oo_algebra.props

    let derive (o : op) (inputs : logical_props list) : logical_props =
      match o, inputs with
      | Extent c, [] -> { root = c; card = (find_class store c).extent_size; store }
      | O_select (_, sel), [ i ] -> { i with card = i.card *. sel }
      | Materialize _, [ i ] -> i
      | (Extent _ | O_select _ | Materialize _), _ ->
        invalid_arg "Oo_model.derive: arity mismatch"

    type phys_props = Oo_algebra.phys

    let pp_equal = Path_set.equal
    let pp_hash s = Hashtbl.hash (Path_set.elements s)
    let pp_covers = Oo_algebra.phys_covers

    let pp_trivial = Path_set.is_empty
    let pp_to_string = Oo_algebra.phys_to_string

    type cost = Relalg.Cost.t

    let cost_zero = Relalg.Cost.zero
    let cost_infinite = Relalg.Cost.infinite
    let cost_is_infinite = Relalg.Cost.is_infinite
    let cost_add = Relalg.Cost.add
    let cost_sub = Relalg.Cost.sub
    let cost_compare = Relalg.Cost.compare
    let cost_to_string = Relalg.Cost.to_string

    let cost_of (alg : alg) ~(inputs : logical_props list)
        ~(input_props : phys_props list) ~(output : logical_props) =
      ignore input_props;
      let card = match inputs with i :: _ -> i.card | [] -> output.card in
      match alg with
      | Extent_scan _ -> Relalg.Cost.make ~io:(output.card *. params.scan_io) ~cpu:0.
      | O_filter _ -> Relalg.Cost.make ~io:0. ~cpu:(card *. params.cpu_test)
      | Pointer_chase ps ->
        Relalg.Cost.make
          ~io:(card *. Float.of_int (path_steps ps) *. params.random_io)
          ~cpu:0.
      | Assembly ps ->
        Relalg.Cost.make
          ~io:
            (params.assembly_setup
            +. (card *. Float.of_int (path_steps ps) *. params.assembly_io))
          ~cpu:(card *. params.cpu_test)

    let deliver (alg : alg) (inputs : phys_props list) : phys_props =
      let input = match inputs with i :: _ -> i | [] -> Path_set.empty in
      match alg with
      | Extent_scan _ -> Path_set.empty
      | O_filter _ -> input
      | Pointer_chase ps | Assembly ps -> Path_set.union input (Path_set.of_list ps)

    let move_promise alg ~inputs ~input_props ~output =
      cost_of alg ~inputs ~input_props ~output

    (* The always-sound trivial bound: guided pruning stays inert for
       this model (O_filter produces its output for pure CPU cost, so
       no output-proportional floor holds across all algorithms). *)
    let cost_lower_bound (_ : logical_props) (_ : phys_props) = Relalg.Cost.zero

    let transforms = [ materialize_merge; select_past_materialize; materialize_past_select ]

    let choice alg inputs alternatives =
      { Rule.c_alg = alg; c_inputs = inputs; c_alternatives = alternatives }

    let extent_impl : (op, alg, logical_props, phys_props) Rule.implement =
      {
        i_name = "extent->scan";
        i_promise = 3;
        i_pattern = Rule.Op (is_extent, []);
        i_apply =
          (fun ~lookup:_ ~required:_ binding ->
            match binding with
            | Rule.Node (Extent c, []) -> [ choice (Extent_scan c) [] [ [] ] ]
            | _ -> []);
      }

    let select_impl : (op, alg, logical_props, phys_props) Rule.implement =
      {
        i_name = "select->filter";
        i_promise = 2;
        i_pattern = Rule.Op (is_select, [ Rule.Any ]);
        i_apply =
          (fun ~lookup:_ ~required binding ->
            match binding with
            | Rule.Node (O_select (p, sel), [ Rule.Group g ]) ->
              (* The filter evaluates a path expression, so its input
                 must arrive with that path assembled, on top of
                 whatever the consumer requires. *)
              let need = Path_set.add p required in
              [ choice (O_filter (p, sel)) [ g ] [ [ need ] ] ]
            | _ -> []);
      }

    let materialize_impl : (op, alg, logical_props, phys_props) Rule.implement =
      {
        i_name = "materialize->chase|assembly";
        i_promise = 2;
        i_pattern = Rule.Op (is_materialize, [ Rule.Any ]);
        i_apply =
          (fun ~lookup:_ ~required binding ->
            match binding with
            | Rule.Node (Materialize ps, [ Rule.Group g ]) ->
              let provided = Path_set.of_list ps in
              let residual = Path_set.diff required provided in
              [
                choice (Pointer_chase ps) [ g ] [ [ residual ] ];
                choice (Assembly ps) [ g ] [ [ residual ] ];
              ]
            | _ -> []);
      }

    let implementations = [ extent_impl; select_impl; materialize_impl ]

    (* Two enforcers for the same property — mirroring the paper's
       uniqueness example with sort- and hash-based enforcers (§4.1):
       assembledness can be established navigationally (pointer chase)
       or by the batching assembly operator. *)
    let enforcers ~props ~required =
      ignore (props : logical_props);
      if Path_set.is_empty required then []
      else begin
        let paths = Path_set.elements required in
        [
          (Assembly paths, Path_set.empty, required);
          (Pointer_chase paths, Path_set.empty, required);
        ]
      end
  end in
  (module M : OO_MODEL)

type plan_node = {
  alg : Oo_algebra.alg;
  children : plan_node list;
  props : Oo_algebra.phys;
  cost : Relalg.Cost.t;
}

type result = {
  plan : plan_node option;
  complete : bool;
  stats : Volcano.Search_stats.t;
  memo_groups : int;
  memo_mexprs : int;
}

let optimize ~store ?params ?max_tasks ?max_millis ?profiler ?recorder
    (query : Oo_algebra.op Volcano.Tree.t) ~required : result =
  let (module M : OO_MODEL) = make ~store ?params () in
  let module S = Volcano.Search.Make (M) in
  (* The OO model's rule names flow to the profiler through the same
     generic engine attribution as the relational model's — per-model
     rule sets need no profiler-specific code. *)
  let config =
    {
      S.default_config with
      budget = S.budget ?max_tasks ?max_millis ();
      profiler;
      recorder;
    }
  in
  let opt = S.create ~config () in
  let outcome = S.optimize opt query ~required in
  let rec convert (p : S.plan_tree) : plan_node =
    { alg = p.alg; children = List.map convert p.children; props = p.props; cost = p.cost }
  in
  {
    plan = Option.map convert outcome.plan;
    complete = (outcome.status = S.Complete);
    stats = outcome.search_stats;
    memo_groups = outcome.memo_groups;
    memo_mexprs = outcome.memo_mexprs;
  }

let explain p =
  let buffer = Buffer.create 256 in
  let rec go depth node =
    Buffer.add_string buffer
      (Printf.sprintf "%s%s  [%s; cost %s]\n" (String.make depth ' ')
         (Oo_algebra.alg_name node.alg)
         (Oo_algebra.phys_to_string node.props)
         (Relalg.Cost.to_string node.cost));
    List.iter (go (depth + 2)) node.children
  in
  go 0 p;
  Buffer.contents buffer
