(** The object-algebra model specification and its generated optimizer.
    Instantiating {!Volcano.Search.Make} with a second, structurally
    different data model is the paper's data-model-independence claim
    made executable. *)

module type OO_MODEL =
  Volcano.Signatures.MODEL
    with type op = Oo_algebra.op
     and type alg = Oo_algebra.alg
     and type logical_props = Oo_algebra.props
     and type phys_props = Oo_algebra.phys
     and type cost = Relalg.Cost.t

type params = {
  random_io : float;  (** seconds per navigational object fetch *)
  assembly_io : float;
      (** seconds per object fetch through the batching assembly
          operator — its whole point is [assembly_io < random_io] *)
  assembly_setup : float;
      (** fixed cost of one assembly invocation (building the batch
          windows); makes navigation the better choice for small
          inputs *)
  scan_io : float;  (** seconds per object during a sequential extent scan *)
  cpu_test : float;  (** seconds per predicate evaluation *)
}

val default_params : params

val make : store:Oo_algebra.store -> ?params:params -> unit -> (module OO_MODEL)

(** A concrete optimized plan, mirroring {!Relmodel.Optimizer}. *)
type plan_node = {
  alg : Oo_algebra.alg;
  children : plan_node list;
  props : Oo_algebra.phys;
  cost : Relalg.Cost.t;
}

type result = {
  plan : plan_node option;
  complete : bool;
      (** [false]: the task/time budget ran out; [plan] is the best
          found so far *)
  stats : Volcano.Search_stats.t;
  memo_groups : int;
  memo_mexprs : int;
}

val optimize :
  store:Oo_algebra.store ->
  ?params:params ->
  ?max_tasks:int ->
  ?max_millis:float ->
  ?profiler:Obs.Profile.t ->
  ?recorder:Obs.Flight_recorder.t ->
  Oo_algebra.op Volcano.Tree.t ->
  required:Oo_algebra.phys ->
  result
(** [profiler]/[recorder] attach the generic engine observability to
    the OO optimizer: rule names from this model's transform and
    implementation rules surface in the profile report unchanged, and
    both are plan-inert. *)

val explain : plan_node -> string
