lib/oomodel/oo_model.mli: Oo_algebra Relalg Volcano
