lib/oomodel/oo_model.ml: Buffer Float Hashtbl List Oo_algebra Option Path_set Printf Relalg String Volcano
