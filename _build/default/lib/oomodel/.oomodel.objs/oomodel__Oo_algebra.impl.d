lib/oomodel/oo_algebra.ml: List Printf Set String
