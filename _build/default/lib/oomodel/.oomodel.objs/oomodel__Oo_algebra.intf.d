lib/oomodel/oo_algebra.mli: Set
