(** A second data model for the generator: an object algebra with path
    expressions, in the style of the Open OODB optimizer the paper
    reports as built with this tool (§6; the "materialize" or scope
    operator that captures path-expression semantics), plus the paper's
    §4.1 example of an extensible physical property:
    {e assembledness} of complex objects in memory, enforced by the
    assembly operator of Keller, Graefe & Maier.

    Paths are reference chains from the root class, e.g.
    [["dept"; "floor"]] for [emp.dept.floor]. *)

type path = string list

val path_to_string : path -> string

(** Schema-level description of the object base. *)
type class_info = {
  cname : string;
  extent_size : float;  (** number of objects in the class extent *)
  object_bytes : int;
  references : (string * string) list;  (** reference attribute -> target class *)
}

type store = class_info list

val find_class : store -> string -> class_info
(** @raise Not_found *)

val valid_path : store -> root:string -> path -> bool
(** Every step of the path is a reference attribute of the class reached
    so far. *)

(** Logical operators. *)
type op =
  | Extent of string  (** all objects of a class *)
  | O_select of path * float
      (** keep objects whose [path] target passes a test with the given
          selectivity; evaluating it requires the path to be assembled *)
  | Materialize of path list
      (** the scope operator: make the objects reachable via these paths
          available to downstream operators *)

val op_arity : op -> int

val op_name : op -> string

(** Physical algorithms and enforcers. *)
type alg =
  | Extent_scan of string
  | O_filter of path * float  (** requires its path assembled in the input *)
  | Pointer_chase of path list
      (** navigational materialization: one random access per object per
          path step *)
  | Assembly of path list
      (** the assembly-operator enforcer: batches accesses per
          component class, amortizing I/O (Keller et al., SIGMOD 1991) *)

val alg_arity : alg -> int

val alg_name : alg -> string

(** Logical properties: which class the stream ranges over, how many
    objects, which paths are semantically available. *)
type props = {
  root : string;
  card : float;
  store : store;
}

(** Physical property vector: the set of assembled paths. *)
module Path_set : Set.S with type elt = path

type phys = Path_set.t

val phys_covers : provided:phys -> required:phys -> bool

val phys_to_string : phys -> string
