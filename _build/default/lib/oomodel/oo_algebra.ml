type path = string list

let path_to_string p = String.concat "." p

type class_info = {
  cname : string;
  extent_size : float;
  object_bytes : int;
  references : (string * string) list;
}

type store = class_info list

let find_class store name = List.find (fun c -> String.equal c.cname name) store

let valid_path store ~root path =
  let rec go cls = function
    | [] -> true
    | step :: rest -> begin
      match List.assoc_opt step cls.references with
      | None -> false
      | Some target -> begin
        match find_class store target with
        | cls' -> go cls' rest
        | exception Not_found -> false
      end
    end
  in
  match find_class store root with
  | cls -> go cls path
  | exception Not_found -> false

type op =
  | Extent of string
  | O_select of path * float
  | Materialize of path list

let op_arity = function Extent _ -> 0 | O_select _ | Materialize _ -> 1

let op_name = function
  | Extent c -> "extent(" ^ c ^ ")"
  | O_select (p, sel) -> Printf.sprintf "select[%s; sel=%.2f]" (path_to_string p) sel
  | Materialize ps ->
    "materialize[" ^ String.concat ", " (List.map path_to_string ps) ^ "]"

type alg =
  | Extent_scan of string
  | O_filter of path * float
  | Pointer_chase of path list
  | Assembly of path list

let alg_arity = function
  | Extent_scan _ -> 0
  | O_filter _ | Pointer_chase _ | Assembly _ -> 1

let alg_name = function
  | Extent_scan c -> "extent_scan(" ^ c ^ ")"
  | O_filter (p, sel) -> Printf.sprintf "filter[%s; sel=%.2f]" (path_to_string p) sel
  | Pointer_chase ps ->
    "pointer_chase[" ^ String.concat ", " (List.map path_to_string ps) ^ "]"
  | Assembly ps -> "assembly[" ^ String.concat ", " (List.map path_to_string ps) ^ "]"

type props = {
  root : string;
  card : float;
  store : store;
}

module Path_set = Set.Make (struct
  type t = path

  let compare = compare
end)

type phys = Path_set.t

let phys_covers ~provided ~required = Path_set.subset required provided

let phys_to_string s =
  if Path_set.is_empty s then "{}"
  else "{" ^ String.concat ", " (List.map path_to_string (Path_set.elements s)) ^ "}"
