open Relalg

type stats = {
  mutable classes : int;
  mutable nodes : int;
  mutable transformations : int;
  mutable reanalyses : int;
  mutable selections : int;
}

type result = {
  plan : Physical.plan option;
  cost : Cost.t;
  aborted : bool;
  stats : stats;
}

(* ---------------------------------------------------------------------- *)
(* MESH                                                                    *)
(* ---------------------------------------------------------------------- *)

type node = {
  nid : int;
  op : Logical.op;
  inputs : int list;  (* class ids *)
  mutable applied : int;  (* rule bitmask *)
  mutable node_alg : Physical.alg option;  (* chosen algorithm *)
  mutable node_cost : Cost.t;  (* total cost with chosen algorithm *)
}

type cls = {
  cid : int;
  mutable nodes : node list;
  props : Logical_props.t;
  mutable best : node option;
  mutable best_cost : Cost.t;
  mutable parents : (node * int) list;  (* consumer node and its class *)
}

type mesh = {
  catalog : Catalog.t;
  params : Cost_model.params;
  mutable classes : cls array;
  mutable n_classes : int;
  node_index : (Logical.op * int list, int) Hashtbl.t;  (* -> class id *)
  mutable newly : (node * int) list;  (* nodes added since last drain *)
  stats : stats;
}

let cls_of mesh c = mesh.classes.(c)

let new_class mesh props =
  let c =
    {
      cid = mesh.n_classes;
      nodes = [];
      props;
      best = None;
      best_cost = Cost.infinite;
      parents = [];
    }
  in
  if mesh.n_classes = Array.length mesh.classes then begin
    let bigger = Array.make (max 64 (2 * Array.length mesh.classes)) c in
    Array.blit mesh.classes 0 bigger 0 mesh.n_classes;
    mesh.classes <- bigger
  end;
  mesh.classes.(mesh.n_classes) <- c;
  mesh.n_classes <- mesh.n_classes + 1;
  mesh.stats.classes <- mesh.stats.classes + 1;
  c

(* ---------------------------------------------------------------------- *)
(* Algorithm selection and cost analysis (no physical properties:         *)
(* merge-based algorithms pay for sorting their own inputs)               *)
(* ---------------------------------------------------------------------- *)

let input_props mesh (n : node) = List.map (fun c -> (cls_of mesh c).props) n.inputs

let sort_into p (input : Logical_props.t) =
  Cost_model.cost p (Physical.Sort []) ~inputs:[ input ] ~output:input

let algorithm_options mesh (n : node) (out : Logical_props.t) :
    (Physical.alg * Cost.t) list =
  let p = mesh.params in
  let local alg inputs = Cost_model.cost p alg ~inputs ~output:out in
  match n.op, input_props mesh n with
  | Logical.Get t, [] -> [ (Physical.Table_scan t, local (Physical.Table_scan t) []) ]
  | Logical.Select pred, [ i ] -> [ (Physical.Filter pred, local (Physical.Filter pred) [ i ]) ]
  | Logical.Project cols, [ i ] ->
    [ (Physical.Project_cols cols, local (Physical.Project_cols cols) [ i ]) ]
  | Logical.Join pred, [ l; r ] ->
    let keys = Expr.equijoin_keys pred ~left:l.schema ~right:r.schema in
    let nl =
      [ (Physical.Nested_loop_join pred, local (Physical.Nested_loop_join pred) [ l; r ]) ]
    in
    if keys = [] then nl
    else begin
      let hash = (Physical.Hash_join (keys, pred), local (Physical.Hash_join (keys, pred)) [ l; r ]) in
      (* Merge join absorbs the cost of sorting both inputs: EXODUS had
         no enforcers, so "the cost of enforcers had to be included in
         the cost function of other algorithms such as merge-join". *)
      let merge_total =
        Cost.add
          (local (Physical.Merge_join (keys, pred)) [ l; r ])
          (Cost.add (sort_into p l) (sort_into p r))
      in
      let merge = (Physical.Merge_join (keys, pred), merge_total) in
      hash :: merge :: nl
    end
  | Logical.Union, [ l; r ] ->
    [
      (Physical.Hash_union, local Physical.Hash_union [ l; r ]);
      ( Physical.Merge_union,
        Cost.add (local Physical.Merge_union [ l; r ])
          (Cost.add (sort_into p l) (sort_into p r)) );
    ]
  | Logical.Intersect, [ l; r ] ->
    [
      (Physical.Hash_intersect, local Physical.Hash_intersect [ l; r ]);
      ( Physical.Merge_intersect,
        Cost.add (local Physical.Merge_intersect [ l; r ])
          (Cost.add (sort_into p l) (sort_into p r)) );
    ]
  | Logical.Difference, [ l; r ] ->
    [
      (Physical.Hash_difference, local Physical.Hash_difference [ l; r ]);
      ( Physical.Merge_difference,
        Cost.add (local Physical.Merge_difference [ l; r ])
          (Cost.add (sort_into p l) (sort_into p r)) );
    ]
  | Logical.Group_by (keys, aggs), [ i ] ->
    [
      (Physical.Hash_aggregate (keys, aggs), local (Physical.Hash_aggregate (keys, aggs)) [ i ]);
      ( Physical.Stream_aggregate (keys, aggs),
        Cost.add (local (Physical.Stream_aggregate (keys, aggs)) [ i ]) (sort_into p i) );
    ]
  | ( Logical.Get _ | Logical.Select _ | Logical.Project _ | Logical.Join _
    | Logical.Union | Logical.Intersect | Logical.Difference | Logical.Group_by _ ), _ ->
    invalid_arg "Exodus: arity mismatch in MESH"

(* Cost analysis of one node: pick its best algorithm given the current
   best costs of its input classes. *)
let analyze_node mesh (n : node) (c : cls) =
  mesh.stats.selections <- mesh.stats.selections + 1;
  let input_total =
    List.fold_left
      (fun acc ci -> Cost.add acc (cls_of mesh ci).best_cost)
      Cost.zero n.inputs
  in
  let best = ref None and best_cost = ref Cost.infinite in
  List.iter
    (fun (alg, local) ->
      let total = Cost.add local input_total in
      if Cost.( <% ) total !best_cost then begin
        best := Some alg;
        best_cost := total
      end)
    (algorithm_options mesh n c.props);
  n.node_alg <- !best;
  n.node_cost <- !best_cost

(* Recompute a class's best after one of its nodes changed; on
   improvement, reanalyze every consumer above (the EXODUS behaviour the
   paper measures as the dominant cost for larger queries). *)
let rec reanalyze_class mesh (c : cls) =
  let old = c.best_cost in
  c.best <- None;
  c.best_cost <- Cost.infinite;
  List.iter
    (fun n ->
      if Cost.( <% ) n.node_cost c.best_cost then begin
        c.best <- Some n;
        c.best_cost <- n.node_cost
      end)
    c.nodes;
  if Cost.compare c.best_cost old <> 0 then
    List.iter
      (fun (pn, pc) ->
        mesh.stats.reanalyses <- mesh.stats.reanalyses + 1;
        let pcls = cls_of mesh pc in
        analyze_node mesh pn pcls;
        reanalyze_class mesh pcls)
      c.parents

(* Add a node for [op inputs]. Within-class duplicates are folded;
   cross-class duplicates are detected only for fresh classes (EXODUS's
   MESH kept them, at the memory cost §4 describes — we reuse the class
   to keep the search finite but do not unify the classes). *)
let add_node mesh ~(target : cls option) (op : Logical.op) (inputs : int list) : cls * node option =
  match target with
  | Some c
    when List.exists (fun n -> Logical.op_equal n.op op && n.inputs = inputs) c.nodes ->
    (c, None)
  | _ ->
    let c =
      match target with
      | Some c -> c
      | None -> begin
        match Hashtbl.find_opt mesh.node_index (op, inputs) with
        | Some cid -> cls_of mesh cid
        | None ->
          let props =
            Relmodel.Derive.op mesh.catalog op
              (List.map (fun ci -> (cls_of mesh ci).props) inputs)
          in
          new_class mesh props
      end
    in
    if List.exists (fun n -> Logical.op_equal n.op op && n.inputs = inputs) c.nodes then
      (c, None)
    else begin
      let n =
        { nid = mesh.stats.nodes; op; inputs; applied = 0; node_alg = None;
          node_cost = Cost.infinite }
      in
      mesh.stats.nodes <- mesh.stats.nodes + 1;
      c.nodes <- n :: c.nodes;
      if not (Hashtbl.mem mesh.node_index (op, inputs)) then
        Hashtbl.add mesh.node_index (op, inputs) c.cid;
      List.iter
        (fun ci ->
          let ic = cls_of mesh ci in
          ic.parents <- (n, c.cid) :: ic.parents)
        inputs;
      analyze_node mesh n c;
      reanalyze_class mesh c;
      mesh.newly <- (n, c.cid) :: mesh.newly;
      (c, Some n)
    end

(* ---------------------------------------------------------------------- *)
(* Transformation rules (forward chaining)                                 *)
(* ---------------------------------------------------------------------- *)

(* Rule factors: the "expected cost improvement" multipliers an EXODUS
   optimizer implementor supplies. Associativity promises more than
   commutativity. *)
let rule_commute = 0
let rule_assoc = 1
let rule_select_push = 2

let rule_factor = function
  | r when r = rule_assoc -> 0.5
  | r when r = rule_select_push -> 0.4
  | _ -> 0.1

let n_rules = 3

(* Priority queue of pending transformations, keyed by expected cost
   improvement (higher first). EXODUS preferred transformations high in
   the expression, where current costs — and thus expected improvements
   — are largest. *)
module Pq = Set.Make (struct
  type t = float * int * int * int  (* priority, tiebreak, class id, node id *)

  let compare (p1, s1, _, _) (p2, s2, _, _) =
    match Float.compare p2 p1 with 0 -> Int.compare s1 s2 | c -> c
end)

type queue = {
  mutable pq : Pq.t;
  mutable seq : int;
  entries : (int * int, node * int) Hashtbl.t;  (* (node id, rule) -> node, class *)
}

let enqueue q (n : node) (c : cls) =
  for rule = 0 to n_rules - 1 do
    if n.applied land (1 lsl rule) = 0 then begin
      let priority = rule_factor rule *. Cost.total c.best_cost in
      let priority = if Float.is_nan priority || priority = Float.infinity then 1e9 else priority in
      q.pq <- Pq.add (priority, q.seq, c.cid, (n.nid * n_rules) + rule) q.pq;
      Hashtbl.replace q.entries ((n.nid * n_rules) + rule, c.cid) (n, c.cid);
      q.seq <- q.seq + 1
    end
  done

(* Apply one rule to one node, returning (op, inputs, target class)
   triples to materialize. *)
let apply_rule mesh (n : node) (c : cls) rule : unit =
  let results : (Logical.op * int list) list =
    if rule = rule_commute then begin
      match n.op, n.inputs with
      | Logical.Join p, [ l; r ] -> [ (Logical.Join p, [ r; l ]) ]
      | _ -> []
    end
    else if rule = rule_assoc then begin
      match n.op, n.inputs with
      | Logical.Join p1, [ l; r ] ->
        (* Enumerate join nodes of the left class. *)
        (cls_of mesh l).nodes
        |> List.filter_map (fun (ln : node) ->
               match ln.op, ln.inputs with
               | Logical.Join p2, [ a; b ] ->
                 let sb = (cls_of mesh b).props.Logical_props.schema in
                 let sc = (cls_of mesh r).props.Logical_props.schema in
                 let top, bottom =
                   Relmodel.Rewrites.assoc_split ~p1 ~p2 ~schema_b:sb ~schema_c:sc
                 in
                 let inner, _ = add_node mesh ~target:None (Logical.Join bottom) [ b; r ] in
                 Some (Logical.Join top, [ a; inner.cid ])
               | _ -> None)
      | _ -> []
    end
    else begin
      (* selection pushdown *)
      match n.op, n.inputs with
      | Logical.Select p, [ j ] ->
        (cls_of mesh j).nodes
        |> List.filter_map (fun (jn : node) ->
               match jn.op, jn.inputs with
               | Logical.Join jp, [ a; b ] ->
                 let sa = (cls_of mesh a).props.Logical_props.schema in
                 let sb = (cls_of mesh b).props.Logical_props.schema in
                 let conj = Expr.conjuncts p in
                 let on_left, rest = List.partition (Expr.refers_only_to sa) conj in
                 let on_right, to_join = List.partition (Expr.refers_only_to sb) rest in
                 if on_left = [] && on_right = [] && to_join = [] then None
                 else begin
                   let wrap side preds =
                     match preds with
                     | [] -> side
                     | _ ->
                       let sc, _ =
                         add_node mesh ~target:None
                           (Logical.Select (Expr.conjoin preds))
                           [ side ]
                       in
                       sc.cid
                   in
                   let jp' = Expr.conjoin (Expr.conjuncts jp @ to_join) in
                   Some (Logical.Join jp', [ wrap a on_left; wrap b on_right ])
                 end
               | _ -> None)
      | _ -> []
    end
  in
  List.iter
    (fun (op, inputs) -> ignore (add_node mesh ~target:(Some c) op inputs))
    results

(* ---------------------------------------------------------------------- *)
(* Driver                                                                  *)
(* ---------------------------------------------------------------------- *)

let rec insert_query mesh (e : Logical.expr) : cls =
  let inputs = List.map (fun i -> (insert_query mesh i).cid) e.inputs in
  let c, _ = add_node mesh ~target:None e.op inputs in
  c

(* Extract the chosen plan; merge-based algorithms regain their implicit
   sorts as explicit operators so the plan remains executable. *)
let rec extract mesh (c : cls) : Physical.plan =
  match c.best with
  | None -> invalid_arg "Exodus.extract: class was never analyzed"
  | Some n -> begin
    let children = List.map (fun ci -> extract mesh (cls_of mesh ci)) n.inputs in
    match n.node_alg with
    | None -> invalid_arg "Exodus.extract: node has no algorithm"
    | Some (Physical.Merge_join (keys, pred)) -> begin
      match children with
      | [ l; r ] ->
        let lsort = Sort_order.asc (List.map fst keys) in
        let rsort = Sort_order.asc (List.map snd keys) in
        Physical.mk
          (Physical.Merge_join (keys, pred))
          [ Physical.mk (Physical.Sort lsort) [ l ]; Physical.mk (Physical.Sort rsort) [ r ] ]
      | _ -> assert false
    end
    | Some ((Physical.Merge_union | Physical.Merge_intersect | Physical.Merge_difference) as alg)
      -> begin
      match children, input_props mesh n with
      | [ l; r ], [ lp; rp ] ->
        let order schema = Sort_order.asc (Schema.names schema) in
        Physical.mk alg
          [
            Physical.mk (Physical.Sort (order lp.Logical_props.schema)) [ l ];
            Physical.mk (Physical.Sort (order rp.Logical_props.schema)) [ r ];
          ]
      | _, _ -> assert false
    end
    | Some (Physical.Stream_aggregate (keys, aggs)) -> begin
      match children with
      | [ i ] ->
        Physical.mk
          (Physical.Stream_aggregate (keys, aggs))
          [ Physical.mk (Physical.Sort (Sort_order.asc keys)) [ i ] ]
      | _ -> assert false
    end
    | Some alg -> Physical.mk alg children
  end

let optimize ~catalog ?(params = Cost_model.default) ?(max_nodes = max_int)
    (query : Logical.expr) ~required =
  let stats = { classes = 0; nodes = 0; transformations = 0; reanalyses = 0; selections = 0 } in
  let mesh =
    {
      catalog;
      params;
      classes = [||];
      n_classes = 0;
      node_index = Hashtbl.create 256;
      newly = [];
      stats;
    }
  in
  let root = insert_query mesh query in
  mesh.newly <- [];
  let q = { pq = Pq.empty; seq = 0; entries = Hashtbl.create 256 } in
  (* Seed the queue with every (node, rule) pair in the initial MESH. *)
  for ci = 0 to mesh.n_classes - 1 do
    let c = mesh.classes.(ci) in
    List.iter (fun n -> enqueue q n c) c.nodes
  done;
  (* Forward chaining: pop the most promising transformation, apply it,
     analyze, reanalyze consumers, enqueue new opportunities. New nodes
     created during application are enqueued on the fly. *)
  let continue_ = ref true in
  let aborted = ref false in
  while !continue_ do
    if stats.nodes > max_nodes then begin
      aborted := true;
      continue_ := false
    end
    else
    match Pq.min_elt_opt q.pq with
    | None -> continue_ := false
    | Some ((_, _, cid, nr) as entry) ->
      q.pq <- Pq.remove entry q.pq;
      let rule = nr mod n_rules in
      (match Hashtbl.find_opt q.entries (nr, cid) with
       | None -> ()
       | Some (n, _) ->
         if n.applied land (1 lsl rule) = 0 then begin
           n.applied <- n.applied lor (1 lsl rule);
           stats.transformations <- stats.transformations + 1;
           apply_rule mesh n (cls_of mesh cid) rule;
           (* Enqueue the transformations the new nodes enable. *)
           let fresh = mesh.newly in
           mesh.newly <- [];
           List.iter (fun (n', ci) -> enqueue q n' (cls_of mesh ci)) fresh
         end)
  done;
  (* Glue: a required sort order is established after the fact, EXODUS
     and Starburst style. *)
  match root.best with
  | None -> { plan = None; cost = Cost.infinite; aborted = !aborted; stats }
  | Some _ ->
    let base = extract mesh root in
    let base_cost = root.best_cost in
    if required.Phys_prop.order = [] then
      { plan = Some base; cost = base_cost; aborted = !aborted; stats }
    else begin
      let sort = Physical.mk (Physical.Sort required.Phys_prop.order) [ base ] in
      let glue =
        Cost_model.cost params
          (Physical.Sort required.Phys_prop.order)
          ~inputs:[ root.props ] ~output:root.props
      in
      { plan = Some sort; cost = Cost.add base_cost glue; aborted = !aborted; stats }
    end
