(** The comparison baseline of the paper's Section 4: a reimplementation
    of the EXODUS optimizer generator's search behaviour, with the
    properties the paper criticizes:

    - {e forward chaining}: transformations are applied in order of
      expected cost improvement — the product of a rule factor and the
      current cost of the expression being transformed — which prefers
      nodes near the top of the query and is "driven by possibilities,
      not needs";
    - {e immediate cost analysis}: every transformation is followed by
      algorithm selection and cost analysis for the new node;
    - {e reanalysis}: when a class's best cost changes, every consumer
      node above is recosted, transitively (the dominant cost for
      larger queries, per §4.2);
    - {e no physical-property search}: there are no enforcers and no
      property-driven subgoals; merge join pays for sorting both its
      inputs inside its own cost function, and a required output order
      is satisfied by gluing a final sort onto the chosen plan.

    The logical search space (join commutativity and associativity with
    predicate redistribution, selection pushdown) matches the Volcano
    model's, so plan-quality differences are attributable to the search
    strategy, as in Figure 4. *)

type stats = {
  mutable classes : int;
  mutable nodes : int;
  mutable transformations : int;  (** rule applications popped and applied *)
  mutable reanalyses : int;  (** consumer recostings after a change below *)
  mutable selections : int;  (** algorithm-selection passes over a node *)
}

type result = {
  plan : Relalg.Physical.plan option;
  cost : Relalg.Cost.t;  (** estimated cost of [plan], including any glue sort *)
  aborted : bool;
      (** the node budget ran out before the queue drained — the paper's
          EXODUS runs "aborted due to lack of memory or ... ran much
          longer"; the best plan found so far is still returned *)
  stats : stats;
}

val optimize :
  catalog:Catalog.t ->
  ?params:Relalg.Cost_model.params ->
  ?max_nodes:int ->
  Relalg.Logical.expr ->
  required:Relalg.Phys_prop.t ->
  result
