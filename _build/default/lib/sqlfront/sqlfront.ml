open Relalg

exception Parse_error of string

type statement = {
  logical : Logical.expr;
  required : Phys_prop.t;
}

let fail fmt = Format.kasprintf (fun msg -> raise (Parse_error msg)) fmt

(* ---------------------------------------------------------------------- *)
(* Lexer                                                                   *)
(* ---------------------------------------------------------------------- *)

type token =
  | Ident of string  (** possibly qualified: [t.c] *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Sym of string  (** punctuation and operators *)
  | Kw of string  (** upper-cased keyword *)
  | Eof

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "ORDER"; "ASC"; "DESC";
    "AND"; "OR"; "NOT"; "AS"; "UNION"; "INTERSECT"; "EXCEPT"; "COUNT"; "SUM"; "MIN";
    "MAX"; "AVG"; "TRUE"; "FALSE";
  ]

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize (input : string) : token list =
  let n = String.length input in
  let rec go i acc =
    if i >= n then List.rev (Eof :: acc)
    else begin
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if (c >= '0' && c <= '9') || (c = '.' && i + 1 < n && input.[i + 1] >= '0' && input.[i + 1] <= '9')
      then begin
        let j = ref i in
        let seen_dot = ref false in
        while
          !j < n
          && ((input.[!j] >= '0' && input.[!j] <= '9')
             || (input.[!j] = '.' && not !seen_dot))
        do
          if input.[!j] = '.' then seen_dot := true;
          incr j
        done;
        let text = String.sub input i (!j - i) in
        let token =
          if !seen_dot then Float_lit (float_of_string text) else Int_lit (int_of_string text)
        in
        go !j (token :: acc)
      end
      else if c = '\'' then begin
        match String.index_from_opt input (i + 1) '\'' with
        | None -> fail "unterminated string literal"
        | Some j -> go (j + 1) (Str_lit (String.sub input (i + 1) (j - i - 1)) :: acc)
      end
      else if is_ident_char c then begin
        let j = ref i in
        (* Qualified names keep their single inner dot. *)
        while !j < n && (is_ident_char input.[!j] || (input.[!j] = '.' && !j + 1 < n && is_ident_char input.[!j + 1]))
        do
          incr j
        done;
        let text = String.sub input i (!j - i) in
        let upper = String.uppercase_ascii text in
        let token = if List.mem upper keywords then Kw upper else Ident text in
        go !j (token :: acc)
      end
      else begin
        let two = if i + 1 < n then String.sub input i 2 else "" in
        match two with
        | "<=" | ">=" | "<>" | "!=" -> go (i + 2) (Sym two :: acc)
        | _ -> begin
          match c with
          | '=' | '<' | '>' | '(' | ')' | ',' | '*' | '+' | '-' | '/' | ';' ->
            go (i + 1) (Sym (String.make 1 c) :: acc)
          | _ -> fail "unexpected character %C" c
        end
      end
    end
  in
  go 0 []

(* ---------------------------------------------------------------------- *)
(* Parser state                                                            *)
(* ---------------------------------------------------------------------- *)

type state = {
  mutable tokens : token list;
}

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Sym s -> s
  | Kw s -> s
  | Eof -> "end of input"

let peek st = match st.tokens with [] -> Eof | t :: _ -> t

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let eat st expected =
  let t = peek st in
  if t = expected then advance st
  else fail "expected %s but found %s" (token_to_string expected) (token_to_string t)

let eat_kw st kw = eat st (Kw kw)

(* ---------------------------------------------------------------------- *)
(* Expression parsing (predicates)                                         *)
(* ---------------------------------------------------------------------- *)

(* Grammar: or_expr > and_expr > not_expr > comparison > additive >
   multiplicative > primary. *)

let rec parse_or st =
  let left = parse_and st in
  match peek st with
  | Kw "OR" ->
    advance st;
    Expr.Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_not st in
  match peek st with
  | Kw "AND" ->
    advance st;
    Expr.And (left, parse_and st)
  | _ -> left

and parse_not st =
  match peek st with
  | Kw "NOT" ->
    advance st;
    Expr.Not (parse_not st)
  | _ -> parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  let op =
    match peek st with
    | Sym "=" -> Some Expr.Eq
    | Sym "<>" | Sym "!=" -> Some Expr.Ne
    | Sym "<" -> Some Expr.Lt
    | Sym "<=" -> Some Expr.Le
    | Sym ">" -> Some Expr.Gt
    | Sym ">=" -> Some Expr.Ge
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
    advance st;
    Expr.Cmp (op, left, parse_additive st)

and parse_additive st =
  let left = parse_multiplicative st in
  match peek st with
  | Sym "+" ->
    advance st;
    Expr.Arith (Expr.Add, left, parse_additive st)
  | Sym "-" ->
    advance st;
    Expr.Arith (Expr.Sub, left, parse_additive st)
  | _ -> left

and parse_multiplicative st =
  let left = parse_primary st in
  match peek st with
  | Sym "*" ->
    advance st;
    Expr.Arith (Expr.Mul, left, parse_multiplicative st)
  | Sym "/" ->
    advance st;
    Expr.Arith (Expr.Div, left, parse_multiplicative st)
  | _ -> left

and parse_primary st =
  match peek st with
  | Int_lit i ->
    advance st;
    Expr.Const (Value.Int i)
  | Float_lit f ->
    advance st;
    Expr.Const (Value.Float f)
  | Str_lit s ->
    advance st;
    Expr.Const (Value.Str s)
  | Kw "TRUE" ->
    advance st;
    Expr.Const (Value.Bool true)
  | Kw "FALSE" ->
    advance st;
    Expr.Const (Value.Bool false)
  | Ident name ->
    advance st;
    Expr.Col name
  | Sym "(" ->
    advance st;
    let e = parse_or st in
    eat st (Sym ")");
    e
  | t -> fail "expected an expression but found %s" (token_to_string t)

(* ---------------------------------------------------------------------- *)
(* SELECT parsing and translation                                          *)
(* ---------------------------------------------------------------------- *)

type select_item =
  | Star
  | Column of string
  | Aggregate of Logical.agg_func * string option * string option  (* func, col, alias *)

let agg_func_of_kw = function
  | "COUNT" -> Some Logical.Count
  | "SUM" -> Some Logical.Sum
  | "MIN" -> Some Logical.Min
  | "MAX" -> Some Logical.Max
  | "AVG" -> Some Logical.Avg
  | _ -> None

let parse_select_item st =
  match peek st with
  | Sym "*" ->
    advance st;
    Star
  | Kw kw when agg_func_of_kw kw <> None ->
    let func = Option.get (agg_func_of_kw kw) in
    advance st;
    eat st (Sym "(");
    let column =
      match peek st with
      | Sym "*" ->
        advance st;
        None
      | Ident c ->
        advance st;
        Some c
      | t -> fail "expected a column or * in aggregate but found %s" (token_to_string t)
    in
    eat st (Sym ")");
    let alias =
      match peek st with
      | Kw "AS" -> begin
        advance st;
        match peek st with
        | Ident a ->
          advance st;
          Some a
        | t -> fail "expected an alias after AS but found %s" (token_to_string t)
      end
      | _ -> None
    in
    Aggregate (func, column, alias)
  | Ident c ->
    advance st;
    Column c
  | t -> fail "expected a select item but found %s" (token_to_string t)

let rec parse_comma_list st parse_one =
  let first = parse_one st in
  match peek st with
  | Sym "," ->
    advance st;
    first :: parse_comma_list st parse_one
  | _ -> [ first ]

type select_clause = {
  distinct : bool;
  items : select_item list;
  tables : string list;
  where : Expr.t option;
  group_by : string list;
  order_by : (string * Sort_order.dir) list;
}

let parse_select_clause st =
  eat_kw st "SELECT";
  let distinct =
    match peek st with
    | Kw "DISTINCT" ->
      advance st;
      true
    | _ -> false
  in
  let items = parse_comma_list st parse_select_item in
  eat_kw st "FROM";
  let parse_table st =
    match peek st with
    | Ident t ->
      advance st;
      t
    | t -> fail "expected a table name but found %s" (token_to_string t)
  in
  let tables = parse_comma_list st parse_table in
  let where =
    match peek st with
    | Kw "WHERE" ->
      advance st;
      Some (parse_or st)
    | _ -> None
  in
  let group_by =
    match peek st with
    | Kw "GROUP" ->
      advance st;
      eat_kw st "BY";
      parse_comma_list st (fun st ->
          match peek st with
          | Ident c ->
            advance st;
            c
          | t -> fail "expected a column in GROUP BY but found %s" (token_to_string t))
    | _ -> []
  in
  let order_by =
    match peek st with
    | Kw "ORDER" ->
      advance st;
      eat_kw st "BY";
      parse_comma_list st (fun st ->
          match peek st with
          | Ident c -> begin
            advance st;
            match peek st with
            | Kw "DESC" ->
              advance st;
              (c, Sort_order.Desc)
            | Kw "ASC" ->
              advance st;
              (c, Sort_order.Asc)
            | _ -> (c, Sort_order.Asc)
          end
          | t -> fail "expected a column in ORDER BY but found %s" (token_to_string t))
    | _ -> []
  in
  { distinct; items; tables; where; group_by; order_by }

(* Translation of one select block into the logical algebra. *)
let translate catalog (c : select_clause) : Logical.expr * Phys_prop.t =
  if c.tables = [] then fail "FROM clause is empty";
  List.iter
    (fun t -> if not (Catalog.mem catalog t) then fail "unknown table %S" t)
    c.tables;
  let schemas = List.map (fun t -> (Catalog.find catalog t).Catalog.schema) c.tables in
  let full_schema = List.fold_left Schema.concat [||] schemas in
  let resolve col =
    match Schema.resolve full_schema col with
    | name -> name
    | exception Not_found -> fail "unknown or ambiguous column %S" col
  in
  let rec resolve_expr (e : Expr.t) : Expr.t =
    match e with
    | Expr.Col c -> Expr.Col (resolve c)
    | Expr.Const _ -> e
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, resolve_expr a, resolve_expr b)
    | Expr.And (a, b) -> Expr.And (resolve_expr a, resolve_expr b)
    | Expr.Or (a, b) -> Expr.Or (resolve_expr a, resolve_expr b)
    | Expr.Not a -> Expr.Not (resolve_expr a)
    | Expr.Arith (op, a, b) -> Expr.Arith (op, resolve_expr a, resolve_expr b)
  in
  (* FROM: left-deep Cartesian spine; the optimizer pushes the WHERE
     conjuncts into join predicates and selections. *)
  let spine =
    match c.tables with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun acc t -> Logical.join Expr.true_ acc (Logical.get t))
        (Logical.get first) rest
  in
  let filtered =
    match c.where with
    | None -> spine
    | Some pred -> Logical.select (resolve_expr pred) spine
  in
  (* Aggregation and projection. *)
  let items =
    match c.items with
    | [ Star ] -> `All
    | items ->
      `Items
        (List.map
           (function
             | Star -> fail "* must be the only select item"
             | Column col -> `Column (resolve col)
             | Aggregate (func, col, alias) ->
               let column = Option.map resolve col in
               let func_name =
                 match func with
                 | Logical.Count -> "count"
                 | Logical.Sum -> "sum"
                 | Logical.Min -> "min"
                 | Logical.Max -> "max"
                 | Logical.Avg -> "avg"
               in
               let alias =
                 match alias, column with
                 | Some a, _ -> a
                 | None, Some col ->
                   Printf.sprintf "%s_%s" func_name (Schema.base_name col)
                 | None, None -> "count"
               in
               `Agg { Logical.func; column; alias })
           items)
  in
  let aggs =
    match items with
    | `All -> []
    | `Items list -> List.filter_map (function `Agg a -> Some a | `Column _ -> None) list
  in
  let group_keys = List.map resolve c.group_by in
  let with_groups =
    if aggs = [] && group_keys = [] then filtered
    else begin
      let keys =
        if group_keys <> [] then group_keys
        else
          (* Aggregates without GROUP BY: grand total — grouping by the
             empty key list. *)
          []
      in
      (* Validate that plain columns are grouping keys. *)
      (match items with
       | `All -> fail "SELECT * cannot be combined with aggregates"
       | `Items list ->
         List.iter
           (function
             | `Column col when not (List.mem col keys) ->
               fail "column %S must appear in GROUP BY" col
             | `Column _ | `Agg _ -> ())
           list);
      Logical.group_by keys aggs filtered
    end
  in
  let projected =
    match items with
    | `All -> with_groups
    | `Items list ->
      let cols =
        List.map (function `Column col -> col | `Agg a -> a.Logical.alias) list
      in
      Logical.project cols with_groups
  in
  let order =
    List.map
      (fun (col, dir) ->
        let name =
          if aggs = [] then resolve col
          else begin
            (* After aggregation, order keys are either grouping keys
               (resolved) or aggregate aliases (kept as written). *)
            match Schema.resolve full_schema col with
            | n when List.mem n group_keys -> n
            | _ | (exception Not_found) -> col
          end
        in
        (name, dir))
      c.order_by
  in
  let required = { Phys_prop.any with order; distinct = c.distinct } in
  (projected, required)

let parse catalog (input : string) : statement =
  let st = { tokens = tokenize input } in
  let first = parse_select_clause st in
  let combined =
    match peek st with
    | Kw ("UNION" | "INTERSECT" | "EXCEPT") -> begin
      let kw = match peek st with Kw k -> k | _ -> assert false in
      advance st;
      let second = parse_select_clause st in
      let left, req1 = translate catalog first in
      let right, _ = translate catalog second in
      let combine =
        match kw with
        | "UNION" -> Logical.union
        | "INTERSECT" -> Logical.intersect
        | _ -> Logical.difference
      in
      (combine left right, req1)
    end
    | _ -> translate catalog first
  in
  (match peek st with
   | Sym ";" -> advance st
   | _ -> ());
  (match peek st with
   | Eof -> ()
   | t -> fail "unexpected trailing %s" (token_to_string t));
  let logical, required = combined in
  { logical; required }
