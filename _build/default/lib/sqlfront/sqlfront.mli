(** A small SQL front end: the "parser" step the paper presumes exists
    in front of a generated optimizer ("the translation from a user
    interface into a logical algebra expression must be performed by the
    parser", §2.2).

    Supported grammar (one level of set operations between two select
    blocks):

    {v
    query    ::= select [ (UNION | INTERSECT | EXCEPT) select ]
    select   ::= SELECT [DISTINCT] items FROM name {, name}
                 [WHERE pred] [GROUP BY cols] [ORDER BY col [DESC] {, ...}]
    items    ::= * | item {, item}
    item     ::= column | agg '(' column-or-star ')' [AS ident]
    pred     ::= disjunctions/conjunctions/NOT over comparisons
                 of columns, integers, floats and 'strings'
    v} *)

exception Parse_error of string
(** Raised with a message pointing at the offending token. *)

type statement = {
  logical : Relalg.Logical.expr;
  required : Relalg.Phys_prop.t;
      (** physical requirements from ORDER BY / DISTINCT *)
}

val parse : Catalog.t -> string -> statement
(** Parse and translate one SQL statement against a catalog (used to
    resolve unqualified column names and validate table names).
    @raise Parse_error on any syntactic or naming problem. *)
