lib/executor/cursor.ml: Array List Option Relalg
