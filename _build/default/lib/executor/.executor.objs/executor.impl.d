lib/executor/executor.ml: Array Catalog Cursor Engine Expr Hashtbl Io_stats List Logical Relalg Schema Seq Tuple
