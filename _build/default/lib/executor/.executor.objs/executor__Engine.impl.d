lib/executor/engine.ml: Array Catalog Cursor Expr Hashtbl Io_stats List Logical Option Physical Relalg Schema Seq Sort_order Tuple Value
