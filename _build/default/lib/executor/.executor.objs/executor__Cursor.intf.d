lib/executor/cursor.mli: Relalg
