lib/executor/io_stats.ml: Format
