(** Page I/O accounting for executed plans, so measured I/O can be
    compared against the cost model's estimates. *)

type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable tuples_produced : int;
}

let create () = { page_reads = 0; page_writes = 0; tuples_produced = 0 }

let read t n = t.page_reads <- t.page_reads + n

let write t n = t.page_writes <- t.page_writes + n

let produced t n = t.tuples_produced <- t.tuples_produced + n

let pp ppf t =
  Format.fprintf ppf "reads=%d writes=%d tuples=%d" t.page_reads t.page_writes
    t.tuples_produced
