(** Volcano iterator-model execution engine: compiles physical plans
    into open/next/close cursors over the catalog's paged storage, with
    I/O accounting that mirrors the cost model. *)

module Cursor = Cursor
module Engine = Engine
module Io_stats = Io_stats

(** [run catalog plan] executes a physical plan and returns its output
    tuples, their schema, and the I/O counters. *)
let run = Engine.run

(** Canonical naive execution of a {e logical} expression, used as a
    semantics oracle by tests: every operator is evaluated by its
    textbook set/bag definition, with no optimizer involved. *)
let rec naive catalog (e : Relalg.Logical.expr) : Relalg.Tuple.t array * Relalg.Schema.t =
  let open Relalg in
  match e.op, e.inputs with
  | Logical.Get name, [] ->
    let t = Catalog.find catalog name in
    (Array.copy t.tuples, t.schema)
  | Logical.Select pred, [ input ] ->
    let tuples, schema = naive catalog input in
    let keep = Expr.eval_pred schema pred in
    (Array.of_seq (Seq.filter keep (Array.to_seq tuples)), schema)
  | Logical.Project cols, [ input ] ->
    let tuples, schema = naive catalog input in
    let out_schema = Schema.project schema cols in
    (Array.map (Tuple.project schema cols) tuples, out_schema)
  | Logical.Join pred, [ l; r ] ->
    let lt, ls = naive catalog l in
    let rt, rs = naive catalog r in
    let schema = Schema.concat ls rs in
    let keep = Expr.eval_pred schema pred in
    let out = ref [] in
    Array.iter
      (fun a ->
        Array.iter
          (fun b ->
            let j = Tuple.concat a b in
            if keep j then out := j :: !out)
          rt)
      lt;
    (Array.of_list (List.rev !out), schema)
  | Logical.Union, [ l; r ] ->
    let lt, ls = naive catalog l in
    let rt, _ = naive catalog r in
    (dedup (Array.append lt rt), ls)
  | Logical.Intersect, [ l; r ] ->
    let lt, ls = naive catalog l in
    let rt, _ = naive catalog r in
    let right = tuple_set rt in
    (dedup (Array.of_seq (Seq.filter (fun t -> Hashtbl.mem right (Array.to_list t)) (Array.to_seq lt))), ls)
  | Logical.Difference, [ l; r ] ->
    let lt, ls = naive catalog l in
    let rt, _ = naive catalog r in
    let right = tuple_set rt in
    ( dedup
        (Array.of_seq
           (Seq.filter (fun t -> not (Hashtbl.mem right (Array.to_list t))) (Array.to_seq lt))),
      ls )
  | Logical.Group_by (keys, aggs), [ input ] ->
    let tuples, schema = naive catalog input in
    (* Reuse the engine's aggregate operator over an in-memory cursor to
       avoid duplicating the aggregate semantics. *)
    let cursor = Engine.hash_aggregate keys aggs (Cursor.of_array schema tuples) in
    (Cursor.to_array cursor, cursor.Cursor.schema)
  | (Logical.Get _ | Logical.Select _ | Logical.Project _ | Logical.Join _
    | Logical.Union | Logical.Intersect | Logical.Difference | Logical.Group_by _), _ ->
    invalid_arg "Executor.naive: arity mismatch"

and dedup tuples =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  Array.iter
    (fun t ->
      let key = Array.to_list t in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := t :: !out
      end)
    tuples;
  Array.of_list (List.rev !out)

and tuple_set tuples =
  let set = Hashtbl.create 64 in
  Array.iter (fun t -> Hashtbl.replace set (Array.to_list t) ()) tuples;
  set
