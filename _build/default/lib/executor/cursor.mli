(** The Volcano iterator interface: every query processing algorithm is
    an operator with open/next/close, consuming and producing streams of
    tuples (Graefe's Volcano execution model, which this optimizer was
    built to feed). *)

type t = {
  schema : Relalg.Schema.t;
  open_ : unit -> unit;
  next : unit -> Relalg.Tuple.t option;
  close : unit -> unit;
}

val of_array : Relalg.Schema.t -> Relalg.Tuple.t array -> t

val to_array : t -> Relalg.Tuple.t array
(** Drive a cursor to exhaustion: open, drain, close. *)

val iter : (Relalg.Tuple.t -> unit) -> t -> unit

val map_stream : Relalg.Schema.t -> (Relalg.Tuple.t -> Relalg.Tuple.t) -> t -> t
(** One-in one-out streaming operator over an input cursor. *)

val filter_stream : (Relalg.Tuple.t -> bool) -> t -> t
