(** Plain operator trees: the form in which queries enter a generated
    optimizer, before being captured in the memo. *)

type 'op t = Node of 'op * 'op t list

val node : 'op -> 'op t list -> 'op t

val op : 'op t -> 'op

val inputs : 'op t -> 'op t list

val size : 'op t -> int

val map : ('a -> 'b) -> 'a t -> 'b t

val pp : (Format.formatter -> 'op -> unit) -> Format.formatter -> 'op t -> unit
