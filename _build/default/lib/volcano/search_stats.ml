type t = {
  mutable goals : int;
  mutable goal_hits : int;
  mutable groups_created : int;
  mutable mexprs_created : int;
  mutable rule_firings : int;
  mutable plans_costed : int;
  mutable enforcer_moves : int;
  mutable failures : int;
  mutable pruned : int;
  mutable merges : int;
}

let create () =
  {
    goals = 0;
    goal_hits = 0;
    groups_created = 0;
    mexprs_created = 0;
    rule_firings = 0;
    plans_costed = 0;
    enforcer_moves = 0;
    failures = 0;
    pruned = 0;
    merges = 0;
  }

let reset t =
  t.goals <- 0;
  t.goal_hits <- 0;
  t.groups_created <- 0;
  t.mexprs_created <- 0;
  t.rule_firings <- 0;
  t.plans_costed <- 0;
  t.enforcer_moves <- 0;
  t.failures <- 0;
  t.pruned <- 0;
  t.merges <- 0

let pp ppf t =
  Format.fprintf ppf
    "goals=%d hits=%d groups=%d mexprs=%d firings=%d plans=%d enforcers=%d failures=%d \
     pruned=%d merges=%d"
    t.goals t.goal_hits t.groups_created t.mexprs_created t.rule_firings t.plans_costed
    t.enforcer_moves t.failures t.pruned t.merges
