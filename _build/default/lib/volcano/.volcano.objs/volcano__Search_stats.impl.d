lib/volcano/search_stats.ml: Format
