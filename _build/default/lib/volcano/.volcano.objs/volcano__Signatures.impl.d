lib/volcano/signatures.ml: Rule
