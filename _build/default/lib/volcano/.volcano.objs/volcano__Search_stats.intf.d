lib/volcano/search_stats.mli: Format
