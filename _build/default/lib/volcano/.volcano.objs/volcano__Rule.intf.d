lib/volcano/rule.mli:
