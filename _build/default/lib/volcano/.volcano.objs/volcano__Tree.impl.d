lib/volcano/tree.ml: Format List String
