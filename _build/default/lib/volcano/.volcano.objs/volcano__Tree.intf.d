lib/volcano/tree.mli: Format
