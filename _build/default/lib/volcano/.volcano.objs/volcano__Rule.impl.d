lib/volcano/rule.ml: List
