lib/volcano/memo.ml: Array Hashtbl List Search_stats Signatures Tree
