lib/volcano/search.ml: Format List Memo Printf Rule Search_stats Signatures String Tree
