(** Machine-independent search-effort counters. Figure 4 compares
    wall-clock seconds on a SparcStation-1; these counters let the
    benchmarks report effort in a hardware-neutral way alongside time. *)

type t = {
  mutable goals : int;  (** FindBestPlan invocations that ran a real optimization *)
  mutable goal_hits : int;  (** FindBestPlan calls answered from the winner table *)
  mutable groups_created : int;
  mutable mexprs_created : int;
  mutable rule_firings : int;  (** transformation-rule applications *)
  mutable plans_costed : int;  (** implementation/enforcer moves pursued *)
  mutable enforcer_moves : int;
  mutable failures : int;  (** goals concluded without a plan within the limit *)
  mutable pruned : int;  (** moves abandoned because the cost limit was exceeded *)
  mutable merges : int;  (** equivalence-class merges from duplicate detection *)
}

val create : unit -> t

val reset : t -> unit

val pp : Format.formatter -> t -> unit
