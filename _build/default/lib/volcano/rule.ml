type 'op pattern =
  | Any
  | Op of ('op -> bool) * 'op pattern list

type group = int

type 'op binding =
  | Group of group
  | Node of 'op * 'op binding list

type ('op, 'lp) transform = {
  t_name : string;
  t_promise : int;
  t_pattern : 'op pattern;
  t_apply : lookup:(group -> 'lp) -> 'op binding -> 'op binding list;
}

type ('op, 'alg, 'lp, 'pp) impl_choice = {
  c_alg : 'alg;
  c_inputs : group list;
  c_alternatives : 'pp list list;
}

type ('op, 'alg, 'lp, 'pp) implement = {
  i_name : string;
  i_promise : int;
  i_pattern : 'op pattern;
  i_apply :
    lookup:(group -> 'lp) ->
    required:'pp ->
    'op binding ->
    ('op, 'alg, 'lp, 'pp) impl_choice list;
}

let rec leaf_groups = function
  | Group g -> [ g ]
  | Node (_, subs) -> List.concat_map leaf_groups subs

let binding_op = function
  | Group _ -> None
  | Node (op, _) -> Some op

let rec pattern_depth = function
  | Any -> 0
  | Op (_, subs) -> 1 + List.fold_left (fun acc p -> max acc (pattern_depth p)) 0 subs
