type 'op t = Node of 'op * 'op t list

let node op inputs = Node (op, inputs)

let op (Node (o, _)) = o

let inputs (Node (_, is)) = is

let rec size (Node (_, is)) = 1 + List.fold_left (fun acc i -> acc + size i) 0 is

let rec map f (Node (o, is)) = Node (f o, List.map (map f) is)

let pp pp_op ppf t =
  let rec go depth (Node (o, is)) =
    Format.fprintf ppf "%s%a" (String.make (2 * depth) ' ') pp_op o;
    List.iter
      (fun i ->
        Format.pp_print_newline ppf ();
        go (depth + 1) i)
      is
  in
  go 0 t
