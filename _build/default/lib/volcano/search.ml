(** The search engine shared by all generated optimizers (paper §3):
    directed dynamic programming. FindBestPlan (Figure 2) is
    [find_best] below. One deliberate restructuring: where Figure 2
    lists transformations among the moves of a goal, we first close the
    goal's equivalence class under the transformation rules
    ([explore_group]) and then enumerate algorithm and enforcer moves
    over all multi-expressions in the class. For exhaustive search the
    two orders visit exactly the same plans; the closure form is how
    this search was later productized (Cascades). The paper's
    in-progress marking, excluding property vectors, failure caching,
    promise ordering and limit-based pruning are all implemented as
    described. *)

module Make (M : Signatures.MODEL) = struct
  module Memo = Memo.Make (M)

  type config = {
    pruning : bool;  (** branch-and-bound via cost limits (Figure 2) *)
    max_moves : int option;
        (** pursue only the k most promising moves per goal — the
            paper's heuristic-guidance hook ("In the future, a subset of
            the moves will be selected"); [None] = exhaustive *)
    task_limit : int;  (** safety valve on the number of goals optimized *)
  }

  let default_config = { pruning = true; max_moves = None; task_limit = max_int }

  type t = {
    memo : Memo.t;
    config : config;
    stats : Search_stats.t;
  }

  (** A fully extracted plan: the optimizer's output. *)
  type plan_tree = {
    alg : M.alg;
    children : plan_tree list;
    props : M.phys_props;
    cost : M.cost;  (** total cost of this subtree *)
  }

  exception Search_limit_exceeded

  let create ?(config = default_config) () =
    let stats = Search_stats.create () in
    { memo = Memo.create stats; config; stats }

  let stats t = t.stats

  let memo t = t.memo

  (* Capture a query tree in the memo bottom-up. *)
  let rec insert_query t (tree : M.op Tree.t) : Memo.group =
    let inputs = List.map (insert_query t) (Tree.inputs tree) in
    Memo.insert t.memo (Tree.op tree) inputs

  let lookup t g = Memo.lprops t.memo g

  (* ------------------------------------------------------------------ *)
  (* Exploration: close a group under the transformation rules.         *)
  (* ------------------------------------------------------------------ *)

  let rule_index = List.mapi (fun i r -> (i, r)) M.transforms

  let cartesian lists =
    List.fold_right
      (fun options acc ->
        List.concat_map (fun o -> List.map (fun rest -> o :: rest) acc) options)
      lists [ [] ]

  (* All bindings of [pattern] rooted at multi-expression [m]. Matching
     below the root enumerates the input groups' expressions, exploring
     them first so the enumeration is complete (goal-directed: only
     groups a pattern actually descends into get explored). *)
  let rec bindings_below t pattern g : M.op Rule.binding list =
    match pattern with
    | Rule.Any -> [ Rule.Group g ]
    | Rule.Op (_, _) ->
      explore_group t g;
      List.concat_map (fun m -> bindings_at t pattern m) (Memo.mexprs t.memo g)

  and bindings_at t pattern (m : Memo.mexpr) : M.op Rule.binding list =
    match pattern with
    | Rule.Any -> assert false (* callers match roots against Op patterns *)
    | Rule.Op (matches, subs) ->
      if (not (matches m.op)) || List.length subs <> List.length m.inputs then []
      else
        cartesian (List.map2 (fun p g -> bindings_below t p g) subs m.inputs)
        |> List.map (fun inputs -> Rule.Node (m.op, inputs))

  (* Insert the expression a rule produced. Nested nodes become (new or
     existing) classes of their own — Figure 3: expression C "requires a
     new equivalence class"; the root joins the class being explored. *)
  and insert_binding t ~target (b : M.op Rule.binding) : Memo.group =
    match b with
    | Rule.Group g -> g
    | Rule.Node (op, subs) ->
      let inputs = List.map (insert_binding_input t) subs in
      Memo.insert t.memo ~target op inputs

  and insert_binding_input t (b : M.op Rule.binding) : Memo.group =
    match b with
    | Rule.Group g -> g
    | Rule.Node (op, subs) ->
      let inputs = List.map (insert_binding_input t) subs in
      Memo.insert t.memo op inputs

  and explore_group t g =
    let g = Memo.find_root t.memo g in
    if Memo.is_explored t.memo g || Memo.is_exploring t.memo g then ()
    else begin
      Memo.set_exploring t.memo g true;
      let progress = ref true in
      while !progress do
        progress := false;
        let snapshot = Memo.mexprs t.memo g in
        List.iter
          (fun (m : Memo.mexpr) ->
            List.iter
              (fun (i, (rule : (M.op, M.logical_props) Rule.transform)) ->
                let bit = 1 lsl i in
                if m.applied land bit = 0 then begin
                  m.applied <- m.applied lor bit;
                  let bindings = bindings_at t rule.t_pattern m in
                  List.iter
                    (fun b ->
                      let results = rule.t_apply ~lookup:(lookup t) b in
                      if results <> [] then begin
                        t.stats.rule_firings <- t.stats.rule_firings + 1;
                        List.iter
                          (fun b' ->
                            let g' = insert_binding t ~target:g b' in
                            ignore (g' : Memo.group);
                            progress := true)
                          results
                      end)
                    bindings
                end)
              rule_index)
          snapshot;
        (* New mexprs appended during this sweep are caught by the next
           sweep; the applied-bitmask keeps work linear in (mexpr, rule)
           pairs. *)
        if not !progress then ()
      done;
      Memo.set_exploring t.memo g false;
      Memo.set_explored t.memo g true
    end

  (* ------------------------------------------------------------------ *)
  (* Moves                                                               *)
  (* ------------------------------------------------------------------ *)

  type move =
    | Impl of {
        alg : M.alg;
        input_groups : Memo.group list;
        input_reqs : M.phys_props list;  (** one alternative vector *)
        promise : int;
      }
    | Enforce of {
        alg : M.alg;
        relaxed : M.phys_props;
        excluded : M.phys_props;
        promise : int;
      }

  let move_promise = function Impl m -> m.promise | Enforce m -> m.promise

  let impl_moves t g ~required =
    explore_group t g;
    List.concat_map
      (fun (rule : (M.op, M.alg, M.logical_props, M.phys_props) Rule.implement) ->
        let bindings =
          List.concat_map (fun m -> bindings_at t rule.i_pattern m) (Memo.mexprs t.memo g)
        in
        List.concat_map
          (fun b ->
            rule.i_apply ~lookup:(lookup t) ~required b
            |> List.concat_map (fun (c : _ Rule.impl_choice) ->
                   List.map
                     (fun vector ->
                       if List.length vector <> List.length c.c_inputs then
                         invalid_arg
                           (Printf.sprintf
                              "rule %s: alternative vector arity mismatch for %s"
                              rule.i_name (M.alg_name c.c_alg));
                       Impl
                         {
                           alg = c.c_alg;
                           input_groups = List.map (Memo.find_root t.memo) c.c_inputs;
                           input_reqs = vector;
                           promise = rule.i_promise;
                         })
                     c.c_alternatives))
          bindings)
      M.implementations

  let enforcer_moves ~props ~required =
    List.map
      (fun (alg, relaxed, excluded) -> Enforce { alg; relaxed; excluded; promise = 0 })
      (M.enforcers ~props ~required)

  (* ------------------------------------------------------------------ *)
  (* FindBestPlan                                                        *)
  (* ------------------------------------------------------------------ *)

  let cost_lt a b = M.cost_compare a b < 0

  let cost_le a b = M.cost_compare a b <= 0

  (* Skip moves whose delivered properties already satisfy the excluding
     vector: "since merge-join is able to satisfy the excluding
     properties, it would not be considered a suitable algorithm for the
     sort input" (§3). *)
  let excluded_by ~excluded ~delivered =
    match excluded with
    | None -> false
    | Some ex -> M.pp_covers ~provided:delivered ~required:ex

  let rec find_best t g ~required ~excluded ~limit : Memo.plan option =
    let g = Memo.find_root t.memo g in
    let key = (required, excluded) in
    match Memo.winner t.memo g key with
    | Some w -> begin
      match w.w_plan with
      | Some p ->
        (* A recorded plan is optimal for this goal; it only answers
           the request if it fits the present limit (Figure 2: "if the
           cost in the look-up table < Limit return Plan"). *)
        t.stats.goal_hits <- t.stats.goal_hits + 1;
        if (not t.config.pruning) || cost_le p.p_cost limit then Some p else None
      | None ->
        if cost_le limit w.w_bound then begin
          (* Recorded failure at a bound at least as generous: fail
             fast ("failures that can save future optimization
             effort ... with the same or even lower cost limits"). *)
          t.stats.goal_hits <- t.stats.goal_hits + 1;
          None
        end
        else optimize_goal t g ~required ~excluded ~limit
    end
    | None ->
      if Memo.in_progress t.memo g key then None
      else optimize_goal t g ~required ~excluded ~limit

  and optimize_goal t g ~required ~excluded ~limit : Memo.plan option =
    let key = (required, excluded) in
    t.stats.goals <- t.stats.goals + 1;
    if t.stats.goals > t.config.task_limit then raise Search_limit_exceeded;
    Memo.mark_in_progress t.memo g key;
    let moves =
      impl_moves t g ~required @ enforcer_moves ~props:(lookup t g) ~required
    in
    let moves =
      List.stable_sort (fun a b -> compare (move_promise b) (move_promise a)) moves
    in
    let moves =
      match t.config.max_moves with
      | None -> moves
      | Some k -> List.filteri (fun i _ -> i < k) moves
    in
    let best : Memo.plan option ref = ref None in
    (* The running branch-and-bound limit: starts at the caller's limit
       and tightens as complete plans are found. *)
    let bound = ref (if t.config.pruning then limit else M.cost_infinite) in
    let consider (candidate : Memo.plan) =
      let better =
        match !best with
        | None -> (not t.config.pruning) || cost_le candidate.p_cost limit
        | Some b -> cost_lt candidate.p_cost b.p_cost
      in
      if better && M.pp_covers ~provided:candidate.p_props ~required then begin
        best := Some candidate;
        if cost_lt candidate.p_cost !bound then bound := candidate.p_cost
      end
    in
    let pursue = function
      | Impl { alg; input_groups; input_reqs; promise = _ } ->
        let input_props = List.map (lookup t) input_groups in
        let output_props = lookup t g in
        let delivered = M.deliver alg input_reqs in
        if excluded_by ~excluded ~delivered then ()
        else if not (M.pp_covers ~provided:delivered ~required) then ()
        else begin
          t.stats.plans_costed <- t.stats.plans_costed + 1;
          let local =
            M.cost_of alg ~inputs:input_props ~input_props:input_reqs ~output:output_props
          in
          (* Optimize inputs left to right, tightening the remaining
             budget (Figure 2: Limit - TotalCost). *)
          let rec inputs_loop acc_cost acc_plans groups reqs =
            match groups, reqs with
            | [], [] -> Some (acc_cost, List.rev acc_plans)
            | gi :: groups', ri :: reqs' ->
              if t.config.pruning && not (cost_le acc_cost !bound) then begin
                t.stats.pruned <- t.stats.pruned + 1;
                None
              end
              else begin
                let sub_limit = M.cost_sub !bound acc_cost in
                match find_best t gi ~required:ri ~excluded:None ~limit:sub_limit with
                | None -> None
                | Some sub ->
                  inputs_loop
                    (M.cost_add acc_cost sub.Memo.p_cost)
                    ((gi, ri, None) :: acc_plans)
                    groups' reqs'
              end
            | _, _ -> assert false
          in
          match inputs_loop local [] input_groups input_reqs with
          | None -> ()
          | Some (total, input_goals) ->
            consider
              { Memo.p_alg = alg; p_inputs = input_goals; p_props = delivered; p_cost = total }
        end
      | Enforce { alg; relaxed; excluded = enf_excluded; promise = _ } ->
        let gprops = lookup t g in
        let delivered = M.deliver alg [ relaxed ] in
        if excluded_by ~excluded ~delivered then ()
        else if not (M.pp_covers ~provided:delivered ~required) then ()
        else begin
          t.stats.enforcer_moves <- t.stats.enforcer_moves + 1;
          t.stats.plans_costed <- t.stats.plans_costed + 1;
          (* "the Volcano optimizer generator's search algorithm
             immediately ... subtracts the cost of the enforcer ...
             from the bound used for branch-and-bound pruning" (§6). *)
          let local =
            M.cost_of alg ~inputs:[ gprops ] ~input_props:[ relaxed ] ~output:gprops
          in
          let sub_limit = M.cost_sub !bound local in
          if t.config.pruning && M.cost_compare sub_limit M.cost_zero <= 0 then
            t.stats.pruned <- t.stats.pruned + 1
          else
            match
              find_best t g ~required:relaxed ~excluded:(Some enf_excluded) ~limit:sub_limit
            with
            | None -> ()
            | Some sub ->
              consider
                {
                  Memo.p_alg = alg;
                  p_inputs = [ (g, relaxed, Some enf_excluded) ];
                  p_props = delivered;
                  p_cost = M.cost_add local sub.Memo.p_cost;
                }
        end
    in
    List.iter pursue moves;
    Memo.unmark_in_progress t.memo g key;
    (match !best with
     | Some p -> Memo.set_winner t.memo g key (Some p) limit
     | None ->
       t.stats.failures <- t.stats.failures + 1;
       Memo.set_winner t.memo g key None limit);
    !best

  (* ------------------------------------------------------------------ *)
  (* Plan extraction                                                     *)
  (* ------------------------------------------------------------------ *)

  let rec extract t g ~required ~excluded : plan_tree =
    let g = Memo.find_root t.memo g in
    match Memo.winner t.memo g (required, excluded) with
    | None | Some { w_plan = None; _ } ->
      invalid_arg "Search.extract: no winning plan recorded for goal"
    | Some { w_plan = Some p; _ } ->
      (* Consistency check (§2.2): "generated optimizers verify that the
         physical properties of a chosen plan really do satisfy the
         physical property vector given as part of the optimization
         goal." *)
      assert (M.pp_covers ~provided:p.p_props ~required);
      let children =
        List.map (fun (gi, ri, ei) -> extract t gi ~required:ri ~excluded:ei) p.p_inputs
      in
      { alg = p.p_alg; children; props = p.p_props; cost = p.p_cost }

  type outcome = {
    plan : plan_tree option;  (** [None]: no plan within the cost limit *)
    root_group : Memo.group;
    search_stats : Search_stats.t;
    memo_groups : int;
    memo_mexprs : int;
  }

  (** Optimize a query: insert it, run FindBestPlan for the required
      properties under the cost limit, and extract the winning plan.
      A fresh optimizer should be used per query (the paper reinitializes
      partial results for each query). *)
  let optimize ?(limit = M.cost_infinite) t (query : M.op Tree.t) ~required : outcome =
    let root = insert_query t query in
    let result = find_best t root ~required ~excluded:None ~limit in
    let plan =
      match result with
      | None -> None
      | Some _ -> Some (extract t root ~required ~excluded:None)
    in
    {
      plan;
      root_group = root;
      search_stats = t.stats;
      memo_groups = Memo.n_groups t.memo;
      memo_mexprs = Memo.n_mexprs t.memo;
    }

  (* Render the memo: every equivalence class with its logical
     multi-expressions and the winners recorded per optimization goal —
     the paper's "hash table of expressions and equivalence classes"
     made visible for debugging and teaching. *)
  let pp_memo ppf t =
    List.iter
      (fun g ->
        let mexprs = Memo.mexprs t.memo g in
        if mexprs <> [] then begin
          Format.fprintf ppf "group %d:@\n" g;
          List.iter
            (fun (m : Memo.mexpr) ->
              Format.fprintf ppf "  %s(%s)@\n" (M.op_name m.op)
                (String.concat ", " (List.map string_of_int m.inputs)))
            mexprs
        end)
      (Memo.roots t.memo)

  let pp_plan ppf (p : plan_tree) =
    let rec go depth node =
      Format.fprintf ppf "%s%s  [%s; cost %s]" (String.make depth ' ')
        (M.alg_name node.alg) (M.pp_to_string node.props) (M.cost_to_string node.cost);
      List.iter
        (fun c ->
          Format.pp_print_newline ppf ();
          go (depth + 2) c)
        node.children
    in
    go 0 p
end
