(** Column statistics backing selectivity estimation: distinct counts,
    min/max bounds, and equi-width histograms built from the data. *)

type column_stats = {
  n_distinct : float;
  null_count : float;
  min_value : Relalg.Value.t option;  (** [None] when all values are null *)
  max_value : Relalg.Value.t option;
  histogram : histogram option;  (** only for numeric columns *)
}

and histogram = {
  lo : float;
  hi : float;
  buckets : float array;  (** tuple counts per equi-width bucket *)
}

type t = {
  row_count : float;
  columns : (string * column_stats) list;  (** keyed by qualified column name *)
}

val of_tuples : Relalg.Schema.t -> Relalg.Tuple.t array -> t
(** Scan the data once and build full statistics. *)

val column : t -> string -> column_stats option

val histogram_fraction : histogram -> lo:float option -> hi:float option -> float
(** Estimated fraction of rows falling in the (inclusive) numeric
    interval; [None] bounds are unbounded. *)

val pp : Format.formatter -> t -> unit
