lib/catalog/stats.ml: Array Float Format List Option Relalg Set
