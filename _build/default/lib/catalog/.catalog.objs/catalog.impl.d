lib/catalog/catalog.ml: Array Hashtbl List Plan_schema Printf Random Relalg Selectivity Stats String
