lib/catalog/selectivity.ml: Expr Float List Logical_props Relalg Value
