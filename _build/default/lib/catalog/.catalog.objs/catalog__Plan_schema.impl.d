lib/catalog/plan_schema.ml: Array List Logical Physical Relalg Schema
