lib/catalog/catalog.mli: Plan_schema Relalg Selectivity Stats
