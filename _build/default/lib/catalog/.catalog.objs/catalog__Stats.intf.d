lib/catalog/stats.mli: Format Relalg
