lib/catalog/selectivity.mli: Relalg
