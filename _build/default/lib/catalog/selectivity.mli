(** Selectivity estimation, encapsulated in the logical property
    functions per the paper ("the logical property functions also
    encapsulate selectivity estimation", §2.2). Estimates follow the
    System R conventions: [1/distinct] for equality, range
    interpolation against known bounds, [1/max(d1,d2)] per equi-join
    key. *)

val predicate : Relalg.Logical_props.t -> Relalg.Expr.t -> float
(** Fraction of input tuples satisfying a selection predicate,
    in [0, 1]. *)

val join :
  left:Relalg.Logical_props.t -> right:Relalg.Logical_props.t -> Relalg.Expr.t -> float
(** Fraction of the Cartesian product satisfying a join predicate. *)

val default_unknown : float
(** Selectivity assumed for conditions the estimator cannot analyze. *)
