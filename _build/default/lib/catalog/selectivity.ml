open Relalg

let default_unknown = 1. /. 3.

let clamp s = Float.max 0. (Float.min 1. s)

let const_float = function
  | Expr.Const v -> Value.to_float v
  | Expr.Col _ | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ | Expr.Arith _ -> None

(* Fraction of [lo, hi] lying below/above a constant, by linear
   interpolation (System R style). *)
let range_fraction (lo, hi) op c =
  if hi <= lo then default_unknown
  else
    let f = (c -. lo) /. (hi -. lo) in
    let f = clamp f in
    match op with
    | Expr.Lt | Expr.Le -> f
    | Expr.Gt | Expr.Ge -> 1. -. f
    | Expr.Eq | Expr.Ne -> default_unknown

let rec conjunct_selectivity props e =
  match e with
  | Expr.Const (Value.Bool true) -> 1.
  | Expr.Const (Value.Bool false) -> 0.
  | Expr.Cmp (Expr.Eq, Expr.Col c, Expr.Const _)
  | Expr.Cmp (Expr.Eq, Expr.Const _, Expr.Col c) ->
    1. /. Float.max 1. (Logical_props.distinct_of props c)
  | Expr.Cmp (Expr.Ne, Expr.Col c, Expr.Const _)
  | Expr.Cmp (Expr.Ne, Expr.Const _, Expr.Col c) ->
    1. -. (1. /. Float.max 1. (Logical_props.distinct_of props c))
  | Expr.Cmp (op, Expr.Col c, (Expr.Const _ as k)) ->
    (match Logical_props.range_of props c, const_float k with
     | Some range, Some v -> range_fraction range op v
     | _, _ -> default_unknown)
  | Expr.Cmp (op, (Expr.Const _ as k), Expr.Col c) ->
    let flipped =
      match op with
      | Expr.Lt -> Expr.Gt
      | Expr.Le -> Expr.Ge
      | Expr.Gt -> Expr.Lt
      | Expr.Ge -> Expr.Le
      | Expr.Eq -> Expr.Eq
      | Expr.Ne -> Expr.Ne
    in
    conjunct_selectivity props (Expr.Cmp (flipped, Expr.Col c, k))
  | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
    let da = Logical_props.distinct_of props a
    and db = Logical_props.distinct_of props b in
    1. /. Float.max 1. (Float.max da db)
  | Expr.And (a, b) -> conjunct_selectivity props a *. conjunct_selectivity props b
  | Expr.Or (a, b) ->
    let sa = conjunct_selectivity props a and sb = conjunct_selectivity props b in
    clamp (sa +. sb -. (sa *. sb))
  | Expr.Not a -> clamp (1. -. conjunct_selectivity props a)
  | Expr.Cmp _ | Expr.Col _ | Expr.Const _ | Expr.Arith _ -> default_unknown

let predicate props e =
  clamp
    (List.fold_left
       (fun acc c -> acc *. conjunct_selectivity props c)
       1. (Expr.conjuncts e))

let join ~left ~right e =
  let keys = Expr.equijoin_keys e ~left:left.Logical_props.schema ~right:right.Logical_props.schema in
  let key_cols = List.concat_map (fun (l, r) -> [ l; r ]) keys in
  let key_selectivity =
    (* Unclamped distinct counts keep the estimate identical for every
       derivation of the same join subset (memo classes freeze their
       properties at first derivation; plans are re-costed along their
       own shape — both must agree). *)
    let raw props col =
      match Logical_props.distinct_raw props col with
      | Some d -> d
      | None -> props.Logical_props.card
    in
    List.fold_left
      (fun acc (l, r) ->
        let dl = raw left l and dr = raw right r in
        acc /. Float.max 1. (Float.max dl dr))
      1. keys
  in
  (* Residual conjuncts (not equi-join keys) estimated locally against
     whichever side they mention, or the generic default. *)
  let residual =
    Expr.conjuncts e
    |> List.filter (fun c ->
           match c with
           | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
             not (List.mem a key_cols && List.mem b key_cols)
           | _ -> true)
  in
  let residual_selectivity =
    List.fold_left
      (fun acc c ->
        let s =
          if Expr.refers_only_to left.Logical_props.schema c then
            conjunct_selectivity left c
          else if Expr.refers_only_to right.Logical_props.schema c then
            conjunct_selectivity right c
          else if Expr.equal c Expr.true_ then 1.
          else default_unknown
        in
        acc *. s)
      1. residual
  in
  clamp (key_selectivity *. residual_selectivity)
