type column_stats = {
  n_distinct : float;
  null_count : float;
  min_value : Relalg.Value.t option;
  max_value : Relalg.Value.t option;
  histogram : histogram option;
}

and histogram = {
  lo : float;
  hi : float;
  buckets : float array;
}

type t = {
  row_count : float;
  columns : (string * column_stats) list;
}

let bucket_count = 16

let build_histogram values =
  match values with
  | [] -> None
  | v0 :: _ ->
    let lo = List.fold_left Float.min v0 values in
    let hi = List.fold_left Float.max v0 values in
    if hi <= lo then None
    else begin
      let buckets = Array.make bucket_count 0. in
      let width = (hi -. lo) /. Float.of_int bucket_count in
      let place v =
        let i = int_of_float ((v -. lo) /. width) in
        let i = if i >= bucket_count then bucket_count - 1 else i in
        buckets.(i) <- buckets.(i) +. 1.
      in
      List.iter place values;
      Some { lo; hi; buckets }
    end

let column_stats_of_values values =
  let module VS = Set.Make (struct
    type t = Relalg.Value.t

    let compare = Relalg.Value.compare
  end) in
  let non_null = List.filter (fun v -> not (Relalg.Value.is_null v)) values in
  let nulls = List.length values - List.length non_null in
  let distinct = VS.cardinal (VS.of_list non_null) in
  let sorted = List.sort Relalg.Value.compare non_null in
  let min_value = match sorted with [] -> None | v :: _ -> Some v in
  let max_value =
    match List.rev sorted with [] -> None | v :: _ -> Some v
  in
  let numeric = List.filter_map Relalg.Value.to_float non_null in
  let histogram =
    if List.length numeric = List.length non_null then build_histogram numeric else None
  in
  {
    n_distinct = Float.of_int distinct;
    null_count = Float.of_int nulls;
    min_value;
    max_value;
    histogram;
  }

let of_tuples schema tuples =
  let n = Array.length tuples in
  let columns =
    Array.to_list schema
    |> List.mapi (fun i (attr : Relalg.Schema.attribute) ->
           let values = Array.to_list (Array.map (fun t -> t.(i)) tuples) in
           (attr.name, column_stats_of_values values))
  in
  { row_count = Float.of_int n; columns }

let column t name = List.assoc_opt name t.columns

let histogram_fraction h ~lo ~hi =
  let total = Array.fold_left ( +. ) 0. h.buckets in
  if total <= 0. then 0.
  else begin
    let width = (h.hi -. h.lo) /. Float.of_int (Array.length h.buckets) in
    let lo_bound = Option.value lo ~default:h.lo in
    let hi_bound = Option.value hi ~default:h.hi in
    let covered = ref 0. in
    Array.iteri
      (fun i count ->
        let b_lo = h.lo +. (Float.of_int i *. width) in
        let b_hi = b_lo +. width in
        (* Fraction of this bucket overlapping [lo_bound, hi_bound],
           assuming uniformity within the bucket. *)
        let overlap = Float.max 0. (Float.min b_hi hi_bound -. Float.max b_lo lo_bound) in
        if width > 0. then covered := !covered +. (count *. (overlap /. width)))
      h.buckets;
    Float.min 1. (!covered /. total)
  end

let pp ppf t =
  Format.fprintf ppf "rows=%.0f" t.row_count;
  List.iter
    (fun (name, c) ->
      Format.fprintf ppf "@\n  %s: distinct=%.0f nulls=%.0f" name c.n_distinct c.null_count)
    t.columns
