lib/relmodel/derive.mli: Catalog Relalg
