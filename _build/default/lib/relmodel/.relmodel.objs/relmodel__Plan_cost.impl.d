lib/relmodel/plan_cost.ml: Catalog Cost Cost_model Derive List Logical Logical_props Physical Relalg
