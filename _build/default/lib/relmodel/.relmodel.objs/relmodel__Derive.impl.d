lib/relmodel/derive.ml: Array Catalog Float List Logical Logical_props Relalg Schema
