lib/relmodel/rel_model.ml: Array Catalog Cost Cost_model Derive Expr Float List Logical Logical_props Phys_prop Physical Relalg Rewrites Schema Sort_order String Volcano
