lib/relmodel/optimizer.ml: Catalog Derive Format List Option Rel_model Relalg String Volcano
