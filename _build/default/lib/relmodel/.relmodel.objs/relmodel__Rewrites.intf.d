lib/relmodel/rewrites.mli: Relalg
