lib/relmodel/rel_model.mli: Catalog Relalg Volcano
