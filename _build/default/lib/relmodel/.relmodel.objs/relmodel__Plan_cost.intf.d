lib/relmodel/plan_cost.mli: Catalog Relalg
