lib/relmodel/rewrites.ml: Expr List Relalg Schema
