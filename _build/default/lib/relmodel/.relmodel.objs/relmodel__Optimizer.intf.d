lib/relmodel/optimizer.mli: Catalog Format Rel_model Relalg Volcano
