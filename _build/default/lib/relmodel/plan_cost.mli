(** Neutral re-costing of finished physical plans. Both optimizers carry
    their own running cost estimates, which can differ slightly for the
    same plan because logical properties are frozen per equivalence
    class at first derivation. For the Figure 4 plan-quality comparison
    the produced plans are re-estimated here, bottom-up over the plan
    itself, so Volcano and EXODUS plans are judged by one estimator. *)

val props :
  Catalog.t -> Relalg.Physical.plan -> Relalg.Logical_props.t
(** Logical properties of a plan node's output, derived bottom-up. *)

val estimate :
  Catalog.t ->
  ?params:Relalg.Cost_model.params ->
  Relalg.Physical.plan ->
  Relalg.Cost.t
(** Total estimated cost of the plan: sum of each operator's local cost
    under the shared cost model. *)
