(** The relational model specification: the input an optimizer
    implementor hands to the Volcano optimizer generator (paper §2.2).
    [make] assembles the ten specification items — operators,
    transformation rules, algorithms and enforcers, implementation
    rules, and the cost/property ADT functions — into a [MODEL] module;
    applying {!Volcano.Search.Make} to the result is the generation
    step. *)

module type REL_MODEL =
  Volcano.Signatures.MODEL
    with type op = Relalg.Logical.op
     and type alg = Relalg.Physical.alg
     and type logical_props = Relalg.Logical_props.t
     and type phys_props = Relalg.Phys_prop.t
     and type cost = Relalg.Cost.t

(** Knobs for the ablation experiments (DESIGN.md A3–A5); the default
    is the paper's full configuration. *)
type flags = {
  alternatives : bool;
      (** offer multiple alternative input property vectors for
          merge-based binary operators (§3's intersection example) *)
  left_deep_only : bool;
      (** implementation-rule condition restricting join plans to
          left-deep shape (composite inners rejected) *)
  order_enforcer : bool;
      (** make the sort enforcer available; when [false], sort order
          cannot be established, emulating the EXODUS treatment where
          sorting hides inside cost functions *)
  cartesian : bool;
      (** let associativity derive predicate-less (Cartesian) joins *)
}

val default_flags : flags

val make :
  catalog:Catalog.t ->
  ?params:Relalg.Cost_model.params ->
  ?flags:flags ->
  unit ->
  (module REL_MODEL)

val to_tree : Relalg.Logical.expr -> Relalg.Logical.op Volcano.Tree.t
(** Convert a logical expression into the generic operator-tree form the
    search engine consumes. *)
