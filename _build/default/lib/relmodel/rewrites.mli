(** Predicate bookkeeping shared by the Volcano rule set and the EXODUS
    baseline: how join predicates are redistributed when joins are
    reassociated. *)

val assoc_split :
  p1:Relalg.Expr.t ->
  p2:Relalg.Expr.t ->
  schema_b:Relalg.Schema.t ->
  schema_c:Relalg.Schema.t ->
  Relalg.Expr.t * Relalg.Expr.t
(** For JOIN(p1, JOIN(p2, A, B), C) == JOIN(top, A, JOIN(bottom, B, C)):
    partition the conjuncts of [p1 AND p2] into those referring only to
    B's and C's columns ([bottom]) and the rest ([top]); returns
    [(top, bottom)]. *)

val links_schemas :
  Relalg.Schema.t -> Relalg.Schema.t -> Relalg.Expr.t -> bool
(** A conjunct "links" two schemas when it references columns of both —
    the condition under which a derived join is not a Cartesian
    product. *)
