(** The property functions for logical operators (paper §2.2, item 10):
    derive the logical properties — schema, cardinality, distinct
    counts — of an operator's output from its inputs'. Selectivity
    estimation is encapsulated here via {!Catalog.Selectivity}. *)

val op :
  Catalog.t ->
  Relalg.Logical.op ->
  Relalg.Logical_props.t list ->
  Relalg.Logical_props.t
(** @raise Not_found when a [Get] names an unknown relation. *)

val expr : Catalog.t -> Relalg.Logical.expr -> Relalg.Logical_props.t
(** Bottom-up derivation over a whole logical expression tree. *)
