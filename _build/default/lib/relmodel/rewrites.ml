open Relalg

let links_schemas sa sb conj =
  let cols = Expr.columns conj in
  List.exists (fun col -> Schema.mem sa col) cols
  && List.exists (fun col -> Schema.mem sb col) cols

let assoc_split ~p1 ~p2 ~schema_b ~schema_c =
  let sbc = Schema.concat schema_b schema_c in
  let all = Expr.conjuncts p1 @ Expr.conjuncts p2 in
  let bottom, top = List.partition (Expr.refers_only_to sbc) all in
  (Expr.conjoin top, Expr.conjoin bottom)
