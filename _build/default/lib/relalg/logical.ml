type agg_func =
  | Count
  | Sum
  | Min
  | Max
  | Avg

type agg = {
  func : agg_func;
  column : string option;
  alias : string;
}

type op =
  | Get of string
  | Select of Expr.t
  | Project of string list
  | Join of Expr.t
  | Union
  | Intersect
  | Difference
  | Group_by of string list * agg list

type expr = {
  op : op;
  inputs : expr list;
}

let arity = function
  | Get _ -> 0
  | Select _ | Project _ | Group_by _ -> 1
  | Join _ | Union | Intersect | Difference -> 2

let mk op inputs =
  if List.length inputs <> arity op then
    invalid_arg "Logical.mk: arity mismatch"
  else { op; inputs }

let get name = mk (Get name) []
let select pred input = mk (Select pred) [ input ]
let project cols input = mk (Project cols) [ input ]
let join pred l r = mk (Join pred) [ l; r ]
let union l r = mk Union [ l; r ]
let intersect l r = mk Intersect [ l; r ]
let difference l r = mk Difference [ l; r ]
let group_by keys aggs input = mk (Group_by (keys, aggs)) [ input ]

let agg_func_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"

let agg_result_name a = a.alias

let op_name = function
  | Get t -> "get(" ^ t ^ ")"
  | Select p -> "select[" ^ Expr.to_string p ^ "]"
  | Project cols -> "project[" ^ String.concat ", " cols ^ "]"
  | Join p -> "join[" ^ Expr.to_string p ^ "]"
  | Union -> "union"
  | Intersect -> "intersect"
  | Difference -> "difference"
  | Group_by (keys, aggs) ->
    Printf.sprintf "group_by[%s; %s]" (String.concat ", " keys)
      (String.concat ", "
         (List.map
            (fun a ->
              Printf.sprintf "%s(%s) as %s" (agg_func_name a.func)
                (Option.value a.column ~default:"*")
                a.alias)
            aggs))

let op_equal (a : op) (b : op) = a = b

let op_hash (a : op) = Hashtbl.hash_param 100 256 a

let equal (a : expr) (b : expr) = a = b

let rec size e = 1 + List.fold_left (fun acc i -> acc + size i) 0 e.inputs

let rec relations e =
  match e.op with
  | Get t -> [ t ]
  | Select _ | Project _ | Join _ | Union | Intersect | Difference | Group_by _ ->
    List.concat_map relations e.inputs

let pp_op ppf op = Format.pp_print_string ppf (op_name op)

let rec pp_indent ppf depth e =
  Format.fprintf ppf "%s%a" (String.make (2 * depth) ' ') pp_op e.op;
  List.iter (fun i -> Format.fprintf ppf "@\n%a" (fun ppf -> pp_indent ppf (depth + 1)) i) e.inputs

let pp ppf e = pp_indent ppf 0 e
