type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type arith =
  | Add
  | Sub
  | Mul
  | Div

type t =
  | Col of string
  | Const of Value.t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t

let col c = Col c
let int i = Const (Value.Int i)
let str s = Const (Value.Str s)
let bool b = Const (Value.Bool b)
let float f = Const (Value.Float f)

let ( =% ) a b = Cmp (Eq, a, b)
let ( <% ) a b = Cmp (Lt, a, b)
let ( <=% ) a b = Cmp (Le, a, b)
let ( >% ) a b = Cmp (Gt, a, b)
let ( >=% ) a b = Cmp (Ge, a, b)
let ( &&% ) a b = And (a, b)
let ( ||% ) a b = Or (a, b)

let true_ = Const (Value.Bool true)

let columns expr =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Col c ->
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        out := c :: !out
      end
    | Const _ -> ()
    | Not e -> go e
    | Cmp (_, a, b) | And (a, b) | Or (a, b) | Arith (_, a, b) ->
      go a;
      go b
  in
  go expr;
  List.rev !out

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | Const (Value.Bool true) -> []
  | e -> [ e ]

let conjoin conjs =
  (* Canonical conjunct order, so predicates assembled along different
     rewrite paths compare equal — the memo deduplicates expressions by
     structural equality of their operators. *)
  match List.sort_uniq compare conjs with
  | [] -> true_
  | e :: rest -> List.fold_left (fun acc c -> And (acc, c)) e rest

let refers_only_to schema expr =
  List.for_all (fun c -> Schema.mem schema c) (columns expr)

let equijoin_keys expr ~left ~right =
  let keys conj =
    match conj with
    | Cmp (Eq, Col a, Col b) ->
      let in_left c = Schema.mem left c and in_right c = Schema.mem right c in
      if in_left a && in_right b && not (in_right a) && not (in_left b) then
        Some (Schema.resolve left a, Schema.resolve right b)
      else if in_left b && in_right a && not (in_right b) && not (in_left a) then
        Some (Schema.resolve left b, Schema.resolve right a)
      else None
    | _ -> None
  in
  List.filter_map keys (conjuncts expr)

let eval_cmp op a b =
  let c = Value.compare a b in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let compile schema expr =
  (* Resolve all columns up-front so evaluation is a pure array walk. *)
  let rec build = function
    | Col c ->
      let i = Schema.index_of schema c in
      fun (t : Tuple.t) -> t.(i)
    | Const v -> fun _ -> v
    | Cmp (op, a, b) ->
      let fa = build a and fb = build b in
      fun t ->
        let va = fa t and vb = fb t in
        if Value.is_null va || Value.is_null vb then Value.Null
        else Value.Bool (eval_cmp op va vb)
    | And (a, b) ->
      let fa = build a and fb = build b in
      fun t ->
        (match fa t with
         | Value.Bool false -> Value.Bool false
         | Value.Bool true -> fb t
         | _ -> (match fb t with Value.Bool false -> Value.Bool false | _ -> Value.Null))
    | Or (a, b) ->
      let fa = build a and fb = build b in
      fun t ->
        (match fa t with
         | Value.Bool true -> Value.Bool true
         | Value.Bool false -> fb t
         | _ -> (match fb t with Value.Bool true -> Value.Bool true | _ -> Value.Null))
    | Not e ->
      let f = build e in
      fun t -> (match f t with Value.Bool b -> Value.Bool (not b) | _ -> Value.Null)
    | Arith (op, a, b) ->
      let fa = build a and fb = build b in
      let f =
        match op with
        | Add -> Value.add
        | Sub -> Value.sub
        | Mul -> Value.mul
        | Div -> Value.div
      in
      fun t -> f (fa t) (fb t)
  in
  build expr

let eval_pred schema expr =
  let f = compile schema expr in
  fun t -> match f t with Value.Bool b -> b | _ -> false

let equal (a : t) (b : t) = a = b

let hash (e : t) = Hashtbl.hash e

let cmp_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_symbol = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp ppf = function
  | Col c -> Format.pp_print_string ppf c
  | Const v -> Value.pp ppf v
  | Cmp (op, a, b) -> Format.fprintf ppf "%a %s %a" pp_atom a (cmp_symbol op) pp_atom b
  | And (a, b) -> Format.fprintf ppf "%a AND %a" pp_atom a pp_atom b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not e -> Format.fprintf ppf "NOT %a" pp_atom e
  | Arith (op, a, b) -> Format.fprintf ppf "%a %s %a" pp_atom a (arith_symbol op) pp_atom b

and pp_atom ppf e =
  match e with
  | Col _ | Const _ -> pp ppf e
  | Cmp _ | And _ | Or _ | Not _ | Arith _ -> Format.fprintf ppf "(%a)" pp e

let to_string e = Format.asprintf "%a" pp e
