type t = Value.t array

let get t i = t.(i)

let concat = Array.append

let project schema columns t =
  let indexes = List.map (Schema.index_of schema) columns in
  Array.of_list (List.map (fun i -> t.(i)) indexes)

let compare_by schema keys a b =
  let rec go = function
    | [] -> 0
    | (col, dir) :: rest ->
      let i = Schema.index_of schema col in
      let c = Value.compare a.(i) b.(i) in
      let c = match dir with `Asc -> c | `Desc -> -c in
      if c <> 0 then c else go rest
  in
  go keys

let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Value.pp)
    (Array.to_list t)
