(** Attributes and schemas of (intermediate) relations.

    Attribute names are globally disambiguated by qualification
    ("table.column"); the optimizer and executor refer to columns by
    qualified name and resolve them to positions against a schema. *)

type datatype =
  | TBool
  | TInt
  | TFloat
  | TStr

type attribute = {
  name : string;  (** qualified name, e.g. ["emp.salary"] *)
  ty : datatype;
  width : int;  (** bytes this column contributes to a stored tuple *)
}

type t = attribute array

val attribute : ?width:int -> string -> datatype -> attribute
(** [attribute name ty] with a default width per type (bool/int/float 8,
    string 24). *)

val qualify : string -> string -> string
(** [qualify "emp" "salary"] is ["emp.salary"]. *)

val base_name : string -> string
(** Unqualified part of a column name: [base_name "emp.salary" = "salary"]. *)

val index_of : t -> string -> int
(** Position of a column. Accepts a qualified name, or an unqualified
    name when it is unambiguous in the schema.
    @raise Not_found if absent or ambiguous. *)

val mem : t -> string -> bool

val find : t -> string -> attribute

val resolve : t -> string -> string
(** Canonical (qualified) name for a possibly-unqualified reference.
    @raise Not_found like {!index_of}. *)

val concat : t -> t -> t

val project : t -> string list -> t
(** Restrict to the given columns, in the given order.
    @raise Not_found if a column is absent. *)

val names : t -> string list

val row_width : t -> int
(** Sum of column widths: stored bytes per tuple. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
