type partitioning =
  | Any_part
  | Singleton
  | Hashed of string list

type t = {
  order : Sort_order.t;
  distinct : bool;
  partitioning : partitioning;
}

let any = { order = []; distinct = false; partitioning = Any_part }

let sorted order = { any with order }

let with_distinct t = { t with distinct = true }

let with_partitioning partitioning t = { t with partitioning }

let gathered = { any with partitioning = Singleton }

let partitioning_covers ~provided ~required =
  match required, provided with
  | Any_part, _ -> true
  | Singleton, Singleton -> true
  | Hashed r, Hashed p -> List.length r = List.length p && List.for_all2 String.equal r p
  | (Singleton | Hashed _), _ -> false

let covers ~provided ~required =
  Sort_order.covers ~provided:provided.order ~required:required.order
  && ((not required.distinct) || provided.distinct)
  && partitioning_covers ~provided:provided.partitioning ~required:required.partitioning

let partitioning_equal a b =
  match a, b with
  | Any_part, Any_part | Singleton, Singleton -> true
  | Hashed x, Hashed y -> List.length x = List.length y && List.for_all2 String.equal x y
  | (Any_part | Singleton | Hashed _), _ -> false

let equal a b =
  Sort_order.equal a.order b.order
  && Bool.equal a.distinct b.distinct
  && partitioning_equal a.partitioning b.partitioning

let hash t = Hashtbl.hash (t.order, t.distinct, t.partitioning)

let partitioning_to_string = function
  (* Singleton is the unremarkable serial case; only real distribution
     is worth printing. *)
  | Any_part | Singleton -> ""
  | Hashed cols -> "; hashed(" ^ String.concat ", " cols ^ ")"

let pp ppf t =
  match t.order, t.distinct, t.partitioning with
  | [], false, (Any_part | Singleton) -> Format.pp_print_string ppf "{any}"
  | [], false, Hashed cols -> Format.fprintf ppf "{hashed(%s)}" (String.concat ", " cols)
  | _, _, _ ->
    Format.fprintf ppf "{order: %a%s%s}" Sort_order.pp t.order
      (if t.distinct then "; distinct" else "")
      (partitioning_to_string t.partitioning)

let to_string t = Format.asprintf "%a" pp t
