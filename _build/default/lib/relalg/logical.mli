(** The logical algebra: operators describing {e what} a query computes
    (paper §2.2). Queries enter the optimizer as trees of these
    operators; transformation rules rewrite within this algebra. *)

type agg_func =
  | Count
  | Sum
  | Min
  | Max
  | Avg

type agg = {
  func : agg_func;
  column : string option;  (** [None] only for [Count], i.e. count-star *)
  alias : string;
}

type op =
  | Get of string  (** named stored relation *)
  | Select of Expr.t
  | Project of string list  (** without duplicate removal *)
  | Join of Expr.t  (** inner join; a [true_] predicate is a Cartesian product *)
  | Union
  | Intersect
  | Difference
  | Group_by of string list * agg list

type expr = {
  op : op;
  inputs : expr list;
}

val arity : op -> int

val get : string -> expr

val select : Expr.t -> expr -> expr

val project : string list -> expr -> expr

val join : Expr.t -> expr -> expr -> expr

val union : expr -> expr -> expr

val intersect : expr -> expr -> expr

val difference : expr -> expr -> expr

val group_by : string list -> agg list -> expr -> expr

val mk : op -> expr list -> expr
(** @raise Invalid_argument on an arity mismatch. *)

val op_name : op -> string

val op_equal : op -> op -> bool

val op_hash : op -> int

val equal : expr -> expr -> bool

val size : expr -> int
(** Number of operator nodes. *)

val relations : expr -> string list
(** Names of all [Get] leaves, in left-to-right order. *)

val agg_result_name : agg -> string

val pp_op : Format.formatter -> op -> unit

val pp : Format.formatter -> expr -> unit
(** Multi-line indented tree rendering. *)
