type datatype =
  | TBool
  | TInt
  | TFloat
  | TStr

type attribute = {
  name : string;
  ty : datatype;
  width : int;
}

type t = attribute array

let default_width = function
  | TBool -> 8
  | TInt -> 8
  | TFloat -> 8
  | TStr -> 24

let attribute ?width name ty =
  let width = match width with Some w -> w | None -> default_width ty in
  { name; ty; width }

let qualify table column = table ^ "." ^ column

let base_name name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let index_of schema name =
  let n = Array.length schema in
  let rec exact i =
    if i >= n then unqualified 0 (-1)
    else if String.equal schema.(i).name name then i
    else exact (i + 1)
  and unqualified i found =
    if i >= n then (if found >= 0 then found else raise Not_found)
    else if String.equal (base_name schema.(i).name) name then
      if found >= 0 then raise Not_found (* ambiguous *) else unqualified (i + 1) i
    else unqualified (i + 1) found
  in
  exact 0

let mem schema name = match index_of schema name with _ -> true | exception Not_found -> false

let find schema name = schema.(index_of schema name)

let resolve schema name = (find schema name).name

let concat a b = Array.append a b

let project schema columns =
  Array.of_list (List.map (find schema) columns)

let names schema = Array.to_list (Array.map (fun a -> a.name) schema)

let row_width schema = Array.fold_left (fun acc a -> acc + a.width) 0 schema

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> String.equal x.name y.name && x.ty = y.ty) a b

let pp_ty ppf ty =
  Format.pp_print_string ppf
    (match ty with TBool -> "bool" | TInt -> "int" | TFloat -> "float" | TStr -> "str")

let pp ppf schema =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf a -> Format.fprintf ppf "%s:%a" a.name pp_ty a.ty))
    (Array.to_list schema)
