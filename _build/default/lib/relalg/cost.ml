type t = {
  io : float;
  cpu : float;
}

let zero = { io = 0.; cpu = 0. }

let make ~io ~cpu = { io = Float.max 0. io; cpu = Float.max 0. cpu }

let infinite = { io = Float.infinity; cpu = Float.infinity }

let is_infinite t = t.io = Float.infinity || t.cpu = Float.infinity

let add a b = { io = a.io +. b.io; cpu = a.cpu +. b.cpu }

let sub a b =
  if is_infinite a then infinite
  else { io = Float.max 0. (a.io -. b.io); cpu = Float.max 0. (a.cpu -. b.cpu) }

let scale f t =
  if is_infinite t then infinite else { io = t.io *. f; cpu = t.cpu *. f }

let total t = t.io +. t.cpu

let compare a b = Float.compare (total a) (total b)

let ( <% ) a b = compare a b < 0

let ( <=% ) a b = compare a b <= 0

let pp ppf t =
  if is_infinite t then Format.pp_print_string ppf "inf"
  else Format.fprintf ppf "%.6fs (io %.6f, cpu %.6f)" (total t) t.io t.cpu

let to_string t = Format.asprintf "%a" pp t
