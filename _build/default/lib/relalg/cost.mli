(** The cost abstract data type (paper §2.2): a record of estimated
    I/O and CPU seconds, combined and compared only through the
    functions here, mirroring the System R-style cost model the paper
    suggests. *)

type t = private {
  io : float;  (** seconds spent on I/O *)
  cpu : float;  (** seconds of CPU work *)
}

val zero : t

val make : io:float -> cpu:float -> t

val infinite : t

val is_infinite : t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** Used for branch-and-bound limit propagation; clamps at zero per
    component and keeps infinity absorbing. *)

val scale : float -> t -> t
(** Multiply both components (e.g. dividing work across parallel
    workers). *)

val total : t -> float
(** Scalar magnitude used for comparison (I/O + CPU seconds). *)

val compare : t -> t -> int

val ( <% ) : t -> t -> bool

val ( <=% ) : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
