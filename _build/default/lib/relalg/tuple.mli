(** Tuples: immutable rows of {!Value.t}, positionally matched to a
    {!Schema.t}. *)

type t = Value.t array

val get : t -> int -> Value.t

val concat : t -> t -> t

val project : Schema.t -> string list -> t -> t
(** Keep the named columns (resolved against the schema), in order. *)

val compare_by : Schema.t -> (string * [ `Asc | `Desc ]) list -> t -> t -> int
(** Lexicographic comparison by the given columns and directions. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
