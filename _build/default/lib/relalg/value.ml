type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | Str _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash i
  | Float f ->
    (* Hash floats that are exact integers like the integer, so that
       mixed-type equality (compare) stays consistent with hash. *)
    if Float.is_integer f && Float.abs f < 1e15 then Hashtbl.hash (int_of_float f)
    else Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let is_null = function Null -> true | Bool _ | Int _ | Float _ | Str _ -> false

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Bool _ | Str _ -> None

let arith name int_op float_op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) ->
    (match to_float a, to_float b with
     | Some x, Some y -> Float (float_op x y)
     | _, _ -> assert false)
  | (Bool _ | Str _), _ | _, (Bool _ | Str _) ->
    invalid_arg (Printf.sprintf "Value.%s: non-numeric operand" name)

let add a b = arith "add" ( + ) ( +. ) a b
let sub a b = arith "sub" ( - ) ( -. ) a b
let mul a b = arith "mul" ( * ) ( *. ) a b

let div a b =
  match a, b with
  | _, Int 0 -> Null
  | _, Float 0. -> Null
  | _, _ -> arith "div" ( / ) ( /. ) a b

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v
