type dir =
  | Asc
  | Desc

type t = (string * dir) list

let asc cols = List.map (fun c -> (c, Asc)) cols

let key_equal (c1, d1) (c2, d2) = String.equal c1 c2 && d1 = d2

let rec covers ~provided ~required =
  match required, provided with
  | [], _ -> true
  | _ :: _, [] -> false
  | r :: rs, p :: ps -> key_equal r p && covers ~provided:ps ~required:rs

let equal a b = List.length a = List.length b && List.for_all2 key_equal a b

let columns t = List.map fst t

let compare_tuples schema order a b =
  let keys = List.map (fun (c, d) -> (c, match d with Asc -> `Asc | Desc -> `Desc)) order in
  Tuple.compare_by schema keys a b

let is_sorted schema order tuples =
  let n = Array.length tuples in
  let rec go i =
    i >= n - 1 || (compare_tuples schema order tuples.(i) tuples.(i + 1) <= 0 && go (i + 1))
  in
  go 0

let pp ppf t =
  match t with
  | [] -> Format.pp_print_string ppf "any"
  | _ ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf (c, d) ->
        Format.fprintf ppf "%s%s" c (match d with Asc -> "" | Desc -> " desc"))
      ppf t

let to_string t = Format.asprintf "%a" pp t
