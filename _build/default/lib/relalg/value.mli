(** Runtime values stored in tuples and used by the expression evaluator.

    The value domain is deliberately small (the paper's experiments use
    100-byte records of scalar fields) but total: every operation is
    defined on every constructor, with [Null] ordered below all other
    values and absorbing arithmetic. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

val compare : t -> t -> int
(** Total order: [Null] < [Bool] < [Int]/[Float] (numerically mixed) < [Str]. *)

val equal : t -> t -> bool

val hash : t -> int

val is_null : t -> bool

val add : t -> t -> t
(** Numeric addition; [Null] absorbs; non-numeric operands raise
    [Invalid_argument]. *)

val sub : t -> t -> t

val mul : t -> t -> t

val div : t -> t -> t
(** Division by zero yields [Null] (SQL-style). *)

val to_float : t -> float option
(** Numeric view of a value, if it has one. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
