lib/relalg/tuple.ml: Array Format List Schema Value
