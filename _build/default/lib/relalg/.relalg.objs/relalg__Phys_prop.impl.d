lib/relalg/phys_prop.ml: Bool Format Hashtbl List Sort_order String
