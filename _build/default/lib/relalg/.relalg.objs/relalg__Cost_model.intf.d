lib/relalg/cost_model.mli: Cost Logical_props Physical
