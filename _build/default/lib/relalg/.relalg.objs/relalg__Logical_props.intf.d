lib/relalg/logical_props.mli: Format Schema
