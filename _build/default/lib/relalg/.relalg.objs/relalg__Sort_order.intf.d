lib/relalg/sort_order.mli: Format Schema Tuple
