lib/relalg/cost.mli: Format
