lib/relalg/expr.ml: Array Format Hashtbl List Schema Tuple Value
