lib/relalg/expr.mli: Format Schema Tuple Value
