lib/relalg/logical_props.ml: Float Format List Schema
