lib/relalg/cost_model.ml: Cost Float List Logical_props Physical
