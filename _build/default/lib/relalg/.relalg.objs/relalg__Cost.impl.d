lib/relalg/cost.ml: Float Format
