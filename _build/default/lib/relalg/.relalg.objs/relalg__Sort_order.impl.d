lib/relalg/sort_order.ml: Array Format List String Tuple
