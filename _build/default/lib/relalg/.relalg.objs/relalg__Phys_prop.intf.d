lib/relalg/phys_prop.mli: Format Sort_order
