lib/relalg/physical.mli: Expr Format Logical Sort_order
