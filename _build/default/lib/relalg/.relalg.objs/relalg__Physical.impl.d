lib/relalg/physical.ml: Expr Format List Logical Printf Sort_order String
