lib/relalg/logical.ml: Expr Format Hashtbl List Option Printf String
