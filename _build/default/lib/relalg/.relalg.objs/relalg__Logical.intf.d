lib/relalg/logical.mli: Expr Format
