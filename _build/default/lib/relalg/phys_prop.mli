(** Physical property vectors for the relational model.

    Per the paper, the property vector is an abstract data type chosen
    by the optimizer implementor and only inspected through equality
    and cover tests. The relational instance carries three properties:

    - [order]: sort order of the stream ([[]] = no guarantee); on a
      partitioned stream the order holds within each partition;
    - [distinct]: whether the stream is duplicate-free (the paper's
      "uniqueness" example, with sort- and hash-based enforcers);
    - [partitioning]: how the stream is distributed across workers
      (paper SS4.1: "location and partitioning in parallel and
      distributed systems can be enforced with ... Volcano's exchange
      operator"). *)

type partitioning =
  | Any_part  (** as a requirement: no constraint; never delivered *)
  | Singleton  (** the whole stream at one site *)
  | Hashed of string list  (** hash-partitioned on these columns *)

type t = {
  order : Sort_order.t;
  distinct : bool;
  partitioning : partitioning;
}

val any : t
(** No requirements: unsorted, duplicates allowed, any location. *)

val sorted : Sort_order.t -> t

val with_distinct : t -> t

val with_partitioning : partitioning -> t -> t

val gathered : t
(** Requirement: everything at one site (a user-facing result). *)

val partitioning_covers : provided:partitioning -> required:partitioning -> bool

val covers : provided:t -> required:t -> bool
(** Every requirement in [required] is met by [provided]. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
