(** Scalar expressions and predicates over tuples.

    This is the condition language attached to [Select] and [Join]
    operators. Columns are referenced by (possibly qualified) name and
    resolved against a schema when an expression is compiled for
    evaluation. *)

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type arith =
  | Add
  | Sub
  | Mul
  | Div

type t =
  | Col of string
  | Const of Value.t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t

val col : string -> t

val int : int -> t

val str : string -> t

val bool : bool -> t

val float : float -> t

val ( =% ) : t -> t -> t
(** Equality comparison. *)

val ( <% ) : t -> t -> t

val ( <=% ) : t -> t -> t

val ( >% ) : t -> t -> t

val ( >=% ) : t -> t -> t

val ( &&% ) : t -> t -> t

val ( ||% ) : t -> t -> t

val true_ : t

val columns : t -> string list
(** Free column references, deduplicated, in first-occurrence order. *)

val conjuncts : t -> t list
(** Flatten nested [And]s; [true_] flattens to []. *)

val conjoin : t list -> t
(** Inverse of {!conjuncts}; [conjoin [] = true_]. *)

val equijoin_keys : t -> left:Schema.t -> right:Schema.t -> (string * string) list
(** Equality conjuncts of the form [l.col = r.col] with one side in
    each input schema, returned as (left column, right column) pairs in
    canonical (qualified) names. *)

val refers_only_to : Schema.t -> t -> bool
(** All column references resolve in the given schema. *)

val compile : Schema.t -> t -> Tuple.t -> Value.t
(** Resolve columns to positions and return an evaluator.
    @raise Not_found if a column does not resolve. *)

val eval_pred : Schema.t -> t -> Tuple.t -> bool
(** Predicate evaluation: non-[Bool true] results (including [Null])
    are false, per SQL three-valued filtering. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
