(** Sort orders: the canonical physical property of the paper.

    A sort order is a list of (column, direction) keys, significant
    left-to-right. The empty list means "no particular order". *)

type dir =
  | Asc
  | Desc

type t = (string * dir) list

val asc : string list -> t

val covers : provided:t -> required:t -> bool
(** [covers ~provided ~required] holds when data sorted by [provided]
    is also sorted by [required], i.e. [required] is a prefix of
    [provided]. The empty requirement is always covered. *)

val equal : t -> t -> bool

val columns : t -> string list

val compare_tuples : Schema.t -> t -> Tuple.t -> Tuple.t -> int

val is_sorted : Schema.t -> t -> Tuple.t array -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
