(* Quickstart: build a catalog, write a logical query, run the generated
   Volcano optimizer, and print the chosen plan.

   Run with: dune exec examples/quickstart.exe *)

open Relalg

let () =
  (* 1. A small catalog in the paper's experimental range: relations of
     1,200-7,200 records. *)
  let catalog = Catalog.create () in
  let _emp =
    Catalog.add_synthetic catalog ~name:"emp"
      ~columns:
        [
          ("id", Catalog.Serial);
          ("dept_id", Catalog.Uniform_int (0, 99));
          ("salary", Catalog.Uniform_int (30_000, 150_000));
        ]
      ~rows:7_200 ~seed:42 ()
  in
  let _dept =
    Catalog.add_synthetic catalog ~name:"dept"
      ~columns:[ ("id", Catalog.Serial); ("budget", Catalog.Uniform_int (0, 1_000_000)) ]
      ~rows:1_200 ~seed:42 ()
  in

  (* 2. A logical query:
       SELECT * FROM emp, dept
       WHERE emp.dept_id = dept.id AND emp.salary > 100000
       ORDER BY emp.dept_id *)
  let open Expr in
  let query =
    Logical.select
      (col "emp.salary" >% int 100_000)
      (Logical.join (col "emp.dept_id" =% col "dept.id") (Logical.get "emp")
         (Logical.get "dept"))
  in
  Format.printf "Logical query:@.%a@.@." Logical.pp query;

  (* 3. Optimize, asking for output sorted by emp.dept_id — the ORDER BY
     becomes a required physical property (paper §3). *)
  let required = Phys_prop.sorted (Sort_order.asc [ "emp.dept_id" ]) in
  let result = Relmodel.Optimizer.optimize (Relmodel.Optimizer.request catalog) query ~required in
  (match result.plan with
   | None -> Format.printf "no plan found@."
   | Some plan ->
     Format.printf "Best plan (cost %s):@.%s@.@." (Cost.to_string plan.cost)
       (Relmodel.Optimizer.explain plan));
  Format.printf "Search effort: %a@." Volcano.Search_stats.pp result.stats;
  Format.printf "Memo: %d groups, %d logical multi-expressions@." result.memo_groups
    result.memo_mexprs
