examples/interesting_orders.mli:
