examples/oodb_paths.mli:
