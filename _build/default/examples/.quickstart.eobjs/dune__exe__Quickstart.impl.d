examples/quickstart.ml: Catalog Cost Expr Format Logical Phys_prop Relalg Relmodel Sort_order Volcano
