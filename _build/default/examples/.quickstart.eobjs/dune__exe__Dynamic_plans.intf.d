examples/dynamic_plans.mli:
