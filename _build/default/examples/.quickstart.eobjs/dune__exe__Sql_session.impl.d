examples/sql_session.ml: Array Catalog Cost Executor Format Relalg Relmodel Schema Sqlfront String Tuple
