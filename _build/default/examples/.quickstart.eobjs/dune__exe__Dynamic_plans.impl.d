examples/dynamic_plans.ml: Array Catalog Dynplan Expr Format List Logical Phys_prop Relalg Relmodel Value
