examples/oodb_paths.ml: Format List Oomodel Path_set Printf String Volcano
