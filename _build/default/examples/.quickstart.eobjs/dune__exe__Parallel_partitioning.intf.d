examples/parallel_partitioning.mli:
