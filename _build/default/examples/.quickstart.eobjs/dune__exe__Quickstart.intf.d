examples/quickstart.mli:
