examples/parallel_partitioning.ml: Array Catalog Cost Cost_model Expr Format Logical Phys_prop Random Relalg Relmodel Schema Sort_order Value
