examples/interesting_orders.ml: Catalog Cost Expr Format Logical Option Phys_prop Physical Relalg Relmodel Sort_order
