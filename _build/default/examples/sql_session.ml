(* End-to-end SQL session: parse -> optimize -> execute, printing plans
   and result samples — the full pipeline a DBMS built on this library
   would run.

   Run with: dune exec examples/sql_session.exe *)

open Relalg

let catalog =
  let c = Catalog.create () in
  ignore
    (Catalog.add_synthetic c ~name:"orders"
       ~columns:
         [
           ("id", Catalog.Serial);
           ("customer_id", Catalog.Uniform_int (0, 499));
           ("amount", Catalog.Uniform_int (5, 2_000));
           ("region", Catalog.Choice [ "north"; "south"; "east"; "west" ]);
         ]
       ~rows:5_000 ~seed:21 ());
  ignore
    (Catalog.add_synthetic c ~name:"customers"
       ~columns:
         [
           ("id", Catalog.Serial);
           ("tier", Catalog.Uniform_int (1, 3));
           ("credit", Catalog.Uniform_int (0, 100_000));
         ]
       ~rows:500 ~seed:22 ());
  c

let run sql =
  Format.printf "@.sql> %s@." sql;
  match Sqlfront.parse catalog sql with
  | exception Sqlfront.Parse_error msg -> Format.printf "parse error: %s@." msg
  | stmt -> begin
    let result =
      Relmodel.Optimizer.optimize (Relmodel.Optimizer.request catalog) stmt.logical
        ~required:stmt.required
    in
    match result.plan with
    | None -> Format.printf "no plan@."
    | Some plan ->
      Format.printf "plan (cost %s):@.%s@." (Cost.to_string plan.cost)
        (Relmodel.Optimizer.explain plan);
      let rows, schema, io = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
      Format.printf "%d rows (%a)@." (Array.length rows) Executor.Io_stats.pp io;
      Format.printf "  %s@." (String.concat " | " (Schema.names schema));
      Array.iteri (fun i t -> if i < 5 then Format.printf "  %a@." Tuple.pp t) rows;
      if Array.length rows > 5 then Format.printf "  ...@."
  end

let () =
  run "SELECT * FROM orders WHERE orders.amount > 1900 ORDER BY orders.amount DESC";
  run
    "SELECT orders.id, customers.tier FROM orders, customers \
     WHERE orders.customer_id = customers.id AND customers.credit > 90000";
  run
    "SELECT orders.region, COUNT(*) AS orders_n, SUM(orders.amount) AS revenue \
     FROM orders GROUP BY orders.region ORDER BY orders.region";
  run "SELECT DISTINCT orders.region FROM orders";
  run
    "SELECT orders.customer_id FROM orders WHERE orders.amount > 1000 \
     INTERSECT SELECT orders.customer_id FROM orders WHERE orders.region = 'north'"
