(* Object-algebra example: path expressions and the assembledness
   physical property (paper §4.1 and §6).

   Query: over the extent of class [emp], keep employees whose
   department is on a given floor, and hand the survivors — with their
   department and manager sub-objects assembled in memory — to the
   application.

   The filter evaluates the path emp.dept.floor, so its input must have
   that path assembled; the query result must additionally have
   emp.dept and emp.manager assembled. The optimizer chooses between
   the navigational pointer-chase and the batching assembly operator
   (two enforcers for one property, like the paper's sort- and
   hash-based uniqueness enforcers), and decides whether to assemble
   before or after filtering.

   Run with: dune exec examples/oodb_paths.exe *)

open Oomodel.Oo_algebra

let store : store =
  [
    {
      cname = "emp";
      extent_size = 50_000.;
      object_bytes = 120;
      references = [ ("dept", "dept"); ("manager", "emp") ];
    };
    {
      cname = "dept";
      extent_size = 500.;
      object_bytes = 80;
      references = [ ("floor", "floorplan") ];
    };
    { cname = "floorplan"; extent_size = 20.; object_bytes = 4096; references = [] };
  ]

let () =
  let query =
    Volcano.Tree.node
      (O_select ([ "dept"; "floor" ], 0.02))
      [ Volcano.Tree.node (Extent "emp") [] ]
  in
  let required = Path_set.of_list [ [ "dept" ]; [ "manager" ] ] in
  Format.printf "Object store: %s@."
    (String.concat ", "
       (List.map (fun c -> Printf.sprintf "%s(%.0f)" c.cname c.extent_size) store));
  Format.printf "Query: select[dept.floor] over extent(emp), result assembled on %s@.@."
    (phys_to_string required);
  let result = Oomodel.Oo_model.optimize ~store query ~required in
  (match result.plan with
   | None -> Format.printf "no plan@."
   | Some plan ->
     Format.printf "Best plan:@.%s@." (Oomodel.Oo_model.explain plan));
  Format.printf "Search effort: %a@." Volcano.Search_stats.pp result.stats;

  (* Shrink the extent: with few objects, batching buys nothing and the
     navigational pointer chase wins. *)
  let small_store =
    List.map (fun c -> if c.cname = "emp" then { c with extent_size = 40. } else c) store
  in
  let small = Oomodel.Oo_model.optimize ~store:small_store query ~required in
  match small.plan with
  | None -> Format.printf "no plan (small extent)@."
  | Some plan ->
    Format.printf "@.With a 40-object extent the winner changes:@.%s@."
      (Oomodel.Oo_model.explain plan)
