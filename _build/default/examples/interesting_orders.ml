(* Interesting orders: the defining capability of property-driven search
   (paper §3 and §4.2).

   Three relations are joined on the same attribute chain, and the user
   asks for the result sorted on that attribute. The optimizer can:

   - pick hash joins everywhere and sort at the end (the "glue" shape a
     property-blind optimizer is stuck with), or
   - sort each input once and run merge joins whose outputs stay sorted,
     so the ORDER BY costs nothing extra and sort work is shared.

   Volcano weighs both because the required sort order is part of each
   optimization goal, enforcers offer sorts at every level, and the
   excluding property vector keeps the choices non-redundant.

   Run with: dune exec examples/interesting_orders.exe *)

open Relalg

let () =
  let catalog = Catalog.create () in
  let add name rows seed =
    ignore
      (Catalog.add_synthetic catalog ~name
         ~columns:
           [ ("k", Catalog.Uniform_int (0, 199)); ("payload", Catalog.Uniform_int (0, 999)) ]
         ~widths:[ ("payload", 92) ] ~rows ~seed ())
  in
  add "r1" 4_000 1;
  add "r2" 3_000 2;
  add "r3" 2_000 3;
  let open Expr in
  let query =
    Logical.join
      (col "r2.k" =% col "r3.k")
      (Logical.join (col "r1.k" =% col "r2.k") (Logical.get "r1") (Logical.get "r2"))
      (Logical.get "r3")
  in

  let optimize ~required =
    let result =
      Relmodel.Optimizer.optimize (Relmodel.Optimizer.request catalog) query ~required
    in
    Option.get result.plan
  in

  (* Without an order requirement. *)
  let unordered = optimize ~required:Phys_prop.any in
  Format.printf "No required order (cost %s):@.%s@.@."
    (Cost.to_string unordered.cost)
    (Relmodel.Optimizer.explain unordered);

  (* With ORDER BY r1.k: the requirement flows into the search. *)
  let ordered = optimize ~required:(Phys_prop.sorted (Sort_order.asc [ "r1.k" ])) in
  Format.printf "ORDER BY r1.k (cost %s):@.%s@.@."
    (Cost.to_string ordered.cost)
    (Relmodel.Optimizer.explain ordered);

  (* The naive alternative: best unordered plan plus a final sort. *)
  let glue =
    Physical.mk
      (Physical.Sort (Sort_order.asc [ "r1.k" ]))
      [ Relmodel.Optimizer.to_physical unordered ]
  in
  let glue_cost = Relmodel.Plan_cost.estimate catalog glue in
  Format.printf "Glue alternative (best unordered plan + final sort): %s@."
    (Cost.to_string glue_cost);
  Format.printf "Property-driven search saves %.1f%% on the ordered query.@."
    (100. *. (1. -. (Cost.total ordered.cost /. Cost.total glue_cost)))
