(* Dynamic plans for incompletely specified queries (paper §1,
   requirement 5): the query's parameter — and therefore the
   selectivity of its selection — is unknown until run time.

   The optimizer prepares one plan per parameter bucket (collapsing
   buckets that agree); at run time the actual value picks the plan, at
   start-up cost zero — no re-optimization.

   Run with: dune exec examples/dynamic_plans.exe *)

open Relalg

let catalog =
  let c = Catalog.create () in
  ignore
    (Catalog.add_synthetic c ~name:"events"
       ~columns:
         [ ("user_id", Catalog.Uniform_int (0, 499)); ("score", Catalog.Uniform_int (0, 9_999)) ]
       ~rows:6_000 ~seed:5 ());
  ignore
    (Catalog.add_synthetic c ~name:"users"
       ~columns:[ ("id", Catalog.Uniform_int (0, 499)); ("age", Catalog.Uniform_int (18, 99)) ]
       ~rows:3_000 ~seed:6 ());
  c

(* SELECT * FROM events, users
   WHERE events.user_id = users.id AND events.score <= ?  *)
let template param =
  let open Expr in
  Logical.join
    (col "events.user_id" =% col "users.id")
    (Logical.select (Expr.Cmp (Expr.Le, col "events.score", Expr.Const param)) (Logical.get "events"))
    (Logical.get "users")

let () =
  let request = Relmodel.Optimizer.request catalog in
  let prepared =
    Dynplan.prepare ~request template ~range:(0., 500.) ~buckets:16 ~required:Phys_prop.any ()
  in
  Format.printf "Prepared a dynamic plan with %d alternative(s):@.@."
    (Dynplan.n_distinct_plans prepared);
  List.iter
    (fun (b : Dynplan.bucket) ->
      Format.printf "for ? in [%g, %g):@.%s@.@." b.lo b.hi
        (Relmodel.Optimizer.explain b.plan))
    prepared.buckets;
  List.iter
    (fun v ->
      let rows, _, _ = Dynplan.execute catalog prepared ~param:(Value.Int v) in
      let chosen = Dynplan.choose prepared (Value.Int v) in
      Format.printf "? = %-4d -> bucket [%g, %g), %d rows@." v chosen.lo chosen.hi
        (Array.length rows))
    [ 3; 42; 480 ]
