(* Partitioning as a physical property (paper §4.1 and §6).

   Two fact tables are stored hash-partitioned on their join key across
   a worker pool. The user wants the join result at one site. The
   optimizer reasons about distribution exactly like it reasons about
   sort order: the requirement flows into the search, exchange
   operators (Volcano's exchange, here repartition/gather/merge-gather)
   are enforcers for it, and co-partitioned joins are algorithm choices
   with "compatible partitioning rules" for their inputs.

   Run with: dune exec examples/parallel_partitioning.exe *)

open Relalg

let catalog =
  let c = Catalog.create () in
  let add name rows seed partitioning =
    let rng = Random.State.make [| seed |] in
    let tuples =
      Array.init rows (fun i ->
          [| Value.Int i; Value.Int (Random.State.int rng 500);
             Value.Int (Random.State.int rng 1_000) |])
    in
    let schema =
      [|
        Schema.attribute (name ^ ".id") Schema.TInt;
        Schema.attribute (name ^ ".k") Schema.TInt;
        Schema.attribute (name ^ ".v") Schema.TInt;
      |]
    in
    ignore (Catalog.add c ~name ~schema ?stored_partitioning:partitioning tuples)
  in
  add "sales" 8_000 1 (Some (Phys_prop.Hashed [ "sales.k" ]));
  add "returns" 5_000 2 (Some (Phys_prop.Hashed [ "returns.k" ]));
  c

let query =
  Expr.(
    Logical.join (col "sales.k" =% col "returns.k") (Logical.get "sales")
      (Logical.get "returns"))

let optimize ~workers ~required =
  let request =
    {
      (Relmodel.Optimizer.request catalog) with
      params = { Cost_model.default with workers };
    }
  in
  Relmodel.Optimizer.optimize request query ~required

let () =
  (* Serial baseline. *)
  (match (optimize ~workers:1 ~required:Phys_prop.gathered).plan with
   | Some p ->
     Format.printf "1 worker (cost %s):@.%s@.@." (Cost.to_string p.cost)
       (Relmodel.Optimizer.explain p)
   | None -> Format.printf "no serial plan@.");

  (* Eight workers: the join runs in place on the co-partitioned data
     and only the (much smaller) result crosses the network. *)
  (match (optimize ~workers:8 ~required:Phys_prop.gathered).plan with
   | Some p ->
     Format.printf "8 workers (cost %s):@.%s@.@." (Cost.to_string p.cost)
       (Relmodel.Optimizer.explain p)
   | None -> Format.printf "no parallel plan@.");

  (* Ordered results: the order-preserving merge-gather competes with
     gathering first and sorting at the coordinator. *)
  let ordered =
    Phys_prop.with_partitioning Phys_prop.Singleton
      (Phys_prop.sorted (Sort_order.asc [ "sales.k" ]))
  in
  match (optimize ~workers:8 ~required:ordered).plan with
  | Some p ->
    Format.printf "8 workers, ORDER BY sales.k (cost %s):@.%s@." (Cost.to_string p.cost)
      (Relmodel.Optimizer.explain p)
  | None -> Format.printf "no ordered plan@."
