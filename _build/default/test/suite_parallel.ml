(* Tests of partitioning as a physical property (paper §4.1/§6): the
   exchange enforcers, co-partitioned joins, parallel cost division, and
   execution correctness of plans containing exchanges. *)

open Relalg

let parallel_params workers = { Cost_model.default with workers }

(* Two tables hash-partitioned on their join keys, one small singleton
   table. *)
let catalog =
  let c = Catalog.create () in
  let add_part name rows seed partitioning =
    let rng = Random.State.make [| seed |] in
    let tuples =
      Array.init rows (fun i ->
          [| Value.Int i; Value.Int (Random.State.int rng 200); Value.Int (Random.State.int rng 10) |])
    in
    let schema =
      [|
        Schema.attribute (name ^ ".id") Schema.TInt;
        Schema.attribute (name ^ ".k") Schema.TInt;
        Schema.attribute (name ^ ".v") Schema.TInt;
      |]
    in
    ignore (Catalog.add c ~name ~schema ?stored_partitioning:partitioning tuples)
  in
  add_part "big1" 5_000 1 (Some (Phys_prop.Hashed [ "big1.k" ]));
  add_part "big2" 4_000 2 (Some (Phys_prop.Hashed [ "big2.k" ]));
  add_part "small" 50 3 None;
  c

let () = ignore (Catalog.find catalog "small")

let join_query =
  Expr.(Logical.join (col "big1.k" =% col "big2.k") (Logical.get "big1") (Logical.get "big2"))

let optimize ?(workers = 4) ?(required = Phys_prop.gathered) query =
  let request =
    {
      (Relmodel.Optimizer.request catalog) with
      params = parallel_params workers;
      restore_columns = false;
    }
  in
  Relmodel.Optimizer.optimize request query ~required

let rec plan_algs (p : Relmodel.Optimizer.plan_node) =
  p.alg :: List.concat_map plan_algs p.children

let test_partitioning_covers () =
  let open Phys_prop in
  Alcotest.(check bool) "any_part always satisfied" true
    (partitioning_covers ~provided:(Hashed [ "x" ]) ~required:Any_part);
  Alcotest.(check bool) "hashed matches same columns" true
    (partitioning_covers ~provided:(Hashed [ "x" ]) ~required:(Hashed [ "x" ]));
  Alcotest.(check bool) "hashed mismatch" false
    (partitioning_covers ~provided:(Hashed [ "x" ]) ~required:(Hashed [ "y" ]));
  Alcotest.(check bool) "hashed is not singleton" false
    (partitioning_covers ~provided:(Hashed [ "x" ]) ~required:Singleton)

let test_scan_delivers_partitioning () =
  let result = optimize ~required:Phys_prop.any (Logical.get "big1") in
  match result.plan with
  | Some p ->
    Alcotest.(check bool) "scan output is hash-partitioned" true
      (p.props.Phys_prop.partitioning = Phys_prop.Hashed [ "big1.k" ])
  | None -> Alcotest.fail "no plan"

let test_gather_for_singleton_requirement () =
  let result = optimize (Logical.get "big1") in
  match result.plan with
  | Some { alg = Physical.Gather | Physical.Merge_gather _; props; _ } ->
    Alcotest.(check bool) "delivered at one site" true
      (props.Phys_prop.partitioning = Phys_prop.Singleton)
  | Some p ->
    Alcotest.fail ("expected a gather at the root, got " ^ Physical.alg_name p.alg)
  | None -> Alcotest.fail "no plan"

let test_copartitioned_join () =
  (* Both inputs are already partitioned on the join key: the parallel
     join should run in place and gather at the end. *)
  let result = optimize join_query in
  match result.plan with
  | None -> Alcotest.fail "no plan"
  | Some p ->
    let algs = plan_algs p in
    Alcotest.(check bool) "a gather somewhere" true
      (List.exists (function Physical.Gather | Physical.Merge_gather _ -> true | _ -> false) algs);
    Alcotest.(check bool) "no repartition needed (co-partitioned)" true
      (not (List.exists (function Physical.Repartition _ -> true | _ -> false) algs))

let test_parallel_beats_serial_estimate () =
  let par = optimize ~workers:8 join_query in
  let ser = optimize ~workers:1 join_query in
  match par.plan, ser.plan with
  | Some p, Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "8 workers cheaper (%.4f < %.4f)" (Cost.total p.cost) (Cost.total s.cost))
      true
      (Cost.total p.cost < Cost.total s.cost)
  | _, _ -> Alcotest.fail "missing plan"

let test_repartition_when_keys_differ () =
  (* Join big1 and big2 on v: stored partitionings (on k) are useless,
     so either both sides gather or they repartition on v. *)
  let q =
    Expr.(Logical.join (col "big1.v" =% col "big2.v") (Logical.get "big1") (Logical.get "big2"))
  in
  let result = optimize ~workers:16 q in
  match result.plan with
  | None -> Alcotest.fail "no plan"
  | Some p ->
    let algs = plan_algs p in
    Alcotest.(check bool) "exchanges appear" true
      (List.exists
         (function
           | Physical.Repartition _ | Physical.Gather | Physical.Merge_gather _ -> true
           | _ -> false)
         algs)

let test_ordered_gather () =
  let required =
    Phys_prop.with_partitioning Phys_prop.Singleton
      (Phys_prop.sorted (Sort_order.asc [ "big1.k" ]))
  in
  let result = optimize ~required join_query in
  match result.plan with
  | None -> Alcotest.fail "no plan"
  | Some p ->
    Alcotest.(check bool) "covers the ordered singleton goal" true
      (Phys_prop.covers ~provided:p.props ~required)

let test_exchanges_execute_as_identity () =
  (* The single-node engine runs exchange operators as identity, so a
     parallel-optimized plan still computes the right answer. *)
  let result = optimize join_query in
  match result.plan with
  | None -> Alcotest.fail "no plan"
  | Some p ->
    let actual, _, _ = Executor.run catalog (Relmodel.Optimizer.to_physical p) in
    let expected, _ = Executor.naive catalog join_query in
    Helpers.check_same_bag "parallel plan result" expected actual

let test_workers_one_no_exchanges () =
  (* With one worker and singleton tables, plans never contain
     exchange operators. *)
  let c = Helpers.small_catalog () in
  let q = Expr.(Logical.join (col "r.a" =% col "s.a") (Logical.get "r") (Logical.get "s")) in
  let result =
    Relmodel.Optimizer.optimize (Relmodel.Optimizer.request c) q ~required:Phys_prop.any
  in
  match result.plan with
  | None -> Alcotest.fail "no plan"
  | Some p ->
    Alcotest.(check bool) "no exchanges" true
      (not
         (List.exists
            (function
              | Physical.Repartition _ | Physical.Gather | Physical.Merge_gather _ -> true
              | _ -> false)
            (plan_algs p)))

let suite =
  [
    Alcotest.test_case "partitioning covers" `Quick test_partitioning_covers;
    Alcotest.test_case "scan delivers partitioning" `Quick test_scan_delivers_partitioning;
    Alcotest.test_case "gather enforcer" `Quick test_gather_for_singleton_requirement;
    Alcotest.test_case "co-partitioned join" `Quick test_copartitioned_join;
    Alcotest.test_case "parallel beats serial" `Quick test_parallel_beats_serial_estimate;
    Alcotest.test_case "repartition on other keys" `Quick test_repartition_when_keys_differ;
    Alcotest.test_case "ordered gather" `Quick test_ordered_gather;
    Alcotest.test_case "exchanges execute as identity" `Quick test_exchanges_execute_as_identity;
    Alcotest.test_case "no exchanges when serial" `Quick test_workers_one_no_exchanges;
  ]

(* Property: adding workers never makes the estimated optimum worse
   (parallel variants only add plan choices). *)
let prop_monotone_in_workers =
  let gen = QCheck.Gen.(pair (int_range 1 12) (int_range 0 8)) in
  Helpers.qcheck_case ~count:20 "optimum monotone in workers" (QCheck.make gen)
    (fun (w, extra) ->
      let w2 = w + extra in
      let cost_at workers =
        match (optimize ~workers join_query).plan with
        | Some p -> Cost.total p.cost
        | None -> Float.infinity
      in
      cost_at w2 <= cost_at w +. 1e-9)

let suite = suite @ [ prop_monotone_in_workers ]
