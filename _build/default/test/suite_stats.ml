(* Tests for column statistics and selectivity estimation. *)

open Relalg

let schema : Schema.t =
  [| Schema.attribute "t.k" Schema.TInt; Schema.attribute "t.v" Schema.TInt |]

(* 100 rows: k = 0..99 (unique), v = k mod 10 (10 distinct). *)
let tuples = Array.init 100 (fun i -> [| Value.Int i; Value.Int (i mod 10) |])

let stats = Catalog.Stats.of_tuples schema tuples

let test_row_count () = Alcotest.(check (float 0.)) "rows" 100. stats.row_count

let test_distincts () =
  let k = Option.get (Catalog.Stats.column stats "t.k") in
  let v = Option.get (Catalog.Stats.column stats "t.v") in
  Alcotest.(check (float 0.)) "k distinct" 100. k.n_distinct;
  Alcotest.(check (float 0.)) "v distinct" 10. v.n_distinct

let test_min_max () =
  let k = Option.get (Catalog.Stats.column stats "t.k") in
  Alcotest.(check bool) "min" true (k.min_value = Some (Value.Int 0));
  Alcotest.(check bool) "max" true (k.max_value = Some (Value.Int 99))

let test_nulls () =
  let with_nulls =
    Array.append tuples [| [| Value.Null; Value.Int 1 |]; [| Value.Null; Value.Null |] |]
  in
  let s = Catalog.Stats.of_tuples schema with_nulls in
  let k = Option.get (Catalog.Stats.column s "t.k") in
  Alcotest.(check (float 0.)) "null count" 2. k.null_count;
  Alcotest.(check (float 0.)) "distinct excludes nulls" 100. k.n_distinct

let test_histogram_fraction () =
  let k = Option.get (Catalog.Stats.column stats "t.k") in
  let h = Option.get k.histogram in
  let half = Catalog.Stats.histogram_fraction h ~lo:None ~hi:(Some 49.5) in
  Alcotest.(check bool)
    (Printf.sprintf "about half below 49.5 (got %.3f)" half)
    true
    (half > 0.4 && half < 0.6);
  let all = Catalog.Stats.histogram_fraction h ~lo:None ~hi:None in
  Alcotest.(check bool) "full range is everything" true (all > 0.99)

(* Selectivity estimation against known data. *)

let props =
  Logical_props.make ~schema ~card:100.
    ~distincts:[ ("t.k", 100.); ("t.v", 10.) ]
    ~ranges:[ ("t.k", (0., 99.)); ("t.v", (0., 9.)) ]
    ()

let test_equality_selectivity () =
  let open Expr in
  Alcotest.(check (float 1e-9)) "1/distinct on key" 0.01
    (Catalog.Selectivity.predicate props (col "t.k" =% int 5));
  Alcotest.(check (float 1e-9)) "1/distinct on v" 0.1
    (Catalog.Selectivity.predicate props (col "t.v" =% int 5))

let test_range_selectivity () =
  let open Expr in
  let s = Catalog.Selectivity.predicate props (col "t.k" <% int 50) in
  Alcotest.(check bool) (Printf.sprintf "range about half (got %.3f)" s) true
    (s > 0.4 && s < 0.6);
  let s2 = Catalog.Selectivity.predicate props (int 50 >% col "t.k") in
  Alcotest.(check (float 1e-9)) "flipped constant side" s s2

let test_conjunction_independence () =
  let open Expr in
  let s =
    Catalog.Selectivity.predicate props (col "t.k" =% int 5 &&% (col "t.v" =% int 5))
  in
  Alcotest.(check (float 1e-9)) "product" 0.001 s

let test_negation () =
  let open Expr in
  let s = Catalog.Selectivity.predicate props (Expr.Not (col "t.v" =% int 5)) in
  Alcotest.(check (float 1e-9)) "1 - s" 0.9 s

let test_join_selectivity () =
  let other =
    Logical_props.make
      ~schema:[| Schema.attribute "u.v" Schema.TInt |]
      ~card:50. ~distincts:[ ("u.v", 25.) ] ()
  in
  let open Expr in
  let s = Catalog.Selectivity.join ~left:props ~right:other (col "t.v" =% col "u.v") in
  Alcotest.(check (float 1e-9)) "1/max(d1,d2)" (1. /. 25.) s;
  let cartesian = Catalog.Selectivity.join ~left:props ~right:other Expr.true_ in
  Alcotest.(check (float 1e-9)) "cartesian" 1. cartesian

let test_selectivity_clamped () =
  let open Expr in
  let s = Catalog.Selectivity.predicate props (Expr.Const (Value.Bool false)) in
  Alcotest.(check (float 0.)) "false predicate" 0. s;
  let s1 = Catalog.Selectivity.predicate props Expr.true_ in
  Alcotest.(check (float 0.)) "true predicate" 1. s1;
  ignore col

(* Estimates on real synthetic data should be in the right ballpark. *)
let test_estimate_vs_actual () =
  let catalog = Helpers.small_catalog () in
  let table = Catalog.find catalog "r" in
  let base = Catalog.base_props table in
  let open Expr in
  let pred = col "r.a" =% int 3 in
  let est = Catalog.Selectivity.predicate base pred in
  let actual =
    Float.of_int
      (Array.length (Array.of_seq (Seq.filter (Expr.eval_pred table.schema pred) (Array.to_seq table.tuples))))
    /. Float.of_int (Array.length table.tuples)
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f within 3x of actual %.3f" est actual)
    true
    (est < 3. *. actual +. 0.05 && actual < 3. *. est +. 0.05)

let suite =
  [
    Alcotest.test_case "row count" `Quick test_row_count;
    Alcotest.test_case "distinct counts" `Quick test_distincts;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "null accounting" `Quick test_nulls;
    Alcotest.test_case "histogram fractions" `Quick test_histogram_fraction;
    Alcotest.test_case "equality selectivity" `Quick test_equality_selectivity;
    Alcotest.test_case "range selectivity" `Quick test_range_selectivity;
    Alcotest.test_case "conjunction independence" `Quick test_conjunction_independence;
    Alcotest.test_case "negation" `Quick test_negation;
    Alcotest.test_case "join selectivity" `Quick test_join_selectivity;
    Alcotest.test_case "clamping" `Quick test_selectivity_clamped;
    Alcotest.test_case "estimate vs actual" `Quick test_estimate_vs_actual;
  ]
