(* Tests of multi-node implementation rules (paper §2.2): index range
   scans implementing select-over-get, and the fused join+projection
   operator. *)

open Relalg

let catalog =
  let c = Catalog.create () in
  ignore
    (Catalog.add_synthetic c ~name:"orders"
       ~columns:
         [
           ("id", Catalog.Serial);
           ("cust", Catalog.Uniform_int (0, 299));
           ("total", Catalog.Uniform_int (0, 9_999));
         ]
       ~rows:5_000 ~seed:71 ());
  ignore
    (Catalog.add_synthetic c ~name:"cust"
       ~columns:[ ("id", Catalog.Serial); ("tier", Catalog.Uniform_int (1, 3)) ]
       ~rows:300 ~seed:72 ());
  Catalog.add_index c ~table:"orders" [ "total" ];
  c

let request = { (Relmodel.Optimizer.request catalog) with restore_columns = false }

let optimize ?(required = Phys_prop.any) q =
  match (Relmodel.Optimizer.optimize request q ~required).plan with
  | Some p -> p
  | None -> Alcotest.fail "no plan"

let rec algs (p : Relmodel.Optimizer.plan_node) = p.alg :: List.concat_map algs p.children

let has pred p = List.exists pred (algs p)

let is_index_scan = function Physical.Index_scan _ -> true | _ -> false

let selective_query =
  Expr.(Logical.select (col "orders.total" <=% int 50) (Logical.get "orders"))

let test_index_scan_chosen_for_selective_predicate () =
  let plan = optimize selective_query in
  Alcotest.(check bool)
    ("index scan chosen:\n" ^ Relmodel.Optimizer.explain plan)
    true
    (has is_index_scan plan)

let test_index_scan_not_used_without_bound () =
  (* No conjunct bounds an indexed column: the rule must not fire. *)
  let q = Expr.(Logical.select (col "orders.id" >% int 4_000) (Logical.get "orders")) in
  let plan = optimize q in
  Alcotest.(check bool) "plain scan + filter" true (not (has is_index_scan plan))

let test_index_order_serves_order_by () =
  (* ORDER BY the index key: the index scan delivers the order and no
     sort appears. *)
  let required = Phys_prop.sorted (Sort_order.asc [ "orders.total" ]) in
  let plan = optimize ~required selective_query in
  Alcotest.(check bool) "index scan used" true (has is_index_scan plan);
  Alcotest.(check bool) "no sort needed" true
    (not (has (function Physical.Sort _ -> true | _ -> false) plan))

let test_index_scan_execution_correct () =
  List.iter
    (fun required ->
      let plan = optimize ~required selective_query in
      let rows, schema, _ = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
      let expected, _ = Executor.naive catalog selective_query in
      Helpers.check_same_bag "index scan rows" expected rows;
      if required.Phys_prop.order <> [] then
        Alcotest.(check bool) "sorted as required" true
          (Sort_order.is_sorted schema required.Phys_prop.order rows))
    [ Phys_prop.any; Phys_prop.sorted (Sort_order.asc [ "orders.total" ]) ]

let fused_query =
  Expr.(
    Logical.project
      [ "orders.id"; "cust.tier" ]
      (Logical.join (col "orders.cust" =% col "cust.id") (Logical.get "orders")
         (Logical.get "cust")))

let test_join_project_fusion () =
  let plan = optimize fused_query in
  Alcotest.(check bool)
    ("fused operator chosen:\n" ^ Relmodel.Optimizer.explain plan)
    true
    (has (function Physical.Hash_join_project _ -> true | _ -> false) plan)

let test_fusion_execution_correct () =
  let plan = optimize fused_query in
  let rows, schema, _ = Executor.run catalog (Relmodel.Optimizer.to_physical plan) in
  let expected, _ = Executor.naive catalog fused_query in
  Helpers.check_same_bag "fused join-project rows" expected rows;
  Alcotest.(check (list string)) "projected schema" [ "orders.id"; "cust.tier" ]
    (Schema.names schema)

let test_fusion_cheaper_than_separate () =
  let fused = optimize fused_query in
  (* Hand-build the unfused plan: project over the same join. *)
  let join =
    Expr.(
      Logical.join (col "orders.cust" =% col "cust.id") (Logical.get "orders")
        (Logical.get "cust"))
  in
  let join_plan = optimize join in
  let separate =
    Physical.mk
      (Physical.Project_cols [ "orders.id"; "cust.tier" ])
      [ Relmodel.Optimizer.to_physical join_plan ]
  in
  let fused_cost = Cost.total fused.cost in
  let separate_cost = Cost.total (Relmodel.Plan_cost.estimate catalog separate) in
  Alcotest.(check bool)
    (Printf.sprintf "fused (%.4f) < separate (%.4f)" fused_cost separate_cost)
    true (fused_cost < separate_cost)

let test_indexes_are_registered_once () =
  Catalog.add_index catalog ~table:"orders" [ "total" ];
  let t = Catalog.find catalog "orders" in
  Alcotest.(check int) "no duplicate index entries" 1 (List.length t.indexes)

let suite =
  [
    Alcotest.test_case "index scan for selective predicate" `Quick
      test_index_scan_chosen_for_selective_predicate;
    Alcotest.test_case "no index without a bound" `Quick test_index_scan_not_used_without_bound;
    Alcotest.test_case "index order serves ORDER BY" `Quick test_index_order_serves_order_by;
    Alcotest.test_case "index scan executes correctly" `Quick test_index_scan_execution_correct;
    Alcotest.test_case "join+projection fuses" `Quick test_join_project_fusion;
    Alcotest.test_case "fusion executes correctly" `Quick test_fusion_execution_correct;
    Alcotest.test_case "fusion is cheaper" `Quick test_fusion_cheaper_than_separate;
    Alcotest.test_case "index dedup in catalog" `Quick test_indexes_are_registered_once;
  ]
